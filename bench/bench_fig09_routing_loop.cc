// Figure 9 / §4.5 — real-time routing-loop debugging.
//
// A misconfigured switch S4 creates a loop.  Packets accumulate sampled
// link labels; the third tag causes an ASIC rule miss and a punt.  The
// controller detects a repeated link ID (4-hop loop: first punt, paper
// ~47 ms) or strips/reinjects and catches the repeat on the second punt
// (6-hop loop, paper ~115 ms).  Detection works for loops of any size.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/controller/loop_detector.h"
#include "src/netsim/network.h"
#include "src/topology/link_labels.h"

namespace pathdump {
namespace {

// Fig. 9 chain: A - S1 - S2 - S3 - S4 - S6 - B, S5 closing the loop.
struct Scenario {
  Topology topo;
  HostId a = kInvalidNode, b = kInvalidNode;
  SwitchId s[16] = {};
  int extra = 0;  // switches added between S5 and S2 (loop length - 4)
};

Scenario Build(int loop_switches) {
  Scenario sc;
  Topology& t = sc.topo;
  for (int i = 1; i <= 6; ++i) {
    sc.s[i] = t.AddSwitch(i == 1 || i == 6 ? NodeRole::kTor : NodeRole::kAgg, -1, i,
                          "S" + std::to_string(i));
  }
  t.AddLink(sc.s[1], sc.s[2]);
  t.AddLink(sc.s[2], sc.s[3]);
  t.AddLink(sc.s[3], sc.s[4]);
  t.AddLink(sc.s[4], sc.s[5]);
  t.AddLink(sc.s[4], sc.s[6]);
  // Extra switches extend the S5 -> S2 return leg (6-hop loop etc.).
  sc.extra = loop_switches - 4;
  NodeId prev = sc.s[5];
  for (int i = 0; i < sc.extra; ++i) {
    NodeId n = t.AddSwitch(NodeRole::kAgg, -1, 7 + i, "X" + std::to_string(i));
    t.AddLink(prev, n);
    sc.s[7 + i] = n;
    prev = n;
  }
  t.AddLink(prev, sc.s[2]);
  sc.a = t.AddHost(-1, 0, "A");
  t.AddLink(sc.a, sc.s[1]);
  sc.b = t.AddHost(-1, 1, "B");
  t.AddLink(sc.b, sc.s[6]);
  return sc;
}

struct Result {
  double detect_ms = -1;
  int punt_rounds = 0;
};

Result RunLoop(int loop_switches, SimTime inject_jitter) {
  Scenario sc = Build(loop_switches);
  NetworkConfig cfg;
  cfg.max_hops = 4096;
  Network net(&sc.topo, cfg);
  // Alternate-switch sampling as in the paper's figure: S3 pushes S2-S3,
  // S5 pushes S4-S5, extras every other hop.
  std::set<SwitchId> pushers{sc.s[3], sc.s[5]};
  for (int i = 0; i < sc.extra; i += 2) {
    pushers.insert(sc.s[7 + i + (sc.extra % 2)]);
  }
  net.codec().SetGenericPushers(pushers);
  LoopDetector detector(&net);
  detector.Attach();

  Router& r = net.router();
  r.SetStaticNextHops(sc.s[1], sc.b, {sc.s[2]});
  r.SetStaticNextHops(sc.s[2], sc.b, {sc.s[3]});
  r.SetStaticNextHops(sc.s[3], sc.b, {sc.s[4]});
  r.SetStaticNextHops(sc.s[4], sc.b, {sc.s[5]});  // misconfiguration
  NodeId prev = sc.s[5];
  for (int i = 0; i < sc.extra; ++i) {
    r.SetStaticNextHops(prev, sc.b, {sc.s[7 + i]});
    prev = sc.s[7 + i];
  }
  r.SetStaticNextHops(prev, sc.b, {sc.s[2]});

  Packet p;
  p.flow.src_ip = sc.topo.IpOfHost(sc.a);
  p.flow.dst_ip = sc.topo.IpOfHost(sc.b);
  p.flow.src_port = 1234;
  p.flow.dst_port = 80;
  p.flow.protocol = kProtoTcp;
  p.src_host = sc.a;
  p.dst_host = sc.b;
  net.InjectPacket(p, inject_jitter);
  net.events().RunAll(2000000);

  Result res;
  if (!detector.detections().empty()) {
    res.detect_ms = double(detector.detections()[0].detected_at - inject_jitter) /
                    double(kNsPerMs);
    res.punt_rounds = detector.detections()[0].punt_rounds;
  }
  return res;
}

int Main() {
  bench::Banner("Figure 9 / §4.5: routing loop detection latency",
                "4-hop loop ~47ms (first punt); 6-hop loop ~115ms (strip+reinject, "
                "second punt); loops of any size detected");

  bench::Section("detection latency (10 injections each)");
  std::printf("%-12s %-12s %-14s %-12s\n", "loop size", "mean (ms)", "punt rounds",
              "paper (ms)");
  struct Row {
    int switches;
    const char* paper;
  };
  for (const Row& row : {Row{4, "~47"}, Row{6, "~115"}, Row{8, "(any size)"}}) {
    Summary lat;
    int rounds = 0;
    for (int i = 0; i < 10; ++i) {
      Result r = RunLoop(row.switches, SimTime(i) * 137 * kNsPerUs);
      if (r.detect_ms < 0) {
        std::printf("loop of %d switches NOT detected (unexpected)\n", row.switches);
        return 1;
      }
      lat.Add(r.detect_ms);
      rounds = r.punt_rounds;
    }
    std::printf("%-12d %-12.1f %-14d %-12s\n", row.switches, lat.mean(), rounds, row.paper);
  }
  std::printf("\n(latency constants: punt=40ms, reinject=20ms; see DESIGN.md — the paper's\n"
              " slow-path timings are hardware-specific, the shape 1-punt vs 2-punt holds)\n");
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
