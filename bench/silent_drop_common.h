// Shared machinery for the silent-random-packet-drop experiments
// (Figs. 7 and 8): run the web workload over a 4-ary fat-tree with F
// faulty interfaces, collect POOR_PERF alarms, replay them in time order
// into MAX-COVERAGE, and track recall/precision over time.

#ifndef PATHDUMP_BENCH_SILENT_DROP_COMMON_H_
#define PATHDUMP_BENCH_SILENT_DROP_COMMON_H_

#include <algorithm>
#include <vector>

#include "src/apps/max_coverage.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

namespace pathdump {
namespace bench {

struct SilentDropRun {
  // recall/precision sampled every `checkpoint` seconds.
  std::vector<double> recall;
  std::vector<double> precision;
  // First time (seconds) recall and precision both hit 1.0; -1 if never.
  double perfect_at = -1;
};

struct SilentDropParams {
  int faulty_interfaces = 1;
  double drop_rate = 0.01;
  double load = 0.7;            // fraction of host access-link capacity
  double duration_s = 150;
  double checkpoint_s = 5;
  double host_link_bps = 1e9;
  uint64_t seed = 1;
};

// Picks F random switch-switch directed links as faulty interfaces.
inline std::vector<LinkId> PickFaultyLinks(const Topology& topo, int count, Rng& rng) {
  std::vector<LinkId> candidates;
  for (const LinkId& l : topo.AllDirectedLinks()) {
    if (!topo.IsHost(l.src) && !topo.IsHost(l.dst)) {
      candidates.push_back(l);
    }
  }
  std::vector<LinkId> out;
  while (int(out.size()) < count) {
    LinkId pick = candidates[rng.UniformInt(uint32_t(candidates.size()))];
    if (std::find(out.begin(), out.end(), pick) == out.end()) {
      out.push_back(pick);
    }
  }
  return out;
}

inline SilentDropRun RunSilentDropExperiment(const SilentDropParams& p) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgentConfig acfg;
  AgentFleet fleet(&topo, &codec, acfg);
  // Alarms flow through the controller's intake pipeline; the default
  // block policy guarantees none are lost, and alarm_log() flushes.
  Controller controller;
  controller.RegisterFleet(fleet);

  Rng rng(p.seed);
  std::vector<LinkId> truth = PickFaultyLinks(topo, p.faulty_interfaces, rng);

  FluidConfig fcfg;
  fcfg.seed = p.seed * 7919 + 13;
  fcfg.alarm_drop_threshold = 3;
  fcfg.consecutive_alarm_model = true;  // tcpretrans semantics (Fig. 7/8 time scale)
  FluidSimulation fluid(&topo, &router, fcfg);
  for (const LinkId& l : truth) {
    fluid.AddSilentDrop(l.src, l.dst, p.drop_rate);
  }

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = gen.RateForLoad(p.load, p.host_link_bps);
  params.duration = SimTime(p.duration_s * double(kNsPerSec));
  params.seed = p.seed * 104729 + 7;
  auto flows = gen.Generate(params);

  fluid.Run(flows, &fleet, controller.MakeAlarmSink());
  std::vector<Alarm> alarms = controller.alarm_log();  // flushes the pipeline
  std::sort(alarms.begin(), alarms.end(),
            [](const Alarm& a, const Alarm& b) { return a.at < b.at; });

  // Replay alarms into MAX-COVERAGE; checkpoint accuracy every 5 s.
  SilentDropRun run;
  MaxCoverageLocalizer localizer;
  size_t next_alarm = 0;
  LinkId any{kInvalidNode, kInvalidNode};
  int checkpoints = int(p.duration_s / p.checkpoint_s);
  for (int c = 1; c <= checkpoints; ++c) {
    SimTime t = SimTime(double(c) * p.checkpoint_s * double(kNsPerSec));
    for (; next_alarm < alarms.size() && alarms[next_alarm].at <= t; ++next_alarm) {
      const Alarm& a = alarms[next_alarm];
      EdgeAgent* dst_agent = fleet.agent_by_ip(a.flow.dst_ip);
      if (dst_agent == nullptr) {
        continue;
      }
      for (const Path& path : dst_agent->GetPaths(a.flow, any, TimeRange::All())) {
        localizer.AddSignature(path);
      }
    }
    LocalizationAccuracy acc = MaxCoverageLocalizer::Evaluate(localizer.Localize(), truth);
    run.recall.push_back(acc.recall);
    run.precision.push_back(acc.precision);
    if (run.perfect_at < 0 && acc.Perfect()) {
      run.perfect_at = double(c) * p.checkpoint_s;
    }
  }
  return run;
}

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_SILENT_DROP_COMMON_H_
