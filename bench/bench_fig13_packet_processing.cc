// Figure 13 — edge packet-processing throughput: PathDump vs vanilla
// vSwitch (google-benchmark).
//
// Packets of 64-1500 B carrying 1-2 VLAN tags stream through the datapath
// while the trajectory memory holds ~4 K live per-path flow records (the
// paper's "100K flows/sec at a rack switch" working set).  The reported
// Gbps/Mpps are capped at the testbed's 10 GbE line rate: the CPU path is
// measured for real, the NIC is modeled (DESIGN.md).
//
// Paper: PathDump within ~4% of the vanilla vSwitch at every packet size;
// 0.8M (1500B) to 3.6M (64B) lookups/updates per second.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/edge/packet_pipeline.h"
#include "src/packet/packet.h"

namespace pathdump {
namespace {

constexpr double kLineRateBps = 10e9;  // 10 GbE NIC
constexpr int kLiveFlows = 4096;       // ~4K records in trajectory memory

std::vector<Packet> MakeWorkingSet(uint32_t packet_size) {
  Rng rng(1234);
  std::vector<Packet> pkts;
  pkts.reserve(kLiveFlows);
  for (int i = 0; i < kLiveFlows; ++i) {
    Packet p;
    p.flow.src_ip = 0x0A000000u | rng.NextU32() % 4096;
    p.flow.dst_ip = 0x0A000000u | 99;
    p.flow.src_port = uint16_t(1024 + i);
    p.flow.dst_port = 80;
    p.flow.protocol = kProtoTcp;
    p.size_bytes = packet_size;
    // 1-2 VLAN tags as on the wire (§5.3).
    p.tags.push_back(LinkLabel(rng.UniformInt(4096)));
    if (rng.Bernoulli(0.5)) {
      p.tags.push_back(LinkLabel(rng.UniformInt(4096)));
    }
    pkts.push_back(std::move(p));
  }
  return pkts;
}

void RunPipeline(benchmark::State& state, bool pathdump_enabled) {
  const uint32_t packet_size = uint32_t(state.range(0));
  std::vector<Packet> working_set = MakeWorkingSet(packet_size);
  PacketPipeline pipeline(pathdump_enabled);

  size_t i = 0;
  SimTime now = 0;
  uint64_t sink = 0;
  // Tag stripping mutates packets; re-arm a fresh copy per call.
  for (auto _ : state) {
    Packet p = working_set[i];
    sink += pipeline.Process(p, now);
    benchmark::DoNotOptimize(sink);
    i = (i + 1) % working_set.size();
    now += 1000;
  }

  state.SetItemsProcessed(int64_t(state.iterations()));
  state.counters["pkt_bytes"] = double(packet_size);
  // Measured datapath rate (per-second rate of processed packets).
  state.counters["cpu_Mpps"] =
      benchmark::Counter(double(state.iterations()) / 1e6, benchmark::Counter::kIsRate);
  // What a 10 GbE wire allows at this packet size (the testbed's NIC cap).
  state.counters["wire_Mpps_cap"] = kLineRateBps / (double(packet_size) * 8.0) / 1e6;
}

void BM_PathDump(benchmark::State& state) { RunPipeline(state, true); }
void BM_VanillaVSwitch(benchmark::State& state) { RunPipeline(state, false); }

BENCHMARK(BM_PathDump)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(1500);
BENCHMARK(BM_VanillaVSwitch)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(1500);

}  // namespace
}  // namespace pathdump

// Custom reporter epilogue: convert measured rates into the paper's
// Gbps/Mpps presentation with the 10 GbE cap.
int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Figure 13: packet-processing throughput, PathDump vs vSwitch\n");
  std::printf("paper: <=4%% throughput loss at any size; 0.8-3.6M ops/s\n");
  std::printf("(cpu_Mpps = measured datapath rate; wire Gbps/Mpps = min(cpu, 10GbE))\n");
  std::printf("==============================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
