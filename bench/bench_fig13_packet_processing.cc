// Figure 13 — edge packet-processing throughput: PathDump vs vanilla
// vSwitch (google-benchmark).
//
// Packets of 64-1500 B carrying 1-2 VLAN tags stream through the datapath
// while the trajectory memory holds ~4 K live per-path flow records (the
// paper's "100K flows/sec at a rack switch" working set).  The reported
// Gbps/Mpps are capped at the testbed's 10 GbE line rate: the CPU path is
// measured for real, the NIC is modeled (DESIGN.md).
//
// Paper: PathDump within ~4% of the vanilla vSwitch at every packet size;
// 0.8M (1500B) to 3.6M (64B) lookups/updates per second.
//
// Sustained-storm addendum (bounded memory): RunEvictionStorm() pushes a
// multi-epoch insert storm through an agent whose TIB runs under a
// memory ceiling (default 220 MB = 2x the paper's 110 MB/agent
// worst-case from §5.2) and gates, with a nonzero exit, on (a) the
// resident-bytes trajectory never crossing the ceiling, (b) exact
// eviction accounting (retained == inserted - evicted), and (c) all four
// standing kinds staying byte-identical to their poll twins at epoch
// boundaries — exact vs an unbounded shadow before any resync, windowed
// vs the bounded agent itself after one.  Knobs:
// PATHDUMP_FIG13_STORM_RECORDS / _CEILING_MB / _EPOCHS / _CHECK_EVERY;
// PATHDUMP_FIG13_STORM_ONLY=1 skips the google-benchmark suites (the
// quickbench CTest entry uses reduced knobs for a sub-second gate).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/load_imbalance.h"
#include "src/apps/traffic_measure.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/edge_agent.h"
#include "src/edge/packet_pipeline.h"
#include "src/packet/packet.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

constexpr double kLineRateBps = 10e9;  // 10 GbE NIC
constexpr int kLiveFlows = 4096;       // ~4K records in trajectory memory

std::vector<Packet> MakeWorkingSet(uint32_t packet_size) {
  Rng rng(1234);
  std::vector<Packet> pkts;
  pkts.reserve(kLiveFlows);
  for (int i = 0; i < kLiveFlows; ++i) {
    Packet p;
    p.flow.src_ip = 0x0A000000u | rng.NextU32() % 4096;
    p.flow.dst_ip = 0x0A000000u | 99;
    p.flow.src_port = uint16_t(1024 + i);
    p.flow.dst_port = 80;
    p.flow.protocol = kProtoTcp;
    p.size_bytes = packet_size;
    // 1-2 VLAN tags as on the wire (§5.3).
    p.tags.push_back(LinkLabel(rng.UniformInt(4096)));
    if (rng.Bernoulli(0.5)) {
      p.tags.push_back(LinkLabel(rng.UniformInt(4096)));
    }
    pkts.push_back(std::move(p));
  }
  return pkts;
}

void RunPipeline(benchmark::State& state, bool pathdump_enabled) {
  const uint32_t packet_size = uint32_t(state.range(0));
  std::vector<Packet> working_set = MakeWorkingSet(packet_size);
  PacketPipeline pipeline(pathdump_enabled);

  size_t i = 0;
  SimTime now = 0;
  uint64_t sink = 0;
  // Tag stripping mutates packets; re-arm a fresh copy per call.
  for (auto _ : state) {
    Packet p = working_set[i];
    sink += pipeline.Process(p, now);
    benchmark::DoNotOptimize(sink);
    i = (i + 1) % working_set.size();
    now += 1000;
  }

  state.SetItemsProcessed(int64_t(state.iterations()));
  state.counters["pkt_bytes"] = double(packet_size);
  // Measured datapath rate (per-second rate of processed packets).
  state.counters["cpu_Mpps"] =
      benchmark::Counter(double(state.iterations()) / 1e6, benchmark::Counter::kIsRate);
  // What a 10 GbE wire allows at this packet size (the testbed's NIC cap).
  state.counters["wire_Mpps_cap"] = kLineRateBps / (double(packet_size) * 8.0) / 1e6;
}

void BM_PathDump(benchmark::State& state) { RunPipeline(state, true); }
void BM_VanillaVSwitch(benchmark::State& state) { RunPipeline(state, false); }

BENCHMARK(BM_PathDump)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(1500);
BENCHMARK(BM_VanillaVSwitch)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(1500);

// --- Sustained storm under a TIB memory ceiling (bounded memory) ---

constexpr size_t kStormShards = 8;
constexpr size_t kStormTopK = 500;
constexpr int64_t kStormBinWidth = 10000;
const LinkId kStormProbeLink{3, 7};

Controller::QueryFn StormPollFor(int kind) {
  switch (kind) {
    case 0:
      return [](EdgeAgent& a) -> QueryResult { return a.TopK(kStormTopK, TimeRange::All()); };
    case 1:
      return [](EdgeAgent& a) -> QueryResult {
        return a.FlowSizeDistribution(kStormProbeLink, TimeRange::All(), kStormBinWidth);
      };
    case 2:
      return [](EdgeAgent& a) -> QueryResult {
        return FlowList{a.GetFlows(kStormProbeLink, TimeRange::All())};
      };
    default:
      return [](EdgeAgent& a) -> QueryResult {
        return a.CountOnLink(kStormProbeLink, TimeRange::All());
      };
  }
}

// Returns the number of failed gates (0 = clean run).
int RunEvictionStorm() {
  const int total_records = bench::IntFromEnv("PATHDUMP_FIG13_STORM_RECORDS", 3'000'000);
  const int ceiling_mb = bench::IntFromEnv("PATHDUMP_FIG13_STORM_CEILING_MB", 220);
  const int epochs = bench::IntFromEnv("PATHDUMP_FIG13_STORM_EPOCHS", 30);
  const int check_every = bench::IntFromEnv("PATHDUMP_FIG13_STORM_CHECK_EVERY", 10);
  const size_t ceiling = size_t(ceiling_mb) * 1024 * 1024;
  const int per_epoch = total_records / epochs;

  bench::Section("sustained storm under a TIB memory ceiling (§5.2 x2 = 220MB default)");
  std::printf("records=%d epochs=%d (%d/epoch) ceiling=%dMB check_every=%d\n", total_records,
              epochs, per_epoch, ceiling_mb, check_every);

  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Controller controller;
  EdgeAgentConfig bounded_cfg;
  bounded_cfg.tib_options.num_shards = kStormShards;
  bounded_cfg.tib_options.max_memory_bytes = ceiling;
  EdgeAgentConfig shadow_cfg;
  shadow_cfg.tib_options.num_shards = kStormShards;
  // Bounded agent under the ceiling; unbounded shadow as the exact
  // reference (identical inserts, never seals, never evicts).
  EdgeAgent bounded(topo.hosts()[0], &topo, &codec, bounded_cfg);
  EdgeAgent shadow(topo.hosts()[1], &topo, &codec, shadow_cfg);
  controller.RegisterAgent(&bounded);
  controller.RegisterAgent(&shadow);
  const std::vector<HostId> bounded_hosts{bounded.host()};
  const std::vector<HostId> shadow_hosts{shadow.host()};

  SubscriptionManager manager(&controller);
  const uint64_t subs[4] = {
      SubscribeTopK(manager, bounded_hosts, kStormTopK),
      SubscribeFlowSizeDistribution(manager, bounded_hosts, kStormProbeLink, TimeRange::All(),
                                    kStormBinWidth),
      SubscribeFlowList(manager, bounded_hosts, kStormProbeLink),
      SubscribeCountSummary(manager, bounded_hosts, kStormProbeLink),
  };

  testutil::SyntheticRecordOptions ropt;
  ropt.ip_space = 4096;
  ropt.switch_space = 24;

  int gate_failures = 0;
  size_t max_resident = 0;
  bool resynced_once = false;
  uint64_t ceiling_violations = 0;
  uint64_t identity_mismatches = 0;
  std::vector<double> early_us, late_us;
  for (int e = 0; e < epochs; ++e) {
    const std::vector<TibRecord> batch =
        testutil::MakeSyntheticRecords(per_epoch, 0xF163u + uint32_t(e), ropt);
    for (size_t i = 0; i < batch.size(); ++i) {
      const bool timed = (i % 64) == 0;
      const auto t0 = std::chrono::steady_clock::now();
      bounded.tib().Insert(batch[i]);
      if (timed) {
        const double us = bench::Seconds(t0) * 1e6;
        (e < epochs / 4 ? early_us : late_us).push_back(us);
      }
      shadow.tib().Insert(batch[i]);
      const size_t resident = bounded.tib().bytes_resident();
      max_resident = std::max(max_resident, resident);
      // Insert-side enforcement: once a sealed epoch exists, resident
      // must never cross the ceiling between two inserts.
      if (e > 0 && resident > ceiling) {
        ++ceiling_violations;
      }
    }
    bounded.EpochTick();
    manager.Flush();

    const bool check = ((e + 1) % check_every == 0) || e == epochs - 1;
    if (!check) {
      continue;
    }
    const TibMemoryStats ms = bounded.tib().MemoryStats();
    char label[64];
    std::snprintf(label, sizeof(label), "resident_mb_epoch_%d", e + 1);
    bench::Report("storm", label, double(ms.resident_bytes) / (1024.0 * 1024.0), "MB");

    // (c) exact identity: incremental folds survive eviction — until a
    // resync, standing state covers full history and must equal a poll
    // of the unbounded shadow.
    if (!resynced_once) {
      for (int k = 0; k < 4; ++k) {
        auto [poll, st] = controller.Execute(shadow_hosts, StormPollFor(k));
        if (!(manager.Materialize(subs[k]) == poll)) {
          ++identity_mismatches;
          std::printf("  IDENTITY MISMATCH (exact, kind %d, epoch %d)\n", k, e + 1);
        }
      }
    }
    // (c) windowed identity: after a resync the baseline is rebuilt from
    // retained epochs only and must equal a poll of the bounded agent.
    for (uint64_t id : subs) {
      manager.MarkStale(id, bounded.host());
      manager.Resync(id, bounded.host());
    }
    resynced_once = true;
    for (int k = 0; k < 4; ++k) {
      auto [poll, st] = controller.Execute(bounded_hosts, StormPollFor(k));
      if (!(manager.Materialize(subs[k]) == poll)) {
        ++identity_mismatches;
        std::printf("  IDENTITY MISMATCH (windowed, kind %d, epoch %d)\n", k, e + 1);
      }
    }
  }

  const TibMemoryStats ms = bounded.tib().MemoryStats();
  bench::Report("storm", "ceiling_mb", double(ceiling_mb), "MB");
  bench::Report("storm", "max_resident_mb", double(max_resident) / (1024.0 * 1024.0), "MB");
  bench::Report("storm", "inserted_records", double(ms.inserted_records), "records");
  bench::Report("storm", "evicted_records", double(ms.evicted_records), "records");
  bench::Report("storm", "retained_records", double(ms.retained_records), "records");
  bench::Report("storm", "segments_retired", double(ms.segments_retired), "segments");
  bench::Report("storm", "epochs_sealed", double(ms.epochs_sealed), "epochs");
  bench::Report("storm", "insert_p50_early_us", bench::Percentile(early_us, 0.50), "us");
  bench::Report("storm", "insert_p99_early_us", bench::Percentile(early_us, 0.99), "us");
  bench::Report("storm", "insert_p50_late_us", bench::Percentile(late_us, 0.50), "us");
  bench::Report("storm", "insert_p99_late_us", bench::Percentile(late_us, 0.99), "us");
  bench::Report("storm", "identity_mismatches", double(identity_mismatches), "mismatches");
  bench::Report("storm", "ceiling_violations", double(ceiling_violations), "samples");

  // Gates (nonzero exit on any failure).
  if (ceiling_violations > 0) {
    std::printf("GATE FAIL: bytes_resident crossed the %dMB ceiling %llu time(s)\n", ceiling_mb,
                (unsigned long long)ceiling_violations);
    ++gate_failures;
  }
  if (ms.retained_records != ms.inserted_records - ms.evicted_records) {
    std::printf("GATE FAIL: accounting: retained %llu != inserted %llu - evicted %llu\n",
                (unsigned long long)ms.retained_records, (unsigned long long)ms.inserted_records,
                (unsigned long long)ms.evicted_records);
    ++gate_failures;
  }
  if (identity_mismatches > 0) {
    std::printf("GATE FAIL: %llu standing-vs-poll identity mismatch(es)\n",
                (unsigned long long)identity_mismatches);
    ++gate_failures;
  }
  // Pressure sanity: when the storm's accounted footprint exceeds the
  // ceiling, eviction must actually have fired — a zero here means the
  // gate above tested nothing.
  const size_t accounted_total =
      ms.retained_records > 0
          ? ms.inserted_records * (ms.resident_bytes / ms.retained_records)
          : 0;
  if (accounted_total > ceiling && ms.evicted_records == 0) {
    std::printf("GATE FAIL: footprint %zuB exceeds ceiling %zuB but nothing was evicted\n",
                accounted_total, ceiling);
    ++gate_failures;
  }
  std::printf("storm: %s (evicted %llu of %llu records across %llu retired segments)\n",
              gate_failures == 0 ? "PASS" : "FAIL", (unsigned long long)ms.evicted_records,
              (unsigned long long)ms.inserted_records, (unsigned long long)ms.segments_retired);
  return gate_failures;
}

}  // namespace
}  // namespace pathdump

// Custom reporter epilogue: convert measured rates into the paper's
// Gbps/Mpps presentation with the 10 GbE cap.
int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Figure 13: packet-processing throughput, PathDump vs vSwitch\n");
  std::printf("paper: <=4%% throughput loss at any size; 0.8-3.6M ops/s\n");
  std::printf("(cpu_Mpps = measured datapath rate; wire Gbps/Mpps = min(cpu, 10GbE))\n");
  std::printf("==============================================================\n");
  pathdump::bench::BenchReport::Global().SetBenchName("fig13_packet_processing");
  const char* storm_only = std::getenv("PATHDUMP_FIG13_STORM_ONLY");
  if (storm_only == nullptr || storm_only[0] != '1') {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int gate_failures = pathdump::RunEvictionStorm();
  pathdump::bench::BenchReport::Global().WriteIfRequested();
  return gate_failures == 0 ? 0 : 1;
}
