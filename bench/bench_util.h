// Shared helpers for the reproduction benches.  Every bench prints
// (a) the paper's expectation and (b) the measured series, in plain
// rows that EXPERIMENTS.md records.
//
// Also home to the knobs shared across drivers: env-int parsing,
// steady-clock timing, percentile math, and the transport backend
// selector (PATHDUMP_TRANSPORT=inproc|shm|both) that bench_transport
// and the quickbench gates use to pick which side of the
// TransportOptions::Backend matrix to run.

#ifndef PATHDUMP_BENCH_BENCH_UTIL_H_
#define PATHDUMP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/transport/transport.h"

namespace pathdump {
namespace bench {

inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void Section(const char* name) { std::printf("\n--- %s ---\n", name); }

// Positive integer knob from the environment, else the fallback.
inline int IntFromEnv(const char* name, int fallback) {
  const char* env = getenv(name);
  if (env != nullptr) {
    int v = atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

// Seconds elapsed since `t0`.
inline double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// p-th percentile (p in [0,1]) by sorting in place.
inline double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  size_t idx = size_t(p * double(v.size() - 1));
  return v[idx];
}

// Which transport backends a bench should exercise, from
// PATHDUMP_TRANSPORT: "inproc", "shm", or anything else / unset = both.
inline std::vector<transport::TransportOptions::Backend> BackendsFromEnv() {
  using Backend = transport::TransportOptions::Backend;
  const char* env = getenv("PATHDUMP_TRANSPORT");
  const std::string v = env != nullptr ? env : "";
  if (v == "inproc") {
    return {Backend::kInProcess};
  }
  if (v == "shm") {
    return {Backend::kSharedMemory};
  }
  return {Backend::kInProcess, Backend::kSharedMemory};
}

inline const char* BackendName(transport::TransportOptions::Backend b) {
  return b == transport::TransportOptions::Backend::kInProcess ? "inproc" : "shm";
}

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_BENCH_UTIL_H_
