// Shared helpers for the reproduction benches.  Every bench prints
// (a) the paper's expectation and (b) the measured series, in plain
// rows that EXPERIMENTS.md records.
//
// Also home to the knobs shared across drivers: env-int parsing,
// steady-clock timing, percentile math, and the transport backend
// selector (PATHDUMP_TRANSPORT=inproc|shm|both) that bench_transport
// and the quickbench gates use to pick which side of the
// TransportOptions::Backend matrix to run.
//
// Machine-readable output: benches call BenchReport::Add(section, metric,
// value, unit) alongside their printf rows, and WriteIfRequested() on
// exit.  When PATHDUMP_BENCH_JSON=<path> is set the accumulated rows are
// written there as one JSON document (CI uploads it as an artifact);
// unset, reporting is a no-op and benches stay print-only.

#ifndef PATHDUMP_BENCH_BENCH_UTIL_H_
#define PATHDUMP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/transport/transport.h"

namespace pathdump {
namespace bench {

// Accumulates {section, metric, value, unit} rows for the whole bench
// run and serializes them as JSON.  Single-threaded by design: benches
// report from their main thread only.
class BenchReport {
 public:
  static BenchReport& Global() {
    static BenchReport report;
    return report;
  }

  void SetBenchName(const std::string& name) { bench_name_ = name; }

  void Add(const std::string& section, const std::string& metric, double value,
           const std::string& unit) {
    rows_.push_back(Row{section, metric, value, unit});
  }

  // Writes {"bench":...,"rows":[...]} to $PATHDUMP_BENCH_JSON.  Appends
  // when the file already has content, so a quickbench suite writing to
  // one shared path yields a concatenated JSON-lines stream (one document
  // per bench run).  Returns false only on a write error.
  bool WriteIfRequested() const {
    const char* path = getenv("PATHDUMP_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return true;
    }
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      return false;
    }
    std::string out = ToJson();
    out.push_back('\n');
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (ok) {
      std::printf("\nbench json: appended %zu rows to %s\n", rows_.size(), path);
    }
    return ok;
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + bench_name_ + "\",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", r.value);
      if (i > 0) {
        out += ",";
      }
      out += "{\"section\":\"" + r.section + "\",\"metric\":\"" + r.metric +
             "\",\"value\":" + buf + ",\"unit\":\"" + r.unit + "\"}";
    }
    out += "]}";
    return out;
  }

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::string section;
    std::string metric;
    double value;
    std::string unit;
  };
  std::string bench_name_ = "bench";
  std::vector<Row> rows_;
};

inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
  BenchReport::Global().SetBenchName(experiment);
}

inline void Section(const char* name) { std::printf("\n--- %s ---\n", name); }

// printf row + JSON row in one call, for benches that want both.
inline void Report(const char* section, const char* metric, double value, const char* unit) {
  std::printf("  %-28s %12.3f %s\n", metric, value, unit);
  BenchReport::Global().Add(section, metric, value, unit);
}

// Positive integer knob from the environment, else the fallback.
inline int IntFromEnv(const char* name, int fallback) {
  const char* env = getenv(name);
  if (env != nullptr) {
    int v = atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

// Seconds elapsed since `t0`.
inline double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// p-th percentile (p in [0,1]) by sorting in place.
inline double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  size_t idx = size_t(p * double(v.size() - 1));
  return v[idx];
}

// Which transport backends a bench should exercise, from
// PATHDUMP_TRANSPORT: "inproc", "shm", or anything else / unset = both.
inline std::vector<transport::TransportOptions::Backend> BackendsFromEnv() {
  using Backend = transport::TransportOptions::Backend;
  const char* env = getenv("PATHDUMP_TRANSPORT");
  const std::string v = env != nullptr ? env : "";
  if (v == "inproc") {
    return {Backend::kInProcess};
  }
  if (v == "shm") {
    return {Backend::kSharedMemory};
  }
  return {Backend::kInProcess, Backend::kSharedMemory};
}

inline const char* BackendName(transport::TransportOptions::Backend b) {
  return b == transport::TransportOptions::Backend::kInProcess ? "inproc" : "shm";
}

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_BENCH_UTIL_H_
