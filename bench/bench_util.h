// Shared formatting helpers for the reproduction benches.  Every bench
// prints (a) the paper's expectation and (b) the measured series, in plain
// rows that EXPERIMENTS.md records.

#ifndef PATHDUMP_BENCH_BENCH_UTIL_H_
#define PATHDUMP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace pathdump {
namespace bench {

inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void Section(const char* name) { std::printf("\n--- %s ---\n", name); }

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_BENCH_UTIL_H_
