// Transport bench: what the shared-memory agent channel costs relative
// to in-process delivery.
//
// Two layers:
//   1. Raw SPSC ring (src/transport/shm_ring.h): producer thread pushes
//      framed-size payloads, consumer thread pops — messages/sec, MB/s,
//      and sampled p50/p99 push→pop latency per payload size.
//   2. End-to-end epoch pipeline per backend (in-process vs shm): a
//      fleet of agents with standing subscriptions runs ingest →
//      EpochTick → ack → fold boundaries; reports epoch p50/p99
//      latency, delta throughput, and wire bytes.  At the end the
//      materialized standing results are checked byte-identical to a
//      fresh poll — any mismatch exits 1, which is what the quickbench
//      CTest entry gates on.
//
// The shm side runs the real ring + frame protocol (same bytes, same
// rings as the forked-process harness in tests/transport_multiproc_test
// .cc); agent threads stand in for agent processes so the bench stays a
// single reproducible binary.
//
// Env knobs (reduced in CI quick-bench):
//   PATHDUMP_TRANSPORT          inproc|shm|both   backend matrix (both)
//   PATHDUMP_TRANSPORT_MSGS     raw-ring messages          (200000)
//   PATHDUMP_TRANSPORT_AGENTS   fleet size                 (4)
//   PATHDUMP_TRANSPORT_EPOCHS   epoch boundaries measured  (8)
//   PATHDUMP_TRANSPORT_RECORDS  records/agent/epoch        (2000)
//   PATHDUMP_OVERHEAD_MAX_PCT   instrumentation-overhead gate in percent
//                               (unset/0 = report only; CI sets 3)
//   PATHDUMP_BENCH_JSON         append machine-readable rows to this path

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "src/cherrypick/codec.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/transport/shm_ring.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

using bench::IntFromEnv;
using bench::Percentile;
using bench::Seconds;
using transport::ShmAgentClient;
using transport::ShmSpscRing;
using transport::TransportHub;
using transport::TransportOptions;
using transport::TransportStats;

std::string BenchShmPrefix() { return "/pathdump.bench." + std::to_string(getpid()) + "."; }

// --- Raw ring layer ---

void RawRingSection(int messages) {
  bench::Section("raw SPSC ring: push -> pop across two threads");
  std::printf("%-10s %-10s %12s %10s %12s %12s %8s\n", "payload", "ring", "msgs/s", "MB/s",
              "p50(us)", "p99(us)", "gaps");
  for (size_t payload : {size_t(64), size_t(1024)}) {
    const size_t slot_bytes = 256;
    const size_t slot_count = 1 << 12;
    std::vector<uint8_t> mem(ShmSpscRing::BytesFor(slot_bytes, slot_count) + 64);
    void* base = mem.data() + (64 - uintptr_t(mem.data()) % 64) % 64;
    ShmSpscRing producer = ShmSpscRing::CreateAt(base, slot_bytes, slot_count);
    ShmSpscRing consumer = ShmSpscRing::ViewAt(base);

    // Sampled latency: every 32nd message carries a steady_clock stamp.
    std::vector<double> lat_us;
    lat_us.reserve(size_t(messages) / 32 + 1);
    auto t0 = std::chrono::steady_clock::now();
    std::thread prod([&producer, messages, payload] {
      std::vector<uint8_t> msg(payload, 0xAB);
      for (int i = 0; i < messages; ++i) {
        if (i % 32 == 0) {
          const uint64_t now =
              uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
          std::memcpy(msg.data(), &now, sizeof(now));
        } else {
          std::memset(msg.data(), 0, sizeof(uint64_t));
        }
        producer.Push(msg.data(), msg.size(), 10'000'000);
      }
      producer.CloseProducer();
    });
    std::vector<uint8_t> out;
    int popped = 0;
    while (popped < messages) {
      if (!consumer.Pop(out)) {
        if (!consumer.WaitForData(10'000'000)) {
          break;
        }
        continue;
      }
      uint64_t stamp = 0;
      std::memcpy(&stamp, out.data(), sizeof(stamp));
      if (stamp != 0) {
        const uint64_t now =
            uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
        lat_us.push_back(double(now - stamp) / 1e3);
      }
      ++popped;
    }
    prod.join();
    const double secs = Seconds(t0);
    std::printf("%-10zu %-10s %12.0f %10.1f %12.2f %12.2f %8llu\n", payload,
                (std::to_string(slot_bytes) + "x" + std::to_string(slot_count)).c_str(),
                double(popped) / secs, double(popped) * double(payload) / secs / 1e6,
                Percentile(lat_us, 0.50), Percentile(lat_us, 0.99),
                (unsigned long long)consumer.seq_gaps());
  }
}

// --- End-to-end layer ---

constexpr uint32_t kIpSpace = 2048;
constexpr uint32_t kSwitchSpace = 24;
constexpr size_t kShards = 4;
const LinkId kProbeLink{3, 7};

// Thread standing in for an agent process: same client, same rings,
// same frames as examples/agent_worker.cpp.
class ShmAgentThread {
 public:
  ShmAgentThread(const std::string& name, HostId host, const Topology* topo,
                 const CherryPickCodec* codec) {
    client_ = ShmAgentClient::Open(name);
    EdgeAgentConfig cfg;
    cfg.tib_options.num_shards = kShards;
    agent_ = std::make_unique<EdgeAgent>(host, topo, codec, cfg);
    agent_->SetAlarmHandler(client_->MakeAlarmSink());
    thread_ = std::thread([this, host] { Run(host); });
  }
  ~ShmAgentThread() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void Run(HostId host) {
    client_->SendHello(host);
    for (;;) {
      transport::DecodedFrame cmd;
      if (!client_->PollCommand(&cmd, 100'000)) {
        continue;
      }
      switch (cmd.type) {
        case transport::FrameType::kSubscribe:
          agent_->RegisterStandingQuery(cmd.subscription_id, cmd.spec, client_->MakeDeltaSink());
          break;
        case transport::FrameType::kIngest: {
          testutil::SyntheticRecordOptions opt;
          opt.ip_space = cmd.ingest_ip_space;
          opt.switch_space = cmd.ingest_switch_space;
          for (const TibRecord& rec : testutil::MakeSyntheticRecords(
                   int(cmd.ingest_count), cmd.ingest_seed + uint32_t(host), opt)) {
            agent_->tib().Insert(rec);
          }
          break;
        }
        case transport::FrameType::kEpochTick:
          agent_->EpochTick();
          client_->SendAck(host, cmd.token);
          break;
        case transport::FrameType::kShutdown:
          client_->SendBye(host);
          return;
        default:
          break;
      }
    }
  }

  std::unique_ptr<ShmAgentClient> client_;
  std::unique_ptr<EdgeAgent> agent_;
  std::thread thread_;
};

bool PipelineSection(TransportOptions::Backend backend, int num_agents, int epochs,
                     int records_per_epoch, double* p50_ms_out = nullptr,
                     bool quiet = false) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Controller controller;
  // Twins outlive the manager (its destructor detaches from them).
  std::vector<std::unique_ptr<EdgeAgent>> twins;
  SubscriptionManager manager(&controller);
  TransportOptions options;
  options.backend = backend;
  options.shm_prefix = BenchShmPrefix();
  TransportHub hub(&controller, &manager, options);
  std::vector<std::unique_ptr<ShmAgentThread>> threads;
  std::vector<HostId> hosts;

  const bool shm = backend == TransportOptions::Backend::kSharedMemory;
  for (int a = 0; a < num_agents; ++a) {
    const HostId host = topo.hosts()[size_t(a)];
    hosts.push_back(host);
    EdgeAgentConfig cfg;
    cfg.tib_options.num_shards = kShards;
    twins.push_back(std::make_unique<EdgeAgent>(host, &topo, &codec, cfg));
    if (shm) {
      // The twin is the poll reference; the agent thread is the fleet.
      controller.RegisterAgent(twins.back().get());
      threads.push_back(
          std::make_unique<ShmAgentThread>(hub.AddShmPeer(host), host, &topo, &codec));
    } else {
      hub.AddLocalAgent(twins.back().get());
    }
  }
  if (shm && !hub.WaitForHellos(10'000'000)) {
    std::printf("shm agents never said hello\n");
    return false;
  }

  StandingQuerySpec topk;
  topk.kind = StandingQuerySpec::Kind::kTopK;
  topk.k = 500;
  StandingQuerySpec list;
  list.kind = StandingQuerySpec::Kind::kFlowList;
  list.link = kProbeLink;
  const uint64_t topk_sub = hub.Subscribe(hosts, topk);
  const uint64_t list_sub = hub.Subscribe(hosts, list);

  testutil::SyntheticRecordOptions opt;
  opt.ip_space = kIpSpace;
  opt.switch_space = kSwitchSpace;

  std::vector<double> epoch_us;
  auto t0 = std::chrono::steady_clock::now();
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    const uint32_t seed = 0xBE0000u + uint32_t(epoch);
    for (auto& twin : twins) {
      for (const TibRecord& rec : testutil::MakeSyntheticRecords(
               records_per_epoch, seed + uint32_t(twin->host()), opt)) {
        twin->tib().Insert(rec);
      }
    }
    hub.SendIngest(uint32_t(records_per_epoch), seed, kIpSpace, kSwitchSpace);
    auto e0 = std::chrono::steady_clock::now();
    const uint64_t token = hub.SendEpochTick();
    if (!hub.WaitForAcks(token, 30'000'000)) {
      std::printf("epoch %d never acked\n", epoch);
      return false;
    }
    hub.Flush();
    epoch_us.push_back(Seconds(e0) * 1e6);
  }
  const double total_s = Seconds(t0);

  // Identity gate: the standing results fold exactly what a poll sees.
  Controller::QueryFn poll_topk = [](EdgeAgent& a) -> QueryResult {
    return a.TopK(500, TimeRange::All());
  };
  Controller::QueryFn poll_list = [](EdgeAgent& a) -> QueryResult {
    return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
  };
  const bool identical = manager.Materialize(topk_sub) == controller.Execute(hosts, poll_topk).first &&
                         manager.Materialize(list_sub) == controller.Execute(hosts, poll_list).first;

  const TransportStats st = hub.stats();
  const SubscriptionManagerStats ms = manager.stats();
  const double p50_ms = Percentile(epoch_us, 0.50) / 1e3;
  const double p99_ms = Percentile(epoch_us, 0.99) / 1e3;
  if (p50_ms_out != nullptr) {
    *p50_ms_out = p50_ms;
  }
  if (!quiet) {
    std::printf("%-8s %7d %7d %10.2f %10.2f %12.0f %12.1f %10s\n", bench::BackendName(backend),
                num_agents, epochs, p50_ms, p99_ms, double(ms.deltas_folded) / total_s,
                double(ms.delta_bytes) / 1e3, identical ? "yes" : "NO");
    const std::string section = std::string("pipeline.") + bench::BackendName(backend);
    bench::BenchReport& report = bench::BenchReport::Global();
    report.Add(section, "epoch_p50", p50_ms, "ms");
    report.Add(section, "epoch_p99", p99_ms, "ms");
    report.Add(section, "deltas_per_sec", double(ms.deltas_folded) / total_s, "1/s");
    report.Add(section, "delta_kb", double(ms.delta_bytes) / 1e3, "KB");
    report.Add(section, "identical", identical ? 1 : 0, "bool");
  }
  if (shm && !quiet) {
    std::printf("         shm detail: frames %llu, wire %.1f KB, blocked pushes %llu, "
                "seq gaps %llu, decode errors %llu\n",
                (unsigned long long)st.frames, double(st.bytes) / 1e3,
                (unsigned long long)st.blocked_pushes, (unsigned long long)st.seq_gaps,
                (unsigned long long)st.decode_errors);
  }
  hub.SendShutdown();
  threads.clear();
  return identical;
}

// Instrumentation-overhead gate: the same inproc epoch pipeline with the
// registry + tracer on vs off.  Exits non-zero (gates CI) when the
// overhead exceeds PATHDUMP_OVERHEAD_MAX_PCT AND the absolute p50 delta
// is above a noise floor — tiny absolute regressions on a fast pipeline
// are scheduler noise, not instrumentation cost.
bool OverheadSection(int num_agents, int epochs, int records_per_epoch) {
  bench::Section("instrumentation overhead: metrics+trace on vs off (inproc epoch pipeline)");
  constexpr double kNoiseFloorMs = 0.2;
  const int max_pct = IntFromEnv("PATHDUMP_OVERHEAD_MAX_PCT", 0);  // 0 = report only

  double warm_ms = 0, on_ms = 0, off_ms = 0;
  // Warmup run (populates registry handles, page-faults the rings).
  bool ok = PipelineSection(TransportOptions::Backend::kInProcess, num_agents, epochs,
                            records_per_epoch, &warm_ms, /*quiet=*/true);
  MetricsRegistry::SetEnabled(false);
  Tracer::Global().SetEnabled(false);
  ok = PipelineSection(TransportOptions::Backend::kInProcess, num_agents, epochs,
                       records_per_epoch, &off_ms, /*quiet=*/true) &&
       ok;
  MetricsRegistry::SetEnabled(true);
  Tracer::Global().SetEnabled(true);
  ok = PipelineSection(TransportOptions::Backend::kInProcess, num_agents, epochs,
                       records_per_epoch, &on_ms, /*quiet=*/true) &&
       ok;

  const double delta_ms = on_ms - off_ms;
  const double pct = off_ms > 0 ? delta_ms / off_ms * 100.0 : 0.0;
  std::printf("epoch p50 with instrumentation OFF: %.3f ms, ON: %.3f ms\n", off_ms, on_ms);
  std::printf("overhead: %+.3f ms (%+.2f%%), gate: %s\n", delta_ms, pct,
              max_pct > 0 ? (std::to_string(max_pct) + "%").c_str() : "report-only");
  bench::BenchReport& report = bench::BenchReport::Global();
  report.Add("overhead", "epoch_p50_off", off_ms, "ms");
  report.Add("overhead", "epoch_p50_on", on_ms, "ms");
  report.Add("overhead", "overhead_pct", pct, "%");

  if (!ok) {
    return false;
  }
  if (max_pct > 0 && pct > double(max_pct) && delta_ms > kNoiseFloorMs) {
    std::printf("OVERHEAD GATE FAILED: %.2f%% > %d%% (and %.3f ms > %.1f ms floor)\n", pct,
                max_pct, delta_ms, kNoiseFloorMs);
    return false;
  }
  return true;
}

int Main() {
  bench::Banner("Transport: shared-memory agent channels vs in-process delivery",
                "epoch pipeline cost is dominated by the delta fold either way; the shm "
                "ring adds bounded per-frame cost and the results stay byte-identical");

  const int messages = IntFromEnv("PATHDUMP_TRANSPORT_MSGS", 200000);
  const int num_agents = IntFromEnv("PATHDUMP_TRANSPORT_AGENTS", 4);
  const int epochs = IntFromEnv("PATHDUMP_TRANSPORT_EPOCHS", 8);
  const int records = IntFromEnv("PATHDUMP_TRANSPORT_RECORDS", 2000);

  RawRingSection(messages);

  bench::Section("epoch pipeline: ingest -> tick -> ack -> fold, per backend");
  std::printf("%-8s %7s %7s %10s %10s %12s %12s %10s\n", "backend", "agents", "epochs",
              "p50(ms)", "p99(ms)", "deltas/s", "delta(KB)", "identical");
  bool all_identical = true;
  for (TransportOptions::Backend backend : bench::BackendsFromEnv()) {
    all_identical = PipelineSection(backend, num_agents, epochs, records) && all_identical;
  }

  all_identical = OverheadSection(num_agents, epochs, records) && all_identical;
  transport::CleanupShmByPrefix(BenchShmPrefix());

  bench::Section("shape check");
  std::printf("standing results byte-identical to fresh polls on every backend: %s\n",
              all_identical ? "YES" : "NO");
  bench::BenchReport::Global().WriteIfRequested();
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
