// Figure 11 — flow-size-distribution query: direct vs multi-level.
//
// Query: per-flow byte histogram for one link, over 28/56/84/112 hosts
// with 240 K TIB entries each.  Paper: response time 0.1-0.2 s; direct is
// initially faster but the gap closes as hosts grow; traffic ~1 KB
// (histograms are small and aggregation barely reduces them).
// Also prints the §5.3 storage numbers.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/query_bench_common.h"

namespace pathdump {
namespace {

int Main(int argc, char** argv) {
  bench::Banner("Figure 11: flow-size-distribution query, direct vs multi-level",
                "~0.1-0.2s response; direct/multi-level gap shrinks with #hosts; ~1KB traffic");

  int entries = bench::EntriesFromEnv(240000);
  bench::ShardSweepOptions sweep = bench::ParseSweepArgs(argc, argv);
  auto tb = bench::BuildQueryTestbed(112, entries);

  Controller::QueryFn query = [&tb](EdgeAgent& agent) -> QueryResult {
    return agent.FlowSizeDistribution(tb->probe_link, TimeRange::All(), 10000);
  };

  bench::Section("response time and network traffic vs #end-hosts (avg of 5 runs)");
  std::printf("%-10s %14s %14s %14s %14s\n", "hosts", "direct(s)", "multi(s)", "direct(KB)",
              "multi(KB)");
  for (int n : {28, 56, 84, 112}) {
    std::vector<HostId> subset(tb->hosts.begin(), tb->hosts.begin() + n);
    double dtime = 0, mtime = 0;
    size_t dbytes = 0, mbytes = 0;
    const int runs = 5;
    for (int r = 0; r < runs; ++r) {
      auto [dres, dstats] = tb->controller.Execute(subset, query);
      auto [mres, mstats] = tb->controller.ExecuteMultiLevel(subset, query);
      dtime += dstats.response_time_seconds;
      mtime += mstats.response_time_seconds;
      dbytes = dstats.response_bytes;  // Fig 11(b) plots response payloads
      mbytes = mstats.response_bytes;
      // Sanity: both mechanisms must return identical histograms.
      auto& dh = std::get<FlowSizeHistogram>(dres);
      auto& mh = std::get<FlowSizeHistogram>(mres);
      if (dh.bins != mh.bins) {
        std::printf("ERROR: direct and multi-level disagree\n");
        return 1;
      }
    }
    std::printf("%-10d %14.3f %14.3f %14.1f %14.1f\n", n, dtime / runs, mtime / runs,
                double(dbytes) / 1e3, double(mbytes) / 1e3);
  }

  bench::SweepWorkerThreads(*tb, query, "flow-size distribution");
  bench::SweepTibShards(*tb, entries, sweep, /*topk=*/false);

  bench::Section("§5.3 storage footprint");
  EdgeAgent& sample = *tb->agents[tb->hosts[0]];
  std::printf("TIB: %zu entries, %.1f MB in memory (paper: ~110MB on disk for 240K "
              "MongoDB documents)\n",
              sample.tib().size(), double(sample.tib().ApproxBytes()) / 1e6);
  std::printf("trajectory cache capacity: %zu entries (paper: ~10MB RAM envelope for "
              "decode state)\n",
              sample.cache_stats().capacity);
  bench::BenchReport::Global().Add("storage", "tib_mb",
                                   double(sample.tib().ApproxBytes()) / 1e6, "MB");
  bench::BenchReport::Global().WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace pathdump

int main(int argc, char** argv) { return pathdump::Main(argc, argv); }
