// Figure 7 — silent-random-drop localization accuracy over time.
//
// 4-ary fat-tree, web workload at 70% load, faulty interfaces dropping 1%
// of packets silently; 1/2/4 faulty interfaces; averaged over runs.
// Paper: recall and precision rise toward 1.0 within ~100-150 s, recall
// faster than precision, and more faulty interfaces converge slower.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/silent_drop_common.h"
#include "src/common/stats.h"

namespace pathdump {
namespace {

constexpr int kRuns = 5;
constexpr double kDurationS = 150;
constexpr double kCheckpointS = 5;

int Main() {
  bench::Banner("Figure 7: silent random packet drop localization (recall/precision vs time)",
                "both -> 1.0 within ~150s; recall rises faster; more faults = slower");

  const int fault_counts[] = {1, 2, 4};
  const int checkpoints = int(kDurationS / kCheckpointS);

  // avg[f][c] over runs.
  std::vector<std::vector<Summary>> recall(3, std::vector<Summary>(size_t(checkpoints)));
  std::vector<std::vector<Summary>> precision(3, std::vector<Summary>(size_t(checkpoints)));

  for (int fi = 0; fi < 3; ++fi) {
    for (int run = 0; run < kRuns; ++run) {
      bench::SilentDropParams p;
      p.faulty_interfaces = fault_counts[fi];
      p.drop_rate = 0.01;
      p.load = 0.7;
      p.duration_s = kDurationS;
      p.checkpoint_s = kCheckpointS;
      p.seed = uint64_t(run + 1) * 131 + uint64_t(fi);
      bench::SilentDropRun r = bench::RunSilentDropExperiment(p);
      for (int c = 0; c < checkpoints; ++c) {
        recall[size_t(fi)][size_t(c)].Add(r.recall[size_t(c)]);
        precision[size_t(fi)][size_t(c)].Add(r.precision[size_t(c)]);
      }
    }
  }

  bench::Section("Fig 7(a): average recall vs time (s)    [columns: 1, 2, 4 faulty NICs]");
  std::printf("%-8s %8s %8s %8s\n", "time", "F=1", "F=2", "F=4");
  for (int c = 0; c < checkpoints; c += 2) {
    std::printf("%-8.0f %8.2f %8.2f %8.2f\n", (c + 1) * kCheckpointS,
                recall[0][size_t(c)].mean(), recall[1][size_t(c)].mean(),
                recall[2][size_t(c)].mean());
  }

  bench::Section("Fig 7(b): average precision vs time (s) [columns: 1, 2, 4 faulty NICs]");
  std::printf("%-8s %8s %8s %8s\n", "time", "F=1", "F=2", "F=4");
  for (int c = 0; c < checkpoints; c += 2) {
    std::printf("%-8.0f %8.2f %8.2f %8.2f\n", (c + 1) * kCheckpointS,
                precision[0][size_t(c)].mean(), precision[1][size_t(c)].mean(),
                precision[2][size_t(c)].mean());
  }

  // Shape checks the operator cares about.
  int last = checkpoints - 1;
  std::printf("\nfinal accuracy (t=%.0fs): ", kDurationS);
  for (int fi = 0; fi < 3; ++fi) {
    std::printf("F=%d recall=%.2f precision=%.2f  ", fault_counts[fi],
                recall[size_t(fi)][size_t(last)].mean(),
                precision[size_t(fi)][size_t(last)].mean());
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
