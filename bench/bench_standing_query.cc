// Standing queries vs polling: per-epoch cost scales with the delta,
// poll cost scales with the TIB.
//
// A poll re-scans every record on every host per query — O(TIB) each
// time, even when nothing changed.  A standing subscription pays at
// insert time (one filter + hash-map bump per record) and per epoch
// ships/folds only the increment — O(delta).  This bench measures both
// sides on the same fleet and checks, at every epoch boundary, that the
// materialized standing result is byte-identical to a fresh poll
// Execute (exit 1 on any mismatch).  Covers all four standing kinds:
// the per-flow pair (TopK, FlowSizeHistogram) in the main sections, the
// per-record pair (FlowList, CountSummary) via the count identity check
// per epoch plus a dedicated FlowList section at the end.
//
// Env knobs (reduced in CI quick-bench):
//   PATHDUMP_STANDING_AGENTS   fleet size            (default 16)
//   PATHDUMP_STANDING_PRELOAD  records/agent preload (default 40000)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/query_bench_common.h"
#include "src/apps/load_imbalance.h"
#include "src/apps/traffic_measure.h"
#include "src/controller/subscription.h"

namespace pathdump {
namespace {

constexpr size_t kTopK = 1000;
constexpr int64_t kBinWidth = 10000;

using bench::IntFromEnv;
using bench::Seconds;

struct EpochMeasurement {
  double fold_seconds = 0;  // tick + flush: the per-epoch pipeline, O(delta)
  double mat_seconds = 0;   // materialize on demand, O(active flows), no host touched
  double poll_seconds = 0;  // fresh Execute over all hosts, O(TIB)
  size_t poll_response_bytes = 0;
  bool identical = false;
};

int Main() {
  bench::Banner("Standing queries: incremental evaluation with epoch deltas",
                "per-epoch cost is O(delta) for subscriptions, O(TIB) for polls; "
                "results byte-identical at every epoch boundary");

  const int num_agents = IntFromEnv("PATHDUMP_STANDING_AGENTS", 16);
  const int preload = IntFromEnv("PATHDUMP_STANDING_PRELOAD", 40000);

  auto tb = bench::BuildQueryTestbed(num_agents, 0);
  // The shared probe link points out of the pod; records terminate at
  // hosts, so probe the reversed (down) direction for real matches.
  const LinkId probe{tb->probe_link.dst, tb->probe_link.src};

  SubscriptionManager manager(&tb->controller);
  uint64_t topk_sub = SubscribeTopK(manager, tb->hosts, kTopK);
  uint64_t hist_sub =
      SubscribeFlowSizeDistribution(manager, tb->hosts, probe, TimeRange::All(), kBinWidth);
  // The per-record kinds ride the same channel with RecordDelta payloads.
  uint64_t list_sub = SubscribeFlowList(manager, tb->hosts, probe);
  uint64_t count_sub = SubscribeCountSummary(manager, tb->hosts, probe);

  Controller::QueryFn poll_topk = [](EdgeAgent& agent) -> QueryResult {
    return agent.TopK(kTopK, TimeRange::All());
  };
  Controller::QueryFn poll_hist = [probe](EdgeAgent& agent) -> QueryResult {
    return agent.FlowSizeDistribution(probe, TimeRange::All(), kBinWidth);
  };
  Controller::QueryFn poll_list = [probe](EdgeAgent& agent) -> QueryResult {
    return FlowList{agent.GetFlows(probe, TimeRange::All())};
  };
  Controller::QueryFn poll_count = [probe](EdgeAgent& agent) -> QueryResult {
    return agent.CountOnLink(probe, TimeRange::All());
  };

  Rng rng(0x57D9);
  int next_entry = 0;
  auto insert_per_agent = [&](int n) {
    for (size_t a = 0; a < tb->hosts.size(); ++a) {
      HostId host = tb->hosts[a];
      for (int e = 0; e < n; ++e) {
        tb->agents[host]->tib().Insert(
            bench::MakeQueryRecord(*tb, a, host, next_entry + e, rng));
      }
    }
    next_entry += n;
  };

  uint64_t prev_delta_bytes = 0;
  auto measure_epoch = [&]() {
    EpochMeasurement m;
    auto t0 = std::chrono::steady_clock::now();
    manager.TickEpoch();
    manager.Flush();
    m.fold_seconds = Seconds(t0);
    t0 = std::chrono::steady_clock::now();
    QueryResult standing_topk = manager.Materialize(topk_sub);
    QueryResult standing_hist = manager.Materialize(hist_sub);
    m.mat_seconds = Seconds(t0);

    QueryResult standing_count = manager.Materialize(count_sub);

    t0 = std::chrono::steady_clock::now();
    auto [topk_res, topk_stats] = tb->controller.Execute(tb->hosts, poll_topk);
    auto [hist_res, hist_stats] = tb->controller.Execute(tb->hosts, poll_hist);
    auto [count_res, count_stats] = tb->controller.Execute(tb->hosts, poll_count);
    m.poll_seconds = Seconds(t0);
    m.poll_response_bytes = topk_stats.response_bytes + hist_stats.response_bytes;
    m.identical =
        standing_topk == topk_res && standing_hist == hist_res && standing_count == count_res;
    return m;
  };
  auto delta_bytes_this_epoch = [&]() {
    uint64_t total = manager.info(topk_sub).delta_bytes + manager.info(hist_sub).delta_bytes;
    uint64_t bytes = total - prev_delta_bytes;
    prev_delta_bytes = total;
    return bytes;
  };

  std::printf("fleet: %d agents, preload %d records/agent\n", num_agents, preload);
  insert_per_agent(preload);

  bool all_identical = true;
  bench::Section("per-epoch cost vs delta size (TIB ~fixed at preload)");
  std::printf("%-14s %10s %10s %10s %12s %14s %10s\n", "delta/agent", "fold(ms)", "mat(ms)",
              "poll(ms)", "delta(KB)", "poll-resp(KB)", "identical");
  {
    // Absorb the preload into epoch 1 (uncounted warm-up boundary).
    EpochMeasurement warm = measure_epoch();
    all_identical = all_identical && warm.identical;
    delta_bytes_this_epoch();
  }
  for (int delta : {preload / 64, preload / 16, preload / 4}) {
    if (delta <= 0) {
      continue;
    }
    insert_per_agent(delta);
    EpochMeasurement m = measure_epoch();
    all_identical = all_identical && m.identical;
    std::printf("%-14d %10.2f %10.2f %10.2f %12.1f %14.1f %10s\n", delta, m.fold_seconds * 1e3,
                m.mat_seconds * 1e3, m.poll_seconds * 1e3,
                double(delta_bytes_this_epoch()) / 1e3, double(m.poll_response_bytes) / 1e3,
                m.identical ? "yes" : "NO");
  }

  bench::Section("standing vs poll as the TIB grows (fixed delta/agent)");
  const int fixed_delta = std::max(preload / 64, 1);
  std::printf("%-14s %10s %10s %10s %12s %10s\n", "TIB/agent", "fold(ms)", "mat(ms)", "poll(ms)",
              "delta(KB)", "identical");
  for (int step = 0; step < 4; ++step) {
    // Grow the TIB between boundaries, then measure an epoch whose
    // delta is the fixed tail: poll cost tracks the first column, the
    // fold cost tracks the (constant) delta; only the on-demand
    // materialization grows with the active-flow population — and it
    // runs at the controller without touching hosts or the wire.
    insert_per_agent(preload / 2);
    // Absorb the growth into its own boundary — still a boundary, so
    // its identity check still gates the exit code.
    all_identical = all_identical && measure_epoch().identical;
    delta_bytes_this_epoch();
    insert_per_agent(fixed_delta);
    EpochMeasurement m = measure_epoch();
    all_identical = all_identical && m.identical;
    std::printf("%-14d %10.2f %10.2f %10.2f %12.1f %10s\n", next_entry, m.fold_seconds * 1e3,
                m.mat_seconds * 1e3, m.poll_seconds * 1e3,
                double(delta_bytes_this_epoch()) / 1e3, m.identical ? "yes" : "NO");
  }

  bench::Section("standing FlowList: per-record deltas vs poll as the TIB doubles");
  // The per-record kinds ship the filtered records themselves (id, flow,
  // path, counts), so the per-epoch delta tracks the *increment* while
  // the getFlows poll re-scans and re-dedups the whole TIB.  Identity at
  // every boundary gates the exit code like the per-flow kinds.
  std::printf("%-14s %10s %10s %10s %12s %10s\n", "TIB/agent", "fold(ms)", "mat(ms)", "poll(ms)",
              "delta(KB)", "identical");
  uint64_t prev_list_bytes = manager.info(list_sub).delta_bytes;
  for (int step = 0; step < 3; ++step) {
    insert_per_agent(next_entry);  // double the TIB
    auto t0 = std::chrono::steady_clock::now();
    manager.TickEpoch();
    manager.Flush();
    double fold_s = Seconds(t0);
    t0 = std::chrono::steady_clock::now();
    QueryResult standing_list = manager.Materialize(list_sub);
    double mat_s = Seconds(t0);
    t0 = std::chrono::steady_clock::now();
    auto [list_res, list_stats] = tb->controller.Execute(tb->hosts, poll_list);
    double poll_s = Seconds(t0);
    bool identical = standing_list == list_res;
    all_identical = all_identical && identical;
    uint64_t list_bytes = manager.info(list_sub).delta_bytes;
    std::printf("%-14d %10.2f %10.2f %10.2f %12.1f %10s\n", next_entry, fold_s * 1e3, mat_s * 1e3,
                poll_s * 1e3, double(list_bytes - prev_list_bytes) / 1e3,
                identical ? "yes" : "NO");
    prev_list_bytes = list_bytes;
    delta_bytes_this_epoch();  // keep the per-flow accounting in step
  }

  bench::Section("channel + fold accounting");
  SubscriptionManagerStats stats = manager.stats();
  std::printf("deltas submitted/folded: %llu/%llu, reordered %llu, orphaned %llu\n",
              (unsigned long long)stats.deltas_submitted, (unsigned long long)stats.deltas_folded,
              (unsigned long long)stats.deltas_reordered,
              (unsigned long long)stats.deltas_orphaned);
  std::printf("total delta wire bytes: %.1f KB, per-flow fold ops: %llu\n",
              double(stats.delta_bytes) / 1e3, (unsigned long long)stats.flow_updates);

  bench::Section("shape check");
  std::printf("standing results byte-identical to fresh polls at every boundary: %s\n",
              all_identical ? "YES" : "NO");
  bench::BenchReport& report = bench::BenchReport::Global();
  report.Add("accounting", "deltas_folded", double(stats.deltas_folded), "count");
  report.Add("accounting", "deltas_reordered", double(stats.deltas_reordered), "count");
  report.Add("accounting", "deltas_orphaned", double(stats.deltas_orphaned), "count");
  report.Add("accounting", "delta_kb", double(stats.delta_bytes) / 1e3, "KB");
  report.Add("accounting", "identical", all_identical ? 1 : 0, "bool");
  report.WriteIfRequested();
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
