// Figure 10 / §4.6 — TCP outcast diagnosis.
//
// 15 senders pour data into one receiver R for 10 seconds; f1's packets
// arrive at ToR T on their own input port while f2..f15 arrive aggregated
// over T's two uplinks.  Port blackout starves f1 (Fig. 10(a)).  Server
// agents raise POOR_PERF alarms every 200 ms; after >= 10 alarms for R the
// controller pulls (bytes, path) per sender from R's TIB, builds the path
// tree (Fig. 10(b)), and concludes "outcast".

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/outcast_diagnosis.h"
#include "src/edge/fleet.h"
#include "src/tcp/outcast.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"

namespace pathdump {
namespace {

int Main() {
  bench::Banner("Figure 10 / §4.6: TCP outcast diagnosis",
                "f1 (closest sender) sees the most throughput loss; controller "
                "identifies the outcast profile from R's TIB in ~200ms after alerts");

  Topology topo = BuildFatTree(4);
  const FatTreeMeta& m = *topo.fat_tree();
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);

  // Receiver R and the 15 senders: f1 on R's rack, f2-f8 same pod, f9-f15
  // in remote pods — matching Fig. 10(b)'s tree.
  // FatTree(4) has exactly 16 hosts: R plus 15 distinct senders.  f1 is
  // R's rack mate (2-hop), f2-f3 sit in R's pod, f4-f15 in remote pods.
  HostId receiver = topo.HostsOfTor(m.tor[0][0])[0];
  std::vector<HostId> senders;
  for (HostId h : topo.hosts()) {
    if (h != receiver) {
      senders.push_back(h);
    }
  }

  // The queueing contention at ToR T: f1 alone on one input port, 14 flows
  // over the two uplink ports.
  OutcastConfig ocfg;
  ocfg.flows_per_port = {1, 7, 7};
  ocfg.rtt_seconds = 0.004;
  ocfg.rounds = 2500;  // 10 seconds
  ocfg.seed = 20161102;
  OutcastSimulator sim(ocfg);
  auto stats = sim.Run();

  // Feed delivered bytes + paths into R's TIB and raise the alarms the
  // active monitors would have raised (>=3 consecutive retx, 200 ms poll).
  EdgeAgent& agent = fleet.agent(receiver);
  OutcastDiagnoser diagnoser(/*min_alerts=*/10);
  double duration_s = double(ocfg.rounds) * ocfg.rtt_seconds;
  std::vector<FiveTuple> flows;
  for (size_t i = 0; i < senders.size(); ++i) {
    FiveTuple f;
    f.src_ip = topo.IpOfHost(senders[i]);
    f.dst_ip = topo.IpOfHost(receiver);
    f.src_port = uint16_t(20000 + i);
    f.dst_port = 5001;
    f.protocol = kProtoTcp;
    flows.push_back(f);

    TibRecord rec;
    rec.flow = f;
    rec.path = CompactPath::FromPath(router.EcmpPaths(senders[i], receiver)[0]);
    rec.stime = 0;
    rec.etime = SimTime(duration_s * double(kNsPerSec));
    rec.bytes = stats[i].delivered_pkts * ocfg.mss_bytes;
    rec.pkts = uint32_t(stats[i].delivered_pkts);
    agent.IngestRecord(rec, rec.etime);
  }
  bool triggered = false;
  SimTime triggered_at = 0;
  for (const RetxEvent& e : sim.retx_events()) {
    Alarm a;
    a.reason = AlarmReason::kPoorPerf;
    a.flow = flows[size_t(e.flow_index)];
    a.at = e.at;
    if (diagnoser.OnAlarm(a) && !triggered) {
      triggered = true;
      triggered_at = e.at;
    }
  }

  bench::Section("Fig 10(a): per-sender throughput at R");
  std::printf("%-8s %-12s %-10s %-8s %s\n", "flow", "tput(Mbps)", "retx", "RTOs",
              "path length (switches)");
  for (size_t i = 0; i < stats.size(); ++i) {
    std::printf("f%-7zu %-12.2f %-10llu %-8d %d\n", i + 1, stats[i].throughput_mbps,
                (unsigned long long)stats[i].retransmissions, stats[i].timeouts,
                int(agent.tib().record(i)->path.len));
  }

  bench::Section("Fig 10(b): path tree at R (path length -> #flows)");
  OutcastVerdict v = diagnoser.Diagnose(agent, TimeRange::All(), duration_s);
  for (auto& [len, count] : v.path_tree) {
    std::printf("  %d-switch paths: %d flow(s)\n", len, count);
  }

  bench::Section("controller verdict");
  std::printf("alerts from distinct sources: %d (diagnosis starts at >=10)\n",
              diagnoser.AlertCountFor(topo.IpOfHost(receiver)));
  std::printf("diagnosis triggered: %s at t=%.2fs\n", triggered ? "yes" : "no",
              double(triggered_at) / double(kNsPerSec));
  std::printf("victim flow: f%u  (%.2f Mbps vs others' mean %.2f Mbps, unfairness %.1fx)\n",
              unsigned(v.victim.flow.src_port - 20000 + 1), v.victim_mbps, v.mean_other_mbps,
              v.unfairness);
  std::printf("victim is the closest sender (%d-switch path): %s\n", v.victim.path_switches,
              v.victim.path_switches == 1 ? "yes" : "no");
  std::printf("=> TCP OUTCAST: %s (paper: yes)\n", v.is_outcast ? "CONFIRMED" : "not detected");
  return v.is_outcast ? 0 : 1;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
