// Figure 5 — ECMP load-imbalance diagnosis.
//
// Scenario (§4.2): aggregate switch SAgg in pod 0 uses a pathological hash
// that pins flows larger than 1 MB to link 1 (to core 0) and smaller flows
// to link 2 (to core 1).  Web-workload flows run from pod-0 hosts to other
// pods for 10 minutes.
//
// Outputs:
//  (b) CDF of the imbalance rate lambda = (Lmax/Lmean - 1)*100 between the
//      two links, sampled every 5 s — paper: >= 40% for ~80% of samples.
//  (c) Flow-size distributions on the two links from a multi-level query
//      over every host TIB — paper: sharply divided around 1 MB.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/load_imbalance.h"
#include "src/common/stats.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

namespace pathdump {
namespace {

constexpr int64_t kSplitBytes = 1000 * 1000;  // 1 MB split point
constexpr SimTime kBucket = 5 * kNsPerSec;
constexpr SimTime kDuration = 600 * kNsPerSec;  // 10 minutes

int Main() {
  bench::Banner(
      "Figure 5: ECMP load imbalance (flow-size based split at SAgg)",
      "imbalance rate >= 40% for ~80% of 5s samples; flow-size CDFs split at 1MB");

  Topology topo = BuildFatTree(4);
  const FatTreeMeta& m = *topo.fat_tree();
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);

  NodeId sagg = m.agg[0][0];
  NodeId link1_core = m.core[0];  // "link 1": big flows
  NodeId link2_core = m.core[1];  // "link 2": small flows

  FluidConfig fcfg;
  fcfg.seed = 20160501;
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.EnableLinkLoadTracking(kBucket);
  // The poor hash at SAgg, expressed as an explicit path assignment: every
  // pod-0 flow rides SAgg, then core 0 or core 1 by flow size.
  fluid.SetPathChooser([&](const FlowDesc& f) -> std::vector<std::pair<Path, double>> {
    SwitchId src_tor = topo.TorOfHost(f.src);
    SwitchId dst_tor = topo.TorOfHost(f.dst);
    int dst_pod = topo.node(dst_tor).pod;
    NodeId core = f.bytes > uint64_t(kSplitBytes) ? link1_core : link2_core;
    return {{Path{src_tor, sagg, core, m.agg[size_t(dst_pod)][0], dst_tor}, 1.0}};
  });

  // Pod-0 sources, inter-pod destinations, web-traffic sizes.
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 25;
  params.duration = kDuration;
  params.dst_policy = DstPolicy::kInterPod;
  params.seed = 42;
  for (int t = 0; t < m.tors_per_pod; ++t) {
    for (HostId h : topo.HostsOfTor(m.tor[0][size_t(t)])) {
      params.sources.push_back(h);
    }
  }
  auto flows = gen.Generate(params);
  std::printf("workload: %zu flows over %d s from %zu pod-0 hosts\n", flows.size(), 600,
              params.sources.size());
  fluid.Run(flows, &fleet, nullptr);

  // (b) Imbalance-rate CDF over 5 s buckets.
  bench::Section("Fig 5(b): CDF of imbalance rate between link1 and link2 (5s samples)");
  Cdf lambda;
  for (int64_t b = 0; b < kDuration / kBucket; ++b) {
    double l1 = double(fluid.LinkLoad(sagg, link1_core, b));
    double l2 = double(fluid.LinkLoad(sagg, link2_core, b));
    if (l1 + l2 == 0) {
      continue;
    }
    lambda.Add(ImbalanceRatePercent({l1, l2}));
  }
  std::printf("%-16s %s\n", "imbalance(%)", "CDF");
  for (auto [x, q] : lambda.Points(11)) {
    std::printf("%-16.1f %.2f\n", x, q);
  }
  std::printf("fraction of samples with imbalance >= 40%%: %.2f (paper: ~0.8)\n",
              1.0 - lambda.FractionBelow(40.0));

  // (c) Flow-size distribution per link via the multi-level query (§2.3).
  bench::Section("Fig 5(c): flow size distribution per link (multi-level query, binsize 10KB)");
  std::vector<HostId> hosts = controller.registered_hosts();
  FlowSizeHistogram h1 = FlowSizeDistributionForLink(controller, hosts, LinkId{sagg, link1_core},
                                                     TimeRange::All(), 10000, true);
  FlowSizeHistogram h2 = FlowSizeDistributionForLink(controller, hosts, LinkId{sagg, link2_core},
                                                     TimeRange::All(), 10000, true);
  auto print_cdf = [](const char* name, const FlowSizeHistogram& h) {
    int64_t total = 0;
    for (auto& [bin, c] : h.bins) {
      total += c;
    }
    std::printf("%s: %lld flows\n", name, (long long)total);
    std::printf("  %-14s %s\n", "size(bytes)<=", "CDF");
    int64_t acc = 0;
    int printed = 0;
    for (auto& [bin, c] : h.bins) {
      acc += c;
      double q = double(acc) / double(total);
      if (q >= 0.1 * (printed + 1) || acc == total) {
        std::printf("  %-14lld %.2f\n", (long long)((bin + 1) * h.bin_width), q);
        while (0.1 * (printed + 1) <= q) {
          ++printed;
        }
      }
    }
  };
  print_cdf("link1 (flows > 1MB expected)", h1);
  print_cdf("link2 (flows <= 1MB expected)", h2);

  // Verdict the operator reads off the two distributions.
  int64_t l1_small = 0;
  int64_t l1_total = 0;
  for (auto& [bin, c] : h1.bins) {
    l1_total += c;
    if ((bin + 1) * h1.bin_width <= kSplitBytes) {
      l1_small += c;
    }
  }
  int64_t l2_big = 0;
  int64_t l2_total = 0;
  for (auto& [bin, c] : h2.bins) {
    l2_total += c;
    if (bin * h2.bin_width > kSplitBytes) {
      l2_big += c;
    }
  }
  std::printf("\ndiagnosis: link1 flows <=1MB: %lld/%lld, link2 flows >1MB: %lld/%lld\n",
              (long long)l1_small, (long long)l1_total, (long long)l2_big, (long long)l2_total);
  std::printf("=> distributions are sharply divided around 1MB: %s (paper: yes)\n",
              (l1_small == 0 && l2_big == 0) ? "YES" : "NO");
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
