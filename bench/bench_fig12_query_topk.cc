// Figure 12 — top-10,000-flows query: direct vs multi-level.
//
// Paper: direct response time grows linearly (controller alone merges
// k*n key-value pairs, ~7 s at 112 hosts) while multi-level stays flat
// (~2 s): interior tree nodes discard (n_i - 1)*k pairs per level.
// Traffic is tens of MB and similar for both (the reduction happens at
// interior hosts, not on the controller's wire in aggregate).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/query_bench_common.h"

namespace pathdump {
namespace {

constexpr size_t kTopK = 10000;

int Main(int argc, char** argv) {
  bench::Banner("Figure 12: top-10,000 flows query, direct vs multi-level",
                "direct grows linearly with #hosts; multi-level stays flat; tens of MB");

  int entries = bench::EntriesFromEnv(240000);
  bench::ShardSweepOptions sweep = bench::ParseSweepArgs(argc, argv);
  auto tb = bench::BuildQueryTestbed(112, entries);

  Controller::QueryFn query = [](EdgeAgent& agent) -> QueryResult {
    return agent.TopK(kTopK, TimeRange::All());
  };

  bench::Section("response time and network traffic vs #end-hosts (avg of 3 runs)");
  std::printf("%-10s %14s %14s %14s %14s\n", "hosts", "direct(s)", "multi(s)", "direct(MB)",
              "multi(MB)");
  double direct_at_28 = 0, direct_at_112 = 0, multi_at_28 = 0, multi_at_112 = 0;
  for (int n : {28, 56, 84, 112}) {
    std::vector<HostId> subset(tb->hosts.begin(), tb->hosts.begin() + n);
    double dtime = 0, mtime = 0;
    size_t dbytes = 0, mbytes = 0;
    const int runs = 3;
    uint64_t dtop = 0, mtop = 0;
    for (int r = 0; r < runs; ++r) {
      auto [dres, dstats] = tb->controller.Execute(subset, query);
      auto [mres, mstats] = tb->controller.ExecuteMultiLevel(subset, query);
      dtime += dstats.response_time_seconds;
      mtime += mstats.response_time_seconds;
      dbytes = dstats.response_bytes;  // Fig 12(b) plots response payloads
      mbytes = mstats.response_bytes;
      auto& dt = std::get<TopKFlows>(dres);
      auto& mt = std::get<TopKFlows>(mres);
      dt.k = kTopK;
      mt.k = kTopK;
      dt.Finalize();
      mt.Finalize();
      dtop = dt.items.empty() ? 0 : dt.items[0].first;
      mtop = mt.items.empty() ? 0 : mt.items[0].first;
    }
    if (dtop != mtop) {
      std::printf("ERROR: direct and multi-level disagree on the top flow\n");
      return 1;
    }
    std::printf("%-10d %14.3f %14.3f %14.2f %14.2f\n", n, dtime / runs, mtime / runs,
                double(dbytes) / 1e6, double(mbytes) / 1e6);
    if (n == 28) {
      direct_at_28 = dtime / runs;
      multi_at_28 = mtime / runs;
    }
    if (n == 112) {
      direct_at_112 = dtime / runs;
      multi_at_112 = mtime / runs;
    }
  }

  bench::SweepWorkerThreads(*tb, query, "top-k flows");
  bench::SweepTibShards(*tb, entries, sweep, /*topk=*/true, kTopK);

  bench::Section("shape check");
  std::printf("direct growth 28->112 hosts: %.2fx (paper: ~linear, ~3-4x)\n",
              direct_at_112 / std::max(direct_at_28, 1e-9));
  std::printf("multi-level growth 28->112 hosts: %.2fx (paper: ~flat)\n",
              multi_at_112 / std::max(multi_at_28, 1e-9));
  std::printf("multi-level beats direct at 112 hosts: %s (paper: yes, ~2s vs ~7s)\n",
              multi_at_112 < direct_at_112 ? "YES" : "NO");
  bench::BenchReport& report = bench::BenchReport::Global();
  report.Add("fig12", "direct_at_112", direct_at_112, "s");
  report.Add("fig12", "multi_at_112", multi_at_112, "s");
  report.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace pathdump

int main(int argc, char** argv) { return pathdump::Main(argc, argv); }
