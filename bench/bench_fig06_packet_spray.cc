// Figure 6 — packet-spraying traffic distribution of one 100 MB flow
// across its four equal-cost paths, balanced vs deliberately imbalanced.
//
// Paper: balanced ~25 MB per path; imbalanced case inflates "Path 3".
// The per-path statistics come from the destination TIB (PerPathUsage),
// exactly as the operator would obtain them.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/load_imbalance.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"

namespace pathdump {
namespace {

int Main() {
  bench::Banner("Figure 6: traffic distribution of a sprayed 100MB flow over 4 paths",
                "balanced: ~25MB each; imbalanced: Path 3 inflated (~47MB vs ~18MB)");

  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);

  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  FlowDesc flow;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = 100ull * 1000 * 1000;
  flow.tuple.src_ip = topo.IpOfHost(src);
  flow.tuple.dst_ip = topo.IpOfHost(dst);
  flow.tuple.src_port = 31337;
  flow.tuple.dst_port = 80;
  flow.tuple.protocol = kProtoTcp;

  std::vector<Path> paths = router.EcmpPaths(src, dst);

  auto run_case = [&](const char* name, const std::vector<double>& weights) {
    AgentFleet fleet(&topo, &codec);
    FluidConfig cfg;
    cfg.lb_mode = LoadBalanceMode::kPacketSpray;
    cfg.seed = 99;
    FluidSimulation fluid(&topo, &router, cfg);
    if (!weights.empty()) {
      fluid.SetPathChooser([&](const FlowDesc&) {
        std::vector<std::pair<Path, double>> split;
        for (size_t i = 0; i < paths.size(); ++i) {
          split.emplace_back(paths[i], weights[i]);
        }
        return split;
      });
    }
    fluid.Run({flow}, &fleet, nullptr);

    bench::Section(name);
    auto usage = PerPathUsage(fleet.agent(dst), flow.tuple, TimeRange::All());
    std::printf("%-8s %-34s %10s\n", "path", "switches", "MBytes");
    int idx = 1;
    for (const SubflowUsage& u : usage) {
      std::printf("Path%-4d %-34s %10.1f\n", idx++, PathToString(u.path).c_str(),
                  double(u.bytes) / 1e6);
    }
    SprayBalanceReport rep =
        CheckSprayBalance(fleet.agent(dst), flow.tuple, TimeRange::All(), 1.5);
    std::printf("max/min ratio = %.2f -> %s\n", rep.max_min_ratio,
                rep.balanced ? "BALANCED" : "IMBALANCED (operator alerted to hot path)");
  };

  run_case("balanced spraying (uniform multinomial)", {});
  run_case("imbalanced spraying (misconfigured switches favor Path 3)",
           {0.18, 0.18, 0.46, 0.18});
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
