// Ablation — aggregation-tree geometry (§3.2, §5.2).
//
// The paper uses a 4-level tree with 7 nodes under the controller and
// fanout 4.  This bench sweeps the geometry for the top-10K query over
// 112 agents and shows the trade-off the paper describes: wider trees
// serialize more merging at each parent (toward the direct query's
// behaviour); deeper trees pay more per-level transfer latency but spread
// the aggregation compute.  It also reports the direct query as the
// degenerate "fanout = everyone" case.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/query_bench_common.h"

namespace pathdump {
namespace {

int Main() {
  bench::Banner("Ablation: aggregation-tree fanout/depth for the top-10K query",
                "paper picks (top=7, fanout=4); direct = degenerate flat tree");

  int entries = bench::EntriesFromEnv(60000);
  auto tb = bench::BuildQueryTestbed(112, entries);
  Controller::QueryFn query = [](EdgeAgent& agent) -> QueryResult {
    return agent.TopK(10000, TimeRange::All());
  };

  bench::Section("112 hosts, avg of 3 runs");
  std::printf("%-24s %10s %12s %14s\n", "geometry", "depth", "resp (s)", "resp bytes (MB)");

  struct Geometry {
    const char* name;
    int top;
    int fanout;
  };
  const Geometry geos[] = {
      {"top=7 fanout=2", 7, 2},  {"top=7 fanout=4 (paper)", 7, 4},
      {"top=7 fanout=8", 7, 8},  {"top=14 fanout=4", 14, 4},
      {"top=28 fanout=4", 28, 4}, {"top=4 fanout=4", 4, 4},
  };
  for (const Geometry& g : geos) {
    double time = 0;
    size_t bytes = 0;
    int depth = 0;
    for (int r = 0; r < 3; ++r) {
      auto [res, stats] = tb->controller.ExecuteMultiLevel(tb->hosts, query, g.top, g.fanout);
      time += stats.response_time_seconds;
      bytes = stats.response_bytes;
      depth = BuildAggregationTree(tb->hosts, g.top, g.fanout).depth();
    }
    std::printf("%-24s %10d %12.3f %14.2f\n", g.name, depth, time / 3, double(bytes) / 1e6);
  }
  {
    double time = 0;
    size_t bytes = 0;
    for (int r = 0; r < 3; ++r) {
      auto [res, stats] = tb->controller.Execute(tb->hosts, query);
      time += stats.response_time_seconds;
      bytes = stats.response_bytes;
    }
    std::printf("%-24s %10d %12.3f %14.2f\n", "direct (flat)", 1, time / 3,
                double(bytes) / 1e6);
  }
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
