// Figure 8 — time to reach 100% recall AND precision for silent-drop
// localization, (a) vs loss rate at 70% network load, (b) vs network load
// at 1% loss rate; 1/2/4 faulty interfaces; error bars = standard error.
//
// Paper: higher loss rate and higher load both shorten localization time
// (more alarms per second -> signatures accumulate faster).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/silent_drop_common.h"
#include "src/common/stats.h"

namespace pathdump {
namespace {

constexpr int kRuns = 5;

double TimeToPerfect(const bench::SilentDropParams& base, int faults, double loss, double load,
                     int run) {
  bench::SilentDropParams p = base;
  p.faulty_interfaces = faults;
  p.drop_rate = loss;
  p.load = load;
  p.seed = uint64_t(run + 1) * 733 + uint64_t(faults) * 17 + uint64_t(loss * 1000) +
           uint64_t(load * 100);
  bench::SilentDropRun r = bench::RunSilentDropExperiment(p);
  // Cap unconverged runs at the experiment horizon (keeps means finite).
  return r.perfect_at < 0 ? p.duration_s : r.perfect_at;
}

int Main() {
  bench::Banner("Figure 8: time to 100% recall and precision",
                "decreases with loss rate (a) and with network load (b); error bar = stderr");

  bench::SilentDropParams base;
  base.duration_s = 200;
  base.checkpoint_s = 5;
  const int fault_counts[] = {1, 2, 4};

  bench::Section("Fig 8(a): network load = 70%, loss rate 1-4%  [time(s) mean+-stderr]");
  std::printf("%-10s %-16s %-16s %-16s\n", "loss(%)", "F=1", "F=2", "F=4");
  for (double loss : {0.01, 0.02, 0.03, 0.04}) {
    std::printf("%-10.0f", loss * 100);
    for (int faults : fault_counts) {
      Summary s;
      for (int run = 0; run < kRuns; ++run) {
        s.Add(TimeToPerfect(base, faults, loss, 0.7, run));
      }
      std::printf(" %7.1f+-%-7.1f", s.mean(), s.stderror());
    }
    std::printf("\n");
  }

  bench::Section("Fig 8(b): loss rate = 1%, network load 30-90%  [time(s) mean+-stderr]");
  std::printf("%-10s %-16s %-16s %-16s\n", "load(%)", "F=1", "F=2", "F=4");
  for (double load : {0.3, 0.5, 0.7, 0.9}) {
    std::printf("%-10.0f", load * 100);
    for (int faults : fault_counts) {
      Summary s;
      for (int run = 0; run < kRuns; ++run) {
        s.Add(TimeToPerfect(base, faults, 0.01, load, run));
      }
      std::printf(" %7.1f+-%-7.1f", s.mean(), s.stderror());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
