// Ablation — CherryPick header-space economics (§3.1).
//
// The motivation for link sampling: naively recording every hop of a
// 6-link path on a 48-ary fat-tree needs 36 bits of header (6-bit-padded
// per-hop link IDs x 6), while two VLAN tags provide only 24 bits.
// CherryPick's pod-reuse + edge-coloured label space needs just
// 2*(k/2)^2 labels *total*, so a single 12-bit tag traces any shortest
// path.  This bench tabulates the numbers across fat-tree sizes and
// verifies the feasibility boundary the paper quotes (fat-trees up to
// ~90-port switches fit 12 bits; the paper reserves headroom and quotes 72).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/types.h"

namespace pathdump {
namespace {

int Main() {
  bench::Banner("Ablation: CherryPick label space vs naive per-hop recording",
                "12-bit VLAN labels cover fat-trees up to k~90 via pod reuse + colouring");

  std::printf("%-6s %10s %14s %16s %18s %12s\n", "k", "hosts", "physical links",
              "naive hdr bits", "cherrypick labels", "fits 12b?");
  for (int k : {4, 8, 16, 24, 32, 48, 64, 72, 90, 92}) {
    int half = k / 2;
    long long hosts = 1LL * k * k * k / 4;
    // tor-agg + agg-core + host links per pod wiring.
    long long switch_links = 1LL * k * half * half * 2;
    long long all_links = switch_links + hosts;
    // Naive: ceil(log2(k)) bits per hop x 6 hops (shortest inter-pod path
    // has 6 links; the paper's example: 36 bits for 48-ary).
    int bits_per_hop = 0;
    while ((1 << bits_per_hop) < k) {
      ++bits_per_hop;
    }
    int naive_bits = bits_per_hop * 6;
    long long labels = 2LL * half * half;
    std::printf("%-6d %10lld %14lld %16d %18lld %12s\n", k, hosts, all_links, naive_bits,
                labels, labels <= (kMaxVlanLabel + 1) ? "yes" : "NO");
  }
  std::printf("\n(48-ary: naive needs 36 bits > 24 available; CherryPick needs 1152 labels\n"
              " of 4096 — the 12-bit VLAN ID traces any shortest path with ONE tag.)\n");
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
