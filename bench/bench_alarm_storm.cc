// Alarm-storm intake bench: throughput and enqueue latency of the
// controller's alarm pipeline (src/controller/alarm_pipeline.h) across a
// dispatch-worker sweep.
//
// Models the silent-drop + incast storm scenario: many agent threads
// submit POOR_PERF alarms concurrently while several debugging-app
// subscribers each do per-alarm work.  Reports, per worker count:
//   * intake throughput (first Submit -> Flush complete, all delivered),
//   * p50/p99 Submit() latency on the producer threads,
//   * drops (must be 0 under the default block policy) and a
//     sequence-order check on the log.
// Then two policy sections: the suppression window deduping a repeating
// key, and kDropNewest backpressure under a wedged consumer.
//
// Override the storm size with PATHDUMP_STORM_ALARMS (total alarms;
// default 60000, split across 4 producer threads).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/controller.h"

namespace pathdump {
namespace {

constexpr int kProducers = 4;
constexpr int kSubscribers = 4;

size_t TotalAlarms() {
  return std::max<size_t>(size_t(bench::IntFromEnv("PATHDUMP_STORM_ALARMS", 60000)),
                          size_t(kProducers));
}

Alarm StormAlarm(int producer, int i) {
  Alarm a;
  a.host = HostId(producer);
  a.flow = FiveTuple{uint32_t(10 + producer), 20, uint16_t(i % 50000), 80, kProtoTcp};
  a.reason = AlarmReason::kPoorPerf;
  a.at = SimTime(i) * kNsPerMs;
  return a;
}

// Per-alarm subscriber work: a deterministic hash burn standing in for a
// debugging app consulting its state (~sub-microsecond).
uint64_t BurnWork(const Alarm& a) {
  uint64_t h = a.seq + 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 32; ++i) {
    h = HashMix64(h + uint64_t(i));
  }
  return h;
}

using bench::Percentile;

void StormSweep() {
  const size_t total = TotalAlarms();
  const size_t per_producer = total / kProducers;
  bench::Section("storm: 4 producer threads, 4 subscribers, block policy  "
                 "[sweep dispatch workers]");
  std::printf("%-9s %-10s %-12s %-12s %-12s %-8s %-8s %-6s\n", "workers", "alarms",
              "throughput", "p50 submit", "p99 submit", "batches", "maxbatch", "ok");
  for (size_t workers : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    Controller controller;
    AlarmPipelineOptions opts;
    opts.queue_capacity = 8192;
    opts.max_batch = 512;
    opts.dispatch_workers = workers;
    controller.ConfigureAlarmPipeline(opts);
    std::atomic<uint64_t> burned{0};
    for (int s = 0; s < kSubscribers; ++s) {
      controller.SubscribeAlarms([&burned](const Alarm& a) { burned += BurnWork(a) & 1; });
    }
    AlarmHandler sink = controller.MakeAlarmSink();

    std::vector<std::vector<double>> lat(kProducers);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        lat[size_t(p)].reserve(per_producer);
        for (size_t i = 0; i < per_producer; ++i) {
          auto s0 = std::chrono::steady_clock::now();
          sink(StormAlarm(p, int(i)));
          lat[size_t(p)].push_back(
              std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - s0)
                  .count());
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    controller.FlushAlarms();
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    AlarmPipelineStats st = controller.alarm_stats();
    const std::vector<Alarm>& log = controller.alarm_log();
    bool ok = st.dropped == 0 && log.size() == per_producer * kProducers;
    for (size_t i = 0; ok && i < log.size(); ++i) {
      ok = log[i].seq == i;  // sequence-ordered at every worker count
    }
    std::vector<double> all;
    for (auto& v : lat) {
      all.insert(all.end(), v.begin(), v.end());
    }
    std::printf("%-9zu %-10zu %8.2f M/s %9.3f us %9.3f us %-8llu %-8llu %-6s\n", workers,
                log.size(), double(log.size()) / secs / 1e6, Percentile(all, 0.50),
                Percentile(all, 0.99), (unsigned long long)st.batches,
                (unsigned long long)st.max_batch, ok ? "yes" : "NO");
    const std::string section = "storm.workers_" + std::to_string(workers);
    bench::BenchReport::Global().Add(section, "alarms_per_sec", double(log.size()) / secs, "1/s");
    bench::BenchReport::Global().Add(section, "submit_p99", Percentile(all, 0.99), "us");
  }
}

void SuppressionSection() {
  bench::Section("suppression: one flapping (host, flow, reason) key, 1 s window");
  Controller controller;
  AlarmPipelineOptions opts;
  opts.suppression_window = kNsPerSec;
  controller.ConfigureAlarmPipeline(opts);
  const size_t n = 100000;
  AlarmHandler sink = controller.MakeAlarmSink();
  for (size_t i = 0; i < n; ++i) {
    Alarm a = StormAlarm(0, 0);
    a.at = SimTime(i) * kNsPerMs;  // 1000 repeats per suppression window
    sink(a);
  }
  controller.FlushAlarms();
  AlarmPipelineStats st = controller.alarm_stats();
  std::printf("submitted %llu -> delivered %llu, suppressed %llu (%.1f%%)\n",
              (unsigned long long)st.submitted, (unsigned long long)st.delivered,
              (unsigned long long)st.suppressed,
              100.0 * double(st.suppressed) / double(st.submitted));
}

void BackpressureSection() {
  bench::Section("backpressure: kDropNewest, 64-slot queue, one slow subscriber");
  Controller controller;
  AlarmPipelineOptions opts;
  opts.queue_capacity = 64;
  opts.max_batch = 64;
  opts.overflow = AlarmOverflowPolicy::kDropNewest;
  controller.ConfigureAlarmPipeline(opts);
  controller.SubscribeAlarms([](const Alarm&) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  });
  AlarmHandler sink = controller.MakeAlarmSink();
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    sink(StormAlarm(0, int(i)));
  }
  controller.FlushAlarms();
  AlarmPipelineStats st = controller.alarm_stats();
  std::printf("submitted %zu -> accepted %llu, dropped %llu (%.1f%%), log %zu\n", n,
              (unsigned long long)st.submitted, (unsigned long long)st.dropped,
              100.0 * double(st.dropped) / double(n), controller.alarm_log().size());
}

int Main() {
  bench::Banner("Alarm storm: batched MPSC intake + parallel subscriber dispatch",
                "intake stays off the agents' hot path; log is sequence-ordered and "
                "byte-identical at any dispatch worker count; block policy never drops");
  StormSweep();
  SuppressionSection();
  BackpressureSection();
  bench::BenchReport::Global().WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
