// Ablation — the trajectory cache (§3.2, Fig. 2).
//
// Trajectory construction consults an LRU cache keyed by (srcIP, link IDs)
// before decoding against the topology.  This bench quantifies the design
// choice: per-record construction cost with the cache (steady-state hits)
// vs. decoding every record from scratch, on fat-trees of growing size.
// The win grows with topology size because decode cost scales with k while
// a cache hit stays O(1).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/cherrypick/codec.h"
#include "src/cherrypick/trajectory_cache.h"
#include "src/common/rng.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/topology/routing.h"

namespace pathdump {
namespace {

struct DecodeWorkload {
  Topology topo;
  std::unique_ptr<LinkLabelMap> labels;
  std::unique_ptr<CherryPickCodec> codec;
  struct Item {
    HostId src;
    HostId dst;
    LinkLabel dscp;
    std::vector<LinkLabel> tags;
  };
  std::vector<Item> items;
};

DecodeWorkload MakeWorkload(int k, int flows) {
  DecodeWorkload w;
  w.topo = BuildFatTree(k);
  w.labels = std::make_unique<LinkLabelMap>(&w.topo);
  w.codec = std::make_unique<CherryPickCodec>(&w.topo, w.labels.get());
  Router router(&w.topo);
  Rng rng(k * 7 + 1);
  const auto& hosts = w.topo.hosts();
  for (int i = 0; i < flows; ++i) {
    HostId src = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    HostId dst = src;
    while (dst == src) {
      dst = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    }
    auto paths = router.EcmpPaths(src, dst);
    const Path& p = paths[rng.UniformInt(uint32_t(paths.size()))];
    // Encode along the path, as the switches would.
    DecodeWorkload::Item item;
    item.src = src;
    item.dst = dst;
    item.dscp = 0;
    for (size_t h = 0; h < p.size(); ++h) {
      NodeId in = h == 0 ? NodeId(src) : p[h - 1];
      NodeId out = h + 1 < p.size() ? p[h + 1] : NodeId(dst);
      TagAction act = w.codec->OnForward(p[h], in, out, dst, int(item.tags.size()), item.dscp);
      if (act.push_vlan) {
        item.tags.push_back(act.vlan);
      }
      if (act.set_dscp) {
        item.dscp = act.dscp;
      }
    }
    w.items.push_back(std::move(item));
  }
  return w;
}

void BM_DecodeNoCache(benchmark::State& state) {
  DecodeWorkload w = MakeWorkload(int(state.range(0)), 4096);
  size_t i = 0;
  for (auto _ : state) {
    const auto& item = w.items[i];
    auto path = w.codec->Decode(item.src, item.dst, item.dscp, item.tags);
    benchmark::DoNotOptimize(path);
    i = (i + 1) % w.items.size();
  }
  state.SetLabel("decode every record");
}

void BM_DecodeWithCache(benchmark::State& state) {
  DecodeWorkload w = MakeWorkload(int(state.range(0)), 4096);
  TrajectoryCache cache(8192);
  size_t i = 0;
  for (auto _ : state) {
    const auto& item = w.items[i];
    IpAddr src_ip = w.topo.IpOfHost(item.src);
    auto hit = cache.Lookup(src_ip, item.dscp, item.tags);
    if (!hit) {
      auto path = w.codec->Decode(item.src, item.dst, item.dscp, item.tags);
      if (path) {
        cache.Insert(src_ip, item.dscp, item.tags, *path);
      }
      benchmark::DoNotOptimize(path);
    } else {
      benchmark::DoNotOptimize(hit);
    }
    i = (i + 1) % w.items.size();
  }
  state.counters["hit_rate"] =
      double(cache.hits()) / double(std::max<uint64_t>(cache.hits() + cache.misses(), 1));
}

BENCHMARK(BM_DecodeNoCache)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DecodeWithCache)->Arg(4)->Arg(8)->Arg(16);

// Generic topologies have no closed-form decoder: reconstruction is a
// topology-constrained DFS, orders of magnitude slower than the fat-tree
// formulas — this is where the trajectory cache earns its keep.
struct GenericWorkload {
  Topology topo;
  std::unique_ptr<LinkLabelMap> labels;
  std::unique_ptr<CherryPickCodec> codec;
  HostId src = kInvalidNode;
  HostId dst = kInvalidNode;
  std::vector<LinkLabel> tags;
};

GenericWorkload MakeGenericWorkload(int mesh) {
  GenericWorkload w;
  // A mesh x mesh grid of switches with hosts at two corners: plenty of
  // alternative routes for the DFS to prune.
  std::vector<std::vector<SwitchId>> grid;
  grid.assign(size_t(mesh), std::vector<SwitchId>(size_t(mesh), 0));
  for (int r = 0; r < mesh; ++r) {
    for (int c = 0; c < mesh; ++c) {
      grid[size_t(r)][size_t(c)] = w.topo.AddSwitch(NodeRole::kAgg, -1, r * mesh + c);
    }
  }
  for (int r = 0; r < mesh; ++r) {
    for (int c = 0; c < mesh; ++c) {
      if (c + 1 < mesh) {
        w.topo.AddLink(grid[size_t(r)][size_t(c)], grid[size_t(r)][size_t(c) + 1]);
      }
      if (r + 1 < mesh) {
        w.topo.AddLink(grid[size_t(r)][size_t(c)], grid[size_t(r) + 1][size_t(c)]);
      }
    }
  }
  w.src = w.topo.AddHost();
  w.topo.AddLink(w.src, grid[0][0]);
  w.dst = w.topo.AddHost();
  w.topo.AddLink(w.dst, grid[size_t(mesh) - 1][size_t(mesh) - 1]);
  w.labels = std::make_unique<LinkLabelMap>(&w.topo);
  w.codec = std::make_unique<CherryPickCodec>(&w.topo, w.labels.get());
  // Encode the top-row + right-column walk.
  Path p;
  for (int c = 0; c < mesh; ++c) {
    p.push_back(grid[0][size_t(c)]);
  }
  for (int r = 1; r < mesh; ++r) {
    p.push_back(grid[size_t(r)][size_t(mesh) - 1]);
  }
  for (size_t h = 1; h < p.size(); ++h) {
    w.tags.push_back(w.labels->LabelOf(p[h - 1], p[h]));
  }
  return w;
}

void BM_GenericDecodeNoCache(benchmark::State& state) {
  GenericWorkload w = MakeGenericWorkload(int(state.range(0)));
  for (auto _ : state) {
    auto path = w.codec->Decode(w.src, w.dst, 0, w.tags);
    benchmark::DoNotOptimize(path);
  }
  state.SetLabel("constrained DFS per record");
}

void BM_GenericDecodeWithCache(benchmark::State& state) {
  GenericWorkload w = MakeGenericWorkload(int(state.range(0)));
  TrajectoryCache cache(128);
  IpAddr src_ip = w.topo.IpOfHost(w.src);
  for (auto _ : state) {
    auto hit = cache.Lookup(src_ip, 0, w.tags);
    if (!hit) {
      auto path = w.codec->Decode(w.src, w.dst, 0, w.tags);
      if (path) {
        cache.Insert(src_ip, 0, w.tags, *path);
      }
      benchmark::DoNotOptimize(path);
    } else {
      benchmark::DoNotOptimize(hit);
    }
  }
  state.SetLabel("cache hit after first decode");
}

BENCHMARK(BM_GenericDecodeNoCache)->Arg(4)->Arg(5)->Arg(6);
BENCHMARK(BM_GenericDecodeWithCache)->Arg(4)->Arg(5)->Arg(6);

}  // namespace
}  // namespace pathdump

int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Ablation: trajectory cache vs decode-from-scratch (per record)\n");
  std::printf("design claim: the (srcIP, linkIDs) cache keeps construction O(1)\n");
  std::printf("==============================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
