// Ablation — the two-fidelity design (DESIGN.md §4).
//
// The repo runs minute/hour-scale experiments (Figs. 5, 7, 8) on a
// flow-level engine instead of the per-packet simulator.  This bench
// justifies that: for an identical ECMP workload the two engines produce
// the SAME per-flow paths and byte counts in every TIB (fidelity), while
// the fluid engine runs orders of magnitude faster (feasibility — the
// Fig. 7/8 sweeps replay ~10^5 flows x 10 runs x 3 configurations).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

namespace pathdump {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

int Main() {
  bench::Banner("Ablation: flow-level (fluid) engine vs per-packet simulator",
                "same TIB contents per flow; fluid is the only way the Fig. 7/8 "
                "sweeps fit a workstation");

  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 8;
  params.duration = 2 * kNsPerSec;
  params.seed = 31;
  auto flows = gen.Generate(params);
  uint64_t total_pkts = 0;
  for (const FlowDesc& f : flows) {
    total_pkts += (f.bytes + kDefaultMss - 1) / kDefaultMss;
  }
  std::printf("workload: %zu flows, ~%llu packets\n", flows.size(),
              (unsigned long long)total_pkts);

  // Per-packet engine.
  auto t0 = std::chrono::steady_clock::now();
  Network net(&topo, NetworkConfig{});
  AgentFleet packet_fleet(&topo, &net.codec());
  packet_fleet.AttachTo(net);
  for (const FlowDesc& f : flows) {
    SimTime t = f.start;
    for (Packet& p : SegmentFlow(f.tuple, f.src, f.dst, f.bytes)) {
      net.InjectPacket(p, t);
      t += kNsPerUs;
    }
  }
  net.events().RunAll();
  packet_fleet.FlushAll(net.events().now());
  double packet_s = Seconds(t0);

  // Fluid engine, same flows.
  t0 = std::chrono::steady_clock::now();
  AgentFleet fluid_fleet(&topo, &codec);
  FluidConfig fcfg;
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.Run(flows, &fluid_fleet, nullptr);
  double fluid_s = Seconds(t0);

  // Fidelity: identical per-flow (path, pkts) everywhere.
  size_t mismatches = 0;
  LinkId any{kInvalidNode, kInvalidNode};
  for (const FlowDesc& f : flows) {
    auto pp = packet_fleet.agent(f.dst).GetPaths(f.tuple, any, TimeRange::All());
    auto fp = fluid_fleet.agent(f.dst).GetPaths(f.tuple, any, TimeRange::All());
    if (pp.size() != 1 || fp.size() != 1 || pp[0] != fp[0]) {
      ++mismatches;
      continue;
    }
    CountSummary pc = packet_fleet.agent(f.dst).GetCount(Flow{f.tuple, {}}, TimeRange::All());
    CountSummary fc = fluid_fleet.agent(f.dst).GetCount(Flow{f.tuple, {}}, TimeRange::All());
    if (pc.pkts != fc.pkts) {
      ++mismatches;
    }
  }

  bench::Section("results");
  std::printf("per-packet engine: %8.3f s  (%.2f Mpkt/s simulated)\n", packet_s,
              double(total_pkts) / packet_s / 1e6);
  std::printf("fluid engine:      %8.3f s\n", fluid_s);
  std::printf("speedup:           %8.0fx\n", packet_s / fluid_s);
  std::printf("per-flow (path, pkts) mismatches: %zu / %zu %s\n", mismatches, flows.size(),
              mismatches == 0 ? "(exact agreement)" : "(UNEXPECTED)");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
