// Shared setup for the query-performance experiments (Figs. 11 and 12):
// 112 end-host agents, each with a TIB of 240 K flow entries (roughly one
// hour of flows at ~67 flows/s, §5.1), and a 4-level aggregation tree
// (7 nodes under the controller, fanout 4 below).

#ifndef PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_
#define PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/topology/routing.h"
#include "tests/test_util.h"

namespace pathdump {
namespace bench {

struct QueryTestbed {
  Topology topo;
  std::unique_ptr<LinkLabelMap> labels;
  std::unique_ptr<CherryPickCodec> codec;
  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<EdgeAgent>> agents;
  Controller controller;
  std::vector<HostId> hosts;  // the queried population, in tree order
  // A link that a known fraction of the records traverses (query target).
  LinkId probe_link;
};

// One synthetic TIB entry terminating at `host` (agent index `a` of the
// tree order) — the shared ECMP record fixture (tests/test_util.h),
// bound to this testbed's topology/router.
inline TibRecord MakeQueryRecord(const QueryTestbed& tb, size_t a, HostId host, int e, Rng& rng) {
  return testutil::MakeEcmpRecord(tb.topo, *tb.router, a, host, e, rng);
}

// Builds the testbed.  entries_per_agent defaults to the paper's 240 K;
// override via the PATHDUMP_TIB_ENTRIES env var for quick runs.
inline std::unique_ptr<QueryTestbed> BuildQueryTestbed(int num_agents = 112,
                                                       int entries_per_agent = 240000) {
  auto tb = std::make_unique<QueryTestbed>();
  // FatTree(8) has 128 hosts; take the first num_agents.
  tb->topo = BuildFatTree(8);
  tb->labels = std::make_unique<LinkLabelMap>(&tb->topo);
  tb->codec = std::make_unique<CherryPickCodec>(&tb->topo, tb->labels.get());
  tb->router = std::make_unique<Router>(&tb->topo);

  const FatTreeMeta& m = *tb->topo.fat_tree();
  tb->probe_link = LinkId{m.agg[0][0], m.core[0]};

  Rng rng(0xF16);
  const std::vector<HostId>& all_hosts = tb->topo.hosts();
  tb->agents.resize(tb->topo.node_count());
  std::printf("populating %d agents x %d TIB entries...\n", num_agents, entries_per_agent);
  for (int a = 0; a < num_agents; ++a) {
    HostId host = all_hosts[size_t(a)];
    EdgeAgentConfig cfg;
    cfg.tib_options.index_by_flow = false;  // bounded memory at 27M records
    auto agent = std::make_unique<EdgeAgent>(host, &tb->topo, tb->codec.get(), cfg);

    for (int e = 0; e < entries_per_agent; ++e) {
      agent->tib().Insert(MakeQueryRecord(*tb, size_t(a), host, e, rng));
    }
    tb->controller.RegisterAgent(agent.get());
    tb->hosts.push_back(host);
    tb->agents[host] = std::move(agent);
  }
  return tb;
}

// Wall-clock sweep of the controller's fan-out worker pool: runs both
// query mechanisms over all hosts at 1/2/4/8 workers, verifies the merged
// payload is byte-identical to the sequential baseline, and prints
// measured wall time + speedup.  (Speedup requires hardware parallelism;
// on a single-core box the interesting column is "identical".)
inline void SweepWorkerThreads(QueryTestbed& tb, const Controller::QueryFn& query,
                               const char* what) {
  std::printf("\n--- %s: fan-out wall-clock vs worker threads (%zu hosts) ---\n", what,
              tb.hosts.size());
  std::printf("%-10s %14s %14s %14s %14s %10s\n", "threads", "direct-wall(s)", "multi-wall(s)",
              "direct-spdup", "multi-spdup", "identical");
  double direct_base = 0, multi_base = 0;
  size_t base_direct_bytes = 0, base_multi_bytes = 0;
  QueryResult base_direct_res, base_multi_res;
  for (size_t workers : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    tb.controller.SetWorkerThreads(workers);
    auto t0 = std::chrono::steady_clock::now();
    auto [dres, dstats] = tb.controller.Execute(tb.hosts, query);
    auto t1 = std::chrono::steady_clock::now();
    auto [mres, mstats] = tb.controller.ExecuteMultiLevel(tb.hosts, query);
    auto t2 = std::chrono::steady_clock::now();
    double dwall = std::chrono::duration<double>(t1 - t0).count();
    double mwall = std::chrono::duration<double>(t2 - t1).count();
    bool identical = true;
    if (workers == 1) {
      direct_base = dwall;
      multi_base = mwall;
      base_direct_bytes = dstats.network_bytes;
      base_multi_bytes = mstats.network_bytes;
      base_direct_res = dres;
      base_multi_res = mres;
    } else {
      identical = dstats.network_bytes == base_direct_bytes &&
                  mstats.network_bytes == base_multi_bytes && dres == base_direct_res &&
                  mres == base_multi_res;
    }
    std::printf("%-10zu %14.3f %14.3f %13.2fx %13.2fx %10s\n", workers, dwall, mwall,
                direct_base / std::max(dwall, 1e-9), multi_base / std::max(mwall, 1e-9),
                identical ? "yes" : "NO");
  }
  tb.controller.SetWorkerThreads(1);
}

// --- Intra-host shard sweep (the sharded-TIB experiment) ---

struct ShardSweepOptions {
  std::vector<size_t> shards{1, 2, 4, 8};
  std::vector<size_t> workers{1, 2, 4, 8};
};

inline std::vector<size_t> ParseSizeList(const std::string& s) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    int v = atoi(s.substr(pos, comma - pos).c_str());
    if (v > 0) {
      out.push_back(size_t(v));
    }
    pos = comma + 1;
  }
  return out;
}

// Recognizes `--shards 1,2,4` / `--shards=1,2,4` (and `--workers` alike).
inline ShardSweepOptions ParseSweepArgs(int argc, char** argv) {
  ShardSweepOptions opt;
  auto value_of = [&](int& i, const char* flag) -> const char* {
    std::string arg = argv[i];
    std::string prefix = std::string(flag) + "=";
    // A leading '-' means the "value" is actually the next flag (e.g.
    // `--shards --workers 2`): reject rather than swallow it.
    if (arg == flag && i + 1 < argc && argv[i + 1][0] != '-') {
      return argv[++i];
    }
    if (arg.rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
    return nullptr;
  };
  auto apply = [](const char* flag, const char* v, std::vector<size_t>& target) {
    auto parsed = ParseSizeList(v);
    if (parsed.empty()) {
      // Silently falling back to the full default sweep would hide a typo
      // (and at 240K entries, cost real minutes) — say what happened.
      std::fprintf(stderr, "warning: %s '%s' has no positive values; keeping the default sweep\n",
                   flag, v);
      return;
    }
    target = parsed;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(i, "--shards")) {
      apply("--shards", v, opt.shards);
    } else if (const char* v = value_of(i, "--workers")) {
      apply("--workers", v, opt.workers);
    }
  }
  return opt;
}

// Single-host scan wall-clock vs (shard count x scan workers): one agent
// with `entries` TIB records, rebuilt per shard count, running either the
// top-k or the flow-size-distribution canned query.  Every cell's result
// must equal the 1-shard/1-worker baseline byte for byte — the sharding
// determinism contract.  (Speedup requires hardware parallelism; on a
// single-core box the interesting column is "identical".)
inline void SweepTibShards(QueryTestbed& tb, int entries, const ShardSweepOptions& opt,
                           bool topk, size_t k = 10000) {
  std::printf("\n--- %s: single-host scan wall-clock vs TIB shards (%d records) ---\n",
              topk ? "top-k flows" : "flow-size distribution", entries);
  std::printf("%-8s %-8s %12s %10s %10s\n", "shards", "workers", "wall(ms)", "speedup",
              "identical");
  HostId host = tb.hosts[0];
  // tb.probe_link is an uplink *out of* the sweep host's pod and never
  // appears on paths terminating there; probe the reversed (down) link so
  // the scan aggregates real matches.
  const LinkId sweep_link{tb.probe_link.dst, tb.probe_link.src};
  Rng rng(0x51AD);
  std::vector<TibRecord> records;
  records.reserve(size_t(entries));
  for (int e = 0; e < entries; ++e) {
    records.push_back(MakeQueryRecord(tb, 0, host, e, rng));
  }

  const int reps = 3;
  // Times the query on `agent` (untimed warm-up first: the initial scan
  // of a freshly built column pays its page faults, which would
  // otherwise inflate the measurement) and returns the mean wall time.
  auto measure = [&](EdgeAgent& agent, QueryResult& res) {
    auto run_query = [&] {
      if (topk) {
        res = agent.TopK(k, TimeRange::All());
      } else {
        res = agent.FlowSizeDistribution(sweep_link, TimeRange::All(), 10000);
      }
    };
    run_query();
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      run_query();
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
  };
  auto build_agent = [&](size_t shards) {
    EdgeAgentConfig cfg;
    cfg.tib_options.index_by_flow = false;
    cfg.tib_options.num_shards = shards;
    auto agent = std::make_unique<EdgeAgent>(host, &tb.topo, tb.codec.get(), cfg);
    for (const TibRecord& rec : records) {
      agent->tib().Insert(rec);
    }
    return agent;
  };

  // The reference is always 1 shard, sequential — whatever lists the
  // caller swept, every cell must match it byte for byte.
  QueryResult base;
  double base_wall;
  {
    auto agent = build_agent(1);
    base_wall = measure(*agent, base);
  }
  if (const auto* h = std::get_if<FlowSizeHistogram>(&base)) {
    int64_t flows = 0;
    for (const auto& [bin, count] : h->bins) {
      flows += count;
    }
    std::printf("(1-shard sequential baseline: %.2f ms, %lld flows on the probe link)\n",
                base_wall * 1e3, static_cast<long long>(flows));
  } else {
    std::printf("(1-shard sequential baseline: %.2f ms)\n", base_wall * 1e3);
  }

  for (size_t shards : opt.shards) {
    auto agent = build_agent(shards);
    for (size_t workers : opt.workers) {
      ThreadPool pool(workers);
      agent->SetQueryThreadPool(&pool);
      QueryResult res;
      double wall = measure(*agent, res);
      agent->SetQueryThreadPool(nullptr);
      std::printf("%-8zu %-8zu %12.2f %9.2fx %10s\n", shards, workers, wall * 1e3,
                  base_wall / std::max(wall, 1e-9), res == base ? "yes" : "NO");
    }
  }
}

inline int EntriesFromEnv(int fallback) {
  const char* env = getenv("PATHDUMP_TIB_ENTRIES");
  if (env != nullptr) {
    int v = atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_
