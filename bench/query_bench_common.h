// Shared setup for the query-performance experiments (Figs. 11 and 12):
// 112 end-host agents, each with a TIB of 240 K flow entries (roughly one
// hour of flows at ~67 flows/s, §5.1), and a 4-level aggregation tree
// (7 nodes under the controller, fanout 4 below).

#ifndef PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_
#define PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/topology/routing.h"

namespace pathdump {
namespace bench {

struct QueryTestbed {
  Topology topo;
  std::unique_ptr<LinkLabelMap> labels;
  std::unique_ptr<CherryPickCodec> codec;
  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<EdgeAgent>> agents;
  Controller controller;
  std::vector<HostId> hosts;  // the queried population, in tree order
  // A link that a known fraction of the records traverses (query target).
  LinkId probe_link;
};

// Builds the testbed.  entries_per_agent defaults to the paper's 240 K;
// override via the PATHDUMP_TIB_ENTRIES env var for quick runs.
inline std::unique_ptr<QueryTestbed> BuildQueryTestbed(int num_agents = 112,
                                                       int entries_per_agent = 240000) {
  auto tb = std::make_unique<QueryTestbed>();
  // FatTree(8) has 128 hosts; take the first num_agents.
  tb->topo = BuildFatTree(8);
  tb->labels = std::make_unique<LinkLabelMap>(&tb->topo);
  tb->codec = std::make_unique<CherryPickCodec>(&tb->topo, tb->labels.get());
  tb->router = std::make_unique<Router>(&tb->topo);

  const FatTreeMeta& m = *tb->topo.fat_tree();
  tb->probe_link = LinkId{m.agg[0][0], m.core[0]};

  Rng rng(0xF16);
  const std::vector<HostId>& all_hosts = tb->topo.hosts();
  tb->agents.resize(tb->topo.node_count());
  std::printf("populating %d agents x %d TIB entries...\n", num_agents, entries_per_agent);
  for (int a = 0; a < num_agents; ++a) {
    HostId host = all_hosts[size_t(a)];
    EdgeAgentConfig cfg;
    cfg.tib_options.index_by_flow = false;  // bounded memory at 27M records
    auto agent = std::make_unique<EdgeAgent>(host, &tb->topo, tb->codec.get(), cfg);

    for (int e = 0; e < entries_per_agent; ++e) {
      // Random remote source, one of its ECMP paths, heavy-tailed size.
      HostId src = all_hosts[rng.UniformInt(uint32_t(all_hosts.size()))];
      if (src == host) {
        src = all_hosts[(size_t(a) + 1) % all_hosts.size()];
      }
      std::vector<Path> paths = tb->router->EcmpPaths(src, host);
      const Path& path = paths[rng.UniformInt(uint32_t(paths.size()))];

      TibRecord rec;
      rec.flow.src_ip = tb->topo.IpOfHost(src);
      rec.flow.dst_ip = tb->topo.IpOfHost(host);
      rec.flow.src_port = uint16_t(1024 + (e & 0xFFFF) % 60000);
      rec.flow.dst_port = uint16_t(80 + (e >> 16));
      rec.flow.protocol = kProtoTcp;
      rec.path = CompactPath::FromPath(path);
      rec.stime = SimTime(rng.UniformInt(3600)) * kNsPerSec;
      rec.etime = rec.stime + SimTime(rng.UniformInt(5000)) * kNsPerMs;
      rec.bytes = uint64_t(rng.Pareto(1000.0, 1.3));
      rec.pkts = uint32_t(rec.bytes / 1460 + 1);
      agent->tib().Insert(rec);
    }
    tb->controller.RegisterAgent(agent.get());
    tb->hosts.push_back(host);
    tb->agents[host] = std::move(agent);
  }
  return tb;
}

// Wall-clock sweep of the controller's fan-out worker pool: runs both
// query mechanisms over all hosts at 1/2/4/8 workers, verifies the merged
// payload is byte-identical to the sequential baseline, and prints
// measured wall time + speedup.  (Speedup requires hardware parallelism;
// on a single-core box the interesting column is "identical".)
inline void SweepWorkerThreads(QueryTestbed& tb, const Controller::QueryFn& query,
                               const char* what) {
  std::printf("\n--- %s: fan-out wall-clock vs worker threads (%zu hosts) ---\n", what,
              tb.hosts.size());
  std::printf("%-10s %14s %14s %14s %14s %10s\n", "threads", "direct-wall(s)", "multi-wall(s)",
              "direct-spdup", "multi-spdup", "identical");
  double direct_base = 0, multi_base = 0;
  size_t base_direct_bytes = 0, base_multi_bytes = 0;
  QueryResult base_direct_res, base_multi_res;
  for (size_t workers : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    tb.controller.SetWorkerThreads(workers);
    auto t0 = std::chrono::steady_clock::now();
    auto [dres, dstats] = tb.controller.Execute(tb.hosts, query);
    auto t1 = std::chrono::steady_clock::now();
    auto [mres, mstats] = tb.controller.ExecuteMultiLevel(tb.hosts, query);
    auto t2 = std::chrono::steady_clock::now();
    double dwall = std::chrono::duration<double>(t1 - t0).count();
    double mwall = std::chrono::duration<double>(t2 - t1).count();
    bool identical = true;
    if (workers == 1) {
      direct_base = dwall;
      multi_base = mwall;
      base_direct_bytes = dstats.network_bytes;
      base_multi_bytes = mstats.network_bytes;
      base_direct_res = dres;
      base_multi_res = mres;
    } else {
      identical = dstats.network_bytes == base_direct_bytes &&
                  mstats.network_bytes == base_multi_bytes && dres == base_direct_res &&
                  mres == base_multi_res;
    }
    std::printf("%-10zu %14.3f %14.3f %13.2fx %13.2fx %10s\n", workers, dwall, mwall,
                direct_base / std::max(dwall, 1e-9), multi_base / std::max(mwall, 1e-9),
                identical ? "yes" : "NO");
  }
  tb.controller.SetWorkerThreads(1);
}

inline int EntriesFromEnv(int fallback) {
  const char* env = getenv("PATHDUMP_TIB_ENTRIES");
  if (env != nullptr) {
    int v = atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

}  // namespace bench
}  // namespace pathdump

#endif  // PATHDUMP_BENCH_QUERY_BENCH_COMMON_H_
