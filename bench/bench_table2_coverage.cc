// Table 2 — debugging-application coverage.
//
// Runs one miniature scenario per application row and reports whether
// PathDump supports it, matching the paper's matrix: 13 of 15 supported;
// "overlay loop detection" and "incorrect packet modification" are not
// (the latter only partially, via ground-truth trajectory validation §2.4).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/blackhole.h"
#include "src/apps/load_imbalance.h"
#include "src/apps/max_coverage.h"
#include "src/apps/outcast_diagnosis.h"
#include "src/apps/path_conformance.h"
#include "src/apps/silent_drop.h"
#include "src/apps/traffic_measure.h"
#include "src/controller/loop_detector.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

namespace pathdump {
namespace {

struct World {
  Topology topo = BuildFatTree(4);
  Router router{&topo};
  LinkLabelMap labels{&topo};
  CherryPickCodec codec{&topo, &labels};
  AgentFleet fleet{&topo, &codec};
  Controller controller;

  World() {
    controller.RegisterFleet(fleet);
    fleet.SetAlarmHandler(controller.MakeAlarmSink());
  }

  FiveTuple Flow(HostId s, HostId d, uint16_t port) {
    FiveTuple f;
    f.src_ip = topo.IpOfHost(s);
    f.dst_ip = topo.IpOfHost(d);
    f.src_port = port;
    f.dst_port = 80;
    f.protocol = kProtoTcp;
    return f;
  }

  void Ingest(HostId src, HostId dst, uint16_t port, uint64_t bytes, size_t path_idx = 0) {
    TibRecord r;
    r.flow = Flow(src, dst, port);
    auto paths = router.EcmpPaths(src, dst);
    r.path = CompactPath::FromPath(paths[path_idx % paths.size()]);
    r.stime = 0;
    r.etime = kNsPerSec;
    r.bytes = bytes;
    r.pkts = uint32_t(bytes / 1460 + 1);
    fleet.agent(dst).IngestRecord(r, r.etime);
  }
};

struct RowResult {
  std::string name;
  bool supported;
  std::string evidence;
};

RowResult LoopFreedom() {
  // §4.5: a 4-hop loop punts and the controller proves the repeat.
  Topology t;
  SwitchId s1 = t.AddSwitch(NodeRole::kTor, -1, 1, "S1");
  SwitchId s2 = t.AddSwitch(NodeRole::kAgg, -1, 2, "S2");
  SwitchId s3 = t.AddSwitch(NodeRole::kAgg, -1, 3, "S3");
  SwitchId s4 = t.AddSwitch(NodeRole::kAgg, -1, 4, "S4");
  SwitchId s5 = t.AddSwitch(NodeRole::kAgg, -1, 5, "S5");
  SwitchId s6 = t.AddSwitch(NodeRole::kTor, -1, 6, "S6");
  t.AddLink(s1, s2);
  t.AddLink(s2, s3);
  t.AddLink(s3, s4);
  t.AddLink(s4, s5);
  t.AddLink(s5, s2);
  t.AddLink(s4, s6);
  HostId a = t.AddHost(-1, 0, "A");
  t.AddLink(a, s1);
  HostId b = t.AddHost(-1, 1, "B");
  t.AddLink(b, s6);

  Network net(&t, NetworkConfig{});
  net.codec().SetGenericPushers({s3, s5});
  LoopDetector det(&net);
  det.Attach();
  net.router().SetStaticNextHops(s1, b, {s2});
  net.router().SetStaticNextHops(s2, b, {s3});
  net.router().SetStaticNextHops(s3, b, {s4});
  net.router().SetStaticNextHops(s4, b, {s5});
  net.router().SetStaticNextHops(s5, b, {s2});
  Packet p;
  p.flow = FiveTuple{t.IpOfHost(a), t.IpOfHost(b), 1, 80, 6};
  p.src_host = a;
  p.dst_host = b;
  net.InjectPacket(p, 0);
  net.events().RunAll(10000);
  bool ok = !det.detections().empty();
  return {"Loop freedom", ok,
          ok ? "4-hop loop trapped on first punt (repeated link ID)" : "loop missed"};
}

RowResult LoadImbalance() {
  World w;
  // Big flows on link1 only.
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId src = w.topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = w.topo.HostsOfTor(m.tor[1][0])[0];
  for (int i = 0; i < 20; ++i) {
    w.Ingest(src, dst, uint16_t(1000 + i), i % 2 == 0 ? 5'000'000 : 10'000, size_t(i % 2));
  }
  FlowSizeHistogram h = FlowSizeDistributionForLink(
      w.controller, w.controller.registered_hosts(),
      LinkId{kInvalidNode, kInvalidNode}, TimeRange::All(), 10000, true);
  bool ok = h.bins.size() >= 2;
  return {"Load imbalance diagnosis", ok, "per-link flow-size statistics via getFlows+getCount"};
}

RowResult CongestedLink() {
  World w;
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId src = w.topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = w.topo.HostsOfTor(m.tor[1][0])[0];
  w.Ingest(src, dst, 1000, 1'000'000);
  Path p = w.router.EcmpPaths(src, dst)[0];
  auto flows = CongestedLinkFlows(w.controller, w.controller.registered_hosts(),
                                  LinkId{p[0], p[1]}, TimeRange::All());
  bool ok = flows.size() == 1;
  return {"Congested link diagnosis", ok, "flows using the link + byte shares, for rerouting"};
}

RowResult SilentBlackhole() {
  World w;
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId src = w.topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = w.topo.HostsOfTor(m.tor[1][0])[0];
  // Sprayed flow: one subflow vanished.
  for (size_t i = 1; i < 4; ++i) {
    w.Ingest(src, dst, 1000, 25'000'00, i);
  }
  auto d = DiagnoseBlackhole(w.router, w.fleet.agent(dst), w.Flow(src, dst, 1000), src, dst,
                             TimeRange::All());
  bool ok = d.missing.size() == 1 && d.candidates.size() == 3;
  return {"Silent blackhole detection", ok,
          "missing subflow path -> 3 candidate switches (of 10)"};
}

RowResult SilentDrops() {
  World w;
  SilentDropDebugger dbg(&w.controller, &w.fleet);
  dbg.Start();
  const FatTreeMeta& m = *w.topo.fat_tree();
  FluidConfig cfg;
  cfg.seed = 5;
  FluidSimulation fluid(&w.topo, &w.router, cfg);
  fluid.AddSilentDrop(m.agg[0][0], m.core[0], 0.03);
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&w.topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 20;
  params.duration = 20 * kNsPerSec;
  params.seed = 3;
  fluid.Run(gen.Generate(params), &w.fleet, w.controller.MakeAlarmSink());
  auto acc = dbg.Accuracy({{m.agg[0][0], m.core[0]}});
  bool ok = acc.recall >= 1.0;
  return {"Silent packet drop detection", ok, "MAX-COVERAGE over POOR_PERF failure signatures"};
}

RowResult DropsOnServers() {
  World w;
  // Fault on the ToR->host link (server side) vs network links: the
  // localized link names the server, not the fabric.
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId victim = w.topo.HostsOfTor(m.tor[1][0])[0];
  SwitchId tor = w.topo.TorOfHost(victim);
  SilentDropDebugger dbg(&w.controller, &w.fleet);
  dbg.Start();
  FluidConfig cfg;
  cfg.seed = 6;
  FluidSimulation fluid(&w.topo, &w.router, cfg);
  fluid.AddSilentDrop(tor, victim, 0.05);
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&w.topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 15;
  params.duration = 20 * kNsPerSec;
  params.dst_policy = DstPolicy::kFixed;
  params.fixed_dst = victim;
  params.seed = 4;
  fluid.Run(gen.Generate(params), &w.fleet, w.controller.MakeAlarmSink());
  // Signatures all end at the victim's ToR: every hypothesized link
  // touches it -> the drop localizes to the server side of the fabric.
  auto hyp = dbg.Hypothesis();
  bool ok = !hyp.empty();
  for (const LinkId& l : hyp) {
    ok = ok && (l.src == tor || l.dst == tor);
  }
  return {"Packet drops on servers", ok, "signatures converge on the ToR-host edge"};
}

RowResult OverlayLoop() {
  return {"Overlay loop detection", false,
          "NOT SUPPORTED (paper Table 2): SLB/physical-IP loops rewrite the header; "
          "trajectories restart at the overlay hop"};
}

RowResult ProtocolBugs() {
  World w;
  // Flow with heavy retransmissions but a perfectly conformant path: the
  // network is exonerated, implicating the endpoint protocol stack.
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId src = w.topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = w.topo.HostsOfTor(m.tor[1][0])[0];
  w.Ingest(src, dst, 1000, 1'000'000);
  FiveTuple f = w.Flow(src, dst, 1000);
  for (int i = 0; i < 5; ++i) {
    w.fleet.agent(dst).RecordRetransmission(f, SimTime(i));
  }
  auto poor = w.fleet.agent(dst).GetPoorTcpFlows(3);
  auto paths = w.fleet.agent(dst).GetPaths(f, LinkId{kInvalidNode, kInvalidNode},
                                           TimeRange::All());
  bool ok = poor.size() == 1 && paths.size() == 1 && paths[0].size() == 5;
  return {"Protocol bugs", ok,
          "poor TCP flow whose trajectory is healthy -> endpoint stack implicated"};
}

RowResult Isolation() {
  World w;
  HostId a = w.topo.hosts()[0];
  HostId b = w.topo.hosts().back();
  int violations = 0;
  w.controller.SubscribeAlarms([&](const Alarm& al) {
    if (al.reason == AlarmReason::kPathConformance) {
      ++violations;
    }
  });
  InstallIsolationCheck(w.fleet.agent(b), {w.topo.IpOfHost(a)}, {w.topo.IpOfHost(b)});
  w.Ingest(a, b, 1000, 1000);
  w.controller.FlushAlarms();  // intake is asynchronous
  return {"Isolation", violations == 1, "record hook flags cross-group flows on arrival"};
}

RowResult IncorrectModification() {
  World w;
  // §2.4: a wrong switchID usually makes the trajectory infeasible and
  // raises an alarm, but corner cases evade any end-host system.
  EdgeAgent& agent = w.fleet.agent(w.topo.hosts().back());
  Packet p;
  p.flow = w.Flow(w.topo.hosts()[0], w.topo.hosts().back(), 1000);
  p.fin = true;
  p.tags = {kMaxVlanLabel};  // bogus label
  agent.OnPacket(p, 0);
  agent.FlushAll(kNsPerSec);
  bool alarm = agent.decode_failures() == 1;
  return {"Incorrect packet modification", false,
          alarm ? "NOT SUPPORTED in general (paper): infeasible-ID cases do alarm, "
                  "plausible-ID rewrites evade detection"
                : "alarm path broken"};
}

RowResult Waypoint() {
  World w;
  const FatTreeMeta& m = *w.topo.fat_tree();
  HostId src = w.topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = w.topo.HostsOfTor(m.tor[1][0])[0];
  int violations = 0;
  w.controller.SubscribeAlarms([&](const Alarm&) { ++violations; });
  ConformancePolicy policy;
  policy.required_waypoints = {m.core[3]};  // demand core 3
  InstallPathConformance(w.fleet.agent(dst), policy);
  w.Ingest(src, dst, 1000, 1000, 0);  // path via core 0 -> violation
  w.controller.FlushAlarms();  // intake is asynchronous
  return {"Waypoint routing", violations == 1, "packets bypassing the waypoint alarm PC_FAIL"};
}

RowResult Ddos() {
  World w;
  HostId victim = w.topo.hosts().back();
  for (int i = 0; i < 6; ++i) {
    w.Ingest(w.topo.hosts()[size_t(i)], victim, uint16_t(2000 + i), 9'000'000);
  }
  auto sources = DdosSources(w.fleet.agent(victim), TimeRange::All());
  return {"DDoS diagnosis", sources.size() == 6, "per-source byte accounting at the victim TIB"};
}

RowResult TrafficMatrixRow() {
  World w;
  w.Ingest(w.topo.hosts()[0], w.topo.hosts().back(), 1000, 5000);
  w.Ingest(w.topo.hosts()[1], w.topo.hosts()[8], 1001, 7000);
  auto matrix = TrafficMatrix(w.fleet, TimeRange::All());
  return {"Traffic matrix", matrix.size() == 2, "ToR-pair byte totals from all TIBs"};
}

RowResult Netshark() {
  World w;
  HostId src = w.topo.hosts()[0];
  HostId dst = w.topo.hosts().back();
  w.Ingest(src, dst, 1000, 5000);
  // Network-wide path-aware "packet logger": per-flow path + counters.
  auto flows = w.fleet.agent(dst).GetFlows(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All());
  return {"Netshark (path-aware logger)", flows.size() == 1 && flows[0].path.size() == 5,
          "getFlows returns (flow, full path) tuples"};
}

RowResult MaxPathLength() {
  World w;
  HostId dst = w.topo.hosts().back();
  int violations = 0;
  w.controller.SubscribeAlarms([&](const Alarm&) { ++violations; });
  ConformancePolicy policy;
  policy.max_path_switches = 6;
  InstallPathConformance(w.fleet.agent(dst), policy);
  TibRecord r;
  r.flow = w.Flow(w.topo.hosts()[0], dst, 1000);
  r.path = CompactPath::FromPath({1, 2, 3, 4, 5, 6, 7});
  r.etime = 1;
  w.fleet.agent(dst).IngestRecord(r, 1);
  w.controller.FlushAlarms();  // intake is asynchronous
  return {"Max path length", violations == 1, "n-switch paths alarm in real time"};
}

int Main() {
  bench::Banner("Table 2: debugging applications supported by PathDump",
                "13 of 15 rows supported; overlay loops and incorrect packet "
                "modification are not");
  std::vector<std::function<RowResult()>> rows = {
      LoopFreedom, LoadImbalance,         CongestedLink, SilentBlackhole, SilentDrops,
      DropsOnServers, OverlayLoop,        ProtocolBugs,  Isolation,       IncorrectModification,
      Waypoint,       Ddos,               TrafficMatrixRow, Netshark,     MaxPathLength,
  };
  int supported = 0;
  std::printf("%-34s %-6s %s\n", "application", "PD", "evidence");
  std::printf("%-34s %-6s %s\n", "-----------", "--", "--------");
  for (auto& row_fn : rows) {
    RowResult r = row_fn();
    supported += r.supported ? 1 : 0;
    std::printf("%-34s %-6s %s\n", r.name.c_str(), r.supported ? "yes" : "no",
                r.evidence.c_str());
  }
  std::printf("\nsupported: %d / %zu (paper: 13 / 15)\n", supported, rows.size());
  return supported == 13 ? 0 : 1;
}

}  // namespace
}  // namespace pathdump

int main() { return pathdump::Main(); }
