#include "src/fluidsim/fluid.h"

#include <algorithm>
#include <cmath>

namespace pathdump {

FluidSimulation::FluidSimulation(const Topology* topo, const Router* router, FluidConfig config)
    : topo_(topo), router_(router), config_(config), rng_(config.seed) {}

void FluidSimulation::AddSilentDrop(NodeId a, NodeId b, double p) {
  faults_[DirKey(a, b)] = p;
}

void FluidSimulation::EnableLinkLoadTracking(SimTime bucket_width) {
  load_bucket_ = bucket_width;
}

uint64_t FluidSimulation::LinkLoad(NodeId a, NodeId b, int64_t bucket_idx) const {
  auto it = link_loads_.find(DirKey(a, b));
  if (it == link_loads_.end()) {
    return 0;
  }
  auto jt = it->second.find(bucket_idx);
  return jt == it->second.end() ? 0 : jt->second;
}

FluidSimulation::RunStats FluidSimulation::Run(const std::vector<FlowDesc>& flows,
                                               AgentFleet* fleet, const AlarmHandler& alarms) {
  RunStats stats;
  for (const FlowDesc& f : flows) {
    ++stats.flows;
    uint64_t total_pkts = (f.bytes + config_.mss - 1) / config_.mss;
    total_pkts = std::max<uint64_t>(total_pkts, 1);

    // --- Subflow path assignment ---
    std::vector<std::pair<Path, double>> split;
    if (chooser_) {
      split = chooser_(f);
    } else if (config_.lb_mode == LoadBalanceMode::kEcmpHash) {
      // Walk the router hop by hop with the flow's hash — the exact path
      // the per-packet simulator realizes, detours included.
      Path path = router_->WalkPath(f.src, f.dst, FiveTupleHash{}(f.tuple));
      if (path.empty()) {
        continue;
      }
      split.emplace_back(std::move(path), 1.0);
    } else {
      std::vector<Path> paths = router_->EcmpPaths(f.src, f.dst);
      if (paths.empty()) {
        continue;
      }
      {
        // Packet spraying: uniform multinomial over all equal-cost paths.
        double frac = 1.0 / double(paths.size());
        for (Path& p : paths) {
          split.emplace_back(std::move(p), frac);
        }
      }
    }

    SimTime duration =
        SimTime(std::ceil(double(f.bytes) * 8.0 / config_.flow_rate_bps * double(kNsPerSec)));
    duration = std::max<SimTime>(duration, 1);
    SimTime etime = f.start + duration;

    uint64_t flow_drops = 0;
    for (const auto& [path, frac] : split) {
      if (frac <= 0.0) {
        continue;
      }
      ++stats.subflows;
      uint64_t sub_pkts = std::max<uint64_t>(uint64_t(std::llround(double(total_pkts) * frac)), 1);
      uint64_t sub_bytes = uint64_t(double(f.bytes) * frac);
      sub_bytes = std::max<uint64_t>(sub_bytes, 64);

      // Silent drops along the directed links of this path.
      if (!faults_.empty()) {
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          auto it = faults_.find(DirKey(path[i], path[i + 1]));
          if (it != faults_.end()) {
            flow_drops += rng_.Binomial(sub_pkts, it->second);
          }
        }
        // Host-facing links of the destination ToR can also be faulty.
        if (!path.empty()) {
          auto it = faults_.find(DirKey(path.back(), f.dst));
          if (it != faults_.end()) {
            flow_drops += rng_.Binomial(sub_pkts, it->second);
          }
        }
      }

      // Link-load accounting (bytes attributed at flow start).
      if (load_bucket_ > 0) {
        int64_t bucket = f.start / load_bucket_;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          link_loads_[DirKey(path[i], path[i + 1])][bucket] += sub_bytes;
        }
      }

      // TIB ingestion at the destination (same path as trajectory
      // construction after eviction).
      if (fleet != nullptr) {
        TibRecord rec;
        rec.flow = f.tuple;
        rec.path = CompactPath::FromPath(path);
        rec.stime = f.start;
        rec.etime = etime;
        rec.bytes = sub_bytes;
        rec.pkts = uint32_t(std::min<uint64_t>(sub_pkts, UINT32_MAX));
        fleet->agent(f.dst).IngestRecord(rec, etime);
      }
    }

    stats.dropped_pkts += flow_drops;
    bool alarm_fires;
    if (config_.consecutive_alarm_model) {
      // P(some run of >= alarm_drop_threshold consecutive drops) over n
      // packet slots with i.i.d. drop ratio r: 1 - (1 - r^T)^n.
      double r = double(flow_drops) / double(std::max<uint64_t>(total_pkts, 1));
      double rt = std::pow(std::min(r, 1.0), double(std::max(config_.alarm_drop_threshold, 1)));
      double p = int(flow_drops) < config_.alarm_drop_threshold
                     ? 0.0
                     : 1.0 - std::pow(1.0 - rt, double(total_pkts));
      alarm_fires = rng_.Bernoulli(p);
    } else {
      alarm_fires = int(flow_drops) >= config_.alarm_drop_threshold;
    }
    if (alarm_fires) {
      ++stats.alarms;
      if (fleet != nullptr) {
        // Feed the source host's retransmission monitor so
        // getPoorTCPFlows() reflects reality.
        for (uint64_t i = 0; i < flow_drops; ++i) {
          fleet->agent(f.src).RecordRetransmission(f.tuple, etime);
        }
      }
      if (alarms) {
        Alarm a;
        a.host = f.src;
        a.flow = f.tuple;
        a.reason = AlarmReason::kPoorPerf;
        a.at = etime;
        alarms(a);
      }
    }
  }
  return stats;
}

}  // namespace pathdump
