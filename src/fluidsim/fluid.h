// Flow-level (fluid) simulation engine.
//
// The per-packet simulator is exact but too slow for the paper's
// minute-to-hour workloads (Figs. 5, 7, 8: hundreds of thousands of flows).
// This engine trades per-packet events for per-flow ones while feeding the
// *same* edge stack:
//
//  * each flow is routed over its ECMP path (hash) or sprayed across all
//    equal-cost paths (multinomial packet split),
//  * silent-drop faults on traversed directed links binomially sample the
//    number of dropped/retransmitted packets,
//  * per-path flow records are ingested into the destination host's agent
//    (identical TibRecord path as trajectory construction), and
//  * flows whose consecutive drops cross the poor-TCP threshold raise
//    POOR_PERF alarms through the source agent — the same alarm channel
//    the active monitor uses.
//
// Link byte loads can be tracked in time buckets for the load-imbalance
// experiments.

#ifndef PATHDUMP_SRC_FLUIDSIM_FLUID_H_
#define PATHDUMP_SRC_FLUIDSIM_FLUID_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/edge/fleet.h"
#include "src/packet/packet.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/traffic_gen.h"

namespace pathdump {

struct FluidConfig {
  LoadBalanceMode lb_mode = LoadBalanceMode::kEcmpHash;
  // Goodput used to set flow durations (bytes / rate).
  double flow_rate_bps = 500e6;
  uint32_t mss = kDefaultMss;
  // Drops >= this within one flow raise a POOR_PERF alarm (the consecutive
  // retransmission threshold of the active monitor).
  int alarm_drop_threshold = 3;
  // When true, model tcpretrans's *consecutive*-retransmission semantics
  // probabilistically: a flow with n packets and drop ratio r alarms with
  // probability 1 - (1 - r^2)^n (at least one run of >= 2 back-to-back
  // drops).  This reproduces the paper's alarm scarcity — most flows that
  // cross a 1%-lossy interface do NOT alarm — and hence the Fig. 7/8 time
  // scales.  When false, the deterministic threshold above applies.
  bool consecutive_alarm_model = false;
  uint64_t seed = 1;
};

class FluidSimulation {
 public:
  // Custom per-flow path assignment: returns (path, byte-fraction) pairs.
  // Overrides ECMP/spray (used for the Fig. 5 size-based SAgg split).
  using PathChooser =
      std::function<std::vector<std::pair<Path, double>>(const FlowDesc&)>;

  FluidSimulation(const Topology* topo, const Router* router, FluidConfig config);

  // Directed link (a -> b) silently drops each packet with probability p.
  void AddSilentDrop(NodeId a, NodeId b, double p);
  void ClearFaults() { faults_.clear(); }

  void SetPathChooser(PathChooser chooser) { chooser_ = std::move(chooser); }

  // Tracks per-directed-link byte loads in buckets of this width.
  void EnableLinkLoadTracking(SimTime bucket_width);

  struct RunStats {
    uint64_t flows = 0;
    uint64_t subflows = 0;
    uint64_t alarms = 0;
    uint64_t dropped_pkts = 0;
  };

  // Processes all flows (must be start-time sorted).  Records are ingested
  // into `fleet` (nullable); alarms go to `alarms` (nullable).
  RunStats Run(const std::vector<FlowDesc>& flows, AgentFleet* fleet,
               const AlarmHandler& alarms);

  // Byte load of directed link (a -> b) in time bucket `idx`.
  uint64_t LinkLoad(NodeId a, NodeId b, int64_t bucket_idx) const;
  SimTime load_bucket_width() const { return load_bucket_; }

 private:
  static uint64_t DirKey(NodeId a, NodeId b) { return (uint64_t(a) << 32) | b; }

  const Topology* topo_;
  const Router* router_;
  FluidConfig config_;
  Rng rng_;
  PathChooser chooser_;
  std::unordered_map<uint64_t, double> faults_;  // directed link -> drop rate
  SimTime load_bucket_ = 0;
  std::unordered_map<uint64_t, std::unordered_map<int64_t, uint64_t>> link_loads_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_FLUIDSIM_FLUID_H_
