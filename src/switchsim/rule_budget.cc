#include "src/switchsim/rule_budget.h"

namespace pathdump {

RuleBudget ComputeRuleBudget(const Topology& topo, SwitchId sw) {
  RuleBudget b;
  const Node& node = topo.node(sw);
  const int ports = int(topo.NeighborsOf(sw).size());

  switch (topo.kind()) {
    case TopologyKind::kFatTree: {
      const FatTreeMeta& m = *topo.fat_tree();
      const int half = m.k / 2;
      switch (node.role) {
        case NodeRole::kTor:
          // Forwarding: one rule per local host prefix + one ECMP group
          // entry per uplink; tagging: one valley rule per uplink port
          // (from-agg, to-agg -> push ingress).
          b.forwarding = half /*hosts*/ + half /*uplinks*/;
          b.tagging = half;
          break;
        case NodeRole::kAgg:
          // Forwarding: one per in-pod ToR prefix + one per core uplink;
          // tagging: one apex rule per ToR-facing ingress port (dst-in-pod
          // + no-tag match -> push ingress).
          b.forwarding = half + half;
          b.tagging = half;
          break;
        case NodeRole::kCore:
          // Forwarding: one per pod prefix; tagging: one per ingress port
          // (always push).
          b.forwarding = m.pods;
          b.tagging = ports;
          break;
        default:
          break;
      }
      return b;
    }
    case TopologyKind::kVl2: {
      const Vl2Meta& m = *topo.vl2();
      switch (node.role) {
        case NodeRole::kTor:
          // Forwarding: one per local host + one per uplink.
          b.forwarding = m.hosts_per_tor + 2;
          b.tagging = 0;  // ToRs do not sample; the agg sets DSCP
          break;
        case NodeRole::kAgg:
          // Forwarding: one per adjacent ToR + one per intermediate.
          // Tagging: the paper's "two rules per ingress port" — DSCP-unused
          // check and the add-VLAN-otherwise rule.
          b.forwarding = ports;
          b.tagging = 2 * ports;
          break;
        case NodeRole::kIntermediate:
          b.forwarding = m.num_aggs;
          b.tagging = ports;  // always push ingress
          break;
        default:
          break;
      }
      return b;
    }
    case TopologyKind::kGeneric: {
      // One forwarding rule per destination ToR, one push rule per ingress.
      int tors = 0;
      for (SwitchId s : topo.switches()) {
        if (topo.RoleOf(s) == NodeRole::kTor) {
          ++tors;
        }
      }
      b.forwarding = tors;
      b.tagging = ports;
      return b;
    }
  }
  return b;
}

RuleBudget TotalRuleBudget(const Topology& topo) {
  RuleBudget total;
  for (SwitchId sw : topo.switches()) {
    RuleBudget b = ComputeRuleBudget(topo, sw);
    total.forwarding += b.forwarding;
    total.tagging += b.tagging;
  }
  return total;
}

RuleBudget MaxPerSwitchRuleBudget(const Topology& topo) {
  RuleBudget mx;
  for (SwitchId sw : topo.switches()) {
    RuleBudget b = ComputeRuleBudget(topo, sw);
    if (b.total() > mx.total()) {
      mx = b;
    }
  }
  return mx;
}

}  // namespace pathdump
