// Software model of a commodity OpenFlow switch.
//
// PathDump's switches are deliberately minimal (§1): static forwarding
// rules, static CherryPick tag-push rules, and the stock ASIC behaviour
// that a packet carrying more than two VLAN tags cannot have its IP fields
// parsed at line rate and is punted to the controller.  No dynamic rule
// updates, no sampling, no mirroring.
//
// The model adds the failure modes the paper debugs:
//  * silent random drops — a faulty egress interface drops packets with
//    some probability *without* updating its discarded-packet counters,
//  * silent blackholes — an egress drops everything,
//  * link-down — handled by the Router's failover (see topology/routing).

#ifndef PATHDUMP_SRC_SWITCHSIM_SWITCH_NODE_H_
#define PATHDUMP_SRC_SWITCHSIM_SWITCH_NODE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/cherrypick/codec.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/packet/packet.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace pathdump {

// Per-switch traffic counters.  Silent drops intentionally do NOT appear in
// `drops_reported` — that is what makes them hard to localize (§4.3).
struct SwitchCounters {
  uint64_t forwarded = 0;
  uint64_t delivered = 0;
  uint64_t punted = 0;
  uint64_t drops_reported = 0;  // visible (e.g. no-route) drops
  uint64_t drops_silent = 0;    // invisible to the operator
};

class SwitchNode {
 public:
  enum class Outcome : uint8_t {
    kForward,  // send to `next` (a switch)
    kDeliver,  // send to `next` (the destination host)
    kPunt,     // hand to the controller (>2 VLAN tags at IP parse)
    kDrop,     // packet lost
  };

  struct Result {
    Outcome outcome = Outcome::kDrop;
    NodeId next = kInvalidNode;
    bool silent = false;  // for kDrop: true if the drop left no counter
  };

  SwitchNode(SwitchId id, const Topology* topo, const Router* router,
             const CherryPickCodec* codec, uint64_t rng_seed);

  // Runs the full ingress->egress pipeline for one packet: ASIC tag-limit
  // check, next-hop lookup, CherryPick tag push, failure-model drop.
  // Mutates pkt (tags, dscp, hop count, ground-truth trace).
  Result Process(Packet& pkt, NodeId from, LoadBalanceMode mode);

  // --- Failure injection ---
  // Egress toward `nbr` silently drops each packet with probability p.
  void SetSilentDropRate(NodeId nbr, double p);
  // Egress toward `nbr` silently drops every packet.
  void SetBlackhole(NodeId nbr);
  void ClearFailures();

  SwitchId id() const { return id_; }
  const SwitchCounters& counters() const { return counters_; }

  // Per-egress byte counters (what sFlow-style link monitoring would see).
  uint64_t EgressBytes(NodeId nbr) const;

 private:
  SwitchId id_;
  const Topology* topo_;
  const Router* router_;
  const CherryPickCodec* codec_;
  Rng rng_;
  SwitchCounters counters_;
  std::unordered_map<NodeId, double> silent_drop_;
  std::unordered_set<NodeId> blackhole_;
  std::unordered_map<NodeId, uint64_t> egress_bytes_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_SWITCHSIM_SWITCH_NODE_H_
