// Static switch rule accounting (§3.1).
//
// PathDump's data-plane footprint is a one-time set of static OpenFlow
// rules per switch: the usual forwarding rules plus the CherryPick
// tag-push rules.  The paper's claims, which this module makes checkable:
//  * fat-tree: "the number of rules at switch grows linearly over switch
//    port density" — O(k) per switch, not O(#flows) or O(#paths);
//  * VL2: "we need two rules per ingress port: one for checking if DSCP
//    field is unused, and the other to add VLAN tag otherwise".

#ifndef PATHDUMP_SRC_SWITCHSIM_RULE_BUDGET_H_
#define PATHDUMP_SRC_SWITCHSIM_RULE_BUDGET_H_

#include <cstdint>

#include "src/topology/topology.h"

namespace pathdump {

struct RuleBudget {
  // Destination-based forwarding rules (prefix per pod/ToR + ECMP groups).
  int forwarding = 0;
  // CherryPick tag-push / DSCP-set rules.
  int tagging = 0;

  int total() const { return forwarding + tagging; }
};

// Static rules installed at one switch for the given topology.
RuleBudget ComputeRuleBudget(const Topology& topo, SwitchId sw);

// Sum over all switches.
RuleBudget TotalRuleBudget(const Topology& topo);

// The largest per-switch rule count — the number that must fit in TCAM.
RuleBudget MaxPerSwitchRuleBudget(const Topology& topo);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_SWITCHSIM_RULE_BUDGET_H_
