#include "src/switchsim/switch_node.h"

namespace pathdump {

SwitchNode::SwitchNode(SwitchId id, const Topology* topo, const Router* router,
                       const CherryPickCodec* codec, uint64_t rng_seed)
    : id_(id), topo_(topo), router_(router), codec_(codec), rng_(rng_seed, id) {}

void SwitchNode::SetSilentDropRate(NodeId nbr, double p) { silent_drop_[nbr] = p; }

void SwitchNode::SetBlackhole(NodeId nbr) { blackhole_.insert(nbr); }

void SwitchNode::ClearFailures() {
  silent_drop_.clear();
  blackhole_.clear();
}

uint64_t SwitchNode::EgressBytes(NodeId nbr) const {
  auto it = egress_bytes_.find(nbr);
  return it == egress_bytes_.end() ? 0 : it->second;
}

SwitchNode::Result SwitchNode::Process(Packet& pkt, NodeId from, LoadBalanceMode mode) {
  Result res;
  pkt.hop_count++;
  pkt.trace.push_back(id_);

  // ASIC constraint: matching IP fields of a packet with more than two VLAN
  // tags misses in hardware; the packet goes to the controller (§3.1).
  if (pkt.TagCount() > kAsicMaxVlanTags) {
    ++counters_.punted;
    res.outcome = Outcome::kPunt;
    return res;
  }

  // Next-hop lookup (static rules + deterministic failover).
  uint64_t entropy = mode == LoadBalanceMode::kPacketSpray ? rng_.NextU64()
                                                           : FiveTupleHash{}(pkt.flow);
  NodeId next = router_->NextHop(id_, from, pkt.dst_host, entropy);
  if (next == kInvalidNode) {
    ++counters_.drops_reported;  // a routing blackhole updates drop counters
    res.outcome = Outcome::kDrop;
    return res;
  }

  // CherryPick egress actions (push_vlan / set DSCP), applied before the
  // packet leaves the switch.
  TagAction act = codec_->OnForward(id_, from, next, pkt.dst_host, pkt.TagCount(), pkt.dscp);
  if (act.push_vlan) {
    pkt.PushTag(act.vlan);
  }
  if (act.set_dscp) {
    pkt.dscp = act.dscp;
  }

  // Faulty-interface models.  These drops are *silent*: no counter the
  // operator can poll records them.
  if (blackhole_.count(next) > 0) {
    ++counters_.drops_silent;
    res.outcome = Outcome::kDrop;
    res.silent = true;
    return res;
  }
  if (auto it = silent_drop_.find(next); it != silent_drop_.end() && rng_.Bernoulli(it->second)) {
    ++counters_.drops_silent;
    res.outcome = Outcome::kDrop;
    res.silent = true;
    return res;
  }

  egress_bytes_[next] += pkt.WireBytes();
  res.next = next;
  if (topo_->IsHost(next)) {
    ++counters_.delivered;
    res.outcome = Outcome::kDeliver;
  } else {
    ++counters_.forwarded;
    res.outcome = Outcome::kForward;
  }
  return res;
}

}  // namespace pathdump
