#include "src/transport/transport.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <utility>

#include <unistd.h>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"

namespace pathdump {
namespace transport {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NapUs(int64_t us) {
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

bool PidAlive(uint32_t pid) {
  if (pid == 0) {
    return true;  // unknown yet — assume alive until Hello names it
  }
  return kill(pid_t(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

TransportHub::TransportHub(Controller* controller, SubscriptionManager* manager,
                           TransportOptions options)
    : controller_(controller),
      manager_(manager),
      options_(std::move(options)),
      prefix_(options_.shm_prefix.empty()
                  ? "/pathdump." + std::to_string(getpid()) + "."
                  : options_.shm_prefix),
      alarm_sink_(controller->MakeAlarmSink()) {
  if (options_.backend == TransportOptions::Backend::kSharedMemory) {
    reactor_ = std::thread([this] { ReactorLoop(); });
  }
}

TransportHub::~TransportHub() {
  stop_.store(true, std::memory_order_release);
  if (reactor_.joinable()) {
    reactor_.join();
  }
  // Segments unlink themselves (owner destructor), but be explicit so a
  // throwing member destructor can never leak a /dev/shm entry.
  for (Peer& peer : peers_) {
    if (peer.segment != nullptr) {
      peer.segment->Unlink();
    }
  }
}

std::string TransportHub::AddShmPeer(HostId host) {
  if (options_.backend != TransportOptions::Backend::kSharedMemory) {
    return "";
  }
  const std::string name = prefix_ + std::to_string(host);
  auto segment = ShmSegment::Create(name, options_.geometry);
  if (segment == nullptr) {
    return "";
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.emplace_back();
  Peer& peer = peers_.back();
  peer.host = host;
  peer.segment = std::move(segment);
  return name;
}

void TransportHub::AddLocalAgent(EdgeAgent* agent) {
  controller_->RegisterAgent(agent);
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.emplace_back();
  Peer& peer = peers_.back();
  peer.host = agent->host();
  peer.hello.store(true, std::memory_order_release);
}

std::vector<HostId> TransportHub::hosts() const {
  std::vector<HostId> out;
  std::lock_guard<std::mutex> lock(peers_mu_);
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    out.push_back(peer.host);
  }
  return out;
}

std::vector<TransportHub::Peer*> TransportHub::SnapshotPeers() const {
  std::vector<Peer*> out;
  std::lock_guard<std::mutex> lock(peers_mu_);
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    out.push_back(const_cast<Peer*>(&peer));
  }
  return out;
}

void TransportHub::BroadcastCommand(const std::vector<uint8_t>& frame) {
  for (Peer* peer : SnapshotPeers()) {
    if (peer->segment == nullptr || peer->dead.load(std::memory_order_acquire) ||
        peer->bye.load(std::memory_order_acquire)) {
      continue;
    }
    // A dead-but-undetected peer never pops its command ring; the
    // bounded push keeps this loop from hanging on it.
    peer->segment->cmd_ring().Push(frame.data(), frame.size(), options_.push_timeout_us);
  }
}

uint64_t TransportHub::Subscribe(const std::vector<HostId>& hosts,
                                 const StandingQuerySpec& spec) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return manager_->Subscribe(hosts, spec);
  }
  const uint64_t id = manager_->SubscribeRemote(hosts, spec);
  std::vector<uint8_t> frame;
  EncodeSubscribeFrame(id, spec, frame);
  BroadcastCommand(frame);
  return id;
}

uint64_t TransportHub::SendEpochTick() {
  const uint64_t token = next_token_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    manager_->TickEpoch();
    return token;  // synchronous: already "acked"
  }
  std::vector<uint8_t> frame;
  EncodeEpochTickFrame(token, frame);
  BroadcastCommand(frame);
  return token;
}

void TransportHub::SendIngest(uint32_t count, uint32_t seed, uint32_t ip_space,
                              uint32_t switch_space) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    if (local_ingest_) {
      local_ingest_(count, seed, ip_space, switch_space);
    }
    return;
  }
  std::vector<uint8_t> frame;
  EncodeIngestFrame(count, seed, ip_space, switch_space, frame);
  BroadcastCommand(frame);
}

void TransportHub::SetLocalIngest(
    std::function<void(uint32_t, uint32_t, uint32_t, uint32_t)> fn) {
  local_ingest_ = std::move(fn);
}

void TransportHub::SendShutdown() {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return;
  }
  std::vector<uint8_t> frame;
  EncodeShutdownFrame(frame);
  BroadcastCommand(frame);
}

bool TransportHub::WaitForHellos(int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  for (;;) {
    bool all = true;
    for (Peer* peer : SnapshotPeers()) {
      if (!peer->hello.load(std::memory_order_acquire) &&
          !peer->dead.load(std::memory_order_acquire)) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    if (NowUs() >= deadline) {
      return false;
    }
    NapUs(500);
  }
}

bool TransportHub::WaitForAcks(uint64_t token, int64_t timeout_us) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return true;
  }
  const int64_t deadline = NowUs() + timeout_us;
  for (;;) {
    bool all = true;
    for (Peer* peer : SnapshotPeers()) {
      if (peer->dead.load(std::memory_order_acquire) ||
          peer->bye.load(std::memory_order_acquire)) {
        continue;  // excused — a killed agent never wedges the epoch
      }
      if (peer->last_ack.load(std::memory_order_acquire) < token) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    if (NowUs() >= deadline) {
      return false;
    }
    NapUs(500);
  }
}

void TransportHub::Flush() {
  if (options_.backend == TransportOptions::Backend::kSharedMemory) {
    // Rings empty AND the reactor not mid-dispatch ⇒ every published
    // frame has reached its downstream consumer.
    for (;;) {
      bool quiescent = !dispatching_.load(std::memory_order_acquire);
      for (Peer* peer : SnapshotPeers()) {
        if (peer->segment != nullptr && !peer->dead.load(std::memory_order_acquire) &&
            !peer->segment->data_ring().empty() && !peer->segment->data_ring().corrupt()) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) {
        break;
      }
      NapUs(200);
    }
  }
  manager_->Flush();
}

TransportStats TransportHub::stats() const {
  TransportStats out;
  out.frames = frames_.load(std::memory_order_acquire);
  out.bytes = bytes_.load(std::memory_order_acquire);
  out.deltas = deltas_.load(std::memory_order_acquire);
  out.alarms = alarms_.load(std::memory_order_acquire);
  out.acks = acks_.load(std::memory_order_acquire);
  out.truncated = err_by_kind_[size_t(WireError::kTruncated)].load(std::memory_order_acquire);
  out.bad_magic = err_by_kind_[size_t(WireError::kBadMagic)].load(std::memory_order_acquire);
  out.bad_version = err_by_kind_[size_t(WireError::kBadVersion)].load(std::memory_order_acquire);
  out.bad_type = err_by_kind_[size_t(WireError::kBadType)].load(std::memory_order_acquire);
  out.oversized = err_by_kind_[size_t(WireError::kOversized)].load(std::memory_order_acquire);
  out.bad_checksum =
      err_by_kind_[size_t(WireError::kBadChecksum)].load(std::memory_order_acquire);
  out.bad_payload = err_by_kind_[size_t(WireError::kBadPayload)].load(std::memory_order_acquire);
  out.decode_errors = out.truncated + out.bad_magic + out.bad_version + out.bad_type +
                      out.oversized + out.bad_checksum + out.bad_payload;
  for (Peer* peer : SnapshotPeers()) {
    ++out.peers;
    if (peer->hello.load(std::memory_order_acquire)) {
      ++out.peers_hello;
    }
    if (peer->bye.load(std::memory_order_acquire)) {
      ++out.peers_bye;
    }
    if (peer->dead.load(std::memory_order_acquire)) {
      ++out.peers_dead;
    }
    if (peer->segment != nullptr) {
      out.seq_gaps += peer->segment->data_ring().seq_gaps();
      out.blocked_pushes += peer->segment->data_ring().blocked_pushes();
    }
  }
  return out;
}

std::vector<HostId> TransportHub::dead_hosts() const {
  std::vector<HostId> out;
  for (Peer* peer : SnapshotPeers()) {
    if (peer->dead.load(std::memory_order_acquire)) {
      out.push_back(peer->host);
    }
  }
  return out;
}

void TransportHub::CountError(WireError err) {
  static Counter* errors = MetricsRegistry::Global().GetCounter("transport.decode_errors");
  const size_t idx = size_t(err);
  if (idx < 8) {
    err_by_kind_[idx].fetch_add(1, std::memory_order_acq_rel);
    errors->Add();
  }
}

void TransportHub::Dispatch(Peer& peer, DecodedFrame&& frame) {
  static Counter* m_deltas = MetricsRegistry::Global().GetCounter("transport.deltas");
  static Counter* m_alarms = MetricsRegistry::Global().GetCounter("transport.alarms");
  static Counter* m_acks = MetricsRegistry::Global().GetCounter("transport.acks");
  switch (frame.type) {
    case FrameType::kHello:
      peer.pid.store(frame.pid, std::memory_order_release);
      peer.hello.store(true, std::memory_order_release);
      break;
    case FrameType::kQueryDelta: {
      deltas_.fetch_add(1, std::memory_order_acq_rel);
      m_deltas->Add();
      // Keys must be captured before the delta is moved into the manager.
      TraceScope span("reactor.pop", TraceKeys{frame.delta.subscription_id,
                                              frame.delta.host, frame.delta.epoch});
      manager_->SubmitDelta(std::move(frame.delta));
      break;
    }
    case FrameType::kAlarm:
      alarms_.fetch_add(1, std::memory_order_acq_rel);
      m_alarms->Add();
      alarm_sink_(frame.alarm);
      break;
    case FrameType::kAck: {
      acks_.fetch_add(1, std::memory_order_acq_rel);
      m_acks->Add();
      // Tokens ascend; keep the max in case acks arrive reordered
      // across a restart.
      uint64_t prev = peer.last_ack.load(std::memory_order_relaxed);
      while (frame.token > prev &&
             !peer.last_ack.compare_exchange_weak(prev, frame.token,
                                                  std::memory_order_acq_rel)) {
      }
      break;
    }
    case FrameType::kBye:
      peer.bye.store(true, std::memory_order_release);
      break;
    default:
      // Control-plane frame types never appear on a data ring; a decoded
      // one means an agent bug, counted as a payload-level violation.
      CountError(WireError::kBadPayload);
      break;
  }
}

size_t TransportHub::DrainPeer(Peer& peer, std::vector<uint8_t>& buf) {
  static Counter* m_frames = MetricsRegistry::Global().GetCounter("transport.frames");
  static Counter* m_bytes = MetricsRegistry::Global().GetCounter("transport.bytes");
  ShmSpscRing& ring = peer.segment->data_ring();
  size_t dispatched = 0;
  while (ring.Pop(buf)) {
    bytes_.fetch_add(buf.size(), std::memory_order_acq_rel);
    m_bytes->Add(buf.size());
    DecodedFrame frame;
    const WireError err = DecodeFrame(buf.data(), buf.size(), &frame);
    if (err != WireError::kOk) {
      CountError(err);
      continue;
    }
    frames_.fetch_add(1, std::memory_order_acq_rel);
    m_frames->Add();
    Dispatch(peer, std::move(frame));
    ++dispatched;
  }
  return dispatched;
}

void TransportHub::ReactorLoop() {
  std::vector<uint8_t> buf;
  while (!stop_.load(std::memory_order_acquire)) {
    size_t dispatched = 0;
    for (Peer* peer : SnapshotPeers()) {
      if (peer->segment == nullptr) {
        continue;
      }
      dispatching_.store(true, std::memory_order_release);
      dispatched += DrainPeer(*peer, buf);
      dispatching_.store(false, std::memory_order_release);
      // Death check only after a full drain: everything the agent
      // published before dying is dispatched first, then the gap is
      // recorded — ordering the multiproc test relies on.
      if (!peer->dead.load(std::memory_order_acquire) &&
          !peer->bye.load(std::memory_order_acquire)) {
        const uint32_t pid = peer->pid.load(std::memory_order_acquire);
        const bool corrupt = peer->segment->data_ring().corrupt();
        if (corrupt || (pid != 0 && !PidAlive(pid) && peer->segment->data_ring().empty())) {
          static Counter* dead = MetricsRegistry::Global().GetCounter("transport.peers_dead");
          peer->dead.store(true, std::memory_order_release);
          dead->Add();
        }
      }
    }
    if (dispatched == 0) {
      // Idle: park briefly.  Bounded sleep rather than a multi-ring
      // futex wait — one wakeup per millisecond is noise, and no peer
      // can be starved by another's doorbell.
      NapUs(500);
    }
  }
  // Final sweep so frames published just before stop are not lost.
  for (Peer* peer : SnapshotPeers()) {
    if (peer->segment != nullptr) {
      DrainPeer(*peer, buf);
    }
  }
}

// --- ShmAgentClient ---

std::unique_ptr<ShmAgentClient> ShmAgentClient::Open(const std::string& name,
                                                     int64_t push_timeout_us) {
  auto segment = ShmSegment::Open(name);
  if (segment == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<ShmAgentClient>(
      new ShmAgentClient(std::move(segment), push_timeout_us));
}

bool ShmAgentClient::PushFrame() {
  return segment_->data_ring().Push(scratch_.data(), scratch_.size(), push_timeout_us_);
}

bool ShmAgentClient::SendHello(HostId host) {
  std::lock_guard<std::mutex> lock(send_mu_);
  segment_->header()->agent_pid.store(uint32_t(getpid()), std::memory_order_release);
  scratch_.clear();
  EncodeHelloFrame(host, uint32_t(getpid()), scratch_);
  return PushFrame();
}

bool ShmAgentClient::SendDelta(const QueryDelta& delta) {
  static Counter* pushes = MetricsRegistry::Global().GetCounter("ring.delta_pushes");
  static LatencyHistogram* push_us =
      MetricsRegistry::Global().GetHistogram("ring.delta_push_us");
  TraceScope span("ring.push", TraceKeys{delta.subscription_id, delta.host, delta.epoch});
  const uint64_t t0 = Tracer::Global().NowUs();
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeQueryDeltaFrame(delta, scratch_);
  const bool ok = PushFrame();
  pushes->Add();
  push_us->Record(Tracer::Global().NowUs() - t0);
  return ok;
}

bool ShmAgentClient::SendAlarm(const Alarm& alarm) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeAlarmFrame(alarm, scratch_);
  return PushFrame();
}

bool ShmAgentClient::SendAck(HostId host, uint64_t token) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeAckFrame(host, token, scratch_);
  return PushFrame();
}

bool ShmAgentClient::SendBye(HostId host) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeByeFrame(host, scratch_);
  return PushFrame();
}

bool ShmAgentClient::PollCommand(DecodedFrame* out, int64_t timeout_us) {
  ShmSpscRing& ring = segment_->cmd_ring();
  const int64_t deadline = NowUs() + timeout_us;
  std::vector<uint8_t> buf;
  for (;;) {
    while (ring.Pop(buf)) {
      const WireError err = DecodeFrame(buf.data(), buf.size(), out);
      if (err == WireError::kOk) {
        return true;
      }
      ++cmd_decode_errors_;
    }
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return false;
    }
    ring.WaitForData(left);
  }
}

EdgeAgent::DeltaSink ShmAgentClient::MakeDeltaSink() {
  return [this](QueryDelta&& delta) { SendDelta(delta); };
}

AlarmHandler ShmAgentClient::MakeAlarmSink() {
  return [this](const Alarm& alarm) { SendAlarm(alarm); };
}

}  // namespace transport
}  // namespace pathdump
