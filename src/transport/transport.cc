#include "src/transport/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <utility>

#include <unistd.h>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"

namespace pathdump {
namespace transport {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NapUs(int64_t us) {
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

bool PidAlive(uint32_t pid) {
  if (pid == 0) {
    return true;  // unknown yet — assume alive until Hello names it
  }
  return kill(pid_t(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

const char* PeerStateName(PeerState s) {
  switch (s) {
    case PeerState::kConnecting:
      return "connecting";
    case PeerState::kLive:
      return "live";
    case PeerState::kDead:
      return "dead";
    case PeerState::kRejoining:
      return "rejoining";
    case PeerState::kGaveUp:
      return "gave-up";
  }
  return "?";
}

TransportHub::TransportHub(Controller* controller, SubscriptionManager* manager,
                           TransportOptions options)
    : controller_(controller),
      manager_(manager),
      options_(std::move(options)),
      prefix_(options_.shm_prefix.empty()
                  ? "/pathdump." + std::to_string(getpid()) + "."
                  : options_.shm_prefix),
      alarm_sink_(controller->MakeAlarmSink()) {
  if (options_.backend == TransportOptions::Backend::kSharedMemory) {
    if (options_.sweep_stale_shm_on_start) {
      // Reclaim segments a SIGKILLed earlier fleet left in /dev/shm.
      // Dead-owner mode only: a parallel suite's live segments (their
      // controller pid answers kill(pid, 0)) are never touched.
      static Counter* reclaimed =
          MetricsRegistry::Global().GetCounter("transport.stale_shm_reclaimed");
      const size_t n = CleanupShmByPrefix("/pathdump.", /*only_dead_owners=*/true);
      if (n > 0) {
        stale_shm_reclaimed_.store(n, std::memory_order_release);
        reclaimed->Add(n);
        std::fprintf(stderr, "[transport] startup sweep reclaimed %zu stale shm segment(s)\n",
                     n);
      }
    }
    // Gap-threshold staleness self-heals: when the manager declares a
    // stream stale it asks us to ship the ResyncRequest.
    manager_->SetResyncRequester(
        [this](uint64_t id, HostId host) { RequestResync(id, host); });
    reactor_ = std::thread([this] { ReactorLoop(); });
  }
}

TransportHub::~TransportHub() {
  if (options_.backend == TransportOptions::Backend::kSharedMemory) {
    // Unhook the requester, then drain any fold batch that already
    // copied it — after Flush returns no callback can still reach us.
    manager_->SetResyncRequester(nullptr);
    manager_->Flush();
  }
  stop_.store(true, std::memory_order_release);
  if (reactor_.joinable()) {
    reactor_.join();
  }
  // Segments unlink themselves (owner destructor), but be explicit so a
  // throwing member destructor can never leak a /dev/shm entry.
  for (Peer& peer : peers_) {
    if (peer.segment != nullptr) {
      peer.segment->Unlink();
    }
  }
}

std::string TransportHub::AddShmPeer(HostId host) {
  if (options_.backend != TransportOptions::Backend::kSharedMemory) {
    return "";
  }
  const std::string name = prefix_ + std::to_string(host);
  auto segment = ShmSegment::Create(name, options_.geometry);
  if (segment == nullptr) {
    return "";
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.emplace_back();
  Peer& peer = peers_.back();
  peer.host = host;
  peer.segment = std::move(segment);
  return name;
}

const TransportHub::Peer* TransportHub::FindPeer(HostId host) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (const Peer& peer : peers_) {
    if (peer.host == host) {
      return &peer;  // deque: address stable across growth
    }
  }
  return nullptr;
}

std::shared_ptr<ShmSegment> TransportHub::SegmentOf(const Peer& peer) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peer.segment;
}

void TransportHub::AddLocalAgent(EdgeAgent* agent) {
  controller_->RegisterAgent(agent);
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.emplace_back();
  Peer& peer = peers_.back();
  peer.host = agent->host();
  peer.hello.store(true, std::memory_order_release);
}

std::vector<HostId> TransportHub::hosts() const {
  std::vector<HostId> out;
  std::lock_guard<std::mutex> lock(peers_mu_);
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    out.push_back(peer.host);
  }
  return out;
}

std::vector<TransportHub::Peer*> TransportHub::SnapshotPeers() const {
  std::vector<Peer*> out;
  std::lock_guard<std::mutex> lock(peers_mu_);
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    out.push_back(const_cast<Peer*>(&peer));
  }
  return out;
}

bool TransportHub::PushCommand(ShmSegment& segment, const std::vector<uint8_t>& frame) {
  // The cmd ring is SPSC; the reactor (rejoin/resync sends) and API
  // threads (broadcasts) share the producer side, so serialize here.  A
  // dead-but-undetected peer never pops its command ring; the bounded
  // push keeps callers from hanging on it.
  std::lock_guard<std::mutex> lock(cmd_mu_);
  return segment.cmd_ring().Push(frame.data(), frame.size(), options_.push_timeout_us);
}

void TransportHub::BroadcastCommand(const std::vector<uint8_t>& frame) {
  for (Peer* peer : SnapshotPeers()) {
    if (peer->dead.load(std::memory_order_acquire) ||
        peer->bye.load(std::memory_order_acquire)) {
      continue;
    }
    auto segment = SegmentOf(*peer);
    if (segment == nullptr) {
      continue;
    }
    PushCommand(*segment, frame);
  }
}

uint64_t TransportHub::Subscribe(const std::vector<HostId>& hosts,
                                 const StandingQuerySpec& spec) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return manager_->Subscribe(hosts, spec);
  }
  const uint64_t id = manager_->SubscribeRemote(hosts, spec);
  {
    // Remembered so a rejoining peer can be re-subscribed and resynced.
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_.push_back(SubRecord{id, spec, hosts});
  }
  std::vector<uint8_t> frame;
  EncodeSubscribeFrame(id, spec, frame);
  BroadcastCommand(frame);
  return id;
}

uint64_t TransportHub::SendEpochTick() {
  const uint64_t token = next_token_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    manager_->TickEpoch();
    return token;  // synchronous: already "acked"
  }
  std::vector<uint8_t> frame;
  EncodeEpochTickFrame(token, frame);
  BroadcastCommand(frame);
  return token;
}

void TransportHub::SendIngest(uint32_t count, uint32_t seed, uint32_t ip_space,
                              uint32_t switch_space) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    if (local_ingest_) {
      local_ingest_(count, seed, ip_space, switch_space);
    }
    return;
  }
  std::vector<uint8_t> frame;
  EncodeIngestFrame(count, seed, ip_space, switch_space, frame);
  BroadcastCommand(frame);
}

void TransportHub::SetLocalIngest(
    std::function<void(uint32_t, uint32_t, uint32_t, uint32_t)> fn) {
  local_ingest_ = std::move(fn);
}

void TransportHub::SendShutdown() {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return;
  }
  std::vector<uint8_t> frame;
  EncodeShutdownFrame(frame);
  BroadcastCommand(frame);
}

bool TransportHub::WaitForHellos(int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  for (;;) {
    bool all = true;
    for (Peer* peer : SnapshotPeers()) {
      if (!peer->hello.load(std::memory_order_acquire) &&
          !peer->dead.load(std::memory_order_acquire)) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    if (NowUs() >= deadline) {
      return false;
    }
    NapUs(500);
  }
}

bool TransportHub::WaitForAcks(uint64_t token, int64_t timeout_us) {
  if (options_.backend == TransportOptions::Backend::kInProcess) {
    return true;
  }
  const int64_t deadline = NowUs() + timeout_us;
  for (;;) {
    bool all = true;
    for (Peer* peer : SnapshotPeers()) {
      if (peer->dead.load(std::memory_order_acquire) ||
          peer->bye.load(std::memory_order_acquire)) {
        continue;  // excused — a killed agent never wedges the epoch
      }
      if (peer->last_ack.load(std::memory_order_acquire) < token) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    if (NowUs() >= deadline) {
      return false;
    }
    NapUs(500);
  }
}

void TransportHub::Flush() {
  if (options_.backend == TransportOptions::Backend::kSharedMemory) {
    // Rings empty AND the reactor not mid-dispatch ⇒ every published
    // frame has reached its downstream consumer.
    for (;;) {
      bool quiescent = !dispatching_.load(std::memory_order_acquire);
      for (Peer* peer : SnapshotPeers()) {
        if (peer->dead.load(std::memory_order_acquire)) {
          continue;
        }
        auto segment = SegmentOf(*peer);
        if (segment != nullptr && !segment->data_ring().empty() &&
            !segment->data_ring().corrupt()) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) {
        break;
      }
      NapUs(200);
    }
  }
  manager_->Flush();
}

TransportStats TransportHub::stats() const {
  TransportStats out;
  out.frames = frames_.load(std::memory_order_acquire);
  out.bytes = bytes_.load(std::memory_order_acquire);
  out.deltas = deltas_.load(std::memory_order_acquire);
  out.alarms = alarms_.load(std::memory_order_acquire);
  out.acks = acks_.load(std::memory_order_acquire);
  out.truncated = err_by_kind_[size_t(WireError::kTruncated)].load(std::memory_order_acquire);
  out.bad_magic = err_by_kind_[size_t(WireError::kBadMagic)].load(std::memory_order_acquire);
  out.bad_version = err_by_kind_[size_t(WireError::kBadVersion)].load(std::memory_order_acquire);
  out.bad_type = err_by_kind_[size_t(WireError::kBadType)].load(std::memory_order_acquire);
  out.oversized = err_by_kind_[size_t(WireError::kOversized)].load(std::memory_order_acquire);
  out.bad_checksum =
      err_by_kind_[size_t(WireError::kBadChecksum)].load(std::memory_order_acquire);
  out.bad_payload = err_by_kind_[size_t(WireError::kBadPayload)].load(std::memory_order_acquire);
  out.decode_errors = out.truncated + out.bad_magic + out.bad_version + out.bad_type +
                      out.oversized + out.bad_checksum + out.bad_payload;
  out.peers_rejoined = peers_rejoined_.load(std::memory_order_acquire);
  out.peers_gave_up = peers_gave_up_.load(std::memory_order_acquire);
  out.resync_requests = resync_requests_.load(std::memory_order_acquire);
  out.snapshots = snapshots_.load(std::memory_order_acquire);
  out.stale_shm_reclaimed = stale_shm_reclaimed_.load(std::memory_order_acquire);
  // Retired segments' consumer counters fold in so totals stay
  // cumulative across incarnations.
  out.seq_gaps = retired_seq_gaps_.load(std::memory_order_acquire);
  out.blocked_pushes = retired_blocked_pushes_.load(std::memory_order_acquire);
  for (Peer* peer : SnapshotPeers()) {
    ++out.peers;
    if (peer->hello.load(std::memory_order_acquire)) {
      ++out.peers_hello;
    }
    if (peer->bye.load(std::memory_order_acquire)) {
      ++out.peers_bye;
    }
    if (peer->dead.load(std::memory_order_acquire)) {
      ++out.peers_dead;
    }
    if (peer->state.load(std::memory_order_acquire) == PeerState::kRejoining) {
      ++out.peers_rejoining;
    }
    auto segment = SegmentOf(*peer);
    if (segment != nullptr) {
      out.seq_gaps += segment->data_ring().seq_gaps();
      out.blocked_pushes += segment->data_ring().blocked_pushes();
    }
  }
  return out;
}

PeerState TransportHub::peer_state(HostId host) const {
  const Peer* peer = FindPeer(host);
  return peer == nullptr ? PeerState::kConnecting
                         : peer->state.load(std::memory_order_acquire);
}

uint32_t TransportHub::peer_incarnation(HostId host) const {
  const Peer* peer = FindPeer(host);
  return peer == nullptr ? 0 : peer->incarnation.load(std::memory_order_acquire);
}

std::vector<HostId> TransportHub::dead_hosts() const {
  std::vector<HostId> out;
  for (Peer* peer : SnapshotPeers()) {
    if (peer->dead.load(std::memory_order_acquire)) {
      out.push_back(peer->host);
    }
  }
  return out;
}

std::string TransportHub::RestartPeer(HostId host) {
  if (options_.backend != TransportOptions::Backend::kSharedMemory) {
    return "";
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  Peer* peer = nullptr;
  for (Peer& p : peers_) {
    if (p.host == host) {
      peer = &p;
      break;
    }
  }
  if (peer == nullptr) {
    return "";
  }
  const PeerState state = peer->state.load(std::memory_order_acquire);
  if (state == PeerState::kLive && !peer->dead.load(std::memory_order_acquire)) {
    return "";  // refuse to retire a live peer
  }
  if (peer->segment != nullptr) {
    // Fold the retiring segment's consumer counters into hub totals so
    // stats() stays cumulative, then drop the /dev/shm name.  The
    // mapping itself lives until the last SegmentRef holder (reactor
    // mid-pass) releases it.
    retired_seq_gaps_.fetch_add(peer->segment->data_ring().seq_gaps(),
                                std::memory_order_acq_rel);
    retired_blocked_pushes_.fetch_add(peer->segment->data_ring().blocked_pushes(),
                                      std::memory_order_acq_rel);
    peer->segment->Unlink();
  }
  const uint32_t incarnation = peer->incarnation.load(std::memory_order_acquire) + 1;
  const std::string name =
      prefix_ + std::to_string(host) + ".i" + std::to_string(incarnation);
  auto segment = ShmSegment::Create(name, options_.geometry);
  if (segment == nullptr) {
    return "";
  }
  peer->segment = std::move(segment);
  peer->pid.store(0, std::memory_order_release);
  peer->incarnation.store(incarnation, std::memory_order_release);
  peer->seen_seq_gaps = 0;
  peer->rejoin_deadline_us.store(NowUs() + options_.rejoin_timeout_us,
                                 std::memory_order_release);
  // dead stays true until the new incarnation's Hello — the peer keeps
  // being excused from acks through the whole rejoin window.
  peer->state.store(PeerState::kRejoining, std::memory_order_release);
  return name;
}

bool TransportHub::WaitForPeerLive(HostId host, int64_t timeout_us) {
  const Peer* peer = FindPeer(host);
  if (peer == nullptr) {
    return false;
  }
  const int64_t deadline = NowUs() + timeout_us;
  while (peer->state.load(std::memory_order_acquire) != PeerState::kLive ||
         peer->dead.load(std::memory_order_acquire)) {
    if (NowUs() >= deadline) {
      return false;
    }
    NapUs(500);
  }
  return true;
}

void TransportHub::RequestResync(uint64_t id, HostId host) {
  static Counter* m_requests =
      MetricsRegistry::Global().GetCounter("transport.resync_requests");
  const Peer* peer = FindPeer(host);
  if (peer == nullptr) {
    return;
  }
  auto segment = SegmentOf(*peer);
  if (segment == nullptr) {
    return;
  }
  std::vector<uint8_t> frame;
  EncodeResyncRequestFrame(id, frame);
  if (PushCommand(*segment, frame)) {
    resync_requests_.fetch_add(1, std::memory_order_acq_rel);
    m_requests->Add();
    Tracer::Global().Record("resync.request", Tracer::Global().NowUs(), 0,
                            TraceKeys{id, host, 0});
  }
}

void TransportHub::RequestResyncAll(Peer& peer) {
  std::vector<uint64_t> covering;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const SubRecord& sub : subs_) {
      if (std::find(sub.hosts.begin(), sub.hosts.end(), peer.host) != sub.hosts.end()) {
        covering.push_back(sub.id);
      }
    }
  }
  for (uint64_t id : covering) {
    // One request per stale episode: only newly-stale streams ask.
    if (manager_->MarkStale(id, peer.host)) {
      RequestResync(id, peer.host);
    }
  }
}

void TransportHub::OnPeerRejoined(Peer& peer) {
  auto segment = SegmentOf(peer);
  if (segment == nullptr) {
    return;
  }
  std::vector<SubRecord> covering;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const SubRecord& sub : subs_) {
      if (std::find(sub.hosts.begin(), sub.hosts.end(), peer.host) != sub.hosts.end()) {
        covering.push_back(sub);
      }
    }
  }
  // Subscribe first, resync second — the cmd ring is FIFO, so the agent
  // re-registers every accumulator before any snapshot is taken, and the
  // snapshot's epoch numbering starts from the fresh accumulator.
  std::vector<uint8_t> frame;
  for (const SubRecord& sub : covering) {
    frame.clear();
    EncodeSubscribeFrame(sub.id, sub.spec, frame);
    PushCommand(*segment, frame);
  }
  for (const SubRecord& sub : covering) {
    // Unconditional: even a stream already stale from the death episode
    // must be re-baselined from the NEW incarnation's accumulator.
    manager_->MarkStale(sub.id, peer.host);
    RequestResync(sub.id, peer.host);
  }
}

void TransportHub::CountError(WireError err) {
  static Counter* errors = MetricsRegistry::Global().GetCounter("transport.decode_errors");
  const size_t idx = size_t(err);
  if (idx < 8) {
    err_by_kind_[idx].fetch_add(1, std::memory_order_acq_rel);
    errors->Add();
  }
}

void TransportHub::Dispatch(Peer& peer, DecodedFrame&& frame) {
  static Counter* m_deltas = MetricsRegistry::Global().GetCounter("transport.deltas");
  static Counter* m_alarms = MetricsRegistry::Global().GetCounter("transport.alarms");
  static Counter* m_acks = MetricsRegistry::Global().GetCounter("transport.acks");
  static Counter* m_snapshots = MetricsRegistry::Global().GetCounter("transport.snapshots");
  static Counter* m_rejoined =
      MetricsRegistry::Global().GetCounter("transport.peers_rejoined");
  switch (frame.type) {
    case FrameType::kHello: {
      // A rejoin is a Hello from a peer we already knew: either we
      // restarted its segment (kRejoining) or a new incarnation showed
      // up on the existing one (agent restarted in place).
      const bool returning =
          peer.hello.load(std::memory_order_acquire) &&
          (peer.state.load(std::memory_order_acquire) == PeerState::kRejoining ||
           frame.incarnation != peer.incarnation.load(std::memory_order_acquire));
      peer.pid.store(frame.pid, std::memory_order_release);
      peer.incarnation.store(frame.incarnation, std::memory_order_release);
      peer.hello.store(true, std::memory_order_release);
      if (returning) {
        peer.bye.store(false, std::memory_order_release);
        peer.dead.store(false, std::memory_order_release);
        // Excuse every tick the peer missed while down — it acks again
        // from the next one.
        peer.last_ack.store(next_token_.load(std::memory_order_acquire),
                            std::memory_order_release);
        peer.state.store(PeerState::kLive, std::memory_order_release);
        peers_rejoined_.fetch_add(1, std::memory_order_acq_rel);
        m_rejoined->Add();
        OnPeerRejoined(peer);
      } else {
        peer.state.store(PeerState::kLive, std::memory_order_release);
      }
      break;
    }
    case FrameType::kSnapshot: {
      snapshots_.fetch_add(1, std::memory_order_acq_rel);
      m_snapshots->Add();
      TraceScope span("reactor.snapshot", TraceKeys{frame.delta.subscription_id,
                                                    frame.delta.host, frame.delta.epoch});
      manager_->SubmitDelta(std::move(frame.delta));
      break;
    }
    case FrameType::kQueryDelta: {
      deltas_.fetch_add(1, std::memory_order_acq_rel);
      m_deltas->Add();
      // Keys must be captured before the delta is moved into the manager.
      TraceScope span("reactor.pop", TraceKeys{frame.delta.subscription_id,
                                              frame.delta.host, frame.delta.epoch});
      manager_->SubmitDelta(std::move(frame.delta));
      break;
    }
    case FrameType::kAlarm:
      alarms_.fetch_add(1, std::memory_order_acq_rel);
      m_alarms->Add();
      alarm_sink_(frame.alarm);
      break;
    case FrameType::kAck: {
      acks_.fetch_add(1, std::memory_order_acq_rel);
      m_acks->Add();
      // Tokens ascend; keep the max in case acks arrive reordered
      // across a restart.
      uint64_t prev = peer.last_ack.load(std::memory_order_relaxed);
      while (frame.token > prev &&
             !peer.last_ack.compare_exchange_weak(prev, frame.token,
                                                  std::memory_order_acq_rel)) {
      }
      break;
    }
    case FrameType::kBye:
      peer.bye.store(true, std::memory_order_release);
      break;
    default:
      // Control-plane frame types never appear on a data ring; a decoded
      // one means an agent bug, counted as a payload-level violation.
      CountError(WireError::kBadPayload);
      break;
  }
}

size_t TransportHub::DrainPeer(Peer& peer, ShmSegment& segment, std::vector<uint8_t>& buf) {
  static Counter* m_frames = MetricsRegistry::Global().GetCounter("transport.frames");
  static Counter* m_bytes = MetricsRegistry::Global().GetCounter("transport.bytes");
  ShmSpscRing& ring = segment.data_ring();
  size_t dispatched = 0;
  while (ring.Pop(buf)) {
    bytes_.fetch_add(buf.size(), std::memory_order_acq_rel);
    m_bytes->Add(buf.size());
    DecodedFrame frame;
    const WireError err = DecodeFrame(buf.data(), buf.size(), &frame);
    if (err != WireError::kOk) {
      CountError(err);
      // A frame this peer published is lost to us — its streams may
      // have a hole; the caller triggers a resync on the new count.
      ++peer.data_decode_errors;
      continue;
    }
    frames_.fetch_add(1, std::memory_order_acq_rel);
    m_frames->Add();
    Dispatch(peer, std::move(frame));
    ++dispatched;
  }
  return dispatched;
}

void TransportHub::ReactorLoop() {
  std::vector<uint8_t> buf;
  while (!stop_.load(std::memory_order_acquire)) {
    size_t dispatched = 0;
    for (Peer* peer : SnapshotPeers()) {
      auto segment = SegmentOf(*peer);
      if (segment == nullptr) {
        continue;
      }
      const uint64_t errors_before = peer->data_decode_errors;
      dispatching_.store(true, std::memory_order_release);
      dispatched += DrainPeer(*peer, *segment, buf);
      dispatching_.store(false, std::memory_order_release);
      // Loss-without-death resync triggers: a sequence jump on the data
      // ring (producer consumed numbers we never saw) or a frame that
      // failed decode.  Rate-limited inside RequestResyncAll — only
      // streams newly marked stale get a request.
      const uint64_t gaps = segment->data_ring().seq_gaps();
      const bool lost_frames =
          gaps > peer->seen_seq_gaps || peer->data_decode_errors > errors_before;
      peer->seen_seq_gaps = gaps;
      if (lost_frames &&
          peer->state.load(std::memory_order_acquire) == PeerState::kLive) {
        RequestResyncAll(*peer);
      }
      // Death check only after a full drain: everything the agent
      // published before dying is dispatched first, then the gap is
      // recorded — ordering the multiproc test relies on.
      const PeerState state = peer->state.load(std::memory_order_acquire);
      if (!peer->dead.load(std::memory_order_acquire) &&
          !peer->bye.load(std::memory_order_acquire) &&
          (state == PeerState::kConnecting || state == PeerState::kLive)) {
        const uint32_t pid = peer->pid.load(std::memory_order_acquire);
        const bool corrupt = segment->data_ring().corrupt();
        if (corrupt || (pid != 0 && !PidAlive(pid) && segment->data_ring().empty())) {
          static Counter* dead = MetricsRegistry::Global().GetCounter("transport.peers_dead");
          peer->dead.store(true, std::memory_order_release);
          peer->state.store(PeerState::kDead, std::memory_order_release);
          dead->Add();
        }
      }
      // A restarted peer whose new incarnation never said Hello is
      // eventually given up on rather than watched forever.
      if (state == PeerState::kRejoining &&
          NowUs() > peer->rejoin_deadline_us.load(std::memory_order_acquire)) {
        static Counter* gave_up =
            MetricsRegistry::Global().GetCounter("transport.peers_gave_up");
        peer->state.store(PeerState::kGaveUp, std::memory_order_release);
        peers_gave_up_.fetch_add(1, std::memory_order_acq_rel);
        gave_up->Add();
      }
    }
    if (dispatched == 0) {
      // Idle: park briefly.  Bounded sleep rather than a multi-ring
      // futex wait — one wakeup per millisecond is noise, and no peer
      // can be starved by another's doorbell.
      NapUs(500);
    }
  }
  // Final sweep so frames published just before stop are not lost.
  for (Peer* peer : SnapshotPeers()) {
    auto segment = SegmentOf(*peer);
    if (segment != nullptr) {
      DrainPeer(*peer, *segment, buf);
    }
  }
}

// --- ShmAgentClient ---

std::unique_ptr<ShmAgentClient> ShmAgentClient::Open(const std::string& name,
                                                     int64_t push_timeout_us) {
  auto segment = ShmSegment::Open(name);
  if (segment == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<ShmAgentClient>(
      new ShmAgentClient(std::move(segment), push_timeout_us));
}

std::unique_ptr<ShmAgentClient> ShmAgentClient::OpenWithBackoff(const std::string& name,
                                                                int64_t total_timeout_us,
                                                                int64_t push_timeout_us) {
  const int64_t deadline = NowUs() + total_timeout_us;
  int64_t backoff_us = 1'000;  // 1 ms, doubling to 100 ms
  for (;;) {
    auto client = Open(name, push_timeout_us);
    if (client != nullptr) {
      return client;
    }
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return nullptr;
    }
    NapUs(std::min(backoff_us, left));
    backoff_us = std::min<int64_t>(backoff_us * 2, 100'000);
  }
}

void ShmAgentClient::SetFaultInjector(const FaultInjectorConfig& config) {
  std::lock_guard<std::mutex> lock(send_mu_);
  injector_ = config.any() ? std::make_unique<FaultInjector>(config) : nullptr;
}

FaultInjector::Counts ShmAgentClient::fault_counts() const {
  std::lock_guard<std::mutex> lock(send_mu_);
  return injector_ != nullptr ? injector_->counts() : FaultInjector::Counts{};
}

bool ShmAgentClient::PushRaw(const std::vector<uint8_t>& frame) {
  if (gave_up_.load(std::memory_order_acquire)) {
    return false;  // terminal: the controller is gone or wedged
  }
  const bool ok = segment_->data_ring().Push(frame.data(), frame.size(), push_timeout_us_);
  if (!ok) {
    static Counter* gave_up = MetricsRegistry::Global().GetCounter("transport.client_gave_up");
    gave_up_.store(true, std::memory_order_release);
    gave_up->Add();
  }
  return ok;
}

void ShmAgentClient::ReleaseDelayedLocked() {
  if (!delayed_.empty()) {
    PushRaw(delayed_);
    delayed_.clear();
  }
}

bool ShmAgentClient::PushFrame() {
  // Un-faulted path (control frames, hello, snapshots).  Any delayed
  // data frame goes out FIRST: once the controller sees e.g. an epoch
  // ack, every data frame the agent sent before it is in the ring.
  ReleaseDelayedLocked();
  return PushRaw(scratch_);
}

bool ShmAgentClient::PushDataFrame() {
  if (injector_ == nullptr) {
    return PushFrame();
  }
  switch (injector_->Next()) {
    case FaultInjector::Action::kNone:
      break;
    case FaultInjector::Action::kCorrupt:
      injector_->Corrupt(scratch_);  // whole-frame CRC catches it at the hub
      break;
    case FaultInjector::Action::kDrop: {
      // Consume the sequence number without publishing: the consumer
      // sees the jump, exactly like real upstream loss.
      ShmSpscRing& ring = segment_->data_ring();
      ring.set_next_seq(ring.next_seq() + 1);
      return true;
    }
    case FaultInjector::Action::kDelay:
      if (delayed_.empty()) {
        delayed_ = scratch_;  // released after the NEXT data frame: a reorder
        return true;
      }
      break;  // stash occupied — deliver in order
    case FaultInjector::Action::kDup: {
      const bool first = PushRaw(scratch_);
      const bool second = PushRaw(scratch_);
      ReleaseDelayedLocked();
      return first && second;
    }
  }
  const bool ok = PushRaw(scratch_);
  ReleaseDelayedLocked();  // after the current frame: true reorder
  return ok;
}

bool ShmAgentClient::SendHello(HostId host, uint32_t incarnation) {
  std::lock_guard<std::mutex> lock(send_mu_);
  segment_->header()->agent_pid.store(uint32_t(getpid()), std::memory_order_release);
  scratch_.clear();
  EncodeHelloFrame(host, uint32_t(getpid()), incarnation, scratch_);
  return PushFrame();
}

bool ShmAgentClient::SendDelta(const QueryDelta& delta) {
  static Counter* pushes = MetricsRegistry::Global().GetCounter("ring.delta_pushes");
  static Counter* snapshot_pushes =
      MetricsRegistry::Global().GetCounter("ring.snapshot_pushes");
  static LatencyHistogram* push_us =
      MetricsRegistry::Global().GetHistogram("ring.delta_push_us");
  TraceScope span("ring.push", TraceKeys{delta.subscription_id, delta.host, delta.epoch});
  const uint64_t t0 = Tracer::Global().NowUs();
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  if (delta.snapshot) {
    // Recovery traffic rides the un-faulted path: a dropped snapshot
    // would leave the stream stale forever (the request was already
    // consumed), so chaos must not touch it.
    EncodeSnapshotFrame(delta, scratch_);
    const bool ok = PushFrame();
    snapshot_pushes->Add();
    push_us->Record(Tracer::Global().NowUs() - t0);
    return ok;
  }
  EncodeQueryDeltaFrame(delta, scratch_);
  const bool ok = PushDataFrame();
  pushes->Add();
  push_us->Record(Tracer::Global().NowUs() - t0);
  return ok;
}

bool ShmAgentClient::SendAlarm(const Alarm& alarm) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeAlarmFrame(alarm, scratch_);
  return PushDataFrame();
}

bool ShmAgentClient::SendAck(HostId host, uint64_t token) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeAckFrame(host, token, scratch_);
  return PushFrame();
}

bool ShmAgentClient::SendBye(HostId host) {
  std::lock_guard<std::mutex> lock(send_mu_);
  scratch_.clear();
  EncodeByeFrame(host, scratch_);
  return PushFrame();
}

bool ShmAgentClient::PollCommand(DecodedFrame* out, int64_t timeout_us) {
  ShmSpscRing& ring = segment_->cmd_ring();
  const int64_t deadline = NowUs() + timeout_us;
  std::vector<uint8_t> buf;
  for (;;) {
    while (ring.Pop(buf)) {
      const WireError err = DecodeFrame(buf.data(), buf.size(), out);
      if (err == WireError::kOk) {
        return true;
      }
      ++cmd_decode_errors_;
    }
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return false;
    }
    ring.WaitForData(left);
  }
}

EdgeAgent::DeltaSink ShmAgentClient::MakeDeltaSink() {
  return [this](QueryDelta&& delta) { SendDelta(delta); };
}

AlarmHandler ShmAgentClient::MakeAlarmSink() {
  return [this](const Alarm& alarm) { SendAlarm(alarm); };
}

}  // namespace transport
}  // namespace pathdump
