// Single-producer single-consumer message ring over POSIX shared memory.
//
// One ring is one direction of one agent ↔ controller channel: the agent
// process produces encoded frames into the data ring, the controller's
// reactor consumes them (and the reverse for the command ring).  The
// design is the classic fixed-slot sequence ring:
//
//   [RingControl | slot 0 | slot 1 | ... | slot N-1]      (N power of 2)
//
//   head — slots produced (monotonic u64, producer-written, release)
//   tail — slots consumed (monotonic u64, consumer-written, release)
//
// A message occupies ceil((16 + len) / slot_bytes) *consecutive* slots:
// a 16-byte message header {seq u64, len u32, reserved u32} followed by
// the payload, copied contiguously through the slot array (slots are
// contiguous in memory, so only the N-1 → 0 wrap splits a copy in two).
// The producer copies the whole message first and publishes it with one
// release store of head — a producer killed mid-copy (SIGKILL chaos in
// tests/transport_multiproc_test.cc) leaves head unadvanced, so the
// consumer can never observe a torn message; whatever was fully
// published before death remains drainable.
//
// Sequence protocol: every message carries the producer's message
// counter (RingControl::next_seq, also visible to the consumer for gap
// accounting).  The consumer tracks the expected value; a jump means
// messages were lost somewhere upstream (fault injection uses
// set_next_seq; a crashed-and-restarted producer would jump too) and is
// counted, never deadlocked on.
//
// Wakeup: producers block on ring-full and consumers on ring-empty via
// doorbell words — futex wait/wake on Linux (process-shared, bounded
// waits so a lost wake costs one timeout, never a hang), nanosleep
// polling elsewhere.  All waits take explicit timeouts; nothing in this
// file can block forever on a dead peer.
//
// Memory note: the control block uses std::atomic over mmap'd MAP_SHARED
// memory — lock-free at these widths on every supported target (asserted
// at creation), the standard C++ idiom for process-shared rings.

#ifndef PATHDUMP_SRC_TRANSPORT_SHM_RING_H_
#define PATHDUMP_SRC_TRANSPORT_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pathdump {
namespace transport {

inline constexpr uint32_t kRingMagic = 0x50445251u;  // 'PDRQ'
inline constexpr size_t kMessageHeaderBytes = 16;

// Shared-memory resident control block.  Cache-line separation keeps the
// producer's head store from false-sharing the consumer's tail store.
struct RingControl {
  uint32_t magic = 0;
  uint32_t slot_bytes = 0;
  uint32_t slot_count = 0;  // power of two
  uint32_t reserved = 0;
  alignas(64) std::atomic<uint64_t> head{0};      // slots produced
  alignas(64) std::atomic<uint64_t> tail{0};      // slots consumed
  alignas(64) std::atomic<uint64_t> next_seq{0};  // next message seq to stamp
  std::atomic<uint64_t> blocked_pushes{0};        // producer waited on full
  std::atomic<uint32_t> closed{0};                // producer's graceful close
  alignas(64) std::atomic<uint32_t> data_doorbell{0};   // bumped on push
  alignas(64) std::atomic<uint32_t> space_doorbell{0};  // bumped on pop
};

// Non-owning producer/consumer view over a ring in (shared) memory.
// Exactly one producer and one consumer may use a given ring at a time;
// they may be different processes.
class ShmSpscRing {
 public:
  ShmSpscRing() = default;

  // Bytes a ring with this geometry occupies (control block + slots).
  static size_t BytesFor(size_t slot_bytes, size_t slot_count);
  // Initializes a fresh ring in caller-provided memory (zeroed or not).
  static ShmSpscRing CreateAt(void* mem, size_t slot_bytes, size_t slot_count);
  // Attaches to an already-initialized ring; invalid view on bad magic.
  static ShmSpscRing ViewAt(void* mem);

  bool valid() const { return ctl_ != nullptr; }
  size_t slot_bytes() const { return ctl_->slot_bytes; }
  size_t slot_count() const { return ctl_->slot_count; }
  // Largest payload a single message may carry on this ring.
  size_t max_message_bytes() const {
    return size_t(ctl_->slot_bytes) * (ctl_->slot_count - 1) - kMessageHeaderBytes;
  }

  // --- Producer side ---

  // Non-blocking: false if the message does not fit right now (ring
  // full) or can never fit (larger than the ring).
  bool TryPush(const uint8_t* data, size_t len);
  // Blocking push with a deadline: waits for space (futex/poll) up to
  // `timeout_us`; false on timeout or oversize.  This is the
  // backpressure edge — a stalled controller stalls the agent's epoch
  // tick here rather than dropping a delta.
  bool Push(const uint8_t* data, size_t len, int64_t timeout_us);
  // Marks the producer side closed (consumer drains what remains).
  void CloseProducer() { ctl_->closed.store(1, std::memory_order_release); }
  // Fault injection for tests: forge the next message sequence number,
  // simulating upstream loss for the consumer's gap accounting.
  void set_next_seq(uint64_t seq) { ctl_->next_seq.store(seq, std::memory_order_relaxed); }
  // Producer-side view of the next sequence to stamp.  Paired with
  // set_next_seq this is how FaultInjector "drops" a frame: consuming
  // the number without pushing makes the loss visible to the consumer's
  // gap accounting, exactly like real upstream loss.
  uint64_t next_seq() const { return ctl_->next_seq.load(std::memory_order_relaxed); }

  // --- Consumer side ---

  // Pops one whole message into `out` (replaced).  Returns false when
  // the ring is empty.  `seq` (optional) receives the message's stamped
  // sequence number.  A structurally corrupt message header (impossible
  // length) poisons the ring: Pop returns false forever after and
  // corrupt() turns true — the reactor treats that peer as lost rather
  // than chasing a desynchronized tail.
  bool Pop(std::vector<uint8_t>& out, uint64_t* seq = nullptr);
  // Blocks (futex/poll) until a message is available, the producer
  // closed, or the timeout elapses.  True if data is available.
  bool WaitForData(int64_t timeout_us);

  bool empty() const {
    return ctl_->tail.load(std::memory_order_acquire) ==
           ctl_->head.load(std::memory_order_acquire);
  }
  bool closed() const { return ctl_->closed.load(std::memory_order_acquire) != 0; }
  bool corrupt() const { return corrupt_; }

  // Consumer-side sequence accounting (valid on the consuming view).
  uint64_t messages_popped() const { return popped_; }
  uint64_t seq_gaps() const { return seq_gaps_; }  // messages missing, cumulative
  uint64_t blocked_pushes() const { return ctl_->blocked_pushes.load(std::memory_order_relaxed); }
  // Messages published but not yet consumed (snapshot).
  uint64_t backlog_slots() const {
    return ctl_->head.load(std::memory_order_acquire) -
           ctl_->tail.load(std::memory_order_acquire);
  }

 private:
  RingControl* ctl_ = nullptr;
  uint8_t* slots_ = nullptr;

  // Copies len bytes to/from slot space starting at slot index
  // (pos % slot_count), splitting at the physical wrap.
  void CopyIn(uint64_t slot_pos, size_t offset, const uint8_t* src, size_t len);
  void CopyOut(uint64_t slot_pos, size_t offset, uint8_t* dst, size_t len) const;

  // Consumer-local state (single consumer; no sharing).
  uint64_t expected_seq_ = 0;
  uint64_t seq_gaps_ = 0;
  uint64_t popped_ = 0;
  bool seq_primed_ = false;
  bool corrupt_ = false;
};

// A named POSIX shared-memory segment holding one agent's channel pair:
//
//   [SegmentHeader | data ring (agent → controller) | cmd ring (→ agent)]
//
// The creator (controller side) shm_opens with O_CREAT|O_EXCL, sizes and
// initializes the rings, and unlinks the name in its destructor (or
// Unlink()), so a normally-exiting process leaves no /dev/shm entry even
// when tests fail; openers just map.  Names follow shm_open rules
// ("/pathdump.<pid>.<host>" in practice — pid-scoped so a crashed
// earlier run can never collide with a new one).
struct SegmentHeader {
  uint32_t magic = 0;  // 'PDSG'
  uint32_t version = 0;
  uint64_t total_bytes = 0;
  uint64_t data_ring_offset = 0;
  uint64_t cmd_ring_offset = 0;
  std::atomic<uint32_t> agent_pid{0};  // set by the agent's Hello path
  std::atomic<uint32_t> controller_pid{0};
};

inline constexpr uint32_t kSegmentMagic = 0x50445347u;  // 'PDSG'

class ShmSegment {
 public:
  struct Geometry {
    size_t data_slot_bytes = 256;
    size_t data_slot_count = 1 << 14;  // 4 MiB of delta headroom
    size_t cmd_slot_bytes = 256;
    size_t cmd_slot_count = 1 << 8;
  };

  // Creates (exclusively) and initializes the segment; null on failure.
  static std::unique_ptr<ShmSegment> Create(const std::string& name, const Geometry& geo);
  // Maps an existing segment; null if absent or malformed.
  static std::unique_ptr<ShmSegment> Open(const std::string& name);
  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  const std::string& name() const { return name_; }
  SegmentHeader* header() { return header_; }
  ShmSpscRing& data_ring() { return data_ring_; }
  ShmSpscRing& cmd_ring() { return cmd_ring_; }

  // Removes the name from /dev/shm (idempotent; mappings stay valid).
  void Unlink();

 private:
  ShmSegment() = default;

  std::string name_;
  void* mem_ = nullptr;
  size_t size_ = 0;
  bool owner_ = false;
  SegmentHeader* header_ = nullptr;
  ShmSpscRing data_ring_;
  ShmSpscRing cmd_ring_;
};

// Best-effort sweep: unlinks every /dev/shm entry whose name starts with
// `prefix` (no leading slash in the directory listing) and returns how
// many were unlinked.  Used by test teardown so no segment outlives a
// failed or crashed suite, and by TransportHub startup to reclaim
// segments a SIGKILLed fleet left behind.  With `only_dead_owners` set,
// an entry is unlinked only when it is a valid PathDump segment whose
// recorded controller pid is provably gone (ESRCH) — the safe mode for
// startup sweeps that must not touch a concurrently-running suite.
size_t CleanupShmByPrefix(const std::string& prefix, bool only_dead_owners = false);

}  // namespace transport
}  // namespace pathdump

#endif  // PATHDUMP_SRC_TRANSPORT_SHM_RING_H_
