#include "src/transport/fault_injector.h"

#include <cstdlib>

#include "src/common/metrics.h"
#include "src/transport/wire.h"

namespace pathdump {
namespace transport {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

FaultInjectorConfig FaultInjectorConfig::FromEnv() {
  FaultInjectorConfig cfg;
  cfg.seed = EnvU64("PATHDUMP_FAULT_SEED", 1);
  cfg.drop_per_10k = uint32_t(EnvU64("PATHDUMP_FAULT_DROP", 0));
  cfg.corrupt_per_10k = uint32_t(EnvU64("PATHDUMP_FAULT_CORRUPT", 0));
  cfg.delay_per_10k = uint32_t(EnvU64("PATHDUMP_FAULT_DELAY", 0));
  cfg.dup_per_10k = uint32_t(EnvU64("PATHDUMP_FAULT_DUP", 0));
  return cfg;
}

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config), rng_(config.seed, /*stream=*/0xFA017u) {}

FaultInjector::Action FaultInjector::Next() {
  static Counter* m_drop = MetricsRegistry::Global().GetCounter("fault.injected_drop");
  static Counter* m_corrupt = MetricsRegistry::Global().GetCounter("fault.injected_corrupt");
  static Counter* m_delay = MetricsRegistry::Global().GetCounter("fault.injected_delay");
  static Counter* m_dup = MetricsRegistry::Global().GetCounter("fault.injected_dup");
  const uint32_t draw = rng_.UniformInt(10'000);
  uint32_t edge = config_.drop_per_10k;
  if (draw < edge) {
    ++counts_.dropped;
    m_drop->Add();
    return Action::kDrop;
  }
  edge += config_.corrupt_per_10k;
  if (draw < edge) {
    ++counts_.corrupted;
    m_corrupt->Add();
    return Action::kCorrupt;
  }
  edge += config_.delay_per_10k;
  if (draw < edge) {
    ++counts_.delayed;
    m_delay->Add();
    return Action::kDelay;
  }
  edge += config_.dup_per_10k;
  if (draw < edge) {
    ++counts_.duplicated;
    m_dup->Add();
    return Action::kDup;
  }
  return Action::kNone;
}

void FaultInjector::Corrupt(std::vector<uint8_t>& frame) {
  if (frame.size() <= kFrameHeaderBytes) {
    return;  // no payload to flip; header flips would change the category
  }
  // Flip one bit anywhere past the header: the whole-frame CRC detects
  // it, so the reactor counts exactly one bad_checksum per corrupt.
  const size_t span = frame.size() - kFrameHeaderBytes;
  const size_t at = kFrameHeaderBytes + rng_.UniformInt(uint32_t(span));
  frame[at] ^= uint8_t(1u << rng_.UniformInt(8));
}

}  // namespace transport
}  // namespace pathdump
