#include "src/transport/shm_ring.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <ctime>
#endif

namespace pathdump {
namespace transport {

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "process-shared ring counters must be lock-free");
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "process-shared doorbells must be lock-free");

namespace {

constexpr size_t kCacheLine = 64;

size_t AlignUp(size_t n) { return (n + kCacheLine - 1) & ~(kCacheLine - 1); }

// Waits until `word` changes away from `expected` or `timeout_us`
// elapses.  Process-shared futex on Linux (the wake side bumps the word
// *before* FUTEX_WAKE, so a concurrent bump makes FUTEX_WAIT return
// EAGAIN immediately — no lost-wake window); bounded nanosleep poll
// elsewhere.
void WaitOnWord(std::atomic<uint32_t>& word, uint32_t expected, int64_t timeout_us) {
#ifdef __linux__
  timespec ts;
  ts.tv_sec = timeout_us / 1000000;
  ts.tv_nsec = (timeout_us % 1000000) * 1000;
  // Not FUTEX_PRIVATE: the word lives in MAP_SHARED memory crossing
  // process boundaries.
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word), FUTEX_WAIT, expected, &ts, nullptr, 0);
#else
  (void)word;
  (void)expected;
  timespec ts;
  const int64_t nap_us = timeout_us < 200 ? timeout_us : 200;
  ts.tv_sec = 0;
  ts.tv_nsec = nap_us * 1000;
  nanosleep(&ts, nullptr);
#endif
}

void WakeWord(std::atomic<uint32_t>& word) {
  word.fetch_add(1, std::memory_order_release);
#ifdef __linux__
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word), FUTEX_WAKE, INT32_MAX, nullptr, nullptr,
          0);
#endif
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

size_t ShmSpscRing::BytesFor(size_t slot_bytes, size_t slot_count) {
  return AlignUp(sizeof(RingControl)) + slot_bytes * slot_count;
}

ShmSpscRing ShmSpscRing::CreateAt(void* mem, size_t slot_bytes, size_t slot_count) {
  ShmSpscRing ring;
  auto* ctl = new (mem) RingControl{};
  ctl->slot_bytes = uint32_t(slot_bytes);
  ctl->slot_count = uint32_t(slot_count);
  ring.ctl_ = ctl;
  ring.slots_ = static_cast<uint8_t*>(mem) + AlignUp(sizeof(RingControl));
  // Publish the magic last: a concurrent ViewAt only attaches once the
  // geometry above is in place.
  std::atomic_thread_fence(std::memory_order_release);
  ctl->magic = kRingMagic;
  return ring;
}

ShmSpscRing ShmSpscRing::ViewAt(void* mem) {
  ShmSpscRing ring;
  auto* ctl = static_cast<RingControl*>(mem);
  if (ctl->magic != kRingMagic || ctl->slot_count == 0 ||
      (ctl->slot_count & (ctl->slot_count - 1)) != 0) {
    return ring;  // invalid
  }
  ring.ctl_ = ctl;
  ring.slots_ = static_cast<uint8_t*>(mem) + AlignUp(sizeof(RingControl));
  return ring;
}

void ShmSpscRing::CopyIn(uint64_t slot_pos, size_t offset, const uint8_t* src, size_t len) {
  const size_t cap = size_t(ctl_->slot_bytes) * ctl_->slot_count;
  const size_t at = (size_t(slot_pos & (ctl_->slot_count - 1)) * ctl_->slot_bytes + offset) % cap;
  const size_t first = len < cap - at ? len : cap - at;
  std::memcpy(slots_ + at, src, first);
  std::memcpy(slots_, src + first, len - first);
}

void ShmSpscRing::CopyOut(uint64_t slot_pos, size_t offset, uint8_t* dst, size_t len) const {
  const size_t cap = size_t(ctl_->slot_bytes) * ctl_->slot_count;
  const size_t at = (size_t(slot_pos & (ctl_->slot_count - 1)) * ctl_->slot_bytes + offset) % cap;
  const size_t first = len < cap - at ? len : cap - at;
  std::memcpy(dst, slots_ + at, first);
  if (len > first) {
    std::memcpy(dst + first, slots_, len - first);
  }
}

bool ShmSpscRing::TryPush(const uint8_t* data, size_t len) { return Push(data, len, 0); }

bool ShmSpscRing::Push(const uint8_t* data, size_t len, int64_t timeout_us) {
  if (len > max_message_bytes()) {
    return false;
  }
  const uint64_t k =
      (kMessageHeaderBytes + len + ctl_->slot_bytes - 1) / ctl_->slot_bytes;  // slots needed
  const uint64_t head = ctl_->head.load(std::memory_order_relaxed);  // producer-owned
  const int64_t deadline = NowUs() + timeout_us;
  bool counted_block = false;
  for (;;) {
    const uint32_t doorbell = ctl_->space_doorbell.load(std::memory_order_acquire);
    const uint64_t used = head - ctl_->tail.load(std::memory_order_acquire);
    if (ctl_->slot_count - used >= k) {
      break;
    }
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return false;  // TryPush, or a blocking push that timed out
    }
    if (!counted_block) {
      ctl_->blocked_pushes.fetch_add(1, std::memory_order_relaxed);
      counted_block = true;
    }
    WaitOnWord(ctl_->space_doorbell, doorbell, left < 1000 ? left : 1000);
  }
  const uint64_t seq = ctl_->next_seq.load(std::memory_order_relaxed);
  uint8_t hdr[kMessageHeaderBytes];
  std::memcpy(hdr, &seq, 8);
  const uint32_t len32 = uint32_t(len);
  std::memcpy(hdr + 8, &len32, 4);
  std::memset(hdr + 12, 0, 4);
  CopyIn(head, 0, hdr, kMessageHeaderBytes);
  CopyIn(head, kMessageHeaderBytes, data, len);
  ctl_->next_seq.store(seq + 1, std::memory_order_relaxed);
  // The one publishing store: everything copied above happens-before a
  // consumer that observes the new head.
  ctl_->head.store(head + k, std::memory_order_release);
  WakeWord(ctl_->data_doorbell);
  return true;
}

bool ShmSpscRing::Pop(std::vector<uint8_t>& out, uint64_t* seq_out) {
  if (corrupt_) {
    return false;
  }
  const uint64_t tail = ctl_->tail.load(std::memory_order_relaxed);  // consumer-owned
  const uint64_t head = ctl_->head.load(std::memory_order_acquire);
  if (head == tail) {
    return false;
  }
  uint8_t hdr[kMessageHeaderBytes];
  CopyOut(tail, 0, hdr, kMessageHeaderBytes);
  uint64_t seq;
  uint32_t len;
  std::memcpy(&seq, hdr, 8);
  std::memcpy(&len, hdr + 8, 4);
  const uint64_t k = (kMessageHeaderBytes + uint64_t(len) + ctl_->slot_bytes - 1) /
                     ctl_->slot_bytes;
  if (len > max_message_bytes() || k > head - tail) {
    // A length no valid producer can have written: the ring is
    // desynchronized (shm corruption).  Poison rather than guess.
    corrupt_ = true;
    return false;
  }
  out.resize(len);
  CopyOut(tail, kMessageHeaderBytes, out.data(), len);
  ctl_->tail.store(tail + k, std::memory_order_release);
  WakeWord(ctl_->space_doorbell);
  if (seq_primed_ && seq > expected_seq_) {
    seq_gaps_ += seq - expected_seq_;
  }
  expected_seq_ = seq + 1;
  seq_primed_ = true;
  ++popped_;
  if (seq_out != nullptr) {
    *seq_out = seq;
  }
  return true;
}

bool ShmSpscRing::WaitForData(int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  for (;;) {
    const uint32_t doorbell = ctl_->data_doorbell.load(std::memory_order_acquire);
    if (!empty()) {
      return true;
    }
    if (closed()) {
      return false;
    }
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return false;
    }
    WaitOnWord(ctl_->data_doorbell, doorbell, left < 1000 ? left : 1000);
  }
}

// --- ShmSegment ---

std::unique_ptr<ShmSegment> ShmSegment::Create(const std::string& name, const Geometry& geo) {
  const size_t header_bytes = AlignUp(sizeof(SegmentHeader));
  const size_t data_bytes = ShmSpscRing::BytesFor(geo.data_slot_bytes, geo.data_slot_count);
  const size_t total = header_bytes + AlignUp(data_bytes) +
                       ShmSpscRing::BytesFor(geo.cmd_slot_bytes, geo.cmd_slot_count);
  int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    return nullptr;
  }
  if (ftruncate(fd, off_t(total)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    return nullptr;
  }
  void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mem == MAP_FAILED) {
    shm_unlink(name.c_str());
    return nullptr;
  }
  auto seg = std::unique_ptr<ShmSegment>(new ShmSegment());
  seg->name_ = name;
  seg->mem_ = mem;
  seg->size_ = total;
  seg->owner_ = true;
  auto* header = new (mem) SegmentHeader{};
  header->version = 1;
  header->total_bytes = total;
  header->data_ring_offset = header_bytes;
  header->cmd_ring_offset = header_bytes + AlignUp(data_bytes);
  header->controller_pid.store(uint32_t(getpid()), std::memory_order_relaxed);
  seg->header_ = header;
  seg->data_ring_ = ShmSpscRing::CreateAt(static_cast<uint8_t*>(mem) + header->data_ring_offset,
                                          geo.data_slot_bytes, geo.data_slot_count);
  seg->cmd_ring_ = ShmSpscRing::CreateAt(static_cast<uint8_t*>(mem) + header->cmd_ring_offset,
                                         geo.cmd_slot_bytes, geo.cmd_slot_count);
  std::atomic_thread_fence(std::memory_order_release);
  header->magic = kSegmentMagic;
  return seg;
}

std::unique_ptr<ShmSegment> ShmSegment::Open(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) {
    return nullptr;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(SegmentHeader))) {
    close(fd);
    return nullptr;
  }
  const size_t total = size_t(st.st_size);
  void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (mem == MAP_FAILED) {
    return nullptr;
  }
  auto* header = static_cast<SegmentHeader*>(mem);
  if (header->magic != kSegmentMagic || header->total_bytes != total ||
      header->data_ring_offset >= total || header->cmd_ring_offset >= total) {
    munmap(mem, total);
    return nullptr;
  }
  auto seg = std::unique_ptr<ShmSegment>(new ShmSegment());
  seg->name_ = name;
  seg->mem_ = mem;
  seg->size_ = total;
  seg->owner_ = false;
  seg->header_ = header;
  seg->data_ring_ = ShmSpscRing::ViewAt(static_cast<uint8_t*>(mem) + header->data_ring_offset);
  seg->cmd_ring_ = ShmSpscRing::ViewAt(static_cast<uint8_t*>(mem) + header->cmd_ring_offset);
  if (!seg->data_ring_.valid() || !seg->cmd_ring_.valid()) {
    return nullptr;  // destructor munmaps
  }
  return seg;
}

ShmSegment::~ShmSegment() {
  if (owner_) {
    Unlink();
  }
  if (mem_ != nullptr) {
    munmap(mem_, size_);
  }
}

void ShmSegment::Unlink() {
  if (owner_ && !name_.empty()) {
    shm_unlink(name_.c_str());
    owner_ = false;
  }
}

namespace {

// True when `name` ("/..." form) is a valid PathDump segment whose
// recorded controller pid no longer exists.  Unknown or mid-creation
// segments (bad magic) are conservatively treated as live.
bool SegmentOwnerDead(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    return false;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(SegmentHeader))) {
    close(fd);
    return false;
  }
  // Map just the header page — enough for magic + controller_pid.
  void* mem = mmap(nullptr, sizeof(SegmentHeader), PROT_READ, MAP_SHARED, fd, 0);
  close(fd);
  if (mem == MAP_FAILED) {
    return false;
  }
  const auto* header = static_cast<const SegmentHeader*>(mem);
  bool dead = false;
  if (header->magic == kSegmentMagic) {
    const uint32_t pid = header->controller_pid.load(std::memory_order_acquire);
    dead = pid != 0 && kill(pid_t(pid), 0) != 0 && errno == ESRCH;
  }
  munmap(mem, sizeof(SegmentHeader));
  return dead;
}

}  // namespace

size_t CleanupShmByPrefix(const std::string& prefix, bool only_dead_owners) {
  // /dev/shm entries drop shm_open's leading slash.
  const std::string bare = prefix.empty() || prefix[0] != '/' ? prefix : prefix.substr(1);
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) {
    return 0;
  }
  size_t reclaimed = 0;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(bare, 0) != 0) {
      continue;
    }
    const std::string full = "/" + name;
    if (only_dead_owners && !SegmentOwnerDead(full)) {
      continue;
    }
    if (shm_unlink(full.c_str()) == 0) {
      ++reclaimed;
    }
  }
  closedir(dir);
  return reclaimed;
}

}  // namespace transport
}  // namespace pathdump
