#include "src/transport/wire.h"

#include <array>
#include <cstring>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/edge/tib.h"

namespace pathdump {
namespace transport {

namespace {

// --- Little-endian primitives (fixed layout on every host) ---

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(uint8_t(v));
  out.push_back(uint8_t(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(uint8_t(v));
  out.push_back(uint8_t(v >> 8));
  out.push_back(uint8_t(v >> 16));
  out.push_back(uint8_t(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, uint32_t(v));
  PutU32(out, uint32_t(v >> 32));
}

void PutI64(std::vector<uint8_t>& out, int64_t v) { PutU64(out, uint64_t(v)); }

// The 13-byte packed 5-tuple every size model in the repo charges.
void PutTuple(std::vector<uint8_t>& out, const FiveTuple& t) {
  PutU32(out, t.src_ip);
  PutU32(out, t.dst_ip);
  PutU16(out, t.src_port);
  PutU16(out, t.dst_port);
  PutU8(out, t.protocol);
}

// Bounds-checked read cursor over a frame payload.  Every Get returns
// false on underrun; the caller maps that to kBadPayload (the outer
// length checks already rejected truncated *frames*, so an underrun
// here means the payload's internal structure lies about itself).
struct Cursor {
  const uint8_t* p;
  size_t left;

  bool GetU8(uint8_t* v) {
    if (left < 1) return false;
    *v = p[0];
    p += 1;
    left -= 1;
    return true;
  }
  bool GetU16(uint16_t* v) {
    if (left < 2) return false;
    *v = uint16_t(p[0]) | uint16_t(p[1]) << 8;
    p += 2;
    left -= 2;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (left < 4) return false;
    *v = uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 | uint32_t(p[3]) << 24;
    p += 4;
    left -= 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = uint64_t(lo) | uint64_t(hi) << 32;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = int64_t(u);
    return true;
  }
  bool GetTuple(FiveTuple* t) {
    return GetU32(&t->src_ip) && GetU32(&t->dst_ip) && GetU16(&t->src_port) &&
           GetU16(&t->dst_port) && GetU8(&t->protocol);
  }
};

// Appends the 16-byte header with a zeroed crc field; FinishFrame
// patches the crc once the payload is in place.
size_t BeginFrame(std::vector<uint8_t>& out, FrameType type) {
  size_t start = out.size();
  PutU32(out, kFrameMagic);
  PutU8(out, kWireVersion);
  PutU8(out, uint8_t(type));
  PutU16(out, 0);  // reserved
  PutU32(out, 0);  // payload_len, patched below
  PutU32(out, 0);  // crc32, patched below
  return start;
}

size_t FinishFrame(std::vector<uint8_t>& out, size_t start) {
  const size_t total = out.size() - start;
  const uint32_t payload_len = uint32_t(total - kFrameHeaderBytes);
  uint8_t* hdr = out.data() + start;
  hdr[8] = uint8_t(payload_len);
  hdr[9] = uint8_t(payload_len >> 8);
  hdr[10] = uint8_t(payload_len >> 16);
  hdr[11] = uint8_t(payload_len >> 24);
  // CRC over the whole frame with the crc field still zero — so a flip
  // of ANY frame bit (header fields, reserved bytes, payload, or the
  // stored crc itself) fails verification.
  const uint32_t crc = Crc32(hdr, total);
  hdr[12] = uint8_t(crc);
  hdr[13] = uint8_t(crc >> 8);
  hdr[14] = uint8_t(crc >> 16);
  hdr[15] = uint8_t(crc >> 24);
  return total;
}

bool ValidKind(uint8_t kind) { return kind <= uint8_t(StandingQuerySpec::Kind::kCountSummary); }

bool IsRecordKind(StandingQuerySpec::Kind kind) {
  return kind == StandingQuerySpec::Kind::kFlowList ||
         kind == StandingQuerySpec::Kind::kCountSummary;
}

// `allow_empty` is true for kSnapshot frames: a snapshot of "nothing
// yet" is a legal baseline, while an ordinary delta of nothing is a
// protocol violation (empty epochs never ship).
WireError DecodeQueryDeltaPayload(Cursor c, DecodedFrame* out, bool allow_empty) {
  QueryDelta& d = out->delta;
  uint8_t kind, pad;
  if (!c.GetU64(&d.subscription_id) || !c.GetU32(&d.host) || !c.GetU8(&kind)) {
    return WireError::kBadPayload;
  }
  for (int i = 0; i < 3; ++i) {
    if (!c.GetU8(&pad)) return WireError::kBadPayload;
  }
  if (!c.GetU64(&d.epoch)) return WireError::kBadPayload;
  if (!ValidKind(kind)) return WireError::kBadPayload;
  d.kind = StandingQuerySpec::Kind(kind);
  if (IsRecordKind(d.kind)) {
    // Record items: 8 id + 13 tuple + 8 bytes + 4 pkts + 1 len + 4·len.
    while (c.left > 0) {
      RecordDeltaItem item;
      uint8_t len;
      if (!c.GetU64(&item.id) || !c.GetTuple(&item.flow) || !c.GetU64(&item.bytes) ||
          !c.GetU32(&item.pkts) || !c.GetU8(&len)) {
        return WireError::kBadPayload;
      }
      if (len > CompactPath::kMaxSwitches) return WireError::kBadPayload;
      item.path.resize(len);
      for (uint8_t i = 0; i < len; ++i) {
        if (!c.GetU32(&item.path[i])) return WireError::kBadPayload;
      }
      d.records.items.push_back(std::move(item));
    }
    if (d.records.items.empty() && !allow_empty) {
      return WireError::kBadPayload;  // empty epochs never ship
    }
  } else {
    // Flow items: fixed 21 bytes each, so the remainder must divide.
    if ((c.left == 0 && !allow_empty) || c.left % 21 != 0) return WireError::kBadPayload;
    d.payload.items.reserve(c.left / 21);
    while (c.left > 0) {
      FiveTuple flow;
      uint64_t bytes;
      if (!c.GetTuple(&flow) || !c.GetU64(&bytes)) return WireError::kBadPayload;
      d.payload.items.emplace_back(flow, bytes);
    }
  }
  return WireError::kOk;
}

WireError DecodeAlarmPayload(Cursor c, DecodedFrame* out) {
  Alarm& a = out->alarm;
  uint8_t reason;
  uint16_t path_count;
  if (!c.GetU32(&a.host) || !c.GetTuple(&a.flow) || !c.GetU8(&reason) ||
      !c.GetU16(&path_count) || !c.GetI64(&a.at)) {
    return WireError::kBadPayload;
  }
  if (reason > uint8_t(AlarmReason::kNoProgress)) return WireError::kBadPayload;
  a.reason = AlarmReason(reason);
  a.paths.resize(path_count);
  for (uint16_t i = 0; i < path_count; ++i) {
    uint8_t len;
    if (!c.GetU8(&len)) return WireError::kBadPayload;
    if (len > CompactPath::kMaxSwitches) return WireError::kBadPayload;
    a.paths[i].resize(len);
    for (uint8_t j = 0; j < len; ++j) {
      if (!c.GetU32(&a.paths[i][j])) return WireError::kBadPayload;
    }
  }
  if (c.left != 0) return WireError::kBadPayload;
  return WireError::kOk;
}

WireError DecodeSubscribePayload(Cursor c, DecodedFrame* out) {
  uint8_t kind, pad;
  uint64_t k;
  if (!c.GetU64(&out->subscription_id) || !c.GetU8(&kind)) return WireError::kBadPayload;
  for (int i = 0; i < 3; ++i) {
    if (!c.GetU8(&pad)) return WireError::kBadPayload;
  }
  if (!ValidKind(kind)) return WireError::kBadPayload;
  out->spec.kind = StandingQuerySpec::Kind(kind);
  if (!c.GetU32(&out->spec.link.src) || !c.GetU32(&out->spec.link.dst) || !c.GetU64(&k) ||
      !c.GetI64(&out->spec.bin_width) || !c.GetI64(&out->spec.range.begin) ||
      !c.GetI64(&out->spec.range.end)) {
    return WireError::kBadPayload;
  }
  out->spec.k = size_t(k);
  if (c.left != 0) return WireError::kBadPayload;
  return WireError::kOk;
}

}  // namespace

const char* WireErrorName(WireError err) {
  switch (err) {
    case WireError::kOk:
      return "ok";
    case WireError::kTruncated:
      return "truncated";
    case WireError::kBadMagic:
      return "bad-magic";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadChecksum:
      return "bad-checksum";
    case WireError::kBadPayload:
      return "bad-payload";
  }
  return "unknown";
}

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  // IEEE CRC-32, reflected, table-driven.  `seed` is a previous return
  // value, so checksums compose by continuation.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

// Shared payload body of kQueryDelta and kSnapshot — the frame type
// alone distinguishes an increment from a full baseline.
size_t EncodeDeltaShapedFrame(FrameType type, const QueryDelta& delta,
                              std::vector<uint8_t>& out) {
  static Counter* frames = MetricsRegistry::Global().GetCounter("wire.frames_encoded");
  static Counter* bytes = MetricsRegistry::Global().GetCounter("wire.bytes_encoded");
  TraceScope span("wire.encode",
                  TraceKeys{delta.subscription_id, delta.host, delta.epoch});
  const size_t start = BeginFrame(out, type);
  // The 24-byte framing QueryDelta::SerializedSize charges: 8 + 4 + 8
  // padded to 24 — the pad carries the payload kind, so a decoder never
  // guesses the shape from content.
  PutU64(out, delta.subscription_id);
  PutU32(out, delta.host);
  PutU8(out, uint8_t(delta.kind));
  PutU8(out, 0);
  PutU8(out, 0);
  PutU8(out, 0);
  PutU64(out, delta.epoch);
  if (IsRecordKind(delta.kind)) {
    for (const RecordDeltaItem& item : delta.records.items) {
      PutU64(out, item.id);
      PutTuple(out, item.flow);
      PutU64(out, item.bytes);
      PutU32(out, item.pkts);
      PutU8(out, uint8_t(item.path.size()));
      for (SwitchId sw : item.path) {
        PutU32(out, sw);
      }
    }
  } else {
    for (const auto& [flow, flow_bytes] : delta.payload.items) {
      PutTuple(out, flow);
      PutU64(out, flow_bytes);
    }
  }
  const size_t total = FinishFrame(out, start);
  frames->Add();
  bytes->Add(total);
  return total;
}

}  // namespace

size_t EncodeQueryDeltaFrame(const QueryDelta& delta, std::vector<uint8_t>& out) {
  return EncodeDeltaShapedFrame(FrameType::kQueryDelta, delta, out);
}

size_t EncodeSnapshotFrame(const QueryDelta& delta, std::vector<uint8_t>& out) {
  return EncodeDeltaShapedFrame(FrameType::kSnapshot, delta, out);
}

size_t EncodeAlarmFrame(const Alarm& alarm, std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kAlarm);
  PutU32(out, alarm.host);
  PutTuple(out, alarm.flow);
  PutU8(out, uint8_t(alarm.reason));
  PutU16(out, uint16_t(alarm.paths.size()));
  PutI64(out, alarm.at);
  for (const Path& p : alarm.paths) {
    PutU8(out, uint8_t(p.size()));
    for (SwitchId sw : p) {
      PutU32(out, sw);
    }
  }
  return FinishFrame(out, start);
}

size_t AlarmWireBytes(const Alarm& alarm) {
  size_t n = kFrameHeaderBytes + 4 + 13 + 1 + 2 + 8;
  for (const Path& p : alarm.paths) {
    n += 1 + 4 * p.size();
  }
  return n;
}

size_t EncodeHelloFrame(HostId host, uint32_t pid, uint32_t incarnation,
                        std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kHello);
  PutU32(out, host);
  PutU32(out, pid);
  PutU32(out, incarnation);
  return FinishFrame(out, start);
}

size_t EncodeSubscribeFrame(uint64_t subscription_id, const StandingQuerySpec& spec,
                            std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kSubscribe);
  PutU64(out, subscription_id);
  PutU8(out, uint8_t(spec.kind));
  PutU8(out, 0);
  PutU8(out, 0);
  PutU8(out, 0);
  PutU32(out, spec.link.src);
  PutU32(out, spec.link.dst);
  PutU64(out, uint64_t(spec.k));
  PutI64(out, spec.bin_width);
  PutI64(out, spec.range.begin);
  PutI64(out, spec.range.end);
  return FinishFrame(out, start);
}

size_t EncodeEpochTickFrame(uint64_t token, std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kEpochTick);
  PutU64(out, token);
  return FinishFrame(out, start);
}

size_t EncodeAckFrame(HostId host, uint64_t token, std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kAck);
  PutU32(out, host);
  PutU32(out, 0);
  PutU64(out, token);
  return FinishFrame(out, start);
}

size_t EncodeIngestFrame(uint32_t count, uint32_t seed, uint32_t ip_space, uint32_t switch_space,
                         std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kIngest);
  PutU32(out, count);
  PutU32(out, seed);
  PutU32(out, ip_space);
  PutU32(out, switch_space);
  return FinishFrame(out, start);
}

size_t EncodeShutdownFrame(std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kShutdown);
  return FinishFrame(out, start);
}

size_t EncodeByeFrame(HostId host, std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kBye);
  PutU32(out, host);
  return FinishFrame(out, start);
}

size_t EncodeResyncRequestFrame(uint64_t subscription_id, std::vector<uint8_t>& out) {
  const size_t start = BeginFrame(out, FrameType::kResyncRequest);
  PutU64(out, subscription_id);
  return FinishFrame(out, start);
}

WireError DecodeFrame(const uint8_t* data, size_t size, DecodedFrame* out) {
  if (size < kFrameHeaderBytes) return WireError::kTruncated;
  Cursor h{data, kFrameHeaderBytes};
  uint32_t magic, payload_len, stored_crc;
  uint8_t version, type;
  uint16_t reserved;
  h.GetU32(&magic);
  h.GetU8(&version);
  h.GetU8(&type);
  h.GetU16(&reserved);
  h.GetU32(&payload_len);
  h.GetU32(&stored_crc);
  if (magic != kFrameMagic) return WireError::kBadMagic;
  if (version != kWireVersion) return WireError::kBadVersion;
  if (payload_len > kMaxFramePayload) return WireError::kOversized;
  if (kFrameHeaderBytes + payload_len > size) return WireError::kTruncated;
  if (kFrameHeaderBytes + payload_len < size) return WireError::kOversized;
  // Recompute over a zero-crc copy of the header, continued over the
  // payload in place.
  uint8_t hdr[kFrameHeaderBytes];
  std::memcpy(hdr, data, kFrameHeaderBytes);
  hdr[12] = hdr[13] = hdr[14] = hdr[15] = 0;
  uint32_t crc = Crc32(hdr, kFrameHeaderBytes);
  crc = Crc32(data + kFrameHeaderBytes, payload_len, crc);
  if (crc != stored_crc) return WireError::kBadChecksum;
  if (type < uint8_t(FrameType::kHello) || type > uint8_t(FrameType::kSnapshot)) {
    return WireError::kBadType;
  }
  *out = DecodedFrame{};
  out->type = FrameType(type);
  Cursor c{data + kFrameHeaderBytes, payload_len};
  switch (out->type) {
    case FrameType::kQueryDelta:
      return DecodeQueryDeltaPayload(c, out, /*allow_empty=*/false);
    case FrameType::kSnapshot: {
      const WireError err = DecodeQueryDeltaPayload(c, out, /*allow_empty=*/true);
      out->delta.snapshot = true;
      return err;
    }
    case FrameType::kAlarm:
      return DecodeAlarmPayload(c, out);
    case FrameType::kSubscribe:
      return DecodeSubscribePayload(c, out);
    case FrameType::kResyncRequest:
      if (!c.GetU64(&out->subscription_id) || c.left != 0) return WireError::kBadPayload;
      return WireError::kOk;
    case FrameType::kHello:
      if (!c.GetU32(&out->host) || !c.GetU32(&out->pid) || !c.GetU32(&out->incarnation) ||
          c.left != 0) {
        return WireError::kBadPayload;
      }
      return WireError::kOk;
    case FrameType::kEpochTick:
      if (!c.GetU64(&out->token) || c.left != 0) return WireError::kBadPayload;
      return WireError::kOk;
    case FrameType::kAck: {
      uint32_t pad;
      if (!c.GetU32(&out->host) || !c.GetU32(&pad) || !c.GetU64(&out->token) || c.left != 0) {
        return WireError::kBadPayload;
      }
      return WireError::kOk;
    }
    case FrameType::kIngest:
      if (!c.GetU32(&out->ingest_count) || !c.GetU32(&out->ingest_seed) ||
          !c.GetU32(&out->ingest_ip_space) || !c.GetU32(&out->ingest_switch_space) ||
          c.left != 0) {
        return WireError::kBadPayload;
      }
      return WireError::kOk;
    case FrameType::kShutdown:
      if (c.left != 0) return WireError::kBadPayload;
      return WireError::kOk;
    case FrameType::kBye:
      if (!c.GetU32(&out->host) || c.left != 0) return WireError::kBadPayload;
      return WireError::kOk;
  }
  return WireError::kBadType;
}

}  // namespace transport
}  // namespace pathdump
