// Deterministic transport fault injection.
//
// Installed in ShmAgentClient's send path (transport.cc), a FaultInjector
// perturbs DATA-PLANE frames (kQueryDelta / kAlarm) before they reach the
// ring, exercising exactly the recovery machinery the crash/resync
// protocol exists for:
//
//   drop    — the frame is not pushed but its ring sequence number IS
//             consumed, so the consumer sees a seq gap (the signature of
//             real upstream loss) and the hub triggers a resync.
//   corrupt — one payload bit is flipped post-encode; the frame CRC
//             catches it at the reactor (bad_checksum) with no seq gap,
//             exercising the manager's epoch-gap resync threshold.
//   delay   — the frame is stashed and released after the NEXT data
//             frame, producing genuine reordering (and, at stream end,
//             lateness past a snapshot — a pre-snapshot straggler).
//   dup     — the frame is pushed twice; the second fold is a duplicate
//             epoch the manager counts orphaned.
//
// Faults never touch control/handshake frames (Hello/Ack/Bye) or
// kSnapshot recovery traffic: the injector models a lossy data path, and
// exempting the recovery channel keeps every chaos run convergent — a
// dropped snapshot would wedge a stream with no further signal to
// re-trigger it.  Each fault increments fault.injected_{drop,corrupt,
// delay,dup}; the seeded PCG32 stream makes a run exactly reproducible.
//
// Configuration: explicit (tests) or from the environment (agent_worker):
//   PATHDUMP_FAULT_SEED     u64 seed (default 1)
//   PATHDUMP_FAULT_DROP     per-10,000 data frames dropped
//   PATHDUMP_FAULT_CORRUPT  per-10,000 corrupted
//   PATHDUMP_FAULT_DELAY    per-10,000 delayed one frame
//   PATHDUMP_FAULT_DUP      per-10,000 duplicated
// Rates are cumulative thresholds over one draw per frame, so a frame
// suffers at most one fault and the rates must sum to <= 10,000.

#ifndef PATHDUMP_SRC_TRANSPORT_FAULT_INJECTOR_H_
#define PATHDUMP_SRC_TRANSPORT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace pathdump {
namespace transport {

struct FaultInjectorConfig {
  uint64_t seed = 1;
  // Per-10,000 rates, mutually exclusive per frame (one draw decides).
  uint32_t drop_per_10k = 0;
  uint32_t corrupt_per_10k = 0;
  uint32_t delay_per_10k = 0;
  uint32_t dup_per_10k = 0;

  bool any() const {
    return drop_per_10k + corrupt_per_10k + delay_per_10k + dup_per_10k > 0;
  }

  // Reads the PATHDUMP_FAULT_* variables; all-zero when unset.
  static FaultInjectorConfig FromEnv();
};

class FaultInjector {
 public:
  enum class Action : uint8_t { kNone = 0, kDrop, kCorrupt, kDelay, kDup };

  explicit FaultInjector(const FaultInjectorConfig& config);

  // One draw for one data-plane frame.  Counts the chosen fault in the
  // metrics registry and in counts().
  Action Next();

  // Flips one pseudo-random bit of the frame's payload (never the first
  // 16 header bytes' magic word — any payload flip already fails the
  // CRC, and keeping the magic intact lands the error in the
  // bad_checksum category deterministically).
  void Corrupt(std::vector<uint8_t>& frame);

  struct Counts {
    uint64_t dropped = 0;
    uint64_t corrupted = 0;
    uint64_t delayed = 0;
    uint64_t duplicated = 0;
    uint64_t total() const { return dropped + corrupted + delayed + duplicated; }
  };
  const Counts& counts() const { return counts_; }

 private:
  const FaultInjectorConfig config_;
  Rng rng_;
  Counts counts_;
};

}  // namespace transport
}  // namespace pathdump

#endif  // PATHDUMP_SRC_TRANSPORT_FAULT_INJECTOR_H_
