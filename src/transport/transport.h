// Agent ↔ controller transport: shared-memory rings behind the existing
// subscription and alarm intake paths.
//
// Two selectable backends (TransportOptions::backend):
//
//  * kInProcess — today's path, unchanged: agents live in the
//    controller's process, deltas/alarms are delivered by direct
//    function call (SubscriptionManager::Subscribe attachments, the
//    controller's alarm sink).  The hub is a thin adapter so fixtures
//    can drive either backend through one API.
//  * kSharedMemory — every agent is its own process (or thread) mapping
//    a named ShmSegment (src/transport/shm_ring.h).  The agent encodes
//    frames (src/transport/wire.h) into its data ring; a single
//    controller-side reactor thread drains all peer rings, decodes, and
//    feeds the SAME consumers the in-process path uses —
//    SubscriptionManager::SubmitDelta and Controller::MakeAlarmSink —
//    so folding, ordering, suppression, and materialization are shared
//    code across backends, and the determinism matrix runs unchanged
//    over both.
//
// Reactor lock hierarchy (narrow by design):
//   peers_mu_   — guards the peer list only; taken briefly by AddShmPeer
//                 and by the reactor to snapshot peer pointers (peers are
//                 never destroyed before the reactor joins, so the
//                 snapshot outlives the lock).
//   Ring operations are lock-free; SubmitDelta and the alarm sink take
//   their own downstream locks strictly after all transport state is
//   released.  No lock is ever held across a blocking ring wait, so a
//   full downstream queue can never deadlock the reactor against a
//   producer.
//
// Crash semantics: a peer that dies (SIGKILL included) leaves only
// fully-published frames in its ring — the producer publishes with one
// release store after the copy completes, so the reactor can never read
// a torn frame.  The reactor drains what remains, then detects the dead
// pid (kill(pid, 0) == ESRCH), counts it in TransportStats::peers_dead,
// and excuses the peer from WaitForAcks — surviving peers keep folding
// with no deadlock.  Sequence gaps (a restarted or lossy producer) are
// counted per ring, never waited on.
//
// Crash RECOVERY (see docs/ARCHITECTURE.md "Crash recovery & resync"):
//
//             Hello                    RestartPeer
//   kConnecting ──▶ kLive ──(pid gone)──▶ kDead ──▶ kRejoining
//                     ▲                                │    │
//                     └──────── rejoin Hello ──────────┘    └─(deadline)─▶ kGaveUp
//
//  * RestartPeer(host) retires the dead peer's segment (its consumer
//    counters fold into retired totals so stats stay cumulative) and
//    creates a fresh one, named with the next incarnation number.
//  * The restarted agent says Hello carrying its incarnation; the
//    reactor recognizes the rejoin (kRejoining state, or an incarnation
//    change on a live segment), revives the peer, re-sends Subscribe
//    frames for every covering subscription, then ships ResyncRequest
//    frames — the agent answers each with a full-baseline Snapshot that
//    the SubscriptionManager folds as the stream's new baseline.
//  * Loss without death (seq gap on the data ring, or a frame that
//    fails CRC) marks the affected streams stale and requests the same
//    snapshot resync, rate-limited to one request per stale episode.
//  * A FaultInjector (src/transport/fault_injector.h) can be installed
//    on the client's data-plane sends to exercise all of the above
//    deterministically: drop/corrupt/delay/duplicate, seeded.

#ifndef PATHDUMP_SRC_TRANSPORT_TRANSPORT_H_
#define PATHDUMP_SRC_TRANSPORT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/edge/alarm.h"
#include "src/edge/edge_agent.h"
#include "src/edge/standing_query.h"
#include "src/transport/fault_injector.h"
#include "src/transport/shm_ring.h"
#include "src/transport/wire.h"

namespace pathdump {

class Controller;
class SubscriptionManager;

namespace transport {

struct TransportOptions {
  enum class Backend : uint8_t {
    kInProcess = 0,
    kSharedMemory = 1,
  };

  Backend backend = Backend::kInProcess;
  // Shared-memory segment name prefix; "" means "/pathdump.<pid>."
  // (pid-scoped so a crashed earlier run can never collide).
  std::string shm_prefix;
  ShmSegment::Geometry geometry;
  // How long a blocking ring push may wait for space before failing.
  int64_t push_timeout_us = 5'000'000;
  // How long a restarted peer may sit in kRejoining before the hub
  // declares it kGaveUp (excused from everything, counted in stats).
  int64_t rejoin_timeout_us = 10'000'000;
  // Startup sweep: reclaim /dev/shm segments left behind by SIGKILLed
  // earlier runs (only segments whose recorded controller pid is
  // provably dead are touched — safe under parallel suites).
  bool sweep_stale_shm_on_start = true;
};

// Peer lifecycle (shm backend).  kDead/kGaveUp peers are excused from
// WaitForAcks/WaitForHellos; kRejoining is the window between
// RestartPeer and the restarted agent's Hello.
enum class PeerState : uint8_t {
  kConnecting = 0,  // segment created, no Hello yet
  kLive = 1,
  kDead = 2,      // pid gone (or ring poisoned) without a Bye
  kRejoining = 3, // fresh segment up, waiting for the new incarnation's Hello
  kGaveUp = 4,    // rejoin deadline passed; terminal
};
const char* PeerStateName(PeerState s);

// Cumulative since hub construction.  Decode error counters map 1:1 to
// WireError categories — every rejected frame is counted, never dropped
// silently.
struct TransportStats {
  uint64_t frames = 0;  // successfully decoded
  uint64_t bytes = 0;   // ring payload bytes consumed (all frames)
  uint64_t deltas = 0;
  uint64_t alarms = 0;
  uint64_t acks = 0;
  uint64_t decode_errors = 0;  // sum of the categories below
  uint64_t truncated = 0;
  uint64_t bad_magic = 0;
  uint64_t bad_version = 0;
  uint64_t bad_type = 0;
  uint64_t oversized = 0;
  uint64_t bad_checksum = 0;
  uint64_t bad_payload = 0;
  uint64_t seq_gaps = 0;        // messages missing, summed over peer rings
                                // (retired segments included)
  uint64_t blocked_pushes = 0;  // agent-side full-ring waits, summed
  uint64_t peers = 0;
  uint64_t peers_hello = 0;  // peers that completed the Hello handshake
  uint64_t peers_bye = 0;    // graceful goodbyes
  uint64_t peers_dead = 0;   // detected dead without a Bye
  // Crash recovery.
  uint64_t peers_rejoining = 0;      // currently in kRejoining (gauge)
  uint64_t peers_rejoined = 0;       // completed rejoin handshakes, cumulative
  uint64_t peers_gave_up = 0;        // rejoin deadline expiries, cumulative
  uint64_t resync_requests = 0;      // ResyncRequest frames shipped
  uint64_t snapshots = 0;            // Snapshot frames received
  uint64_t stale_shm_reclaimed = 0;  // startup-sweep unlinks
};

// Controller-side hub.  One instance owns all peer segments and (for the
// shm backend) the reactor thread.
class TransportHub {
 public:
  TransportHub(Controller* controller, SubscriptionManager* manager,
               TransportOptions options = {});
  // Stops the reactor and unlinks every owned segment.
  ~TransportHub();

  TransportHub(const TransportHub&) = delete;
  TransportHub& operator=(const TransportHub&) = delete;

  TransportOptions::Backend backend() const { return options_.backend; }

  // --- Peer management ---

  // Shared-memory backend: creates the segment for `host` and returns
  // its shm name (pass to the agent process / ShmAgentClient::Open).
  // Empty string on failure or on the in-process backend.
  std::string AddShmPeer(HostId host);
  // In-process backend: registers a live agent with the controller and
  // tracks its host so Subscribe()/hosts() work identically.
  void AddLocalAgent(EdgeAgent* agent);

  // Hosts added so far, in add order (both backends).
  std::vector<HostId> hosts() const;

  // --- Control plane (backend-dispatched) ---

  // Installs the standing query on every listed host.  In-process:
  // SubscriptionManager::Subscribe.  Shm: SubscribeRemote + a Subscribe
  // frame broadcast on each peer's command ring.
  uint64_t Subscribe(const std::vector<HostId>& hosts, const StandingQuerySpec& spec);

  // Epoch boundary.  In-process: ticks synchronously (TickEpoch) and the
  // returned token is already satisfied.  Shm: broadcasts an EpochTick
  // frame; agents tick and ack with the token — pair with WaitForAcks
  // before asserting on materialized state.
  uint64_t SendEpochTick();

  // Test/bench harness: ask every agent to insert `count` synthetic
  // records from `seed` (see EncodeIngestFrame).  In-process mode
  // delegates to the callback installed with SetLocalIngest.
  void SendIngest(uint32_t count, uint32_t seed, uint32_t ip_space, uint32_t switch_space);
  // In-process twin of the Ingest frame, installed by the fixture (the
  // hub cannot synthesize records itself — generation lives in test
  // utilities).  Called inline from SendIngest.
  void SetLocalIngest(
      std::function<void(uint32_t count, uint32_t seed, uint32_t ip_space, uint32_t switch_space)>
          fn);

  // Asks every live shm peer to drain and exit (no-op in-process).
  void SendShutdown();

  // --- Synchronization ---

  // True once every shm peer has said Hello (trivially true in-process).
  bool WaitForHellos(int64_t timeout_us);
  // True once every peer has acked `token`, where dead and departed
  // peers are excused — a SIGKILLed agent never wedges the epoch.
  // False only on timeout with a live, silent peer.
  bool WaitForAcks(uint64_t token, int64_t timeout_us);
  // Blocks until every published frame has been drained and dispatched,
  // then flushes the subscription channel — after this, Materialize
  // reflects everything the agents sent.
  void Flush();

  TransportStats stats() const;
  // Hosts detected dead (no Bye), in detection order.
  std::vector<HostId> dead_hosts() const;
  PeerState peer_state(HostId host) const;

  // --- Crash recovery ---

  // Retires a dead (or departed) peer's segment and creates a fresh one
  // under the next incarnation number.  Returns the new segment name to
  // hand the restarted agent (which must Hello with that incarnation),
  // or "" if the peer is unknown or still live.  The peer enters
  // kRejoining until the Hello lands (kGaveUp past the rejoin timeout).
  std::string RestartPeer(HostId host);
  // The incarnation RestartPeer assigned most recently (0 = original).
  uint32_t peer_incarnation(HostId host) const;
  // True once `host` is back in kLive (Hello processed, resyncs sent).
  bool WaitForPeerLive(HostId host, int64_t timeout_us);
  // Ships one ResyncRequest frame to `host` for subscription `id` (the
  // agent answers with a Snapshot).  Wired into the manager's
  // ResyncRequester so gap-threshold staleness self-heals.
  void RequestResync(uint64_t id, HostId host);

 private:
  struct Peer {
    HostId host = kInvalidNode;
    // Swapped by RestartPeer under peers_mu_; every user copies the
    // shared_ptr first (SegmentOf) so a retired segment stays mapped
    // until its last reader drops it.
    std::shared_ptr<ShmSegment> segment;
    std::atomic<uint32_t> pid{0};         // learned from Hello
    std::atomic<uint32_t> incarnation{0}; // learned from Hello / RestartPeer
    std::atomic<uint64_t> last_ack{0};    // highest token acked
    std::atomic<bool> hello{false};
    std::atomic<bool> bye{false};
    std::atomic<bool> dead{false};
    std::atomic<PeerState> state{PeerState::kConnecting};
    std::atomic<int64_t> rejoin_deadline_us{0};
    // Reactor-local resync trigger edge detectors (reactor thread only).
    uint64_t seen_seq_gaps = 0;
    uint64_t data_decode_errors = 0;  // reactor-written cumulative
  };

  void ReactorLoop();
  // Drains one peer's data ring; returns frames dispatched.  Decode
  // errors on the ring are counted into peer.data_decode_errors so the
  // caller can trigger a resync on new corruption.
  size_t DrainPeer(Peer& peer, ShmSegment& segment, std::vector<uint8_t>& buf);
  void Dispatch(Peer& peer, DecodedFrame&& frame);
  void CountError(WireError err);
  // Snapshot of peer pointers (stable: peers_ is an append-only deque).
  std::vector<Peer*> SnapshotPeers() const;
  // Copies the peer's current segment pointer under peers_mu_.
  std::shared_ptr<ShmSegment> SegmentOf(const Peer& peer) const;
  void BroadcastCommand(const std::vector<uint8_t>& frame);
  // Serialized push onto one peer's command ring (cmd_mu_): the reactor
  // (rejoin/resync) and API threads (Broadcast) share the producer side.
  bool PushCommand(ShmSegment& segment, const std::vector<uint8_t>& frame);
  // Rejoin completion: re-Subscribe + ResyncRequest for every covering
  // subscription, in that order (the cmd ring is FIFO, so the agent
  // re-registers its accumulators before any snapshot is taken).
  void OnPeerRejoined(Peer& peer);
  // Marks every subscription covering `peer.host` stale and ships a
  // ResyncRequest for the ones newly marked (rate limit: one request
  // per stale episode).
  void RequestResyncAll(Peer& peer);
  const Peer* FindPeer(HostId host) const;

  Controller* const controller_;
  SubscriptionManager* const manager_;
  const TransportOptions options_;
  const std::string prefix_;
  AlarmHandler alarm_sink_;
  std::function<void(uint32_t, uint32_t, uint32_t, uint32_t)> local_ingest_;

  mutable std::mutex peers_mu_;  // guards peers_ growth + segment swaps
  std::deque<Peer> peers_;       // append-only; stable addresses

  // Subscriptions installed through Subscribe(), kept so a rejoining
  // peer can be re-subscribed and resynced.
  struct SubRecord {
    uint64_t id = 0;
    StandingQuerySpec spec;
    std::vector<HostId> hosts;
  };
  mutable std::mutex subs_mu_;
  std::vector<SubRecord> subs_;

  std::mutex cmd_mu_;  // serializes all command-ring pushes

  std::atomic<uint64_t> next_token_{0};
  std::atomic<bool> stop_{false};
  // True while the reactor is between popping a frame and finishing its
  // dispatch — Flush spins past this so "rings empty" implies
  // "everything dispatched".
  std::atomic<bool> dispatching_{false};

  // Decode/dispatch counters (reactor-written, stats()-read).
  std::atomic<uint64_t> frames_{0}, bytes_{0}, deltas_{0}, alarms_{0}, acks_{0};
  std::atomic<uint64_t> err_by_kind_[8] = {};
  // Recovery counters.
  std::atomic<uint64_t> peers_rejoined_{0}, peers_gave_up_{0};
  std::atomic<uint64_t> resync_requests_{0}, snapshots_{0};
  std::atomic<uint64_t> stale_shm_reclaimed_{0};
  // Consumer-side counters of segments retired by RestartPeer, folded in
  // so stats() stays cumulative across incarnations.
  std::atomic<uint64_t> retired_seq_gaps_{0}, retired_blocked_pushes_{0};

  std::thread reactor_;  // last member: joins before state above dies
};

// Agent-process side of one shm channel pair.  Single-threaded use per
// ring direction is the contract; the internal send mutex only
// serializes an agent's own delta/alarm sinks against each other.
class ShmAgentClient {
 public:
  // Maps the named segment; null if absent or malformed.
  static std::unique_ptr<ShmAgentClient> Open(const std::string& name,
                                              int64_t push_timeout_us = 5'000'000);
  // Bounded connect: retries Open with exponential backoff (1 ms
  // doubling to 100 ms) until `total_timeout_us` elapses.  Restarted
  // agents use this — the hub may still be creating their segment.
  static std::unique_ptr<ShmAgentClient> OpenWithBackoff(const std::string& name,
                                                         int64_t total_timeout_us,
                                                         int64_t push_timeout_us = 5'000'000);

  // Installs a data-plane fault injector (chaos/testing): QueryDelta and
  // Alarm frames may be dropped, corrupted, delayed (reordered), or
  // duplicated per its seeded config.  Snapshot and control frames are
  // never faulted — recovery traffic must converge.
  void SetFaultInjector(const FaultInjectorConfig& config);
  FaultInjector::Counts fault_counts() const;

  // --- Sends (agent → controller data ring) ---
  // Also records getpid() in the segment header.  `incarnation` echoes
  // the number embedded in a RestartPeer segment name (0 for the first
  // life) so the hub can tell a rejoin from a duplicate Hello.
  bool SendHello(HostId host, uint32_t incarnation = 0);
  bool SendDelta(const QueryDelta& delta);  // routes snapshots to kSnapshot frames
  bool SendAlarm(const Alarm& alarm);
  bool SendAck(HostId host, uint64_t token);
  bool SendBye(HostId host);

  // Terminal give-up latch: set after a bounded data-ring push timed out
  // (controller gone or wedged).  All later sends fail fast.
  bool gave_up() const { return gave_up_.load(std::memory_order_acquire); }

  // --- Commands (controller → agent cmd ring) ---
  // Pops one command frame, waiting up to `timeout_us`.  False if none
  // arrived.  Malformed command frames are counted and skipped.
  bool PollCommand(DecodedFrame* out, int64_t timeout_us);
  uint64_t command_decode_errors() const { return cmd_decode_errors_; }

  // Sinks wiring an EdgeAgent's outputs onto the data ring.
  EdgeAgent::DeltaSink MakeDeltaSink();
  AlarmHandler MakeAlarmSink();

  ShmSegment& segment() { return *segment_; }

 private:
  explicit ShmAgentClient(std::unique_ptr<ShmSegment> segment, int64_t push_timeout_us)
      : segment_(std::move(segment)), push_timeout_us_(push_timeout_us) {}

  // All Push* helpers run under send_mu_ with the frame in scratch_.
  bool PushFrame();          // verbatim; flushes a delayed frame first
  bool PushDataFrame();      // fault-injected path (deltas/alarms)
  bool PushRaw(const std::vector<uint8_t>& frame);
  void ReleaseDelayedLocked();

  std::unique_ptr<ShmSegment> segment_;
  const int64_t push_timeout_us_;
  mutable std::mutex send_mu_;
  std::vector<uint8_t> scratch_;  // guarded by send_mu_
  std::unique_ptr<FaultInjector> injector_;  // guarded by send_mu_
  std::vector<uint8_t> delayed_;             // stashed frame (kDelay); send_mu_
  std::atomic<bool> gave_up_{false};
  uint64_t cmd_decode_errors_ = 0;
};

}  // namespace transport
}  // namespace pathdump

#endif  // PATHDUMP_SRC_TRANSPORT_TRANSPORT_H_
