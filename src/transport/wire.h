// Real byte framing for the agent ↔ controller transport.
//
// Until this layer existed, QueryDelta/RecordDelta/QueryResult carried
// *size accounting only* (SerializedSize() returns what the bytes would
// cost; nothing ever produced the bytes) — fine while every agent lived
// in the controller's process, useless the moment a delta must cross a
// shared-memory ring between processes.  This header supplies the real
// encoders/decoders, with one invariant that keeps the repo's byte
// accounting honest: for a QueryDelta, the encoded frame is exactly
// QueryDelta::SerializedSize() bytes — the 16-byte frame header below IS
// the "16-byte message header" the size model already charges, and the
// 24-byte subscription/host/epoch framing and per-item layouts match the
// model field for field (packed 13-byte 5-tuple, 21-byte flow items,
// 33+1+4·len record items).  The modeled wire cost becomes the measured
// wire cost.
//
// Frame layout (little-endian, fixed offsets):
//
//   0  u32  magic       'PDTP'
//   4  u8   version
//   5  u8   type        FrameType
//   6  u16  reserved    (zero; covered by the checksum)
//   8  u32  payload_len bytes after the 16-byte header
//   12 u32  crc32       IEEE CRC-32 over the header (crc field zeroed)
//                       and the payload — any single bit flip anywhere
//                       in the frame is detected
//   16 ...  payload     per-type layout (see wire.cc)
//
// Decoding is total: any truncated, oversized, bit-flipped, or
// semantically invalid frame yields a WireError (never a crash, never a
// silently wrong object).  The transport reactor counts each category
// (TransportStats); tests/query_serialization_test.cc fuzzes random
// corruption offsets against this contract.

#ifndef PATHDUMP_SRC_TRANSPORT_WIRE_H_
#define PATHDUMP_SRC_TRANSPORT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/edge/alarm.h"
#include "src/edge/standing_query.h"

namespace pathdump {
namespace transport {

inline constexpr uint32_t kFrameMagic = 0x50445450u;  // 'PDTP'
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
// Upper bound on a frame payload: larger declared lengths are rejected
// before any allocation, so a corrupt length can never OOM the reactor.
inline constexpr size_t kMaxFramePayload = 64u << 20;

// Everything that crosses a ring.  Data plane: kQueryDelta / kAlarm
// (agent → controller).  Control plane (controller → agent) plus the
// handshake frames the multi-process harness uses.
enum class FrameType : uint8_t {
  kHello = 1,       // agent announces (host, pid) after mapping its rings
  kQueryDelta = 2,  // one epoch increment (either payload shape)
  kAlarm = 3,       // one Alarm
  kSubscribe = 4,   // install a standing query: (subscription id, spec)
  kEpochTick = 5,   // tick every standing query, then ack with the token
  kAck = 6,         // agent acked (host, token)
  kIngest = 7,      // test harness: insert synthetic records; agents
                    // derive their stream as (seed + host) so one
                    // broadcast yields distinct reproducible TIBs

  kShutdown = 8,    // drain and exit
  kBye = 9,         // agent's graceful goodbye

  // Crash-recovery pair.  kResyncRequest (controller → agent) asks one
  // subscription for a full re-baseline; the agent answers with a
  // kSnapshot (agent → controller): a QueryDelta-shaped frame carrying
  // the FULL standing state at an epoch boundary.  Unlike kQueryDelta an
  // empty kSnapshot payload is legal — "nothing yet" is a valid
  // baseline after a restart.
  kResyncRequest = 10,
  kSnapshot = 11,
};

enum class WireError : uint8_t {
  kOk = 0,
  kTruncated,    // buffer ends before the declared frame does
  kBadMagic,     // not a frame at all
  kBadVersion,   // incompatible framing
  kBadType,      // unknown FrameType
  kOversized,    // declared length exceeds the cap, or trailing junk
  kBadChecksum,  // CRC mismatch (bit corruption)
  kBadPayload,   // per-type layout violated (counts, path lengths, ...)
};

const char* WireErrorName(WireError err);

// IEEE CRC-32 (the zlib polynomial), table-driven.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

// --- Encoders ---
//
// Each appends exactly one complete frame to `out` and returns the
// frame's total size in bytes.  EncodeQueryDeltaFrame's return value
// equals delta.SerializedSize() by construction (asserted in tests).

size_t EncodeQueryDeltaFrame(const QueryDelta& delta, std::vector<uint8_t>& out);
// The kSnapshot twin of EncodeQueryDeltaFrame: same payload layout, the
// frame type alone marks it as a full baseline.  delta.snapshot should
// be true; the decoder sets it from the frame type.
size_t EncodeSnapshotFrame(const QueryDelta& delta, std::vector<uint8_t>& out);
size_t EncodeAlarmFrame(const Alarm& alarm, std::vector<uint8_t>& out);
// `incarnation` counts the agent's restarts on this host (0 for the
// first launch).  A hub that sees a Hello with a new incarnation on a
// known peer treats it as a rejoin and triggers subscription resync.
size_t EncodeHelloFrame(HostId host, uint32_t pid, uint32_t incarnation,
                        std::vector<uint8_t>& out);
size_t EncodeSubscribeFrame(uint64_t subscription_id, const StandingQuerySpec& spec,
                            std::vector<uint8_t>& out);
size_t EncodeEpochTickFrame(uint64_t token, std::vector<uint8_t>& out);
size_t EncodeAckFrame(HostId host, uint64_t token, std::vector<uint8_t>& out);
size_t EncodeIngestFrame(uint32_t count, uint32_t seed, uint32_t ip_space, uint32_t switch_space,
                         std::vector<uint8_t>& out);
size_t EncodeShutdownFrame(std::vector<uint8_t>& out);
size_t EncodeByeFrame(HostId host, std::vector<uint8_t>& out);
size_t EncodeResyncRequestFrame(uint64_t subscription_id, std::vector<uint8_t>& out);

// Wire bytes of an alarm frame (header + payload) — the alarm twin of
// QueryDelta::SerializedSize, used by benches for byte accounting.
size_t AlarmWireBytes(const Alarm& alarm);

// --- Decoder ---

// One decoded frame, discriminated by `type`.  Only the fields of the
// decoded type are meaningful.
struct DecodedFrame {
  FrameType type = FrameType::kHello;
  // kHello / kAck / kBye
  HostId host = kInvalidNode;
  uint32_t pid = 0;
  // kHello: the agent's restart count (0 on first launch).
  uint32_t incarnation = 0;
  // kQueryDelta / kSnapshot (seq is transport-local, left 0 — the
  // controller's channel stamps its own intake seq; delta.snapshot is
  // set from the frame type)
  QueryDelta delta;
  // kAlarm (seq likewise left 0 for the alarm pipeline to stamp)
  Alarm alarm;
  // kSubscribe / kResyncRequest
  uint64_t subscription_id = 0;
  StandingQuerySpec spec;
  // kEpochTick / kAck
  uint64_t token = 0;
  // kIngest
  uint32_t ingest_count = 0;
  uint32_t ingest_seed = 0;
  uint32_t ingest_ip_space = 0;
  uint32_t ingest_switch_space = 0;
};

// Decodes exactly one frame occupying exactly [data, data+size).  A
// frame shorter than `size` (trailing bytes) is rejected as kOversized:
// ring messages carry one frame each, so trailing bytes mean corruption.
WireError DecodeFrame(const uint8_t* data, size_t size, DecodedFrame* out);

}  // namespace transport
}  // namespace pathdump

#endif  // PATHDUMP_SRC_TRANSPORT_WIRE_H_
