#include "src/controller/loop_detector.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pathdump {

void LoopDetector::Attach() {
  net_->SetPuntHandler([this](const Packet& pkt, SwitchId at, SimTime now) {
    OnPunt(pkt, at, now);
  });
}

void LoopDetector::OnPunt(const Packet& pkt, SwitchId at, SimTime now) {
  int round = ++rounds_[pkt.flow];
  std::vector<LinkLabel>& seen = history_[pkt.flow];

  // Look for a repeated link label, either within this punt's tags or
  // against labels remembered from earlier punts of the same hunt.
  LinkLabel repeated = kInvalidLabel;
  for (size_t i = 0; i < pkt.tags.size() && repeated == kInvalidLabel; ++i) {
    for (size_t j = i + 1; j < pkt.tags.size(); ++j) {
      if (pkt.tags[i] == pkt.tags[j]) {
        repeated = pkt.tags[i];
        break;
      }
    }
    if (repeated == kInvalidLabel &&
        std::find(seen.begin(), seen.end(), pkt.tags[i]) != seen.end()) {
      repeated = pkt.tags[i];
    }
  }

  if (repeated != kInvalidLabel) {
    Detection d;
    d.flow = pkt.flow;
    d.detected_at = now;
    d.repeated_label = repeated;
    d.punt_rounds = round;
    d.punted_at = at;
    detections_.push_back(d);
    Logf(LogLevel::kInfo, "loop detected at t=%.1fms (round %d, label %u)",
         double(now) / double(kNsPerMs), round, unsigned(repeated));
    history_.erase(pkt.flow);
    rounds_.erase(pkt.flow);
    return;
  }

  // No repeat yet: remember labels, strip them, send the packet back into
  // the data plane at the punting switch.
  seen.insert(seen.end(), pkt.tags.begin(), pkt.tags.end());
  LongPathEvent ev;
  ev.flow = pkt.flow;
  ev.at = now;
  ev.labels = pkt.tags;
  ev.punted_at = at;
  long_paths_.push_back(std::move(ev));

  if (!reinject_ || net_ == nullptr) {
    return;
  }
  Packet fresh = pkt;
  fresh.tags.clear();
  // The punting switch saw the packet arrive from the previous switch on
  // its ground-truth trace; re-present it the same way.
  NodeId from = kInvalidNode;
  if (fresh.trace.size() >= 2) {
    from = fresh.trace[fresh.trace.size() - 2];
  }
  // Process() at the punting switch already appended it to the trace and
  // counted the hop; rewind so re-processing does not double-count.
  if (!fresh.trace.empty()) {
    fresh.trace.pop_back();
    fresh.hop_count = std::max(0, fresh.hop_count - 1);
  }
  net_->ReinjectAt(at, from, std::move(fresh), now + net_->config().reinject_latency);
}

}  // namespace pathdump
