// Controller-side standing-query subscriptions.
//
// A SubscriptionManager installs a standing query (the same spec shape
// as a poll query) on a set of agents, receives their epoch deltas over
// an alarm-pipeline-style channel, and folds them into a materialized
// per-host state from which the standing result is produced on demand:
//
//   agents ──EpochTick──▶ QueryDelta ──Submit──▶ bounded MPSC queue
//            (per-host      (seq stamp)           (backpressure)
//             increments)                              │
//                                          drain worker: fold deltas in
//                                          epoch order per (sub, host)
//                                                      │
//                Materialize(sub): per-host result ──▶ merge in host
//                order — byte-identical to a fresh poll Execute
//
//  * Intake is the shared bounded MPSC channel template
//    (src/common/mpsc_channel.h) — the same implementation AlarmPipeline
//    drains: every accepted delta sequence-stamped (QueryDelta::seq)
//    under the queue lock, a dedicated drain worker pulling batches,
//    blocking backpressure (a delta is never dropped), and a
//    reentrant-safe Flush.
//  * Ordering: network arrival may reorder epochs.  The drain worker
//    folds strictly in epoch order per (subscription, host), buffering
//    gapped deltas until the missing epoch arrives — the materialized
//    state is always a contiguous epoch prefix per host, so arrival
//    order can never leak into results (stats count the reorders).
//  * Determinism contract: at any epoch boundary (all shipped deltas
//    folded), Materialize() is byte-identical to Controller::Execute of
//    the equivalent poll query over the same TIB contents, at any TIB
//    shard count and any worker count (tests/standing_query_test.cc
//    asserts the {1,4,16} x {1,4,16} matrix).
//  * Cost: folding is O(delta entries); materialization is O(active
//    flows) for the requested subscription only.  Polling stays
//    available and untouched — subscriptions are a second consumer of
//    the same TIB, not a replacement.

#ifndef PATHDUMP_SRC_CONTROLLER_SUBSCRIPTION_H_
#define PATHDUMP_SRC_CONTROLLER_SUBSCRIPTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/flow_delta.h"
#include "src/common/mpsc_channel.h"
#include "src/common/trace.h"
#include "src/common/types.h"
#include "src/edge/query.h"
#include "src/edge/standing_query.h"

namespace pathdump {

class Controller;
class EdgeAgent;

struct SubscriptionManagerOptions {
  // Bound of the delta intake queue (backpressure blocks above it).
  size_t queue_capacity = 4096;
  // Largest batch the drain worker pulls in one go.
  size_t max_batch = 256;
  // When > 0: a (sub, host) stream whose gap buffer reaches this many
  // pending out-of-order epochs is declared stale (a missing epoch is
  // presumed lost, e.g. to a corrupted frame) and a resync is requested
  // through the installed requester instead of waiting forever.  0
  // disables the threshold — plain reordering is then always waited out.
  size_t gap_resync_threshold = 0;
};

// All counters are cumulative since construction.
struct SubscriptionManagerStats {
  uint64_t deltas_submitted = 0;  // accepted into the queue
  uint64_t deltas_folded = 0;     // applied to materialized state
  uint64_t deltas_reordered = 0;  // arrived ahead of a missing epoch, buffered
  uint64_t deltas_orphaned = 0;   // for an unsubscribed/unknown subscription
  uint64_t delta_bytes = 0;       // wire bytes of folded deltas
  uint64_t flow_updates = 0;      // per-flow fold operations
  uint64_t blocked_enqueues = 0;  // Submit() calls that had to wait
  uint64_t batches = 0;           // drain pulls
  // Crash-recovery accounting.  Every submitted delta ends in exactly
  // one bucket: deltas_submitted == deltas_folded + deltas_orphaned +
  // deltas_stale_discarded once flushed (snapshot folds count in
  // deltas_folded AND snapshot_folds).
  uint64_t resyncs = 0;                 // streams marked stale
  uint64_t snapshot_folds = 0;          // snapshots folded as new baselines
  uint64_t deltas_stale_discarded = 0;  // pre-snapshot stragglers dropped
};

// Per-subscription view for benches and introspection.
struct SubscriptionInfo {
  uint64_t id = 0;
  StandingQuerySpec spec;
  size_t hosts = 0;
  uint64_t deltas_folded = 0;
  uint64_t delta_bytes = 0;   // wire bytes folded so far
  uint64_t pending_gaps = 0;  // buffered out-of-order deltas right now
};

class SubscriptionManager {
 public:
  explicit SubscriptionManager(Controller* controller, SubscriptionManagerOptions options = {});
  // Unsubscribes everything (detaching agent-side accumulators), drains
  // deltas already accepted, then joins the drain worker.  External
  // epoch tickers must stop first.
  ~SubscriptionManager();

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  // Installs `spec` on every registered agent in `hosts` (unregistered
  // hosts are skipped, exactly like a poll Execute) and returns the
  // subscription id.  If `epoch_period > 0`, a periodic query is also
  // installed on each agent so the agent's own Tick drives epoch ticks;
  // otherwise epochs are driven explicitly via TickEpoch().
  uint64_t Subscribe(const std::vector<HostId>& hosts, const StandingQuerySpec& spec,
                     SimTime epoch_period = 0);

  // Transport variant: creates the subscription and the per-host fold
  // state for every listed host without attaching any in-process
  // accumulator.  Deltas arrive through SubmitDelta from a transport
  // reactor (src/transport/transport.h) that installed the spec on the
  // remote agent processes itself; folding, ordering, and Materialize
  // behave identically to an in-process subscription.
  uint64_t SubscribeRemote(const std::vector<HostId>& hosts, const StandingQuerySpec& spec);

  // Detaches the subscription everywhere and drops its state.  Safe
  // mid-epoch: agent-side hook removal synchronizes with in-flight
  // inserts, and deltas still queued for this id are counted orphaned
  // and discarded.
  void Unsubscribe(uint64_t id);

  // Explicit epoch boundary: ticks every (subscription, host) now, on
  // the calling thread.  Deltas flow through the normal channel; call
  // Flush() (or Materialize, which flushes) before reading results.
  void TickEpoch();

  // Channel intake: stamps QueryDelta::seq and enqueues.  Blocks while
  // the queue is full (a delta is never dropped); returns false only
  // after shutdown began.  Normally fed by agent sinks; exposed so
  // tests can inject reordered arrivals directly.
  bool SubmitDelta(QueryDelta delta);

  // Blocks until every delta accepted so far has been folded (or
  // counted orphaned).  No-op from inside the drain worker.
  void Flush();

  // Flushes, then materializes the standing result: per-host results
  // (MaterializeStandingResult over the folded per-flow state) merged
  // in host order — the poll Execute merge, byte for byte.  Unknown
  // subscription ids yield monostate.
  QueryResult Materialize(uint64_t id);

  // --- Crash recovery (snapshot resync) ---
  //
  // Protocol: a stream that lost deltas (dead/restarted agent, seq gap,
  // corrupted frame) is marked STALE — ordinary deltas for it are
  // discarded (their increments are unusable without the lost prefix)
  // until a snapshot delta (QueryDelta::snapshot) arrives.  The snapshot
  // REPLACES the stream's fold state, re-anchors next_epoch at
  // snapshot.epoch + 1, clears the gap buffer, and clears the stale mark
  // — strict-epoch delta folding then resumes, and Materialize is again
  // byte-identical to a fresh poll at every epoch boundary.

  // Marks (id, host) stale and drops its gap buffer.  Returns true if
  // the stream was newly marked (callers use this to rate-limit resync
  // requests: one outstanding request per stale episode).  False for
  // unknown streams or streams already stale.
  bool MarkStale(uint64_t id, HostId host);

  // Called (without state_mu_ held) whenever the gap threshold declares
  // a stream stale, so the owner (e.g. the transport hub) can ship a
  // ResyncRequest to the agent.  Install before traffic flows.
  using ResyncRequester = std::function<void(uint64_t id, HostId host)>;
  void SetResyncRequester(ResyncRequester fn);

  // In-process resync: marks (id, host) stale, then immediately pulls a
  // snapshot through the attached agent and submits it.  Returns false
  // when the subscription has no attachment for `host` (e.g. remote
  // subscriptions — those resync over the wire via the hub).
  bool Resync(uint64_t id, HostId host);

  // Streams currently stale (snapshot still in flight).  Chaos tests
  // spin on this reaching zero before asserting byte-identity.
  size_t stale_streams() const;

  SubscriptionManagerStats stats() const;
  SubscriptionInfo info(uint64_t id) const;
  size_t subscription_count() const;

 private:
  struct PendingDelta {
    FlowBytesDelta payload;  // per-flow kinds
    RecordDelta records;     // record kinds
    size_t wire_bytes = 0;   // the full QueryDelta's SerializedSize
  };
  struct HostState {
    uint64_t next_epoch = 1;  // next epoch to fold
    FlowBytesMap folded;      // materialized per-flow state (per-flow kinds)
    RecordFoldState records;  // materialized record state (record kinds)
    std::map<uint64_t, PendingDelta> pending;  // gapped arrivals by epoch
    // Deltas were lost; ordinary deltas are discarded until a snapshot
    // re-baselines the stream (see the crash-recovery section above).
    bool stale = false;
  };
  struct AgentAttachment {
    EdgeAgent* agent = nullptr;
    int standing_id = -1;
    int periodic_id = -1;  // -1 when epochs are driven explicitly
  };
  struct Subscription {
    StandingQuerySpec spec;
    std::vector<HostId> hosts;  // merge order (registered hosts only)
    std::vector<AgentAttachment> attachments;
    std::unordered_map<HostId, HostState> host_state;
    uint64_t deltas_folded = 0;
    uint64_t delta_bytes = 0;
  };

  // The channel's consumer: folds one pulled batch.  Runs on the
  // channel's drain worker.
  void FoldBatch(std::vector<QueryDelta>& batch);
  // Applies one contiguous-epoch delta to `hs`; caller holds state_mu_.
  // `keys` carries the (sub, host, epoch) correlation for the fold span.
  void FoldReady(Subscription& sub, HostState& hs, const PendingDelta& delta,
                 const TraceKeys& keys);
  // Uninstalls the periodic ticks and accumulators on every attached
  // agent; must be called WITHOUT state_mu_ held (takes agent locks).
  void DetachAgents(Subscription& sub);

  Controller* const controller_;
  const SubscriptionManagerOptions options_;

  // Fold-side counters (intake-side ones come from the channel).
  std::atomic<uint64_t> deltas_folded_{0};
  std::atomic<uint64_t> deltas_reordered_{0};
  std::atomic<uint64_t> deltas_orphaned_{0};
  std::atomic<uint64_t> delta_bytes_{0};
  std::atomic<uint64_t> flow_updates_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> snapshot_folds_{0};
  std::atomic<uint64_t> stale_discarded_{0};

  // Fired outside state_mu_ when the gap threshold marks a stream
  // stale.  Guarded by state_mu_ for installation; FoldBatch copies it
  // under the lock and invokes after release.
  ResyncRequester resync_requester_;

  // Subscription registry + materialized state.  The channel's drain
  // worker releases the queue lock before folding, and registry
  // operations touch the channel only via Flush (never while holding
  // state_mu_), so no ordering between the two ever forms.
  mutable std::mutex state_mu_;
  uint64_t next_subscription_id_ = 1;
  std::unordered_map<uint64_t, Subscription> subscriptions_;

  // Declared last: its destructor drains the queue through FoldBatch,
  // which touches everything above.
  MpscChannel<QueryDelta> channel_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_SUBSCRIPTION_H_
