// Alarm intake pipeline: the controller side of the Alarm() channel
// (Table 1), built for alarm storms.
//
// The seed handled each alarm synchronously on the emitting agent's
// thread, which serializes the whole fleet under a silent-drop or incast
// storm.  This subsystem decouples producers from consumers:
//
//   agents ──Submit()──▶ bounded MPSC queue ──▶ drain worker ──▶ log
//            (seq stamp)   (backpressure)        (batches,      └▶ subscribers
//                                                 suppression)     (fan-out)
//
//  * Intake is a bounded MPSC queue — the shared channel template
//    (src/common/mpsc_channel.h): sequence stamping under the queue
//    lock, batched drain, kBlock/kDropNewest backpressure, reentrant
//    Flush, drain-on-destruction.  This file owns only what is alarm-
//    specific: the suppression window, the sequence-ordered log, and
//    subscriber fan-out.
//  * A dedicated drain worker pulls batches of up to `max_batch` alarms,
//    applies the suppression window, appends survivors to the log, and
//    dispatches them to subscribers.
//  * Suppression: repeat alarms for the same (host, flow, reason) within
//    `suppression_window` sim-time of the last admitted one are dropped
//    (counted in stats).  0 disables suppression (the default — the
//    debugging apps want every POOR_PERF repeat as a fresh signature).
//  * Backpressure is explicit: with kBlock (default) a full queue makes
//    Submit() wait — no alarm is ever lost; with kDropNewest a full queue
//    rejects the new alarm and counts it.  Both are observable via
//    AlarmPipelineStats.
//  * Dispatch fans out across subscribers on a ThreadPool
//    (src/common/thread_pool.h) when `dispatch_workers > 1`.  Each
//    subscriber processes a whole batch on one worker, so every
//    subscriber always sees alarms in sequence order.
//
// Determinism contract (mirrors the PR 1 query contract): the log is
// always sequence-ordered, and its bytes depend only on the submission
// order — never on the dispatch worker count or thread scheduling
// (tests/alarm_pipeline_test.cc enforces 1/4/16-worker identity).
//
// Reentrancy: Flush() called from inside a subscriber (or any pipeline
// worker) returns immediately instead of deadlocking, so subscribers may
// safely call Controller::alarm_log().

#ifndef PATHDUMP_SRC_CONTROLLER_ALARM_PIPELINE_H_
#define PATHDUMP_SRC_CONTROLLER_ALARM_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/mpsc_channel.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/edge/alarm.h"

namespace pathdump {

// What Submit() does when the intake queue is full.  (An alias of the
// shared channel's policy, kept for source compatibility.)
using AlarmOverflowPolicy = MpscOverflowPolicy;

struct AlarmPipelineOptions {
  // Bound of the intake queue (alarms buffered between Submit and drain).
  size_t queue_capacity = 4096;
  // Largest batch the drain worker pulls in one go.
  size_t max_batch = 256;
  // Sim-time dedup window per (host, flow, reason); 0 disables.
  SimTime suppression_window = 0;
  AlarmOverflowPolicy overflow = AlarmOverflowPolicy::kBlock;
  // Subscriber fan-out parallelism (1 = dispatch inline on the drain
  // worker).  Counts the drain worker itself, like ThreadPool.
  size_t dispatch_workers = 1;
};

// All counters are cumulative since construction.
struct AlarmPipelineStats {
  uint64_t submitted = 0;         // accepted into the queue
  uint64_t dropped = 0;           // rejected by kDropNewest backpressure
  uint64_t blocked_enqueues = 0;  // Submit() calls that had to wait (kBlock)
  uint64_t suppressed = 0;        // deduped by the suppression window
  uint64_t delivered = 0;         // appended to the log + dispatched
  uint64_t batches = 0;           // drain pulls
  uint64_t max_batch = 0;         // largest single pull
};

class AlarmPipeline {
 public:
  explicit AlarmPipeline(AlarmPipelineOptions options = {});
  // Drains everything already submitted (alarms are never lost on
  // shutdown under kBlock), then joins the drain worker.
  ~AlarmPipeline() = default;

  AlarmPipeline(const AlarmPipeline&) = delete;
  AlarmPipeline& operator=(const AlarmPipeline&) = delete;

  // Thread-safe MPSC enqueue; stamps Alarm::seq.  Returns false iff the
  // alarm was rejected — by kDropNewest backpressure, or (under either
  // policy) because shutdown already began; rejects count in
  // stats().dropped.  Every accepted alarm is delivered, even across
  // destruction.  Traced 1-in-256 per thread (storms would flood the
  // span ring otherwise), which is why the body lives in the .cc.
  bool Submit(const Alarm& alarm);

  // Registers a handler; it will see every subsequently delivered alarm,
  // in sequence order.  Thread-safe.
  void Subscribe(AlarmHandler handler);

  // Blocks until every alarm accepted so far has been logged and
  // dispatched to all subscribers.  No-op from inside the pipeline.
  void Flush() { channel_.Flush(); }

  // The sequence-ordered intake log.  Stable only while the pipeline is
  // quiescent — call Flush() first (Controller::alarm_log does).
  const std::vector<Alarm>& log() const { return log_; }

  AlarmPipelineStats stats() const;
  const AlarmPipelineOptions& options() const { return options_; }
  size_t dispatch_workers() const {
    return dispatch_pool_ ? dispatch_pool_->worker_count() : 1;
  }
  size_t subscriber_count() const;

 private:
  struct SuppressKey {
    HostId host;
    FiveTuple flow;
    AlarmReason reason;
    friend bool operator==(const SuppressKey&, const SuppressKey&) = default;
  };
  struct SuppressKeyHash {
    size_t operator()(const SuppressKey& k) const {
      uint64_t h = FiveTupleHash{}(k.flow);
      h = HashCombine(h, k.host);
      h = HashCombine(h, uint64_t(k.reason));
      return size_t(h);
    }
  };

  // Suppression + log append + subscriber dispatch for one pulled batch.
  // Runs on the channel's drain worker.
  void ProcessBatch(std::vector<Alarm>& batch);

  const AlarmPipelineOptions options_;
  // Non-null iff options_.dispatch_workers > 1.
  std::unique_ptr<ThreadPool> dispatch_pool_;

  // Pipeline-owned counters (the rest come from the channel).
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> delivered_{0};

  // Drain-worker-only state (no lock needed).  last_admitted_ is pruned
  // of expired entries whenever it outgrows this bound, so suppression
  // memory stays O(active keys), not O(keys ever seen).
  static constexpr size_t kSuppressPruneThreshold = 1 << 16;
  std::unordered_map<SuppressKey, SimTime, SuppressKeyHash> last_admitted_;
  SimTime newest_at_ = 0;

  // Appended by the drain worker only; see log().
  std::vector<Alarm> log_;

  mutable std::mutex subs_mu_;
  std::vector<AlarmHandler> subscribers_;

  // Declared last: its destructor drains the queue through ProcessBatch,
  // which touches everything above.
  MpscChannel<Alarm> channel_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_ALARM_PIPELINE_H_
