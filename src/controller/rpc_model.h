// Cost model for the controller <-> agent management channel.
//
// The paper's testbed exchanges query/response messages over a dedicated
// 1 GbE management network via Flask REST (§3.3, §5.1).  Agents here live
// in-process, so per-host query execution and controller-side aggregation
// are *measured* (real work on real data) while the wire is *modeled* with
// the testbed's constants: per-message RTT plus size/bandwidth transfer
// time.  DESIGN.md documents this substitution.
//
// The shared-memory transport (src/transport/) narrows the substitution
// for the standing-query and alarm paths: with the kSharedMemory backend
// those frames are really encoded (src/transport/wire.h — a QueryDelta
// frame is exactly QueryDelta::SerializedSize() bytes) and really cross
// a process boundary, so their byte counts are measured on the wire.
// This model still prices the poll RPCs, whose agents remain in-process.

#ifndef PATHDUMP_SRC_CONTROLLER_RPC_MODEL_H_
#define PATHDUMP_SRC_CONTROLLER_RPC_MODEL_H_

#include <cstddef>

namespace pathdump {

struct RpcModel {
  // One round trip on the management network (switching + kernel + HTTP).
  double rtt_seconds = 500e-6;
  // Management-link bandwidth (1 GbE).
  double bandwidth_bytes_per_sec = 125e6;
  // Request message size (query text + tree description).
  size_t request_bytes = 512;
  // Fixed per-message software overhead (serialization, framing).
  double per_message_overhead_seconds = 150e-6;
  // Fixed per-host query service time: the paper's agents serve queries
  // through Flask (HTTP parse/dispatch) backed by MongoDB; our in-memory
  // execution is measured for real and this constant stands in for that
  // service stack (calibrated to the paper's ~0.1s floor in Fig. 11).
  double per_query_service_seconds = 0.08;

  // Seconds to move `bytes` across the management network, including the
  // fixed per-message cost.
  double TransferSeconds(size_t bytes) const {
    return per_message_overhead_seconds + double(bytes) / bandwidth_bytes_per_sec;
  }
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_RPC_MODEL_H_
