#include "src/controller/aggregation_tree.h"

#include <algorithm>
#include <deque>

namespace pathdump {

int AggregationTree::depth() const {
  int d = 0;
  for (const AggregationNode& n : nodes) {
    d = std::max(d, n.level);
  }
  return d;
}

AggregationTree BuildAggregationTree(const std::vector<HostId>& hosts, int top_fanout,
                                     int fanout) {
  AggregationTree tree;
  if (hosts.empty()) {
    return tree;
  }
  size_t next = 0;
  std::deque<int> frontier;  // node indices awaiting children
  for (int i = 0; i < top_fanout && next < hosts.size(); ++i) {
    AggregationNode n;
    n.host = hosts[next++];
    n.level = 1;
    tree.nodes.push_back(n);
    tree.roots.push_back(int(tree.nodes.size()) - 1);
    frontier.push_back(tree.roots.back());
  }
  while (next < hosts.size() && !frontier.empty()) {
    int parent = frontier.front();
    frontier.pop_front();
    for (int i = 0; i < fanout && next < hosts.size(); ++i) {
      AggregationNode n;
      n.host = hosts[next++];
      n.level = tree.nodes[size_t(parent)].level + 1;
      tree.nodes.push_back(n);
      int idx = int(tree.nodes.size()) - 1;
      tree.nodes[size_t(parent)].children.push_back(idx);
      frontier.push_back(idx);
    }
  }
  return tree;
}

}  // namespace pathdump
