// Real-time routing-loop detection by trapping suspiciously long paths
// (§3.1 "Instant trap", §4.5).
//
// A packet caught in a loop keeps accumulating sampled link labels; the
// moment it carries three VLAN tags, the next switch's IP-field match
// misses in the ASIC and the packet is punted to the controller.  The
// controller then:
//  * if the carried labels contain a repeat (against this punt or any
//    earlier punt of the same flow) -> a loop is proven, detection done;
//  * otherwise it stores the labels, strips them, and re-injects the
//    packet at the punting switch — a loop longer than one tag-capacity
//    window will punt again with fresh labels and reveal the repeat.
// This detects loops of *any* size with bounded header space.

#ifndef PATHDUMP_SRC_CONTROLLER_LOOP_DETECTOR_H_
#define PATHDUMP_SRC_CONTROLLER_LOOP_DETECTOR_H_

#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/netsim/network.h"
#include "src/packet/packet.h"

namespace pathdump {

class LoopDetector {
 public:
  struct Detection {
    FiveTuple flow;
    SimTime detected_at = 0;     // simulated time of proof
    LinkLabel repeated_label = kInvalidLabel;
    int punt_rounds = 0;         // how many punts it took (1 = first punt)
    SwitchId punted_at = kInvalidNode;
  };

  // Long-path punts that did NOT repeat a label (suspicious non-loops —
  // path-conformance material for the operator).
  struct LongPathEvent {
    FiveTuple flow;
    SimTime at = 0;
    std::vector<LinkLabel> labels;
    SwitchId punted_at = kInvalidNode;
  };

  explicit LoopDetector(Network* net) : net_(net) {}

  // Registers this detector as the network's punt handler.
  void Attach();

  // Punt entry point (also callable directly in tests).
  void OnPunt(const Packet& pkt, SwitchId at, SimTime now);

  const std::vector<Detection>& detections() const { return detections_; }
  const std::vector<LongPathEvent>& long_path_events() const { return long_paths_; }

  // When true (default), non-loop punts are re-injected to keep hunting.
  void set_reinject(bool v) { reinject_ = v; }

 private:
  Network* net_;
  bool reinject_ = true;
  // Flow -> labels collected from earlier punts of the same packet hunt.
  std::unordered_map<FiveTuple, std::vector<LinkLabel>, FiveTupleHash> history_;
  std::unordered_map<FiveTuple, int, FiveTupleHash> rounds_;
  std::vector<Detection> detections_;
  std::vector<LongPathEvent> long_paths_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_LOOP_DETECTOR_H_
