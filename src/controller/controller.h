// PathDump controller (§3.3).
//
// Two roles: (1) one-time installation of the static tag-push rules — in
// this implementation the rules are compiled into the CherryPick codec at
// network construction, so the controller's data-plane job is done at
// startup, exactly as the paper intends ("the rules are not modified once
// installed"); (2) running debugging applications against the distributed
// TIBs via the controller API of Table 1: execute / install / uninstall,
// with direct or multi-level query mechanisms, plus the alarm intake that
// drives event-driven applications (Fig. 3).

#ifndef PATHDUMP_SRC_CONTROLLER_CONTROLLER_H_
#define PATHDUMP_SRC_CONTROLLER_CONTROLLER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/controller/aggregation_tree.h"
#include "src/controller/alarm_pipeline.h"
#include "src/controller/rpc_model.h"
#include "src/edge/edge_agent.h"

namespace pathdump {

// Timing/traffic breakdown of one distributed query execution.
struct QueryExecStats {
  double response_time_seconds = 0;   // end-to-end, wire modeled
  size_t network_bytes = 0;           // total query+response traffic
  size_t response_bytes = 0;          // response payloads only (Figs 11b/12b)
  double controller_compute_seconds = 0;  // measured aggregation at controller
  double max_host_compute_seconds = 0;    // slowest per-host execution
  size_t hosts = 0;
};

class Controller {
 public:
  using QueryFn = std::function<QueryResult(EdgeAgent&)>;

  explicit Controller(RpcModel rpc = {})
      : rpc_(rpc), alarm_pipeline_(std::make_unique<AlarmPipeline>()) {}

  // --- Query fan-out parallelism ---
  //
  // The controller contacts many independent agents per query; their
  // QueryFn executions fan out across a shared worker pool while all
  // byte accounting and result merging stays sequential in a fixed
  // order, so QueryResult payloads and QueryExecStats.network_bytes are
  // byte-identical across any worker count (see tests/
  // controller_parallel_test.cc).  `n <= 1` selects fully inline
  // sequential execution (the default).
  void SetWorkerThreads(size_t n);
  size_t worker_threads() const { return pool_ ? pool_->worker_count() : 1; }

  // --- Agent registry ---
  void RegisterAgent(EdgeAgent* agent);
  template <typename Fleet>
  void RegisterFleet(Fleet& fleet) {
    for (EdgeAgent* a : fleet.all()) {
      RegisterAgent(a);
    }
  }
  EdgeAgent* agent(HostId host) const;
  std::vector<HostId> registered_hosts() const;

  // --- Controller API (Table 1) ---

  // execute(List<HostID>, Query): direct query — the controller contacts
  // every host and aggregates all responses itself.
  std::pair<QueryResult, QueryExecStats> Execute(const std::vector<HostId>& hosts,
                                                 const QueryFn& query) const;

  // Multi-level variant: query + aggregation tree distributed to hosts;
  // results reduce bottom-up (§3.2, §5.2).  The reduction is pipelined:
  // a subtree merges as soon as its own pieces finish, overlapping
  // still-running executions elsewhere in the tree (per-node dependency
  // counters; fixed child order keeps payloads byte-identical at any
  // worker count).
  std::pair<QueryResult, QueryExecStats> ExecuteMultiLevel(const std::vector<HostId>& hosts,
                                                           const QueryFn& query,
                                                           int top_fanout = 7,
                                                           int fanout = 4) const;

  // install(List<HostID>, Query, Period): returns per-host query ids.
  std::vector<int> Install(const std::vector<HostId>& hosts, SimTime period,
                           EdgeAgent::PeriodicQuery body) const;
  // uninstall(List<HostID>, Query).
  void Uninstall(const std::vector<HostId>& hosts, const std::vector<int>& ids) const;

  // --- Alarm intake (src/controller/alarm_pipeline.h) ---
  //
  // Alarms are batched through a bounded MPSC pipeline: Submit() on the
  // emitting agent's thread, a dedicated drain worker for suppression +
  // logging, subscriber dispatch fanned out across a worker pool.
  // Delivery is therefore asynchronous — call FlushAlarms() (or
  // alarm_log(), which flushes) before reading subscriber-side state.

  // Handler every registered agent reports into; feeds the pipeline.
  // Sinks stay valid across ConfigureAlarmPipeline().
  AlarmHandler MakeAlarmSink();
  // Subscribes a debugging application to alarms.  Subscribers see
  // alarms in sequence order, possibly on a dispatch worker thread.
  void SubscribeAlarms(AlarmHandler handler);
  // Replaces the pipeline (flushes and discards the previous log — call
  // before traffic starts).  Existing subscribers carry over.
  void ConfigureAlarmPipeline(AlarmPipelineOptions options);
  // Blocks until every alarm submitted so far has been logged and
  // dispatched to all subscribers.  Safe (no-op) from a subscriber.
  void FlushAlarms() const { alarm_pipeline_->Flush(); }
  // Flushes, then returns the sequence-ordered intake log.
  const std::vector<Alarm>& alarm_log() const;
  AlarmPipelineStats alarm_stats() const { return alarm_pipeline_->stats(); }
  const AlarmPipeline& alarm_pipeline() const { return *alarm_pipeline_; }

  const RpcModel& rpc() const { return rpc_; }

 private:
  struct TimedResult {
    QueryResult result;
    double compute_seconds = 0;
  };
  // Runs the query on one agent, measuring wall-clock compute.
  TimedResult RunOn(EdgeAgent& agent, const QueryFn& query) const;
  // Runs the query on agents[i] into results[i] for every i — across the
  // worker pool when one is configured, inline otherwise.  Slots for null
  // agents are left default-initialized.
  void RunAll(const std::vector<EdgeAgent*>& agents, const QueryFn& query,
              std::vector<TimedResult>& results) const;

  RpcModel rpc_;
  // Execution resource only — never observable in results.
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<HostId, EdgeAgent*> agents_;
  std::vector<HostId> host_order_;
  // Kept so ConfigureAlarmPipeline can re-subscribe into a new pipeline.
  std::vector<AlarmHandler> subscribers_;
  std::unique_ptr<AlarmPipeline> alarm_pipeline_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_CONTROLLER_H_
