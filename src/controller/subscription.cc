#include "src/controller/subscription.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"

namespace pathdump {

SubscriptionManager::SubscriptionManager(Controller* controller,
                                         SubscriptionManagerOptions options)
    : controller_(controller),
      options_(options),
      channel_(MpscChannelOptions{options.queue_capacity, options.max_batch,
                                  MpscOverflowPolicy::kBlock, "sub.channel"},
               [this](std::vector<QueryDelta>& batch) { FoldBatch(batch); }) {}

SubscriptionManager::~SubscriptionManager() {
  // Detach agent-side accumulators first so no new delta is produced.
  // Detaching happens outside state_mu_ (it takes agent registration +
  // TIB shard locks).  The channel member is declared last, so its
  // destructor then drains every delta already accepted before the
  // registry below it goes away.
  std::vector<Subscription> detach;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    for (auto& [id, sub] : subscriptions_) {
      detach.push_back(std::move(sub));
    }
    subscriptions_.clear();
  }
  for (Subscription& sub : detach) {
    DetachAgents(sub);
  }
}

uint64_t SubscriptionManager::Subscribe(const std::vector<HostId>& hosts,
                                        const StandingQuerySpec& spec, SimTime epoch_period) {
  // Publish the subscription (hosts + fold state) BEFORE attaching any
  // agent-side hook: with a periodic epoch ticker the first delta can
  // arrive the moment a hook exists, and it must find the subscription
  // — an orphaned epoch 1 would leave the accumulator ahead of the
  // fold state and wedge that host's in-order fold for good.
  Subscription sub;
  sub.spec = spec;
  std::vector<EdgeAgent*> agents;
  for (HostId h : hosts) {
    EdgeAgent* agent = controller_->agent(h);
    if (agent == nullptr) {
      continue;  // skipped exactly like a poll Execute
    }
    sub.hosts.push_back(h);
    sub.host_state.emplace(h, HostState{});
    agents.push_back(agent);
  }
  uint64_t id;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    id = next_subscription_id_++;
    subscriptions_.emplace(id, std::move(sub));
  }
  // Attach outside state_mu_: registering the accumulator takes every
  // TIB shard lock on the agent, which may be mid-insert.
  std::vector<AgentAttachment> attachments;
  attachments.reserve(agents.size());
  for (EdgeAgent* agent : agents) {
    AgentAttachment att;
    att.agent = agent;
    att.standing_id = agent->RegisterStandingQuery(
        id, spec, [this](QueryDelta&& delta) { SubmitDelta(std::move(delta)); });
    if (epoch_period > 0) {
      const int standing_id = att.standing_id;
      att.periodic_id = agent->InstallQuery(
          epoch_period, [standing_id](EdgeAgent& a, SimTime) { a.EpochTickOne(standing_id); });
    }
    attachments.push_back(att);
  }
  bool unsubscribed_meanwhile = false;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = subscriptions_.find(id);
    if (it != subscriptions_.end()) {
      it->second.attachments = std::move(attachments);
    } else {
      unsubscribed_meanwhile = true;
    }
  }
  if (unsubscribed_meanwhile) {
    // A concurrent Unsubscribe(id) won the race before the attachments
    // landed; take back what was just installed.
    Subscription torn_down;
    torn_down.attachments = std::move(attachments);
    DetachAgents(torn_down);
  }
  return id;
}

uint64_t SubscriptionManager::SubscribeRemote(const std::vector<HostId>& hosts,
                                              const StandingQuerySpec& spec) {
  // Remote hosts have no registry entry to check against — the caller
  // (the transport hub) owns the peer set, so every listed host gets
  // fold state.  Published before the caller broadcasts the Subscribe
  // frame, so the first remote delta always finds its subscription.
  Subscription sub;
  sub.spec = spec;
  for (HostId h : hosts) {
    sub.hosts.push_back(h);
    sub.host_state.emplace(h, HostState{});
  }
  std::lock_guard<std::mutex> state(state_mu_);
  const uint64_t id = next_subscription_id_++;
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

void SubscriptionManager::DetachAgents(Subscription& sub) {
  for (AgentAttachment& att : sub.attachments) {
    if (att.agent == nullptr) {
      continue;
    }
    if (att.periodic_id >= 0) {
      att.agent->UninstallQuery(att.periodic_id);
    }
    att.agent->UnregisterStandingQuery(att.standing_id);
    att.agent = nullptr;
  }
}

void SubscriptionManager::Unsubscribe(uint64_t id) {
  std::unique_lock<std::mutex> state(state_mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return;
  }
  Subscription sub = std::move(it->second);
  subscriptions_.erase(it);
  state.unlock();
  // Hook removal takes the agent's TIB shard locks; done outside
  // state_mu_ so the drain worker never waits on an agent's data path.
  DetachAgents(sub);
}

void SubscriptionManager::TickEpoch() {
  // Snapshot the attachments, then tick outside state_mu_: a full
  // intake queue blocks the ticking thread, and the drain worker needs
  // state_mu_ to fold its way out.
  std::vector<std::pair<EdgeAgent*, int>> targets;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    for (auto& [id, sub] : subscriptions_) {
      for (const AgentAttachment& att : sub.attachments) {
        if (att.agent != nullptr) {
          targets.emplace_back(att.agent, att.standing_id);
        }
      }
    }
  }
  for (auto& [agent, standing_id] : targets) {
    agent->EpochTickOne(standing_id);
  }
}

bool SubscriptionManager::SubmitDelta(QueryDelta delta) {
  return channel_.Submit(std::move(delta));
}

void SubscriptionManager::Flush() { channel_.Flush(); }

void SubscriptionManager::FoldReady(Subscription& sub, HostState& hs,
                                    const PendingDelta& delta, const TraceKeys& keys) {
  // Fold-side registry mirrors: process-wide atomic totals alongside the
  // exact per-manager atomics and per-subscription (state_mu_-guarded)
  // views, so external readers never touch unsynchronized state.
  static Counter* m_folded = MetricsRegistry::Global().GetCounter("sub.deltas_folded");
  static Counter* m_bytes = MetricsRegistry::Global().GetCounter("sub.delta_bytes");
  static Counter* m_updates = MetricsRegistry::Global().GetCounter("sub.flow_updates");
  TraceScope span("fold", keys);
  uint64_t updates;
  if (sub.spec.IsRecordKind()) {
    hs.records.Fold(sub.spec, delta.records);
    updates = delta.records.items.size();
  } else {
    delta.payload.ApplyTo(hs.folded);
    updates = delta.payload.items.size();
  }
  ++hs.next_epoch;
  ++sub.deltas_folded;
  sub.delta_bytes += delta.wire_bytes;
  deltas_folded_.fetch_add(1, std::memory_order_acq_rel);
  flow_updates_.fetch_add(updates, std::memory_order_acq_rel);
  delta_bytes_.fetch_add(delta.wire_bytes, std::memory_order_acq_rel);
  m_folded->Add();
  m_bytes->Add(delta.wire_bytes);
  m_updates->Add(updates);
}

void SubscriptionManager::FoldBatch(std::vector<QueryDelta>& batch) {
  static Counter* m_orphaned = MetricsRegistry::Global().GetCounter("sub.deltas_orphaned");
  static Counter* m_reordered = MetricsRegistry::Global().GetCounter("sub.deltas_reordered");
  static Counter* m_snapshot_folds = MetricsRegistry::Global().GetCounter("sub.snapshot_folds");
  static Counter* m_stale_discarded =
      MetricsRegistry::Global().GetCounter("sub.deltas_stale_discarded");
  static Counter* m_resyncs = MetricsRegistry::Global().GetCounter("sub.resyncs");
  // Streams the gap threshold marked stale this batch; the requester
  // fires after state_mu_ is released (it pushes to a command ring).
  std::vector<std::pair<uint64_t, HostId>> fire;
  ResyncRequester requester;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    requester = resync_requester_;
    for (QueryDelta& d : batch) {
      auto it = subscriptions_.find(d.subscription_id);
      if (it == subscriptions_.end()) {
        deltas_orphaned_.fetch_add(1, std::memory_order_acq_rel);
        m_orphaned->Add();
        continue;
      }
      Subscription& sub = it->second;
      auto hit = sub.host_state.find(d.host);
      if (hit == sub.host_state.end()) {
        deltas_orphaned_.fetch_add(1, std::memory_order_acq_rel);
        m_orphaned->Add();
        continue;
      }
      HostState& hs = hit->second;
      const size_t wire_bytes = d.SerializedSize();
      if (d.snapshot) {
        // Full baseline: REPLACE the stream's fold state, re-anchor the
        // epoch counter at snapshot + 1, drop any buffered stragglers
        // (the snapshot already contains everything they carried), and
        // clear the stale mark.  Strict-epoch folding resumes from here.
        const TraceKeys keys{d.subscription_id, d.host, d.epoch};
        hs.folded.clear();
        hs.records = RecordFoldState{};
        // Buffered stragglers end in the stale_discarded bucket — every
        // submitted delta lands in exactly one terminal bucket.
        stale_discarded_.fetch_add(hs.pending.size(), std::memory_order_acq_rel);
        m_stale_discarded->Add(hs.pending.size());
        hs.pending.clear();
        hs.stale = false;
        hs.next_epoch = d.epoch;  // FoldReady advances it to d.epoch + 1
        snapshot_folds_.fetch_add(1, std::memory_order_acq_rel);
        m_snapshot_folds->Add();
        const uint64_t t0 = Tracer::Global().NowUs();
        FoldReady(sub, hs, PendingDelta{std::move(d.payload), std::move(d.records), wire_bytes},
                  keys);
        Tracer::Global().Record("resync.fold", t0, Tracer::Global().NowUs() - t0, keys);
        continue;
      }
      if (hs.stale) {
        // Pre-snapshot straggler: its increment is useless without the
        // lost prefix, and the snapshot in flight supersedes it.
        stale_discarded_.fetch_add(1, std::memory_order_acq_rel);
        m_stale_discarded->Add();
        continue;
      }
      if (d.epoch < hs.next_epoch) {
        // Duplicate (already folded) — fold-once means drop.
        deltas_orphaned_.fetch_add(1, std::memory_order_acq_rel);
        m_orphaned->Add();
        continue;
      }
      if (d.epoch > hs.next_epoch) {
        // Gap: an earlier epoch is still in flight.  Buffer; folding out
        // of order would make intermediate materializations depend on
        // arrival order.  A duplicate of an already-buffered epoch is a
        // duplicate, not a reorder.
        bool inserted =
            hs.pending
                .emplace(d.epoch,
                         PendingDelta{std::move(d.payload), std::move(d.records), wire_bytes})
                .second;
        if (inserted) {
          deltas_reordered_.fetch_add(1, std::memory_order_acq_rel);
          m_reordered->Add();
        } else {
          deltas_orphaned_.fetch_add(1, std::memory_order_acq_rel);
          m_orphaned->Add();
        }
        if (options_.gap_resync_threshold > 0 &&
            hs.pending.size() >= options_.gap_resync_threshold) {
          // The missing epoch is presumed lost (e.g. its frame failed
          // the CRC) — waiting longer only grows the buffer.  Declare
          // the stream stale and ask for a snapshot.
          hs.stale = true;
          stale_discarded_.fetch_add(hs.pending.size(), std::memory_order_acq_rel);
          m_stale_discarded->Add(hs.pending.size());
          hs.pending.clear();
          resyncs_.fetch_add(1, std::memory_order_acq_rel);
          m_resyncs->Add();
          Tracer::Global().Record("resync.request", Tracer::Global().NowUs(), 0,
                                  TraceKeys{d.subscription_id, d.host, hs.next_epoch});
          fire.emplace_back(d.subscription_id, d.host);
        }
        continue;
      }
      const TraceKeys keys{d.subscription_id, d.host, d.epoch};
      FoldReady(sub, hs, PendingDelta{std::move(d.payload), std::move(d.records), wire_bytes},
                keys);
      // The arrival may have closed a gap — fold the now-contiguous run.
      for (auto pit = hs.pending.begin();
           pit != hs.pending.end() && pit->first == hs.next_epoch;) {
        FoldReady(sub, hs, pit->second, TraceKeys{d.subscription_id, d.host, pit->first});
        pit = hs.pending.erase(pit);
      }
    }
  }
  if (requester) {
    for (const auto& [id, host] : fire) {
      requester(id, host);
    }
  }
}

bool SubscriptionManager::MarkStale(uint64_t id, HostId host) {
  static Counter* m_resyncs = MetricsRegistry::Global().GetCounter("sub.resyncs");
  static Counter* m_stale_discarded =
      MetricsRegistry::Global().GetCounter("sub.deltas_stale_discarded");
  std::lock_guard<std::mutex> state(state_mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return false;
  }
  auto hit = it->second.host_state.find(host);
  if (hit == it->second.host_state.end() || hit->second.stale) {
    return false;
  }
  HostState& hs = hit->second;
  hs.stale = true;
  // Stragglers are superseded by the snapshot; they land in the
  // stale_discarded bucket so the submitted-delta identity holds.
  stale_discarded_.fetch_add(hs.pending.size(), std::memory_order_acq_rel);
  m_stale_discarded->Add(hs.pending.size());
  hs.pending.clear();
  resyncs_.fetch_add(1, std::memory_order_acq_rel);
  m_resyncs->Add();
  Tracer::Global().Record("resync.request", Tracer::Global().NowUs(), 0,
                          TraceKeys{id, host, hs.next_epoch});
  return true;
}

void SubscriptionManager::SetResyncRequester(ResyncRequester fn) {
  std::lock_guard<std::mutex> state(state_mu_);
  resync_requester_ = std::move(fn);
}

bool SubscriptionManager::Resync(uint64_t id, HostId host) {
  MarkStale(id, host);  // idempotent; already-stale streams still resync
  // Find the in-process attachment, then tick its snapshot OUTSIDE
  // state_mu_ — TakeSnapshot holds TIB shard locks and the sink may
  // block on a full intake queue, which the drain worker folds out of
  // while holding state_mu_.
  EdgeAgent* agent = nullptr;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return false;
    }
    for (const AgentAttachment& att : it->second.attachments) {
      if (att.agent != nullptr && att.agent->host() == host) {
        agent = att.agent;
        break;
      }
    }
  }
  if (agent == nullptr) {
    return false;
  }
  return agent->ResyncStandingQuery(id) > 0;
}

size_t SubscriptionManager::stale_streams() const {
  std::lock_guard<std::mutex> state(state_mu_);
  size_t stale = 0;
  for (const auto& [id, sub] : subscriptions_) {
    for (const auto& [h, hs] : sub.host_state) {
      if (hs.stale) {
        ++stale;
      }
    }
  }
  return stale;
}

QueryResult SubscriptionManager::Materialize(uint64_t id) {
  static Counter* materializes = MetricsRegistry::Global().GetCounter("sub.materializes");
  static LatencyHistogram* mat_us =
      MetricsRegistry::Global().GetHistogram("sub.materialize_us");
  materializes->Add();
  TraceScope span("materialize", TraceKeys{id, 0, 0});
  const uint64_t t0 = Tracer::Global().NowUs();
  Flush();
  // Snapshot the folded state under state_mu_, but materialize and merge
  // outside it: the per-host sort/merge can take hundreds of ms at
  // large flow populations, and the drain worker needs state_mu_ to
  // keep folding (a stalled fold backs the bounded queue up into the
  // epoch tickers).
  StandingQuerySpec spec;
  std::vector<FlowBytesMap> folded;          // per-flow kinds, in host order
  std::vector<RecordFoldState> rec_folded;   // record kinds, in host order
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return QueryResult{};
    }
    const Subscription& sub = it->second;
    spec = sub.spec;
    for (HostId h : sub.hosts) {
      auto hit = sub.host_state.find(h);
      if (hit == sub.host_state.end()) {
        continue;
      }
      if (spec.IsRecordKind()) {
        // Copy only what materialization reads (items + count) — not
        // the `seen` dedup index, which would roughly double the copy
        // held under state_mu_.
        RecordFoldState snap;
        snap.flow_items = hit->second.records.flow_items;
        snap.count = hit->second.records.count;
        rec_folded.push_back(std::move(snap));
      } else {
        folded.push_back(hit->second.folded);
      }
    }
  }
  // The poll path's reduce, reproduced: per-host results merged
  // sequentially in host order (Controller::Execute phase 2).
  QueryResult merged;
  if (spec.IsRecordKind()) {
    for (const RecordFoldState& state : rec_folded) {
      QueryResult host_result = MaterializeStandingRecords(spec, state);
      MergeQueryResult(merged, host_result);
    }
  } else {
    for (const FlowBytesMap& per_flow : folded) {
      QueryResult host_result = MaterializeStandingResult(spec, per_flow);
      MergeQueryResult(merged, host_result);
    }
  }
  mat_us->Record(Tracer::Global().NowUs() - t0);
  return merged;
}

SubscriptionManagerStats SubscriptionManager::stats() const {
  const MpscChannelStats ch = channel_.stats();
  SubscriptionManagerStats out;
  out.deltas_submitted = ch.submitted;
  out.blocked_enqueues = ch.blocked_enqueues;
  out.batches = ch.batches;
  out.deltas_folded = deltas_folded_.load(std::memory_order_acquire);
  out.deltas_reordered = deltas_reordered_.load(std::memory_order_acquire);
  out.deltas_orphaned = deltas_orphaned_.load(std::memory_order_acquire);
  out.delta_bytes = delta_bytes_.load(std::memory_order_acquire);
  out.flow_updates = flow_updates_.load(std::memory_order_acquire);
  out.resyncs = resyncs_.load(std::memory_order_acquire);
  out.snapshot_folds = snapshot_folds_.load(std::memory_order_acquire);
  out.deltas_stale_discarded = stale_discarded_.load(std::memory_order_acquire);
  return out;
}

SubscriptionInfo SubscriptionManager::info(uint64_t id) const {
  std::lock_guard<std::mutex> state(state_mu_);
  SubscriptionInfo out;
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return out;
  }
  const Subscription& sub = it->second;
  out.id = id;
  out.spec = sub.spec;
  out.hosts = sub.hosts.size();
  out.deltas_folded = sub.deltas_folded;
  out.delta_bytes = sub.delta_bytes;
  for (const auto& [h, hs] : sub.host_state) {
    out.pending_gaps += hs.pending.size();
  }
  return out;
}

size_t SubscriptionManager::subscription_count() const {
  std::lock_guard<std::mutex> state(state_mu_);
  return subscriptions_.size();
}

}  // namespace pathdump
