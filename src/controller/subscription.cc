#include "src/controller/subscription.h"

#include <algorithm>
#include <utility>

#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"

namespace pathdump {

namespace {

// True on the drain worker — lets Flush() detect reentrancy.
thread_local bool tl_inside_subscription_drain = false;

}  // namespace

SubscriptionManager::SubscriptionManager(Controller* controller,
                                         SubscriptionManagerOptions options)
    : controller_(controller), options_(options) {
  drain_ = std::thread([this] { DrainLoop(); });
}

SubscriptionManager::~SubscriptionManager() {
  // Detach agent-side accumulators first so no new delta is produced,
  // then drain what was already accepted.  Detaching happens outside
  // state_mu_ (it takes agent registration + TIB shard locks).
  std::vector<Subscription> detach;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    for (auto& [id, sub] : subscriptions_) {
      detach.push_back(std::move(sub));
    }
    subscriptions_.clear();
  }
  for (Subscription& sub : detach) {
    DetachAgents(sub);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  drain_.join();  // DrainLoop empties the queue before exiting
}

uint64_t SubscriptionManager::Subscribe(const std::vector<HostId>& hosts,
                                        const StandingQuerySpec& spec, SimTime epoch_period) {
  // Publish the subscription (hosts + fold state) BEFORE attaching any
  // agent-side hook: with a periodic epoch ticker the first delta can
  // arrive the moment a hook exists, and it must find the subscription
  // — an orphaned epoch 1 would leave the accumulator ahead of the
  // fold state and wedge that host's in-order fold for good.
  Subscription sub;
  sub.spec = spec;
  std::vector<EdgeAgent*> agents;
  for (HostId h : hosts) {
    EdgeAgent* agent = controller_->agent(h);
    if (agent == nullptr) {
      continue;  // skipped exactly like a poll Execute
    }
    sub.hosts.push_back(h);
    sub.host_state.emplace(h, HostState{});
    agents.push_back(agent);
  }
  uint64_t id;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    id = next_subscription_id_++;
    subscriptions_.emplace(id, std::move(sub));
  }
  // Attach outside state_mu_: registering the accumulator takes every
  // TIB shard lock on the agent, which may be mid-insert.
  std::vector<AgentAttachment> attachments;
  attachments.reserve(agents.size());
  for (EdgeAgent* agent : agents) {
    AgentAttachment att;
    att.agent = agent;
    att.standing_id = agent->RegisterStandingQuery(
        id, spec, [this](QueryDelta&& delta) { SubmitDelta(std::move(delta)); });
    if (epoch_period > 0) {
      const int standing_id = att.standing_id;
      att.periodic_id = agent->InstallQuery(
          epoch_period, [standing_id](EdgeAgent& a, SimTime) { a.EpochTickOne(standing_id); });
    }
    attachments.push_back(att);
  }
  bool unsubscribed_meanwhile = false;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = subscriptions_.find(id);
    if (it != subscriptions_.end()) {
      it->second.attachments = std::move(attachments);
    } else {
      unsubscribed_meanwhile = true;
    }
  }
  if (unsubscribed_meanwhile) {
    // A concurrent Unsubscribe(id) won the race before the attachments
    // landed; take back what was just installed.
    Subscription torn_down;
    torn_down.attachments = std::move(attachments);
    DetachAgents(torn_down);
  }
  return id;
}

void SubscriptionManager::DetachAgents(Subscription& sub) {
  for (AgentAttachment& att : sub.attachments) {
    if (att.agent == nullptr) {
      continue;
    }
    if (att.periodic_id >= 0) {
      att.agent->UninstallQuery(att.periodic_id);
    }
    att.agent->UnregisterStandingQuery(att.standing_id);
    att.agent = nullptr;
  }
}

void SubscriptionManager::Unsubscribe(uint64_t id) {
  std::unique_lock<std::mutex> state(state_mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return;
  }
  Subscription sub = std::move(it->second);
  subscriptions_.erase(it);
  state.unlock();
  // Hook removal takes the agent's TIB shard locks; done outside
  // state_mu_ so the drain worker never waits on an agent's data path.
  DetachAgents(sub);
}

void SubscriptionManager::TickEpoch() {
  // Snapshot the attachments, then tick outside state_mu_: a full
  // intake queue blocks the ticking thread, and the drain worker needs
  // state_mu_ to fold its way out.
  std::vector<std::pair<EdgeAgent*, int>> targets;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    for (auto& [id, sub] : subscriptions_) {
      for (const AgentAttachment& att : sub.attachments) {
        if (att.agent != nullptr) {
          targets.emplace_back(att.agent, att.standing_id);
        }
      }
    }
  }
  for (auto& [agent, standing_id] : targets) {
    agent->EpochTickOne(standing_id);
  }
}

bool SubscriptionManager::SubmitDelta(QueryDelta delta) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    return false;
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.blocked_enqueues;
    space_cv_.wait(lock, [this] { return queue_.size() < options_.queue_capacity || stop_; });
    if (stop_) {
      return false;
    }
  }
  delta.seq = next_seq_++;
  queue_.push_back(std::move(delta));
  ++accepted_;
  ++stats_.deltas_submitted;
  work_cv_.notify_one();
  return true;
}

void SubscriptionManager::Flush() {
  if (tl_inside_subscription_drain) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = accepted_;
  flush_cv_.wait(lock, [this, target] { return processed_ >= target; });
}

void SubscriptionManager::DrainLoop() {
  tl_inside_subscription_drain = true;
  std::vector<QueryDelta> batch;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) {
        return;
      }
      continue;
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    batch.clear();
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    lock.unlock();
    space_cv_.notify_all();

    FoldBatch(batch);

    lock.lock();
    processed_ += take;
    flush_cv_.notify_all();
  }
}

void SubscriptionManager::FoldReady(Subscription& sub, HostState& hs,
                                    const FlowBytesDelta& payload, size_t wire_bytes) {
  payload.ApplyTo(hs.folded);
  ++hs.next_epoch;
  ++sub.deltas_folded;
  sub.delta_bytes += wire_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.deltas_folded;
  stats_.flow_updates += payload.items.size();
  stats_.delta_bytes += wire_bytes;
}

void SubscriptionManager::FoldBatch(std::vector<QueryDelta>& batch) {
  std::lock_guard<std::mutex> state(state_mu_);
  for (QueryDelta& d : batch) {
    auto it = subscriptions_.find(d.subscription_id);
    if (it == subscriptions_.end()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deltas_orphaned;
      continue;
    }
    Subscription& sub = it->second;
    auto hit = sub.host_state.find(d.host);
    if (hit == sub.host_state.end()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deltas_orphaned;
      continue;
    }
    HostState& hs = hit->second;
    if (d.epoch < hs.next_epoch) {
      // Duplicate (already folded) — fold-once means drop.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deltas_orphaned;
      continue;
    }
    if (d.epoch > hs.next_epoch) {
      // Gap: an earlier epoch is still in flight.  Buffer; folding out
      // of order would make intermediate materializations depend on
      // arrival order.  A duplicate of an already-buffered epoch is a
      // duplicate, not a reorder.
      const size_t wire_bytes = d.SerializedSize();
      bool inserted =
          hs.pending.emplace(d.epoch, PendingDelta{std::move(d.payload), wire_bytes}).second;
      std::lock_guard<std::mutex> lock(mu_);
      if (inserted) {
        ++stats_.deltas_reordered;
      } else {
        ++stats_.deltas_orphaned;
      }
      continue;
    }
    FoldReady(sub, hs, d.payload, d.SerializedSize());
    // The arrival may have closed a gap — fold the now-contiguous run.
    for (auto pit = hs.pending.begin();
         pit != hs.pending.end() && pit->first == hs.next_epoch;) {
      FoldReady(sub, hs, pit->second.payload, pit->second.wire_bytes);
      pit = hs.pending.erase(pit);
    }
  }
}

QueryResult SubscriptionManager::Materialize(uint64_t id) {
  Flush();
  // Snapshot the folded maps under state_mu_, but materialize and merge
  // outside it: the per-host sort/merge can take hundreds of ms at
  // large flow populations, and the drain worker needs state_mu_ to
  // keep folding (a stalled fold backs the bounded queue up into the
  // epoch tickers).
  StandingQuerySpec spec;
  std::vector<FlowBytesMap> folded;  // in host (merge) order
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return QueryResult{};
    }
    const Subscription& sub = it->second;
    spec = sub.spec;
    folded.reserve(sub.hosts.size());
    for (HostId h : sub.hosts) {
      auto hit = sub.host_state.find(h);
      if (hit != sub.host_state.end()) {
        folded.push_back(hit->second.folded);
      }
    }
  }
  // The poll path's reduce, reproduced: per-host results merged
  // sequentially in host order (Controller::Execute phase 2).
  QueryResult merged;
  for (const FlowBytesMap& per_flow : folded) {
    QueryResult host_result = MaterializeStandingResult(spec, per_flow);
    MergeQueryResult(merged, host_result);
  }
  return merged;
}

SubscriptionManagerStats SubscriptionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

SubscriptionInfo SubscriptionManager::info(uint64_t id) const {
  std::lock_guard<std::mutex> state(state_mu_);
  SubscriptionInfo out;
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return out;
  }
  const Subscription& sub = it->second;
  out.id = id;
  out.spec = sub.spec;
  out.hosts = sub.hosts.size();
  out.deltas_folded = sub.deltas_folded;
  out.delta_bytes = sub.delta_bytes;
  for (const auto& [h, hs] : sub.host_state) {
    out.pending_gaps += hs.pending.size();
  }
  return out;
}

size_t SubscriptionManager::subscription_count() const {
  std::lock_guard<std::mutex> state(state_mu_);
  return subscriptions_.size();
}

}  // namespace pathdump
