#include "src/controller/controller.h"

#include <algorithm>
#include <chrono>

namespace pathdump {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

void Controller::RegisterAgent(EdgeAgent* agent) {
  if (agents_.emplace(agent->host(), agent).second) {
    host_order_.push_back(agent->host());
  }
}

EdgeAgent* Controller::agent(HostId host) const {
  auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second;
}

std::vector<HostId> Controller::registered_hosts() const { return host_order_; }

void Controller::SetWorkerThreads(size_t n) {
  if (n <= 1) {
    pool_.reset();
  } else {
    pool_ = std::make_unique<ThreadPool>(n);
  }
}

Controller::TimedResult Controller::RunOn(EdgeAgent& agent, const QueryFn& query) const {
  auto t0 = std::chrono::steady_clock::now();
  TimedResult out;
  out.result = query(agent);
  // Measured in-memory execution plus the modeled Flask/MongoDB service
  // stack of the paper's agents (see RpcModel).
  out.compute_seconds = SecondsSince(t0) + rpc_.per_query_service_seconds;
  return out;
}

void Controller::RunAll(const std::vector<EdgeAgent*>& agents, const QueryFn& query,
                        std::vector<TimedResult>& results) const {
  results.resize(agents.size());
  auto run_one = [&](size_t i) {
    if (agents[i] != nullptr) {
      results[i] = RunOn(*agents[i], query);
    }
  };
  if (pool_ != nullptr && agents.size() > 1) {
    pool_->ParallelFor(agents.size(), run_one);
  } else {
    for (size_t i = 0; i < agents.size(); ++i) {
      run_one(i);
    }
  }
}

std::pair<QueryResult, QueryExecStats> Controller::Execute(const std::vector<HostId>& hosts,
                                                           const QueryFn& query) const {
  QueryExecStats stats;
  stats.hosts = hosts.size();

  // Phase 1 — fan-out: every host executes the query independently (on the
  // worker pool when configured).  Results land in per-host slots, so the
  // execution schedule cannot influence anything downstream.
  std::vector<EdgeAgent*> targets;
  targets.reserve(hosts.size());
  for (HostId h : hosts) {
    targets.push_back(agent(h));
  }
  std::vector<TimedResult> results;
  RunAll(targets, query, results);

  // Phase 2 — deterministic reduce, sequential in host order; each modeled
  // response arrives after request transfer + execution + response
  // transfer.  Controller-side aggregation is sequential: measure the real
  // merge.
  QueryResult merged;
  double latest_arrival = 0;
  double merge_seconds = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == nullptr) {
      continue;
    }
    TimedResult& r = results[i];
    size_t resp_bytes = SerializedBytes(r.result);
    stats.network_bytes += rpc_.request_bytes + resp_bytes;
    stats.response_bytes += resp_bytes;
    double arrival = rpc_.rtt_seconds + rpc_.TransferSeconds(resp_bytes) + r.compute_seconds;
    latest_arrival = std::max(latest_arrival, arrival);
    stats.max_host_compute_seconds = std::max(stats.max_host_compute_seconds, r.compute_seconds);

    auto t0 = std::chrono::steady_clock::now();
    MergeQueryResult(merged, r.result);
    merge_seconds += SecondsSince(t0);
  }
  stats.controller_compute_seconds = merge_seconds;
  stats.response_time_seconds = latest_arrival + merge_seconds;
  return {std::move(merged), stats};
}

std::pair<QueryResult, QueryExecStats> Controller::ExecuteMultiLevel(
    const std::vector<HostId>& hosts, const QueryFn& query, int top_fanout, int fanout) const {
  QueryExecStats stats;
  stats.hosts = hosts.size();
  AggregationTree tree = BuildAggregationTree(hosts, top_fanout, fanout);

  // Phase 1 — fan-out: every tree node's own query execution is
  // independent of every other's, so all of them run across the worker
  // pool at once.  The tree is redistributed downward (§3.2); in the real
  // system all hosts execute concurrently too.
  std::vector<EdgeAgent*> node_agents;
  node_agents.reserve(tree.nodes.size());
  for (const AggregationNode& node : tree.nodes) {
    node_agents.push_back(agent(node.host));
  }
  std::vector<TimedResult> node_results;
  RunAll(node_agents, query, node_results);

  struct NodeOutcome {
    QueryResult result;
    double ready_at = 0;  // seconds after query dispatch
  };

  // Phase 2 — deterministic post-order reduce.  Every interior merge is
  // real, measured work in fixed child order; transfers are modeled per
  // edge.
  std::function<NodeOutcome(int)> eval = [&](int idx) -> NodeOutcome {
    const AggregationNode& node = tree.nodes[size_t(idx)];
    NodeOutcome out;
    EdgeAgent* a = node_agents[size_t(idx)];
    double own_exec = 0;
    if (a != nullptr) {
      TimedResult& r = node_results[size_t(idx)];
      own_exec = r.compute_seconds;
      stats.max_host_compute_seconds = std::max(stats.max_host_compute_seconds, own_exec);
      stats.network_bytes += rpc_.request_bytes;
      out.result = std::move(r.result);
    }
    double children_ready = 0;
    double merge_seconds = 0;
    for (int child : node.children) {
      NodeOutcome c = eval(child);
      size_t bytes = SerializedBytes(c.result);
      stats.network_bytes += bytes;
      stats.response_bytes += bytes;
      children_ready =
          std::max(children_ready, c.ready_at + rpc_.rtt_seconds / 2 + rpc_.TransferSeconds(bytes));
      auto t0 = std::chrono::steady_clock::now();
      MergeQueryResult(out.result, c.result);
      merge_seconds += SecondsSince(t0);
    }
    out.ready_at = std::max(own_exec, children_ready) + merge_seconds;
    return out;
  };

  QueryResult merged;
  double latest = 0;
  double controller_merge = 0;
  for (int root : tree.roots) {
    NodeOutcome r = eval(root);
    size_t bytes = SerializedBytes(r.result);
    stats.network_bytes += bytes;
    stats.response_bytes += bytes;
    latest = std::max(latest,
                      r.ready_at + rpc_.rtt_seconds / 2 + rpc_.TransferSeconds(bytes));
    auto t0 = std::chrono::steady_clock::now();
    MergeQueryResult(merged, r.result);
    controller_merge += SecondsSince(t0);
  }
  stats.controller_compute_seconds = controller_merge;
  // Dispatch down the tree costs half-RTT per level on the way in.
  double dispatch = rpc_.rtt_seconds / 2 * double(std::max(tree.depth(), 1));
  stats.response_time_seconds = dispatch + latest + controller_merge;
  return {std::move(merged), stats};
}

std::vector<int> Controller::Install(const std::vector<HostId>& hosts, SimTime period,
                                     EdgeAgent::PeriodicQuery body) const {
  std::vector<int> ids;
  ids.reserve(hosts.size());
  for (HostId h : hosts) {
    EdgeAgent* a = agent(h);
    ids.push_back(a == nullptr ? -1 : a->InstallQuery(period, body));
  }
  return ids;
}

void Controller::Uninstall(const std::vector<HostId>& hosts, const std::vector<int>& ids) const {
  for (size_t i = 0; i < hosts.size() && i < ids.size(); ++i) {
    EdgeAgent* a = agent(hosts[i]);
    if (a != nullptr && ids[i] >= 0) {
      a->UninstallQuery(ids[i]);
    }
  }
}

AlarmHandler Controller::MakeAlarmSink() {
  // Capture the controller, not the pipeline, so sinks handed to agents
  // before ConfigureAlarmPipeline keep feeding the replacement.
  return [this](const Alarm& alarm) { alarm_pipeline_->Submit(alarm); };
}

void Controller::SubscribeAlarms(AlarmHandler handler) {
  subscribers_.push_back(handler);
  alarm_pipeline_->Subscribe(std::move(handler));
}

void Controller::ConfigureAlarmPipeline(AlarmPipelineOptions options) {
  // The old pipeline's destructor drains it first, so nothing already
  // submitted is lost to subscribers — only the log is reset.
  alarm_pipeline_ = std::make_unique<AlarmPipeline>(options);
  for (const AlarmHandler& sub : subscribers_) {
    alarm_pipeline_->Subscribe(sub);
  }
}

const std::vector<Alarm>& Controller::alarm_log() const {
  alarm_pipeline_->Flush();
  return alarm_pipeline_->log();
}

}  // namespace pathdump
