#include "src/controller/controller.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace pathdump {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

void Controller::RegisterAgent(EdgeAgent* agent) {
  // Overwrite on re-registration: a restarted agent (chaos harness, real
  // crash recovery) replaces its predecessor's pointer but keeps the
  // host's original position in the merge order.
  auto [it, inserted] = agents_.insert_or_assign(agent->host(), agent);
  if (inserted) {
    host_order_.push_back(agent->host());
  }
}

EdgeAgent* Controller::agent(HostId host) const {
  auto it = agents_.find(host);
  return it == agents_.end() ? nullptr : it->second;
}

std::vector<HostId> Controller::registered_hosts() const { return host_order_; }

void Controller::SetWorkerThreads(size_t n) {
  if (n <= 1) {
    pool_.reset();
  } else {
    pool_ = std::make_unique<ThreadPool>(n);
  }
}

Controller::TimedResult Controller::RunOn(EdgeAgent& agent, const QueryFn& query) const {
  TraceScope span("query.scan", TraceKeys{0, uint32_t(agent.host()), 0});
  auto t0 = std::chrono::steady_clock::now();
  TimedResult out;
  out.result = query(agent);
  // Measured in-memory execution plus the modeled Flask/MongoDB service
  // stack of the paper's agents (see RpcModel).
  out.compute_seconds = SecondsSince(t0) + rpc_.per_query_service_seconds;
  return out;
}

void Controller::RunAll(const std::vector<EdgeAgent*>& agents, const QueryFn& query,
                        std::vector<TimedResult>& results) const {
  results.resize(agents.size());
  auto run_one = [&](size_t i) {
    if (agents[i] != nullptr) {
      results[i] = RunOn(*agents[i], query);
    }
  };
  if (pool_ != nullptr && agents.size() > 1) {
    pool_->ParallelFor(agents.size(), run_one);
  } else {
    for (size_t i = 0; i < agents.size(); ++i) {
      run_one(i);
    }
  }
}

std::pair<QueryResult, QueryExecStats> Controller::Execute(const std::vector<HostId>& hosts,
                                                           const QueryFn& query) const {
  static Counter* executes = MetricsRegistry::Global().GetCounter("query.executes");
  executes->Add();
  TraceScope span("query.execute", TraceKeys{});
  QueryExecStats stats;
  stats.hosts = hosts.size();

  // Phase 1 — fan-out: every host executes the query independently (on the
  // worker pool when configured).  Results land in per-host slots, so the
  // execution schedule cannot influence anything downstream.
  std::vector<EdgeAgent*> targets;
  targets.reserve(hosts.size());
  for (HostId h : hosts) {
    targets.push_back(agent(h));
  }
  std::vector<TimedResult> results;
  RunAll(targets, query, results);

  // Phase 2 — deterministic reduce, sequential in host order; each modeled
  // response arrives after request transfer + execution + response
  // transfer.  Controller-side aggregation is sequential: measure the real
  // merge.
  TraceScope reduce_span("query.reduce", TraceKeys{});
  QueryResult merged;
  double latest_arrival = 0;
  double merge_seconds = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == nullptr) {
      continue;
    }
    TimedResult& r = results[i];
    size_t resp_bytes = SerializedBytes(r.result);
    stats.network_bytes += rpc_.request_bytes + resp_bytes;
    stats.response_bytes += resp_bytes;
    double arrival = rpc_.rtt_seconds + rpc_.TransferSeconds(resp_bytes) + r.compute_seconds;
    latest_arrival = std::max(latest_arrival, arrival);
    stats.max_host_compute_seconds = std::max(stats.max_host_compute_seconds, r.compute_seconds);

    auto t0 = std::chrono::steady_clock::now();
    MergeQueryResult(merged, r.result);
    merge_seconds += SecondsSince(t0);
  }
  stats.controller_compute_seconds = merge_seconds;
  stats.response_time_seconds = latest_arrival + merge_seconds;
  return {std::move(merged), stats};
}

std::pair<QueryResult, QueryExecStats> Controller::ExecuteMultiLevel(
    const std::vector<HostId>& hosts, const QueryFn& query, int top_fanout, int fanout) const {
  static Counter* executes = MetricsRegistry::Global().GetCounter("query.executes");
  executes->Add();
  TraceScope span("query.multilevel", TraceKeys{});
  QueryExecStats stats;
  stats.hosts = hosts.size();
  AggregationTree tree = BuildAggregationTree(hosts, top_fanout, fanout);
  const size_t n = tree.nodes.size();

  std::vector<EdgeAgent*> node_agents(n, nullptr);
  std::vector<int> parent(n, -1);
  for (size_t i = 0; i < n; ++i) {
    node_agents[i] = agent(tree.nodes[i].host);
    for (int child : tree.nodes[i].children) {
      parent[size_t(child)] = int(i);
    }
  }

  // Phase 1 — pipelined fan-out + reduce.  Every tree node's own query
  // execution is an independent work item, and a node's subtree merge
  // runs as soon as its own execution AND all of its children's subtree
  // merges have finished — on whichever worker completed the last
  // dependency.  Subtree reduction therefore overlaps still-running
  // executions elsewhere in the tree instead of waiting for a full
  // fan-out barrier.  Determinism is untouched: each node's merge
  // happens exactly once, in fixed child order, over children that are
  // already final — so the payload bytes cannot depend on scheduling.
  std::vector<TimedResult> own(n);
  std::vector<QueryResult> merged_subtree(n);   // final subtree result per node
  std::vector<double> merge_seconds(n, 0.0);    // measured per-node merge work
  std::vector<size_t> subtree_bytes(n, 0);      // SerializedBytes(merged_subtree)
  // Dependencies outstanding per node: own execution + each child's
  // completed subtree merge.  The release/acquire decrement chain also
  // publishes the children's merged results to the merging worker.
  std::vector<std::atomic<int>> pending(n);
  for (size_t i = 0; i < n; ++i) {
    pending[i].store(int(tree.nodes[i].children.size()) + 1, std::memory_order_relaxed);
  }

  auto merge_node = [&](size_t i) {
    auto t0 = std::chrono::steady_clock::now();
    merged_subtree[i] = std::move(own[i].result);
    for (int child : tree.nodes[i].children) {
      MergeQueryResult(merged_subtree[i], merged_subtree[size_t(child)]);
      // The child's size was recorded when it merged; release its
      // payload now — otherwise a deep tree over list-shaped results
      // holds every level's concatenation live at once.
      merged_subtree[size_t(child)] = QueryResult{};
    }
    merge_seconds[i] = SecondsSince(t0);
    // A pure function of the (deterministic) result — safe to compute on
    // whichever worker merged; charged during the sequential pass below.
    subtree_bytes[i] = SerializedBytes(merged_subtree[i]);
  };
  // Completes one dependency of node `cur` and, if it was the last,
  // merges and climbs: the finished subtree is itself a dependency of
  // the parent.  The worker that closes the final dependency of the
  // whole tree carries the reduction all the way to the roots.
  auto complete = [&](size_t i) {
    int cur = int(i);
    while (cur >= 0 && pending[size_t(cur)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      merge_node(size_t(cur));
      cur = parent[size_t(cur)];
    }
  };
  auto run_item = [&](size_t i) {
    if (node_agents[i] != nullptr) {
      own[i] = RunOn(*node_agents[i], query);
    }
    complete(i);
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(n, run_item);
  } else {
    for (size_t i = 0; i < n; ++i) {
      run_item(i);
    }
  }

  // Phase 2 — deterministic modeled accounting, sequential.  Byte
  // charges and the response-time recurrence depend only on the tree
  // shape and the (deterministic) per-subtree payload sizes; the merge
  // and execution wall-times were measured above.
  std::function<double(int)> ready_at = [&](int idx) -> double {
    const AggregationNode& node = tree.nodes[size_t(idx)];
    double own_exec = 0;
    if (node_agents[size_t(idx)] != nullptr) {
      own_exec = own[size_t(idx)].compute_seconds;
      stats.max_host_compute_seconds = std::max(stats.max_host_compute_seconds, own_exec);
      stats.network_bytes += rpc_.request_bytes;
    }
    double children_ready = 0;
    for (int child : node.children) {
      double child_ready = ready_at(child);
      size_t bytes = subtree_bytes[size_t(child)];
      stats.network_bytes += bytes;
      stats.response_bytes += bytes;
      children_ready = std::max(children_ready,
                                child_ready + rpc_.rtt_seconds / 2 + rpc_.TransferSeconds(bytes));
    }
    return std::max(own_exec, children_ready) + merge_seconds[size_t(idx)];
  };

  QueryResult merged;
  double latest = 0;
  double controller_merge = 0;
  for (int root : tree.roots) {
    double root_ready = ready_at(root);
    size_t bytes = subtree_bytes[size_t(root)];
    stats.network_bytes += bytes;
    stats.response_bytes += bytes;
    latest = std::max(latest,
                      root_ready + rpc_.rtt_seconds / 2 + rpc_.TransferSeconds(bytes));
    auto t0 = std::chrono::steady_clock::now();
    MergeQueryResult(merged, merged_subtree[size_t(root)]);
    controller_merge += SecondsSince(t0);
  }
  stats.controller_compute_seconds = controller_merge;
  // Dispatch down the tree costs half-RTT per level on the way in.
  double dispatch = rpc_.rtt_seconds / 2 * double(std::max(tree.depth(), 1));
  stats.response_time_seconds = dispatch + latest + controller_merge;
  return {std::move(merged), stats};
}

std::vector<int> Controller::Install(const std::vector<HostId>& hosts, SimTime period,
                                     EdgeAgent::PeriodicQuery body) const {
  std::vector<int> ids;
  ids.reserve(hosts.size());
  for (HostId h : hosts) {
    EdgeAgent* a = agent(h);
    ids.push_back(a == nullptr ? -1 : a->InstallQuery(period, body));
  }
  return ids;
}

void Controller::Uninstall(const std::vector<HostId>& hosts, const std::vector<int>& ids) const {
  for (size_t i = 0; i < hosts.size() && i < ids.size(); ++i) {
    EdgeAgent* a = agent(hosts[i]);
    if (a != nullptr && ids[i] >= 0) {
      a->UninstallQuery(ids[i]);
    }
  }
}

AlarmHandler Controller::MakeAlarmSink() {
  // Capture the controller, not the pipeline, so sinks handed to agents
  // before ConfigureAlarmPipeline keep feeding the replacement.
  return [this](const Alarm& alarm) { alarm_pipeline_->Submit(alarm); };
}

void Controller::SubscribeAlarms(AlarmHandler handler) {
  subscribers_.push_back(handler);
  alarm_pipeline_->Subscribe(std::move(handler));
}

void Controller::ConfigureAlarmPipeline(AlarmPipelineOptions options) {
  // The old pipeline's destructor drains it first, so nothing already
  // submitted is lost to subscribers — only the log is reset.
  alarm_pipeline_ = std::make_unique<AlarmPipeline>(options);
  for (const AlarmHandler& sub : subscribers_) {
    alarm_pipeline_->Subscribe(sub);
  }
}

const std::vector<Alarm>& Controller::alarm_log() const {
  alarm_pipeline_->Flush();
  return alarm_pipeline_->log();
}

}  // namespace pathdump
