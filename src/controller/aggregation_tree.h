// Multi-level aggregation tree for distributed queries (§3.2).
//
// Inspired by Dremel/iMR, the controller builds a logical tree over the
// queried end hosts and distributes it alongside the query; every interior
// host executes the query locally *and* merges its children's results, so
// aggregation compute is spread across the fleet instead of serialized at
// the controller.  The paper's evaluation uses a 4-level tree over 112
// hosts with 7 nodes under the controller and fanout 4 below (§5.1).

#ifndef PATHDUMP_SRC_CONTROLLER_AGGREGATION_TREE_H_
#define PATHDUMP_SRC_CONTROLLER_AGGREGATION_TREE_H_

#include <vector>

#include "src/common/types.h"

namespace pathdump {

struct AggregationNode {
  HostId host = kInvalidNode;
  int level = 1;  // 1 = directly under the controller
  std::vector<int> children;  // indices into AggregationTree::nodes
};

struct AggregationTree {
  std::vector<AggregationNode> nodes;
  std::vector<int> roots;  // level-1 node indices

  size_t size() const { return nodes.size(); }
  int depth() const;
};

// Builds a tree over `hosts`: the first `top_fanout` hosts sit at level 1;
// below that every node takes `fanout` children until hosts run out.
AggregationTree BuildAggregationTree(const std::vector<HostId>& hosts, int top_fanout = 7,
                                     int fanout = 4);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CONTROLLER_AGGREGATION_TREE_H_
