#include "src/controller/alarm_pipeline.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pathdump {

namespace {

// True on the drain worker and on dispatch-pool threads while they are
// running subscriber callbacks — lets Flush() detect reentrancy.
thread_local bool tl_inside_pipeline = false;

}  // namespace

AlarmPipeline::AlarmPipeline(AlarmPipelineOptions options) : options_(options) {
  if (options_.dispatch_workers > 1) {
    dispatch_pool_ = std::make_unique<ThreadPool>(options_.dispatch_workers);
  }
  drain_ = std::thread([this] { DrainLoop(); });
}

AlarmPipeline::~AlarmPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  drain_.join();  // DrainLoop empties the queue before exiting
}

bool AlarmPipeline::Submit(const Alarm& alarm) {
  std::unique_lock<std::mutex> lock(mu_);
  // Once shutdown has begun the drain worker may already be gone; an
  // enqueue now could sit in the queue forever.  Reject instead — the
  // drain-everything guarantee covers alarms accepted before ~AlarmPipeline.
  if (stop_) {
    ++stats_.dropped;
    return false;
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overflow == AlarmOverflowPolicy::kDropNewest) {
      ++stats_.dropped;
      return false;
    }
    ++stats_.blocked_enqueues;
    space_cv_.wait(lock, [this] {
      return queue_.size() < options_.queue_capacity || stop_;
    });
    if (stop_) {
      ++stats_.dropped;
      return false;
    }
  }
  Alarm stamped = alarm;
  stamped.seq = next_seq_++;
  queue_.push_back(std::move(stamped));
  ++stats_.submitted;
  work_cv_.notify_one();
  return true;
}

void AlarmPipeline::Subscribe(AlarmHandler handler) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subscribers_.push_back(std::move(handler));
}

size_t AlarmPipeline::subscriber_count() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subscribers_.size();
}

void AlarmPipeline::Flush() {
  if (tl_inside_pipeline) {
    return;  // called from a subscriber: waiting would deadlock the drain
  }
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = stats_.submitted;
  flush_cv_.wait(lock, [this, target] { return processed_ >= target; });
}

AlarmPipelineStats AlarmPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AlarmPipeline::DrainLoop() {
  tl_inside_pipeline = true;
  std::vector<Alarm> batch;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) {
        return;
      }
      continue;
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    batch.clear();
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, take);
    lock.unlock();
    space_cv_.notify_all();

    ProcessBatch(batch);

    lock.lock();
    processed_ += take;
    flush_cv_.notify_all();
  }
}

void AlarmPipeline::ProcessBatch(std::vector<Alarm>& batch) {
  // Suppression runs on the drain worker in sequence order, so the set of
  // survivors depends only on submission order, never on dispatch timing.
  std::vector<Alarm> survivors;
  survivors.reserve(batch.size());
  uint64_t suppressed = 0;
  for (Alarm& a : batch) {
    if (options_.suppression_window > 0) {
      SuppressKey key{a.host, a.flow, a.reason};
      auto it = last_admitted_.find(key);
      if (it != last_admitted_.end() && a.at >= it->second &&
          a.at - it->second < options_.suppression_window) {
        ++suppressed;
        continue;
      }
      last_admitted_[key] = a.at;
      newest_at_ = std::max(newest_at_, a.at);
    }
    survivors.push_back(std::move(a));
  }
  // Keep the dedup table bounded: ephemeral flows (one alarm each) would
  // otherwise pin an entry forever.  Entries whose window has long since
  // expired can never suppress again, so dropping them is lossless.
  if (last_admitted_.size() > kSuppressPruneThreshold) {
    for (auto it = last_admitted_.begin(); it != last_admitted_.end();) {
      if (newest_at_ - it->second >= options_.suppression_window) {
        it = last_admitted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.suppressed += suppressed;
    stats_.delivered += survivors.size();
  }
  if (survivors.empty()) {
    return;
  }
  for (const Alarm& a : survivors) {
    log_.push_back(a);
  }

  std::vector<AlarmHandler> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs = subscribers_;
  }
  if (subs.empty()) {
    return;
  }
  // Fan out across subscribers: each subscriber consumes the whole batch
  // on one worker, preserving per-subscriber sequence order.  Exceptions
  // are swallowed per (subscriber, alarm) so a throwing subscriber costs
  // only its own alarm — never other subscribers' deliveries or the drain
  // worker — and the behavior is identical at every worker count.
  auto dispatch_one = [&](size_t si) {
    const bool prev = tl_inside_pipeline;
    tl_inside_pipeline = true;
    for (const Alarm& a : survivors) {
      try {
        subs[si](a);
      } catch (const std::exception& e) {
        Logf(LogLevel::kWarn, "alarm subscriber %zu threw on seq %llu: %s", si,
             (unsigned long long)a.seq, e.what());
      } catch (...) {
        Logf(LogLevel::kWarn, "alarm subscriber %zu threw on seq %llu", si,
             (unsigned long long)a.seq);
      }
    }
    tl_inside_pipeline = prev;
  };
  if (dispatch_pool_ != nullptr && subs.size() > 1) {
    dispatch_pool_->ParallelFor(subs.size(), dispatch_one);
  } else {
    for (size_t i = 0; i < subs.size(); ++i) {
      dispatch_one(i);
    }
  }
}

}  // namespace pathdump
