#include "src/controller/alarm_pipeline.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace pathdump {

namespace {

// Alarm storms submit from many agent threads at once; tracing every
// Submit would dominate the span ring.  1-in-256 per thread keeps storm
// shape visible at negligible cost.
constexpr uint32_t kSubmitSampleMask = 255;

bool SampleThisSubmit() {
  thread_local uint32_t counter = 0;
  return (counter++ & kSubmitSampleMask) == 0;
}

}  // namespace

AlarmPipeline::AlarmPipeline(AlarmPipelineOptions options)
    : options_(options),
      channel_(MpscChannelOptions{options.queue_capacity, options.max_batch, options.overflow,
                                  "alarm.channel"},
               [this](std::vector<Alarm>& batch) { ProcessBatch(batch); }) {
  if (options_.dispatch_workers > 1) {
    dispatch_pool_ = std::make_unique<ThreadPool>(options_.dispatch_workers);
  }
}

bool AlarmPipeline::Submit(const Alarm& alarm) {
  if (MetricsRegistry::enabled() && SampleThisSubmit()) {
    TraceScope span("alarm.submit", TraceKeys{0, alarm.host, 0});
    return channel_.Submit(alarm);
  }
  return channel_.Submit(alarm);
}

void AlarmPipeline::Subscribe(AlarmHandler handler) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subscribers_.push_back(std::move(handler));
}

size_t AlarmPipeline::subscriber_count() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subscribers_.size();
}

AlarmPipelineStats AlarmPipeline::stats() const {
  const MpscChannelStats ch = channel_.stats();
  AlarmPipelineStats out;
  out.submitted = ch.submitted;
  out.dropped = ch.dropped;
  out.blocked_enqueues = ch.blocked_enqueues;
  out.batches = ch.batches;
  out.max_batch = ch.max_batch;
  out.suppressed = suppressed_.load(std::memory_order_acquire);
  out.delivered = delivered_.load(std::memory_order_acquire);
  return out;
}

void AlarmPipeline::ProcessBatch(std::vector<Alarm>& batch) {
  static Counter* m_suppressed = MetricsRegistry::Global().GetCounter("alarm.suppressed");
  static Counter* m_delivered = MetricsRegistry::Global().GetCounter("alarm.delivered");
  TraceScope drain_span("alarm.drain", TraceKeys{});
  // Suppression runs on the drain worker in sequence order, so the set of
  // survivors depends only on submission order, never on dispatch timing.
  std::vector<Alarm> survivors;
  survivors.reserve(batch.size());
  uint64_t suppressed = 0;
  for (Alarm& a : batch) {
    if (options_.suppression_window > 0) {
      SuppressKey key{a.host, a.flow, a.reason};
      auto it = last_admitted_.find(key);
      if (it != last_admitted_.end() && a.at >= it->second &&
          a.at - it->second < options_.suppression_window) {
        ++suppressed;
        continue;
      }
      last_admitted_[key] = a.at;
      newest_at_ = std::max(newest_at_, a.at);
    }
    survivors.push_back(std::move(a));
  }
  // Keep the dedup table bounded: ephemeral flows (one alarm each) would
  // otherwise pin an entry forever.  Entries whose window has long since
  // expired can never suppress again, so dropping them is lossless.
  if (last_admitted_.size() > kSuppressPruneThreshold) {
    for (auto it = last_admitted_.begin(); it != last_admitted_.end();) {
      if (newest_at_ - it->second >= options_.suppression_window) {
        it = last_admitted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  suppressed_.fetch_add(suppressed, std::memory_order_acq_rel);
  delivered_.fetch_add(survivors.size(), std::memory_order_acq_rel);
  m_suppressed->Add(suppressed);
  m_delivered->Add(survivors.size());
  if (survivors.empty()) {
    return;
  }
  for (const Alarm& a : survivors) {
    log_.push_back(a);
  }

  std::vector<AlarmHandler> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs = subscribers_;
  }
  if (subs.empty()) {
    return;
  }
  // Fan out across subscribers: each subscriber consumes the whole batch
  // on one worker, preserving per-subscriber sequence order.  Exceptions
  // are swallowed per (subscriber, alarm) so a throwing subscriber costs
  // only its own alarm — never other subscribers' deliveries or the drain
  // worker — and the behavior is identical at every worker count.
  auto dispatch_one = [&](size_t si) {
    // Subscribers may call Flush() (e.g. via Controller::alarm_log);
    // mark this thread as inside the channel so that returns immediately
    // instead of deadlocking the drain.
    MpscChannel<Alarm>::ReentrancyGuard inside(channel_);
    for (const Alarm& a : survivors) {
      try {
        subs[si](a);
      } catch (const std::exception& e) {
        Logf(LogLevel::kWarn, "alarm subscriber %zu threw on seq %llu: %s", si,
             (unsigned long long)a.seq, e.what());
      } catch (...) {
        Logf(LogLevel::kWarn, "alarm subscriber %zu threw on seq %llu", si,
             (unsigned long long)a.seq);
      }
    }
  };
  TraceScope dispatch_span("alarm.dispatch", TraceKeys{});
  if (dispatch_pool_ != nullptr && subs.size() > 1) {
    dispatch_pool_->ParallelFor(subs.size(), dispatch_one);
  } else {
    for (size_t i = 0; i < subs.size(); ++i) {
      dispatch_one(i);
    }
  }
}

}  // namespace pathdump
