// Discrete-event scheduler driving the per-packet network simulator.

#ifndef PATHDUMP_SRC_NETSIM_EVENT_QUEUE_H_
#define PATHDUMP_SRC_NETSIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  // Schedules fn at absolute simulated time t (must be >= now()).
  void Schedule(SimTime t, Fn fn);
  // Schedules fn after a delay from now().
  void ScheduleAfter(SimTime delay, Fn fn) { Schedule(now_ + delay, std::move(fn)); }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  // Executes the earliest event; returns false if none remain.
  bool RunOne();
  // Runs events with time <= t, then advances now() to t.
  void RunUntil(SimTime t);
  // Runs until empty or max_events executed; returns events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

 private:
  struct Event {
    SimTime t;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_NETSIM_EVENT_QUEUE_H_
