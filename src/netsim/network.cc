#include "src/netsim/network.h"

#include "src/common/logging.h"

namespace pathdump {

Network::Network(const Topology* topo, NetworkConfig config)
    : topo_(topo),
      config_(config),
      router_(topo),
      labels_(topo),
      codec_(topo, &labels_),
      switches_(topo->node_count()),
      sinks_(topo->node_count()) {
  for (SwitchId sw : topo->switches()) {
    switches_[sw] = std::make_unique<SwitchNode>(sw, topo_, &router_, &codec_, config_.seed);
  }
}

SwitchNode& Network::switch_at(SwitchId id) { return *switches_[id]; }

void Network::SetHostSink(HostId host, DeliverFn fn) { sinks_[host] = std::move(fn); }

void Network::InjectPacket(Packet pkt, SimTime at) {
  ++stats_.injected;
  HostId src = pkt.src_host;
  SwitchId tor = topo_->TorOfHost(src);
  pkt.sent_at = at;
  events_.Schedule(at + config_.link_latency, [this, tor, src, p = std::move(pkt)]() mutable {
    ArriveAtSwitch(tor, src, std::move(p));
  });
}

void Network::ReinjectAt(SwitchId sw, NodeId from, Packet pkt, SimTime at) {
  events_.Schedule(at, [this, sw, from, p = std::move(pkt)]() mutable {
    ArriveAtSwitch(sw, from, std::move(p));
  });
}

void Network::ArriveAtSwitch(SwitchId sw, NodeId from, Packet pkt) {
  if (pkt.hop_count >= config_.max_hops) {
    ++stats_.hop_limit_drops;
    ++stats_.dropped;
    return;
  }
  SwitchNode::Result res = switches_[sw]->Process(pkt, from, config_.lb_mode);
  switch (res.outcome) {
    case SwitchNode::Outcome::kPunt: {
      ++stats_.punted;
      if (punt_handler_) {
        events_.ScheduleAfter(config_.punt_latency, [this, sw, p = std::move(pkt)]() {
          punt_handler_(p, sw, events_.now());
        });
      }
      return;
    }
    case SwitchNode::Outcome::kDrop: {
      ++stats_.dropped;
      if (drop_handler_) {
        drop_handler_(pkt, sw, res.silent, events_.now());
      }
      return;
    }
    case SwitchNode::Outcome::kDeliver: {
      HostId dst = res.next;
      events_.ScheduleAfter(config_.switch_latency + config_.link_latency,
                            [this, dst, p = std::move(pkt)]() {
                              ++stats_.delivered;
                              const DeliverFn& sink = sinks_[dst] ? sinks_[dst] : default_sink_;
                              if (sink) {
                                sink(p, events_.now());
                              }
                            });
      return;
    }
    case SwitchNode::Outcome::kForward: {
      SwitchId next = res.next;
      events_.ScheduleAfter(config_.switch_latency + config_.link_latency,
                            [this, next, sw, p = std::move(pkt)]() mutable {
                              ArriveAtSwitch(next, sw, std::move(p));
                            });
      return;
    }
  }
}

}  // namespace pathdump
