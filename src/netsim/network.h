// Per-packet network simulator.
//
// Assembles a Topology, a Router, the CherryPick codec, and one SwitchNode
// per switch into an event-driven network.  Hosts inject packets; switches
// process them hop by hop (including tag pushes, failure drops, and >2-tag
// punts); delivered packets are handed to per-host sinks (normally an
// EdgeAgent); punted packets go to a controller handler with the punt-path
// latency of a real switch's slow path.
//
// The controller can also re-inject a stripped packet at a switch — the
// mechanism behind detecting routing loops of arbitrary size (§4.5).

#ifndef PATHDUMP_SRC_NETSIM_NETWORK_H_
#define PATHDUMP_SRC_NETSIM_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cherrypick/codec.h"
#include "src/netsim/event_queue.h"
#include "src/packet/packet.h"
#include "src/switchsim/switch_node.h"
#include "src/topology/link_labels.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace pathdump {

struct NetworkConfig {
  // One-way propagation + serialization delay per link traversal.
  SimTime link_latency = 20 * kNsPerUs;
  // Switch pipeline latency per hop.
  SimTime switch_latency = 2 * kNsPerUs;
  // Slow-path latency from a rule miss to the controller seeing the packet
  // (PacketIn via switch CPU + control channel).  Dominates loop-detection
  // time, as in the paper's ~47 ms figure.
  SimTime punt_latency = 40 * kNsPerMs;
  // Latency for the controller to push a packet back into the data plane.
  SimTime reinject_latency = 20 * kNsPerMs;
  LoadBalanceMode lb_mode = LoadBalanceMode::kEcmpHash;
  uint64_t seed = 1;
  // Safety valve: a packet visiting more switches than this is dropped and
  // counted (covers loops that carry no sampled tags).
  int max_hops = 128;
};

struct NetworkStats {
  uint64_t injected = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t punted = 0;
  uint64_t hop_limit_drops = 0;
};

class Network {
 public:
  // Called when a packet reaches its destination host.
  using DeliverFn = std::function<void(const Packet&, SimTime)>;
  // Called when a switch punts a packet to the controller.
  using PuntFn = std::function<void(const Packet&, SwitchId, SimTime)>;
  // Called when a packet is dropped in-network (tests / statistics).
  using DropFn = std::function<void(const Packet&, SwitchId, bool silent, SimTime)>;

  Network(const Topology* topo, NetworkConfig config);

  // Sends a packet from pkt.src_host at absolute time `at`.
  void InjectPacket(Packet pkt, SimTime at);
  // Controller re-injection at a given switch (loop hunting): the packet
  // enters `sw` as if arriving from `from`.
  void ReinjectAt(SwitchId sw, NodeId from, Packet pkt, SimTime at);

  void SetHostSink(HostId host, DeliverFn fn);
  void SetDefaultSink(DeliverFn fn) { default_sink_ = std::move(fn); }
  void SetPuntHandler(PuntFn fn) { punt_handler_ = std::move(fn); }
  void SetDropHandler(DropFn fn) { drop_handler_ = std::move(fn); }

  EventQueue& events() { return events_; }
  Router& router() { return router_; }
  const Router& router() const { return router_; }
  CherryPickCodec& codec() { return codec_; }
  const LinkLabelMap& labels() const { return labels_; }
  SwitchNode& switch_at(SwitchId id);
  const Topology& topo() const { return *topo_; }
  const NetworkStats& stats() const { return stats_; }
  const NetworkConfig& config() const { return config_; }

 private:
  // Processes pkt arriving at switch `sw` from neighbor `from`.
  void ArriveAtSwitch(SwitchId sw, NodeId from, Packet pkt);

  const Topology* topo_;
  NetworkConfig config_;
  Router router_;
  LinkLabelMap labels_;
  CherryPickCodec codec_;
  EventQueue events_;
  // Indexed by NodeId; null for hosts.
  std::vector<std::unique_ptr<SwitchNode>> switches_;
  std::vector<DeliverFn> sinks_;  // indexed by NodeId
  DeliverFn default_sink_;
  PuntFn punt_handler_;
  DropFn drop_handler_;
  NetworkStats stats_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_NETSIM_NETWORK_H_
