#include "src/netsim/event_queue.h"

#include <cassert>

namespace pathdump {

void EventQueue::Schedule(SimTime t, Fn fn) {
  assert(t >= now_);
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the function object instead (events are small).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) {
    RunOne();
  }
  if (now_ < t) {
    now_ = t;
  }
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace pathdump
