#include "src/edge/packet_pipeline.h"

namespace pathdump {

namespace {

// Emulates the per-packet cost of the DPDK vSwitch datapath that PathDump's
// OVS patch rides on: mbuf fetch, L2/L3/L4 header parse, and the megaflow
// classification walk.  Both pipelines pay this identically (in the paper,
// both are the same vSwitch; PathDump only *adds* the trajectory work), so
// Fig. 13 compares the marginal cost against a realistic baseline rather
// than against a bare hash lookup.
uint64_t EmulateDatapathWork(const Packet& pkt) {
  // Synthesize a 64-byte header image from the packet fields and run the
  // kind of byte-wise fold a parser + checksum verify performs.
  uint64_t lanes[8];
  uint64_t seed = (uint64_t(pkt.flow.src_ip) << 32) | pkt.flow.dst_ip;
  for (int i = 0; i < 8; ++i) {
    lanes[i] = seed + uint64_t(i) * 0x9E3779B97F4A7C15ull + pkt.seq;
  }
  uint64_t acc = pkt.flow.src_port ^ (uint64_t(pkt.flow.dst_port) << 16);
  for (int round = 0; round < 24; ++round) {
    for (int i = 0; i < 8; ++i) {
      lanes[i] = (lanes[i] ^ acc) * 0x2545F4914F6CDD1Dull;
      acc += lanes[i] >> 7;
    }
  }
  return acc;
}

}  // namespace

uint64_t PacketPipeline::Process(Packet& pkt, SimTime now) {
  ++processed_;
  // --- Vanilla vSwitch work: RX + parse + classify + forward decision ---
  uint64_t acc = EmulateDatapathWork(pkt);
  uint64_t h = FiveTupleHash{}(pkt.flow);
  auto [it, inserted] = flow_table_.try_emplace(pkt.flow, uint32_t(h & 0xF));
  acc += it->second;

  if (pathdump_) {
    // --- PathDump addition: extract tags, update trajectory memory,
    // strip the header before handing the packet up the stack ---
    memory_.OnPacket(pkt, now);
    for (LinkLabel t : pkt.tags) {
      acc = HashCombine(acc, t);
    }
    acc = HashCombine(acc, pkt.dscp);
    pkt.tags.clear();  // strip: upper layers never see trajectory state
  }
  return acc;
}

}  // namespace pathdump
