// Edge packet-processing pipeline for the Fig. 13 throughput experiment.
//
// Models the DPDK vSwitch datapath at a receiving NIC.  The baseline
// ("vanilla vSwitch") parses headers, hashes the 5-tuple, and looks up the
// megaflow table to pick an output port.  The PathDump variant additionally
// extracts and strips the trajectory tags and updates the trajectory
// memory (the paper's ~150-line OVS patch).  Fig. 13 measures the marginal
// cost of that extra work at 64–1500 B packet sizes with ~4 K live flow
// records.

#ifndef PATHDUMP_SRC_EDGE_PACKET_PIPELINE_H_
#define PATHDUMP_SRC_EDGE_PACKET_PIPELINE_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"
#include "src/edge/trajectory_memory.h"
#include "src/packet/packet.h"

namespace pathdump {

class PacketPipeline {
 public:
  // pathdump_enabled=false gives the vanilla-vSwitch baseline.
  explicit PacketPipeline(bool pathdump_enabled) : pathdump_(pathdump_enabled) {}

  // Processes one packet; returns an accumulator value so the benchmark
  // can defeat dead-code elimination.  `now` drives record timestamps.
  uint64_t Process(Packet& pkt, SimTime now);

  TrajectoryMemory& memory() { return memory_; }
  uint64_t processed() const { return processed_; }

 private:
  bool pathdump_;
  // Megaflow-style exact-match cache: 5-tuple -> output port.
  std::unordered_map<FiveTuple, uint32_t, FiveTupleHash> flow_table_;
  TrajectoryMemory memory_;
  uint64_t processed_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_PACKET_PIPELINE_H_
