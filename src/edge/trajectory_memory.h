// Trajectory memory: the hot per-path flow-record table (§3.2, Fig. 2).
//
// Every delivered packet is classified by (5-tuple, trajectory header) and
// a per-path flow record is created or updated.  Like NetFlow, a record is
// evicted — and handed to trajectory construction — when a FIN/RST is seen
// or when it has been idle for a configurable period (5 s default).  The
// query path can also snapshot live records (the paper's IPC channel for
// alarm-time fine-grained debugging).

#ifndef PATHDUMP_SRC_EDGE_TRAJECTORY_MEMORY_H_
#define PATHDUMP_SRC_EDGE_TRAJECTORY_MEMORY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/packet/packet.h"

namespace pathdump {

// Aggregation key: flow ID plus the raw trajectory header (link IDs).
// Tags are stored inline — the data path builds one key per packet, and a
// heap allocation there would dominate the per-packet budget (Fig. 13).
struct TrajectoryKey {
  // ASIC limit + the one over-limit tag that triggers a punt.
  static constexpr int kMaxTags = kAsicMaxVlanTags + 2;

  FiveTuple flow;
  LinkLabel dscp = 0;
  uint8_t ntags = 0;
  std::array<LinkLabel, kMaxTags> tags = {};

  void SetTags(const std::vector<LinkLabel>& v) {
    ntags = uint8_t(v.size() > kMaxTags ? kMaxTags : v.size());
    for (int i = 0; i < ntags; ++i) {
      tags[size_t(i)] = v[size_t(i)];
    }
  }

  std::vector<LinkLabel> TagVector() const {
    return std::vector<LinkLabel>(tags.begin(), tags.begin() + ntags);
  }

  friend bool operator==(const TrajectoryKey&, const TrajectoryKey&) = default;
};

struct TrajectoryKeyHash {
  size_t operator()(const TrajectoryKey& k) const {
    uint64_t h = FiveTupleHash{}(k.flow);
    h = HashCombine(h, k.dscp);
    for (int i = 0; i < k.ntags; ++i) {
      h = HashCombine(h, k.tags[size_t(i)]);
    }
    return size_t(h);
  }
};

class TrajectoryMemory {
 public:
  struct Record {
    TrajectoryKey key;
    SimTime stime = 0;
    SimTime etime = 0;
    uint64_t bytes = 0;
    uint32_t pkts = 0;
    bool closed = false;  // FIN or RST observed
  };

  using EvictSink = std::function<void(const Record&)>;

  explicit TrajectoryMemory(SimTime idle_timeout = 5 * kNsPerSec)
      : idle_timeout_(idle_timeout) {}

  // Creates/updates the per-path flow record for one delivered packet.
  void OnPacket(const Packet& pkt, SimTime now);

  // Evicts closed records and records idle past the timeout; invokes sink
  // for each (in unspecified order).
  void Sweep(SimTime now, const EvictSink& sink);

  // Evicts everything (end of experiment / shutdown).
  void Flush(const EvictSink& sink);

  size_t size() const { return table_.size(); }
  SimTime idle_timeout() const { return idle_timeout_; }

  // Live view for alarm-time queries (paper's IPC lookup).
  std::vector<Record> Snapshot() const;

  uint64_t total_updates() const { return total_updates_; }

 private:
  SimTime idle_timeout_;
  std::unordered_map<TrajectoryKey, Record, TrajectoryKeyHash> table_;
  uint64_t total_updates_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_TRAJECTORY_MEMORY_H_
