#include "src/edge/query.h"

#include <algorithm>

namespace pathdump {

namespace {

// Framing constants (bytes).
constexpr size_t kMsgHeader = 16;
constexpr size_t kPerBin = 12;        // 8B bin id (varint-ish) + 4B count
constexpr size_t kPerFlowId = 13;     // packed 5-tuple
constexpr size_t kPerTopKItem = 21;   // bytes + 5-tuple
constexpr size_t kPerPathSwitch = 4;  // switch ID

size_t PathBytes(const Path& p) { return 1 + p.size() * kPerPathSwitch; }

struct SizeVisitor {
  size_t operator()(const std::monostate&) const { return kMsgHeader; }
  size_t operator()(const FlowSizeHistogram& h) const {
    return kMsgHeader + 8 + h.bins.size() * kPerBin;
  }
  size_t operator()(const TopKFlows& t) const { return kMsgHeader + t.items.size() * kPerTopKItem; }
  size_t operator()(const FlowList& f) const {
    size_t s = kMsgHeader;
    for (const Flow& fl : f.flows) {
      s += kPerFlowId + PathBytes(fl.path);
    }
    return s;
  }
  size_t operator()(const PathList& p) const {
    size_t s = kMsgHeader;
    for (const Path& path : p.paths) {
      s += PathBytes(path);
    }
    return s;
  }
  size_t operator()(const CountSummary&) const { return kMsgHeader + 16; }
};

}  // namespace

void TopKFlows::Finalize() {
  // Total order (bytes desc, then flow id) so ties at the k-boundary
  // truncate identically regardless of merge topology or sort stability.
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return b.first < a.first;
    }
    return a.second < b.second;
  });
  if (k > 0 && items.size() > k) {
    items.resize(k);
  }
}

size_t SerializedBytes(const QueryResult& r) { return std::visit(SizeVisitor{}, r); }

void MergeQueryResult(QueryResult& acc, const QueryResult& in) {
  // An empty contribution (e.g. an aggregation-tree node whose host is
  // not registered) merges as the identity instead of throwing
  // bad_variant_access below.
  if (std::holds_alternative<std::monostate>(in)) {
    return;
  }
  if (std::holds_alternative<std::monostate>(acc)) {
    acc = in;
    if (auto* t = std::get_if<TopKFlows>(&acc)) {
      t->Finalize();
    }
    return;
  }
  if (auto* h = std::get_if<FlowSizeHistogram>(&acc)) {
    const auto& hi = std::get<FlowSizeHistogram>(in);
    for (const auto& [bin, count] : hi.bins) {
      h->bins[bin] += count;
    }
    return;
  }
  if (auto* t = std::get_if<TopKFlows>(&acc)) {
    const auto& ti = std::get<TopKFlows>(in);
    t->items.insert(t->items.end(), ti.items.begin(), ti.items.end());
    t->Finalize();
    return;
  }
  if (auto* f = std::get_if<FlowList>(&acc)) {
    const auto& fi = std::get<FlowList>(in);
    f->flows.insert(f->flows.end(), fi.flows.begin(), fi.flows.end());
    return;
  }
  if (auto* p = std::get_if<PathList>(&acc)) {
    const auto& pi = std::get<PathList>(in);
    p->paths.insert(p->paths.end(), pi.paths.begin(), pi.paths.end());
    return;
  }
  if (auto* c = std::get_if<CountSummary>(&acc)) {
    const auto& ci = std::get<CountSummary>(in);
    c->bytes += ci.bytes;
    c->pkts += ci.pkts;
    return;
  }
}

}  // namespace pathdump
