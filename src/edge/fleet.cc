#include "src/edge/fleet.h"

namespace pathdump {

AgentFleet::AgentFleet(const Topology* topo, const CherryPickCodec* codec, EdgeAgentConfig config)
    : topo_(topo), agents_(topo->node_count()) {
  for (HostId h : topo->hosts()) {
    agents_[h] = std::make_unique<EdgeAgent>(h, topo, codec, config);
  }
}

EdgeAgent* AgentFleet::agent_by_ip(IpAddr ip) {
  HostId h = topo_->HostOfIp(ip);
  return h == kInvalidNode ? nullptr : agents_[h].get();
}

void AgentFleet::AttachTo(Network& net) {
  for (HostId h : topo_->hosts()) {
    EdgeAgent* agent = agents_[h].get();
    net.SetHostSink(h, [agent](const Packet& pkt, SimTime now) { agent->OnPacket(pkt, now); });
  }
}

void AgentFleet::SetAlarmHandler(AlarmHandler handler) {
  for (HostId h : topo_->hosts()) {
    agents_[h]->SetAlarmHandler(handler);
  }
}

void AgentFleet::TickAll(SimTime now) {
  for (HostId h : topo_->hosts()) {
    agents_[h]->Tick(now);
  }
}

void AgentFleet::FlushAll(SimTime now) {
  for (HostId h : topo_->hosts()) {
    agents_[h]->FlushAll(now);
  }
}

std::vector<EdgeAgent*> AgentFleet::all() {
  std::vector<EdgeAgent*> out;
  out.reserve(agents_.size());
  for (HostId h : topo_->hosts()) {
    out.push_back(agents_[h].get());
  }
  return out;
}

}  // namespace pathdump
