#include "src/edge/trajectory_memory.h"

namespace pathdump {

void TrajectoryMemory::OnPacket(const Packet& pkt, SimTime now) {
  TrajectoryKey key;
  key.flow = pkt.flow;
  key.dscp = pkt.dscp;
  key.SetTags(pkt.tags);

  ++total_updates_;
  auto [it, inserted] = table_.try_emplace(std::move(key));
  Record& rec = it->second;
  if (inserted) {
    rec.key = it->first;
    rec.stime = now;
  }
  rec.etime = now;
  rec.bytes += pkt.size_bytes;
  rec.pkts += 1;
  if (pkt.fin || pkt.rst) {
    rec.closed = true;
  }
}

void TrajectoryMemory::Sweep(SimTime now, const EvictSink& sink) {
  for (auto it = table_.begin(); it != table_.end();) {
    const Record& rec = it->second;
    if (rec.closed || now - rec.etime >= idle_timeout_) {
      sink(rec);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void TrajectoryMemory::Flush(const EvictSink& sink) {
  for (const auto& [key, rec] : table_) {
    sink(rec);
  }
  table_.clear();
}

std::vector<TrajectoryMemory::Record> TrajectoryMemory::Snapshot() const {
  std::vector<Record> out;
  out.reserve(table_.size());
  for (const auto& [key, rec] : table_) {
    out.push_back(rec);
  }
  return out;
}

}  // namespace pathdump
