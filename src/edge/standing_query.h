// Standing queries: incremental edge-side evaluation with epoch deltas.
//
// The paper's recurring debugging applications (traffic measurement,
// load imbalance) re-poll the fleet, and every poll re-scans the full
// TIB — O(records) per poll even when almost nothing changed.  A
// standing query inverts that: the agent evaluates incrementally at
// insert time and, on an epoch tick, ships only what changed.
//
//   Tib::Insert ──(insert hook, under the shard lock)──▶ per-shard
//   partial ──(epoch tick: swap + reset, one shard lock at a time)──▶
//   deterministic ordered reduce ──▶ epoch-stamped QueryDelta ──▶
//   controller subscription channel (src/controller/subscription.h).
//
// Two delta shapes serve the four standing kinds:
//  * Per-flow sums (FlowBytesDelta, src/common/flow_delta.h): TopK and
//    FlowSizeHistogram both reduce to per-flow byte totals, so their
//    per-shard partial is a FlowBytesMap and materialization is a pure
//    function of the accumulated map — MaterializeStandingResult
//    reproduces EdgeAgent::TopK / FlowSizeDistribution byte for byte.
//  * Per-record lists (RecordDelta, src/common/record_delta.h): FlowList
//    and CountSummary need the records themselves, so their per-shard
//    partial is an append buffer of (id, flow, path, bytes, pkts) items;
//    the epoch tick swaps the buffers and canonicalizes by ascending
//    insertion id.  The controller folds them through RecordFoldState
//    and MaterializeStandingRecords reproduces FlowList{GetFlows} /
//    Tib::CountOnLink byte for byte — the id-ordered first-appearance
//    dedup of Tib::FlowsOnLink, replayed incrementally.
//
// Determinism contract: at any epoch boundary, folding every delta
// shipped so far equals a fresh poll over the same records — at any
// shard count and any scan-worker count (tests/standing_query_test.cc).
//
// Locking: partial updates ride the shard lock Tib::Insert already
// holds; the epoch snapshot takes one shard lock at a time
// (Tib::ForEachShardExclusive).  No new lock hierarchy — the only
// accumulator-private lock is a tick mutex serializing epoch snapshots
// against each other, taken before any shard lock.

#ifndef PATHDUMP_SRC_EDGE_STANDING_QUERY_H_
#define PATHDUMP_SRC_EDGE_STANDING_QUERY_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/flow_delta.h"
#include "src/common/record_delta.h"
#include "src/common/types.h"
#include "src/edge/query.h"
#include "src/edge/tib.h"

namespace pathdump {

// What a subscription computes.  The same spec installs on every agent
// of the subscription; the controller materializes per host and merges
// in host order — exactly the poll path's shape.
struct StandingQuerySpec {
  enum class Kind : uint8_t {
    kTopK = 0,               // per-flow sums -> TopKFlows
    kFlowSizeHistogram = 1,  // per-flow sums -> FlowSizeHistogram
    kFlowList = 2,           // per-record   -> FlowList (getFlows)
    kCountSummary = 3,       // per-record   -> CountSummary (getCount)
  };

  Kind kind = Kind::kTopK;
  // kTopK: per-host truncation bound (the poll path's k).
  size_t k = 0;
  // kFlowSizeHistogram: histogram bin width.
  int64_t bin_width = 10000;
  // Record filter, identical to Tib::AggregateFlowBytes: a wildcardable
  // link the record's path must match (TopK uses (<*, *>)) ...
  LinkId link{kInvalidNode, kInvalidNode};
  // ... and a time range the record must overlap.  Records are filtered
  // once, at insert; a standing range is normally open-ended.
  TimeRange range = TimeRange::All();

  // True for the kinds whose deltas carry records, not per-flow sums.
  bool IsRecordKind() const {
    return kind == Kind::kFlowList || kind == Kind::kCountSummary;
  }

  friend bool operator==(const StandingQuerySpec&, const StandingQuerySpec&) = default;
};

// One epoch's increment from one host, shipped over the subscription
// channel.  Epochs are 1-based and contiguous per (subscription, host);
// empty epochs ship nothing (and consume no epoch number), so per-epoch
// wire cost scales with the delta, not with the TIB.
struct QueryDelta {
  uint64_t subscription_id = 0;
  HostId host = kInvalidNode;
  // The subscription's kind, stamped by the accumulator.  Redundant with
  // the manager's own spec for in-process delivery, but load-bearing on
  // the wire (src/transport/wire.cc): the frame decoder picks the payload
  // shape from this byte instead of guessing from content.
  StandingQuerySpec::Kind kind = StandingQuerySpec::Kind::kTopK;
  // Per-(subscription, host) epoch number, stamped by the accumulator.
  uint64_t epoch = 0;
  // Channel intake sequence, stamped by the SubscriptionManager at
  // enqueue (0 until then) — arrival order, which may disagree with
  // epoch order; the manager folds in epoch order regardless.
  uint64_t seq = 0;
  // True for a one-shot resync snapshot (TakeSnapshot): the payload is
  // the FULL standing state as of this epoch boundary, not an increment.
  // The controller replaces the (sub, host) fold state with it and
  // resumes delta folding at epoch + 1.  Unlike ordinary deltas, an
  // EMPTY snapshot still ships and still consumes an epoch number — the
  // receiver needs the baseline even when the baseline is "nothing".
  bool snapshot = false;
  // Exactly one of these is populated, by the subscription's kind:
  // per-flow sums for kTopK/kFlowSizeHistogram, records for the rest.
  FlowBytesDelta payload;
  RecordDelta records;

  // Bytes on the wire: the populated payload plus the subscription/host/
  // epoch framing (8 + 4 + 8, padded to 24 like fixed fields elsewhere).
  size_t SerializedSize() const {
    return 24 + (records.empty() ? payload.SerializedSize() : records.SerializedSize());
  }

  friend bool operator==(const QueryDelta&, const QueryDelta&) = default;
};

// Materializes the standing result for one host from its accumulated
// per-flow byte totals (kTopK / kFlowSizeHistogram) — byte-identical to
// what the poll path computes from Tib::AggregateFlowBytes
// (EdgeAgent::TopK / FlowSizeDistribution).
QueryResult MaterializeStandingResult(const StandingQuerySpec& spec, const FlowBytesMap& per_flow);

// Controller-side fold state for the per-record kinds: the incremental
// twin of Tib::FlowsOnLink's dedup (kFlowList) and Tib::CountOnLink's
// sums (kCountSummary).  Fold() applies one epoch's RecordDelta; items
// arrive id-sorted within a delta and deltas fold in epoch order, so the
// first occurrence of a (flow, path) pair carries its minimum id (a
// pair's duplicates always share a TIB shard, and per-shard ids ascend
// across epochs) — Fold still keeps the minimum defensively.
struct RecordFoldState {
  // Distinct (flow, path) items, each holding the smallest id seen.
  // Append-ordered; materialization sorts by id.
  std::vector<RecordDeltaItem> flow_items;
  // Dedup index: path-hash-seeded-by-flow -> indices into flow_items.
  // The hash only buckets; equality is exact, so a 64-bit collision
  // cannot change the answer (mirrors Tib::FlowsOnLink).
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  CountSummary count;

  void Fold(const StandingQuerySpec& spec, const RecordDelta& delta);
};

// Materializes the standing result for one host from folded records
// (kFlowList / kCountSummary) — byte-identical to what the poll path
// computes (FlowList{EdgeAgent::GetFlows} / EdgeAgent::CountOnLink).
QueryResult MaterializeStandingRecords(const StandingQuerySpec& spec,
                                       const RecordFoldState& state);

// The per-agent accumulator: one partial per TIB shard (a FlowBytesMap
// for the per-flow kinds, an append buffer of RecordDeltaItems for the
// record kinds), updated by a Tib insert hook under that shard's lock,
// drained by TakeDelta on epoch ticks.  Construction installs the hook;
// destruction removes it (after which no update is running — the Tib
// guarantees removal synchronizes with every in-flight Insert).
class StandingQueryAccumulator {
 public:
  StandingQueryAccumulator(uint64_t subscription_id, HostId host, const StandingQuerySpec& spec,
                           Tib* tib);
  ~StandingQueryAccumulator();

  StandingQueryAccumulator(const StandingQueryAccumulator&) = delete;
  StandingQueryAccumulator& operator=(const StandingQueryAccumulator&) = delete;

  // Epoch tick: snapshots + resets the per-shard partials (one shard
  // lock at a time), merges them with the deterministic ordered reduce,
  // and returns the epoch-stamped delta — or nullopt if nothing changed
  // (no epoch number is consumed).  Thread-safe; cost is O(delta).
  std::optional<QueryDelta> TakeDelta();

  // Resync: one full epoch-boundary snapshot of the standing state.
  // Under each shard's exclusive lock the pending partial is discarded
  // and the shard's stored records are re-scanned through the same
  // filter OnInsert applies, so the result equals "all matching records
  // inserted so far" — records inserted before a shard's visit are in
  // its scan, records inserted after land in the freshly-cleared partial
  // and ship with the NEXT delta; nothing is counted twice or dropped.
  // Always consumes an epoch number and always returns a delta (marked
  // snapshot=true), even when empty.  Cost is O(TIB records) — resync
  // only, never the steady state.
  //
  // Under a TIB memory ceiling the re-scan covers the RETAINED window
  // only (retired segments no longer exist), so a post-eviction snapshot
  // re-baselines the stream to the window a poll query would see — by
  // design: incremental folds stay exact over the full history (OnInsert
  // saw every record before its segment could retire), while any resync
  // adopts window-scoped semantics, matching window-scoped polls.
  QueryDelta TakeSnapshot();

  uint64_t subscription_id() const { return subscription_id_; }
  HostId host() const { return host_; }
  const StandingQuerySpec& spec() const { return spec_; }

 private:
  // Runs under the owning shard's lock, inside Tib::Insert.
  void OnInsert(size_t shard_index, uint64_t record_id, const TibRecord& rec);
  // The record filter OnInsert and TakeSnapshot share (range overlap +
  // link match) — one definition so a snapshot can never disagree with
  // the increments about which records belong to the subscription.
  bool Matches(const TibRecord& rec) const;

  const uint64_t subscription_id_;
  const HostId host_;
  const StandingQuerySpec spec_;
  const bool match_all_links_;
  Tib* const tib_;
  int hook_id_ = -1;
  // Per-shard buffer entry for the record kinds: the path stays in its
  // stored CompactPath form so the insert hook does no decoding (and no
  // per-path allocation) under the shard lock; TakeDelta decodes once
  // per shipped record, outside the insert path.
  struct CompactRecordEntry {
    uint64_t id;
    FiveTuple flow;
    CompactPath path;
    uint64_t bytes;
    uint32_t pkts;
  };

  // partial_[s] / record_partial_[s] are guarded by TIB shard s's lock
  // (writes from OnInsert and swaps from TakeDelta both hold it).  Only
  // the shape matching spec_.kind is ever touched.
  std::vector<FlowBytesMap> partial_;
  std::vector<std::vector<CompactRecordEntry>> record_partial_;
  // Serializes concurrent epoch ticks; ordered before shard locks.
  std::mutex tick_mu_;
  uint64_t next_epoch_ = 1;  // guarded by tick_mu_
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_STANDING_QUERY_H_
