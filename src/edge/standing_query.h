// Standing queries: incremental edge-side evaluation with epoch deltas.
//
// The paper's recurring debugging applications (traffic measurement,
// load imbalance) re-poll the fleet, and every poll re-scans the full
// TIB — O(records) per poll even when almost nothing changed.  A
// standing query inverts that: the agent evaluates incrementally at
// insert time and, on an epoch tick, ships only what changed.
//
//   Tib::Insert ──(insert hook, under the shard lock)──▶ per-shard
//   FlowBytesMap partial ──(epoch tick: swap + reset, one shard lock at
//   a time)──▶ deterministic ordered reduce (key-disjoint concat, sort
//   by flow) ──▶ epoch-stamped QueryDelta ──▶ controller subscription
//   channel (src/controller/subscription.h).
//
// Both canned aggregates reduce to per-flow byte totals, so the delta
// payload is one shape (FlowBytesDelta) and materialization is a pure
// function of the accumulated map: MaterializeStandingResult reproduces
// EdgeAgent::TopK / FlowSizeDistribution byte for byte.  Determinism
// contract: at any epoch boundary, folding every delta shipped so far
// equals a fresh AggregateFlowBytes over the same records — at any
// shard count and any scan-worker count (tests/standing_query_test.cc).
//
// Locking: partial updates ride the shard lock Tib::Insert already
// holds; the epoch snapshot takes one shard lock at a time
// (Tib::ForEachShardExclusive).  No new lock hierarchy — the only
// accumulator-private lock is a tick mutex serializing epoch snapshots
// against each other, taken before any shard lock.

#ifndef PATHDUMP_SRC_EDGE_STANDING_QUERY_H_
#define PATHDUMP_SRC_EDGE_STANDING_QUERY_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/flow_delta.h"
#include "src/common/types.h"
#include "src/edge/query.h"
#include "src/edge/tib.h"

namespace pathdump {

// What a subscription computes.  The same spec installs on every agent
// of the subscription; the controller materializes per host and merges
// in host order — exactly the poll path's shape.
struct StandingQuerySpec {
  enum class Kind : uint8_t { kTopK = 0, kFlowSizeHistogram = 1 };

  Kind kind = Kind::kTopK;
  // kTopK: per-host truncation bound (the poll path's k).
  size_t k = 0;
  // kFlowSizeHistogram: histogram bin width.
  int64_t bin_width = 10000;
  // Record filter, identical to Tib::AggregateFlowBytes: a wildcardable
  // link the record's path must match (TopK uses (<*, *>)) ...
  LinkId link{kInvalidNode, kInvalidNode};
  // ... and a time range the record must overlap.  Records are filtered
  // once, at insert; a standing range is normally open-ended.
  TimeRange range = TimeRange::All();

  friend bool operator==(const StandingQuerySpec&, const StandingQuerySpec&) = default;
};

// One epoch's increment from one host, shipped over the subscription
// channel.  Epochs are 1-based and contiguous per (subscription, host);
// empty epochs ship nothing (and consume no epoch number), so per-epoch
// wire cost scales with the delta, not with the TIB.
struct QueryDelta {
  uint64_t subscription_id = 0;
  HostId host = kInvalidNode;
  // Per-(subscription, host) epoch number, stamped by the accumulator.
  uint64_t epoch = 0;
  // Channel intake sequence, stamped by the SubscriptionManager at
  // enqueue (0 until then) — arrival order, which may disagree with
  // epoch order; the manager folds in epoch order regardless.
  uint64_t seq = 0;
  FlowBytesDelta payload;

  // Bytes on the wire: the payload plus the subscription/host/epoch
  // framing (8 + 4 + 8, padded to 24 like the fixed fields elsewhere).
  size_t SerializedSize() const { return 24 + payload.SerializedSize(); }

  friend bool operator==(const QueryDelta&, const QueryDelta&) = default;
};

// Materializes the standing result for one host from its accumulated
// per-flow byte totals — byte-identical to what the poll path computes
// from Tib::AggregateFlowBytes (EdgeAgent::TopK / FlowSizeDistribution).
QueryResult MaterializeStandingResult(const StandingQuerySpec& spec, const FlowBytesMap& per_flow);

// The per-agent accumulator: one FlowBytesMap partial per TIB shard,
// updated by a Tib insert hook under that shard's lock, drained by
// TakeDelta on epoch ticks.  Construction installs the hook;
// destruction removes it (after which no update is running — the Tib
// guarantees removal synchronizes with every in-flight Insert).
class StandingQueryAccumulator {
 public:
  StandingQueryAccumulator(uint64_t subscription_id, HostId host, const StandingQuerySpec& spec,
                           Tib* tib);
  ~StandingQueryAccumulator();

  StandingQueryAccumulator(const StandingQueryAccumulator&) = delete;
  StandingQueryAccumulator& operator=(const StandingQueryAccumulator&) = delete;

  // Epoch tick: snapshots + resets the per-shard partials (one shard
  // lock at a time), merges them with the deterministic ordered reduce,
  // and returns the epoch-stamped delta — or nullopt if nothing changed
  // (no epoch number is consumed).  Thread-safe; cost is O(delta).
  std::optional<QueryDelta> TakeDelta();

  uint64_t subscription_id() const { return subscription_id_; }
  HostId host() const { return host_; }
  const StandingQuerySpec& spec() const { return spec_; }

 private:
  // Runs under the owning shard's lock, inside Tib::Insert.
  void OnInsert(size_t shard_index, const TibRecord& rec);

  const uint64_t subscription_id_;
  const HostId host_;
  const StandingQuerySpec spec_;
  const bool match_all_links_;
  Tib* const tib_;
  int hook_id_ = -1;
  // partial_[s] is guarded by TIB shard s's lock (writes from OnInsert
  // and swaps from TakeDelta both hold it).
  std::vector<FlowBytesMap> partial_;
  // Serializes concurrent epoch ticks; ordered before shard locks.
  std::mutex tick_mu_;
  uint64_t next_epoch_ = 1;  // guarded by tick_mu_
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_STANDING_QUERY_H_
