#include "src/edge/packet_log.h"

#include <algorithm>

namespace pathdump {

PacketLog::PacketLog(size_t capacity) { ring_.resize(std::max<size_t>(capacity, 1)); }

void PacketLog::Append(const PacketLogEntry& entry) {
  ring_[size_t(count_ % ring_.size())] = entry;
  ++count_;
}

void PacketLog::ForEach(const std::function<void(const PacketLogEntry&)>& fn) const {
  size_t n = size();
  size_t cap = ring_.size();
  // Oldest retained entry sits at count_ % cap once the ring wrapped.
  size_t start = count_ > cap ? size_t(count_ % cap) : 0;
  for (size_t i = 0; i < n; ++i) {
    fn(ring_[(start + i) % cap]);
  }
}

std::vector<PacketLogEntry> PacketLog::PacketsOfFlow(const FiveTuple& flow,
                                                     const TimeRange& range) const {
  std::vector<PacketLogEntry> out;
  ForEach([&](const PacketLogEntry& e) {
    if (e.flow == flow && range.Contains(e.at)) {
      out.push_back(e);
    }
  });
  return out;
}

std::vector<PacketLogEntry> PacketLog::PacketsOnLink(const LinkId& link,
                                                     const TimeRange& range) const {
  std::vector<PacketLogEntry> out;
  ForEach([&](const PacketLogEntry& e) {
    if (range.Contains(e.at) && e.path.MatchesLinkQuery(link)) {
      out.push_back(e);
    }
  });
  return out;
}

std::vector<PacketLogEntry> PacketLog::Retransmissions(const TimeRange& range) const {
  std::vector<PacketLogEntry> out;
  ForEach([&](const PacketLogEntry& e) {
    if (e.retx && range.Contains(e.at)) {
      out.push_back(e);
    }
  });
  return out;
}

void PacketLog::Clear() {
  count_ = 0;
  for (PacketLogEntry& e : ring_) {
    e = PacketLogEntry{};
  }
}

}  // namespace pathdump
