#include "src/edge/edge_agent.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>

#include "src/common/logging.h"

namespace pathdump {

const char* AlarmReasonName(AlarmReason reason) {
  switch (reason) {
    case AlarmReason::kPoorPerf:
      return "POOR_PERF";
    case AlarmReason::kPathConformance:
      return "PC_FAIL";
    case AlarmReason::kInfeasiblePath:
      return "INFEASIBLE_PATH";
    case AlarmReason::kNoProgress:
      return "NO_PROGRESS";
  }
  return "?";
}

EdgeAgent::EdgeAgent(HostId host, const Topology* topo, const CherryPickCodec* codec,
                     EdgeAgentConfig config)
    : host_(host),
      topo_(topo),
      codec_(codec),
      config_(config),
      memory_(config.idle_timeout),
      cache_(config.trajectory_cache_capacity),
      tib_(config.tib_options) {
  if (config_.packet_log_capacity > 0) {
    packet_log_ = std::make_unique<PacketLog>(config_.packet_log_capacity);
  }
}

std::optional<Path> EdgeAgent::DecodeHeader(IpAddr src_ip, LinkLabel dscp,
                                            const std::vector<LinkLabel>& tags) {
  std::optional<Path> path = cache_.Lookup(src_ip, dscp, tags);
  if (path) {
    return path;
  }
  HostId src_host = topo_->HostOfIp(src_ip);
  if (src_host != kInvalidNode) {
    path = codec_->Decode(src_host, host_, dscp, tags);
  }
  if (path) {
    cache_.Insert(src_ip, dscp, tags, *path);
  }
  return path;
}

void EdgeAgent::OnPacket(const Packet& pkt, SimTime now) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // tcpretrans-equivalent instrumentation.
    if (pkt.is_retx) {
      retx_.OnRetransmission(pkt.flow, now);
    } else {
      retx_.OnProgress(pkt.flow);
    }
    // The trajectory header is recorded, then conceptually stripped before
    // the packet continues to the upper stack (§3.2).
    memory_.OnPacket(pkt, now);
    // Optional per-packet log (the paper's future-work extension).
    if (packet_log_ != nullptr) {
      PacketLogEntry e;
      e.flow = pkt.flow;
      e.at = now;
      e.bytes = pkt.size_bytes;
      e.seq = pkt.seq;
      e.raw_tag_count = uint8_t(pkt.tags.size());
      e.retx = pkt.is_retx;
      e.fin = pkt.fin;
      if (auto path = DecodeHeader(pkt.flow.src_ip, pkt.dscp, pkt.tags)) {
        e.path = CompactPath::FromPath(*path);
      }
      packet_log_->Append(e);
    }
  }
  if (now >= next_sweep_) {
    Tick(now);
  }
}

void EdgeAgent::Tick(SimTime now) {
  // Evictions are collected under the write lock but constructed (and any
  // alarms raised) outside it, so a blocking alarm sink can never wedge
  // queries against this agent.
  std::vector<TrajectoryMemory::Record> evicted;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (now >= next_sweep_) {
      memory_.Sweep(now,
                    [&evicted](const TrajectoryMemory::Record& rec) { evicted.push_back(rec); });
      next_sweep_ = now + config_.sweep_period;
    }
  }
  for (const TrajectoryMemory::Record& rec : evicted) {
    ConstructAndStore(rec, now);
  }
  for (auto& [id, q] : periodic_) {
    if (q.period <= 0 || now >= q.next_due) {
      q.body(*this, now);
      q.next_due = now + std::max<SimTime>(q.period, 1);
    }
  }
}

void EdgeAgent::FlushAll(SimTime now) {
  std::vector<TrajectoryMemory::Record> evicted;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    memory_.Flush(
        [&evicted](const TrajectoryMemory::Record& rec) { evicted.push_back(rec); });
  }
  for (const TrajectoryMemory::Record& rec : evicted) {
    ConstructAndStore(rec, now);
  }
}

void EdgeAgent::ConstructAndStore(const TrajectoryMemory::Record& rec, SimTime now) {
  // Trajectory cache first; decode against the static topology on a miss.
  std::optional<Path> path;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    path = DecodeHeader(rec.key.flow.src_ip, rec.key.dscp, rec.key.TagVector());
  }
  if (!path) {
    // The trajectory contradicts the ground-truth topology — e.g. a switch
    // inserted a bogus ID (§2.4).  Raise an alarm; do not pollute the TIB.
    ++decode_failures_;
    RaiseAlarm(rec.key.flow, AlarmReason::kInfeasiblePath, {}, now);
    return;
  }
  TibRecord out;
  out.flow = rec.key.flow;
  out.path = CompactPath::FromPath(*path);
  out.stime = rec.stime;
  out.etime = rec.etime;
  out.bytes = rec.bytes;
  out.pkts = rec.pkts;
  IngestRecord(out, now);
}

void EdgeAgent::IngestRecord(const TibRecord& rec, SimTime now) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    tib_.Insert(rec);
  }
  // Hooks run unlocked: they may query this agent and raise alarms.
  for (auto& [id, hook] : hooks_) {
    hook(*this, rec, now);
  }
}

std::vector<Flow> EdgeAgent::GetFlows(const LinkId& link, const TimeRange& range) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Flow> out;
  std::unordered_set<uint64_t> seen;
  for (size_t idx : tib_.RecordsOnLink(link, range)) {
    const TibRecord& rec = tib_.record(idx);
    uint64_t key = FiveTupleHash{}(rec.flow);
    for (int i = 0; i < rec.path.len; ++i) {
      key = HashCombine(key, rec.path.sw[size_t(i)]);
    }
    if (seen.insert(key).second) {
      out.push_back(Flow{rec.flow, rec.path.ToPath()});
    }
  }
  return out;
}

std::vector<Path> EdgeAgent::GetPaths(const FiveTuple& flow, const LinkId& link,
                                      const TimeRange& range) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetPathsLocked(flow, link, range);
}

std::vector<Path> EdgeAgent::GetPathsLocked(const FiveTuple& flow, const LinkId& link,
                                            const TimeRange& range) const {
  std::vector<Path> out;
  std::unordered_set<uint64_t> seen;
  for (size_t idx : tib_.RecordsOfFlow(flow, range)) {
    const TibRecord& rec = tib_.record(idx);
    if (!rec.path.MatchesLinkQuery(link)) {
      continue;
    }
    uint64_t key = 0;
    for (int i = 0; i < rec.path.len; ++i) {
      key = HashCombine(key, rec.path.sw[size_t(i)]);
    }
    if (seen.insert(key).second) {
      out.push_back(rec.path.ToPath());
    }
  }
  return out;
}

std::vector<Path> EdgeAgent::GetPathsLive(const FiveTuple& flow, const LinkId& link,
                                          const TimeRange& range) {
  // Exclusive: live decoding inserts into the trajectory cache.
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<Path> out = GetPathsLocked(flow, link, range);
  std::unordered_set<uint64_t> seen;
  for (const Path& p : out) {
    uint64_t key = 0;
    for (SwitchId s : p) {
      key = HashCombine(key, s);
    }
    seen.insert(key);
  }
  for (const TrajectoryMemory::Record& rec : memory_.Snapshot()) {
    if (!(rec.key.flow == flow) || !range.Overlaps(rec.stime, rec.etime)) {
      continue;
    }
    std::optional<Path> path =
        DecodeHeader(rec.key.flow.src_ip, rec.key.dscp, rec.key.TagVector());
    if (!path || !CompactPath::FromPath(*path).MatchesLinkQuery(link)) {
      continue;
    }
    uint64_t key = 0;
    for (SwitchId s : *path) {
      key = HashCombine(key, s);
    }
    if (seen.insert(key).second) {
      out.push_back(std::move(*path));
    }
  }
  return out;
}

CountSummary EdgeAgent::GetCount(const Flow& flow, const TimeRange& range) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CountSummary out;
  CompactPath want = CompactPath::FromPath(flow.path);
  for (size_t idx : tib_.RecordsOfFlow(flow.id, range)) {
    const TibRecord& rec = tib_.record(idx);
    if (!flow.path.empty() && !(rec.path == want)) {
      continue;
    }
    out.bytes += rec.bytes;
    out.pkts += rec.pkts;
  }
  return out;
}

SimTime EdgeAgent::GetDuration(const Flow& flow, const TimeRange& range) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SimTime lo = kSimTimeMax;
  SimTime hi = -1;
  CompactPath want = CompactPath::FromPath(flow.path);
  for (size_t idx : tib_.RecordsOfFlow(flow.id, range)) {
    const TibRecord& rec = tib_.record(idx);
    if (!flow.path.empty() && !(rec.path == want)) {
      continue;
    }
    lo = std::min(lo, rec.stime);
    hi = std::max(hi, rec.etime);
  }
  return hi < lo ? 0 : hi - lo;
}

std::vector<FiveTuple> EdgeAgent::GetPoorTcpFlows(int threshold) const {
  if (threshold <= 0) {
    threshold = config_.poor_retx_threshold;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  return retx_.PoorTcpFlows(threshold);
}

void EdgeAgent::ResetRetxStreak(const FiveTuple& flow) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  retx_.OnProgress(flow);
}

void EdgeAgent::RaiseAlarm(const FiveTuple& flow, AlarmReason reason, std::vector<Path> paths,
                           SimTime now) {
  if (!alarm_handler_) {
    Logf(LogLevel::kDebug, "unhandled alarm %s from host %u", AlarmReasonName(reason), host_);
    return;
  }
  Alarm a;
  a.host = host_;
  a.flow = flow;
  a.reason = reason;
  a.paths = std::move(paths);
  a.at = now;
  alarm_handler_(a);
}

FlowSizeHistogram EdgeAgent::FlowSizeDistribution(const LinkId& link, const TimeRange& range,
                                                  int64_t bin_width) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Accumulate per-flow bytes over matching records, then histogram.
  std::unordered_map<FiveTuple, uint64_t, FiveTupleHash> per_flow;
  for (size_t idx : tib_.RecordsOnLink(link, range)) {
    const TibRecord& rec = tib_.record(idx);
    per_flow[rec.flow] += rec.bytes;
  }
  FlowSizeHistogram h;
  h.bin_width = bin_width;
  for (const auto& [flow, bytes] : per_flow) {
    h.bins[int64_t(bytes) / bin_width] += 1;
  }
  return h;
}

TopKFlows EdgeAgent::TopK(size_t k, const TimeRange& range) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::unordered_map<FiveTuple, uint64_t, FiveTupleHash> per_flow;
  for (const TibRecord& rec : tib_.records()) {
    if (rec.Overlaps(range)) {
      per_flow[rec.flow] += rec.bytes;
    }
  }
  TopKFlows out;
  out.k = k;
  out.items.reserve(per_flow.size());
  for (const auto& [flow, bytes] : per_flow) {
    out.items.emplace_back(bytes, flow);
  }
  out.Finalize();
  return out;
}

int EdgeAgent::AddRecordHook(RecordHook hook) {
  int id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  return id;
}

void EdgeAgent::RemoveRecordHook(int id) { hooks_.erase(id); }

int EdgeAgent::InstallQuery(SimTime period, PeriodicQuery body) {
  int id = next_query_id_++;
  periodic_[id] = Installed{period, 0, std::move(body)};
  return id;
}

int EdgeAgent::InstallPoorTcpMonitor(SimTime period, int threshold) {
  return InstallQuery(period, [threshold](EdgeAgent& agent, SimTime now) {
    for (const FiveTuple& flow : agent.GetPoorTcpFlows(threshold)) {
      agent.RaiseAlarm(flow, AlarmReason::kPoorPerf, {}, now);
      // One alarm per episode: progress must restart the streak.
      agent.ResetRetxStreak(flow);
    }
  });
}

void EdgeAgent::UninstallQuery(int id) { periodic_.erase(id); }

}  // namespace pathdump
