#include "src/edge/edge_agent.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace pathdump {

const char* AlarmReasonName(AlarmReason reason) {
  switch (reason) {
    case AlarmReason::kPoorPerf:
      return "POOR_PERF";
    case AlarmReason::kPathConformance:
      return "PC_FAIL";
    case AlarmReason::kInfeasiblePath:
      return "INFEASIBLE_PATH";
    case AlarmReason::kNoProgress:
      return "NO_PROGRESS";
  }
  return "?";
}

EdgeAgent::EdgeAgent(HostId host, const Topology* topo, const CherryPickCodec* codec,
                     EdgeAgentConfig config)
    : host_(host),
      topo_(topo),
      codec_(codec),
      config_(config),
      memory_(config.idle_timeout),
      cache_(config.trajectory_cache_capacity),
      tib_(config.tib_options) {
  if (config_.packet_log_capacity > 0) {
    packet_log_ = std::make_unique<PacketLog>(config_.packet_log_capacity);
  }
}

std::optional<Path> EdgeAgent::DecodeHeader(IpAddr src_ip, LinkLabel dscp,
                                            const std::vector<LinkLabel>& tags) {
  std::optional<Path> path = cache_.Lookup(src_ip, dscp, tags);
  if (path) {
    return path;
  }
  HostId src_host = topo_->HostOfIp(src_ip);
  if (src_host != kInvalidNode) {
    path = codec_->Decode(src_host, host_, dscp, tags);
  }
  if (path) {
    cache_.Insert(src_ip, dscp, tags, *path);
  }
  return path;
}

void EdgeAgent::OnPacket(const Packet& pkt, SimTime now) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // tcpretrans-equivalent instrumentation.
    if (pkt.is_retx) {
      retx_.OnRetransmission(pkt.flow, now);
    } else {
      retx_.OnProgress(pkt.flow);
    }
    // The trajectory header is recorded, then conceptually stripped before
    // the packet continues to the upper stack (§3.2).
    memory_.OnPacket(pkt, now);
    // Optional per-packet log (the paper's future-work extension).
    if (packet_log_ != nullptr) {
      PacketLogEntry e;
      e.flow = pkt.flow;
      e.at = now;
      e.bytes = pkt.size_bytes;
      e.seq = pkt.seq;
      e.raw_tag_count = uint8_t(pkt.tags.size());
      e.retx = pkt.is_retx;
      e.fin = pkt.fin;
      if (auto path = DecodeHeader(pkt.flow.src_ip, pkt.dscp, pkt.tags)) {
        e.path = CompactPath::FromPath(*path);
      }
      packet_log_->Append(e);
    }
  }
  if (now >= next_sweep_.load(std::memory_order_relaxed)) {
    Tick(now);
  }
}

void EdgeAgent::Tick(SimTime now) {
  // Evictions are collected under the write lock but constructed (and any
  // alarms raised) outside it, so a blocking alarm sink can never wedge
  // queries against this agent.
  std::vector<TrajectoryMemory::Record> evicted;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (now >= next_sweep_.load(std::memory_order_relaxed)) {
      memory_.Sweep(now,
                    [&evicted](const TrajectoryMemory::Record& rec) { evicted.push_back(rec); });
      next_sweep_.store(now + config_.sweep_period, std::memory_order_relaxed);
    }
  }
  for (const TrajectoryMemory::Record& rec : evicted) {
    ConstructAndStore(rec, now);
  }
  // Due periodic bodies are copied out under the registration lock and run
  // with no lock held — they may query this agent or (un)install queries.
  std::vector<std::pair<int, PeriodicQuery>> due;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto& [id, q] : periodic_) {
      if (q.period <= 0 || now >= q.next_due) {
        due.emplace_back(id, q.body);
      }
    }
  }
  for (auto& [id, body] : due) {
    body(*this, now);
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = periodic_.find(id);
    if (it != periodic_.end()) {
      it->second.next_due = now + std::max<SimTime>(it->second.period, 1);
    }
  }
}

void EdgeAgent::FlushAll(SimTime now) {
  std::vector<TrajectoryMemory::Record> evicted;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    memory_.Flush(
        [&evicted](const TrajectoryMemory::Record& rec) { evicted.push_back(rec); });
  }
  for (const TrajectoryMemory::Record& rec : evicted) {
    ConstructAndStore(rec, now);
  }
}

void EdgeAgent::ConstructAndStore(const TrajectoryMemory::Record& rec, SimTime now) {
  // Trajectory cache first; decode against the static topology on a miss.
  std::optional<Path> path;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    path = DecodeHeader(rec.key.flow.src_ip, rec.key.dscp, rec.key.TagVector());
  }
  if (!path) {
    // The trajectory contradicts the ground-truth topology — e.g. a switch
    // inserted a bogus ID (§2.4).  Raise an alarm; do not pollute the TIB.
    ++decode_failures_;
    RaiseAlarm(rec.key.flow, AlarmReason::kInfeasiblePath, {}, now);
    return;
  }
  TibRecord out;
  out.flow = rec.key.flow;
  out.path = CompactPath::FromPath(*path);
  out.stime = rec.stime;
  out.etime = rec.etime;
  out.bytes = rec.bytes;
  out.pkts = rec.pkts;
  IngestRecord(out, now);
}

void EdgeAgent::IngestRecord(const TibRecord& rec, SimTime now) {
  // The TIB locks its owning shard internally; no agent lock is involved.
  tib_.Insert(rec);
  // Hooks run with no lock held: they may query this agent, raise alarms,
  // or (un)register hooks (the snapshot keeps this pass stable).
  std::shared_ptr<const std::vector<RecordHook>> hooks;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    hooks = hook_list_;
  }
  if (hooks != nullptr) {
    for (const RecordHook& hook : *hooks) {
      hook(*this, rec, now);
    }
  }
}

std::vector<Flow> EdgeAgent::GetFlows(const LinkId& link, const TimeRange& range) const {
  return tib_.FlowsOnLink(link, range);
}

std::vector<Path> EdgeAgent::GetPaths(const FiveTuple& flow, const LinkId& link,
                                      const TimeRange& range) const {
  return CollectTibPaths(flow, link, range);
}

std::vector<Path> EdgeAgent::CollectTibPaths(const FiveTuple& flow, const LinkId& link,
                                             const TimeRange& range) const {
  std::vector<Path> out;
  std::unordered_set<uint64_t> seen;
  tib_.ForEachRecordOfFlow(flow, range, [&](size_t, const TibRecord& rec) {
    if (!rec.path.MatchesLinkQuery(link)) {
      return;
    }
    if (seen.insert(rec.path.HashKey()).second) {
      out.push_back(rec.path.ToPath());
    }
  });
  return out;
}

std::vector<Path> EdgeAgent::GetPathsLive(const FiveTuple& flow, const LinkId& link,
                                          const TimeRange& range) {
  // Exclusive: live decoding inserts into the trajectory cache.  Lock
  // order: agent lock, then TIB shard locks inside CollectTibPaths.
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<Path> out = CollectTibPaths(flow, link, range);
  std::unordered_set<uint64_t> seen;
  for (const Path& p : out) {
    seen.insert(CompactPath::FromPath(p).HashKey());
  }
  for (const TrajectoryMemory::Record& rec : memory_.Snapshot()) {
    if (!(rec.key.flow == flow) || !range.Overlaps(rec.stime, rec.etime)) {
      continue;
    }
    std::optional<Path> path =
        DecodeHeader(rec.key.flow.src_ip, rec.key.dscp, rec.key.TagVector());
    if (!path) {
      continue;
    }
    CompactPath cp = CompactPath::FromPath(*path);
    if (cp.MatchesLinkQuery(link) && seen.insert(cp.HashKey()).second) {
      out.push_back(std::move(*path));
    }
  }
  return out;
}

CountSummary EdgeAgent::GetCount(const Flow& flow, const TimeRange& range) const {
  CountSummary out;
  CompactPath want = CompactPath::FromPath(flow.path);
  tib_.ForEachRecordOfFlow(flow.id, range, [&](size_t, const TibRecord& rec) {
    if (!flow.path.empty() && !(rec.path == want)) {
      return;
    }
    out.bytes += rec.bytes;
    out.pkts += rec.pkts;
  });
  return out;
}

SimTime EdgeAgent::GetDuration(const Flow& flow, const TimeRange& range) const {
  SimTime lo = kSimTimeMax;
  SimTime hi = -1;
  CompactPath want = CompactPath::FromPath(flow.path);
  tib_.ForEachRecordOfFlow(flow.id, range, [&](size_t, const TibRecord& rec) {
    if (!flow.path.empty() && !(rec.path == want)) {
      return;
    }
    lo = std::min(lo, rec.stime);
    hi = std::max(hi, rec.etime);
  });
  return hi < lo ? 0 : hi - lo;
}

std::vector<FiveTuple> EdgeAgent::GetPoorTcpFlows(int threshold) const {
  if (threshold <= 0) {
    threshold = config_.poor_retx_threshold;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  return retx_.PoorTcpFlows(threshold);
}

void EdgeAgent::RecordRetransmission(const FiveTuple& flow, SimTime now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  retx_.OnRetransmission(flow, now);
}

uint64_t EdgeAgent::TotalRetx(const FiveTuple& flow) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return retx_.TotalRetx(flow);
}

void EdgeAgent::ResetRetxStreak(const FiveTuple& flow) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  retx_.OnProgress(flow);
}

void EdgeAgent::RaiseAlarm(const FiveTuple& flow, AlarmReason reason, std::vector<Path> paths,
                           SimTime now) {
  if (!alarm_handler_) {
    Logf(LogLevel::kDebug, "unhandled alarm %s from host %u", AlarmReasonName(reason), host_);
    return;
  }
  Alarm a;
  a.host = host_;
  a.flow = flow;
  a.reason = reason;
  a.paths = std::move(paths);
  a.at = now;
  alarm_handler_(a);
}

FlowSizeHistogram EdgeAgent::FlowSizeDistribution(const LinkId& link, const TimeRange& range,
                                                  int64_t bin_width) const {
  // Shard-parallel per-flow byte totals over matching records, then
  // histogram (bin counts are order-independent integer sums).
  FlowBytesMap per_flow = tib_.AggregateFlowBytes(link, range);
  FlowSizeHistogram h;
  h.bin_width = bin_width;
  for (const auto& [flow, bytes] : per_flow) {
    h.bins[int64_t(bytes) / bin_width] += 1;
  }
  return h;
}

TopKFlows EdgeAgent::TopK(size_t k, const TimeRange& range) const {
  // Same shared aggregation as FlowSizeDistribution, over every record
  // ((<*, *>) matches all paths).  Finalize() imposes a total order, so
  // the result is byte-identical at any shard/worker count.
  FlowBytesMap per_flow =
      tib_.AggregateFlowBytes(LinkId{kInvalidNode, kInvalidNode}, range);
  TopKFlows out;
  out.k = k;
  out.items.reserve(per_flow.size());
  for (const auto& [flow, bytes] : per_flow) {
    out.items.emplace_back(bytes, flow);
  }
  out.Finalize();
  return out;
}

std::vector<TrajectoryMemory::Record> EdgeAgent::MemorySnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return memory_.Snapshot();
}

TrajectoryCacheStats EdgeAgent::cache_stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TrajectoryCacheStats{cache_.size(), cache_.capacity(), cache_.hits(), cache_.misses()};
}

int EdgeAgent::AddRecordHook(RecordHook hook) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  int id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  RebuildHookList();
  return id;
}

void EdgeAgent::RemoveRecordHook(int id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  hooks_.erase(id);
  RebuildHookList();
}

void EdgeAgent::RebuildHookList() {
  auto list = std::make_shared<std::vector<RecordHook>>();
  list->reserve(hooks_.size());
  for (const auto& [id, hook] : hooks_) {
    list->push_back(hook);
  }
  hook_list_ = std::move(list);
}

int EdgeAgent::InstallQuery(SimTime period, PeriodicQuery body) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  int id = next_query_id_++;
  periodic_[id] = Installed{period, 0, std::move(body)};
  return id;
}

int EdgeAgent::InstallPoorTcpMonitor(SimTime period, int threshold) {
  return InstallQuery(period, [threshold](EdgeAgent& agent, SimTime now) {
    for (const FiveTuple& flow : agent.GetPoorTcpFlows(threshold)) {
      agent.RaiseAlarm(flow, AlarmReason::kPoorPerf, {}, now);
      // One alarm per episode: progress must restart the streak.
      agent.ResetRetxStreak(flow);
    }
  });
}

int EdgeAgent::RegisterStandingQuery(uint64_t subscription_id, const StandingQuerySpec& spec,
                                     DeltaSink sink) {
  auto reg = std::make_shared<StandingRegistration>();
  reg->accumulator =
      std::make_unique<StandingQueryAccumulator>(subscription_id, host_, spec, &tib_);
  reg->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(reg_mu_);
  int id = next_standing_id_++;
  standing_[id] = std::move(reg);
  return id;
}

// One gated tick: skips registrations already detached (their sink's
// target may be mid-destruction), and holds the gate across the sink
// call so unregister can fence the delivery out.
bool EdgeAgent::TickRegistration(StandingRegistration& reg) {
  static Counter* ticks = MetricsRegistry::Global().GetCounter("epoch.ticks");
  ticks->Add();
  TraceScope span("epoch.tick", TraceKeys{reg.accumulator->subscription_id(),
                                          uint32_t(reg.accumulator->host()), 0});
  std::lock_guard<std::mutex> gate(reg.gate);
  if (reg.detached) {
    return false;
  }
  if (auto delta = reg.accumulator->TakeDelta()) {
    span.set_keys(TraceKeys{delta->subscription_id, uint32_t(delta->host), delta->epoch});
    reg.sink(std::move(*delta));
  }
  return true;
}

void EdgeAgent::UnregisterStandingQuery(int id) {
  std::shared_ptr<StandingRegistration> reg;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = standing_.find(id);
    if (it == standing_.end()) {
      return;
    }
    reg = std::move(it->second);
    standing_.erase(it);
  }
  // Fence out epoch ticks: any tick already inside the gate finishes
  // its delivery first (we block here), and any tick that snapshotted
  // the registration but has not reached the gate yet will see
  // `detached` and do nothing.  After this returns the sink is never
  // invoked again.
  {
    std::lock_guard<std::mutex> gate(reg->gate);
    reg->detached = true;
  }
  // Dropped outside reg_mu_: the accumulator's destructor takes every
  // TIB shard lock to detach its insert hook.  A concurrent EpochTick
  // holding a snapshot reference delays destruction, not this return.
}

void EdgeAgent::EpochTick() {
  std::vector<std::shared_ptr<StandingRegistration>> regs;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    regs.reserve(standing_.size());
    for (const auto& [id, reg] : standing_) {
      regs.push_back(reg);
    }
  }
  for (const auto& reg : regs) {
    TickRegistration(*reg);
  }
  // Seal the TIB's open epoch segments AFTER ticking: every record of the
  // closing epoch has already been folded into each accumulator's partial
  // (insert hooks run at insert time) and shipped by the TakeDelta above,
  // so the segment can later retire under a memory ceiling without
  // standing results losing its contribution.  Sealing happens even with
  // zero registrations — epoch windows are an agent-lifecycle notion, and
  // bounded in-test twins must seal in lockstep with bounded workers.
  tib_.SealEpoch();
}

bool EdgeAgent::EpochTickOne(int id) {
  std::shared_ptr<StandingRegistration> reg;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = standing_.find(id);
    if (it == standing_.end()) {
      return false;
    }
    reg = it->second;
  }
  return TickRegistration(*reg);
}

size_t EdgeAgent::StandingQueryCount() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return standing_.size();
}

size_t EdgeAgent::ResyncStandingQuery(uint64_t subscription_id) {
  std::vector<std::shared_ptr<StandingRegistration>> regs;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& [id, reg] : standing_) {
      if (reg->accumulator->subscription_id() == subscription_id) {
        regs.push_back(reg);
      }
    }
  }
  size_t delivered = 0;
  for (const auto& reg : regs) {
    // Same gate discipline as TickRegistration: hold it across the sink
    // call so UnregisterStandingQuery can fence the delivery out.
    std::lock_guard<std::mutex> gate(reg->gate);
    if (reg->detached) {
      continue;
    }
    reg->sink(reg->accumulator->TakeSnapshot());
    ++delivered;
  }
  return delivered;
}

void EdgeAgent::UninstallQuery(int id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  periodic_.erase(id);
}

size_t EdgeAgent::InstalledQueryCount() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return periodic_.size();
}

}  // namespace pathdump
