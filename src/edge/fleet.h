// AgentFleet: one EdgeAgent per host, wired to a per-packet Network.

#ifndef PATHDUMP_SRC_EDGE_FLEET_H_
#define PATHDUMP_SRC_EDGE_FLEET_H_

#include <memory>
#include <vector>

#include "src/edge/edge_agent.h"
#include "src/netsim/network.h"
#include "src/topology/topology.h"

namespace pathdump {

class AgentFleet {
 public:
  AgentFleet(const Topology* topo, const CherryPickCodec* codec, EdgeAgentConfig config = {});

  EdgeAgent& agent(HostId host) { return *agents_[host]; }
  const EdgeAgent& agent(HostId host) const { return *agents_[host]; }
  EdgeAgent* agent_by_ip(IpAddr ip);

  // Registers every agent as its host's delivery sink on `net`.
  void AttachTo(Network& net);

  // Broadcast helpers.
  void SetAlarmHandler(AlarmHandler handler);
  void TickAll(SimTime now);
  void FlushAll(SimTime now);

  std::vector<EdgeAgent*> all();
  size_t size() const { return agents_.size(); }

 private:
  const Topology* topo_;
  // Indexed by HostId; null for switch NodeIds.
  std::vector<std::unique_ptr<EdgeAgent>> agents_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_FLEET_H_
