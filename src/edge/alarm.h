// Alarm channel from end-host agents to the controller (Table 1: Alarm()).

#ifndef PATHDUMP_SRC_EDGE_ALARM_H_
#define PATHDUMP_SRC_EDGE_ALARM_H_

#include <functional>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

enum class AlarmReason : uint8_t {
  kPoorPerf,         // POOR_PERF: consecutive TCP retransmissions (§2.3)
  kPathConformance,  // PC_FAIL: policy violation on a decoded path (§4.1)
  kInfeasiblePath,   // trajectory inconsistent with ground truth (§2.4)
  kNoProgress,       // flow made no progress (blackhole symptom, §4.4)
};

const char* AlarmReasonName(AlarmReason reason);

struct Alarm {
  HostId host = kInvalidNode;  // agent that raised it
  FiveTuple flow;
  AlarmReason reason = AlarmReason::kPoorPerf;
  std::vector<Path> paths;  // offending path(s), possibly empty
  SimTime at = 0;
  // Intake sequence number, stamped by the controller's alarm pipeline at
  // enqueue (src/controller/alarm_pipeline.h); 0 until then.
  uint64_t seq = 0;

  friend bool operator==(const Alarm&, const Alarm&) = default;
};

using AlarmHandler = std::function<void(const Alarm&)>;

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_ALARM_H_
