#include "src/edge/tib.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"

namespace pathdump {

namespace {

// Inserts are the system's hottest path: every insert bumps one relaxed
// counter, but clock reads and trace-ring pushes happen only on a
// 1-in-(kTraceSampleMask+1) per-thread sample, keeping the overhead gate
// honest (see bench_transport's instrumentation section).
constexpr uint32_t kTraceSampleMask = 1023;

bool SampleThisInsert() {
  thread_local uint32_t n = 0;
  return (++n & kTraceSampleMask) == 0;
}

// On-disk layout: 16-byte header then fixed-size rows.
constexpr uint32_t kTibMagic = 0x50445442;  // "PDTB"
constexpr uint32_t kTibVersion = 1;

struct DiskHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t count;
};

struct DiskRow {
  IpAddr src_ip;
  IpAddr dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t protocol;
  uint8_t path_len;
  uint16_t pad;
  SwitchId path[CompactPath::kMaxSwitches];
  SimTime stime;
  SimTime etime;
  uint64_t bytes;
  uint32_t pkts;
  uint32_t pad2;
};

size_t ResolveShardCount(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
  }
  return std::clamp<size_t>(n, 1, Tib::kMaxShards);
}

}  // namespace

CompactPath CompactPath::FromPath(const Path& p) {
  CompactPath out;
  out.len = uint8_t(p.size() > kMaxSwitches ? kMaxSwitches : p.size());
  for (int i = 0; i < out.len; ++i) {
    out.sw[size_t(i)] = p[size_t(i)];
  }
  return out;
}

Path CompactPath::ToPath() const {
  Path p;
  p.reserve(len);
  for (int i = 0; i < len; ++i) {
    p.push_back(sw[size_t(i)]);
  }
  return p;
}

bool CompactPath::ContainsSwitch(SwitchId s) const {
  for (int i = 0; i < len; ++i) {
    if (sw[size_t(i)] == s) {
      return true;
    }
  }
  return false;
}

bool CompactPath::ContainsDirectedLink(NodeId a, NodeId b) const {
  for (int i = 0; i + 1 < len; ++i) {
    if (sw[size_t(i)] == a && sw[size_t(i) + 1] == b) {
      return true;
    }
  }
  return false;
}

bool CompactPath::MatchesLinkQuery(const LinkId& q) const {
  bool src_any = q.src == kInvalidNode;
  bool dst_any = q.dst == kInvalidNode;
  if (src_any && dst_any) {
    return true;
  }
  if (src_any) {
    // (<?, Sj>): any link entering q.dst — q.dst appears with a predecessor.
    for (int i = 1; i < len; ++i) {
      if (sw[size_t(i)] == q.dst) {
        return true;
      }
    }
    return false;
  }
  if (dst_any) {
    for (int i = 0; i + 1 < len; ++i) {
      if (sw[size_t(i)] == q.src) {
        return true;
      }
    }
    return false;
  }
  return ContainsDirectedLink(q.src, q.dst);
}

Tib::Tib(TibOptions options) : options_(options) {
  shards_.resize(ResolveShardCount(options_.num_shards));
  for (auto& s : shards_) {
    s = std::make_unique<Shard>();
  }
}

template <typename PerShard>
void Tib::ForEachShardParallel(PerShard&& fn) const {
  ThreadPool* pool = scan_pool_.load(std::memory_order_acquire);
  size_t n = shards_.size();
  if (pool == nullptr || pool->worker_count() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, [&fn](size_t i) { fn(i); });
}

template <typename Acc, typename Fill>
std::vector<Acc> Tib::CollectShardPartials(Fill&& fill) const {
  std::vector<Acc> partial(shards_.size());
  ForEachShardParallel([&](size_t si) {
    const Shard& s = *shards_[si];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    fill(partial[si], s);
  });
  return partial;
}

namespace {

// Flattens per-shard partial vectors, reserving the exact total.
template <typename T>
std::vector<T> ConcatPartials(const std::vector<std::vector<T>>& partial) {
  size_t total = 0;
  for (const auto& p : partial) {
    total += p.size();
  }
  std::vector<T> out;
  out.reserve(total);
  for (const auto& p : partial) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace

void Tib::Insert(const TibRecord& rec) {
  static Counter* inserts = MetricsRegistry::Global().GetCounter("tib.inserts");
  static LatencyHistogram* insert_us =
      MetricsRegistry::Global().GetHistogram("tib.insert_us");
  inserts->Add();
  const bool sampled = MetricsRegistry::enabled() && SampleThisInsert();
  const uint64_t t0 = sampled ? Tracer::Global().NowUs() : 0;

  const size_t si = ShardOf(rec.flow);
  Shard& s = *shards_[si];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  // The id is claimed under the shard lock so each shard's id column stays
  // strictly ascending — the invariant the ordered reduces rely on.
  uint64_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  // Row first, index last, with rollback: an allocation failure in any
  // step must not leave a half-inserted row or a by-flow entry pointing
  // past the column (an id gap is harmless — ids only need to ascend).
  s.records.push_back(rec);
  try {
    s.ids.push_back(id);
    if (options_.index_by_flow) {
      s.by_flow[rec.flow].push_back(uint32_t(s.records.size() - 1));
    }
  } catch (...) {
    if (s.ids.size() == s.records.size()) {
      s.ids.pop_back();
    }
    s.records.pop_back();
    throw;
  }
  count_.fetch_add(1, std::memory_order_acq_rel);
  // Standing-query accumulators ride the shard lock already held here:
  // the hook table is only ever swapped under all shard locks, so this
  // read is race-free, and per-shard partials need no lock of their own.
  for (const auto& [hook_id, hook] : insert_hooks_) {
    hook(si, id, rec);
  }
  if (sampled) {
    const uint64_t dur = Tracer::Global().NowUs() - t0;
    insert_us->Record(dur);
    Tracer::Global().Record("tib.insert", t0, dur, TraceKeys{});
  }
}

int Tib::AddInsertHook(InsertHook hook) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  int id = next_insert_hook_id_++;
  insert_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Tib::RemoveInsertHook(int id) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  std::erase_if(insert_hooks_, [id](const auto& entry) { return entry.first == id; });
}

size_t Tib::insert_hook_count() const {
  // Any one shard lock orders this read against the all-locks writers.
  std::shared_lock<std::shared_mutex> lock(shards_[0]->mu);
  return insert_hooks_.size();
}

void Tib::ForEachShardExclusive(const std::function<void(size_t)>& fn) const {
  for (size_t si = 0; si < shards_.size(); ++si) {
    std::unique_lock<std::shared_mutex> lock(shards_[si]->mu);
    fn(si);
  }
}

void Tib::ForEachShardRecordExclusive(
    const std::function<void(size_t)>& on_shard,
    const std::function<void(size_t, uint64_t, const TibRecord&)>& on_record) const {
  for (size_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = *shards_[si];
    std::unique_lock<std::shared_mutex> lock(s.mu);
    if (on_shard) {
      on_shard(si);
    }
    for (size_t i = 0; i < s.records.size(); ++i) {
      on_record(si, s.ids[i], s.records[i]);
    }
  }
}

TibRecord Tib::record(size_t id) const {
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    auto it = std::lower_bound(s.ids.begin(), s.ids.end(), uint64_t(id));
    if (it != s.ids.end() && *it == uint64_t(id)) {
      return s.records[size_t(it - s.ids.begin())];
    }
  }
  return TibRecord{};
}

void Tib::ForEachRecord(const std::function<void(size_t, const TibRecord&)>& fn) const {
  // Lock every shard (ascending — the documented hierarchy), then k-way
  // merge the per-shard ascending id columns.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  // Min-heap over one (id, shard) head per shard: O(n log s) for the
  // whole walk, and the all-shards lock window stays as short as the
  // visitor allows.
  using Head = std::pair<uint64_t, size_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heads;
  std::vector<size_t> cursor(shards_.size(), 0);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->ids.empty()) {
      heads.emplace(shards_[i]->ids[0], i);
    }
  }
  while (!heads.empty()) {
    auto [id, si] = heads.top();
    heads.pop();
    const Shard& s = *shards_[si];
    fn(size_t(id), s.records[cursor[si]]);
    if (++cursor[si] < s.ids.size()) {
      heads.emplace(s.ids[cursor[si]], si);
    }
  }
}

void Tib::ForEachRecordUnordered(const std::function<void(const TibRecord&)>& fn) const {
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (const TibRecord& rec : s.records) {
      fn(rec);
    }
  }
}

std::vector<TibRecord> Tib::records() const {
  std::vector<TibRecord> out;
  out.reserve(size());
  ForEachRecord([&out](size_t, const TibRecord& rec) { out.push_back(rec); });
  return out;
}

std::vector<size_t> Tib::RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const {
  std::vector<size_t> out;
  ForEachRecordOfFlow(flow, range, [&out](size_t id, const TibRecord&) { out.push_back(id); });
  return out;
}

void Tib::ForEachRecordOfFlow(const FiveTuple& flow, const TimeRange& range,
                              const std::function<void(size_t, const TibRecord&)>& fn) const {
  const Shard& s = *shards_[ShardOf(flow)];
  std::shared_lock<std::shared_mutex> lock(s.mu);
  if (options_.index_by_flow) {
    auto it = s.by_flow.find(flow);
    if (it == s.by_flow.end()) {
      return;
    }
    for (uint32_t idx : it->second) {
      if (s.records[idx].Overlaps(range)) {
        fn(size_t(s.ids[idx]), s.records[idx]);
      }
    }
    return;
  }
  for (size_t i = 0; i < s.records.size(); ++i) {
    if (s.records[i].flow == flow && s.records[i].Overlaps(range)) {
      fn(size_t(s.ids[i]), s.records[i]);
    }
  }
}

std::vector<size_t> Tib::RecordsOnLink(const LinkId& link, const TimeRange& range) const {
  auto partial = CollectShardPartials<std::vector<size_t>>([&](std::vector<size_t>& out,
                                                               const Shard& s) {
    for (size_t i = 0; i < s.records.size(); ++i) {
      if (s.records[i].Overlaps(range) && s.records[i].path.MatchesLinkQuery(link)) {
        out.push_back(size_t(s.ids[i]));
      }
    }
  });
  std::vector<size_t> out = ConcatPartials(partial);
  // Ascending id == insertion order: the same answer at any shard count.
  std::sort(out.begin(), out.end());
  return out;
}

FlowBytesMap Tib::AggregateFlowBytes(const LinkId& link, const TimeRange& range) const {
  const bool match_all = link.src == kInvalidNode && link.dst == kInvalidNode;
  auto partial = CollectShardPartials<FlowBytesMap>([&](FlowBytesMap& m, const Shard& s) {
    for (const TibRecord& rec : s.records) {
      if (rec.Overlaps(range) && (match_all || rec.path.MatchesLinkQuery(link))) {
        m[rec.flow] += rec.bytes;
      }
    }
  });
  // Each flow hashes to exactly one shard, so the partial maps are
  // key-disjoint and the merge is pure concatenation: per-flow totals are
  // deterministic integer sums regardless of shard or worker count.
  size_t total = 0;
  for (const auto& m : partial) {
    total += m.size();
  }
  FlowBytesMap out;
  out.reserve(total);
  for (auto& m : partial) {
    for (const auto& [flow, bytes] : m) {
      out.emplace(flow, bytes);
    }
  }
  return out;
}

CountSummary Tib::CountOnLink(const LinkId& link, const TimeRange& range) const {
  const bool match_all = link.src == kInvalidNode && link.dst == kInvalidNode;
  auto partial = CollectShardPartials<CountSummary>([&](CountSummary& c, const Shard& s) {
    for (const TibRecord& rec : s.records) {
      if (rec.Overlaps(range) && (match_all || rec.path.MatchesLinkQuery(link))) {
        c.bytes += rec.bytes;
        c.pkts += rec.pkts;
      }
    }
  });
  CountSummary out;
  for (const CountSummary& c : partial) {
    out.bytes += c.bytes;
    out.pkts += c.pkts;
  }
  return out;
}

std::vector<Flow> Tib::FlowsOnLink(const LinkId& link, const TimeRange& range) const {
  struct Candidate {
    uint64_t id;
    FiveTuple flow;
    CompactPath path;
  };
  auto partial = CollectShardPartials<std::vector<Candidate>>([&](std::vector<Candidate>& out,
                                                                  const Shard& s) {
    // Duplicates of a (flow, path) pair always share a shard (the flow
    // picks it), so per-shard first-occurrence dedup is complete.  The
    // hash key only buckets; equality is exact, so the answer cannot
    // depend on shard count even under a 64-bit collision.
    std::unordered_map<uint64_t, std::vector<size_t>> seen;  // key -> out indices
    for (size_t i = 0; i < s.records.size(); ++i) {
      const TibRecord& rec = s.records[i];
      if (!rec.Overlaps(range) || !rec.path.MatchesLinkQuery(link)) {
        continue;
      }
      uint64_t key = rec.path.HashKey(FiveTupleHash{}(rec.flow));
      std::vector<size_t>& bucket = seen[key];
      bool dup = false;
      for (size_t idx : bucket) {
        if (out[idx].flow == rec.flow && out[idx].path == rec.path) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(out.size());
        out.push_back(Candidate{s.ids[i], rec.flow, rec.path});
      }
    }
  });
  std::vector<Candidate> merged = ConcatPartials(partial);
  // First-appearance order across the whole TIB = ascending first id.
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  std::vector<Flow> out;
  out.reserve(merged.size());
  for (const Candidate& c : merged) {
    out.push_back(Flow{c.flow, c.path.ToPath()});
  }
  return out;
}

size_t Tib::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    bytes += s.records.capacity() * sizeof(TibRecord);
    bytes += s.ids.capacity() * sizeof(uint64_t);
    bytes += s.by_flow.size() * (sizeof(FiveTuple) + sizeof(std::vector<uint32_t>) + 24);
    for (const auto& [flow, v] : s.by_flow) {
      bytes += v.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

size_t Tib::SaveTo(const std::string& path) const {
  // Snapshot first (one consistent pass under all shard locks) so the
  // header count always matches the rows written, even if inserts race.
  std::vector<TibRecord> snap = records();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return 0;
  }
  DiskHeader hdr{kTibMagic, kTibVersion, snap.size()};
  size_t written = 0;
  bool failed = false;
  if (std::fwrite(&hdr, sizeof(hdr), 1, f) == 1) {
    written += sizeof(hdr);
    for (const TibRecord& rec : snap) {
      DiskRow row{};
      row.src_ip = rec.flow.src_ip;
      row.dst_ip = rec.flow.dst_ip;
      row.src_port = rec.flow.src_port;
      row.dst_port = rec.flow.dst_port;
      row.protocol = rec.flow.protocol;
      row.path_len = rec.path.len;
      for (int i = 0; i < rec.path.len; ++i) {
        row.path[i] = rec.path.sw[size_t(i)];
      }
      row.stime = rec.stime;
      row.etime = rec.etime;
      row.bytes = rec.bytes;
      row.pkts = rec.pkts;
      if (std::fwrite(&row, sizeof(row), 1, f) != 1) {
        failed = true;
        break;
      }
      written += sizeof(row);
    }
  } else {
    failed = true;
  }
  std::fclose(f);
  return failed ? 0 : written;
}

int64_t Tib::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return -1;
  }
  DiskHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 || hdr.magic != kTibMagic ||
      hdr.version != kTibVersion) {
    std::fclose(f);
    return -1;
  }
  // Parse the whole file into staging first, then replace the contents in
  // one all-locks critical section, so concurrent readers never observe a
  // half-loaded TIB.  (The reserve is capped: a corrupt count with a valid
  // magic must not force a huge allocation before row reads catch it.)
  std::vector<TibRecord> rows;
  rows.reserve(size_t(std::min<uint64_t>(hdr.count, 1u << 20)));
  for (uint64_t i = 0; i < hdr.count; ++i) {
    DiskRow row{};
    if (std::fread(&row, sizeof(row), 1, f) != 1 || row.path_len > CompactPath::kMaxSwitches) {
      std::fclose(f);
      Clear();
      return -1;
    }
    TibRecord rec;
    rec.flow.src_ip = row.src_ip;
    rec.flow.dst_ip = row.dst_ip;
    rec.flow.src_port = row.src_port;
    rec.flow.dst_port = row.dst_port;
    rec.flow.protocol = row.protocol;
    rec.path.len = row.path_len;
    for (int j = 0; j < row.path_len; ++j) {
      rec.path.sw[size_t(j)] = row.path[j];
    }
    rec.stime = row.stime;
    rec.etime = row.etime;
    rec.bytes = row.bytes;
    rec.pkts = row.pkts;
    rows.push_back(rec);
  }
  std::fclose(f);

  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  for (const auto& sp : shards_) {
    sp->records.clear();
    sp->ids.clear();
    sp->by_flow.clear();
  }
  uint64_t id = 0;
  for (const TibRecord& rec : rows) {
    Shard& s = *shards_[ShardOf(rec.flow)];
    s.records.push_back(rec);
    s.ids.push_back(id++);
    if (options_.index_by_flow) {
      s.by_flow[rec.flow].push_back(uint32_t(s.records.size() - 1));
    }
  }
  next_id_.store(id, std::memory_order_release);
  count_.store(id, std::memory_order_release);
  return int64_t(rows.size());
}

void Tib::Clear() {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  for (const auto& sp : shards_) {
    sp->records.clear();
    sp->ids.clear();
    sp->by_flow.clear();
  }
  next_id_.store(0, std::memory_order_release);
  count_.store(0, std::memory_order_release);
}

}  // namespace pathdump
