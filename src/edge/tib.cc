#include "src/edge/tib.h"

#include <cstdio>

namespace pathdump {

namespace {

// On-disk layout: 16-byte header then fixed-size rows.
constexpr uint32_t kTibMagic = 0x50445442;  // "PDTB"
constexpr uint32_t kTibVersion = 1;

struct DiskHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t count;
};

struct DiskRow {
  IpAddr src_ip;
  IpAddr dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t protocol;
  uint8_t path_len;
  uint16_t pad;
  SwitchId path[CompactPath::kMaxSwitches];
  SimTime stime;
  SimTime etime;
  uint64_t bytes;
  uint32_t pkts;
  uint32_t pad2;
};

}  // namespace

CompactPath CompactPath::FromPath(const Path& p) {
  CompactPath out;
  out.len = uint8_t(p.size() > kMaxSwitches ? kMaxSwitches : p.size());
  for (int i = 0; i < out.len; ++i) {
    out.sw[size_t(i)] = p[size_t(i)];
  }
  return out;
}

Path CompactPath::ToPath() const {
  Path p;
  p.reserve(len);
  for (int i = 0; i < len; ++i) {
    p.push_back(sw[size_t(i)]);
  }
  return p;
}

bool CompactPath::ContainsSwitch(SwitchId s) const {
  for (int i = 0; i < len; ++i) {
    if (sw[size_t(i)] == s) {
      return true;
    }
  }
  return false;
}

bool CompactPath::ContainsDirectedLink(NodeId a, NodeId b) const {
  for (int i = 0; i + 1 < len; ++i) {
    if (sw[size_t(i)] == a && sw[size_t(i) + 1] == b) {
      return true;
    }
  }
  return false;
}

bool CompactPath::MatchesLinkQuery(const LinkId& q) const {
  bool src_any = q.src == kInvalidNode;
  bool dst_any = q.dst == kInvalidNode;
  if (src_any && dst_any) {
    return true;
  }
  if (src_any) {
    // (<?, Sj>): any link entering q.dst — q.dst appears with a predecessor.
    for (int i = 1; i < len; ++i) {
      if (sw[size_t(i)] == q.dst) {
        return true;
      }
    }
    return false;
  }
  if (dst_any) {
    for (int i = 0; i + 1 < len; ++i) {
      if (sw[size_t(i)] == q.src) {
        return true;
      }
    }
    return false;
  }
  return ContainsDirectedLink(q.src, q.dst);
}

void Tib::Insert(const TibRecord& rec) {
  uint32_t idx = uint32_t(records_.size());
  records_.push_back(rec);
  if (options_.index_by_flow) {
    by_flow_[rec.flow].push_back(idx);
  }
}

std::vector<size_t> Tib::RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const {
  std::vector<size_t> out;
  if (options_.index_by_flow) {
    auto it = by_flow_.find(flow);
    if (it == by_flow_.end()) {
      return out;
    }
    for (uint32_t idx : it->second) {
      if (records_[idx].Overlaps(range)) {
        out.push_back(idx);
      }
    }
    return out;
  }
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].flow == flow && records_[i].Overlaps(range)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> Tib::RecordsOnLink(const LinkId& link, const TimeRange& range) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].Overlaps(range) && records_[i].path.MatchesLinkQuery(link)) {
      out.push_back(i);
    }
  }
  return out;
}

size_t Tib::ApproxBytes() const {
  size_t bytes = records_.capacity() * sizeof(TibRecord);
  bytes += by_flow_.size() * (sizeof(FiveTuple) + sizeof(std::vector<uint32_t>) + 24);
  for (const auto& [flow, v] : by_flow_) {
    bytes += v.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

size_t Tib::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return 0;
  }
  DiskHeader hdr{kTibMagic, kTibVersion, records_.size()};
  size_t written = 0;
  if (std::fwrite(&hdr, sizeof(hdr), 1, f) == 1) {
    written += sizeof(hdr);
    for (const TibRecord& rec : records_) {
      DiskRow row{};
      row.src_ip = rec.flow.src_ip;
      row.dst_ip = rec.flow.dst_ip;
      row.src_port = rec.flow.src_port;
      row.dst_port = rec.flow.dst_port;
      row.protocol = rec.flow.protocol;
      row.path_len = rec.path.len;
      for (int i = 0; i < rec.path.len; ++i) {
        row.path[i] = rec.path.sw[size_t(i)];
      }
      row.stime = rec.stime;
      row.etime = rec.etime;
      row.bytes = rec.bytes;
      row.pkts = rec.pkts;
      if (std::fwrite(&row, sizeof(row), 1, f) != 1) {
        std::fclose(f);
        return 0;
      }
      written += sizeof(row);
    }
  } else {
    written = 0;
  }
  std::fclose(f);
  return written;
}

int64_t Tib::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return -1;
  }
  DiskHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 || hdr.magic != kTibMagic ||
      hdr.version != kTibVersion) {
    std::fclose(f);
    return -1;
  }
  Clear();
  for (uint64_t i = 0; i < hdr.count; ++i) {
    DiskRow row{};
    if (std::fread(&row, sizeof(row), 1, f) != 1 || row.path_len > CompactPath::kMaxSwitches) {
      std::fclose(f);
      Clear();
      return -1;
    }
    TibRecord rec;
    rec.flow.src_ip = row.src_ip;
    rec.flow.dst_ip = row.dst_ip;
    rec.flow.src_port = row.src_port;
    rec.flow.dst_port = row.dst_port;
    rec.flow.protocol = row.protocol;
    rec.path.len = row.path_len;
    for (int j = 0; j < row.path_len; ++j) {
      rec.path.sw[size_t(j)] = row.path[j];
    }
    rec.stime = row.stime;
    rec.etime = row.etime;
    rec.bytes = row.bytes;
    rec.pkts = row.pkts;
    Insert(rec);
  }
  std::fclose(f);
  return int64_t(hdr.count);
}

void Tib::Clear() {
  records_.clear();
  by_flow_.clear();
}

}  // namespace pathdump
