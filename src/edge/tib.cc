#include "src/edge/tib.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"

namespace pathdump {

namespace {

// Inserts are the system's hottest path: every insert bumps one relaxed
// counter, but clock reads and trace-ring pushes happen only on a
// 1-in-(kTraceSampleMask+1) per-thread sample, keeping the overhead gate
// honest (see bench_transport's instrumentation section).
constexpr uint32_t kTraceSampleMask = 1023;

bool SampleThisInsert() {
  thread_local uint32_t n = 0;
  return (++n & kTraceSampleMask) == 0;
}

// Process-wide resident level across every live Tib (Gauge::Add deltas,
// never Set — instances each contribute their accounted bytes and take
// them back on eviction/Clear/destruction).
Gauge* ResidentGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("tib.bytes_resident");
  return g;
}

// On-disk layout: 16-byte header then fixed-size rows.
constexpr uint32_t kTibMagic = 0x50445442;  // "PDTB"
constexpr uint32_t kTibVersion = 1;

struct DiskHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t count;
};

struct DiskRow {
  IpAddr src_ip;
  IpAddr dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t protocol;
  uint8_t path_len;
  uint16_t pad;
  SwitchId path[CompactPath::kMaxSwitches];
  SimTime stime;
  SimTime etime;
  uint64_t bytes;
  uint32_t pkts;
  uint32_t pad2;
};

size_t ResolveShardCount(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
  }
  return std::clamp<size_t>(n, 1, Tib::kMaxShards);
}

}  // namespace

CompactPath CompactPath::FromPath(const Path& p) {
  CompactPath out;
  out.len = uint8_t(p.size() > kMaxSwitches ? kMaxSwitches : p.size());
  for (int i = 0; i < out.len; ++i) {
    out.sw[size_t(i)] = p[size_t(i)];
  }
  return out;
}

Path CompactPath::ToPath() const {
  Path p;
  p.reserve(len);
  for (int i = 0; i < len; ++i) {
    p.push_back(sw[size_t(i)]);
  }
  return p;
}

bool CompactPath::ContainsSwitch(SwitchId s) const {
  for (int i = 0; i < len; ++i) {
    if (sw[size_t(i)] == s) {
      return true;
    }
  }
  return false;
}

bool CompactPath::ContainsDirectedLink(NodeId a, NodeId b) const {
  for (int i = 0; i + 1 < len; ++i) {
    if (sw[size_t(i)] == a && sw[size_t(i) + 1] == b) {
      return true;
    }
  }
  return false;
}

bool CompactPath::MatchesLinkQuery(const LinkId& q) const {
  bool src_any = q.src == kInvalidNode;
  bool dst_any = q.dst == kInvalidNode;
  if (src_any && dst_any) {
    return true;
  }
  if (src_any) {
    // (<?, Sj>): any link entering q.dst — q.dst appears with a predecessor.
    for (int i = 1; i < len; ++i) {
      if (sw[size_t(i)] == q.dst) {
        return true;
      }
    }
    return false;
  }
  if (dst_any) {
    for (int i = 0; i + 1 < len; ++i) {
      if (sw[size_t(i)] == q.src) {
        return true;
      }
    }
    return false;
  }
  return ContainsDirectedLink(q.src, q.dst);
}

Tib::Tib(TibOptions options) : options_(options) {
  shards_.resize(ResolveShardCount(options_.num_shards));
  for (auto& s : shards_) {
    s = std::make_unique<Shard>();
  }
}

Tib::~Tib() {
  // Return this instance's contribution to the process-wide level so the
  // gauge tracks live TIBs only.
  ResidentGauge()->Add(-int64_t(resident_bytes_.load(std::memory_order_acquire)));
}

template <typename PerShard>
void Tib::ForEachShardParallel(PerShard&& fn) const {
  ThreadPool* pool = scan_pool_.load(std::memory_order_acquire);
  size_t n = shards_.size();
  if (pool == nullptr || pool->worker_count() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, [&fn](size_t i) { fn(i); });
}

template <typename Acc, typename Fill>
std::vector<Acc> Tib::CollectShardPartials(Fill&& fill) const {
  std::vector<Acc> partial(shards_.size());
  ForEachShardParallel([&](size_t si) {
    const Shard& s = *shards_[si];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    fill(partial[si], s);
  });
  return partial;
}

namespace {

// Flattens per-shard partial vectors, reserving the exact total.
template <typename T>
std::vector<T> ConcatPartials(const std::vector<std::vector<T>>& partial) {
  size_t total = 0;
  for (const auto& p : partial) {
    total += p.size();
  }
  std::vector<T> out;
  out.reserve(total);
  for (const auto& p : partial) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace

void Tib::Insert(const TibRecord& rec) {
  static Counter* inserts = MetricsRegistry::Global().GetCounter("tib.inserts");
  static LatencyHistogram* insert_us =
      MetricsRegistry::Global().GetHistogram("tib.insert_us");
  inserts->Add();
  const bool sampled = MetricsRegistry::enabled() && SampleThisInsert();
  const uint64_t t0 = sampled ? Tracer::Global().NowUs() : 0;

  const size_t si = ShardOf(rec.flow);
  Shard& s = *shards_[si];
  std::unique_lock<std::shared_mutex> lock(s.mu);
  // The id is claimed under the shard lock so each shard's id column stays
  // strictly ascending — the invariant the ordered reduces rely on.
  uint64_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  // Append to the open segment, creating one if the previous was sealed.
  const bool fresh_segment = s.segments.empty() || s.segments.back().sealed;
  if (fresh_segment) {
    s.segments.emplace_back();
  }
  Segment& seg = s.segments.back();
  // Row first, index last, with rollback: an allocation failure in any
  // step must not leave a half-inserted row or a by-flow entry pointing
  // past the column (an id gap is harmless — ids only need to ascend).
  seg.records.push_back(rec);
  try {
    seg.ids.push_back(id);
    if (options_.index_by_flow) {
      const uint64_t seq = s.base_seq + uint64_t(s.segments.size()) - 1;
      s.by_flow[rec.flow].push_back((seq << 32) | uint64_t(seg.records.size() - 1));
    }
  } catch (...) {
    if (seg.ids.size() == seg.records.size()) {
      seg.ids.pop_back();
    }
    seg.records.pop_back();
    if (fresh_segment && seg.records.empty()) {
      s.segments.pop_back();
    }
    throw;
  }
  count_.fetch_add(1, std::memory_order_acq_rel);
  inserted_.fetch_add(1, std::memory_order_relaxed);
  const size_t per_record = PerRecordBytes();
  resident_bytes_.fetch_add(per_record, std::memory_order_acq_rel);
  ResidentGauge()->Add(int64_t(per_record));
  // Standing-query accumulators ride the shard lock already held here:
  // the hook table is only ever swapped under all shard locks, so this
  // read is race-free, and per-shard partials need no lock of their own.
  for (const auto& [hook_id, hook] : insert_hooks_) {
    hook(si, id, rec);
  }
  lock.unlock();
  // Opportunistic ceiling enforcement: the moment resident bytes cross
  // the ceiling, the inserting thread retires sealed epochs (try-lock —
  // if another thread is already retiring, this one moves on).  Must run
  // after the shard lock is released: enforcement takes shard locks.
  if (options_.max_memory_bytes > 0 &&
      resident_bytes_.load(std::memory_order_relaxed) > options_.max_memory_bytes) {
    TryEnforceCeiling();
  }
  if (sampled) {
    const uint64_t dur = Tracer::Global().NowUs() - t0;
    insert_us->Record(dur);
    Tracer::Global().Record("tib.insert", t0, dur, TraceKeys{});
  }
}

void Tib::SealEpoch() {
  static Counter* seals = MetricsRegistry::Global().GetCounter("tib.epochs_sealed");
  std::lock_guard<std::mutex> seal(seal_mu_);
  const uint64_t e = current_epoch_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    std::unique_lock<std::shared_mutex> lock(sp->mu);
    if (!sp->segments.empty() && !sp->segments.back().sealed) {
      sp->segments.back().epoch = e;
      sp->segments.back().sealed = true;
    }
  }
  current_epoch_.store(e + 1, std::memory_order_release);
  epochs_sealed_.fetch_add(1, std::memory_order_relaxed);
  seals->Add();
  EnforceCeilingLocked();
}

void Tib::RetireFrontLocked(Shard& s) {
  static Counter* retired_ctr = MetricsRegistry::Global().GetCounter("tib.segments_retired");
  static Counter* evicted_ctr = MetricsRegistry::Global().GetCounter("tib.evicted_records");
  Segment& seg = s.segments.front();
  const uint64_t retiring_seq = s.base_seq;
  if (options_.index_by_flow) {
    // Refs are ascending by (seq, slot) and the front segment holds the
    // lowest seq, so each flow's dropped entries are exactly the prefix
    // stamped with the retiring seq.  Visiting the flow of every retired
    // record covers every key that can hold such a prefix; repeat visits
    // of a flow find an already-pruned vector and drop nothing.
    for (const TibRecord& rec : seg.records) {
      auto it = s.by_flow.find(rec.flow);
      if (it == s.by_flow.end()) {
        continue;
      }
      std::vector<uint64_t>& refs = it->second;
      size_t drop = 0;
      while (drop < refs.size() && (refs[drop] >> 32) == retiring_seq) {
        ++drop;
      }
      if (drop == 0) {
        continue;
      }
      if (drop == refs.size()) {
        s.by_flow.erase(it);
      } else {
        refs.erase(refs.begin(), refs.begin() + ptrdiff_t(drop));
      }
    }
  }
  const size_t n = seg.records.size();
  count_.fetch_sub(n, std::memory_order_acq_rel);
  evicted_.fetch_add(n, std::memory_order_relaxed);
  segments_retired_.fetch_add(1, std::memory_order_relaxed);
  const size_t bytes = n * PerRecordBytes();
  resident_bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
  ResidentGauge()->Add(-int64_t(bytes));
  retired_ctr->Add();
  evicted_ctr->Add(n);
  s.segments.pop_front();
  ++s.base_seq;
}

void Tib::EnforceCeilingLocked() {
  const size_t max = options_.max_memory_bytes;
  if (max == 0) {
    return;
  }
  while (resident_bytes_.load(std::memory_order_acquire) > max) {
    // Oldest sealed epoch still retained, across all shards.  Epochs
    // retire whole — every shard's segments for that epoch go together —
    // so the retained window is always a contiguous epoch suffix and the
    // decision is deterministic given (inserts, seal points, ceiling).
    uint64_t oldest = UINT64_MAX;
    for (const auto& sp : shards_) {
      std::shared_lock<std::shared_mutex> lock(sp->mu);
      if (!sp->segments.empty() && sp->segments.front().sealed) {
        oldest = std::min(oldest, sp->segments.front().epoch);
      }
    }
    if (oldest == UINT64_MAX) {
      return;  // only open segments remain; nothing is eligible
    }
    for (const auto& sp : shards_) {
      std::unique_lock<std::shared_mutex> lock(sp->mu);
      while (!sp->segments.empty() && sp->segments.front().sealed &&
             sp->segments.front().epoch <= oldest) {
        RetireFrontLocked(*sp);
      }
    }
  }
}

void Tib::TryEnforceCeiling() {
  std::unique_lock<std::mutex> seal(seal_mu_, std::try_to_lock);
  if (!seal.owns_lock()) {
    return;  // someone else is sealing/retiring; they will enforce
  }
  EnforceCeilingLocked();
}

TibMemoryStats Tib::MemoryStats() const {
  TibMemoryStats st;
  st.resident_bytes = resident_bytes_.load(std::memory_order_acquire);
  st.retained_records = count_.load(std::memory_order_acquire);
  st.inserted_records = inserted_.load(std::memory_order_relaxed);
  st.evicted_records = evicted_.load(std::memory_order_relaxed);
  st.segments_retired = segments_retired_.load(std::memory_order_relaxed);
  st.epochs_sealed = epochs_sealed_.load(std::memory_order_relaxed);
  st.current_epoch = current_epoch_.load(std::memory_order_acquire);
  uint64_t oldest = UINT64_MAX;
  size_t segs = 0;
  for (const auto& sp : shards_) {
    std::shared_lock<std::shared_mutex> lock(sp->mu);
    segs += sp->segments.size();
    if (!sp->segments.empty() && sp->segments.front().sealed) {
      oldest = std::min(oldest, sp->segments.front().epoch);
    }
  }
  st.segment_count = segs;
  st.oldest_retained_epoch = oldest == UINT64_MAX ? 0 : oldest;
  return st;
}

int Tib::AddInsertHook(InsertHook hook) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  int id = next_insert_hook_id_++;
  insert_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Tib::RemoveInsertHook(int id) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  std::erase_if(insert_hooks_, [id](const auto& entry) { return entry.first == id; });
}

size_t Tib::insert_hook_count() const {
  // Any one shard lock orders this read against the all-locks writers.
  std::shared_lock<std::shared_mutex> lock(shards_[0]->mu);
  return insert_hooks_.size();
}

void Tib::ForEachShardExclusive(const std::function<void(size_t)>& fn) const {
  for (size_t si = 0; si < shards_.size(); ++si) {
    std::unique_lock<std::shared_mutex> lock(shards_[si]->mu);
    fn(si);
  }
}

void Tib::ForEachShardRecordExclusive(
    const std::function<void(size_t)>& on_shard,
    const std::function<void(size_t, uint64_t, const TibRecord&)>& on_record) const {
  for (size_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = *shards_[si];
    std::unique_lock<std::shared_mutex> lock(s.mu);
    if (on_shard) {
      on_shard(si);
    }
    // Retained records only: a resync snapshot taken here is window-scoped
    // by construction — retired epochs are simply not there to scan.
    s.ForEachStored([&](uint64_t id, const TibRecord& rec) { on_record(si, id, rec); });
  }
}

std::optional<TibRecord> Tib::record(size_t id) const {
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (const Segment& seg : s.segments) {
      if (uint64_t(id) > seg.ids.back()) {
        continue;  // a newer segment of this shard may hold it
      }
      if (uint64_t(id) < seg.ids.front()) {
        break;  // ids ascend across segments: not in this shard
      }
      auto it = std::lower_bound(seg.ids.begin(), seg.ids.end(), uint64_t(id));
      if (it != seg.ids.end() && *it == uint64_t(id)) {
        return seg.records[size_t(it - seg.ids.begin())];
      }
      break;  // would have been in this segment's id range
    }
  }
  // Typed miss: never inserted, rolled back, or evicted with its epoch.
  return std::nullopt;
}

void Tib::ForEachRecord(const std::function<void(size_t, const TibRecord&)>& fn) const {
  // Lock every shard (ascending — the documented hierarchy), then k-way
  // merge the per-shard ascending id columns.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  // Min-heap over one (id, shard) head per shard: O(n log s) for the
  // whole walk, and the all-shards lock window stays as short as the
  // visitor allows.  Each shard's cursor walks its segment ring in order
  // (ids ascend across a shard's segments).
  struct Pos {
    size_t seg = 0;
    size_t slot = 0;
  };
  std::vector<Pos> pos(shards_.size());
  auto head_of = [&](size_t si) -> const Segment* {
    const Shard& s = *shards_[si];
    Pos& p = pos[si];
    while (p.seg < s.segments.size() && p.slot >= s.segments[p.seg].records.size()) {
      ++p.seg;
      p.slot = 0;
    }
    return p.seg < s.segments.size() ? &s.segments[p.seg] : nullptr;
  };
  using Head = std::pair<uint64_t, size_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heads;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (const Segment* seg = head_of(i)) {
      heads.emplace(seg->ids[pos[i].slot], i);
    }
  }
  while (!heads.empty()) {
    auto [id, si] = heads.top();
    heads.pop();
    fn(size_t(id), shards_[si]->segments[pos[si].seg].records[pos[si].slot]);
    ++pos[si].slot;
    if (const Segment* seg = head_of(si)) {
      heads.emplace(seg->ids[pos[si].slot], si);
    }
  }
}

void Tib::ForEachRecordUnordered(const std::function<void(const TibRecord&)>& fn) const {
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (const Segment& seg : s.segments) {
      for (const TibRecord& rec : seg.records) {
        fn(rec);
      }
    }
  }
}

std::vector<TibRecord> Tib::records() const {
  std::vector<TibRecord> out;
  out.reserve(size());
  ForEachRecord([&out](size_t, const TibRecord& rec) { out.push_back(rec); });
  return out;
}

std::vector<size_t> Tib::RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const {
  std::vector<size_t> out;
  ForEachRecordOfFlow(flow, range, [&out](size_t id, const TibRecord&) { out.push_back(id); });
  return out;
}

bool Tib::ForEachRecordOfFlow(const FiveTuple& flow, const TimeRange& range,
                              const std::function<void(size_t, const TibRecord&)>& fn) const {
  const Shard& s = *shards_[ShardOf(flow)];
  std::shared_lock<std::shared_mutex> lock(s.mu);
  if (options_.index_by_flow) {
    auto it = s.by_flow.find(flow);
    if (it == s.by_flow.end()) {
      return false;  // typed miss: never inserted or fully evicted
    }
    for (uint64_t ref : it->second) {
      const Segment& seg = s.segments[size_t((ref >> 32) - s.base_seq)];
      const size_t slot = size_t(ref & 0xFFFFFFFFu);
      if (seg.records[slot].Overlaps(range)) {
        fn(size_t(seg.ids[slot]), seg.records[slot]);
      }
    }
    return true;
  }
  bool retained = false;
  for (const Segment& seg : s.segments) {
    for (size_t i = 0; i < seg.records.size(); ++i) {
      if (seg.records[i].flow == flow) {
        retained = true;
        if (seg.records[i].Overlaps(range)) {
          fn(size_t(seg.ids[i]), seg.records[i]);
        }
      }
    }
  }
  return retained;
}

std::vector<size_t> Tib::RecordsOnLink(const LinkId& link, const TimeRange& range) const {
  auto partial = CollectShardPartials<std::vector<size_t>>(
      [&](std::vector<size_t>& out, const Shard& s) {
        s.ForEachStored([&](uint64_t id, const TibRecord& rec) {
          if (rec.Overlaps(range) && rec.path.MatchesLinkQuery(link)) {
            out.push_back(size_t(id));
          }
        });
      });
  std::vector<size_t> out = ConcatPartials(partial);
  // Ascending id == insertion order: the same answer at any shard count.
  std::sort(out.begin(), out.end());
  return out;
}

FlowBytesMap Tib::AggregateFlowBytes(const LinkId& link, const TimeRange& range) const {
  const bool match_all = link.src == kInvalidNode && link.dst == kInvalidNode;
  auto partial = CollectShardPartials<FlowBytesMap>([&](FlowBytesMap& m, const Shard& s) {
    for (const Segment& seg : s.segments) {
      for (const TibRecord& rec : seg.records) {
        if (rec.Overlaps(range) && (match_all || rec.path.MatchesLinkQuery(link))) {
          m[rec.flow] += rec.bytes;
        }
      }
    }
  });
  // Each flow hashes to exactly one shard, so the partial maps are
  // key-disjoint and the merge is pure concatenation: per-flow totals are
  // deterministic integer sums regardless of shard or worker count.
  size_t total = 0;
  for (const auto& m : partial) {
    total += m.size();
  }
  FlowBytesMap out;
  out.reserve(total);
  for (auto& m : partial) {
    for (const auto& [flow, bytes] : m) {
      out.emplace(flow, bytes);
    }
  }
  return out;
}

CountSummary Tib::CountOnLink(const LinkId& link, const TimeRange& range) const {
  const bool match_all = link.src == kInvalidNode && link.dst == kInvalidNode;
  auto partial = CollectShardPartials<CountSummary>([&](CountSummary& c, const Shard& s) {
    for (const Segment& seg : s.segments) {
      for (const TibRecord& rec : seg.records) {
        if (rec.Overlaps(range) && (match_all || rec.path.MatchesLinkQuery(link))) {
          c.bytes += rec.bytes;
          c.pkts += rec.pkts;
        }
      }
    }
  });
  CountSummary out;
  for (const CountSummary& c : partial) {
    out.bytes += c.bytes;
    out.pkts += c.pkts;
  }
  return out;
}

std::vector<Flow> Tib::FlowsOnLink(const LinkId& link, const TimeRange& range) const {
  struct Candidate {
    uint64_t id;
    FiveTuple flow;
    CompactPath path;
  };
  auto partial = CollectShardPartials<std::vector<Candidate>>(
      [&](std::vector<Candidate>& out, const Shard& s) {
        // Duplicates of a (flow, path) pair always share a shard (the flow
        // picks it), so per-shard first-occurrence dedup is complete.  The
        // hash key only buckets; equality is exact, so the answer cannot
        // depend on shard count even under a 64-bit collision.
        std::unordered_map<uint64_t, std::vector<size_t>> seen;  // key -> out indices
        s.ForEachStored([&](uint64_t id, const TibRecord& rec) {
          if (!rec.Overlaps(range) || !rec.path.MatchesLinkQuery(link)) {
            return;
          }
          uint64_t key = rec.path.HashKey(FiveTupleHash{}(rec.flow));
          std::vector<size_t>& bucket = seen[key];
          bool dup = false;
          for (size_t idx : bucket) {
            if (out[idx].flow == rec.flow && out[idx].path == rec.path) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            bucket.push_back(out.size());
            out.push_back(Candidate{id, rec.flow, rec.path});
          }
        });
      });
  std::vector<Candidate> merged = ConcatPartials(partial);
  // First-appearance order across the whole TIB = ascending first id.
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  std::vector<Flow> out;
  out.reserve(merged.size());
  for (const Candidate& c : merged) {
    out.push_back(Flow{c.flow, c.path.ToPath()});
  }
  return out;
}

size_t Tib::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (const Segment& seg : s.segments) {
      bytes += seg.records.capacity() * sizeof(TibRecord);
      bytes += seg.ids.capacity() * sizeof(uint64_t);
    }
    bytes += s.by_flow.size() * (sizeof(FiveTuple) + sizeof(std::vector<uint64_t>) + 24);
    for (const auto& [flow, v] : s.by_flow) {
      bytes += v.capacity() * sizeof(uint64_t);
    }
  }
  return bytes;
}

size_t Tib::SaveTo(const std::string& path) const {
  // Snapshot first (one consistent pass under all shard locks) so the
  // header count always matches the rows written, even if inserts race.
  // Under eviction this is exactly the retained window: retired segments
  // are gone from the ring, so they are not written.
  std::vector<TibRecord> snap = records();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return 0;
  }
  DiskHeader hdr{kTibMagic, kTibVersion, snap.size()};
  size_t written = 0;
  bool failed = false;
  if (std::fwrite(&hdr, sizeof(hdr), 1, f) == 1) {
    written += sizeof(hdr);
    for (const TibRecord& rec : snap) {
      DiskRow row{};
      row.src_ip = rec.flow.src_ip;
      row.dst_ip = rec.flow.dst_ip;
      row.src_port = rec.flow.src_port;
      row.dst_port = rec.flow.dst_port;
      row.protocol = rec.flow.protocol;
      row.path_len = rec.path.len;
      for (int i = 0; i < rec.path.len; ++i) {
        row.path[i] = rec.path.sw[size_t(i)];
      }
      row.stime = rec.stime;
      row.etime = rec.etime;
      row.bytes = rec.bytes;
      row.pkts = rec.pkts;
      if (std::fwrite(&row, sizeof(row), 1, f) != 1) {
        failed = true;
        break;
      }
      written += sizeof(row);
    }
  } else {
    failed = true;
  }
  std::fclose(f);
  return failed ? 0 : written;
}

int64_t Tib::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return -1;
  }
  DiskHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 || hdr.magic != kTibMagic ||
      hdr.version != kTibVersion) {
    std::fclose(f);
    return -1;
  }
  // Parse the whole file into staging first, then replace the contents in
  // one all-locks critical section, so concurrent readers never observe a
  // half-loaded TIB.  (The reserve is capped: a corrupt count with a valid
  // magic must not force a huge allocation before row reads catch it.)
  std::vector<TibRecord> rows;
  rows.reserve(size_t(std::min<uint64_t>(hdr.count, 1u << 20)));
  for (uint64_t i = 0; i < hdr.count; ++i) {
    DiskRow row{};
    if (std::fread(&row, sizeof(row), 1, f) != 1 || row.path_len > CompactPath::kMaxSwitches) {
      std::fclose(f);
      Clear();
      return -1;
    }
    TibRecord rec;
    rec.flow.src_ip = row.src_ip;
    rec.flow.dst_ip = row.dst_ip;
    rec.flow.src_port = row.src_port;
    rec.flow.dst_port = row.dst_port;
    rec.flow.protocol = row.protocol;
    rec.path.len = row.path_len;
    for (int j = 0; j < row.path_len; ++j) {
      rec.path.sw[size_t(j)] = row.path[j];
    }
    rec.stime = row.stime;
    rec.etime = row.etime;
    rec.bytes = row.bytes;
    rec.pkts = row.pkts;
    rows.push_back(rec);
  }
  std::fclose(f);

  std::lock_guard<std::mutex> seal(seal_mu_);
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  const size_t old_resident = resident_bytes_.load(std::memory_order_acquire);
  for (const auto& sp : shards_) {
    sp->segments.clear();
    sp->base_seq = 0;
    sp->by_flow.clear();
  }
  uint64_t id = 0;
  for (const TibRecord& rec : rows) {
    Shard& s = *shards_[ShardOf(rec.flow)];
    if (s.segments.empty()) {
      s.segments.emplace_back();  // one open segment; epoching restarts
    }
    Segment& seg = s.segments.back();
    seg.records.push_back(rec);
    seg.ids.push_back(id++);
    if (options_.index_by_flow) {
      s.by_flow[rec.flow].push_back(uint64_t(seg.records.size() - 1));  // seq 0
    }
  }
  next_id_.store(id, std::memory_order_release);
  count_.store(id, std::memory_order_release);
  // A load begins a fresh lifetime: the tallies describe this window.
  inserted_.store(id, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
  segments_retired_.store(0, std::memory_order_relaxed);
  epochs_sealed_.store(0, std::memory_order_relaxed);
  current_epoch_.store(1, std::memory_order_release);
  const size_t new_resident = rows.size() * PerRecordBytes();
  resident_bytes_.store(new_resident, std::memory_order_release);
  ResidentGauge()->Add(int64_t(new_resident) - int64_t(old_resident));
  return int64_t(rows.size());
}

void Tib::Clear() {
  std::lock_guard<std::mutex> seal(seal_mu_);
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sp : shards_) {
    locks.emplace_back(sp->mu);
  }
  const size_t old_resident = resident_bytes_.load(std::memory_order_acquire);
  for (const auto& sp : shards_) {
    sp->segments.clear();
    sp->base_seq = 0;
    sp->by_flow.clear();
  }
  next_id_.store(0, std::memory_order_release);
  count_.store(0, std::memory_order_release);
  inserted_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
  segments_retired_.store(0, std::memory_order_relaxed);
  epochs_sealed_.store(0, std::memory_order_relaxed);
  current_epoch_.store(1, std::memory_order_release);
  resident_bytes_.store(0, std::memory_order_release);
  ResidentGauge()->Add(-int64_t(old_resident));
}

}  // namespace pathdump
