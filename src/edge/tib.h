// Trajectory Information Base (TIB), §3.2.
//
// Each end host stores per-path flow records: one record per (flow ID,
// end-to-end path) pair with byte/packet counts and first/last timestamps.
// The paper backs this with MongoDB; here it is an in-memory store (a
// deliberate substitution documented in DESIGN.md) sharded by flow hash:
// `FiveTupleHash(flow) % num_shards` picks the shard, and each shard owns
// its own record column, by-flow index, and reader/writer lock.  Inserts
// and per-flow lookups therefore touch exactly one shard, while full scans
// (RecordsOnLink, the per-flow byte aggregation behind TopK and the
// flow-size distribution) fan out shard-parallel over an optional
// ThreadPool and merge per-shard partials with a deterministic ordered
// reduce.  All other lookups are scans — mirroring the document-store
// access pattern, and keeping a 240 K-record TIB around the ~110 MB the
// paper reports (ours is far smaller per record).
//
// Bounded memory (epoch-windowed eviction): each shard's record column is
// a ring of epoch-stamped segments.  Inserts append to the shard's open
// segment; SealEpoch() (driven by EdgeAgent::EpochTick at every epoch
// boundary) stamps the open segments with the current epoch number and
// seals them.  When TibOptions::max_memory_bytes is set, the oldest
// sealed epochs are retired WHOLE — no per-record tombstones — until the
// accounted resident size is back under the ceiling; retirement prunes
// the by-flow index entries of the dropped segments and is O(segments)
// per shard-lock hold plus O(evicted records) of index pruning.  The
// default (0) is unbounded — seed behavior, nothing is ever evicted and
// sealing only partitions the columns.  Queries then cover the RETAINED
// window only; standing-query accumulators fold a record's contribution
// at insert time, before its segment can retire, so standing results stay
// exact while polls become window-scoped (docs/ARCHITECTURE.md).
//
// Thread safety: every public method synchronizes internally; no external
// lock is needed.  Lock hierarchy: seal_mu_ (SealEpoch / ceiling
// enforcement / bulk mutations) is ordered before shard locks; shard
// locks are only ever acquired in ascending shard-index order (whole-TIB
// walks) or one at a time (inserts, per-flow lookups, parallel scan
// tasks, seal/retire passes), and the TIB never calls out to user code
// while holding a shard lock except through the explicitly documented
// visitor APIs.
//
// Determinism: every record carries a global insertion id (dense
// 0..size()-1 when inserts are single-threaded, a linearization otherwise).
// Index-returning queries yield ids in ascending order and whole-TIB walks
// visit records in id order, so query results, snapshots, and the on-disk
// file are byte-identical at any shard count and any scan-pool width —
// and, under eviction, identical to a fresh TIB holding only the retained
// records (ids keep their original values over the retained window).
// Eviction itself is deterministic: the same inserts, the same seal
// points, and the same ceiling retire the same epochs in any process —
// the cross-process chaos harness relies on bounded in-test twins
// evicting in lockstep with bounded workers.

#ifndef PATHDUMP_SRC_EDGE_TIB_H_
#define PATHDUMP_SRC_EDGE_TIB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/flow_delta.h"
#include "src/common/types.h"
#include "src/edge/query.h"

namespace pathdump {

class ThreadPool;

// Fixed-capacity inline path: decoded datacenter trajectories have at most
// 7 switches (6-hop detour); 8 leaves headroom for custom topologies.
struct CompactPath {
  static constexpr int kMaxSwitches = 8;

  uint8_t len = 0;
  std::array<SwitchId, kMaxSwitches> sw = {};

  static CompactPath FromPath(const Path& p);
  Path ToPath() const;

  bool ContainsSwitch(SwitchId s) const;
  // True if the ordered pair (a, b) appears as consecutive switches.
  bool ContainsDirectedLink(NodeId a, NodeId b) const;
  // True if the record's path matches a (possibly wildcarded) LinkId:
  // kInvalidNode on either side matches any switch in that position.
  bool MatchesLinkQuery(const LinkId& q) const;

  // Folds the path's switches into `seed` — the shared dedup key for
  // getFlows/getPaths (one definition so every dedup site agrees).
  uint64_t HashKey(uint64_t seed = 0) const {
    for (int i = 0; i < len; ++i) {
      seed = HashCombine(seed, sw[size_t(i)]);
    }
    return seed;
  }

  friend bool operator==(const CompactPath& a, const CompactPath& b) {
    if (a.len != b.len) {
      return false;
    }
    for (int i = 0; i < a.len; ++i) {
      if (a.sw[size_t(i)] != b.sw[size_t(i)]) {
        return false;
      }
    }
    return true;
  }
};

// One TIB row: <flow ID, path, stime, etime, #bytes, #pkts> (Fig. 2).
struct TibRecord {
  FiveTuple flow;
  CompactPath path;
  SimTime stime = 0;
  SimTime etime = 0;
  uint64_t bytes = 0;
  uint32_t pkts = 0;

  bool Overlaps(const TimeRange& r) const { return r.Overlaps(stime, etime); }

  friend bool operator==(const TibRecord&, const TibRecord&) = default;
};

struct TibOptions {
  // Maintain the by-flow index (needed for fast getPaths/getCount; the
  // large-scale query benches disable it to bound memory).
  bool index_by_flow = true;
  // Flow-hash shards; 0 means one per hardware thread (min 1).  Query
  // results are byte-identical at any shard count — this knob only trades
  // insert/scan parallelism against per-shard overhead.
  size_t num_shards = 0;
  // Resident-memory ceiling, in accounted bytes (TibMemoryStats::
  // resident_bytes — a fixed per-record cost, not an allocator audit), for
  // the segmented record columns.  0 (the default) is unbounded — seed
  // behavior, nothing is ever evicted.  When set, the oldest SEALED
  // epochs are retired whole until resident bytes drop back under the
  // ceiling; enforcement runs at every SealEpoch and opportunistically
  // from Insert the moment the ceiling is crossed, so the resident level
  // only ever overshoots transiently (by in-flight inserts) or when no
  // sealed segment remains to retire (the open epoch alone exceeds the
  // ceiling — size epochs accordingly).
  size_t max_memory_bytes = 0;
};

// Point-in-time accounting of one Tib's segmented store.  Exact per
// instance (the registry metrics tib.bytes_resident / tib.segments_retired
// / tib.evicted_records hold process-wide totals across instances);
// retained_records == inserted_records - evicted_records always.
struct TibMemoryStats {
  size_t resident_bytes = 0;       // accounted bytes over retained records
  size_t retained_records = 0;     // records currently queryable
  uint64_t inserted_records = 0;   // since construction / Clear / LoadFrom
  uint64_t evicted_records = 0;
  uint64_t segments_retired = 0;
  uint64_t epochs_sealed = 0;
  uint64_t current_epoch = 0;      // epoch the open segments will seal as
  uint64_t oldest_retained_epoch = 0;  // 0 = no sealed segment retained
  size_t segment_count = 0;        // retained segments, summed over shards
};

// FlowBytesMap — the per-flow byte aggregation shared by TopK and
// FlowSizeDistribution — lives in src/common/flow_delta.h (standing-query
// epoch deltas canonicalize the same shape).  Sharding by flow hash means
// each flow lives in exactly one shard, so per-shard partial maps are
// key-disjoint.

class Tib {
 public:
  // Hard cap on shards; beyond this, per-shard overhead dwarfs any win.
  static constexpr size_t kMaxShards = 256;

  explicit Tib(TibOptions options = {});

  Tib(const Tib&) = delete;
  Tib& operator=(const Tib&) = delete;

  // Locks exactly the owning shard.
  void Insert(const TibRecord& rec);

  ~Tib();

  size_t size() const { return count_.load(std::memory_order_acquire); }
  size_t shard_count() const { return shards_.size(); }

  // Seals every shard's open segment as the current epoch (exclusive
  // shard locks, ascending, one at a time), advances the epoch counter,
  // then enforces max_memory_bytes by retiring the oldest sealed epochs
  // whole.  EdgeAgent::EpochTick calls this at every epoch boundary,
  // AFTER ticking standing registrations, so a segment's contribution is
  // always folded into accumulator partials before it can retire.
  void SealEpoch();

  // Accounted resident bytes (this instance).  See TibMemoryStats.
  size_t bytes_resident() const { return resident_bytes_.load(std::memory_order_acquire); }
  TibMemoryStats MemoryStats() const;

  // Record by global insertion id (a copy — the backing row may move as
  // its shard grows).  A typed miss (nullopt) for an unknown id —
  // including an id whose segment has been retired; evicted rows are
  // never reported as a (stale or default-constructed) hit.
  std::optional<TibRecord> record(size_t id) const;

  // Locked snapshot of all records, in insertion-id order.
  std::vector<TibRecord> records() const;

  // Sequential whole-TIB visitor in insertion-id order.  All shard locks
  // are held (shared) for the duration; fn must not call back into this
  // Tib's mutating API, nor block on any lock ordered after shard locks
  // (e.g. an EdgeAgent method that takes the agent lock — a concurrent
  // GetPathsLive holds that lock while waiting on a shard, and a queued
  // writer can close the cycle on writer-preferring shared_mutexes).
  void ForEachRecord(const std::function<void(size_t id, const TibRecord& rec)>& fn) const;

  // Unordered whole-TIB visitor for commutative aggregation: one shard
  // locked (shared) at a time, so inserts into other shards proceed
  // during the walk, and no merge machinery runs.  Record order is
  // unspecified; the callback restrictions of ForEachRecord apply.
  void ForEachRecordUnordered(const std::function<void(const TibRecord& rec)>& fn) const;

  // Ids of records for this exact 5-tuple overlapping the range, ascending.
  // Touches exactly one shard (even without the by-flow index).
  std::vector<size_t> RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const;

  // Visitor over one flow's records in id order, under that single shard's
  // shared lock; the callback restrictions of ForEachRecord apply.
  // Returns true iff the flow has at least one RETAINED record (the range
  // may still filter every callback out); false is the typed miss for a
  // flow that was never inserted or whose records have all been evicted.
  bool ForEachRecordOfFlow(const FiveTuple& flow, const TimeRange& range,
                           const std::function<void(size_t id, const TibRecord& rec)>& fn) const;

  // Ids of records whose path matches the (wildcardable) link query and
  // that overlap the range, ascending.  (<*, *>) matches every record.
  // Shard-parallel when a scan pool is set.
  std::vector<size_t> RecordsOnLink(const LinkId& link, const TimeRange& range) const;

  // Per-flow byte totals over records overlapping `range` whose path
  // matches `link` ((<*, *>) aggregates every record).  Shard-parallel;
  // the merge concatenates key-disjoint per-shard maps, so totals are
  // deterministic at any shard/worker count.
  FlowBytesMap AggregateFlowBytes(const LinkId& link, const TimeRange& range) const;

  // Byte/packet totals over records overlapping `range` whose path
  // matches `link` ((<*, *>) counts every record) — the per-host getCount
  // aggregate behind standing CountSummary subscriptions.  Shard-parallel;
  // commutative integer sums, so totals are deterministic at any
  // shard/worker count.
  CountSummary CountOnLink(const LinkId& link, const TimeRange& range) const;

  // Distinct (flow, path) pairs on a link (the getFlows scan), in order of
  // first appearance.  Shard-parallel with an ordered reduce by first id.
  std::vector<Flow> FlowsOnLink(const LinkId& link, const TimeRange& range) const;

  // Non-owning pool used by the scan queries above; nullptr (the default)
  // scans shards sequentially on the calling thread.
  void SetScanPool(ThreadPool* pool) { scan_pool_.store(pool, std::memory_order_release); }

  // --- Insert hooks (the standing-query attachment point) ---
  //
  // An insert hook runs inside Insert, under the owning shard's exclusive
  // lock, after the record is stored.  That placement is the whole point:
  // a per-shard incremental accumulator updated here needs no lock of its
  // own — the shard lock that already serializes inserts to the shard
  // also serializes updates to that shard's partial.  The hook receives
  // the record's global insertion id (the determinism anchor per-record
  // standing deltas ship — see src/common/record_delta.h).  Hooks must be
  // cheap and must not call back into this Tib (the shard lock is held)
  // nor take any lock ordered before shard locks.
  //
  // Registration swaps the hook table while holding EVERY shard lock
  // exclusively, so (a) Insert reads the table under its shard lock with
  // no extra synchronization, and (b) once RemoveInsertHook returns, no
  // invocation of the removed hook is running or will run — the
  // unsubscribe-mid-epoch guarantee.  Bulk mutations (LoadFrom, Clear)
  // bypass hooks; attach standing state after loading, not before.
  using InsertHook =
      std::function<void(size_t shard_index, uint64_t record_id, const TibRecord& rec)>;
  int AddInsertHook(InsertHook hook);
  void RemoveInsertHook(int id);
  size_t insert_hook_count() const;

  // Runs fn(shard_index) under that shard's exclusive lock, one shard at
  // a time in ascending order — the epoch-snapshot primitive: swapping
  // out a per-shard partial here cannot race the inserts that fill it.
  // Each record lands in exactly one snapshot (the cut need not be a
  // single point in time across shards; per-flow sums make any cut
  // consistent).  The callback restrictions of ForEachRecord apply.
  void ForEachShardExclusive(const std::function<void(size_t shard_index)>& fn) const;

  // ForEachShardExclusive plus a scan of the shard's stored records in
  // the same lock hold: for each shard (ascending), `on_shard` runs
  // first, then `on_record` for every record in that shard in ascending
  // insertion-id order, all under the shard's exclusive lock.  This is
  // the resync-snapshot primitive (standing_query.cc): clearing a
  // per-shard partial and re-scanning the shard in ONE lock hold makes
  // the pair atomic against inserts, so a record is observed by exactly
  // one of {snapshot scan, post-clear partial}.  Callback restrictions
  // of ForEachRecord apply; cost is O(records) — resync only.
  void ForEachShardRecordExclusive(
      const std::function<void(size_t shard_index)>& on_shard,
      const std::function<void(size_t shard_index, uint64_t record_id, const TibRecord& rec)>&
          on_record) const;

  // Rough resident size, for the §5.3 storage numbers.
  size_t ApproxBytes() const;

  // Persists the RETAINED records to a binary file (fixed-size rows +
  // header — the seed v1 format; under eviction only retained segments
  // are written, so the file is exactly what a window-scoped scan sees),
  // the stand-in for the paper's MongoDB on-disk store; returns bytes
  // written (0 on failure).  Rows are written in insertion-id order, so
  // the file bytes are independent of the shard count.  Load replaces the
  // current contents with one open segment per shard (records get fresh
  // dense ids 0..n-1 regardless of the shard counts on either side) and
  // resets the epoch counter and lifetime tallies; returns records read
  // or -1 on failure/corruption (including a truncated row tail).
  size_t SaveTo(const std::string& path) const;
  int64_t LoadFrom(const std::string& path);

  void Clear();

 private:
  // One epoch window of a shard's record column.  Sealed segments are
  // immutable (their rows never change and they only ever leave whole);
  // the back segment, while unsealed, is the open segment Insert appends
  // to.  A segment is created lazily on the first insert after a seal, so
  // empty segments never exist.
  struct Segment {
    uint64_t epoch = 0;  // stamped at seal; meaningless while open
    bool sealed = false;
    std::vector<TibRecord> records;
    // Global insertion ids, parallel to `records`; strictly ascending
    // across the whole shard (ids are assigned under the shard lock).
    std::vector<uint64_t> ids;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    // Oldest first.  base_seq is the monotone sequence number of
    // segments.front() — it only ever increments (on retire), so a packed
    // by_flow ref stays resolvable across retirements: deque index =
    // (ref >> 32) - base_seq.
    std::deque<Segment> segments;
    uint64_t base_seq = 0;
    // Flow -> packed (segment_seq << 32 | slot) refs, ascending.  Retire
    // prunes exactly the prefix whose seq matches the retiring segment.
    std::unordered_map<FiveTuple, std::vector<uint64_t>, FiveTupleHash> by_flow;

    // Retained records in ascending-id order (segments oldest-first, rows
    // in insert order).  Caller holds mu.
    template <typename Fn>
    void ForEachStored(Fn&& fn) const {
      for (const Segment& seg : segments) {
        for (size_t i = 0; i < seg.records.size(); ++i) {
          fn(seg.ids[i], seg.records[i]);
        }
      }
    }
  };

  size_t ShardOf(const FiveTuple& flow) const {
    return FiveTupleHash{}(flow) % shards_.size();
  }

  // Accounted bytes per retained record: row + id column + (when indexed)
  // one packed ref plus amortized hash overhead.  An accounting model, not
  // an allocator audit — but a pure function of the build, so a bounded
  // in-test twin evicts in lockstep with a bounded worker process fed the
  // same inserts and seal points (the chaos interplay test relies on it).
  size_t PerRecordBytes() const {
    return sizeof(TibRecord) + sizeof(uint64_t) +
           (options_.index_by_flow ? sizeof(uint64_t) + 16 : 0);
  }

  // Retires shard's front (sealed) segment: prunes its by_flow refs,
  // updates counters and the resident gauge.  Caller holds s.mu
  // exclusively (and seal_mu_).
  void RetireFrontLocked(Shard& s);
  // Retires oldest sealed epochs (globally, oldest epoch first, whole
  // epochs at a time) while resident bytes exceed the ceiling.  Caller
  // holds seal_mu_ and NO shard lock.
  void EnforceCeilingLocked();
  // Opportunistic enforcement from Insert: try-locks seal_mu_ so
  // concurrent inserters never convoy behind one retirement pass.
  void TryEnforceCeiling();

  // Runs fn(shard_index) for every shard — on the scan pool when one is
  // set, else inline.  fn takes its own shard lock.
  template <typename PerShard>
  void ForEachShardParallel(PerShard&& fn) const;

  // Shared scan scaffolding: one Acc per shard, filled under that shard's
  // shared lock (in parallel when a scan pool is set), returned in shard
  // order for the caller's deterministic ordered reduce.
  template <typename Acc, typename Fill>
  std::vector<Acc> CollectShardPartials(Fill&& fill) const;

  TibOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Written only while holding every shard lock exclusively; read under
  // any single shard lock (Insert) — no separate mutex needed, and no
  // new lock hierarchy.
  std::vector<std::pair<int, InsertHook>> insert_hooks_;
  int next_insert_hook_id_ = 1;
  // Ids issued vs records stored: they differ only if an Insert rolled
  // back on an allocation failure (ids may gap; size() must not).
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<ThreadPool*> scan_pool_{nullptr};
  // Serializes SealEpoch / ceiling enforcement / bulk mutations against
  // each other.  Ordered BEFORE shard locks; never acquired while a shard
  // lock is held.
  std::mutex seal_mu_;
  std::atomic<uint64_t> current_epoch_{1};
  std::atomic<size_t> resident_bytes_{0};
  // Lifetime tallies since construction / Clear / LoadFrom (exact:
  // retained == inserted - evicted, the invariant the enforcement test
  // asserts).
  std::atomic<uint64_t> inserted_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> segments_retired_{0};
  std::atomic<uint64_t> epochs_sealed_{0};
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_TIB_H_
