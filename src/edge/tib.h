// Trajectory Information Base (TIB), §3.2.
//
// Each end host stores per-path flow records: one record per (flow ID,
// end-to-end path) pair with byte/packet counts and first/last timestamps.
// The paper backs this with MongoDB; here it is an in-memory column of
// compact records (a deliberate substitution documented in DESIGN.md) with
// an optional by-flow index.  All other lookups are scans — mirroring the
// document-store access pattern, and keeping a 240 K-record TIB around the
// ~110 MB the paper reports (ours is far smaller per record).

#ifndef PATHDUMP_SRC_EDGE_TIB_H_
#define PATHDUMP_SRC_EDGE_TIB_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Fixed-capacity inline path: decoded datacenter trajectories have at most
// 7 switches (6-hop detour); 8 leaves headroom for custom topologies.
struct CompactPath {
  static constexpr int kMaxSwitches = 8;

  uint8_t len = 0;
  std::array<SwitchId, kMaxSwitches> sw = {};

  static CompactPath FromPath(const Path& p);
  Path ToPath() const;

  bool ContainsSwitch(SwitchId s) const;
  // True if the ordered pair (a, b) appears as consecutive switches.
  bool ContainsDirectedLink(NodeId a, NodeId b) const;
  // True if the record's path matches a (possibly wildcarded) LinkId:
  // kInvalidNode on either side matches any switch in that position.
  bool MatchesLinkQuery(const LinkId& q) const;

  friend bool operator==(const CompactPath& a, const CompactPath& b) {
    if (a.len != b.len) {
      return false;
    }
    for (int i = 0; i < a.len; ++i) {
      if (a.sw[size_t(i)] != b.sw[size_t(i)]) {
        return false;
      }
    }
    return true;
  }
};

// One TIB row: <flow ID, path, stime, etime, #bytes, #pkts> (Fig. 2).
struct TibRecord {
  FiveTuple flow;
  CompactPath path;
  SimTime stime = 0;
  SimTime etime = 0;
  uint64_t bytes = 0;
  uint32_t pkts = 0;

  bool Overlaps(const TimeRange& r) const { return r.Overlaps(stime, etime); }
};

struct TibOptions {
  // Maintain the by-flow index (needed for fast getPaths/getCount; the
  // large-scale query benches disable it to bound memory).
  bool index_by_flow = true;
};

class Tib {
 public:
  explicit Tib(TibOptions options = {}) : options_(options) {}

  void Insert(const TibRecord& rec);

  size_t size() const { return records_.size(); }
  const TibRecord& record(size_t i) const { return records_[i]; }
  const std::vector<TibRecord>& records() const { return records_; }

  // Indices of records for this exact 5-tuple overlapping the range.
  std::vector<size_t> RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const;

  // Indices of records whose path matches the (wildcardable) link query and
  // that overlap the range.  (<*, *>) matches every record.
  std::vector<size_t> RecordsOnLink(const LinkId& link, const TimeRange& range) const;

  // Rough resident size, for the §5.3 storage numbers.
  size_t ApproxBytes() const;

  // Persists all records to a binary file (fixed-size rows + header), the
  // stand-in for the paper's MongoDB on-disk store; returns bytes written
  // (0 on failure).  Load replaces the current contents; returns records
  // read or -1 on failure/corruption.
  size_t SaveTo(const std::string& path) const;
  int64_t LoadFrom(const std::string& path);

  void Clear();

 private:
  TibOptions options_;
  std::vector<TibRecord> records_;
  std::unordered_map<FiveTuple, std::vector<uint32_t>, FiveTupleHash> by_flow_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_TIB_H_
