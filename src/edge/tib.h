// Trajectory Information Base (TIB), §3.2.
//
// Each end host stores per-path flow records: one record per (flow ID,
// end-to-end path) pair with byte/packet counts and first/last timestamps.
// The paper backs this with MongoDB; here it is an in-memory store (a
// deliberate substitution documented in DESIGN.md) sharded by flow hash:
// `FiveTupleHash(flow) % num_shards` picks the shard, and each shard owns
// its own record column, by-flow index, and reader/writer lock.  Inserts
// and per-flow lookups therefore touch exactly one shard, while full scans
// (RecordsOnLink, the per-flow byte aggregation behind TopK and the
// flow-size distribution) fan out shard-parallel over an optional
// ThreadPool and merge per-shard partials with a deterministic ordered
// reduce.  All other lookups are scans — mirroring the document-store
// access pattern, and keeping a 240 K-record TIB around the ~110 MB the
// paper reports (ours is far smaller per record).
//
// Thread safety: every public method synchronizes internally; no external
// lock is needed.  Lock hierarchy: shard locks are only ever acquired in
// ascending shard-index order (whole-TIB walks) or one at a time (inserts,
// per-flow lookups, parallel scan tasks), and the TIB never calls out to
// user code while holding a shard lock except through the explicitly
// documented visitor APIs.
//
// Determinism: every record carries a global insertion id (dense
// 0..size()-1 when inserts are single-threaded, a linearization otherwise).
// Index-returning queries yield ids in ascending order and whole-TIB walks
// visit records in id order, so query results, snapshots, and the on-disk
// file are byte-identical at any shard count and any scan-pool width.

#ifndef PATHDUMP_SRC_EDGE_TIB_H_
#define PATHDUMP_SRC_EDGE_TIB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/flow_delta.h"
#include "src/common/types.h"
#include "src/edge/query.h"

namespace pathdump {

class ThreadPool;

// Fixed-capacity inline path: decoded datacenter trajectories have at most
// 7 switches (6-hop detour); 8 leaves headroom for custom topologies.
struct CompactPath {
  static constexpr int kMaxSwitches = 8;

  uint8_t len = 0;
  std::array<SwitchId, kMaxSwitches> sw = {};

  static CompactPath FromPath(const Path& p);
  Path ToPath() const;

  bool ContainsSwitch(SwitchId s) const;
  // True if the ordered pair (a, b) appears as consecutive switches.
  bool ContainsDirectedLink(NodeId a, NodeId b) const;
  // True if the record's path matches a (possibly wildcarded) LinkId:
  // kInvalidNode on either side matches any switch in that position.
  bool MatchesLinkQuery(const LinkId& q) const;

  // Folds the path's switches into `seed` — the shared dedup key for
  // getFlows/getPaths (one definition so every dedup site agrees).
  uint64_t HashKey(uint64_t seed = 0) const {
    for (int i = 0; i < len; ++i) {
      seed = HashCombine(seed, sw[size_t(i)]);
    }
    return seed;
  }

  friend bool operator==(const CompactPath& a, const CompactPath& b) {
    if (a.len != b.len) {
      return false;
    }
    for (int i = 0; i < a.len; ++i) {
      if (a.sw[size_t(i)] != b.sw[size_t(i)]) {
        return false;
      }
    }
    return true;
  }
};

// One TIB row: <flow ID, path, stime, etime, #bytes, #pkts> (Fig. 2).
struct TibRecord {
  FiveTuple flow;
  CompactPath path;
  SimTime stime = 0;
  SimTime etime = 0;
  uint64_t bytes = 0;
  uint32_t pkts = 0;

  bool Overlaps(const TimeRange& r) const { return r.Overlaps(stime, etime); }

  friend bool operator==(const TibRecord&, const TibRecord&) = default;
};

struct TibOptions {
  // Maintain the by-flow index (needed for fast getPaths/getCount; the
  // large-scale query benches disable it to bound memory).
  bool index_by_flow = true;
  // Flow-hash shards; 0 means one per hardware thread (min 1).  Query
  // results are byte-identical at any shard count — this knob only trades
  // insert/scan parallelism against per-shard overhead.
  size_t num_shards = 0;
};

// FlowBytesMap — the per-flow byte aggregation shared by TopK and
// FlowSizeDistribution — lives in src/common/flow_delta.h (standing-query
// epoch deltas canonicalize the same shape).  Sharding by flow hash means
// each flow lives in exactly one shard, so per-shard partial maps are
// key-disjoint.

class Tib {
 public:
  // Hard cap on shards; beyond this, per-shard overhead dwarfs any win.
  static constexpr size_t kMaxShards = 256;

  explicit Tib(TibOptions options = {});

  Tib(const Tib&) = delete;
  Tib& operator=(const Tib&) = delete;

  // Locks exactly the owning shard.
  void Insert(const TibRecord& rec);

  size_t size() const { return count_.load(std::memory_order_acquire); }
  size_t shard_count() const { return shards_.size(); }

  // Record by global insertion id (a copy — the backing row may move as
  // its shard grows).  Returns a default record for an unknown id.
  TibRecord record(size_t id) const;

  // Locked snapshot of all records, in insertion-id order.
  std::vector<TibRecord> records() const;

  // Sequential whole-TIB visitor in insertion-id order.  All shard locks
  // are held (shared) for the duration; fn must not call back into this
  // Tib's mutating API, nor block on any lock ordered after shard locks
  // (e.g. an EdgeAgent method that takes the agent lock — a concurrent
  // GetPathsLive holds that lock while waiting on a shard, and a queued
  // writer can close the cycle on writer-preferring shared_mutexes).
  void ForEachRecord(const std::function<void(size_t id, const TibRecord& rec)>& fn) const;

  // Unordered whole-TIB visitor for commutative aggregation: one shard
  // locked (shared) at a time, so inserts into other shards proceed
  // during the walk, and no merge machinery runs.  Record order is
  // unspecified; the callback restrictions of ForEachRecord apply.
  void ForEachRecordUnordered(const std::function<void(const TibRecord& rec)>& fn) const;

  // Ids of records for this exact 5-tuple overlapping the range, ascending.
  // Touches exactly one shard (even without the by-flow index).
  std::vector<size_t> RecordsOfFlow(const FiveTuple& flow, const TimeRange& range) const;

  // Visitor over one flow's records in id order, under that single shard's
  // shared lock; the callback restrictions of ForEachRecord apply.
  void ForEachRecordOfFlow(const FiveTuple& flow, const TimeRange& range,
                           const std::function<void(size_t id, const TibRecord& rec)>& fn) const;

  // Ids of records whose path matches the (wildcardable) link query and
  // that overlap the range, ascending.  (<*, *>) matches every record.
  // Shard-parallel when a scan pool is set.
  std::vector<size_t> RecordsOnLink(const LinkId& link, const TimeRange& range) const;

  // Per-flow byte totals over records overlapping `range` whose path
  // matches `link` ((<*, *>) aggregates every record).  Shard-parallel;
  // the merge concatenates key-disjoint per-shard maps, so totals are
  // deterministic at any shard/worker count.
  FlowBytesMap AggregateFlowBytes(const LinkId& link, const TimeRange& range) const;

  // Byte/packet totals over records overlapping `range` whose path
  // matches `link` ((<*, *>) counts every record) — the per-host getCount
  // aggregate behind standing CountSummary subscriptions.  Shard-parallel;
  // commutative integer sums, so totals are deterministic at any
  // shard/worker count.
  CountSummary CountOnLink(const LinkId& link, const TimeRange& range) const;

  // Distinct (flow, path) pairs on a link (the getFlows scan), in order of
  // first appearance.  Shard-parallel with an ordered reduce by first id.
  std::vector<Flow> FlowsOnLink(const LinkId& link, const TimeRange& range) const;

  // Non-owning pool used by the scan queries above; nullptr (the default)
  // scans shards sequentially on the calling thread.
  void SetScanPool(ThreadPool* pool) { scan_pool_.store(pool, std::memory_order_release); }

  // --- Insert hooks (the standing-query attachment point) ---
  //
  // An insert hook runs inside Insert, under the owning shard's exclusive
  // lock, after the record is stored.  That placement is the whole point:
  // a per-shard incremental accumulator updated here needs no lock of its
  // own — the shard lock that already serializes inserts to the shard
  // also serializes updates to that shard's partial.  The hook receives
  // the record's global insertion id (the determinism anchor per-record
  // standing deltas ship — see src/common/record_delta.h).  Hooks must be
  // cheap and must not call back into this Tib (the shard lock is held)
  // nor take any lock ordered before shard locks.
  //
  // Registration swaps the hook table while holding EVERY shard lock
  // exclusively, so (a) Insert reads the table under its shard lock with
  // no extra synchronization, and (b) once RemoveInsertHook returns, no
  // invocation of the removed hook is running or will run — the
  // unsubscribe-mid-epoch guarantee.  Bulk mutations (LoadFrom, Clear)
  // bypass hooks; attach standing state after loading, not before.
  using InsertHook =
      std::function<void(size_t shard_index, uint64_t record_id, const TibRecord& rec)>;
  int AddInsertHook(InsertHook hook);
  void RemoveInsertHook(int id);
  size_t insert_hook_count() const;

  // Runs fn(shard_index) under that shard's exclusive lock, one shard at
  // a time in ascending order — the epoch-snapshot primitive: swapping
  // out a per-shard partial here cannot race the inserts that fill it.
  // Each record lands in exactly one snapshot (the cut need not be a
  // single point in time across shards; per-flow sums make any cut
  // consistent).  The callback restrictions of ForEachRecord apply.
  void ForEachShardExclusive(const std::function<void(size_t shard_index)>& fn) const;

  // ForEachShardExclusive plus a scan of the shard's stored records in
  // the same lock hold: for each shard (ascending), `on_shard` runs
  // first, then `on_record` for every record in that shard in ascending
  // insertion-id order, all under the shard's exclusive lock.  This is
  // the resync-snapshot primitive (standing_query.cc): clearing a
  // per-shard partial and re-scanning the shard in ONE lock hold makes
  // the pair atomic against inserts, so a record is observed by exactly
  // one of {snapshot scan, post-clear partial}.  Callback restrictions
  // of ForEachRecord apply; cost is O(records) — resync only.
  void ForEachShardRecordExclusive(
      const std::function<void(size_t shard_index)>& on_shard,
      const std::function<void(size_t shard_index, uint64_t record_id, const TibRecord& rec)>&
          on_record) const;

  // Rough resident size, for the §5.3 storage numbers.
  size_t ApproxBytes() const;

  // Persists all records to a binary file (fixed-size rows + header), the
  // stand-in for the paper's MongoDB on-disk store; returns bytes written
  // (0 on failure).  Rows are written in insertion-id order, so the file
  // bytes are independent of the shard count.  Load replaces the current
  // contents (records get fresh dense ids 0..n-1 regardless of the shard
  // counts on either side); returns records read or -1 on
  // failure/corruption (including a truncated row tail).
  size_t SaveTo(const std::string& path) const;
  int64_t LoadFrom(const std::string& path);

  void Clear();

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::vector<TibRecord> records;
    // Global insertion ids, parallel to `records`; strictly ascending
    // (ids are assigned under the shard lock).
    std::vector<uint64_t> ids;
    // Flow -> local indices into `records`, ascending.
    std::unordered_map<FiveTuple, std::vector<uint32_t>, FiveTupleHash> by_flow;
  };

  size_t ShardOf(const FiveTuple& flow) const {
    return FiveTupleHash{}(flow) % shards_.size();
  }

  // Runs fn(shard_index) for every shard — on the scan pool when one is
  // set, else inline.  fn takes its own shard lock.
  template <typename PerShard>
  void ForEachShardParallel(PerShard&& fn) const;

  // Shared scan scaffolding: one Acc per shard, filled under that shard's
  // shared lock (in parallel when a scan pool is set), returned in shard
  // order for the caller's deterministic ordered reduce.
  template <typename Acc, typename Fill>
  std::vector<Acc> CollectShardPartials(Fill&& fill) const;

  TibOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Written only while holding every shard lock exclusively; read under
  // any single shard lock (Insert) — no separate mutex needed, and no
  // new lock hierarchy.
  std::vector<std::pair<int, InsertHook>> insert_hooks_;
  int next_insert_hook_id_ = 1;
  // Ids issued vs records stored: they differ only if an Insert rolled
  // back on an allocation failure (ids may gap; size() must not).
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<ThreadPool*> scan_pool_{nullptr};
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_TIB_H_
