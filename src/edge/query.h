// Query result payloads exchanged between end-host agents and the
// controller, with explicit serialized-size accounting.
//
// The paper's controller and agents exchange JSON over a Flask REST channel
// (§3.3); response time and network traffic of the two query mechanisms
// (direct vs multi-level) are first-class evaluation metrics (Figs. 11/12).
// We therefore give every result type a deterministic wire size (compact
// binary framing: fixed-width fields, length-prefixed lists) and a merge
// operation — the aggregation-tree reduce step.

#ifndef PATHDUMP_SRC_EDGE_QUERY_H_
#define PATHDUMP_SRC_EDGE_QUERY_H_

#include <cstdint>
#include <map>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Flow-size distribution for a link (§2.3 "Load imbalance"): bin -> count.
struct FlowSizeHistogram {
  int64_t bin_width = 10000;
  std::map<int64_t, int64_t> bins;

  friend bool operator==(const FlowSizeHistogram&, const FlowSizeHistogram&) = default;
};

// Top-k flows by byte count (§2.3 "Traffic measurement").
struct TopKFlows {
  size_t k = 0;
  // (bytes, flow) pairs; Finalize() sorts descending and trims to k.
  std::vector<std::pair<uint64_t, FiveTuple>> items;

  void Finalize();

  friend bool operator==(const TopKFlows&, const TopKFlows&) = default;
};

// getFlows result: flows (with their paths) traversing a link.
struct FlowList {
  std::vector<Flow> flows;

  friend bool operator==(const FlowList&, const FlowList&) = default;
};

// getPaths result.
struct PathList {
  std::vector<Path> paths;

  friend bool operator==(const PathList&, const PathList&) = default;
};

// getCount result.
struct CountSummary {
  uint64_t bytes = 0;
  uint64_t pkts = 0;

  friend bool operator==(const CountSummary&, const CountSummary&) = default;
};

using QueryResult =
    std::variant<std::monostate, FlowSizeHistogram, TopKFlows, FlowList, PathList, CountSummary>;

// Bytes this result occupies on the wire (compact binary framing).
size_t SerializedBytes(const QueryResult& r);

// Merges `in` into `acc` (both must hold the same alternative, or acc may
// be monostate).  TopKFlows keeps only the k best entries — this is the
// data reduction that makes the multi-level tree win in Fig. 12.
void MergeQueryResult(QueryResult& acc, const QueryResult& in);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_QUERY_H_
