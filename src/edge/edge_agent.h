// EdgeAgent: the PathDump server stack at one end host (§3.2, Fig. 1).
//
// Responsibilities:
//  1. Data path — receive packets for local flows, strip the trajectory
//     header, and update the trajectory memory (the OVS/DPDK patch).
//  2. Trajectory construction — on record eviction, expand sampled link
//     IDs into a full path (trajectory cache, then CherryPick decode
//     against the static topology) and append a TIB record.
//  3. Query serving — the Table 1 host API over local TIB + live memory.
//  4. Active monitoring — tcpretrans-style retransmission tracking plus
//     installable periodic queries; violations raise Alarm() upstream.
//
// Concurrency: the TIB synchronizes itself (flow-hash shards, each with a
// reader/writer lock — see tib.h), so pure-TIB queries (getFlows,
// getPaths, getCount, getDuration, TopK, FlowSizeDistribution) never take
// an agent-wide lock and scale with the TIB's scan pool.  The agent's own
// reader/writer lock now guards only the non-TIB mutable state:
// TrajectoryMemory, the trajectory cache, and the retransmission monitor.
// A separate registration mutex guards the hook/periodic-query tables.
// Any number of threads may run Table 1 queries against the *same* agent
// concurrently with the single data-path thread ingesting packets/records
// — e.g. alarm-pipeline subscribers fetching failure signatures mid-run.
// Record hooks, periodic query bodies, and RaiseAlarm all run *outside*
// every lock, so they may freely call back into the query API.
//
// Lock hierarchy: agent lock -> TIB shard locks (GetPathsLive); the TIB
// never calls back into the agent.  tib() is safe to use at any time
// (every Tib method locks internally); the remaining per-subsystem state
// is exposed only through locked wrappers (RecordRetransmission,
// TotalRetx, MemorySnapshot, cache_stats) — the raw accessors that used to
// bypass the lock are gone.

#ifndef PATHDUMP_SRC_EDGE_EDGE_AGENT_H_
#define PATHDUMP_SRC_EDGE_EDGE_AGENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/cherrypick/codec.h"
#include "src/cherrypick/trajectory_cache.h"
#include "src/common/types.h"
#include "src/edge/alarm.h"
#include "src/edge/packet_log.h"
#include "src/edge/query.h"
#include "src/edge/standing_query.h"
#include "src/edge/tib.h"
#include "src/edge/trajectory_memory.h"
#include "src/packet/packet.h"
#include "src/tcp/retx_monitor.h"

namespace pathdump {

class ThreadPool;

struct EdgeAgentConfig {
  // Idle eviction timeout for trajectory-memory records (paper: 5 s).
  SimTime idle_timeout = 5 * kNsPerSec;
  // How often the agent sweeps its trajectory memory.
  SimTime sweep_period = 1 * kNsPerSec;
  // Consecutive retransmissions marking a flow "poor" (getPoorTCPFlows).
  int poor_retx_threshold = 3;
  size_t trajectory_cache_capacity = 4096;
  // Per-packet trajectory log (the paper's future-work extension): 0
  // disables it; otherwise the newest N packets are retained in a bounded
  // ring queryable by flow/link/time (see packet_log.h).
  size_t packet_log_capacity = 0;
  TibOptions tib_options;
};

// Locked snapshot of the trajectory-cache counters.
struct TrajectoryCacheStats {
  size_t size = 0;
  size_t capacity = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class EdgeAgent {
 public:
  // Invariant hook executed on every new TIB record (e.g. the path
  // conformance query installed by the controller, §2.3).
  using RecordHook = std::function<void(EdgeAgent&, const TibRecord&, SimTime)>;
  // Installed periodic query body.
  using PeriodicQuery = std::function<void(EdgeAgent&, SimTime)>;

  EdgeAgent(HostId host, const Topology* topo, const CherryPickCodec* codec,
            EdgeAgentConfig config = {});

  HostId host() const { return host_; }
  IpAddr ip() const { return topo_->IpOfHost(host_); }

  // --- Data path ---

  // Handles one delivered packet: retransmission bookkeeping, trajectory-
  // memory update, and (cheaply, when due) housekeeping.
  void OnPacket(const Packet& pkt, SimTime now);

  // Runs due housekeeping: memory sweep + installed periodic queries.
  void Tick(SimTime now);

  // Flushes all live trajectory-memory records into the TIB (end of run).
  void FlushAll(SimTime now);

  // Direct TIB ingestion, used by trajectory construction internally and by
  // the flow-level simulation engine (same downstream code path: record
  // hooks run, indexes update).
  void IngestRecord(const TibRecord& rec, SimTime now);

  // --- Host API (Table 1) ---

  // Flows (with paths) traversing `link` during `range`.  Wildcards via
  // kInvalidNode in either LinkId field.
  std::vector<Flow> GetFlows(const LinkId& link, const TimeRange& range) const;

  // Paths taken by `flow` that include `link` during `range`.
  std::vector<Path> GetPaths(const FiveTuple& flow, const LinkId& link,
                             const TimeRange& range) const;

  // Like GetPaths, but additionally consults *live* trajectory-memory
  // records that have not yet been evicted to the TIB — the paper's IPC
  // channel for alarm-time debugging at finer time scales (§3.2).  Live
  // records are decoded on the fly (the result is cached as usual).
  std::vector<Path> GetPathsLive(const FiveTuple& flow, const LinkId& link,
                                 const TimeRange& range);

  // Packet/byte counts of a Flow (empty path = all paths) within `range`.
  CountSummary GetCount(const Flow& flow, const TimeRange& range) const;

  // Duration of a Flow within `range` (max etime - min stime), 0 if absent.
  SimTime GetDuration(const Flow& flow, const TimeRange& range) const;

  // Flows whose consecutive retransmissions meet the threshold (<=0 uses
  // the configured default).
  std::vector<FiveTuple> GetPoorTcpFlows(int threshold = 0) const;

  // Records a retransmission observed for `flow` at `now` — the simulated
  // tcpretrans feed, safe against concurrent queries (write lock).
  void RecordRetransmission(const FiveTuple& flow, SimTime now);

  // Lifetime retransmission count for `flow` (shared lock).
  uint64_t TotalRetx(const FiveTuple& flow) const;

  // Resets a flow's consecutive-retransmission streak (one alarm per
  // episode, §2.3) under the agent's write lock, safe against concurrent
  // queries.
  void ResetRetxStreak(const FiveTuple& flow);

  // Raises an alarm to the controller.
  void RaiseAlarm(const FiveTuple& flow, AlarmReason reason, std::vector<Path> paths,
                  SimTime now);

  // --- Canned queries used by applications and benches ---

  // Histogram of per-flow byte counts over flows traversing `link`.  Both
  // canned queries share Tib::AggregateFlowBytes, the shard-parallel
  // per-flow byte aggregation.
  FlowSizeHistogram FlowSizeDistribution(const LinkId& link, const TimeRange& range,
                                         int64_t bin_width = 10000) const;
  // Top-k flows by bytes within `range`.
  TopKFlows TopK(size_t k, const TimeRange& range) const;
  // Byte/packet totals over records whose path matches `link` within
  // `range` — the per-host poll twin of a standing CountSummary
  // subscription (Tib::CountOnLink; shard-parallel, deterministic).
  CountSummary CountOnLink(const LinkId& link, const TimeRange& range) const {
    return tib_.CountOnLink(link, range);
  }

  // --- Wiring ---

  void SetAlarmHandler(AlarmHandler handler) { alarm_handler_ = std::move(handler); }

  // Non-owning pool for shard-parallel TIB scans (TopK,
  // FlowSizeDistribution, getFlows, RecordsOnLink); nullptr reverts to
  // sequential scans.  Results are byte-identical either way.
  void SetQueryThreadPool(ThreadPool* pool) { tib_.SetScanPool(pool); }

  int AddRecordHook(RecordHook hook);
  void RemoveRecordHook(int id);

  // install()/uninstall() from the controller API.  period <= 0 means
  // event-driven (runs on every Tick).
  int InstallQuery(SimTime period, PeriodicQuery body);
  void UninstallQuery(int id);
  size_t InstalledQueryCount() const;

  // Installs the §2.3 TCP performance monitoring query: every `period`
  // (the paper uses 200 ms) the agent raises Alarm(flow, POOR_PERF) for
  // each flow whose consecutive retransmissions meet the threshold, then
  // resets that flow's streak so one episode alarms once.
  int InstallPoorTcpMonitor(SimTime period = 200 * kNsPerMs, int threshold = 0);

  // --- Standing queries (src/edge/standing_query.h) ---
  //
  // A registered standing query accumulates per-flow byte increments
  // inside Tib::Insert (under the owning shard's lock) and, on an epoch
  // tick, ships only the increment: the delta is merged with the
  // deterministic ordered reduce, epoch-stamped, and handed to `sink`
  // (normally the controller's SubscriptionManager intake).  The sink
  // runs on the ticking thread with no agent lock held; it may be
  // called concurrently from concurrent tickers.

  using DeltaSink = std::function<void(QueryDelta&&)>;

  // Registers the accumulator; returns a handle for EpochTickOne /
  // UnregisterStandingQuery.  Cost per subsequent insert: one filter
  // check + one hash-map bump on matching records.
  int RegisterStandingQuery(uint64_t subscription_id, const StandingQuerySpec& spec,
                            DeltaSink sink);
  // Removes the accumulator and its TIB hook.  On return no further
  // delta will be produced and no in-flight insert still observes the
  // accumulator (Tib::RemoveInsertHook synchronizes with inserts); a
  // concurrent EpochTick may still be delivering the final delta.
  void UnregisterStandingQuery(int id);

  // Epoch ticks: snapshot + reset the partials and push the delta (if
  // any) to the sink, then seal the TIB's open epoch segments
  // (Tib::SealEpoch) — the agent-level epoch boundary that makes whole
  // segments the unit of memory-ceiling retirement.  Ticking precedes
  // sealing, so a closing segment's contribution is always folded before
  // it can retire; sealing runs even with zero registrations.
  // EpochTickOne ticks one registration WITHOUT sealing (a
  // per-subscription cadence hook, not an agent epoch boundary); it
  // returns false for an unknown id.
  void EpochTick();
  bool EpochTickOne(int id);
  size_t StandingQueryCount() const;

  // Crash-recovery resync: every registration owned by `subscription_id`
  // takes a full-baseline snapshot (StandingQueryAccumulator::TakeSnapshot
  // — consistent cut, consumes an epoch number, ships even when empty)
  // and pushes it to its sink.  Returns the number of snapshots
  // delivered (0 when the subscription has no registration here).
  size_t ResyncStandingQuery(uint64_t subscription_id);

  // --- Introspection ---

  // The TIB synchronizes itself (per-shard locks); both overloads are safe
  // to use concurrently with ingestion and queries.
  Tib& tib() { return tib_; }
  const Tib& tib() const { return tib_; }
  // Locked snapshot of the live (not yet evicted) trajectory-memory rows
  // — the safe replacement for the removed raw memory() accessor.
  std::vector<TrajectoryMemory::Record> MemorySnapshot() const;
  // Locked snapshot of the trajectory-cache counters.
  TrajectoryCacheStats cache_stats() const;
  // Non-null only when packet_log_capacity > 0 in the config.  The log is
  // written under the agent lock by the data path; treat as quiescent-only.
  PacketLog* packet_log() { return packet_log_.get(); }
  const PacketLog* packet_log() const { return packet_log_.get(); }
  uint64_t decode_failures() const { return decode_failures_; }
  const EdgeAgentConfig& config() const { return config_; }

 private:
  // Trajectory construction for one evicted memory record.
  void ConstructAndStore(const TrajectoryMemory::Record& rec, SimTime now);

  // Cache-first decode of a raw trajectory header; nullopt when infeasible.
  // Callers must hold mu_ exclusively (the cache insert mutates).
  std::optional<Path> DecodeHeader(IpAddr src_ip, LinkLabel dscp,
                                   const std::vector<LinkLabel>& tags);

  // GetPaths body over the (self-synchronized) TIB; takes no agent lock.
  std::vector<Path> CollectTibPaths(const FiveTuple& flow, const LinkId& link,
                                    const TimeRange& range) const;

  // Rebuilds hook_list_ from hooks_; callers must hold reg_mu_.
  void RebuildHookList();

  HostId host_;
  const Topology* topo_;
  const CherryPickCodec* codec_;
  EdgeAgentConfig config_;

  // Reader/writer lock over memory_/cache_/retx_/packet_log_ (see file
  // comment).  The TIB is *not* under this lock — it self-synchronizes.
  mutable std::shared_mutex mu_;
  TrajectoryMemory memory_;
  TrajectoryCache cache_;
  Tib tib_;
  RetxMonitor retx_;
  std::unique_ptr<PacketLog> packet_log_;
  AlarmHandler alarm_handler_;

  std::atomic<SimTime> next_sweep_{0};
  std::atomic<uint64_t> decode_failures_{0};

  // Guards the hook/periodic registration tables below.  Hook and query
  // bodies are copied out and run with no lock held, so they may call any
  // agent API (including installing/uninstalling) without deadlock.
  mutable std::mutex reg_mu_;
  int next_hook_id_ = 1;
  std::map<int, RecordHook> hooks_;
  // Immutable snapshot of hooks_ values, rebuilt on Add/Remove; the
  // per-record ingest cost is one shared_ptr copy, not a table copy.
  std::shared_ptr<const std::vector<RecordHook>> hook_list_;

  struct Installed {
    SimTime period;
    SimTime next_due;
    PeriodicQuery body;
  };
  int next_query_id_ = 1;
  std::map<int, Installed> periodic_;

  // Standing-query registrations, guarded by reg_mu_ like the other
  // tables.  Entries are shared_ptrs so an epoch tick can run on a
  // snapshot with no lock held while a concurrent unregister drops the
  // table entry; the accumulator (and its TIB hook) dies with the last
  // reference.
  struct StandingRegistration {
    std::unique_ptr<StandingQueryAccumulator> accumulator;
    DeltaSink sink;
    // Held while a tick runs TakeDelta + sink.  UnregisterStandingQuery
    // acquires it after dropping the table entry and marks `detached`,
    // so on return no in-flight tick is delivering into the sink and no
    // later tick (one that grabbed its snapshot pre-unregister) will —
    // the sink's target (e.g. a SubscriptionManager being destroyed)
    // may safely die afterwards.
    std::mutex gate;
    bool detached = false;  // guarded by gate
  };
  // Runs one gated tick; returns false if the registration is detached.
  static bool TickRegistration(StandingRegistration& reg);
  int next_standing_id_ = 1;
  std::map<int, std::shared_ptr<StandingRegistration>> standing_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_EDGE_AGENT_H_
