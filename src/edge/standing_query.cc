#include "src/edge/standing_query.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace pathdump {

namespace {

// The shared dedup key of Tib::FlowsOnLink — the one CompactPath::HashKey
// definition, applied to the decoded path (lossless: delta paths come
// from CompactPath::ToPath, so they round-trip within kMaxSwitches).
uint64_t FlowPathHashKey(const FiveTuple& flow, const Path& path) {
  return CompactPath::FromPath(path).HashKey(FiveTupleHash{}(flow));
}

}  // namespace

QueryResult MaterializeStandingResult(const StandingQuerySpec& spec,
                                      const FlowBytesMap& per_flow) {
  // These two bodies mirror EdgeAgent::TopK and FlowSizeDistribution
  // exactly — the byte-identity contract depends on it.
  if (spec.kind == StandingQuerySpec::Kind::kTopK) {
    TopKFlows out;
    out.k = spec.k;
    out.items.reserve(per_flow.size());
    for (const auto& [flow, bytes] : per_flow) {
      out.items.emplace_back(bytes, flow);
    }
    out.Finalize();
    return out;
  }
  FlowSizeHistogram h;
  h.bin_width = spec.bin_width;
  for (const auto& [flow, bytes] : per_flow) {
    h.bins[int64_t(bytes) / spec.bin_width] += 1;
  }
  return h;
}

void RecordFoldState::Fold(const StandingQuerySpec& spec, const RecordDelta& delta) {
  if (spec.kind == StandingQuerySpec::Kind::kCountSummary) {
    // Every record is shipped exactly once (it lands in exactly one
    // epoch snapshot), so folding is a plain commutative sum.
    for (const RecordDeltaItem& item : delta.items) {
      count.bytes += item.bytes;
      count.pkts += item.pkts;
    }
    return;
  }
  // kFlowList: first-occurrence dedup of (flow, path), keeping the
  // smallest insertion id — Tib::FlowsOnLink replayed incrementally.
  for (const RecordDeltaItem& item : delta.items) {
    uint64_t key = FlowPathHashKey(item.flow, item.path);
    std::vector<size_t>& bucket = seen[key];
    bool dup = false;
    for (size_t idx : bucket) {
      RecordDeltaItem& existing = flow_items[idx];
      if (existing.flow == item.flow && existing.path == item.path) {
        existing.id = std::min(existing.id, item.id);
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(flow_items.size());
      flow_items.push_back(item);
    }
  }
}

QueryResult MaterializeStandingRecords(const StandingQuerySpec& spec,
                                       const RecordFoldState& state) {
  if (spec.kind == StandingQuerySpec::Kind::kCountSummary) {
    return state.count;
  }
  // First-appearance order across the whole TIB = ascending first id —
  // the exact ordering Tib::FlowsOnLink produces.
  std::vector<const RecordDeltaItem*> ordered;
  ordered.reserve(state.flow_items.size());
  for (const RecordDeltaItem& item : state.flow_items) {
    ordered.push_back(&item);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const RecordDeltaItem* a, const RecordDeltaItem* b) { return a->id < b->id; });
  FlowList out;
  out.flows.reserve(ordered.size());
  for (const RecordDeltaItem* item : ordered) {
    out.flows.push_back(Flow{item->flow, item->path});
  }
  return out;
}

StandingQueryAccumulator::StandingQueryAccumulator(uint64_t subscription_id, HostId host,
                                                   const StandingQuerySpec& spec, Tib* tib)
    : subscription_id_(subscription_id),
      host_(host),
      spec_(spec),
      match_all_links_(spec.link.src == kInvalidNode && spec.link.dst == kInvalidNode),
      tib_(tib) {
  if (spec_.IsRecordKind()) {
    record_partial_.resize(tib->shard_count());
  } else {
    partial_.resize(tib->shard_count());
  }
  hook_id_ = tib_->AddInsertHook([this](size_t shard_index, uint64_t record_id,
                                        const TibRecord& rec) {
    OnInsert(shard_index, record_id, rec);
  });
}

StandingQueryAccumulator::~StandingQueryAccumulator() {
  // Synchronizes with every in-flight Insert (removal takes all shard
  // locks), so after this no OnInsert call can touch the partials.
  tib_->RemoveInsertHook(hook_id_);
}

bool StandingQueryAccumulator::Matches(const TibRecord& rec) const {
  // Same record filter as the poll twins (Tib::AggregateFlowBytes /
  // FlowsOnLink / CountOnLink) — including creating the key for a
  // zero-byte record (the poll path does too).
  if (!rec.Overlaps(spec_.range)) {
    return false;
  }
  if (!match_all_links_ && !rec.path.MatchesLinkQuery(spec_.link)) {
    return false;
  }
  return true;
}

void StandingQueryAccumulator::OnInsert(size_t shard_index, uint64_t record_id,
                                        const TibRecord& rec) {
  if (!Matches(rec)) {
    return;
  }
  if (spec_.IsRecordKind()) {
    // The path is buffered in its stored compact form — no decode and no
    // per-path allocation while the exclusive shard lock is held.
    record_partial_[shard_index].push_back(
        CompactRecordEntry{record_id, rec.flow, rec.path, rec.bytes, rec.pkts});
    return;
  }
  partial_[shard_index][rec.flow] += rec.bytes;
}

std::optional<QueryDelta> StandingQueryAccumulator::TakeDelta() {
  static Counter* produced =
      MetricsRegistry::Global().GetCounter("standing.deltas_produced");
  static Counter* produced_bytes =
      MetricsRegistry::Global().GetCounter("standing.delta_bytes_produced");
  static Counter* empty_ticks =
      MetricsRegistry::Global().GetCounter("standing.empty_ticks");
  static LatencyHistogram* take_us =
      MetricsRegistry::Global().GetHistogram("standing.take_delta_us");
  // Keys are completed once the epoch number is known (epoch stays 0 for
  // an empty tick, which consumes no epoch number).
  TraceKeys keys{subscription_id_, uint32_t(host_), 0};
  const uint64_t t0 = Tracer::Global().NowUs();

  std::lock_guard<std::mutex> tick(tick_mu_);
  QueryDelta delta;
  if (spec_.IsRecordKind()) {
    std::vector<std::vector<CompactRecordEntry>> snapshot(record_partial_.size());
    tib_->ForEachShardExclusive([&](size_t si) { snapshot[si].swap(record_partial_[si]); });
    // Decode paths here, on the ticking thread with no lock held —
    // once per shipped record, never inside Insert.
    std::vector<std::vector<RecordDeltaItem>> decoded(snapshot.size());
    for (size_t si = 0; si < snapshot.size(); ++si) {
      decoded[si].reserve(snapshot[si].size());
      for (const CompactRecordEntry& e : snapshot[si]) {
        decoded[si].push_back(RecordDeltaItem{e.id, e.flow, e.path.ToPath(), e.bytes, e.pkts});
      }
    }
    delta.records = RecordDelta::FromShardBuffers(decoded);
  } else {
    std::vector<FlowBytesMap> snapshot(partial_.size());
    tib_->ForEachShardExclusive([&](size_t si) { snapshot[si].swap(partial_[si]); });
    delta.payload = FlowBytesDelta::FromShardMaps(snapshot);
  }
  const bool empty = spec_.IsRecordKind() ? delta.records.empty() : delta.payload.empty();
  if (empty) {
    empty_ticks->Add();
    Tracer::Global().Record("standing.take_delta", t0, Tracer::Global().NowUs() - t0, keys);
    return std::nullopt;
  }
  delta.subscription_id = subscription_id_;
  delta.host = host_;
  delta.kind = spec_.kind;
  delta.epoch = next_epoch_++;

  keys.epoch = delta.epoch;
  const uint64_t dur = Tracer::Global().NowUs() - t0;
  produced->Add();
  produced_bytes->Add(delta.SerializedSize());
  take_us->Record(dur);
  Tracer::Global().Record("standing.take_delta", t0, dur, keys);
  return delta;
}

QueryDelta StandingQueryAccumulator::TakeSnapshot() {
  static Counter* taken = MetricsRegistry::Global().GetCounter("standing.snapshots_taken");
  static Counter* taken_bytes =
      MetricsRegistry::Global().GetCounter("standing.snapshot_bytes_produced");
  TraceKeys keys{subscription_id_, uint32_t(host_), 0};
  const uint64_t t0 = Tracer::Global().NowUs();

  std::lock_guard<std::mutex> tick(tick_mu_);
  QueryDelta delta;
  delta.snapshot = true;
  if (spec_.IsRecordKind()) {
    std::vector<std::vector<CompactRecordEntry>> snapshot(record_partial_.size());
    tib_->ForEachShardRecordExclusive(
        [&](size_t si) { record_partial_[si].clear(); },
        [&](size_t si, uint64_t record_id, const TibRecord& rec) {
          if (!Matches(rec)) {
            return;
          }
          snapshot[si].push_back(
              CompactRecordEntry{record_id, rec.flow, rec.path, rec.bytes, rec.pkts});
        });
    // Decode outside the shard locks, exactly like TakeDelta.
    std::vector<std::vector<RecordDeltaItem>> decoded(snapshot.size());
    for (size_t si = 0; si < snapshot.size(); ++si) {
      decoded[si].reserve(snapshot[si].size());
      for (const CompactRecordEntry& e : snapshot[si]) {
        decoded[si].push_back(RecordDeltaItem{e.id, e.flow, e.path.ToPath(), e.bytes, e.pkts});
      }
    }
    delta.records = RecordDelta::FromShardBuffers(decoded);
  } else {
    std::vector<FlowBytesMap> snapshot(partial_.size());
    tib_->ForEachShardRecordExclusive(
        [&](size_t si) { partial_[si].clear(); },
        [&](size_t si, uint64_t, const TibRecord& rec) {
          if (!Matches(rec)) {
            return;
          }
          snapshot[si][rec.flow] += rec.bytes;
        });
    delta.payload = FlowBytesDelta::FromShardMaps(snapshot);
  }
  delta.subscription_id = subscription_id_;
  delta.host = host_;
  delta.kind = spec_.kind;
  // Snapshots always consume an epoch number — even empty ones ship, so
  // the receiver can re-anchor its next_epoch at snapshot + 1.
  delta.epoch = next_epoch_++;

  keys.epoch = delta.epoch;
  taken->Add();
  taken_bytes->Add(delta.SerializedSize());
  Tracer::Global().Record("resync.snapshot", t0, Tracer::Global().NowUs() - t0, keys);
  return delta;
}

}  // namespace pathdump
