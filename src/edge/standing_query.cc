#include "src/edge/standing_query.h"

#include <utility>

namespace pathdump {

QueryResult MaterializeStandingResult(const StandingQuerySpec& spec,
                                      const FlowBytesMap& per_flow) {
  // These two bodies mirror EdgeAgent::TopK and FlowSizeDistribution
  // exactly — the byte-identity contract depends on it.
  if (spec.kind == StandingQuerySpec::Kind::kTopK) {
    TopKFlows out;
    out.k = spec.k;
    out.items.reserve(per_flow.size());
    for (const auto& [flow, bytes] : per_flow) {
      out.items.emplace_back(bytes, flow);
    }
    out.Finalize();
    return out;
  }
  FlowSizeHistogram h;
  h.bin_width = spec.bin_width;
  for (const auto& [flow, bytes] : per_flow) {
    h.bins[int64_t(bytes) / spec.bin_width] += 1;
  }
  return h;
}

StandingQueryAccumulator::StandingQueryAccumulator(uint64_t subscription_id, HostId host,
                                                   const StandingQuerySpec& spec, Tib* tib)
    : subscription_id_(subscription_id),
      host_(host),
      spec_(spec),
      match_all_links_(spec.link.src == kInvalidNode && spec.link.dst == kInvalidNode),
      tib_(tib),
      partial_(tib->shard_count()) {
  hook_id_ = tib_->AddInsertHook(
      [this](size_t shard_index, const TibRecord& rec) { OnInsert(shard_index, rec); });
}

StandingQueryAccumulator::~StandingQueryAccumulator() {
  // Synchronizes with every in-flight Insert (removal takes all shard
  // locks), so after this no OnInsert call can touch partial_.
  tib_->RemoveInsertHook(hook_id_);
}

void StandingQueryAccumulator::OnInsert(size_t shard_index, const TibRecord& rec) {
  // Same record filter as Tib::AggregateFlowBytes — including creating
  // the key for a zero-byte record (the poll path does too).
  if (!rec.Overlaps(spec_.range)) {
    return;
  }
  if (!match_all_links_ && !rec.path.MatchesLinkQuery(spec_.link)) {
    return;
  }
  partial_[shard_index][rec.flow] += rec.bytes;
}

std::optional<QueryDelta> StandingQueryAccumulator::TakeDelta() {
  std::lock_guard<std::mutex> tick(tick_mu_);
  std::vector<FlowBytesMap> snapshot(partial_.size());
  tib_->ForEachShardExclusive([&](size_t si) { snapshot[si].swap(partial_[si]); });
  FlowBytesDelta payload = FlowBytesDelta::FromShardMaps(snapshot);
  if (payload.empty()) {
    return std::nullopt;
  }
  QueryDelta delta;
  delta.subscription_id = subscription_id_;
  delta.host = host_;
  delta.epoch = next_epoch_++;
  delta.payload = std::move(payload);
  return delta;
}

}  // namespace pathdump
