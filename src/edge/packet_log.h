// Per-packet trajectory log — the paper's stated future-work extension.
//
// PathDump normally aggregates per (flow, path) to avoid write-rate
// bottlenecks, discarding per-packet detail (§2.2: "extending PathDump to
// store and query at per-packet granularity remains an intriguing future
// direction").  This module implements that extension as an opt-in,
// strictly bounded ring buffer: the newest N packets' (flow, trajectory,
// timestamp, size, flags) survive, oldest are overwritten.  Queries are
// scans over the ring — by flow, by link, by time — giving operators a
// short per-packet tail for incident forensics (e.g. exactly which packet
// of a flow took the detour) without unbounded storage.

#ifndef PATHDUMP_SRC_EDGE_PACKET_LOG_H_
#define PATHDUMP_SRC_EDGE_PACKET_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/edge/tib.h"
#include "src/packet/packet.h"

namespace pathdump {

// One logged packet.  The trajectory is stored decoded (CompactPath) so
// queries need no codec access; undecodable packets are logged with an
// empty path and the raw label count.
struct PacketLogEntry {
  FiveTuple flow;
  CompactPath path;
  SimTime at = 0;
  uint32_t bytes = 0;
  uint32_t seq = 0;
  uint8_t raw_tag_count = 0;
  bool retx = false;
  bool fin = false;
};

class PacketLog {
 public:
  explicit PacketLog(size_t capacity = 65536);

  // Appends one entry (overwrites the oldest once full).
  void Append(const PacketLogEntry& entry);

  size_t capacity() const { return ring_.size(); }
  // Entries currently retained (<= capacity).
  size_t size() const { return count_ < ring_.size() ? count_ : ring_.size(); }
  uint64_t total_appended() const { return count_; }

  // Iterates retained entries oldest-to-newest.
  void ForEach(const std::function<void(const PacketLogEntry&)>& fn) const;

  // Packets of `flow` within `range`, oldest first.
  std::vector<PacketLogEntry> PacketsOfFlow(const FiveTuple& flow, const TimeRange& range) const;

  // Packets whose trajectory matches a (wildcardable) link query.
  std::vector<PacketLogEntry> PacketsOnLink(const LinkId& link, const TimeRange& range) const;

  // Retransmitted packets within `range` (incident forensics).
  std::vector<PacketLogEntry> Retransmissions(const TimeRange& range) const;

  // Approximate resident bytes (the bound the operator signed up for).
  size_t ApproxBytes() const { return ring_.capacity() * sizeof(PacketLogEntry); }

  void Clear();

 private:
  std::vector<PacketLogEntry> ring_;
  uint64_t count_ = 0;  // total appends; write index = count_ % capacity
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_EDGE_PACKET_LOG_H_
