#include "src/common/record_delta.h"

#include <algorithm>

namespace pathdump {

namespace {

// Framing constants, matching src/edge/query.cc: 16-byte message header;
// per item an 8-byte id, 13-byte packed 5-tuple, 8-byte byte count,
// 4-byte packet count, and a length-prefixed path (4 bytes per switch).
constexpr size_t kDeltaHeader = 16;
constexpr size_t kPerItemFixed = 8 + 13 + 8 + 4;
constexpr size_t kPerPathSwitch = 4;

}  // namespace

size_t RecordDelta::SerializedSize() const {
  size_t s = kDeltaHeader;
  for (const RecordDeltaItem& item : items) {
    s += kPerItemFixed + 1 + item.path.size() * kPerPathSwitch;
  }
  return s;
}

RecordDelta RecordDelta::FromShardBuffers(std::vector<std::vector<RecordDeltaItem>>& buffers) {
  RecordDelta out;
  size_t total = 0;
  for (const auto& b : buffers) {
    total += b.size();
  }
  out.items.reserve(total);
  std::vector<size_t> runs;  // start offset of each non-empty sorted run
  for (auto& b : buffers) {
    if (b.empty()) {
      continue;
    }
    runs.push_back(out.items.size());
    out.items.insert(out.items.end(), std::make_move_iterator(b.begin()),
                     std::make_move_iterator(b.end()));
    b.clear();
  }
  // Each per-shard buffer is already ascending by id (appended under its
  // shard lock in insertion order), so canonicalizing is a k-way merge
  // of k sorted runs — bottom-up pairwise inplace_merge, O(n log k) —
  // not a full sort.  Ids are globally unique, so ascending id is a
  // total order: the same delta bytes at any shard count.
  const auto by_id = [](const RecordDeltaItem& a, const RecordDeltaItem& b) {
    return a.id < b.id;
  };
  while (runs.size() > 1) {
    std::vector<size_t> next;
    for (size_t i = 0; i < runs.size(); i += 2) {
      if (i + 1 == runs.size()) {
        next.push_back(runs[i]);  // odd run out — carries to the next round
        break;
      }
      const size_t end = (i + 2 < runs.size()) ? runs[i + 2] : out.items.size();
      std::inplace_merge(out.items.begin() + std::ptrdiff_t(runs[i]),
                         out.items.begin() + std::ptrdiff_t(runs[i + 1]),
                         out.items.begin() + std::ptrdiff_t(end), by_id);
      next.push_back(runs[i]);
    }
    runs = std::move(next);
  }
  return out;
}

}  // namespace pathdump
