#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace pathdump {

namespace {
std::atomic<int> g_level{int(LogLevel::kWarn)};
std::atomic<const char*> g_component{"pathdump"};

// The sink and the formatting buffer share one mutex: lines reach the
// sink (or stderr) whole, never interleaved mid-line across threads.
std::mutex g_sink_mu;
LogSink g_sink;  // guarded by g_sink_mu

// Seconds since the first log call (steady clock) — monotonic, so lines
// from one process sort by prefix even when stderr interleaves buffers.
double MonotonicSeconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(int(level), std::memory_order_relaxed); }

LogLevel GetLogLevel() { return LogLevel(g_level.load(std::memory_order_relaxed)); }

void SetLogComponent(const char* component) {
  g_component.store(component != nullptr ? component : "pathdump", std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void Logf(LogLevel level, const char* fmt, ...) {
  if (int(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char line[1024];
  int prefix = std::snprintf(line, sizeof(line), "[%9.3fs %s %s] ", MonotonicSeconds(),
                             g_component.load(std::memory_order_relaxed), LevelName(level));
  if (prefix < 0) {
    prefix = 0;
  }
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line + prefix, sizeof(line) - size_t(prefix), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line);
  }
}

}  // namespace pathdump
