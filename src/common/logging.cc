#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace pathdump {

namespace {
std::atomic<int> g_level{int(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(int(level), std::memory_order_relaxed); }

LogLevel GetLogLevel() { return LogLevel(g_level.load(std::memory_order_relaxed)); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (int(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[pathdump %s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace pathdump
