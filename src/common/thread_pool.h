// Fixed-size worker pool shared by the controller's distributed query
// engine (src/controller/controller.cc) and available to any other
// fan-out/fan-in stage (future: sharded TIB scans, batched alarm intake).
//
// Design notes:
//  * Determinism is the caller's job, and the API is shaped to make it
//    easy: ParallelFor(n, fn) promises only that fn(0..n-1) each run
//    exactly once before it returns — callers write results into
//    pre-sized, index-addressed slots and do any order-sensitive
//    reduction sequentially afterwards.  This is exactly how the
//    controller keeps QueryResult bytes and QueryExecStats.network_bytes
//    identical across 1, 4, and 16 workers.
//  * The calling thread participates in ParallelFor.  A pool constructed
//    with `workers == 1` therefore runs everything inline on the caller
//    (zero-thread semantics), which doubles as the sequential baseline in
//    the Fig. 11/12 benches, and a busy pool can never deadlock a nested
//    ParallelFor: the caller always makes progress on its own items.
//  * Exceptions thrown by a task are captured and the first one is
//    rethrown on the calling thread once all items finish; the pool stays
//    usable afterwards.

#ifndef PATHDUMP_SRC_COMMON_THREAD_POOL_H_
#define PATHDUMP_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pathdump {

class ThreadPool {
 public:
  // Spawns `workers - 1` background threads (the calling thread is the
  // extra worker inside ParallelFor).  `workers == 0` means "one per
  // hardware thread" (std::thread::hardware_concurrency, min 1).
  explicit ThreadPool(size_t workers = 0);

  // Drains nothing: outstanding ParallelFor calls must have returned.
  // Joins all background threads.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn(i) exactly once for every i in [0, n) and returns when all n
  // invocations have finished.  Invocations may run concurrently and in
  // any order; the calling thread executes items too.  If any invocation
  // throws, the first captured exception is rethrown here after the
  // remaining items complete (items are never skipped).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Total workers that can execute ParallelFor items concurrently
  // (background threads + the calling thread).  Always >= 1.
  size_t worker_count() const { return threads_.size() + 1; }

 private:
  // One batch of ParallelFor work; lives on the caller's stack.
  struct Batch;

  // Background-thread main loop: wait for a batch, help, repeat.
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: batch available / shutdown
  Batch* current_ = nullptr;          // batch workers should help with
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_THREAD_POOL_H_
