#include "src/common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace pathdump {

namespace metrics_internal {

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace metrics_internal

namespace {

void AppendJsonKey(std::string& out, const std::string& key) {
  // Metric names are plain identifiers with dots — no escaping needed
  // beyond quoting (enforced by convention, cheap to keep honest here).
  out += '"';
  for (char c : key) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, matching the "value at quantile"
  // convention of stats.h's Cdf.
  uint64_t rank = uint64_t(q * double(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return LatencyHistogram::BucketUpper(b);
    }
  }
  return LatencyHistogram::BucketUpper(buckets.size() - 1);
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    out.counters[name] = v - (it == earlier.counters.end() ? 0 : it->second);
  }
  // Gauges are levels, not rates: the later level is the diff's value.
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot d = h;
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (size_t b = 0; b < d.buckets.size(); ++b) {
        d.buckets[b] -= it->second.buckets[b];
      }
    }
    out.histograms[name] = d;
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    counters[name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    gauges[name] += v;
  }
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.count += h.count;
    mine.sum += h.sum;
    for (size_t b = 0; b < mine.buckets.size(); ++b) {
      mine.buckets[b] += h.buckets[b];
    }
  }
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRIu64 "\n", name.c_str(), v);
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRId64 "\n", name.c_str(), v);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%-10" PRIu64 " mean=%-10.1f p50=%-8" PRIu64 " p99=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.Quantile(0.50), h.Quantile(0.99));
    out += line;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char num[64];
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, name);
    std::snprintf(num, sizeof(num), ":%" PRIu64, v);
    out += num;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, name);
    std::snprintf(num, sizeof(num), ":%" PRId64, v);
    out += num;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonKey(out, name);
    std::snprintf(num, sizeof(num), ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"buckets\":{",
                  h.count, h.sum);
    out += num;
    bool bfirst = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) {
        continue;  // sparse: empty buckets carry no information
      }
      if (!bfirst) {
        out += ',';
      }
      bfirst = false;
      std::snprintf(num, sizeof(num), "\"%" PRIu64 "\":%" PRIu64,
                    LatencyHistogram::BucketUpper(b), h.buckets[b]);
      out += num;
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    for (const auto& shard : h->shards_) {
      snap.count += shard.count.load(std::memory_order_relaxed);
      snap.sum += shard.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    out.histograms[name] = snap;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, g] : gauges_) {
    g->value_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, h] : histograms_) {
    for (auto& shard : h->shards_) {
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        shard.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace pathdump
