// Minimal leveled logger used across the library.
//
// PathDump components log sparingly (alarm delivery, controller decisions).
// The default threshold is kWarn so tests and benches stay quiet; examples
// lower it to kInfo to narrate what the system is doing.

#ifndef PATHDUMP_SRC_COMMON_LOGGING_H_
#define PATHDUMP_SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace pathdump {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Sets the global logging threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging to stderr with a level prefix.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_LOGGING_H_
