// Minimal leveled logger used across the library.
//
// PathDump components log sparingly (alarm delivery, controller decisions).
// The default threshold is kWarn so tests and benches stay quiet; examples
// lower it to kInfo to narrate what the system is doing.
//
// Every line carries a monotonic timestamp (seconds since process start,
// steady clock) and a component tag, so interleaved multi-process output
// (controller + agent_worker fleet) stays attributable and ordered:
//
//   [   12.034s agent:7 INFO] epoch 42 acked
//
// The component tag is process-wide (SetLogComponent) — one process is
// one component in this system.  Tests capture output structurally via
// SetLogSink instead of scraping stderr.

#ifndef PATHDUMP_SRC_COMMON_LOGGING_H_
#define PATHDUMP_SRC_COMMON_LOGGING_H_

#include <cstdarg>
#include <functional>

namespace pathdump {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Sets the global logging threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Sets the process-wide component tag (default "pathdump").  The pointer
// must stay valid for the process lifetime — pass a string literal or a
// leaked buffer (agent_worker does the latter to embed its host id).
void SetLogComponent(const char* component);

// Captures formatted lines instead of writing them to stderr.  The sink
// receives the level and the fully formatted line (prefix included, no
// trailing newline).  Pass nullptr to restore stderr output.  The sink
// may be called from any thread; calls are serialized by the logger.
using LogSink = std::function<void(LogLevel, const char* line)>;
void SetLogSink(LogSink sink);

// printf-style logging with the timestamp + component + level prefix.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_LOGGING_H_
