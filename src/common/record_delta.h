// Per-record deltas — the epoch increments standing FlowList/CountSummary
// queries ship.
//
// The per-flow byte deltas of flow_delta.h suffice for aggregates that
// reduce to per-flow sums (top-k, flow-size histogram), but PathDump's
// debugging value also comes from queries that return *records and
// counts*: getFlows (distinct (flow, path) pairs in first-appearance
// order) and getCount (byte/packet totals).  Those need the records
// themselves: each epoch the agent ships every TIB record admitted by the
// subscription's filter since the previous boundary, tagged with its
// global insertion id.
//
// The id is the determinism anchor.  The poll path (Tib::FlowsOnLink)
// dedups (flow, path) pairs and orders them by ascending first insertion
// id; a controller folding record deltas reproduces that exactly by
// keeping the minimum id per distinct pair and sorting at
// materialization.  Items within a delta are kept sorted ascending by id
// so a delta's wire bytes are a pure function of its contents.
//
// Wire framing follows src/edge/query.cc: a 16-byte message header plus,
// per item, the 8-byte id, packed 5-tuple (13), byte/packet counts
// (8 + 4), and the path (1-byte length prefix + 4 bytes per switch).

#ifndef PATHDUMP_SRC_COMMON_RECORD_DELTA_H_
#define PATHDUMP_SRC_COMMON_RECORD_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// One filtered TIB record as shipped in an epoch delta.
struct RecordDeltaItem {
  // Global insertion id at the producing host's TIB — unique per host,
  // ascending in insertion order (the poll path's ordering key).
  uint64_t id = 0;
  FiveTuple flow;
  Path path;
  uint64_t bytes = 0;
  uint32_t pkts = 0;

  friend bool operator==(const RecordDeltaItem&, const RecordDeltaItem&) = default;
};

struct RecordDelta {
  // Items sorted ascending by id — the canonical order, so equal
  // contents always serialize identically.
  std::vector<RecordDeltaItem> items;

  bool empty() const { return items.empty(); }

  // Bytes this delta occupies on the wire (header + per-item framing).
  size_t SerializedSize() const;

  // Canonicalizes per-shard append buffers into one id-sorted delta (the
  // epoch-tick merge).  Buffers are consumed.  Each buffer is already
  // ascending (appended under its shard lock in insertion order), so
  // this is a k-way merge of k sorted runs, O(n log k).
  static RecordDelta FromShardBuffers(std::vector<std::vector<RecordDeltaItem>>& buffers);

  friend bool operator==(const RecordDelta&, const RecordDelta&) = default;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_RECORD_DELTA_H_
