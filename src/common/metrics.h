// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms, with one mergeable/diff-able snapshot covering the
// whole system.
//
// Every subsystem used to carry its own ad-hoc stats struct
// (AlarmPipelineStats, MpscChannelStats, TransportStats, the subscription
// fold counters) — each observable only through its own accessor, none
// comparable across a run.  The registry gives them one namespace:
//
//   components hold Counter*/Gauge*/LatencyHistogram* handles, resolved
//   once at construction (MetricsRegistry::Global().GetCounter("sub.
//   deltas_folded")) and bumped with a single relaxed atomic op on the
//   hot path.  MetricsRegistry::Global().Snapshot() is a consistent-
//   enough point-in-time copy of every registered metric; snapshots
//   Diff() against an earlier one (interval counters) and Merge() across
//   processes, and export as aligned text or JSON.
//
// Naming convention: "<subsystem>.<metric>", e.g. "tib.inserts",
// "sub.deltas_folded", "transport.frames", "alarm.delivered".  Latency
// histograms end in "_us" and record microseconds.
//
// Instance views vs registry totals: components that can be instantiated
// many times per process (channels, pipelines, hubs) keep their existing
// per-instance stats structs as thin views — those remain exact per
// instance — while ALSO bumping the registry counters, which therefore
// hold process-wide totals across every instance that ever lived.  Tests
// that assert on registry values always diff two snapshots rather than
// reading absolutes.
//
// Cost contract (the bench_transport overhead gate holds this to <3% on
// the epoch pipeline):
//  * Counter::Add / Gauge::Set — one relaxed atomic RMW/store.
//  * LatencyHistogram::Record — one relaxed RMW on a thread-sharded
//    bucket (threads hash to one of kShards cache-line-padded shards, so
//    concurrent recorders almost never contend on a line).
//  * When metrics are disabled (MetricsRegistry::SetEnabled(false)) every
//    record path is one relaxed load + branch; compiling with
//    -DPATHDUMP_DISABLE_METRICS turns the record paths into true no-ops.
//
// Thread safety: registration takes a mutex (cold path, once per
// component); handles are stable for the process lifetime (node-based
// map, never erased).  Recording and Snapshot() are lock-free on the
// metric values themselves.

#ifndef PATHDUMP_SRC_COMMON_METRICS_H_
#define PATHDUMP_SRC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pathdump {

#if defined(PATHDUMP_DISABLE_METRICS)
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

namespace metrics_internal {
// Global runtime enable flag (see MetricsRegistry::SetEnabled).  A plain
// relaxed load on every record path; defaults to on.
inline std::atomic<bool> g_enabled{true};
inline bool Enabled() {
  return kMetricsCompiledIn && g_enabled.load(std::memory_order_relaxed);
}
// Stable small id for the calling thread, used to pick histogram shards
// and label trace spans.  Dense (0, 1, 2, ...) in thread-creation order.
uint32_t ThreadIndex();
}  // namespace metrics_internal

// Monotonically increasing event count.  Handles are obtained from the
// registry and remain valid for the process lifetime.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (metrics_internal::Enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
};

// Instantaneous signed level (queue depth, live peers, ...).
class Gauge {
 public:
  void Set(int64_t v) {
    if (metrics_internal::Enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (metrics_internal::Enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

// Log-bucketed latency histogram: sample x lands in bucket
// bit_width(x) (i.e. bucket b covers [2^(b-1), 2^b)), so 48 buckets span
// sub-microsecond to ~3 days at fixed 2x resolution.  Recording is
// thread-sharded: each thread hashes to one of kShards cache-line-padded
// shard arrays, so concurrent recorders touch distinct lines.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 48;
  static constexpr size_t kShards = 8;

  // Records one sample (microseconds by convention; the unit is part of
  // the metric's name).
  void Record(uint64_t sample) {
    if (!metrics_internal::Enabled()) {
      return;
    }
    Shard& s = shards_[metrics_internal::ThreadIndex() % kShards];
    s.buckets[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(sample, std::memory_order_relaxed);
  }

  static size_t BucketOf(uint64_t sample) {
    size_t b = 0;
    while (sample > 0 && b + 1 < kBuckets) {
      sample >>= 1;
      ++b;
    }
    return b;
  }
  // Upper bound (exclusive) of bucket b — the value reported for
  // percentiles that land in it.
  static uint64_t BucketUpper(size_t b) { return b == 0 ? 1 : (uint64_t(1) << b); }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

// Merged, immutable view of one histogram at snapshot time.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};

  double mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  // Value at quantile q in [0, 1]: the upper bound of the bucket holding
  // the q-th sample (2x resolution by construction).
  uint64_t Quantile(double q) const;

  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

// Point-in-time copy of every registered metric.  Deterministically
// ordered (std::map), so two snapshots of identical state serialize
// identically — the diff/merge/export trio the benches and tests rely on.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // this - earlier, element-wise: counters/histogram buckets subtract
  // (missing keys in `earlier` count as zero), gauges keep this's level.
  // The result is "what happened between the two snapshots".
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;
  // this + other, element-wise (gauges add) — cross-process aggregation.
  void Merge(const MetricsSnapshot& other);

  // Aligned human-readable dump; histograms print count/mean/p50/p99.
  std::string ToText() const;
  // Machine-readable dump:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":
  //     {"count":N,"sum":N,"buckets":{"<upper_us>":N,...}}}}
  std::string ToJson() const;

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem registers into.
  static MetricsRegistry& Global();

  // Resolve-or-create by name; the returned handle is valid for the
  // process lifetime.  Two calls with the same name return the same
  // handle (this is how independent instances share a process total).
  // A name registered as one kind must not be re-requested as another.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (handles stay valid).  Test/bench
  // convenience only — production readers diff snapshots instead.
  void Reset();

  // Runtime kill switch for every record path (the overhead gate's
  // "metrics off" side).  Registration and Snapshot still work.
  static void SetEnabled(bool enabled) {
    metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() { return metrics_internal::Enabled(); }

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;  // guards the maps' structure, not the values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_METRICS_H_
