// Core identifier and key types shared by every PathDump module.
//
// PathDump identifies network elements the way the paper does (§2.1):
//  * every switch and host has a unique ID,
//  * a linkID is a pair of adjacent node IDs,
//  * a flowID is the usual 5-tuple,
//  * a Path is the list of switch IDs a packet traversed,
//  * a Flow is a (flowID, Path) pair, and
//  * a timeRange is a pair of timestamps (with wildcards).

#ifndef PATHDUMP_SRC_COMMON_TYPES_H_
#define PATHDUMP_SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pathdump {

// Index of a node (host or switch) in a Topology's node table.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

// Aliases used where the role of the node matters for readability.
using SwitchId = NodeId;
using HostId = NodeId;

// CherryPick global link label, carried in a 12-bit VLAN ID (or the 6-bit
// DSCP field on VL2).  Labels are reused across pods; see src/topology.
using LinkLabel = uint16_t;
inline constexpr int kVlanIdBits = 12;
inline constexpr LinkLabel kMaxVlanLabel = (1u << kVlanIdBits) - 1;
inline constexpr int kDscpBits = 6;
inline constexpr LinkLabel kMaxDscpLabel = (1u << kDscpBits) - 1;
inline constexpr LinkLabel kInvalidLabel = 0xFFFFu;

// Commodity switch ASICs parse at most two VLAN tags (QinQ) at line rate; a
// packet carrying three or more triggers a rule miss and is punted to the
// controller (§3.1).  This constant is load-bearing: it implements both the
// "suspiciously long path" trap and routing-loop detection.
inline constexpr int kAsicMaxVlanTags = 2;

// IPv4 address.  Host h gets address kHostIpBase | h.
using IpAddr = uint32_t;
inline constexpr IpAddr kHostIpBase = 0x0A000000u;  // 10.0.0.0/8

// Directed physical link between two adjacent nodes.
struct LinkId {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  friend bool operator==(const LinkId&, const LinkId&) = default;
  friend auto operator<=>(const LinkId&, const LinkId&) = default;
};

// The usual 5-tuple flow identifier.
struct FiveTuple {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

// An end-to-end trajectory: the ordered switch IDs a packet traversed
// (hosts excluded, matching the paper's Path definition).
using Path = std::vector<SwitchId>;

// A (flowID, Path) pair — used where packets of one flow may take several
// paths (ECMP rehash, packet spraying).
struct Flow {
  FiveTuple id;
  Path path;

  friend bool operator==(const Flow&, const Flow&) = default;
};

// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;
inline constexpr SimTime kSimTimeMax = INT64_MAX;
inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000 * 1000 * 1000;

// Closed-open time interval [begin, end).  Wildcards from the paper's API
// ("since ti", "any time") are expressed with 0 / kSimTimeMax.
struct TimeRange {
  SimTime begin = 0;
  SimTime end = kSimTimeMax;

  // Returns the range covering all of time, i.e. (<*, *>).
  static TimeRange All() { return TimeRange{0, kSimTimeMax}; }
  // Returns the range "since t", i.e. (<t, *>).
  static TimeRange Since(SimTime t) { return TimeRange{t, kSimTimeMax}; }

  bool Contains(SimTime t) const { return t >= begin && t < end; }
  // True if [a, b] overlaps this range (used for flow-record matching).
  bool Overlaps(SimTime a, SimTime b) const { return a < end && b >= begin; }

  friend bool operator==(const TimeRange&, const TimeRange&) = default;
};

// 64-bit mix used by all hash specializations (SplitMix64 finalizer).
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return HashMix64(seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2)));
}

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const {
    uint64_t h = HashMix64((uint64_t(t.src_ip) << 32) | t.dst_ip);
    h = HashCombine(h, (uint64_t(t.src_port) << 32) | (uint64_t(t.dst_port) << 16) | t.protocol);
    return size_t(h);
  }
};

struct LinkIdHash {
  size_t operator()(const LinkId& l) const {
    return size_t(HashMix64((uint64_t(l.src) << 32) | l.dst));
  }
};

// Renders "10.x.y.z" for logging.
std::string IpToString(IpAddr ip);
// Renders "sip:sport>dip:dport/proto".
std::string FlowToString(const FiveTuple& t);
// Renders "S3->S7->S12".
std::string PathToString(const Path& p);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_TYPES_H_
