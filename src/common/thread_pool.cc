#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pathdump {

// A batch lives on the ParallelFor caller's stack.  Items are claimed
// one-by-one via an atomic cursor; `helpers` (guarded by ThreadPool::mu_)
// counts background threads currently inside Help(), so the caller can
// prove no worker still references the batch before returning.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  size_t helpers = 0;  // guarded by ThreadPool::mu_
  std::exception_ptr first_error;
  std::mutex error_mu;

  // Claims and runs items until the cursor passes n.  A thread only
  // returns once every item it claimed has finished, so when the cursor
  // is drained and no helpers remain attached, the whole batch is done.
  void Help() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  }
};

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers - 1);
  for (size_t i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || current_ != nullptr; });
    if (shutdown_) {
      return;
    }
    Batch* batch = current_;
    ++batch->helpers;
    lock.unlock();
    batch->Help();
    lock.lock();
    --batch->helpers;
    // Help() only returns on a drained cursor, so the batch needs no
    // further workers; retract it so nobody re-attaches.
    if (current_ == batch) {
      current_ = nullptr;
    }
    // Wake the ParallelFor caller possibly waiting on helpers == 0.
    work_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  Batch batch;
  batch.n = n;
  batch.fn = &fn;

  const bool shared = !threads_.empty() && n > 1;
  if (shared) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = &batch;
    }
    work_cv_.notify_all();
  }

  batch.Help();

  if (shared) {
    std::unique_lock<std::mutex> lock(mu_);
    if (current_ == &batch) {
      current_ = nullptr;
    }
    // The cursor is drained (our Help() returned), so once no helper is
    // attached every item has completed and the batch may leave scope.
    work_cv_.wait(lock, [&batch] { return batch.helpers == 0; });
  }

  if (batch.first_error) {
    std::rethrow_exception(batch.first_error);
  }
}

}  // namespace pathdump
