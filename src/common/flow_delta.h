// Per-flow byte deltas — the epoch increments standing queries ship.
//
// A standing query does not re-send its whole answer every poll; each
// epoch the agent ships only what changed: (flow, byte-delta) pairs
// accumulated since the previous epoch.  Both canned aggregates (top-k
// and the flow-size distribution) derive from per-flow byte totals, so
// one delta shape serves every standing query, and folding a delta into
// an accumulated map is a commutative integer sum — deterministic no
// matter how the deltas were produced (shard count, scan workers) or
// how shards were snapshotted.
//
// Wire framing follows src/edge/query.cc: a 16-byte message header plus
// a fixed 21 bytes per item (packed 5-tuple + byte count).  Items are
// kept sorted by flow id so a delta's wire bytes are a pure function of
// its contents.

#ifndef PATHDUMP_SRC_COMMON_FLOW_DELTA_H_
#define PATHDUMP_SRC_COMMON_FLOW_DELTA_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Per-flow byte totals — the shared aggregation behind TopK and
// FlowSizeDistribution (see Tib::AggregateFlowBytes), and the state a
// standing subscription materializes per host.
using FlowBytesMap = std::unordered_map<FiveTuple, uint64_t, FiveTupleHash>;

struct FlowBytesDelta {
  // (flow, byte-delta) pairs, sorted ascending by flow id — the
  // canonical order, so equal contents always serialize identically.
  std::vector<std::pair<FiveTuple, uint64_t>> items;

  bool empty() const { return items.empty(); }

  // Bytes this delta occupies on the wire (header + 21 per item, the
  // same per-flow framing as a TopKFlows item).
  size_t SerializedSize() const;

  // Canonicalizes key-disjoint per-shard partial maps into one sorted
  // delta (the epoch-tick merge).  Maps are consumed.
  static FlowBytesDelta FromShardMaps(std::vector<FlowBytesMap>& shard_maps);

  // Folds this delta into an accumulated per-flow map (integer sums; a
  // zero-byte item still creates its key, matching AggregateFlowBytes).
  void ApplyTo(FlowBytesMap& acc) const;

  // Merges `in` into this delta, summing bytes of shared flows; the
  // result stays sorted.  Merging then serializing must agree with the
  // per-item size accounting (tests/query_serialization_test.cc).
  // Forward reference: today only the size-consistency tests call this;
  // its consumer is cross-epoch delta compaction for slow subscribers
  // (ROADMAP follow-on under "Standing queries").
  void Merge(const FlowBytesDelta& in);

  friend bool operator==(const FlowBytesDelta&, const FlowBytesDelta&) = default;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_FLOW_DELTA_H_
