// Bounded top-k accumulator (min-heap of the k largest items).
//
// Used by the traffic-measurement application (§2.3 top-1000 flows query)
// and by the multi-level aggregation path for Fig. 12's top-10,000 query.

#ifndef PATHDUMP_SRC_COMMON_TOPK_H_
#define PATHDUMP_SRC_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace pathdump {

// Keeps the k items with the largest keys.  Key must be totally ordered.
template <typename Key, typename Value>
class TopK {
 public:
  struct Item {
    Key key;
    Value value;
    // Min-heap on key: std::push_heap with this comparator keeps the
    // smallest retained key at the front, ready for eviction.
    friend bool operator>(const Item& a, const Item& b) { return a.key > b.key; }
  };

  explicit TopK(size_t k) : k_(k) {}

  // Offers an item; it is retained only if it ranks in the current top k.
  void Add(const Key& key, const Value& value) {
    if (k_ == 0) {
      return;
    }
    if (heap_.size() < k_) {
      heap_.push_back(Item{key, value});
      std::push_heap(heap_.begin(), heap_.end(), Greater());
    } else if (key > heap_.front().key) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater());
      heap_.back() = Item{key, value};
      std::push_heap(heap_.begin(), heap_.end(), Greater());
    }
  }

  // Merges another accumulator into this one (aggregation-tree reduce step).
  void Merge(const TopK& other) {
    for (const Item& it : other.heap_) {
      Add(it.key, it.value);
    }
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  // Smallest retained key; only valid when size() == capacity().
  const Key& Threshold() const { return heap_.front().key; }
  bool Full() const { return heap_.size() == k_; }

  // Returns retained items sorted by descending key.
  std::vector<Item> SortedDescending() const {
    std::vector<Item> out = heap_;
    std::sort(out.begin(), out.end(),
              [](const Item& a, const Item& b) { return b.key < a.key; });
    return out;
  }

  const std::vector<Item>& UnsortedItems() const { return heap_; }

 private:
  struct Greater {
    bool operator()(const Item& a, const Item& b) const { return a > b; }
  };

  size_t k_;
  std::vector<Item> heap_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_TOPK_H_
