// Small statistics toolkit: running summaries, empirical CDFs, histograms.
//
// The evaluation harness uses these to reproduce the paper's figures (CDF of
// load-imbalance rate, flow-size distributions, recall/precision curves).

#ifndef PATHDUMP_SRC_COMMON_STATS_H_
#define PATHDUMP_SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pathdump {

// Running mean / variance / extrema (Welford's online algorithm).
class Summary {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // Sample variance (n-1 denominator).
  double variance() const { return count_ > 1 ? m2_ / double(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  // Standard error of the mean: sigma / sqrt(n) — used for Fig. 8 error bars.
  double stderror() const { return count_ > 1 ? stddev() / std::sqrt(double(count_)) : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = HUGE_VAL;
  double max_ = -HUGE_VAL;
};

// Empirical CDF over a sample set.
class Cdf {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Value at quantile q in [0, 1].
  double Quantile(double q);
  // Fraction of samples <= x.
  double FractionBelow(double x);
  // Emits "x cdf" rows at the given number of evenly spaced quantile points,
  // suitable for plotting (matches the paper's CDF figures).
  std::vector<std::pair<double, double>> Points(int n = 20);

 private:
  void Sort();

  std::vector<double> values_;
  bool sorted_ = false;
};

// Fixed-bin-width histogram keyed by bin index (value / bin_width).
class Histogram {
 public:
  explicit Histogram(double bin_width) : bin_width_(bin_width) {}

  void Add(double x, int64_t weight = 1) { bins_[Bin(x)] += weight; }
  int64_t Bin(double x) const { return int64_t(x / bin_width_); }
  double bin_width() const { return bin_width_; }
  const std::map<int64_t, int64_t>& bins() const { return bins_; }
  int64_t total() const;

 private:
  double bin_width_;
  std::map<int64_t, int64_t> bins_;
};

// Load-imbalance rate from the paper (§4.2, citing [31]):
//   lambda = (Lmax / Lmean - 1) * 100 (%).
// Returns 0 when all loads are zero.
double ImbalanceRatePercent(const std::vector<double>& loads);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_STATS_H_
