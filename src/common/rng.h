// Deterministic pseudo-random number generator (PCG32).
//
// Every stochastic component in PathDump (workload generation, ECMP hashing
// perturbation, failure injection, packet spraying) draws from a seeded Rng
// so that all tests and benchmarks are exactly reproducible.

#ifndef PATHDUMP_SRC_COMMON_RNG_H_
#define PATHDUMP_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace pathdump {

// Minimal PCG32 (O'Neill).  Not cryptographic; statistically solid and fast.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9Bull, uint64_t stream = 0xDA3E39CB94B95BDBull) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    uint32_t xorshifted = uint32_t(((old >> 18) ^ old) >> 27);
    uint32_t rot = uint32_t(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  // Uniform 64-bit value.
  uint64_t NextU64() { return (uint64_t(NextU32()) << 32) | NextU32(); }

  // Uniform integer in [0, bound).  bound must be > 0.
  uint32_t UniformInt(uint32_t bound) {
    // Debiased modulo (Lemire-style rejection kept simple).
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  // Uniform double in [0,1) with 53-bit resolution.
  double Uniform01() {
    uint64_t r = NextU64() >> 11;
    return double(r) * (1.0 / 9007199254740992.0);
  }

  // Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    double u = Uniform01();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    return -mean * std::log(1.0 - u);
  }

  // Binomial(n, p) sample.  Exact loop for small n; normal approximation
  // (clamped) for large n where the loop would dominate.
  uint64_t Binomial(uint64_t n, double p) {
    if (p <= 0.0 || n == 0) {
      return 0;
    }
    if (p >= 1.0) {
      return n;
    }
    if (n <= 64) {
      uint64_t k = 0;
      for (uint64_t i = 0; i < n; ++i) {
        k += Bernoulli(p) ? 1 : 0;
      }
      return k;
    }
    double mean = double(n) * p;
    double sd = std::sqrt(double(n) * p * (1.0 - p));
    double x = mean + sd * Gaussian();
    if (x < 0) {
      return 0;
    }
    if (x > double(n)) {
      return n;
    }
    return uint64_t(x + 0.5);
  }

  // Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = Uniform01();
    double u2 = Uniform01();
    if (u1 < 1e-12) {
      u1 = 1e-12;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Pareto-distributed value with given scale (minimum) and shape alpha.
  double Pareto(double scale, double alpha) {
    double u = Uniform01();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    return scale / std::pow(1.0 - u, 1.0 / alpha);
  }

  // Samples k of n indices without replacement (Floyd's algorithm) into out.
  template <typename OutIt>
  void SampleWithoutReplacement(uint32_t n, uint32_t k, OutIt out) {
    // Simple selection-sampling; k is small in all our uses.
    uint32_t chosen = 0;
    for (uint32_t i = 0; i < n && chosen < k; ++i) {
      uint32_t remaining = n - i;
      uint32_t needed = k - chosen;
      if (UniformInt(remaining) < needed) {
        *out++ = i;
        ++chosen;
      }
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_RNG_H_
