#include "src/common/stats.h"

#include <numeric>

namespace pathdump {

void Cdf::Sort() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) {
  if (values_.empty()) {
    return 0.0;
  }
  Sort();
  q = std::clamp(q, 0.0, 1.0);
  double idx = q * double(values_.size() - 1);
  size_t lo = size_t(idx);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = idx - double(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Cdf::FractionBelow(double x) {
  if (values_.empty()) {
    return 0.0;
  }
  Sort();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return double(it - values_.begin()) / double(values_.size());
}

std::vector<std::pair<double, double>> Cdf::Points(int n) {
  std::vector<std::pair<double, double>> pts;
  if (values_.empty() || n < 2) {
    return pts;
  }
  pts.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    double q = double(i) / double(n - 1);
    pts.emplace_back(Quantile(q), q);
  }
  return pts;
}

int64_t Histogram::total() const {
  int64_t t = 0;
  for (const auto& [bin, count] : bins_) {
    t += count;
  }
  return t;
}

double ImbalanceRatePercent(const std::vector<double>& loads) {
  if (loads.empty()) {
    return 0.0;
  }
  double sum = std::accumulate(loads.begin(), loads.end(), 0.0);
  double mean = sum / double(loads.size());
  if (mean <= 0.0) {
    return 0.0;
  }
  double maxv = *std::max_element(loads.begin(), loads.end());
  return (maxv / mean - 1.0) * 100.0;
}

}  // namespace pathdump
