#include "src/common/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/metrics.h"

namespace pathdump {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

Tracer::Tracer(size_t capacity) : epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

uint64_t Tracer::NowUs() const {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count());
}

void Tracer::Record(const char* name, uint64_t start_us, uint64_t dur_us,
                    const TraceKeys& keys) {
  if (!enabled()) {
    return;
  }
  const uint32_t tid = metrics_internal::ThreadIndex();
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan& slot = ring_[next_ % ring_.size()];
  slot.name = name;
  slot.seq = next_;
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  slot.tid = tid;
  slot.keys = keys;
  ++next_;
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  const size_t cap = ring_.size();
  const uint64_t first = next_ > cap ? next_ - cap : 0;  // oldest retained seq
  out.reserve(size_t(next_ - first));
  for (uint64_t s = first; s < next_; ++s) {
    out.push_back(ring_[s % cap]);
  }
  return out;
}

void Tracer::WriteChromeTrace(std::string* out) const {
  const std::vector<TraceSpan> spans = Snapshot();
  *out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) {
      *out += ',';
    }
    first = false;
    // Complete ("X") events: chrome://tracing stacks overlapping spans
    // per (pid, tid) row; the correlation keys ride in args.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                  ",\"args\":{\"sub\":%" PRIu64 ",\"host\":%" PRIu32 ",\"epoch\":%" PRIu64
                  ",\"seq\":%" PRIu64 "}}",
                  span.name, span.tid, span.start_us, span.dur_us, span.keys.sub,
                  span.keys.host, span.keys.epoch, span.seq);
    *out += buf;
  }
  *out += "]}";
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::string json;
  WriteChromeTrace(&json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(capacity == 0 ? 1 : capacity, TraceSpan{});
  next_ = 0;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
}

}  // namespace pathdump
