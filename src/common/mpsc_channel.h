// Bounded multi-producer single-consumer channel with a dedicated drain
// worker — THE cross-thread hand-off primitive of the controller.
//
// Two subsystems grew this shape independently: the alarm intake pipeline
// (src/controller/alarm_pipeline.h) and the standing-query delta intake
// (src/controller/subscription.h).  Their queue/backpressure/shutdown
// logic was deliberately identical — which meant every fix had to land
// twice.  This template is the single implementation both now share.
//
//   producers ──Submit()──▶ bounded deque ──▶ drain worker ──▶ consumer
//               (seq stamp)  (backpressure)    (batches)        callback
//
// Contract:
//  * Sequence stamping.  Every accepted item gets `item.seq = n` for a
//    counter incremented under the queue lock, so "arrival order" is a
//    total order even with many producer threads.  T must expose a
//    mutable integral member named `seq`.
//  * Backpressure is explicit.  With kBlock (default) a full queue makes
//    Submit() wait until the drain worker makes room — an accepted item
//    is never lost.  With kDropNewest a full queue rejects the incoming
//    item and counts it in stats().dropped.
//  * Batched drain.  One dedicated worker pulls up to max_batch items at
//    a time and hands the batch to the consumer callback OUTSIDE the
//    queue lock, so producers and the consumer only contend on the
//    pull/push instants.  The consumer sees items in sequence order.
//  * Reentrant-safe Flush.  Flush() blocks until everything accepted
//    before the call has been consumed — unless the calling thread is
//    inside this channel's drain (or holds a ReentrancyGuard on it),
//    in which case it returns immediately instead of deadlocking.
//    Reentrancy is per channel instance: flushing channel A from inside
//    channel B's drain still waits, as it must.
//  * Drain-on-destruction.  The destructor rejects new submissions,
//    drains every item already accepted, then joins the worker.  Under
//    kBlock nothing submitted successfully is ever dropped, even across
//    shutdown.  Owners must declare the channel AFTER any state the
//    consumer callback touches, so that state outlives the final drain.
//  * Reconfigure() swaps capacity/batch/overflow at runtime; queued
//    items and cumulative stats carry over.
//
// Ownership: the channel owns its queue and drain thread, nothing else.
// The consumer callback is borrowed state — the owner guarantees it
// stays valid until the destructor returns.

#ifndef PATHDUMP_SRC_COMMON_MPSC_CHANNEL_H_
#define PATHDUMP_SRC_COMMON_MPSC_CHANNEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/metrics.h"

namespace pathdump {

// What Submit() does when the queue is full.
enum class MpscOverflowPolicy : uint8_t {
  kBlock,       // wait for the drain worker to make room (never drops)
  kDropNewest,  // reject the incoming item, count it in stats().dropped
};

struct MpscChannelOptions {
  // Bound of the queue (items buffered between Submit and drain).
  size_t capacity = 4096;
  // Largest batch the drain worker pulls in one go.
  size_t max_batch = 256;
  MpscOverflowPolicy overflow = MpscOverflowPolicy::kBlock;
  // When non-empty, the channel mirrors its counters into the process
  // metrics registry under "<metric_prefix>.submitted" / ".dropped" /
  // ".blocked_enqueues" / ".processed" / ".batches" and exposes its
  // queue depth as the "<metric_prefix>.depth" gauge.  Registry values
  // are process-wide totals across every channel sharing the prefix;
  // stats() stays the exact per-instance view.  Resolved at
  // construction only (Reconfigure does not re-register).
  std::string metric_prefix;
};

// All counters are cumulative since construction (Reconfigure keeps them).
struct MpscChannelStats {
  uint64_t submitted = 0;         // accepted into the queue
  uint64_t dropped = 0;           // rejected (kDropNewest full, or shutdown)
  uint64_t blocked_enqueues = 0;  // Submit() calls that had to wait (kBlock)
  uint64_t processed = 0;         // pulled out and handed to the consumer
  uint64_t batches = 0;           // drain pulls
  uint64_t max_batch = 0;         // largest single pull
};

namespace mpsc_internal {

// Channels the current thread is "inside" (drain worker or a consumer
// dispatch thread holding a ReentrancyGuard).  A tiny stack, never more
// than a couple of entries deep.
inline thread_local std::vector<const void*> tl_inside_channels;

inline bool InsideChannel(const void* channel) {
  const auto& v = tl_inside_channels;
  return std::find(v.begin(), v.end(), channel) != v.end();
}

}  // namespace mpsc_internal

template <typename T>
class MpscChannel {
 public:
  // Consumes one pulled batch; runs on the drain worker with no channel
  // lock held.  The batch is in sequence order; the vector is scratch
  // (reused across pulls) — move items out freely.
  using Consumer = std::function<void(std::vector<T>&)>;

  // Marks the current thread as inside `channel` for its lifetime, so a
  // Flush() on that channel from this thread returns immediately.  Owners
  // use this on worker threads that run consumer-side callbacks (e.g.
  // alarm subscriber dispatch), where waiting on the drain would deadlock.
  class ReentrancyGuard {
   public:
    explicit ReentrancyGuard(const MpscChannel& channel) : channel_(&channel) {
      mpsc_internal::tl_inside_channels.push_back(channel_);
    }
    ~ReentrancyGuard() {
      auto& v = mpsc_internal::tl_inside_channels;
      // Guards nest like a stack; erase the most recent matching entry.
      for (auto it = v.rbegin(); it != v.rend(); ++it) {
        if (*it == channel_) {
          v.erase(std::next(it).base());
          break;
        }
      }
    }
    ReentrancyGuard(const ReentrancyGuard&) = delete;
    ReentrancyGuard& operator=(const ReentrancyGuard&) = delete;

   private:
    const void* channel_;
  };

  MpscChannel(MpscChannelOptions options, Consumer consumer)
      : options_(options), consumer_(std::move(consumer)) {
    if (!options_.metric_prefix.empty()) {
      MetricsRegistry& reg = MetricsRegistry::Global();
      const std::string& p = options_.metric_prefix;
      m_submitted_ = reg.GetCounter(p + ".submitted");
      m_dropped_ = reg.GetCounter(p + ".dropped");
      m_blocked_ = reg.GetCounter(p + ".blocked_enqueues");
      m_processed_ = reg.GetCounter(p + ".processed");
      m_batches_ = reg.GetCounter(p + ".batches");
      m_depth_ = reg.GetGauge(p + ".depth");
    }
    drain_ = std::thread([this] { DrainLoop(); });
  }

  // Rejects new submissions, drains everything already accepted (items
  // are never lost on shutdown under kBlock), then joins the worker.
  ~MpscChannel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    drain_.join();  // DrainLoop empties the queue before exiting
  }

  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  // Thread-safe MPSC enqueue; stamps item.seq under the queue lock.
  // Returns false iff the item was rejected — by kDropNewest
  // backpressure, or (under either policy) because shutdown already
  // began; rejects count in stats().dropped.  Every accepted item is
  // delivered to the consumer, even across destruction.
  bool Submit(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    // Once shutdown has begun the drain worker may already be gone; an
    // enqueue now could sit in the queue forever.  Reject instead — the
    // drain-everything guarantee covers items accepted before ~MpscChannel.
    if (stop_) {
      ++stats_.dropped;
      CountDropped();
      return false;
    }
    if (queue_.size() >= options_.capacity) {
      if (options_.overflow == MpscOverflowPolicy::kDropNewest) {
        ++stats_.dropped;
        CountDropped();
        return false;
      }
      ++stats_.blocked_enqueues;
      if (m_blocked_ != nullptr) {
        m_blocked_->Add();
      }
      space_cv_.wait(lock, [this] { return queue_.size() < options_.capacity || stop_; });
      if (stop_) {
        ++stats_.dropped;
        CountDropped();
        return false;
      }
    }
    item.seq = next_seq_++;
    queue_.push_back(std::move(item));
    ++stats_.submitted;
    if (m_submitted_ != nullptr) {
      m_submitted_->Add();
      m_depth_->Set(int64_t(queue_.size()));
    }
    work_cv_.notify_one();
    return true;
  }

  // Blocks until every item accepted so far has been consumed.  No-op
  // from inside this channel's drain (see ReentrancyGuard).
  void Flush() {
    if (mpsc_internal::InsideChannel(this)) {
      return;  // waiting would deadlock the drain
    }
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t target = stats_.submitted;
    flush_cv_.wait(lock, [this, target] { return stats_.processed >= target; });
  }

  // Swaps the queue bound / batch size / overflow policy at runtime.
  // Queued items and cumulative stats carry over; kBlock producers
  // waiting on a full queue re-evaluate against the new capacity.
  void Reconfigure(const MpscChannelOptions& options) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      options_ = options;
    }
    space_cv_.notify_all();
    work_cv_.notify_all();
  }

  MpscChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  MpscChannelOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }

 private:
  void DrainLoop() {
    ReentrancyGuard inside(*this);
    std::vector<T> batch;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.clear();
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, take);
      if (m_batches_ != nullptr) {
        m_batches_->Add();
        m_processed_->Add(take);
        m_depth_->Set(int64_t(queue_.size()));
      }
      lock.unlock();
      space_cv_.notify_all();

      consumer_(batch);

      lock.lock();
      stats_.processed += take;
      flush_cv_.notify_all();
    }
  }

  void CountDropped() {
    if (m_dropped_ != nullptr) {
      m_dropped_->Add();
    }
  }

  mutable std::mutex mu_;             // queue + options + counters
  std::condition_variable work_cv_;   // queue non-empty / shutdown
  std::condition_variable space_cv_;  // queue has room (kBlock producers)
  std::condition_variable flush_cv_;  // progress for Flush() waiters
  MpscChannelOptions options_;        // mutable via Reconfigure
  std::deque<T> queue_;
  bool stop_ = false;
  uint64_t next_seq_ = 0;
  MpscChannelStats stats_;

  // Registry mirrors (all null when options_.metric_prefix is empty;
  // m_submitted_ doubles as the "mirroring on" flag for the push side).
  Counter* m_submitted_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_blocked_ = nullptr;
  Counter* m_processed_ = nullptr;
  Counter* m_batches_ = nullptr;
  Gauge* m_depth_ = nullptr;

  const Consumer consumer_;
  std::thread drain_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_MPSC_CHANNEL_H_
