#include "src/common/flow_delta.h"

#include <algorithm>

namespace pathdump {

namespace {

// Framing constants, matching src/edge/query.cc: 16-byte message header;
// 13-byte packed 5-tuple + 8-byte count per item.
constexpr size_t kDeltaHeader = 16;
constexpr size_t kPerFlowItem = 21;

}  // namespace

size_t FlowBytesDelta::SerializedSize() const {
  return kDeltaHeader + items.size() * kPerFlowItem;
}

FlowBytesDelta FlowBytesDelta::FromShardMaps(std::vector<FlowBytesMap>& shard_maps) {
  FlowBytesDelta out;
  size_t total = 0;
  for (const FlowBytesMap& m : shard_maps) {
    total += m.size();
  }
  out.items.reserve(total);
  for (FlowBytesMap& m : shard_maps) {
    for (const auto& [flow, bytes] : m) {
      out.items.emplace_back(flow, bytes);
    }
    m.clear();
  }
  // Shard maps are key-disjoint (a flow hashes to exactly one shard), so
  // concatenation loses nothing; the sort canonicalizes.
  std::sort(out.items.begin(), out.items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void FlowBytesDelta::ApplyTo(FlowBytesMap& acc) const {
  for (const auto& [flow, bytes] : items) {
    acc[flow] += bytes;
  }
}

void FlowBytesDelta::Merge(const FlowBytesDelta& in) {
  std::vector<std::pair<FiveTuple, uint64_t>> merged;
  merged.reserve(items.size() + in.items.size());
  size_t i = 0;
  size_t j = 0;
  while (i < items.size() && j < in.items.size()) {
    if (items[i].first == in.items[j].first) {
      merged.emplace_back(items[i].first, items[i].second + in.items[j].second);
      ++i;
      ++j;
    } else if (items[i].first < in.items[j].first) {
      merged.push_back(items[i++]);
    } else {
      merged.push_back(in.items[j++]);
    }
  }
  merged.insert(merged.end(), items.begin() + std::ptrdiff_t(i), items.end());
  merged.insert(merged.end(), in.items.begin() + std::ptrdiff_t(j), in.items.end());
  items = std::move(merged);
}

}  // namespace pathdump
