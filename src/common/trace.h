// Always-on, bounded ring-buffer span tracer for the epoch pipeline.
//
// Every stage of the standing-query path — epoch tick, TakeDelta, wire
// encode, ring push, reactor pop, fold, materialize — plus poll-query
// execute phases, the alarm pipeline, and (sampled) TIB inserts records
// a TraceSpan carrying the correlation keys (sub, host, epoch).  Spans
// land in a fixed-capacity ring that overwrites the oldest entry, so
// tracing is always on, memory is bounded, and the newest window of
// activity is always exportable — ask for a trace AFTER something odd
// happened, not before.
//
//   TraceScope span("fold", {sub, host, epoch});   // RAII: times itself
//   ...
//   Tracer::Global().WriteChromeTrace(&json);      // chrome://tracing
//
// Reading a trace of one epoch: filter by epoch in the args; the span
// chain for one (sub, host, epoch) runs tick -> take_delta -> wire.encode
// -> ring.push -> reactor.pop -> fold, with materialize at the boundary.
//
// Cost: one steady_clock read at scope entry and one read + short
// critical section (ring slot write under a mutex) at exit.  Disabled
// (Tracer::SetEnabled(false)): one relaxed load per scope.  High-
// frequency call sites (TIB insert) sample — see kTraceSampleMask in
// tib.cc — so the tracer never sits on a per-record hot path unsampled.
//
// The ring is process-local: agent_worker processes own their spans and
// can dump them via PATHDUMP_TRACE_OUT; the controller's ring covers
// everything in-process including the reactor's side of the shm path.

#ifndef PATHDUMP_SRC_COMMON_TRACE_H_
#define PATHDUMP_SRC_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pathdump {

// Correlation keys stitching one delta's journey across stages (0 = not
// applicable for that key).
struct TraceKeys {
  uint64_t sub = 0;    // subscription id
  uint32_t host = 0;   // agent host id
  uint64_t epoch = 0;  // per-(sub, host) epoch number
};

struct TraceSpan {
  const char* name = "";  // static string (string literals only)
  uint64_t seq = 0;       // global record order (assigned by the ring)
  uint64_t start_us = 0;  // microseconds since tracer epoch (steady clock)
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // dense per-thread index (metrics_internal::ThreadIndex)
  TraceKeys keys;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 15;  // spans retained

  static Tracer& Global();

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since this tracer was constructed (steady clock) — the
  // time base of every span.
  uint64_t NowUs() const;

  // Records one finished span; assigns its seq.  Oldest span is
  // overwritten once the ring is full.
  void Record(const char* name, uint64_t start_us, uint64_t dur_us, const TraceKeys& keys);

  // The retained spans, oldest first (record order).  At most capacity()
  // entries — overflow keeps the newest.
  std::vector<TraceSpan> Snapshot() const;

  // Chrome-trace (chrome://tracing / Perfetto) JSON: one complete "X"
  // event per span, correlation keys in args.  Appends to *out.
  void WriteChromeTrace(std::string* out) const;
  // Convenience: dump straight to a file; false on open/write failure.
  bool WriteChromeTraceFile(const std::string& path) const;

  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Swaps the ring bound (drops retained spans).  Test convenience.
  void SetCapacity(size_t capacity);
  size_t capacity() const;
  // Drops retained spans (capacity and enablement unchanged).
  void Clear();
  // Spans recorded since construction (not capped by the ring bound).
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }

 private:
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> recorded_{0};

  mutable std::mutex mu_;        // ring slots + next_
  std::vector<TraceSpan> ring_;  // capacity slots, wrapped by next_
  uint64_t next_ = 0;            // total spans ever written to the ring
};

// RAII span: stamps the start on construction, records on destruction.
// Keys may be filled in after construction (set_keys) once they are
// known — e.g. a TakeDelta scope learns the epoch only at the end.
class TraceScope {
 public:
  explicit TraceScope(const char* name, TraceKeys keys = {})
      : name_(name), keys_(keys), armed_(Tracer::Global().enabled()) {
    if (armed_) {
      start_us_ = Tracer::Global().NowUs();
    }
  }
  ~TraceScope() {
    if (armed_) {
      Tracer& t = Tracer::Global();
      t.Record(name_, start_us_, t.NowUs() - start_us_, keys_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_keys(const TraceKeys& keys) { keys_ = keys; }

 private:
  const char* name_;
  TraceKeys keys_;
  const bool armed_;  // enablement sampled once, at entry
  uint64_t start_us_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_COMMON_TRACE_H_
