#include "src/common/types.h"

#include <cstdio>

namespace pathdump {

std::string IpToString(IpAddr ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

std::string FlowToString(const FiveTuple& t) {
  std::string s = IpToString(t.src_ip);
  s += ':';
  s += std::to_string(t.src_port);
  s += '>';
  s += IpToString(t.dst_ip);
  s += ':';
  s += std::to_string(t.dst_port);
  s += '/';
  s += std::to_string(t.protocol);
  return s;
}

std::string PathToString(const Path& p) {
  std::string s;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) {
      s += "->";
    }
    s += 'S';
    s += std::to_string(p[i]);
  }
  return s;
}

}  // namespace pathdump
