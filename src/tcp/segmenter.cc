#include "src/tcp/segmenter.h"

#include <algorithm>

namespace pathdump {

std::vector<Packet> SegmentFlow(const FiveTuple& flow, HostId src, HostId dst, uint64_t bytes,
                                uint32_t mss) {
  std::vector<Packet> out;
  uint64_t remaining = std::max<uint64_t>(bytes, 1);
  uint32_t seq = 0;
  while (remaining > 0) {
    uint32_t sz = uint32_t(std::min<uint64_t>(remaining, mss));
    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    p.seq = seq++;
    p.size_bytes = std::max(sz, kMinPacketBytes);
    p.syn = (seq == 1);
    remaining -= sz;
    p.fin = (remaining == 0);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace pathdump
