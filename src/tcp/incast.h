// TCP incast throughput-collapse model (§4.6, Chen et al. [12]).
//
// Many senders answer a synchronized request (partition/aggregate) through
// one ToR output port.  Because responses start in lockstep, their windows
// collide at the shallow switch buffer: beyond a sender-count threshold,
// most flows lose whole windows simultaneously, stall in RTO together, and
// aggregate goodput collapses far below the link capacity.  Unlike
// outcast, the victims are symmetric — no per-port asymmetry — which is
// exactly the signature the diagnosis application distinguishes.

#ifndef PATHDUMP_SRC_TCP_INCAST_H_
#define PATHDUMP_SRC_TCP_INCAST_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/tcp/outcast.h"  // RetxEvent

namespace pathdump {

struct IncastConfig {
  int num_senders = 8;
  // Synchronized-read epochs: per request, every sender must deliver
  // block_pkts packets and the application waits for ALL of them before
  // issuing the next request — the barrier that turns one straggler's RTO
  // into idle link time for everyone ([12]'s SRU model).
  int epochs = 40;
  int block_pkts = 32;             // per-sender block per request (~46 KB)
  double rtt_seconds = 0.002;
  int queue_capacity_pkts = 64;    // shallow commodity ToR buffer
  int drain_per_round = 96;        // bottleneck service per RTT
  uint32_t mss_bytes = 1460;
  int initial_cwnd = 2;
  int max_cwnd = 64;
  // RTO_min >> RTT is the incast killer: 200 ms vs a 2 ms RTT parks a
  // flow for ~100 rounds after one whole-window loss ([12]).
  int rto_rounds = 100;
  uint64_t seed = 1;
};

struct IncastFlowStats {
  int flow_index = 0;
  uint64_t delivered_pkts = 0;
  uint64_t retransmissions = 0;
  int timeouts = 0;
  double throughput_mbps = 0;
};

struct IncastResult {
  std::vector<IncastFlowStats> flows;
  double aggregate_goodput_mbps = 0;
  double link_capacity_mbps = 0;   // drain rate expressed as bandwidth
  double duration_seconds = 0;     // wall time all epochs took
  std::vector<RetxEvent> retx_events;
};

class IncastSimulator {
 public:
  explicit IncastSimulator(IncastConfig config);

  IncastResult Run();

 private:
  IncastConfig config_;
  Rng rng_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TCP_INCAST_H_
