// Active TCP performance monitor (§3.2, "Active monitoring module").
//
// The paper uses perf-tools' tcpretrans to watch per-flow retransmissions
// at each server and raises an alert to the controller when a flow exceeds
// a configured number of *consecutive* retransmissions.  This class is the
// equivalent instrumentation point: the simulated TCP senders report
// (re)transmissions and ACK progress into it, and the EdgeAgent's
// getPoorTCPFlows(threshold) host API reads from it.

#ifndef PATHDUMP_SRC_TCP_RETX_MONITOR_H_
#define PATHDUMP_SRC_TCP_RETX_MONITOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

class RetxMonitor {
 public:
  // Records a retransmission for `flow` observed at `now`.
  void OnRetransmission(const FiveTuple& flow, SimTime now);
  // Records forward ACK progress, which breaks a consecutive-retx streak.
  void OnProgress(const FiveTuple& flow);

  // Flows whose current consecutive retransmission count >= threshold
  // (the getPoorTCPFlows host API, Table 1).
  std::vector<FiveTuple> PoorTcpFlows(int threshold) const;

  int ConsecutiveRetx(const FiveTuple& flow) const;
  uint64_t TotalRetx(const FiveTuple& flow) const;
  SimTime LastRetxAt(const FiveTuple& flow) const;

  // Drops all state for a finished flow.
  void Forget(const FiveTuple& flow);
  size_t TrackedFlows() const { return state_.size(); }

 private:
  struct FlowState {
    int consecutive = 0;
    uint64_t total = 0;
    SimTime last_at = 0;
  };
  std::unordered_map<FiveTuple, FlowState, FiveTupleHash> state_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TCP_RETX_MONITOR_H_
