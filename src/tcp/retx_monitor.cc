#include "src/tcp/retx_monitor.h"

namespace pathdump {

void RetxMonitor::OnRetransmission(const FiveTuple& flow, SimTime now) {
  FlowState& st = state_[flow];
  st.consecutive += 1;
  st.total += 1;
  st.last_at = now;
}

void RetxMonitor::OnProgress(const FiveTuple& flow) {
  auto it = state_.find(flow);
  if (it != state_.end()) {
    it->second.consecutive = 0;
  }
}

std::vector<FiveTuple> RetxMonitor::PoorTcpFlows(int threshold) const {
  std::vector<FiveTuple> out;
  for (const auto& [flow, st] : state_) {
    if (st.consecutive >= threshold) {
      out.push_back(flow);
    }
  }
  return out;
}

int RetxMonitor::ConsecutiveRetx(const FiveTuple& flow) const {
  auto it = state_.find(flow);
  return it == state_.end() ? 0 : it->second.consecutive;
}

uint64_t RetxMonitor::TotalRetx(const FiveTuple& flow) const {
  auto it = state_.find(flow);
  return it == state_.end() ? 0 : it->second.total;
}

SimTime RetxMonitor::LastRetxAt(const FiveTuple& flow) const {
  auto it = state_.find(flow);
  return it == state_.end() ? 0 : it->second.last_at;
}

void RetxMonitor::Forget(const FiveTuple& flow) { state_.erase(flow); }

}  // namespace pathdump
