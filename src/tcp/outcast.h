// TCP outcast (port blackout) queue model (§4.6, Prakash et al. [32]).
//
// The outcast unfairness arises at a switch where many flows arrive on one
// (or few) input port(s) and few flows on another, all competing for the
// same drop-tail output queue.  Packet trains from the many-flow ports
// occupy the queue in interleaved fashion; the lone flow's window arrives
// as one contiguous burst, so when the queue is (nearly) full the burst
// loses *consecutive* packets — often the entire window — forcing RTO
// timeouts, while the many flows lose scattered single packets recovered
// by fast retransmit.  The flow closest to the receiver ends up with the
// worst throughput.
//
// This module simulates that mechanism round-by-round (one round = one
// RTT) with AIMD windows, timeouts, and a slot-level drop-tail queue; the
// per-flow delivered bytes and retransmissions feed the regular PathDump
// pipeline (TIB records + poor-TCP alarms) for the Fig. 10 diagnosis.

#ifndef PATHDUMP_SRC_TCP_OUTCAST_H_
#define PATHDUMP_SRC_TCP_OUTCAST_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace pathdump {

struct OutcastConfig {
  // flows_per_port[i] = number of flows arriving on input port i.  The
  // paper's scenario is {1, 7, 7}: f1 alone on the host-facing port, 14
  // remote flows over the ToR's two uplinks.
  std::vector<int> flows_per_port = {1, 7, 7};
  int rounds = 2500;                 // simulated RTT rounds
  double rtt_seconds = 0.004;        // one round
  int queue_capacity_pkts = 48;      // output queue depth
  int drain_per_round = 100;         // packets serviced per round
  uint32_t mss_bytes = 1460;
  int initial_cwnd = 2;
  int max_cwnd = 48;
  int rto_rounds = 5;                // timeout penalty in rounds
  uint64_t seed = 42;
};

struct OutcastFlowStats {
  int flow_index = 0;   // 0-based: flow 0 is "f1"
  int input_port = 0;
  uint64_t delivered_pkts = 0;
  uint64_t retransmissions = 0;
  int timeouts = 0;
  double throughput_mbps = 0.0;
};

// Per-flow retransmission event, in time order — feeds the RetxMonitor so
// the PathDump active monitor raises POOR_PERF alarms like the real system.
struct RetxEvent {
  int flow_index;
  SimTime at;
  bool window_lost;  // entire burst dropped (timeout)
};

class OutcastSimulator {
 public:
  explicit OutcastSimulator(OutcastConfig config);

  // Runs the full simulation; returns per-flow stats (index order).
  std::vector<OutcastFlowStats> Run();

  // Retransmission timeline of the last Run().
  const std::vector<RetxEvent>& retx_events() const { return retx_events_; }

 private:
  OutcastConfig config_;
  Rng rng_;
  std::vector<RetxEvent> retx_events_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TCP_OUTCAST_H_
