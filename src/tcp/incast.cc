#include "src/tcp/incast.h"

#include <algorithm>

namespace pathdump {

IncastSimulator::IncastSimulator(IncastConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

IncastResult IncastSimulator::Run() {
  struct FlowState {
    int cwnd;
    int rto_until = -1;   // global round index
    int remaining = 0;    // packets left in the current block
    uint64_t delivered = 0;
    uint64_t retx = 0;
    int timeouts = 0;
  };
  std::vector<FlowState> flows(size_t(config_.num_senders));
  for (FlowState& f : flows) {
    f.cwnd = config_.initial_cwnd;
  }

  IncastResult result;
  double q = 0.0;
  double last_abs_t = 0.0;
  int round = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Barrier: a new synchronized request for block_pkts from everyone.
    for (FlowState& f : flows) {
      f.remaining = config_.block_pkts;
    }
    bool epoch_done = false;
    // Hard stop per epoch so a pathological cascade cannot hang the sim.
    int deadline = round + 64 * config_.rto_rounds;
    while (!epoch_done && round < deadline) {
      SimTime now = SimTime(double(round) * config_.rtt_seconds * double(kNsPerSec));

      // Active flows burst back-to-back starting at nearly the same
      // instant (the synchronized response), small per-flow skew only.
      struct Arrival {
        int flow;
        double t;
      };
      std::vector<Arrival> arrivals;
      for (int fi = 0; fi < config_.num_senders; ++fi) {
        FlowState& f = flows[size_t(fi)];
        if (f.remaining <= 0 || f.rto_until > round) {
          continue;
        }
        double jitter = rng_.Uniform01() * 0.05;
        int burst = std::min(f.cwnd, f.remaining);
        for (int i = 0; i < burst; ++i) {
          arrivals.push_back(Arrival{fi, jitter + double(i) * 1e-4});
        }
      }
      std::stable_sort(arrivals.begin(), arrivals.end(),
                       [](const Arrival& a, const Arrival& b) { return a.t < b.t; });

      std::vector<int> sent(flows.size(), 0);
      std::vector<int> lost(flows.size(), 0);
      for (const Arrival& a : arrivals) {
        double abs_t = double(round) + a.t;
        q = std::max(0.0, q - (abs_t - last_abs_t) * double(config_.drain_per_round));
        last_abs_t = abs_t;
        ++sent[size_t(a.flow)];
        if (q + 1.0 > double(config_.queue_capacity_pkts)) {
          ++lost[size_t(a.flow)];
        } else {
          q += 1.0;
          FlowState& f = flows[size_t(a.flow)];
          ++f.delivered;
          --f.remaining;
        }
      }

      for (int fi = 0; fi < config_.num_senders; ++fi) {
        FlowState& f = flows[size_t(fi)];
        if (sent[size_t(fi)] == 0) {
          continue;
        }
        int l = lost[size_t(fi)];
        if (l == 0) {
          f.cwnd = std::min(f.cwnd + 1, config_.max_cwnd);
          continue;
        }
        f.retx += uint64_t(l);
        bool window_lost = l >= sent[size_t(fi)];
        result.retx_events.push_back(RetxEvent{fi, now, window_lost});
        if (window_lost) {
          f.timeouts += 1;
          f.cwnd = 1;
          f.rto_until = round + config_.rto_rounds;
        } else {
          f.cwnd = std::max(1, f.cwnd / 2);
        }
      }

      ++round;
      epoch_done = true;
      for (const FlowState& f : flows) {
        if (f.remaining > 0) {
          epoch_done = false;
        }
      }
    }
  }

  double duration_s = double(std::max(round, 1)) * config_.rtt_seconds;
  result.duration_seconds = duration_s;
  double total_pkts = 0;
  for (int fi = 0; fi < config_.num_senders; ++fi) {
    const FlowState& f = flows[size_t(fi)];
    IncastFlowStats st;
    st.flow_index = fi;
    st.delivered_pkts = f.delivered;
    st.retransmissions = f.retx;
    st.timeouts = f.timeouts;
    st.throughput_mbps = double(f.delivered) * config_.mss_bytes * 8.0 / duration_s / 1e6;
    total_pkts += double(f.delivered);
    result.flows.push_back(st);
  }
  result.aggregate_goodput_mbps = total_pkts * config_.mss_bytes * 8.0 / duration_s / 1e6;
  result.link_capacity_mbps = double(config_.drain_per_round) * config_.mss_bytes * 8.0 /
                              config_.rtt_seconds / 1e6;
  return result;
}

}  // namespace pathdump
