// Splits an application flow into MSS-sized packets for the per-packet
// simulator, with SYN on the first and FIN on the last segment (the FIN is
// what triggers immediate trajectory-memory eviction at the edge, §3.2).

#ifndef PATHDUMP_SRC_TCP_SEGMENTER_H_
#define PATHDUMP_SRC_TCP_SEGMENTER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/packet/packet.h"

namespace pathdump {

// Builds the packet train for a flow of `bytes` bytes.
std::vector<Packet> SegmentFlow(const FiveTuple& flow, HostId src, HostId dst, uint64_t bytes,
                                uint32_t mss = kDefaultMss);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TCP_SEGMENTER_H_
