#include "src/tcp/outcast.h"

#include <algorithm>
#include <numeric>

namespace pathdump {

namespace {

struct FlowState {
  int index = 0;
  int port = 0;
  int cwnd = 0;
  int rto_until = -1;  // round index until which the flow is silent
  uint64_t delivered = 0;
  uint64_t retx = 0;
  int timeouts = 0;
};

}  // namespace

OutcastSimulator::OutcastSimulator(OutcastConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::vector<OutcastFlowStats> OutcastSimulator::Run() {
  retx_events_.clear();

  std::vector<FlowState> flows;
  int port = 0;
  for (int per_port : config_.flows_per_port) {
    for (int i = 0; i < per_port; ++i) {
      FlowState f;
      f.index = int(flows.size());
      f.port = port;
      f.cwnd = config_.initial_cwnd;
      flows.push_back(f);
    }
    ++port;
  }
  const int num_ports = int(config_.flows_per_port.size());

  // Standing drop-tail queue: occupancy persists across rounds.  With the
  // aggregate ports offering more than the drain rate, the queue hovers
  // near capacity — the precondition for port blackout.
  double q = 0.0;
  double last_abs_t = 0.0;

  for (int round = 0; round < config_.rounds; ++round) {
    SimTime now = SimTime(double(round) * config_.rtt_seconds * double(kNsPerSec));

    // Build the arrival sequence for this round.  Flows sharing an input
    // port arrive as an interleaved train (their upstream paths already
    // mixed them); each port's train is then placed in the round, and the
    // single-flow port's burst stays contiguous — the port-blackout setup.
    struct Arrival {
      int flow;
      double t;  // arrival offset within the round, [0,1)
    };
    std::vector<Arrival> arrivals;
    for (int pt = 0; pt < num_ports; ++pt) {
      // Collect this port's packets round-robin across its flows.
      std::vector<int> train;
      bool any = true;
      int offset = 0;
      while (any) {
        any = false;
        for (const FlowState& f : flows) {
          if (f.port != pt || f.rto_until > round) {
            continue;
          }
          if (offset < f.cwnd) {
            train.push_back(f.index);
            any = true;
          }
        }
        ++offset;
      }
      if (train.empty()) {
        continue;
      }
      // Multi-flow ports deliver an interleaved train paced across the
      // whole round (their upstream hops already spread them), keeping the
      // output queue occupied.  A single-flow port's window arrives as one
      // back-to-back burst at a random instant — when it lands on a full
      // queue, its packets are dropped *consecutively*: the port blackout.
      bool contiguous = config_.flows_per_port[size_t(pt)] <= 1;
      double start = contiguous ? rng_.Uniform01() * 0.9 : 0.0;
      double spacing = contiguous ? 1e-4 : 1.0 / double(train.size());
      for (size_t i = 0; i < train.size(); ++i) {
        arrivals.push_back(Arrival{train[i], start + double(i) * spacing});
      }
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.t < b.t; });

    // Drop-tail queue draining continuously at drain_per_round per round.
    std::vector<int> sent(flows.size(), 0);
    std::vector<int> lost(flows.size(), 0);
    for (const Arrival& a : arrivals) {
      double abs_t = double(round) + a.t;
      q = std::max(0.0, q - (abs_t - last_abs_t) * double(config_.drain_per_round));
      last_abs_t = abs_t;
      ++sent[size_t(a.flow)];
      if (q + 1.0 > double(config_.queue_capacity_pkts)) {
        ++lost[size_t(a.flow)];
      } else {
        q += 1.0;
        ++flows[size_t(a.flow)].delivered;
      }
    }

    // TCP reaction.
    for (FlowState& f : flows) {
      if (f.rto_until > round || sent[size_t(f.index)] == 0) {
        continue;
      }
      int s = sent[size_t(f.index)];
      int l = lost[size_t(f.index)];
      if (l == 0) {
        f.cwnd = std::min(f.cwnd + 1, config_.max_cwnd);
        continue;
      }
      f.retx += uint64_t(l);
      bool window_lost = l >= s;  // every packet of the burst died
      retx_events_.push_back(RetxEvent{f.index, now, window_lost});
      if (window_lost) {
        // No dupACKs possible: retransmission timeout.
        f.timeouts += 1;
        f.cwnd = 1;
        f.rto_until = round + config_.rto_rounds;
      } else {
        // Fast retransmit / recovery.
        f.cwnd = std::max(1, f.cwnd / 2);
      }
    }
  }

  double duration_s = double(config_.rounds) * config_.rtt_seconds;
  std::vector<OutcastFlowStats> out;
  out.reserve(flows.size());
  for (const FlowState& f : flows) {
    OutcastFlowStats st;
    st.flow_index = f.index;
    st.input_port = f.port;
    st.delivered_pkts = f.delivered;
    st.retransmissions = f.retx;
    st.timeouts = f.timeouts;
    st.throughput_mbps =
        double(f.delivered) * double(config_.mss_bytes) * 8.0 / duration_s / 1e6;
    out.push_back(st);
  }
  return out;
}

}  // namespace pathdump
