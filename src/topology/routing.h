// Routing: per-switch next-hop selection and equal-cost path enumeration.
//
// The data plane in PathDump is deliberately dumb: static forwarding with
// ECMP or per-packet spraying, plus deterministic local failover when a link
// is down (the paper's Fig. 4 scenario: "we implement a simple failover
// mechanism in switches with a few flow rules").  The failover policy is
// deterministic *by design* — the paper stores forwarding-policy
// configuration at the end hosts (§2.2) so the trajectory decoder can expand
// the unlabelled leg after a bounce.
//
// Failover rules (fat-tree):
//  * ToR, up direction: pick the next alive uplink by ECMP index.
//  * Agg in dst pod, down-link to the destination ToR dead: bounce the
//    packet down to ToR (dst_tor_index + 1) % half (first alive), which
//    sends it back up — a 2-hop detour.
//  * Agg in src pod with all uplinks dead: bounce down to ToR
//    (ingress_tor_index + 1) % half, which picks a different aggregate —
//    a 2-hop detour.

#ifndef PATHDUMP_SRC_TOPOLOGY_ROUTING_H_
#define PATHDUMP_SRC_TOPOLOGY_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/topology/topology.h"

namespace pathdump {

// How a switch picks among equal-cost uplinks.
enum class LoadBalanceMode {
  kEcmpHash,     // per-flow hash (stable path per flow)
  kPacketSpray,  // per-packet random (Dixit et al. [15])
};

// Mutable view of which physical links are administratively down.
class LinkStateSet {
 public:
  // Marks the undirected link {a, b} down / up.
  void SetDown(NodeId a, NodeId b);
  void SetUp(NodeId a, NodeId b);
  bool IsDown(NodeId a, NodeId b) const;
  bool empty() const { return down_.empty(); }
  void Clear() { down_.clear(); }

 private:
  static uint64_t Key(NodeId a, NodeId b) {
    if (a > b) {
      std::swap(a, b);
    }
    return (uint64_t(a) << 32) | b;
  }
  std::unordered_set<uint64_t> down_;
};

// Stateless-per-packet router over a static topology + link state.
class Router {
 public:
  explicit Router(const Topology* topo);

  LinkStateSet& link_state() { return links_; }
  const LinkStateSet& link_state() const { return links_; }

  // Installs an explicit preference list of next hops for (switch, dst
  // host); the first alive entry wins.  Used by hand-built scenarios
  // (Fig. 4 failover, Fig. 9 routing loops) to pin exact behaviour.
  void SetStaticNextHops(SwitchId sw, HostId dst, std::vector<NodeId> prefs);

  // Next hop for a packet at `sw` that arrived from `from` (kInvalidNode for
  // locally originated) heading to host `dst`.  `entropy` disambiguates
  // equal-cost choices: for kEcmpHash pass a per-flow hash, for kPacketSpray
  // pass a fresh random number per packet.  Returns kInvalidNode when the
  // switch has no viable route (routing blackhole).
  NodeId NextHop(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const;

  // All equal-cost shortest paths (switch sequences, failures ignored)
  // between two distinct hosts.  These are the paths ECMP/spraying can use.
  std::vector<Path> EcmpPaths(HostId src, HostId dst) const;

  // The exact switch path a packet with this entropy takes hop by hop —
  // including deterministic failover detours around down links.  Empty on
  // routing failure.  This is the path the per-packet simulator realizes;
  // the flow-level engine uses it so both engines agree per flow.
  Path WalkPath(HostId src, HostId dst, uint64_t entropy, int max_hops = 16) const;

  // Number of switches on a shortest path between the hosts.
  int ShortestPathSwitchCount(HostId src, HostId dst) const;

 private:
  NodeId NextHopFatTree(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const;
  NodeId NextHopVl2(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const;
  NodeId NextHopGeneric(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const;

  // Picks candidates[HashCombine(entropy, salt) % n] after filtering dead
  // links from `sw`; returns kInvalidNode if none alive.
  NodeId PickAlive(SwitchId sw, const std::vector<NodeId>& candidates, uint64_t entropy) const;

  // Generic-topology shortest-path next hops toward each host (lazy BFS).
  const std::vector<std::vector<NodeId>>& GenericNextHops(HostId dst) const;

  const Topology* topo_;
  LinkStateSet links_;
  std::unordered_map<uint64_t, std::vector<NodeId>> static_next_hops_;
  // dst host -> per-node list of shortest-path next hops (generic only).
  mutable std::unordered_map<HostId, std::vector<std::vector<NodeId>>> generic_table_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TOPOLOGY_ROUTING_H_
