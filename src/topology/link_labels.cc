#include "src/topology/link_labels.h"

#include <cassert>

#include "src/topology/fat_tree.h"

namespace pathdump {

LinkLabelMap::LinkLabelMap(const Topology* topo) : topo_(topo) {
  if (topo_->kind() == TopologyKind::kGeneric) {
    LinkLabel next = 1;
    for (const LinkId& l : topo_->AllUndirectedLinks()) {
      if (topo_->IsHost(l.src) || topo_->IsHost(l.dst)) {
        continue;
      }
      assert(next <= kMaxVlanLabel);
      generic_labels_[Key(l.src, l.dst)] = next;
      generic_reverse_[next] = {l.src, l.dst};
      ++next;
    }
  } else if (topo_->kind() == TopologyKind::kVl2) {
    [[maybe_unused]] const Vl2Meta& m = *topo_->vl2();
    assert(uint64_t(m.num_aggs) * uint64_t(m.num_intermediates) <= kMaxVlanLabel);
  } else {
    [[maybe_unused]] const FatTreeMeta& m = *topo_->fat_tree();
    [[maybe_unused]] int half = m.k / 2;
    assert(2 * half * half <= int(kMaxVlanLabel) + 1);
  }
}

LinkLabel LinkLabelMap::LabelOf(NodeId a, NodeId b) const {
  if (topo_->IsHost(a) || topo_->IsHost(b)) {
    return kInvalidLabel;
  }
  switch (topo_->kind()) {
    case TopologyKind::kGeneric: {
      auto it = generic_labels_.find(Key(a, b));
      return it == generic_labels_.end() ? kInvalidLabel : it->second;
    }
    case TopologyKind::kFatTree: {
      const FatTreeMeta& m = *topo_->fat_tree();
      int half = m.k / 2;
      // Order so that `lo` is the lower-layer endpoint.
      NodeId lo = a;
      NodeId hi = b;
      if (topo_->LayerOf(lo) > topo_->LayerOf(hi)) {
        std::swap(lo, hi);
      }
      NodeRole rl = topo_->RoleOf(lo);
      NodeRole rh = topo_->RoleOf(hi);
      if (rl == NodeRole::kAgg && rh == NodeRole::kCore) {
        return LinkLabel(topo_->node(hi).index);  // label == core index
      }
      if (rl == NodeRole::kTor && rh == NodeRole::kAgg) {
        int t = topo_->node(lo).index;
        int ag = topo_->node(hi).index;
        return LinkLabel(half * half + t * half + ag);
      }
      return kInvalidLabel;
    }
    case TopologyKind::kVl2: {
      const Vl2Meta& m = *topo_->vl2();
      NodeId lo = a;
      NodeId hi = b;
      if (topo_->LayerOf(lo) > topo_->LayerOf(hi)) {
        std::swap(lo, hi);
      }
      if (topo_->RoleOf(lo) == NodeRole::kAgg && topo_->RoleOf(hi) == NodeRole::kIntermediate) {
        return LinkLabel(topo_->node(lo).index * m.num_intermediates + topo_->node(hi).index);
      }
      // ToR-Agg links ride in DSCP, not VLAN labels.
      return kInvalidLabel;
    }
  }
  return kInvalidLabel;
}

std::optional<FatTreeLabel> LinkLabelMap::ParseFatTree(LinkLabel label) const {
  if (topo_->kind() != TopologyKind::kFatTree || label == kInvalidLabel) {
    return std::nullopt;
  }
  const FatTreeMeta& m = *topo_->fat_tree();
  int half = m.k / 2;
  FatTreeLabel out;
  if (int(label) < half * half) {
    out.type = FatTreeLabelType::kAggCore;
    out.core_index = int(label);
    out.agg_index = out.core_index / half;
    return out;
  }
  if (int(label) < 2 * half * half) {
    int rel = int(label) - half * half;
    out.type = FatTreeLabelType::kTorAgg;
    out.tor_index = rel / half;
    out.agg_index = rel % half;
    return out;
  }
  return std::nullopt;
}

std::optional<std::pair<NodeId, NodeId>> LinkLabelMap::GenericEndpoints(LinkLabel label) const {
  auto it = generic_reverse_.find(label);
  if (it == generic_reverse_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace pathdump
