// Static datacenter topology graph.
//
// PathDump keeps a static view of the physical topology at every edge device
// (§2.2); it is the "ground truth" against which extracted trajectories are
// validated and from which sampled link IDs are expanded into full paths.
//
// A Topology is a bidirectional graph of nodes (hosts and switches) with
// per-node role/pod/layer-index metadata.  Builders for the two structured
// topologies the paper supports (FatTree, VL2) live in fat_tree.h / vl2.h;
// arbitrary small topologies (used by the paper's Fig. 4 and Fig. 9
// scenarios) can be assembled by hand with AddSwitch/AddHost/AddLink.

#ifndef PATHDUMP_SRC_TOPOLOGY_TOPOLOGY_H_
#define PATHDUMP_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Role of a node in the topology.  kIntermediate is VL2's top layer.
enum class NodeRole : uint8_t {
  kHost,
  kTor,
  kAgg,
  kCore,
  kIntermediate,
};

const char* NodeRoleName(NodeRole role);

// Which topology family a Topology instance belongs to.  The CherryPick
// codec keys its sampling rules and label layout off this.
enum class TopologyKind : uint8_t {
  kGeneric,
  kFatTree,
  kVl2,
};

// Per-node record.
struct Node {
  NodeRole role = NodeRole::kHost;
  // Pod number for podded roles (FatTree ToR/Agg; VL2 has pod = 0).
  int pod = -1;
  // Index of the node within (role, pod), e.g. "2nd aggregate in pod 3".
  int index = -1;
  std::string name;
  // Neighbors in port order: neighbors[p] is the node on port p.
  std::vector<NodeId> neighbors;
};

// Structural metadata for FatTree(k).
struct FatTreeMeta {
  int k = 0;                                      // switch port count (even)
  int pods = 0;                                   // == k
  int tors_per_pod = 0;                           // == k/2
  int aggs_per_pod = 0;                           // == k/2
  int hosts_per_tor = 0;                          // == k/2
  int cores = 0;                                  // == (k/2)^2
  std::vector<std::vector<NodeId>> tor;           // tor[pod][i]
  std::vector<std::vector<NodeId>> agg;           // agg[pod][i]
  std::vector<NodeId> core;                       // core[c]; group(c) = c/(k/2)
};

// Structural metadata for VL2(num_tors, num_aggs, num_intermediates).
struct Vl2Meta {
  int num_tors = 0;
  int num_aggs = 0;
  int num_intermediates = 0;
  int hosts_per_tor = 0;
  std::vector<NodeId> tor;
  std::vector<NodeId> agg;
  std::vector<NodeId> intermediate;
};

// Immutable once built; all simulator components share a const reference.
class Topology {
 public:
  // --- Construction (used by builders and hand-written scenarios) ---

  // Adds a switch with the given role; returns its NodeId.
  NodeId AddSwitch(NodeRole role, int pod = -1, int index = -1, std::string name = "");
  // Adds a host attached later via AddLink; returns its NodeId.
  NodeId AddHost(int pod = -1, int index = -1, std::string name = "");
  // Adds a bidirectional link; allocates one port on each endpoint.
  void AddLink(NodeId a, NodeId b);

  void set_kind(TopologyKind kind) { kind_ = kind; }
  void set_fat_tree_meta(FatTreeMeta meta) { fat_tree_ = std::move(meta); }
  void set_vl2_meta(Vl2Meta meta) { vl2_ = std::move(meta); }

  // --- Accessors ---

  TopologyKind kind() const { return kind_; }
  size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  bool IsHost(NodeId id) const { return nodes_[id].role == NodeRole::kHost; }
  bool IsSwitch(NodeId id) const { return !IsHost(id); }
  NodeRole RoleOf(NodeId id) const { return nodes_[id].role; }

  const std::vector<HostId>& hosts() const { return hosts_; }
  const std::vector<SwitchId>& switches() const { return switches_; }

  // Port on `from` that faces `to`, or -1 if not adjacent.
  int PortTo(NodeId from, NodeId to) const;
  bool Adjacent(NodeId a, NodeId b) const { return PortTo(a, b) >= 0; }
  const std::vector<NodeId>& NeighborsOf(NodeId id) const { return nodes_[id].neighbors; }

  // The ToR a host hangs off (hosts have exactly one link).
  SwitchId TorOfHost(HostId h) const { return nodes_[h].neighbors.at(0); }
  // Hosts directly attached to a ToR.
  std::vector<HostId> HostsOfTor(SwitchId tor) const;

  // IP address assignment: host h <-> kHostIpBase | h.
  IpAddr IpOfHost(HostId h) const { return kHostIpBase | h; }
  // Returns kInvalidNode for addresses outside the host range.
  HostId HostOfIp(IpAddr ip) const;

  // Total number of bidirectional links.
  size_t link_count() const { return link_count_; }

  // Returns all directed links (both directions of every physical link).
  std::vector<LinkId> AllDirectedLinks() const;
  // Returns one direction (src < dst) per physical link.
  std::vector<LinkId> AllUndirectedLinks() const;

  // Layer comparison: true if `a` is strictly above `b` in the hierarchy
  // (host < ToR < Agg < Core/Intermediate).  Generic topologies have no
  // defined layers and always return false.
  bool IsAbove(NodeId a, NodeId b) const;
  // Numeric layer: host=0, ToR=1, Agg=2, Core/Intermediate=3.
  int LayerOf(NodeId id) const;

  const std::optional<FatTreeMeta>& fat_tree() const { return fat_tree_; }
  const std::optional<Vl2Meta>& vl2() const { return vl2_; }

  std::string NameOf(NodeId id) const;

 private:
  TopologyKind kind_ = TopologyKind::kGeneric;
  std::vector<Node> nodes_;
  std::vector<HostId> hosts_;
  std::vector<SwitchId> switches_;
  size_t link_count_ = 0;
  std::optional<FatTreeMeta> fat_tree_;
  std::optional<Vl2Meta> vl2_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TOPOLOGY_TOPOLOGY_H_
