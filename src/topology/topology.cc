#include "src/topology/topology.h"

#include <algorithm>

namespace pathdump {

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kHost:
      return "host";
    case NodeRole::kTor:
      return "tor";
    case NodeRole::kAgg:
      return "agg";
    case NodeRole::kCore:
      return "core";
    case NodeRole::kIntermediate:
      return "int";
  }
  return "?";
}

NodeId Topology::AddSwitch(NodeRole role, int pod, int index, std::string name) {
  NodeId id = NodeId(nodes_.size());
  Node n;
  n.role = role;
  n.pod = pod;
  n.index = index;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  switches_.push_back(id);
  return id;
}

NodeId Topology::AddHost(int pod, int index, std::string name) {
  NodeId id = NodeId(nodes_.size());
  Node n;
  n.role = NodeRole::kHost;
  n.pod = pod;
  n.index = index;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  hosts_.push_back(id);
  return id;
}

void Topology::AddLink(NodeId a, NodeId b) {
  nodes_[a].neighbors.push_back(b);
  nodes_[b].neighbors.push_back(a);
  ++link_count_;
}

int Topology::PortTo(NodeId from, NodeId to) const {
  const auto& nbrs = nodes_[from].neighbors;
  auto it = std::find(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end()) {
    return -1;
  }
  return int(it - nbrs.begin());
}

std::vector<HostId> Topology::HostsOfTor(SwitchId tor) const {
  std::vector<HostId> out;
  for (NodeId n : nodes_[tor].neighbors) {
    if (IsHost(n)) {
      out.push_back(n);
    }
  }
  return out;
}

HostId Topology::HostOfIp(IpAddr ip) const {
  if ((ip & 0xFF000000u) != kHostIpBase) {
    return kInvalidNode;
  }
  NodeId id = ip & 0x00FFFFFFu;
  if (id >= nodes_.size() || !IsHost(id)) {
    return kInvalidNode;
  }
  return id;
}

std::vector<LinkId> Topology::AllDirectedLinks() const {
  std::vector<LinkId> out;
  for (NodeId a = 0; a < nodes_.size(); ++a) {
    for (NodeId b : nodes_[a].neighbors) {
      out.push_back(LinkId{a, b});
    }
  }
  return out;
}

std::vector<LinkId> Topology::AllUndirectedLinks() const {
  std::vector<LinkId> out;
  for (NodeId a = 0; a < nodes_.size(); ++a) {
    for (NodeId b : nodes_[a].neighbors) {
      if (a < b) {
        out.push_back(LinkId{a, b});
      }
    }
  }
  return out;
}

int Topology::LayerOf(NodeId id) const {
  switch (nodes_[id].role) {
    case NodeRole::kHost:
      return 0;
    case NodeRole::kTor:
      return 1;
    case NodeRole::kAgg:
      return 2;
    case NodeRole::kCore:
    case NodeRole::kIntermediate:
      return 3;
  }
  return 0;
}

bool Topology::IsAbove(NodeId a, NodeId b) const { return LayerOf(a) > LayerOf(b); }

std::string Topology::NameOf(NodeId id) const {
  const Node& n = nodes_[id];
  if (!n.name.empty()) {
    return n.name;
  }
  std::string s = NodeRoleName(n.role);
  s += std::to_string(id);
  return s;
}

}  // namespace pathdump
