#include "src/topology/routing.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/topology/fat_tree.h"
#include "src/topology/vl2.h"

namespace pathdump {

void LinkStateSet::SetDown(NodeId a, NodeId b) { down_.insert(Key(a, b)); }
void LinkStateSet::SetUp(NodeId a, NodeId b) { down_.erase(Key(a, b)); }
bool LinkStateSet::IsDown(NodeId a, NodeId b) const { return down_.count(Key(a, b)) > 0; }

Router::Router(const Topology* topo) : topo_(topo) {}

void Router::SetStaticNextHops(SwitchId sw, HostId dst, std::vector<NodeId> prefs) {
  static_next_hops_[(uint64_t(sw) << 32) | dst] = std::move(prefs);
}

NodeId Router::PickAlive(SwitchId sw, const std::vector<NodeId>& candidates,
                         uint64_t entropy) const {
  std::vector<NodeId> alive;
  alive.reserve(candidates.size());
  for (NodeId c : candidates) {
    if (!links_.IsDown(sw, c)) {
      alive.push_back(c);
    }
  }
  if (alive.empty()) {
    return kInvalidNode;
  }
  return alive[HashCombine(entropy, sw) % alive.size()];
}

NodeId Router::NextHop(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const {
  auto it = static_next_hops_.find((uint64_t(sw) << 32) | dst);
  if (it != static_next_hops_.end()) {
    for (NodeId pref : it->second) {
      if (!links_.IsDown(sw, pref)) {
        return pref;
      }
    }
    return kInvalidNode;
  }
  switch (topo_->kind()) {
    case TopologyKind::kFatTree:
      return NextHopFatTree(sw, from, dst, entropy);
    case TopologyKind::kVl2:
      return NextHopVl2(sw, from, dst, entropy);
    case TopologyKind::kGeneric:
      return NextHopGeneric(sw, from, dst, entropy);
  }
  return kInvalidNode;
}

NodeId Router::NextHopFatTree(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const {
  const FatTreeMeta& m = *topo_->fat_tree();
  const int half = m.k / 2;
  const SwitchId dst_tor = topo_->TorOfHost(dst);
  const int dst_pod = topo_->node(dst_tor).pod;
  const Node& me = topo_->node(sw);

  switch (me.role) {
    case NodeRole::kTor: {
      if (sw == dst_tor) {
        // Deliver locally if the host link is alive.
        return links_.IsDown(sw, dst) ? kInvalidNode : dst;
      }
      // Upward.  Aggregates of my pod, all candidates under ECMP.
      const std::vector<NodeId>& aggs = m.agg[size_t(me.pod)];
      if (from != kInvalidNode && topo_->RoleOf(from) == NodeRole::kAgg) {
        // Bounce: arrived from above but the destination is not local.
        // Deterministic failover: next agg index after the one we came from.
        int from_idx = topo_->node(from).index;
        for (int step = 1; step <= half; ++step) {
          NodeId cand = aggs[size_t((from_idx + step) % half)];
          if (cand != from && !links_.IsDown(sw, cand)) {
            return cand;
          }
        }
        return kInvalidNode;
      }
      return PickAlive(sw, aggs, entropy);
    }
    case NodeRole::kAgg: {
      if (me.pod == dst_pod) {
        // Down toward the destination ToR.
        if (!links_.IsDown(sw, dst_tor)) {
          return dst_tor;
        }
        // Down-link dead: bounce via the next ToR, which will re-ascend.
        // In a k=4 pod the only other ToR may be the one we came from;
        // bouncing straight back is then legal (it will pick another agg).
        int want = topo_->node(dst_tor).index;
        const std::vector<NodeId>& tors = m.tor[size_t(me.pod)];
        for (int step = 1; step <= half; ++step) {
          NodeId cand = tors[size_t((want + step) % half)];
          if (cand != from && cand != dst_tor && !links_.IsDown(sw, cand)) {
            return cand;
          }
        }
        if (from != kInvalidNode && topo_->RoleOf(from) == NodeRole::kTor &&
            !links_.IsDown(sw, from)) {
          return from;
        }
        return kInvalidNode;
      }
      // Up toward my core group.
      std::vector<NodeId> cores;
      cores.reserve(size_t(half));
      for (int j = 0; j < half; ++j) {
        cores.push_back(m.core[size_t(me.index * half + j)]);
      }
      NodeId up = PickAlive(sw, cores, entropy);
      if (up != kInvalidNode) {
        return up;
      }
      // All uplinks dead: bounce down via another ToR of my pod.
      int from_idx =
          (from != kInvalidNode && topo_->RoleOf(from) == NodeRole::kTor) ? topo_->node(from).index
                                                                          : 0;
      const std::vector<NodeId>& tors = m.tor[size_t(me.pod)];
      for (int step = 1; step <= half; ++step) {
        NodeId cand = tors[size_t((from_idx + step) % half)];
        if (cand != from && !links_.IsDown(sw, cand)) {
          return cand;
        }
      }
      return kInvalidNode;
    }
    case NodeRole::kCore: {
      // Single route down: the agg of my group in the destination pod.
      NodeId agg = m.agg[size_t(dst_pod)][size_t(me.index / half)];
      return links_.IsDown(sw, agg) ? kInvalidNode : agg;
    }
    default:
      return kInvalidNode;
  }
}

NodeId Router::NextHopVl2(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const {
  const Vl2Meta& m = *topo_->vl2();
  const SwitchId dst_tor = topo_->TorOfHost(dst);
  const Node& me = topo_->node(sw);
  (void)from;

  switch (me.role) {
    case NodeRole::kTor: {
      if (sw == dst_tor) {
        return links_.IsDown(sw, dst) ? kInvalidNode : dst;
      }
      auto [a0, a1] = vl2::AggsOfTor(*topo_, sw);
      // If we share an aggregate with the destination ToR, go via it.
      auto [d0, d1] = vl2::AggsOfTor(*topo_, dst_tor);
      std::vector<NodeId> shared;
      for (NodeId mine : {a0, a1}) {
        if (mine == d0 || mine == d1) {
          shared.push_back(mine);
        }
      }
      if (!shared.empty()) {
        NodeId pick = PickAlive(sw, shared, entropy);
        if (pick != kInvalidNode) {
          return pick;
        }
      }
      return PickAlive(sw, {a0, a1}, entropy);
    }
    case NodeRole::kAgg: {
      // Down if the destination ToR is adjacent; else up to an intermediate.
      if (topo_->Adjacent(sw, dst_tor) && !links_.IsDown(sw, dst_tor)) {
        return dst_tor;
      }
      return PickAlive(sw, m.intermediate, entropy);
    }
    case NodeRole::kIntermediate: {
      auto [d0, d1] = vl2::AggsOfTor(*topo_, dst_tor);
      return PickAlive(sw, {d0, d1}, entropy);
    }
    default:
      return kInvalidNode;
  }
}

const std::vector<std::vector<NodeId>>& Router::GenericNextHops(HostId dst) const {
  auto it = generic_table_.find(dst);
  if (it != generic_table_.end()) {
    return it->second;
  }
  // Reverse BFS from dst over the full graph; next hops = neighbors one
  // step closer to dst.
  size_t n = topo_->node_count();
  std::vector<int> dist(n, -1);
  std::deque<NodeId> q;
  dist[dst] = 0;
  q.push_back(dst);
  while (!q.empty()) {
    NodeId cur = q.front();
    q.pop_front();
    for (NodeId nb : topo_->NeighborsOf(cur)) {
      if (dist[nb] < 0) {
        // Do not route *through* hosts.
        if (topo_->IsHost(nb) && nb != dst) {
          dist[nb] = dist[cur] + 1;  // reachable but not expandable
          continue;
        }
        dist[nb] = dist[cur] + 1;
        q.push_back(nb);
      }
    }
  }
  std::vector<std::vector<NodeId>> table(n);
  for (NodeId v = 0; v < n; ++v) {
    if (dist[v] < 0 || topo_->IsHost(v)) {
      continue;
    }
    for (NodeId nb : topo_->NeighborsOf(v)) {
      if (dist[nb] >= 0 && dist[nb] == dist[v] - 1) {
        table[v].push_back(nb);
      }
    }
  }
  auto [ins, unused] = generic_table_.emplace(dst, std::move(table));
  (void)unused;
  return ins->second;
}

NodeId Router::NextHopGeneric(SwitchId sw, NodeId from, HostId dst, uint64_t entropy) const {
  (void)from;
  const auto& table = GenericNextHops(dst);
  return PickAlive(sw, table[sw], entropy);
}

Path Router::WalkPath(HostId src, HostId dst, uint64_t entropy, int max_hops) const {
  Path path;
  if (src == dst) {
    return path;
  }
  NodeId prev = src;
  NodeId cur = topo_->TorOfHost(src);
  for (int hop = 0; hop < max_hops; ++hop) {
    path.push_back(cur);
    NodeId next = NextHop(cur, prev, dst, entropy);
    if (next == kInvalidNode) {
      return {};
    }
    if (next == dst) {
      return path;
    }
    prev = cur;
    cur = next;
  }
  return {};
}

int Router::ShortestPathSwitchCount(HostId src, HostId dst) const {
  std::vector<Path> paths = EcmpPaths(src, dst);
  if (paths.empty()) {
    return -1;
  }
  return int(paths.front().size());
}

std::vector<Path> Router::EcmpPaths(HostId src, HostId dst) const {
  std::vector<Path> out;
  if (src == dst) {
    return out;
  }
  const SwitchId src_tor = topo_->TorOfHost(src);
  const SwitchId dst_tor = topo_->TorOfHost(dst);

  if (topo_->kind() == TopologyKind::kFatTree) {
    const FatTreeMeta& m = *topo_->fat_tree();
    const int half = m.k / 2;
    if (src_tor == dst_tor) {
      out.push_back({src_tor});
      return out;
    }
    int sp = topo_->node(src_tor).pod;
    int dp = topo_->node(dst_tor).pod;
    if (sp == dp) {
      for (int a = 0; a < half; ++a) {
        out.push_back({src_tor, m.agg[size_t(sp)][size_t(a)], dst_tor});
      }
      return out;
    }
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        NodeId core = m.core[size_t(a * half + j)];
        out.push_back(
            {src_tor, m.agg[size_t(sp)][size_t(a)], core, m.agg[size_t(dp)][size_t(a)], dst_tor});
      }
    }
    return out;
  }

  if (topo_->kind() == TopologyKind::kVl2) {
    const Vl2Meta& m = *topo_->vl2();
    if (src_tor == dst_tor) {
      out.push_back({src_tor});
      return out;
    }
    auto [s0, s1] = vl2::AggsOfTor(*topo_, src_tor);
    auto [d0, d1] = vl2::AggsOfTor(*topo_, dst_tor);
    std::vector<NodeId> shared;
    for (NodeId mine : {s0, s1}) {
      if (mine == d0 || mine == d1) {
        shared.push_back(mine);
      }
    }
    if (!shared.empty()) {
      for (NodeId a : shared) {
        out.push_back({src_tor, a, dst_tor});
      }
      return out;
    }
    for (NodeId up : {s0, s1}) {
      for (NodeId mid : m.intermediate) {
        for (NodeId down : {d0, d1}) {
          out.push_back({src_tor, up, mid, down, dst_tor});
        }
      }
    }
    return out;
  }

  // Generic: enumerate all shortest switch paths src_tor..dst_tor via BFS
  // layering (host links excluded except at the endpoints).
  const auto& table = GenericNextHops(dst);
  // Walk the DAG of shortest-path next hops from src_tor.
  Path cur{src_tor};
  // Depth-first expansion; topologies here are small.
  struct Frame {
    NodeId node;
    size_t next_index;
  };
  std::vector<Frame> stack{{src_tor, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.node == dst_tor) {
      out.push_back(cur);
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    const std::vector<NodeId>& nexts = table[f.node];
    if (f.next_index >= nexts.size()) {
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    NodeId nb = nexts[f.next_index++];
    if (topo_->IsHost(nb)) {
      // Next hop is the destination host itself; the path ends at f.node,
      // which must be dst_tor (handled above) — skip otherwise.
      continue;
    }
    stack.push_back({nb, 0});
    cur.push_back(nb);
  }
  return out;
}

}  // namespace pathdump
