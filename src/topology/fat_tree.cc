#include "src/topology/fat_tree.h"

#include <cassert>
#include <string>

namespace pathdump {

Topology BuildFatTree(int k) {
  assert(k >= 2 && k % 2 == 0);
  Topology topo;
  topo.set_kind(TopologyKind::kFatTree);

  const int half = k / 2;
  FatTreeMeta meta;
  meta.k = k;
  meta.pods = k;
  meta.tors_per_pod = half;
  meta.aggs_per_pod = half;
  meta.hosts_per_tor = half;
  meta.cores = half * half;

  // Cores first so their NodeIds are stable regardless of pod count.
  meta.core.reserve(size_t(meta.cores));
  for (int c = 0; c < meta.cores; ++c) {
    meta.core.push_back(topo.AddSwitch(NodeRole::kCore, /*pod=*/-1, /*index=*/c,
                                       "C" + std::to_string(c)));
  }

  meta.tor.resize(size_t(k));
  meta.agg.resize(size_t(k));
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      meta.agg[size_t(p)].push_back(topo.AddSwitch(
          NodeRole::kAgg, p, i, "A" + std::to_string(p) + "." + std::to_string(i)));
    }
    for (int i = 0; i < half; ++i) {
      meta.tor[size_t(p)].push_back(topo.AddSwitch(
          NodeRole::kTor, p, i, "T" + std::to_string(p) + "." + std::to_string(i)));
    }
    // Full bipartite ToR <-> Agg mesh within the pod.
    for (int t = 0; t < half; ++t) {
      for (int a = 0; a < half; ++a) {
        topo.AddLink(meta.tor[size_t(p)][size_t(t)], meta.agg[size_t(p)][size_t(a)]);
      }
    }
    // Agg a connects to core group a.
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        topo.AddLink(meta.agg[size_t(p)][size_t(a)], meta.core[size_t(a * half + j)]);
      }
    }
  }

  // Hosts last: k/2 per ToR.
  for (int p = 0; p < k; ++p) {
    for (int t = 0; t < half; ++t) {
      for (int h = 0; h < half; ++h) {
        NodeId host = topo.AddHost(p, t * half + h,
                                   "H" + std::to_string(p) + "." + std::to_string(t) + "." +
                                       std::to_string(h));
        topo.AddLink(host, meta.tor[size_t(p)][size_t(t)]);
      }
    }
  }

  topo.set_fat_tree_meta(std::move(meta));
  return topo;
}

namespace fat_tree {

int CoreGroupOfAggIndex(const Topology& topo, int agg_index) {
  (void)topo;
  return agg_index;
}

int GroupOfCore(const Topology& topo, NodeId core) {
  const FatTreeMeta& m = *topo.fat_tree();
  return topo.node(core).index / (m.k / 2);
}

NodeId AggAt(const Topology& topo, int pod, int index) {
  return topo.fat_tree()->agg[size_t(pod)][size_t(index)];
}

NodeId TorAt(const Topology& topo, int pod, int index) {
  return topo.fat_tree()->tor[size_t(pod)][size_t(index)];
}

NodeId CoreAt(const Topology& topo, int core_index) {
  return topo.fat_tree()->core[size_t(core_index)];
}

int CoreIndexOf(const Topology& topo, NodeId core) { return topo.node(core).index; }

}  // namespace fat_tree

}  // namespace pathdump
