// VL2 topology builder.
//
// VL2 (Greenberg et al.) is a Clos with three switch layers: ToRs connect to
// two aggregate switches; every aggregate connects to every intermediate
// switch.  PathDump traces VL2 paths with the DSCP field (first sampled
// link, the ToR->Agg uplink) plus two VLAN tags (§3.1).

#ifndef PATHDUMP_SRC_TOPOLOGY_VL2_H_
#define PATHDUMP_SRC_TOPOLOGY_VL2_H_

#include "src/topology/topology.h"

namespace pathdump {

// Builds a VL2 instance.
//   num_tors:           number of ToR switches (each with hosts_per_tor hosts)
//   num_aggs:           number of aggregate switches (>= 2)
//   num_intermediates:  number of intermediate (top-layer) switches
// ToR t uplinks to aggregates (2t) % num_aggs and (2t+1) % num_aggs.
Topology BuildVl2(int num_tors, int num_aggs, int num_intermediates, int hosts_per_tor);

namespace vl2 {

// The two aggregates ToR t connects to, in uplink order (uplink 0, uplink 1).
std::pair<NodeId, NodeId> AggsOfTor(const Topology& topo, NodeId tor);

}  // namespace vl2

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TOPOLOGY_VL2_H_
