// CherryPick global link-label assignment (§3.1, [36]).
//
// Trajectory tags carry 12-bit link labels (a VLAN ID), so at most 4,096
// distinct labels exist — far fewer than physical links in a large fat-tree
// (55,296 in a 48-ary one).  CherryPick's observation: aggregate switches of
// different pods interconnect only through cores, so intra-pod link labels
// can be *reused across pods*, and agg-core links can share a small label
// space via edge colouring.
//
// Label layout used here:
//
//  FatTree(k), half = k/2:
//    * agg-core link (agg index a, core c in group a): label = c.
//      This is the canonical proper edge colouring of the per-pod agg-core
//      star forest: every aggregate's uplinks receive distinct labels, and
//      the same labels repeat in every pod.  Range [0, half^2).
//    * tor-agg link (tor index t, agg index a): label = half^2 + t*half + a,
//      reused across pods.  Range [half^2, 2*half^2).
//    * host-tor links are never sampled and carry no label.
//    Total: 2*(k/2)^2 labels — k = 90 fits in 12 bits (the paper quotes a
//    72-port bound because it reserves part of the space).
//
//  VL2:
//    * tor-agg uplinks are sampled into the 6-bit DSCP field: DSCP value =
//      uplink index + 1 (0 means "DSCP unused").
//    * agg-intermediate link (agg a, intermediate i): VLAN label =
//      a * num_intermediates + i (must fit 12 bits; asserted).
//
//  Generic topologies: every switch-switch link gets a globally unique
//  label 1..N (N <= 4095 asserted); host links carry none.

#ifndef PATHDUMP_SRC_TOPOLOGY_LINK_LABELS_H_
#define PATHDUMP_SRC_TOPOLOGY_LINK_LABELS_H_

#include <optional>
#include <unordered_map>
#include <utility>

#include "src/common/types.h"
#include "src/topology/topology.h"

namespace pathdump {

// What kind of link a fat-tree label refers to.
enum class FatTreeLabelType {
  kAggCore,
  kTorAgg,
};

// Decoded fat-tree label.
struct FatTreeLabel {
  FatTreeLabelType type = FatTreeLabelType::kAggCore;
  int core_index = -1;  // kAggCore: global core index (agg index = core/half)
  int tor_index = -1;   // kTorAgg: ToR index within pod
  int agg_index = -1;   // kTorAgg: agg index within pod
};

// Immutable label map computed from a topology.
class LinkLabelMap {
 public:
  // Computes the label assignment for the given topology (by kind).
  explicit LinkLabelMap(const Topology* topo);

  // VLAN label of the undirected link {a, b}; kInvalidLabel if the link is
  // never sampled (host links) or does not exist.
  LinkLabel LabelOf(NodeId a, NodeId b) const;

  // VL2 only: DSCP value representing ToR->Agg uplink `uplink_index` (0/1).
  LinkLabel DscpLabelOfUplink(int uplink_index) const { return LinkLabel(uplink_index + 1); }
  // VL2 only: uplink index from a DSCP value; -1 when DSCP is unused (0).
  int UplinkIndexOfDscp(LinkLabel dscp) const { return dscp == 0 ? -1 : int(dscp) - 1; }

  // FatTree only: parses a label into its structural components.
  std::optional<FatTreeLabel> ParseFatTree(LinkLabel label) const;

  // Generic only: endpoints of the uniquely-labelled link.
  std::optional<std::pair<NodeId, NodeId>> GenericEndpoints(LinkLabel label) const;

  const Topology& topo() const { return *topo_; }

 private:
  uint64_t Key(NodeId a, NodeId b) const {
    if (a > b) {
      std::swap(a, b);
    }
    return (uint64_t(a) << 32) | b;
  }

  const Topology* topo_;
  // Generic topologies: explicit tables.  Structured ones compute labels.
  std::unordered_map<uint64_t, LinkLabel> generic_labels_;
  std::unordered_map<LinkLabel, std::pair<NodeId, NodeId>> generic_reverse_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TOPOLOGY_LINK_LABELS_H_
