#include "src/topology/vl2.h"

#include <cassert>
#include <string>

namespace pathdump {

Topology BuildVl2(int num_tors, int num_aggs, int num_intermediates, int hosts_per_tor) {
  assert(num_tors >= 1 && num_aggs >= 2 && num_intermediates >= 1 && hosts_per_tor >= 1);
  Topology topo;
  topo.set_kind(TopologyKind::kVl2);

  Vl2Meta meta;
  meta.num_tors = num_tors;
  meta.num_aggs = num_aggs;
  meta.num_intermediates = num_intermediates;
  meta.hosts_per_tor = hosts_per_tor;

  for (int i = 0; i < num_intermediates; ++i) {
    meta.intermediate.push_back(
        topo.AddSwitch(NodeRole::kIntermediate, /*pod=*/0, i, "I" + std::to_string(i)));
  }
  for (int a = 0; a < num_aggs; ++a) {
    meta.agg.push_back(topo.AddSwitch(NodeRole::kAgg, /*pod=*/0, a, "A" + std::to_string(a)));
    // Aggregates connect to every intermediate.
    for (int i = 0; i < num_intermediates; ++i) {
      topo.AddLink(meta.agg.back(), meta.intermediate[size_t(i)]);
    }
  }
  for (int t = 0; t < num_tors; ++t) {
    NodeId tor = topo.AddSwitch(NodeRole::kTor, /*pod=*/0, t, "T" + std::to_string(t));
    meta.tor.push_back(tor);
    topo.AddLink(tor, meta.agg[size_t((2 * t) % num_aggs)]);
    topo.AddLink(tor, meta.agg[size_t((2 * t + 1) % num_aggs)]);
  }
  for (int t = 0; t < num_tors; ++t) {
    for (int h = 0; h < hosts_per_tor; ++h) {
      NodeId host = topo.AddHost(0, t * hosts_per_tor + h,
                                 "H" + std::to_string(t) + "." + std::to_string(h));
      topo.AddLink(host, meta.tor[size_t(t)]);
    }
  }

  topo.set_vl2_meta(std::move(meta));
  return topo;
}

namespace vl2 {

std::pair<NodeId, NodeId> AggsOfTor(const Topology& topo, NodeId tor) {
  const Vl2Meta& m = *topo.vl2();
  int t = topo.node(tor).index;
  return {m.agg[size_t((2 * t) % m.num_aggs)], m.agg[size_t((2 * t + 1) % m.num_aggs)]};
}

}  // namespace vl2

}  // namespace pathdump
