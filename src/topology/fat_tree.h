// FatTree(k) topology builder.
//
// Standard 3-level fat-tree: k pods, each with k/2 ToR and k/2 aggregate
// switches; (k/2)^2 core switches; k/2 hosts per ToR.  Aggregate switch a of
// every pod connects to core group a (cores c with c / (k/2) == a) — this
// "same agg index in every pod" wiring is what lets CherryPick reuse link
// labels across pods (§3.1).

#ifndef PATHDUMP_SRC_TOPOLOGY_FAT_TREE_H_
#define PATHDUMP_SRC_TOPOLOGY_FAT_TREE_H_

#include "src/topology/topology.h"

namespace pathdump {

// Builds FatTree(k).  k must be even and >= 2.
Topology BuildFatTree(int k);

// Structured lookups used by the CherryPick codec and the routers.  All
// require topo.kind() == kFatTree.
namespace fat_tree {

// Core group an aggregate of index a serves: cores [a*k/2, (a+1)*k/2).
int CoreGroupOfAggIndex(const Topology& topo, int agg_index);
// Group (== agg index) of core c.
int GroupOfCore(const Topology& topo, NodeId core);
// Agg switch with the given index in the given pod.
NodeId AggAt(const Topology& topo, int pod, int index);
// ToR switch with the given index in the given pod.
NodeId TorAt(const Topology& topo, int pod, int index);
// Core switch by global core index.
NodeId CoreAt(const Topology& topo, int core_index);
// Global core index of a core switch node.
int CoreIndexOf(const Topology& topo, NodeId core);

}  // namespace fat_tree

}  // namespace pathdump

#endif  // PATHDUMP_SRC_TOPOLOGY_FAT_TREE_H_
