// Blackhole diagnosis (§4.4): reducing the debugging search space.
//
// Under packet spraying a flow's packets cross every equal-cost path; a
// silent blackhole erases exactly the subflow(s) whose path crosses it.
// The controller compares the expected ECMP path set with the paths
// actually present in the destination TIB:
//  * 1 missing path  -> suspect the path's non-ToR switches (paper: 3 of
//    the 10 switches for an agg-core blackhole),
//  * >1 missing path -> suspect the switches common to all missing paths
//    (paper: 4 for a ToR-agg blackhole in the source pod).
// Switches that also appear on observed (healthy) paths can be further
// de-prioritized; both sets are reported.

#ifndef PATHDUMP_SRC_APPS_BLACKHOLE_H_
#define PATHDUMP_SRC_APPS_BLACKHOLE_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"
#include "src/edge/fleet.h"
#include "src/topology/routing.h"

namespace pathdump {

struct BlackholeDiagnosis {
  std::vector<Path> expected;   // all ECMP paths
  std::vector<Path> observed;   // paths present in the destination TIB
  std::vector<Path> missing;    // expected - observed
  // Switches common to every missing path, ToRs excluded (paper's count).
  std::vector<SwitchId> candidates;
  // Candidates additionally absent from every observed path (sharper).
  std::vector<SwitchId> refined_candidates;
};

// Diagnoses a (sprayed) flow that triggered a no-progress/poor-perf alarm.
BlackholeDiagnosis DiagnoseBlackhole(const Router& router, EdgeAgent& dst_agent,
                                     const FiveTuple& flow, HostId src, HostId dst,
                                     TimeRange range);

// Event-driven wrapper (Fig. 3): subscribes to the controller's alarm
// pipeline (src/controller/alarm_pipeline.h) and runs DiagnoseBlackhole on
// every NO_PROGRESS / POOR_PERF alarm, keeping the diagnoses that actually
// found missing ECMP paths.  OnAlarm runs on a dispatch worker; the read
// accessors flush pending alarms first.
class BlackholeMonitor {
 public:
  BlackholeMonitor(Controller* controller, AgentFleet* fleet, const Router* router)
      : controller_(controller), fleet_(fleet), router_(router) {}

  // Subscribes to the controller's alarm pipeline.
  void Start();

  // Thread-safe alarm entry point (also callable directly in replays).
  void OnAlarm(const Alarm& alarm);

  // Diagnoses with at least one missing path (flushes pending alarms).
  std::vector<BlackholeDiagnosis> Diagnoses() const;
  size_t alarms_seen() const;

 private:
  Controller* controller_;
  AgentFleet* fleet_;
  const Router* router_;
  mutable std::mutex mu_;
  std::vector<BlackholeDiagnosis> diagnoses_;
  std::atomic<size_t> alarms_seen_{0};
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_BLACKHOLE_H_
