#include "src/apps/traffic_measure.h"

#include <algorithm>
#include <unordered_map>

namespace pathdump {

TopKFlows TopKAcrossHosts(Controller& controller, const std::vector<HostId>& hosts, size_t k,
                          TimeRange range, bool multi_level) {
  Controller::QueryFn query = [k, range](EdgeAgent& agent) -> QueryResult {
    return agent.TopK(k, range);
  };
  auto [result, stats] = multi_level ? controller.ExecuteMultiLevel(hosts, query)
                                     : controller.Execute(hosts, query);
  if (auto* t = std::get_if<TopKFlows>(&result)) {
    t->Finalize();
    return std::move(*t);
  }
  return TopKFlows{k, {}};
}

uint64_t SubscribeTopK(SubscriptionManager& manager, const std::vector<HostId>& hosts, size_t k,
                       TimeRange range, SimTime epoch_period) {
  StandingQuerySpec spec;
  spec.kind = StandingQuerySpec::Kind::kTopK;
  spec.k = k;
  spec.range = range;
  return manager.Subscribe(hosts, spec, epoch_period);
}

TopKFlows TopKStanding(SubscriptionManager& manager, uint64_t subscription_id) {
  QueryResult result = manager.Materialize(subscription_id);
  if (auto* t = std::get_if<TopKFlows>(&result)) {
    t->Finalize();
    return std::move(*t);
  }
  // No host has shipped anything yet (or the id is unknown): an empty
  // result shaped by the subscription's own spec.
  return TopKFlows{manager.info(subscription_id).spec.k, {}};
}

FlowList FlowsOnLinkAcrossHosts(Controller& controller, const std::vector<HostId>& hosts,
                                LinkId link, TimeRange range, bool multi_level) {
  Controller::QueryFn query = [link, range](EdgeAgent& agent) -> QueryResult {
    return FlowList{agent.GetFlows(link, range)};
  };
  auto [result, stats] = multi_level ? controller.ExecuteMultiLevel(hosts, query)
                                     : controller.Execute(hosts, query);
  if (auto* f = std::get_if<FlowList>(&result)) {
    return std::move(*f);
  }
  return FlowList{};
}

uint64_t SubscribeFlowList(SubscriptionManager& manager, const std::vector<HostId>& hosts,
                           LinkId link, TimeRange range, SimTime epoch_period) {
  StandingQuerySpec spec;
  spec.kind = StandingQuerySpec::Kind::kFlowList;
  spec.link = link;
  spec.range = range;
  return manager.Subscribe(hosts, spec, epoch_period);
}

FlowList FlowListStanding(SubscriptionManager& manager, uint64_t subscription_id) {
  QueryResult result = manager.Materialize(subscription_id);
  if (auto* f = std::get_if<FlowList>(&result)) {
    return std::move(*f);
  }
  // No host has shipped anything yet (or the id is unknown).
  return FlowList{};
}

CountSummary CountOnLinkAcrossHosts(Controller& controller, const std::vector<HostId>& hosts,
                                    LinkId link, TimeRange range, bool multi_level) {
  Controller::QueryFn query = [link, range](EdgeAgent& agent) -> QueryResult {
    return agent.CountOnLink(link, range);
  };
  auto [result, stats] = multi_level ? controller.ExecuteMultiLevel(hosts, query)
                                     : controller.Execute(hosts, query);
  if (auto* c = std::get_if<CountSummary>(&result)) {
    return *c;
  }
  return CountSummary{};
}

uint64_t SubscribeCountSummary(SubscriptionManager& manager, const std::vector<HostId>& hosts,
                               LinkId link, TimeRange range, SimTime epoch_period) {
  StandingQuerySpec spec;
  spec.kind = StandingQuerySpec::Kind::kCountSummary;
  spec.link = link;
  spec.range = range;
  return manager.Subscribe(hosts, spec, epoch_period);
}

CountSummary CountSummaryStanding(SubscriptionManager& manager, uint64_t subscription_id) {
  QueryResult result = manager.Materialize(subscription_id);
  if (auto* c = std::get_if<CountSummary>(&result)) {
    return *c;
  }
  return CountSummary{};
}

std::map<std::pair<SwitchId, SwitchId>, uint64_t> TrafficMatrix(AgentFleet& fleet,
                                                                TimeRange range) {
  std::map<std::pair<SwitchId, SwitchId>, uint64_t> matrix;
  for (EdgeAgent* agent : fleet.all()) {
    agent->tib().ForEachRecordUnordered([&](const TibRecord& rec) {
      if (!rec.Overlaps(range) || rec.path.len == 0) {
        return;
      }
      SwitchId src_tor = rec.path.sw[0];
      SwitchId dst_tor = rec.path.sw[size_t(rec.path.len) - 1];
      matrix[{src_tor, dst_tor}] += rec.bytes;
    });
  }
  return matrix;
}

std::vector<std::pair<uint64_t, FiveTuple>> HeavyHitters(Controller& controller,
                                                         const std::vector<HostId>& hosts,
                                                         uint64_t threshold_bytes,
                                                         TimeRange range) {
  // Reuse the top-k machinery with a generous k, then threshold.
  TopKFlows top = TopKAcrossHosts(controller, hosts, 100000, range, /*multi_level=*/false);
  std::vector<std::pair<uint64_t, FiveTuple>> out;
  for (const auto& [bytes, flow] : top.items) {
    if (bytes >= threshold_bytes) {
      out.emplace_back(bytes, flow);
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, Flow>> CongestedLinkFlows(Controller& controller,
                                                          const std::vector<HostId>& hosts,
                                                          LinkId link, TimeRange range) {
  std::vector<std::pair<uint64_t, Flow>> out;
  for (HostId h : hosts) {
    EdgeAgent* agent = controller.agent(h);
    if (agent == nullptr) {
      continue;
    }
    for (const Flow& f : agent->GetFlows(link, range)) {
      CountSummary c = agent->GetCount(f, range);
      out.emplace_back(c.bytes, f);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return b.first < a.first; });
  return out;
}

std::vector<std::pair<uint64_t, IpAddr>> DdosSources(EdgeAgent& victim_agent, TimeRange range) {
  std::unordered_map<IpAddr, uint64_t> per_source;
  victim_agent.tib().ForEachRecordUnordered([&](const TibRecord& rec) {
    if (rec.Overlaps(range)) {
      per_source[rec.flow.src_ip] += rec.bytes;
    }
  });
  std::vector<std::pair<uint64_t, IpAddr>> out;
  out.reserve(per_source.size());
  for (const auto& [ip, bytes] : per_source) {
    out.emplace_back(bytes, ip);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) { return b.first < a.first; });
  return out;
}

}  // namespace pathdump
