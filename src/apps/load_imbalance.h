// Load-imbalance diagnosis (§2.3, §4.2).
//
// Two diagnoses from the paper:
//  * ECMP: build the per-flow size distribution for each egress link of
//    interest via a (multi-level) query over all hosts; sharply divided
//    distributions reveal a poor hash (Fig. 5(c)).
//  * Packet spraying: for one flow, compare per-path byte counts from the
//    destination TIB; a skewed split names the under/over-utilized path
//    (Fig. 6).

#ifndef PATHDUMP_SRC_APPS_LOAD_IMBALANCE_H_
#define PATHDUMP_SRC_APPS_LOAD_IMBALANCE_H_

#include <utility>
#include <vector>

#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/fleet.h"

namespace pathdump {

// Flow-size distribution across all given hosts for flows traversing
// `link`, computed with the multi-level (or direct) query mechanism.
FlowSizeHistogram FlowSizeDistributionForLink(Controller& controller,
                                              const std::vector<HostId>& hosts, LinkId link,
                                              TimeRange range, int64_t bin_width = 10000,
                                              bool multi_level = true);

// Standing variant of the ECMP diagnosis: installs the per-link
// flow-size distribution as a standing query and returns the
// subscription id.  Each epoch ships only the per-flow byte increments
// for records whose path matched `link`; at any epoch boundary the
// materialized histogram is byte-identical to a direct-poll
// FlowSizeDistributionForLink over the same records.  Polling keeps
// working alongside.
uint64_t SubscribeFlowSizeDistribution(SubscriptionManager& manager,
                                       const std::vector<HostId>& hosts, LinkId link,
                                       TimeRange range, int64_t bin_width = 10000,
                                       SimTime epoch_period = 0);

// Materializes the standing histogram (flushes in-flight deltas
// first).  The bin width (like every query parameter) is the
// subscription's own spec.
FlowSizeHistogram FlowSizeDistributionStanding(SubscriptionManager& manager,
                                               uint64_t subscription_id);

// Per-path traffic of one flow at its destination TIB (Fig. 6 data).
struct SubflowUsage {
  Path path;
  uint64_t bytes = 0;
  uint64_t pkts = 0;
};
std::vector<SubflowUsage> PerPathUsage(EdgeAgent& dst_agent, const FiveTuple& flow,
                                       TimeRange range);

// Spray balance verdict: max/min byte ratio across subflows.
struct SprayBalanceReport {
  std::vector<SubflowUsage> subflows;
  double max_min_ratio = 1.0;
  bool balanced = true;
};
SprayBalanceReport CheckSprayBalance(EdgeAgent& dst_agent, const FiveTuple& flow,
                                     TimeRange range, double tolerance_ratio = 1.5);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_LOAD_IMBALANCE_H_
