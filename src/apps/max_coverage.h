// MAX-COVERAGE failure localization (Kompella et al. [23]), used by the
// silent-drop debugger (§2.3, §4.3).
//
// Input: failure signatures — the path(s) taken by flows that suffered
// serious retransmissions.  Greedy set cover then picks the smallest set of
// links explaining all signatures: repeatedly choose the link that covers
// the most still-uncovered signatures.  The paper implements this in ~50
// lines of Python at the controller; this is the C++ equivalent.

#ifndef PATHDUMP_SRC_APPS_MAX_COVERAGE_H_
#define PATHDUMP_SRC_APPS_MAX_COVERAGE_H_

#include <map>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Accuracy against ground truth: recall = TP/(TP+FN), precision = TP/(TP+FP).
struct LocalizationAccuracy {
  double recall = 0;
  double precision = 0;

  bool Perfect() const { return recall >= 1.0 && precision >= 1.0; }
};

class MaxCoverageLocalizer {
 public:
  // Adds one failure signature: the switch path of a suffering flow.  Both
  // directed switch-switch links of the path are added (drops can be on
  // either unidirectional interface of the reported trajectory).
  void AddSignature(const Path& path);
  void Clear();

  size_t signature_count() const { return signatures_.size(); }

  // Greedy max-coverage hypothesis: the selected faulty links.
  std::vector<LinkId> Localize() const;

  // Compares a hypothesis with the ground-truth faulty link set.
  static LocalizationAccuracy Evaluate(const std::vector<LinkId>& hypothesis,
                                       const std::vector<LinkId>& truth);

 private:
  // Each signature = directed links of the reported path.
  std::vector<std::vector<LinkId>> signatures_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_MAX_COVERAGE_H_
