#include "src/apps/max_coverage.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace pathdump {

void MaxCoverageLocalizer::AddSignature(const Path& path) {
  std::vector<LinkId> links;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    links.push_back(LinkId{path[i], path[i + 1]});
  }
  if (!links.empty()) {
    signatures_.push_back(std::move(links));
  }
}

void MaxCoverageLocalizer::Clear() { signatures_.clear(); }

std::vector<LinkId> MaxCoverageLocalizer::Localize() const {
  std::vector<LinkId> hypothesis;
  if (signatures_.empty()) {
    return hypothesis;
  }
  std::vector<bool> covered(signatures_.size(), false);
  size_t uncovered = signatures_.size();

  while (uncovered > 0) {
    // Count, over uncovered signatures, how many each link appears in.
    std::unordered_map<LinkId, size_t, LinkIdHash> counts;
    for (size_t s = 0; s < signatures_.size(); ++s) {
      if (covered[s]) {
        continue;
      }
      for (const LinkId& l : signatures_[s]) {
        ++counts[l];
      }
    }
    // Pick the max count; deterministic tie-break on (src, dst).
    LinkId best{};
    size_t best_count = 0;
    for (const auto& [link, count] : counts) {
      if (count > best_count || (count == best_count && link < best)) {
        best = link;
        best_count = count;
      }
    }
    if (best_count == 0) {
      break;
    }
    hypothesis.push_back(best);
    for (size_t s = 0; s < signatures_.size(); ++s) {
      if (covered[s]) {
        continue;
      }
      if (std::find(signatures_[s].begin(), signatures_[s].end(), best) !=
          signatures_[s].end()) {
        covered[s] = true;
        --uncovered;
      }
    }
  }
  return hypothesis;
}

LocalizationAccuracy MaxCoverageLocalizer::Evaluate(const std::vector<LinkId>& hypothesis,
                                                    const std::vector<LinkId>& truth) {
  LocalizationAccuracy acc;
  if (truth.empty()) {
    acc.recall = 1.0;
    acc.precision = hypothesis.empty() ? 1.0 : 0.0;
    return acc;
  }
  std::unordered_set<LinkId, LinkIdHash> truth_set(truth.begin(), truth.end());
  size_t tp = 0;
  for (const LinkId& l : hypothesis) {
    if (truth_set.count(l) > 0) {
      ++tp;
    }
  }
  acc.recall = double(tp) / double(truth.size());
  acc.precision = hypothesis.empty() ? 0.0 : double(tp) / double(hypothesis.size());
  return acc;
}

}  // namespace pathdump
