#include "src/apps/outcast_diagnosis.h"

#include <algorithm>
#include <unordered_map>

namespace pathdump {

bool OutcastDiagnoser::OnAlarm(const Alarm& alarm) {
  if (alarm.reason != AlarmReason::kPoorPerf) {
    return false;
  }
  std::vector<IpAddr>& sources = alerts_[alarm.flow.dst_ip];
  if (std::find(sources.begin(), sources.end(), alarm.flow.src_ip) == sources.end()) {
    sources.push_back(alarm.flow.src_ip);
  }
  return int(sources.size()) >= min_alerts_;
}

int OutcastDiagnoser::AlertCountFor(IpAddr dst) const {
  auto it = alerts_.find(dst);
  return it == alerts_.end() ? 0 : int(it->second.size());
}

OutcastVerdict OutcastDiagnoser::Diagnose(EdgeAgent& receiver_agent, TimeRange range,
                                          double duration_seconds) {
  OutcastVerdict v;
  // Per-flow bytes and paths from the receiver TIB.
  LinkId any{kInvalidNode, kInvalidNode};
  std::unordered_map<FiveTuple, SenderThroughput, FiveTupleHash> per_flow;
  for (const Flow& f : receiver_agent.GetFlows(any, range)) {
    SenderThroughput& st = per_flow[f.id];
    st.flow = f.id;
    if (int(f.path.size()) > st.path_switches) {
      st.path_switches = int(f.path.size());
      st.path = f.path;
    }
  }
  for (auto& [flow, st] : per_flow) {
    CountSummary c = receiver_agent.GetCount(Flow{flow, {}}, range);
    st.mbps = duration_seconds > 0 ? double(c.bytes) * 8.0 / duration_seconds / 1e6 : 0;
    v.senders.push_back(st);
    v.path_tree[st.path_switches] += 1;
  }
  if (v.senders.size() < 2) {
    return v;
  }
  std::sort(v.senders.begin(), v.senders.end(),
            [](const SenderThroughput& a, const SenderThroughput& b) {
              return a.flow.src_ip < b.flow.src_ip;
            });

  // Victim = minimum throughput; outcast profile requires it to also be
  // (one of) the closest sender(s).
  const SenderThroughput* victim = &v.senders.front();
  double sum_others = 0;
  for (const SenderThroughput& st : v.senders) {
    if (st.mbps < victim->mbps) {
      victim = &st;
    }
  }
  int min_len = INT32_MAX;
  for (const SenderThroughput& st : v.senders) {
    min_len = std::min(min_len, st.path_switches);
  }
  for (const SenderThroughput& st : v.senders) {
    if (!(st.flow == victim->flow)) {
      sum_others += st.mbps;
    }
  }
  v.victim = *victim;
  v.victim_mbps = victim->mbps;
  v.mean_other_mbps = sum_others / double(v.senders.size() - 1);
  v.unfairness = v.victim_mbps > 0 ? v.mean_other_mbps / v.victim_mbps : 1e9;
  v.is_outcast = victim->path_switches == min_len && v.unfairness >= unfairness_;
  return v;
}

}  // namespace pathdump
