#include "src/apps/blackhole.h"

#include <algorithm>
#include <unordered_set>

namespace pathdump {

BlackholeDiagnosis DiagnoseBlackhole(const Router& router, EdgeAgent& dst_agent,
                                     const FiveTuple& flow, HostId src, HostId dst,
                                     TimeRange range) {
  BlackholeDiagnosis d;
  d.expected = router.EcmpPaths(src, dst);
  LinkId any{kInvalidNode, kInvalidNode};
  d.observed = dst_agent.GetPaths(flow, any, range);

  auto path_eq = [](const Path& a, const Path& b) { return a == b; };
  for (const Path& e : d.expected) {
    bool seen = false;
    for (const Path& o : d.observed) {
      if (path_eq(e, o)) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      d.missing.push_back(e);
    }
  }
  if (d.missing.empty()) {
    return d;
  }

  // Intersection of all missing paths' switch sets.
  std::vector<SwitchId> common(d.missing.front().begin(), d.missing.front().end());
  for (size_t i = 1; i < d.missing.size(); ++i) {
    std::unordered_set<SwitchId> in_path(d.missing[i].begin(), d.missing[i].end());
    common.erase(std::remove_if(common.begin(), common.end(),
                                [&](SwitchId s) { return in_path.count(s) == 0; }),
                 common.end());
  }

  // Exclude the source/destination ToRs when only one path is missing —
  // every path crosses them, so they carry no localization signal.
  if (d.missing.size() == 1 && !d.missing.front().empty()) {
    SwitchId src_tor = d.missing.front().front();
    SwitchId dst_tor = d.missing.front().back();
    common.erase(std::remove_if(common.begin(), common.end(),
                                [&](SwitchId s) { return s == src_tor || s == dst_tor; }),
                 common.end());
  }
  d.candidates = common;

  std::unordered_set<SwitchId> on_observed;
  for (const Path& o : d.observed) {
    on_observed.insert(o.begin(), o.end());
  }
  for (SwitchId s : d.candidates) {
    if (on_observed.count(s) == 0) {
      d.refined_candidates.push_back(s);
    }
  }
  return d;
}

void BlackholeMonitor::Start() {
  controller_->SubscribeAlarms([this](const Alarm& alarm) { OnAlarm(alarm); });
}

void BlackholeMonitor::OnAlarm(const Alarm& alarm) {
  if (alarm.reason != AlarmReason::kNoProgress && alarm.reason != AlarmReason::kPoorPerf) {
    return;
  }
  ++alarms_seen_;
  EdgeAgent* src_agent = fleet_->agent_by_ip(alarm.flow.src_ip);
  EdgeAgent* dst_agent = fleet_->agent_by_ip(alarm.flow.dst_ip);
  if (src_agent == nullptr || dst_agent == nullptr) {
    return;
  }
  // GetPaths inside takes the destination agent's reader lock, so the
  // diagnosis is safe while the data path keeps ingesting.
  BlackholeDiagnosis d = DiagnoseBlackhole(*router_, *dst_agent, alarm.flow,
                                           src_agent->host(), dst_agent->host(),
                                           TimeRange::All());
  if (d.missing.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  diagnoses_.push_back(std::move(d));
}

std::vector<BlackholeDiagnosis> BlackholeMonitor::Diagnoses() const {
  controller_->FlushAlarms();
  std::lock_guard<std::mutex> lock(mu_);
  return diagnoses_;
}

size_t BlackholeMonitor::alarms_seen() const {
  controller_->FlushAlarms();
  return alarms_seen_.load();
}

}  // namespace pathdump
