#include "src/apps/blackhole.h"

#include <algorithm>
#include <unordered_set>

namespace pathdump {

BlackholeDiagnosis DiagnoseBlackhole(const Router& router, EdgeAgent& dst_agent,
                                     const FiveTuple& flow, HostId src, HostId dst,
                                     TimeRange range) {
  BlackholeDiagnosis d;
  d.expected = router.EcmpPaths(src, dst);
  LinkId any{kInvalidNode, kInvalidNode};
  d.observed = dst_agent.GetPaths(flow, any, range);

  auto path_eq = [](const Path& a, const Path& b) { return a == b; };
  for (const Path& e : d.expected) {
    bool seen = false;
    for (const Path& o : d.observed) {
      if (path_eq(e, o)) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      d.missing.push_back(e);
    }
  }
  if (d.missing.empty()) {
    return d;
  }

  // Intersection of all missing paths' switch sets.
  std::vector<SwitchId> common(d.missing.front().begin(), d.missing.front().end());
  for (size_t i = 1; i < d.missing.size(); ++i) {
    std::unordered_set<SwitchId> in_path(d.missing[i].begin(), d.missing[i].end());
    common.erase(std::remove_if(common.begin(), common.end(),
                                [&](SwitchId s) { return in_path.count(s) == 0; }),
                 common.end());
  }

  // Exclude the source/destination ToRs when only one path is missing —
  // every path crosses them, so they carry no localization signal.
  if (d.missing.size() == 1 && !d.missing.front().empty()) {
    SwitchId src_tor = d.missing.front().front();
    SwitchId dst_tor = d.missing.front().back();
    common.erase(std::remove_if(common.begin(), common.end(),
                                [&](SwitchId s) { return s == src_tor || s == dst_tor; }),
                 common.end());
  }
  d.candidates = common;

  std::unordered_set<SwitchId> on_observed;
  for (const Path& o : d.observed) {
    on_observed.insert(o.begin(), o.end());
  }
  for (SwitchId s : d.candidates) {
    if (on_observed.count(s) == 0) {
      d.refined_candidates.push_back(s);
    }
  }
  return d;
}

}  // namespace pathdump
