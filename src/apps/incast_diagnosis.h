// TCP incast diagnosis (§4.6).
//
// Complements the outcast diagnoser: both start from a storm of POOR_PERF
// alarms naming one destination, but the profiles differ —
//  * outcast: one victim, asymmetric (the shortest-path sender starved);
//  * incast: symmetric collapse — many/all senders suffer timeouts
//    together, alarms arrive in synchronized bursts, and aggregate
//    goodput at the receiver sits far below the access-link capacity.
// The diagnoser reads per-sender (bytes, path) from the receiver's TIB
// like the outcast app, then classifies by symmetry and burstiness.

#ifndef PATHDUMP_SRC_APPS_INCAST_DIAGNOSIS_H_
#define PATHDUMP_SRC_APPS_INCAST_DIAGNOSIS_H_

#include <vector>

#include "src/edge/edge_agent.h"

namespace pathdump {

struct IncastVerdict {
  bool is_incast = false;
  int senders = 0;
  // Fraction of senders whose throughput is within 2x of each other
  // (symmetry measure: high for incast, low for outcast).
  double symmetric_fraction = 0;
  double aggregate_mbps = 0;
  double capacity_mbps = 0;
  double utilization = 0;  // aggregate / capacity
  // Fraction of alarms arriving within sync_window of another alarm.
  double alarm_burstiness = 0;
};

class IncastDiagnoser {
 public:
  // capacity_mbps: the receiver access-link capacity; incast is suspected
  // below `util_threshold` utilization with `symmetry_threshold`
  // symmetric senders.
  IncastDiagnoser(double capacity_mbps, double util_threshold = 0.7,
                  double symmetry_threshold = 0.7)
      : capacity_mbps_(capacity_mbps),
        util_threshold_(util_threshold),
        symmetry_threshold_(symmetry_threshold) {}

  // `alarm_times`: POOR_PERF alarm timestamps for this destination.
  IncastVerdict Diagnose(EdgeAgent& receiver_agent, TimeRange range, double duration_seconds,
                         const std::vector<SimTime>& alarm_times,
                         SimTime sync_window = 10 * kNsPerMs) const;

 private:
  double capacity_mbps_;
  double util_threshold_;
  double symmetry_threshold_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_INCAST_DIAGNOSIS_H_
