#include "src/apps/incast_diagnosis.h"

#include <algorithm>
#include <unordered_map>

namespace pathdump {

IncastVerdict IncastDiagnoser::Diagnose(EdgeAgent& receiver_agent, TimeRange range,
                                        double duration_seconds,
                                        const std::vector<SimTime>& alarm_times,
                                        SimTime sync_window) const {
  IncastVerdict v;
  v.capacity_mbps = capacity_mbps_;

  // Per-sender throughput from the receiver's TIB.
  std::unordered_map<IpAddr, uint64_t> per_sender_bytes;
  receiver_agent.tib().ForEachRecordUnordered([&](const TibRecord& rec) {
    if (rec.Overlaps(range)) {
      per_sender_bytes[rec.flow.src_ip] += rec.bytes;
    }
  });
  v.senders = int(per_sender_bytes.size());
  if (v.senders < 2 || duration_seconds <= 0) {
    return v;
  }
  std::vector<double> mbps;
  double total = 0;
  for (const auto& [src, bytes] : per_sender_bytes) {
    double m = double(bytes) * 8.0 / duration_seconds / 1e6;
    mbps.push_back(m);
    total += m;
  }
  v.aggregate_mbps = total;
  v.utilization = capacity_mbps_ > 0 ? total / capacity_mbps_ : 1.0;

  // Symmetry: fraction of senders within 2x of the median throughput.
  std::vector<double> sorted = mbps;
  std::sort(sorted.begin(), sorted.end());
  double median = sorted[sorted.size() / 2];
  int symmetric = 0;
  for (double m : mbps) {
    if (median <= 0 ? m <= 0 : (m >= median / 2 && m <= median * 2)) {
      ++symmetric;
    }
  }
  v.symmetric_fraction = double(symmetric) / double(mbps.size());

  // Burstiness: alarms that have a neighbor within the sync window.
  if (alarm_times.size() >= 2) {
    std::vector<SimTime> ts = alarm_times;
    std::sort(ts.begin(), ts.end());
    int bursty = 0;
    for (size_t i = 0; i < ts.size(); ++i) {
      bool near = (i > 0 && ts[i] - ts[i - 1] <= sync_window) ||
                  (i + 1 < ts.size() && ts[i + 1] - ts[i] <= sync_window);
      bursty += near ? 1 : 0;
    }
    v.alarm_burstiness = double(bursty) / double(ts.size());
  }

  v.is_incast = v.utilization < util_threshold_ &&
                v.symmetric_fraction >= symmetry_threshold_ && v.alarm_burstiness >= 0.5;
  return v;
}

}  // namespace pathdump
