// TCP outcast diagnosis (§4.6).
//
// The controller watches POOR_PERF alarms; once >= min_alerts alarms from
// different sources name the same destination, it pulls per-sender flow
// statistics (bytes, path) from the receiver's TIB, computes throughputs,
// builds the path tree (Fig. 10(b)), and checks the outcast profile: the
// sender *closest* to the receiver (shortest path) is the most penalized
// while the aggregate far senders fare much better.

#ifndef PATHDUMP_SRC_APPS_OUTCAST_DIAGNOSIS_H_
#define PATHDUMP_SRC_APPS_OUTCAST_DIAGNOSIS_H_

#include <map>
#include <vector>

#include "src/edge/edge_agent.h"

namespace pathdump {

struct SenderThroughput {
  FiveTuple flow;
  double mbps = 0;
  int path_switches = 0;
  Path path;
};

struct OutcastVerdict {
  bool is_outcast = false;
  SenderThroughput victim;              // the starved flow
  double victim_mbps = 0;
  double mean_other_mbps = 0;
  double unfairness = 0;                // mean_other / victim
  std::vector<SenderThroughput> senders;
  // Path tree summary: path length (switch count) -> flow count.
  std::map<int, int> path_tree;
};

class OutcastDiagnoser {
 public:
  // min_alerts: alarms from distinct sources to one destination required
  // before diagnosis starts (paper: 10).  unfairness_threshold: how much
  // better the other flows must fare for the outcast verdict.
  explicit OutcastDiagnoser(int min_alerts = 10, double unfairness_threshold = 2.0)
      : min_alerts_(min_alerts), unfairness_(unfairness_threshold) {}

  // Feeds one alarm; returns true once the destination crosses min_alerts.
  bool OnAlarm(const Alarm& alarm);

  // Runs the diagnosis against the receiver's TIB.
  OutcastVerdict Diagnose(EdgeAgent& receiver_agent, TimeRange range, double duration_seconds);

  int AlertCountFor(IpAddr dst) const;

 private:
  int min_alerts_;
  double unfairness_;
  // dst ip -> distinct alarming sources.
  std::map<IpAddr, std::vector<IpAddr>> alerts_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_OUTCAST_DIAGNOSIS_H_
