// Traffic measurement applications (§2.3 "Traffic measurement", Table 2):
// top-k flows, traffic matrix, heavy hitters, congested-link diagnosis,
// and DDoS source accounting — all expressed over the host API / TIBs.

#ifndef PATHDUMP_SRC_APPS_TRAFFIC_MEASURE_H_
#define PATHDUMP_SRC_APPS_TRAFFIC_MEASURE_H_

#include <map>
#include <utility>
#include <vector>

#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/fleet.h"

namespace pathdump {

// Top-k flows by bytes across the given hosts (Fig. 12's query).
TopKFlows TopKAcrossHosts(Controller& controller, const std::vector<HostId>& hosts, size_t k,
                          TimeRange range, bool multi_level = true);

// Standing variant of the same measurement: installs a top-k standing
// query on `hosts` and returns the subscription id.  Agents then
// evaluate incrementally at insert time; each epoch tick ships only the
// per-flow byte increments.  At any epoch boundary TopKStanding is
// byte-identical to a direct-poll TopKAcrossHosts over the same TIB
// contents.  The poll path above keeps working — both consume the TIB.
uint64_t SubscribeTopK(SubscriptionManager& manager, const std::vector<HostId>& hosts, size_t k,
                       TimeRange range = TimeRange::All(), SimTime epoch_period = 0);

// Materializes the standing top-k (flushes in-flight deltas first).
// The k (like every query parameter) is the subscription's own spec.
TopKFlows TopKStanding(SubscriptionManager& manager, uint64_t subscription_id);

// getFlows across hosts: distinct (flow, path) pairs traversing `link`,
// per-host first-appearance order, hosts concatenated in host order —
// the poll twin of a standing FlowList subscription.
FlowList FlowsOnLinkAcrossHosts(Controller& controller, const std::vector<HostId>& hosts,
                                LinkId link, TimeRange range, bool multi_level = false);

// Standing variant: agents ship every filtered record (with its TIB
// insertion id) per epoch; the controller replays the getFlows dedup
// incrementally.  At any epoch boundary FlowListStanding is
// byte-identical to FlowsOnLinkAcrossHosts over the same TIB contents.
uint64_t SubscribeFlowList(SubscriptionManager& manager, const std::vector<HostId>& hosts,
                           LinkId link, TimeRange range = TimeRange::All(),
                           SimTime epoch_period = 0);

// Materializes the standing flow list (flushes in-flight deltas first).
FlowList FlowListStanding(SubscriptionManager& manager, uint64_t subscription_id);

// getCount across hosts: byte/packet totals of records traversing
// `link`, summed over hosts — the poll twin of a standing CountSummary
// subscription.
CountSummary CountOnLinkAcrossHosts(Controller& controller, const std::vector<HostId>& hosts,
                                    LinkId link, TimeRange range, bool multi_level = false);

// Standing variant of the link count; byte-identical to
// CountOnLinkAcrossHosts at any epoch boundary.
uint64_t SubscribeCountSummary(SubscriptionManager& manager, const std::vector<HostId>& hosts,
                               LinkId link, TimeRange range = TimeRange::All(),
                               SimTime epoch_period = 0);

// Materializes the standing count (flushes in-flight deltas first).
CountSummary CountSummaryStanding(SubscriptionManager& manager, uint64_t subscription_id);

// Traffic matrix between ToR pairs: (src ToR, dst ToR) -> bytes, assembled
// from every destination TIB (Table 2 "Traffic matrix").
std::map<std::pair<SwitchId, SwitchId>, uint64_t> TrafficMatrix(AgentFleet& fleet,
                                                                TimeRange range);

// Flows exceeding `threshold_bytes` at any queried host (heavy hitters).
std::vector<std::pair<uint64_t, FiveTuple>> HeavyHitters(Controller& controller,
                                                         const std::vector<HostId>& hosts,
                                                         uint64_t threshold_bytes,
                                                         TimeRange range);

// Flows using a congested link with their byte contributions, descending —
// tells the operator what to reroute (Table 2 "Congested link diagnosis").
std::vector<std::pair<uint64_t, Flow>> CongestedLinkFlows(Controller& controller,
                                                          const std::vector<HostId>& hosts,
                                                          LinkId link, TimeRange range);

// DDoS diagnosis: distinct sources sending to `victim_ip` with per-source
// byte totals, descending (Table 2 "DDoS diagnosis").
std::vector<std::pair<uint64_t, IpAddr>> DdosSources(EdgeAgent& victim_agent, TimeRange range);

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_TRAFFIC_MEASURE_H_
