// Path conformance checking (§2.3, §4.1) plus the waypoint-routing and
// isolation invariants of Table 2.
//
// The operator expresses policy as a predicate over decoded paths; the
// controller installs it at end hosts; the agent evaluates it on every new
// TIB record (event-driven) and raises PC_FAIL with the offending paths.

#ifndef PATHDUMP_SRC_APPS_PATH_CONFORMANCE_H_
#define PATHDUMP_SRC_APPS_PATH_CONFORMANCE_H_

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/controller/controller.h"
#include "src/edge/edge_agent.h"

namespace pathdump {

struct ConformancePolicy {
  // Maximum allowed switches on a path (0 = unlimited).  The paper's §2.3
  // example: path length of 6 or more hops is a violation.
  int max_path_switches = 0;
  // Switches the path must not traverse.
  std::vector<SwitchId> forbidden;
  // Switches the path must traverse (waypoint routing).
  std::vector<SwitchId> required_waypoints;

  // Returns true if the path conforms.
  bool Check(const Path& path) const;
};

// Installs the policy as a record hook on the agent; each violating record
// raises Alarm(flow, PC_FAIL, [path]).  Returns the hook id (pass to
// agent.RemoveRecordHook to uninstall).
int InstallPathConformance(EdgeAgent& agent, ConformancePolicy policy);

// Isolation checking (Table 2 "Isolation"): hosts in `group_a` must never
// exchange traffic with hosts in `group_b`.  Installs a record hook on the
// agent that alarms on flows crossing the boundary.
int InstallIsolationCheck(EdgeAgent& agent, std::unordered_set<IpAddr> group_a,
                          std::unordered_set<IpAddr> group_b);

// Controller-side conformance view: subscribes to the alarm pipeline
// (src/controller/alarm_pipeline.h) and tallies PC_FAIL alarms per
// reporting host.  OnAlarm runs on a dispatch worker; the read accessors
// flush the pipeline first, so they see every alarm already submitted.
class ConformanceAuditor {
 public:
  explicit ConformanceAuditor(Controller* controller) : controller_(controller) {}

  // Subscribes to the controller's alarm pipeline.
  void Start();

  // Thread-safe alarm entry point (PC_FAIL only; others ignored).
  void OnAlarm(const Alarm& alarm);

  // Total PC_FAIL alarms seen (flushes pending alarms first).
  size_t total() const;
  // PC_FAIL alarms reported by one host (flushes first).
  size_t count_for(HostId host) const;

 private:
  Controller* controller_;
  mutable std::mutex mu_;
  std::unordered_map<HostId, size_t> per_host_;
  size_t total_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_PATH_CONFORMANCE_H_
