#include "src/apps/load_imbalance.h"

#include <algorithm>

namespace pathdump {

FlowSizeHistogram FlowSizeDistributionForLink(Controller& controller,
                                              const std::vector<HostId>& hosts, LinkId link,
                                              TimeRange range, int64_t bin_width,
                                              bool multi_level) {
  Controller::QueryFn query = [link, range, bin_width](EdgeAgent& agent) -> QueryResult {
    return agent.FlowSizeDistribution(link, range, bin_width);
  };
  auto [result, stats] = multi_level ? controller.ExecuteMultiLevel(hosts, query)
                                     : controller.Execute(hosts, query);
  if (auto* h = std::get_if<FlowSizeHistogram>(&result)) {
    return std::move(*h);
  }
  return FlowSizeHistogram{bin_width, {}};
}

uint64_t SubscribeFlowSizeDistribution(SubscriptionManager& manager,
                                       const std::vector<HostId>& hosts, LinkId link,
                                       TimeRange range, int64_t bin_width,
                                       SimTime epoch_period) {
  StandingQuerySpec spec;
  spec.kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  spec.link = link;
  spec.range = range;
  spec.bin_width = bin_width;
  return manager.Subscribe(hosts, spec, epoch_period);
}

FlowSizeHistogram FlowSizeDistributionStanding(SubscriptionManager& manager,
                                               uint64_t subscription_id) {
  QueryResult result = manager.Materialize(subscription_id);
  if (auto* h = std::get_if<FlowSizeHistogram>(&result)) {
    return std::move(*h);
  }
  // No host has shipped anything yet (or the id is unknown): an empty
  // histogram shaped by the subscription's own spec.
  return FlowSizeHistogram{manager.info(subscription_id).spec.bin_width, {}};
}

std::vector<SubflowUsage> PerPathUsage(EdgeAgent& dst_agent, const FiveTuple& flow,
                                       TimeRange range) {
  std::vector<SubflowUsage> out;
  LinkId any{kInvalidNode, kInvalidNode};
  for (Path& p : dst_agent.GetPaths(flow, any, range)) {
    CountSummary c = dst_agent.GetCount(Flow{flow, p}, range);
    SubflowUsage u;
    u.path = std::move(p);
    u.bytes = c.bytes;
    u.pkts = c.pkts;
    out.push_back(std::move(u));
  }
  std::sort(out.begin(), out.end(),
            [](const SubflowUsage& a, const SubflowUsage& b) { return a.path < b.path; });
  return out;
}

SprayBalanceReport CheckSprayBalance(EdgeAgent& dst_agent, const FiveTuple& flow,
                                     TimeRange range, double tolerance_ratio) {
  SprayBalanceReport rep;
  rep.subflows = PerPathUsage(dst_agent, flow, range);
  if (rep.subflows.empty()) {
    return rep;
  }
  uint64_t mx = 0;
  uint64_t mn = UINT64_MAX;
  for (const SubflowUsage& u : rep.subflows) {
    mx = std::max(mx, u.bytes);
    mn = std::min(mn, u.bytes);
  }
  rep.max_min_ratio = mn == 0 ? double(mx) : double(mx) / double(mn);
  rep.balanced = rep.max_min_ratio <= tolerance_ratio;
  return rep;
}

}  // namespace pathdump
