#include "src/apps/path_conformance.h"

#include <algorithm>

namespace pathdump {

bool ConformancePolicy::Check(const Path& path) const {
  if (max_path_switches > 0 && int(path.size()) >= max_path_switches) {
    return false;
  }
  for (SwitchId s : forbidden) {
    if (std::find(path.begin(), path.end(), s) != path.end()) {
      return false;
    }
  }
  for (SwitchId s : required_waypoints) {
    if (std::find(path.begin(), path.end(), s) == path.end()) {
      return false;
    }
  }
  return true;
}

int InstallPathConformance(EdgeAgent& agent, ConformancePolicy policy) {
  return agent.AddRecordHook(
      [policy = std::move(policy)](EdgeAgent& a, const TibRecord& rec, SimTime now) {
        Path p = rec.path.ToPath();
        if (!policy.Check(p)) {
          a.RaiseAlarm(rec.flow, AlarmReason::kPathConformance, {std::move(p)}, now);
        }
      });
}

int InstallIsolationCheck(EdgeAgent& agent, std::unordered_set<IpAddr> group_a,
                          std::unordered_set<IpAddr> group_b) {
  return agent.AddRecordHook([ga = std::move(group_a), gb = std::move(group_b)](
                                 EdgeAgent& a, const TibRecord& rec, SimTime now) {
    bool ab = ga.count(rec.flow.src_ip) > 0 && gb.count(rec.flow.dst_ip) > 0;
    bool ba = gb.count(rec.flow.src_ip) > 0 && ga.count(rec.flow.dst_ip) > 0;
    if (ab || ba) {
      a.RaiseAlarm(rec.flow, AlarmReason::kPathConformance, {rec.path.ToPath()}, now);
    }
  });
}

}  // namespace pathdump
