#include "src/apps/path_conformance.h"

#include <algorithm>

namespace pathdump {

bool ConformancePolicy::Check(const Path& path) const {
  if (max_path_switches > 0 && int(path.size()) >= max_path_switches) {
    return false;
  }
  for (SwitchId s : forbidden) {
    if (std::find(path.begin(), path.end(), s) != path.end()) {
      return false;
    }
  }
  for (SwitchId s : required_waypoints) {
    if (std::find(path.begin(), path.end(), s) == path.end()) {
      return false;
    }
  }
  return true;
}

int InstallPathConformance(EdgeAgent& agent, ConformancePolicy policy) {
  return agent.AddRecordHook(
      [policy = std::move(policy)](EdgeAgent& a, const TibRecord& rec, SimTime now) {
        Path p = rec.path.ToPath();
        if (!policy.Check(p)) {
          a.RaiseAlarm(rec.flow, AlarmReason::kPathConformance, {std::move(p)}, now);
        }
      });
}

void ConformanceAuditor::Start() {
  controller_->SubscribeAlarms([this](const Alarm& alarm) { OnAlarm(alarm); });
}

void ConformanceAuditor::OnAlarm(const Alarm& alarm) {
  if (alarm.reason != AlarmReason::kPathConformance) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  ++per_host_[alarm.host];
}

size_t ConformanceAuditor::total() const {
  controller_->FlushAlarms();
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t ConformanceAuditor::count_for(HostId host) const {
  controller_->FlushAlarms();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_host_.find(host);
  return it == per_host_.end() ? 0 : it->second;
}

int InstallIsolationCheck(EdgeAgent& agent, std::unordered_set<IpAddr> group_a,
                          std::unordered_set<IpAddr> group_b) {
  return agent.AddRecordHook([ga = std::move(group_a), gb = std::move(group_b)](
                                 EdgeAgent& a, const TibRecord& rec, SimTime now) {
    bool ab = ga.count(rec.flow.src_ip) > 0 && gb.count(rec.flow.dst_ip) > 0;
    bool ba = gb.count(rec.flow.src_ip) > 0 && ga.count(rec.flow.dst_ip) > 0;
    if (ab || ba) {
      a.RaiseAlarm(rec.flow, AlarmReason::kPathConformance, {rec.path.ToPath()}, now);
    }
  });
}

}  // namespace pathdump
