// Silent random packet-drop debugging application (§2.3, §4.3).
//
// Event-driven workflow (Fig. 3): end hosts run the installed TCP
// performance monitoring query; every POOR_PERF alarm makes the controller
// fetch the suffering flow's path(s) from the destination host's TIB (a
// failure signature) and re-run MAX-COVERAGE.  Accuracy improves as
// signatures accumulate.

#ifndef PATHDUMP_SRC_APPS_SILENT_DROP_H_
#define PATHDUMP_SRC_APPS_SILENT_DROP_H_

#include <vector>

#include "src/apps/max_coverage.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"

namespace pathdump {

class SilentDropDebugger {
 public:
  SilentDropDebugger(Controller* controller, AgentFleet* fleet)
      : controller_(controller), fleet_(fleet) {}

  // Subscribes to the controller's alarm stream.
  void Start();

  // Alarm entry point (also callable directly when replaying a timeline).
  void OnAlarm(const Alarm& alarm);

  // Current greedy-localization hypothesis.
  std::vector<LinkId> Hypothesis() const { return localizer_.Localize(); }

  // Accuracy of the current hypothesis vs the ground-truth faulty set.
  LocalizationAccuracy Accuracy(const std::vector<LinkId>& truth) const {
    return MaxCoverageLocalizer::Evaluate(Hypothesis(), truth);
  }

  size_t signature_count() const { return localizer_.signature_count(); }
  size_t alarms_seen() const { return alarms_seen_; }

 private:
  Controller* controller_;
  AgentFleet* fleet_;
  MaxCoverageLocalizer localizer_;
  size_t alarms_seen_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_SILENT_DROP_H_
