// Silent random packet-drop debugging application (§2.3, §4.3).
//
// Event-driven workflow (Fig. 3): end hosts run the installed TCP
// performance monitoring query; every POOR_PERF alarm makes the controller
// fetch the suffering flow's path(s) from the destination host's TIB (a
// failure signature) and re-run MAX-COVERAGE.  Accuracy improves as
// signatures accumulate.
//
// Runs as a subscriber on the controller's alarm pipeline
// (src/controller/alarm_pipeline.h): OnAlarm is invoked on a dispatch
// worker, so the localizer state is mutex-guarded, and the read accessors
// flush the pipeline first — callers always observe every alarm submitted
// before the call.

#ifndef PATHDUMP_SRC_APPS_SILENT_DROP_H_
#define PATHDUMP_SRC_APPS_SILENT_DROP_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/apps/max_coverage.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"

namespace pathdump {

class SilentDropDebugger {
 public:
  SilentDropDebugger(Controller* controller, AgentFleet* fleet)
      : controller_(controller), fleet_(fleet) {}

  // Subscribes to the controller's alarm pipeline.
  void Start();

  // Alarm entry point (also callable directly when replaying a timeline).
  // Thread-safe; runs on a pipeline dispatch worker after Start().
  void OnAlarm(const Alarm& alarm);

  // Current greedy-localization hypothesis (flushes pending alarms).
  std::vector<LinkId> Hypothesis() const;

  // Accuracy of the current hypothesis vs the ground-truth faulty set.
  LocalizationAccuracy Accuracy(const std::vector<LinkId>& truth) const {
    return MaxCoverageLocalizer::Evaluate(Hypothesis(), truth);
  }

  size_t signature_count() const;
  size_t alarms_seen() const;

 private:
  Controller* controller_;
  AgentFleet* fleet_;
  mutable std::mutex mu_;  // guards localizer_
  MaxCoverageLocalizer localizer_;
  std::atomic<size_t> alarms_seen_{0};
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_APPS_SILENT_DROP_H_
