#include "src/apps/silent_drop.h"

namespace pathdump {

void SilentDropDebugger::Start() {
  controller_->SubscribeAlarms([this](const Alarm& alarm) { OnAlarm(alarm); });
}

void SilentDropDebugger::OnAlarm(const Alarm& alarm) {
  if (alarm.reason != AlarmReason::kPoorPerf) {
    return;
  }
  ++alarms_seen_;
  // Failure signature: the path(s) this flow took, served by the TIB of the
  // flow's destination host (host API results are for local flows, §2.1).
  EdgeAgent* dst_agent = fleet_->agent_by_ip(alarm.flow.dst_ip);
  if (dst_agent == nullptr) {
    return;
  }
  LinkId any{kInvalidNode, kInvalidNode};
  std::vector<Path> paths =
      dst_agent->GetPaths(alarm.flow, any, TimeRange::All());
  for (const Path& p : paths) {
    localizer_.AddSignature(p);
  }
}

}  // namespace pathdump
