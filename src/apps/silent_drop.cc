#include "src/apps/silent_drop.h"

namespace pathdump {

void SilentDropDebugger::Start() {
  controller_->SubscribeAlarms([this](const Alarm& alarm) { OnAlarm(alarm); });
}

void SilentDropDebugger::OnAlarm(const Alarm& alarm) {
  if (alarm.reason != AlarmReason::kPoorPerf) {
    return;
  }
  ++alarms_seen_;
  // Failure signature: the path(s) this flow took, served by the TIB of the
  // flow's destination host (host API results are for local flows, §2.1).
  // GetPaths takes the agent's reader lock, so this is safe mid-run while
  // the data path keeps ingesting into the same agent.
  EdgeAgent* dst_agent = fleet_->agent_by_ip(alarm.flow.dst_ip);
  if (dst_agent == nullptr) {
    return;
  }
  LinkId any{kInvalidNode, kInvalidNode};
  std::vector<Path> paths =
      dst_agent->GetPaths(alarm.flow, any, TimeRange::All());
  std::lock_guard<std::mutex> lock(mu_);
  for (const Path& p : paths) {
    localizer_.AddSignature(p);
  }
}

std::vector<LinkId> SilentDropDebugger::Hypothesis() const {
  controller_->FlushAlarms();
  std::lock_guard<std::mutex> lock(mu_);
  return localizer_.Localize();
}

size_t SilentDropDebugger::signature_count() const {
  controller_->FlushAlarms();
  std::lock_guard<std::mutex> lock(mu_);
  return localizer_.signature_count();
}

size_t SilentDropDebugger::alarms_seen() const {
  controller_->FlushAlarms();
  return alarms_seen_.load();
}

}  // namespace pathdump
