#include "src/workload/flow_size.h"

#include <cmath>

namespace pathdump {

WebSearchFlowSizes::WebSearchFlowSizes() {
  // CDF knots (fraction of flows, size in bytes) approximating the
  // web-search workload of [10]/pFabric.
  points_ = {
      {0.00, 1e3},   {0.15, 6e3},   {0.20, 13e3},  {0.30, 19e3},  {0.40, 33e3},
      {0.53, 53e3},  {0.60, 133e3}, {0.70, 667e3}, {0.80, 1467e3}, {0.90, 3333e3},
      {0.97, 6667e3}, {1.00, 20000e3},
  };
  // Numeric mean via fine quantile integration.
  double acc = 0;
  const int steps = 10000;
  Rng tmp(7);
  for (int i = 0; i < steps; ++i) {
    double u = (double(i) + 0.5) / double(steps);
    // Inline inverse CDF (same as Sample's math).
    for (size_t j = 1; j < points_.size(); ++j) {
      if (u <= points_[j].cdf) {
        double f = (u - points_[j - 1].cdf) / (points_[j].cdf - points_[j - 1].cdf);
        double lo = std::log(points_[j - 1].bytes);
        double hi = std::log(points_[j].bytes);
        acc += std::exp(lo + f * (hi - lo));
        break;
      }
    }
  }
  mean_ = acc / double(steps);
}

uint64_t WebSearchFlowSizes::Sample(Rng& rng) const {
  double u = rng.Uniform01();
  for (size_t j = 1; j < points_.size(); ++j) {
    if (u <= points_[j].cdf) {
      double f = (u - points_[j - 1].cdf) / (points_[j].cdf - points_[j - 1].cdf);
      double lo = std::log(points_[j - 1].bytes);
      double hi = std::log(points_[j].bytes);
      return uint64_t(std::exp(lo + f * (hi - lo)));
    }
  }
  return uint64_t(points_.back().bytes);
}

double WebSearchFlowSizes::MeanBytes() const { return mean_; }

}  // namespace pathdump
