// Flow-size distributions for workload generation.
//
// The paper generates traffic "based on the web traffic model in [10]"
// (pFabric / DCTCP web-search): heavy-tailed, mostly sub-100 KB flows with
// a tail of multi-MB responses.  WebSearchFlowSizes samples from a
// piecewise log-linear fit of that distribution's published CDF.

#ifndef PATHDUMP_SRC_WORKLOAD_FLOW_SIZE_H_
#define PATHDUMP_SRC_WORKLOAD_FLOW_SIZE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace pathdump {

// Interface: samples one flow size in bytes.
class FlowSizeSampler {
 public:
  virtual ~FlowSizeSampler() = default;
  virtual uint64_t Sample(Rng& rng) const = 0;
  // Mean flow size (bytes), used for load calibration.
  virtual double MeanBytes() const = 0;
};

// Web-search workload [10]: piecewise log-linear inverse CDF.
class WebSearchFlowSizes : public FlowSizeSampler {
 public:
  WebSearchFlowSizes();
  uint64_t Sample(Rng& rng) const override;
  double MeanBytes() const override;

 private:
  struct Point {
    double cdf;
    double bytes;
  };
  std::vector<Point> points_;
  double mean_ = 0;
};

// Fixed-size flows (microbenchmarks, spray experiments).
class FixedFlowSizes : public FlowSizeSampler {
 public:
  explicit FixedFlowSizes(uint64_t bytes) : bytes_(bytes) {}
  uint64_t Sample(Rng&) const override { return bytes_; }
  double MeanBytes() const override { return double(bytes_); }

 private:
  uint64_t bytes_;
};

// Pareto-distributed flow sizes (sensitivity experiments).
class ParetoFlowSizes : public FlowSizeSampler {
 public:
  ParetoFlowSizes(uint64_t min_bytes, double alpha) : min_(min_bytes), alpha_(alpha) {}
  uint64_t Sample(Rng& rng) const override {
    return uint64_t(rng.Pareto(double(min_), alpha_));
  }
  double MeanBytes() const override {
    return alpha_ > 1 ? alpha_ * double(min_) / (alpha_ - 1) : double(min_) * 10;
  }

 private:
  uint64_t min_;
  double alpha_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_WORKLOAD_FLOW_SIZE_H_
