// Flow arrival generation.
//
// Produces time-ordered FlowDesc lists: Poisson arrivals per source host
// (the paper estimates ~67 flows/s/server from [19]), destinations drawn
// by policy, sizes from a FlowSizeSampler.

#ifndef PATHDUMP_SRC_WORKLOAD_TRAFFIC_GEN_H_
#define PATHDUMP_SRC_WORKLOAD_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/topology/topology.h"
#include "src/workload/flow_size.h"

namespace pathdump {

struct FlowDesc {
  FiveTuple tuple;
  HostId src = kInvalidNode;
  HostId dst = kInvalidNode;
  uint64_t bytes = 0;
  SimTime start = 0;
};

enum class DstPolicy {
  kUniformOther,  // any other host
  kInterPod,      // host in a different pod (fat-tree only)
  kFixed,         // everyone talks to fixed_dst
};

struct TrafficParams {
  double flows_per_sec_per_host = 10.0;
  SimTime duration = 10 * kNsPerSec;
  DstPolicy dst_policy = DstPolicy::kUniformOther;
  HostId fixed_dst = kInvalidNode;
  // Sources; empty = all hosts of the topology.
  std::vector<HostId> sources;
  uint64_t seed = 1;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const Topology* topo, const FlowSizeSampler* sizes)
      : topo_(topo), sizes_(sizes) {}

  // Generates flows sorted by start time.  Port numbers make each tuple
  // unique within the run.
  std::vector<FlowDesc> Generate(const TrafficParams& params) const;

  // Arrival rate (flows/s/host) that produces `utilization` average load on
  // a host's access link of `link_bps` given this sampler's mean flow size.
  double RateForLoad(double utilization, double link_bps) const;

 private:
  const Topology* topo_;
  const FlowSizeSampler* sizes_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_WORKLOAD_TRAFFIC_GEN_H_
