#include "src/workload/traffic_gen.h"

#include <algorithm>

namespace pathdump {

std::vector<FlowDesc> TrafficGenerator::Generate(const TrafficParams& params) const {
  Rng rng(params.seed);
  std::vector<FlowDesc> out;
  const std::vector<HostId>& sources =
      params.sources.empty() ? topo_->hosts() : params.sources;
  const std::vector<HostId>& all_hosts = topo_->hosts();

  double mean_gap_ns = double(kNsPerSec) / std::max(params.flows_per_sec_per_host, 1e-9);
  uint16_t next_port = 10000;

  for (HostId src : sources) {
    SimTime t = SimTime(rng.Exponential(mean_gap_ns));
    while (t < params.duration) {
      FlowDesc f;
      f.src = src;
      f.start = t;
      f.bytes = std::max<uint64_t>(sizes_->Sample(rng), 64);

      // Destination per policy.
      switch (params.dst_policy) {
        case DstPolicy::kFixed:
          f.dst = params.fixed_dst;
          break;
        case DstPolicy::kInterPod: {
          int my_pod = topo_->node(topo_->TorOfHost(src)).pod;
          HostId dst = src;
          for (int attempts = 0; attempts < 64; ++attempts) {
            dst = all_hosts[rng.UniformInt(uint32_t(all_hosts.size()))];
            if (dst != src && topo_->node(topo_->TorOfHost(dst)).pod != my_pod) {
              break;
            }
          }
          f.dst = dst;
          break;
        }
        case DstPolicy::kUniformOther:
        default: {
          HostId dst = src;
          while (dst == src) {
            dst = all_hosts[rng.UniformInt(uint32_t(all_hosts.size()))];
          }
          f.dst = dst;
          break;
        }
      }
      if (f.dst == src || f.dst == kInvalidNode) {
        t += SimTime(rng.Exponential(mean_gap_ns));
        continue;
      }
      f.tuple.src_ip = topo_->IpOfHost(f.src);
      f.tuple.dst_ip = topo_->IpOfHost(f.dst);
      f.tuple.src_port = next_port++;
      if (next_port < 10000) {
        next_port = 10000;  // wrapped
      }
      f.tuple.dst_port = 80;
      f.tuple.protocol = kProtoTcp;
      out.push_back(f);
      t += SimTime(rng.Exponential(mean_gap_ns));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlowDesc& a, const FlowDesc& b) { return a.start < b.start; });
  return out;
}

double TrafficGenerator::RateForLoad(double utilization, double link_bps) const {
  double mean_bits = sizes_->MeanBytes() * 8.0;
  return utilization * link_bps / mean_bits;
}

}  // namespace pathdump
