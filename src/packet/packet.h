// Packet representation.
//
// A simulated packet carries exactly the header state PathDump cares about:
// the 5-tuple, TCP flags/sequence (for the retransmission monitor and flow
// eviction), the DSCP field, and the VLAN tag stack holding sampled link
// labels.  `trace` records the ground-truth switch trajectory so tests can
// verify that decoded paths match reality — production PathDump never sees
// it, and no library component other than tests reads it.

#ifndef PATHDUMP_SRC_PACKET_PACKET_H_
#define PATHDUMP_SRC_PACKET_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

// Size of one 802.1Q tag on the wire (bytes).
inline constexpr uint32_t kVlanTagBytes = 4;
// Minimum / maximum Ethernet frame payload sizes we simulate.
inline constexpr uint32_t kMinPacketBytes = 64;
inline constexpr uint32_t kMaxPacketBytes = 1500;
// Default MSS used by flow generators when splitting flows into packets.
inline constexpr uint32_t kDefaultMss = 1460;

struct Packet {
  FiveTuple flow;
  HostId src_host = kInvalidNode;
  HostId dst_host = kInvalidNode;

  // TCP-ish metadata.
  uint32_t seq = 0;  // segment index within the flow
  bool syn = false;
  bool fin = false;
  bool rst = false;
  bool is_retx = false;

  uint32_t size_bytes = kMinPacketBytes;

  // --- Trajectory header state (what the network writes) ---
  // DSCP field; 0 means unused (VL2 stores the first sampled link here).
  LinkLabel dscp = 0;
  // VLAN tag stack in *push order*: tags.front() was pushed first.
  std::vector<LinkLabel> tags;

  // --- Simulation bookkeeping ---
  SimTime sent_at = 0;
  int hop_count = 0;  // switches visited so far (loop safety valve)
  // Ground truth trajectory (switches in order).  Tests only.
  Path trace;

  // Bytes on the wire including trajectory tags.
  uint32_t WireBytes() const { return size_bytes + kVlanTagBytes * uint32_t(tags.size()); }

  // Number of VLAN tags currently carried.
  int TagCount() const { return int(tags.size()); }

  void PushTag(LinkLabel label) { tags.push_back(label); }
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_PACKET_PACKET_H_
