#include "src/cherrypick/codec.h"

#include <functional>

#include "src/topology/fat_tree.h"
#include "src/topology/vl2.h"

namespace pathdump {

CherryPickCodec::CherryPickCodec(const Topology* topo, const LinkLabelMap* labels)
    : topo_(topo), labels_(labels) {}

void CherryPickCodec::SetGenericPushers(std::set<SwitchId> pushers) {
  generic_pushers_ = std::move(pushers);
  generic_push_all_ = false;
}

bool CherryPickCodec::IsGenericPusher(SwitchId sw) const {
  return generic_push_all_ || generic_pushers_.count(sw) > 0;
}

TagAction CherryPickCodec::OnForward(SwitchId sw, NodeId in_nbr, NodeId out_nbr, HostId dst,
                                     int current_tags, LinkLabel current_dscp) const {
  switch (topo_->kind()) {
    case TopologyKind::kFatTree:
      return OnForwardFatTree(sw, in_nbr, out_nbr, dst, current_tags);
    case TopologyKind::kVl2:
      return OnForwardVl2(sw, in_nbr, out_nbr, current_dscp);
    case TopologyKind::kGeneric:
      return OnForwardGeneric(sw, in_nbr);
  }
  return {};
}

TagAction CherryPickCodec::OnForwardFatTree(SwitchId sw, NodeId in_nbr, NodeId out_nbr,
                                            HostId dst, int current_tags) const {
  TagAction act;
  if (in_nbr == kInvalidNode || topo_->IsHost(in_nbr)) {
    return act;  // host-facing ingress links are never sampled
  }
  NodeRole my_role = topo_->RoleOf(sw);
  NodeRole in_role = topo_->RoleOf(in_nbr);
  NodeRole out_role = topo_->IsHost(out_nbr) ? NodeRole::kHost : topo_->RoleOf(out_nbr);

  bool push = false;
  if (my_role == NodeRole::kCore) {
    // Cores always sample their ingress (agg-core) link.
    push = true;
  } else if (my_role == NodeRole::kAgg) {
    // Intra-pod apex: from ToR, down to ToR, destination in *this* pod
    // (real rules match the dst IP prefix), no tag yet.  The dst-pod
    // restriction keeps a bounce-down toward a remote destination (whose
    // trajectory is sampled at the subsequent valley and core) from
    // consuming a tag the detour needs.
    int dst_pod = topo_->node(topo_->TorOfHost(dst)).pod;
    push = in_role == NodeRole::kTor && out_role == NodeRole::kTor &&
           dst_pod == topo_->node(sw).pod && current_tags == 0;
  } else if (my_role == NodeRole::kTor) {
    // Valley: came from above, going back up.
    push = in_role == NodeRole::kAgg && out_role == NodeRole::kAgg;
  }
  if (push) {
    act.push_vlan = true;
    act.vlan = labels_->LabelOf(in_nbr, sw);
  }
  return act;
}

TagAction CherryPickCodec::OnForwardVl2(SwitchId sw, NodeId in_nbr, NodeId out_nbr,
                                        LinkLabel current_dscp) const {
  TagAction act;
  if (in_nbr == kInvalidNode || topo_->IsHost(in_nbr)) {
    return act;
  }
  NodeRole my_role = topo_->RoleOf(sw);
  NodeRole in_role = topo_->RoleOf(in_nbr);
  NodeRole out_role = topo_->IsHost(out_nbr) ? NodeRole::kHost : topo_->RoleOf(out_nbr);

  if (my_role == NodeRole::kAgg && in_role == NodeRole::kTor && current_dscp == 0) {
    // First sampled link rides in DSCP: which of the ToR's uplinks we are.
    auto [a0, a1] = vl2::AggsOfTor(*topo_, in_nbr);
    int uplink = (sw == a0) ? 0 : (sw == a1 ? 1 : -1);
    if (uplink >= 0) {
      act.set_dscp = true;
      act.dscp = labels_->DscpLabelOfUplink(uplink);
    }
    return act;
  }
  if (my_role == NodeRole::kIntermediate) {
    act.push_vlan = true;
    act.vlan = labels_->LabelOf(in_nbr, sw);
    return act;
  }
  if (my_role == NodeRole::kAgg && in_role == NodeRole::kIntermediate &&
      out_role == NodeRole::kTor) {
    act.push_vlan = true;
    act.vlan = labels_->LabelOf(in_nbr, sw);
    return act;
  }
  return act;
}

TagAction CherryPickCodec::OnForwardGeneric(SwitchId sw, NodeId in_nbr) const {
  TagAction act;
  if (in_nbr == kInvalidNode || topo_->IsHost(in_nbr) || !IsGenericPusher(sw)) {
    return act;
  }
  act.push_vlan = true;
  act.vlan = labels_->LabelOf(in_nbr, sw);
  return act;
}

std::optional<Path> CherryPickCodec::Decode(HostId src, HostId dst, LinkLabel dscp,
                                            const std::vector<LinkLabel>& tags) const {
  switch (topo_->kind()) {
    case TopologyKind::kFatTree:
      return DecodeFatTree(src, dst, tags);
    case TopologyKind::kVl2:
      return DecodeVl2(src, dst, dscp, tags);
    case TopologyKind::kGeneric:
      return DecodeGeneric(src, dst, tags);
  }
  return std::nullopt;
}

std::optional<Path> CherryPickCodec::DecodeFatTree(HostId src, HostId dst,
                                                   const std::vector<LinkLabel>& tags) const {
  const FatTreeMeta& m = *topo_->fat_tree();
  const int half = m.k / 2;
  const SwitchId src_tor = topo_->TorOfHost(src);
  const SwitchId dst_tor = topo_->TorOfHost(dst);
  const int sp = topo_->node(src_tor).pod;
  const int dp = topo_->node(dst_tor).pod;

  // Parse each tag up front; any unparsable tag is a ground-truth violation.
  std::vector<FatTreeLabel> parsed;
  parsed.reserve(tags.size());
  for (LinkLabel t : tags) {
    auto p = labels_->ParseFatTree(t);
    if (!p) {
      return std::nullopt;
    }
    parsed.push_back(*p);
  }

  auto agg_at = [&](int pod, int idx) { return m.agg[size_t(pod)][size_t(idx)]; };
  auto tor_at = [&](int pod, int idx) { return m.tor[size_t(pod)][size_t(idx)]; };

  if (parsed.empty()) {
    // Intra-rack delivery only.
    if (src_tor != dst_tor) {
      return std::nullopt;
    }
    return Path{src_tor};
  }

  if (parsed.size() == 1) {
    const FatTreeLabel& l = parsed[0];
    if (l.type == FatTreeLabelType::kTorAgg) {
      // Intra-pod apex push: label's ToR part must be the source ToR.
      if (sp != dp || src_tor == dst_tor || l.tor_index != topo_->node(src_tor).index) {
        return std::nullopt;
      }
      return Path{src_tor, agg_at(sp, l.agg_index), dst_tor};
    }
    // Agg-core label: inter-pod shortest path.
    if (sp == dp) {
      return std::nullopt;
    }
    int g = l.core_index / half;
    return Path{src_tor, agg_at(sp, g), m.core[size_t(l.core_index)], agg_at(dp, g), dst_tor};
  }

  if (parsed.size() == 2) {
    const FatTreeLabel& a = parsed[0];
    const FatTreeLabel& b = parsed[1];

    if (a.type == FatTreeLabelType::kTorAgg && b.type == FatTreeLabelType::kAggCore) {
      // Source-pod bounce: srcTor -> aggA (all uplinks dead) -> torY (valley,
      // pushed a = (y, aggA)) -> aggG -> core (pushed b) -> down.
      if (sp == dp) {
        return std::nullopt;
      }
      int g = b.core_index / half;
      NodeId agg_first = agg_at(sp, a.agg_index);
      NodeId tor_valley = tor_at(sp, a.tor_index);
      if (a.tor_index == topo_->node(src_tor).index) {
        return std::nullopt;  // a valley cannot be the source ToR
      }
      return Path{src_tor,           agg_first,       tor_valley, agg_at(sp, g),
                  m.core[size_t(b.core_index)], agg_at(dp, g), dst_tor};
    }

    if (a.type == FatTreeLabelType::kAggCore && b.type == FatTreeLabelType::kTorAgg) {
      // Destination-pod ToR bounce: ... core -> aggG -> torX (valley, pushed
      // b = (x, g)) -> aggNext (unlabelled; deterministic failover policy:
      // next index) -> dstTor.
      if (sp == dp) {
        return std::nullopt;
      }
      int g = a.core_index / half;
      if (b.agg_index != g) {
        return std::nullopt;
      }
      NodeId tor_valley = tor_at(dp, b.tor_index);
      if (b.tor_index == topo_->node(dst_tor).index) {
        return std::nullopt;
      }
      int next_agg = (g + 1) % half;
      return Path{src_tor,
                  agg_at(sp, g),
                  m.core[size_t(a.core_index)],
                  agg_at(dp, g),
                  tor_valley,
                  agg_at(dp, next_agg),
                  dst_tor};
    }

    if (a.type == FatTreeLabelType::kTorAgg && b.type == FatTreeLabelType::kTorAgg) {
      // Intra-pod bounce: apex push at aggA (a = (srcTor, aggA)), valley push
      // at torX (b = (x, aggA)), then failover agg -> dstTor.
      if (sp != dp || a.agg_index != b.agg_index ||
          a.tor_index != topo_->node(src_tor).index ||
          b.tor_index == topo_->node(dst_tor).index) {
        return std::nullopt;
      }
      int next_agg = (b.agg_index + 1) % half;
      return Path{src_tor, agg_at(sp, a.agg_index), tor_at(sp, b.tor_index), agg_at(sp, next_agg),
                  dst_tor};
    }

    // Two agg-core labels would mean an up-bounce at an aggregate, which the
    // failover policy never produces (a core's group maps to the same agg in
    // every pod, so such a bounce cannot make progress).
    return std::nullopt;
  }

  // Three or more labels: suspiciously long path — such packets are punted
  // in-network and never reach the edge decoder.
  return std::nullopt;
}

std::optional<Path> CherryPickCodec::DecodeVl2(HostId src, HostId dst, LinkLabel dscp,
                                               const std::vector<LinkLabel>& tags) const {
  const Vl2Meta& m = *topo_->vl2();
  const SwitchId src_tor = topo_->TorOfHost(src);
  const SwitchId dst_tor = topo_->TorOfHost(dst);

  if (dscp == 0) {
    if (!tags.empty() || src_tor != dst_tor) {
      return std::nullopt;
    }
    return Path{src_tor};
  }
  int uplink = labels_->UplinkIndexOfDscp(dscp);
  if (uplink < 0 || uplink > 1 || src_tor == dst_tor) {
    return std::nullopt;
  }
  auto [a0, a1] = vl2::AggsOfTor(*topo_, src_tor);
  NodeId agg_up = uplink == 0 ? a0 : a1;

  if (tags.empty()) {
    // Shared-aggregate 3-switch path.
    if (!topo_->Adjacent(agg_up, dst_tor)) {
      return std::nullopt;
    }
    return Path{src_tor, agg_up, dst_tor};
  }
  if (tags.size() != 2) {
    return std::nullopt;
  }
  // tags[0]: agg-int pushed by the intermediate; tags[1]: int-agg pushed by
  // the down-side aggregate.
  int up_agg_idx = int(tags[0]) / m.num_intermediates;
  int mid_idx = int(tags[0]) % m.num_intermediates;
  if (up_agg_idx != topo_->node(agg_up).index || mid_idx >= m.num_intermediates) {
    return std::nullopt;
  }
  int down_agg_idx = int(tags[1]) / m.num_intermediates;
  int mid_idx2 = int(tags[1]) % m.num_intermediates;
  if (mid_idx2 != mid_idx || down_agg_idx >= m.num_aggs) {
    return std::nullopt;
  }
  NodeId mid = m.intermediate[size_t(mid_idx)];
  NodeId agg_down = m.agg[size_t(down_agg_idx)];
  if (!topo_->Adjacent(agg_down, dst_tor)) {
    return std::nullopt;
  }
  return Path{src_tor, agg_up, mid, agg_down, dst_tor};
}

std::optional<Path> CherryPickCodec::DecodeGeneric(HostId src, HostId dst,
                                                   const std::vector<LinkLabel>& tags) const {
  const SwitchId src_tor = topo_->TorOfHost(src);
  const SwitchId dst_tor = topo_->TorOfHost(dst);
  const size_t max_depth = tags.size() * 2 + 8;

  std::vector<Path> matches;
  Path cur{src_tor};

  // DFS over (node, consumed-tag-count).  A sampling switch pushes its
  // ingress link label when it forwards — which every visited switch does
  // (interior switches forward onward; the final ToR forwards to the host)
  // — so arrival at a sampling switch over a switch link must consume the
  // next expected tag or the branch is pruned.
  std::function<void(NodeId, NodeId, size_t)> dfs = [&](NodeId node, NodeId prev,
                                                        size_t consumed) {
    if (matches.size() >= 2 || cur.size() > max_depth) {
      return;
    }
    if (prev != kInvalidNode && !topo_->IsHost(prev) && IsGenericPusher(node)) {
      LinkLabel expect = labels_->LabelOf(prev, node);
      if (consumed >= tags.size() || tags[consumed] != expect) {
        return;  // inconsistent with the recorded trajectory
      }
      ++consumed;
    }
    if (node == dst_tor && consumed == tags.size()) {
      matches.push_back(cur);
      // Keep exploring: a second consistent delivery would make the decode
      // ambiguous, and ambiguity must be reported as failure.
    }
    for (NodeId nb : topo_->NeighborsOf(node)) {
      if (topo_->IsHost(nb) || nb == prev) {
        continue;
      }
      cur.push_back(nb);
      dfs(nb, node, consumed);
      cur.pop_back();
    }
  };
  dfs(src_tor, kInvalidNode, 0);

  if (matches.size() != 1) {
    return std::nullopt;
  }
  return matches.front();
}

}  // namespace pathdump
