// Trajectory cache: memoizes (srcIP, DSCP, link labels) -> decoded path.
//
// The paper's trajectory-construction sub-module first consults a cache
// keyed by (srcIP, link IDs); on a miss it decodes against the topology and
// inserts the result (§3.2, Fig. 2).  A bounded LRU keeps memory at the
// ~10 MB envelope the paper reports for the whole decoding state.

#ifndef PATHDUMP_SRC_CHERRYPICK_TRAJECTORY_CACHE_H_
#define PATHDUMP_SRC_CHERRYPICK_TRAJECTORY_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace pathdump {

class TrajectoryCache {
 public:
  explicit TrajectoryCache(size_t capacity = 4096) : capacity_(capacity) {}

  // Returns the cached decode for this trajectory key, refreshing recency.
  std::optional<Path> Lookup(IpAddr src_ip, LinkLabel dscp, const std::vector<LinkLabel>& tags);

  // Inserts (or refreshes) a decode result, evicting the LRU entry if full.
  void Insert(IpAddr src_ip, LinkLabel dscp, const std::vector<LinkLabel>& tags, Path path);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static uint64_t KeyOf(IpAddr src_ip, LinkLabel dscp, const std::vector<LinkLabel>& tags) {
    uint64_t h = HashMix64((uint64_t(src_ip) << 16) | dscp);
    for (LinkLabel t : tags) {
      h = HashCombine(h, t);
    }
    return h;
  }

  struct Entry {
    uint64_t key;
    Path path;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CHERRYPICK_TRAJECTORY_CACHE_H_
