// CherryPick trajectory codec: sampling rules (encoder) and path
// reconstruction (decoder).
//
// Encoder.  Switches run *static* match-action rules deciding whether to
// embed the label of a packet's ingress link before forwarding (§3.1).  The
// rules are expressible as OpenFlow matches on (ingress port, egress port
// group, VLAN-tag presence, destination prefix):
//
//  FatTree:
//   * Core switches always push their ingress (agg-core) link label.
//   * An aggregate pushes its ingress (tor-agg) link label only when the
//     packet came from a ToR, is being forwarded down to a ToR, the
//     destination is in this pod, and no tag is present yet — i.e. it is
//     the apex of an intra-pod path.
//   * A ToR pushes its ingress (agg-tor) link label when the packet came
//     from an aggregate and is being forwarded back up — a bounce "valley"
//     caused by failover.
//   Net effect: shortest paths carry 1 label, each 2-hop detour adds one,
//   so 2 VLAN tags cover shortest+2; a third tag marks a suspiciously long
//   path and gets the packet punted (§3.1, §4.5).
//
//  VL2: the first sampled link (the ToR-agg uplink, identified by its
//   uplink index) rides in the 6-bit DSCP field, set by the aggregate when
//   the packet arrives from a ToR and DSCP is unused; intermediates push
//   their ingress (agg-int) label; the down-side aggregate pushes its
//   ingress (int-agg) label when forwarding to a ToR.  A shortest VL2 path
//   thus ends with one DSCP value and two VLAN tags, exactly as §3.1 says.
//
//  Generic topologies: operator-designated sampling switches push their
//   ingress link label (every switch by default).  This is how the paper's
//   hand-built Fig. 4 / Fig. 9 scenarios configure tracing.
//
// Decoder.  Maps (srcIP, DSCP, ordered labels, dstIP) back to the full
// switch path using the static topology plus — for legs that failover left
// unlabelled — the deterministic failover policy, which the paper pushes to
// end hosts as part of the forwarding-policy configuration (§2.2).
// Returns nullopt for infeasible tag sequences; PathDump treats that as a
// ground-truth violation and raises an alarm (§2.4).

#ifndef PATHDUMP_SRC_CHERRYPICK_CODEC_H_
#define PATHDUMP_SRC_CHERRYPICK_CODEC_H_

#include <optional>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/topology/link_labels.h"
#include "src/topology/topology.h"

namespace pathdump {

// Tagging decision a switch applies while forwarding one packet.
struct TagAction {
  bool push_vlan = false;
  LinkLabel vlan = kInvalidLabel;
  bool set_dscp = false;
  LinkLabel dscp = 0;
};

class CherryPickCodec {
 public:
  // `topo` and `labels` must outlive the codec.
  CherryPickCodec(const Topology* topo, const LinkLabelMap* labels);

  // --- Encoder ---

  // Sampling decision for a packet at `sw`, arrived from `in_nbr` (the
  // source host for first-hop ToRs), being forwarded to `out_nbr`, headed
  // for destination host `dst` (real rules match the dst IP prefix),
  // currently carrying `current_tags` VLAN tags and `current_dscp`
  // (0 = unused).
  TagAction OnForward(SwitchId sw, NodeId in_nbr, NodeId out_nbr, HostId dst, int current_tags,
                      LinkLabel current_dscp) const;

  // Generic topologies: restrict sampling to this switch set.  By default
  // every switch samples (push_all).
  void SetGenericPushers(std::set<SwitchId> pushers);
  bool IsGenericPusher(SwitchId sw) const;

  // --- Decoder ---

  // Reconstructs the switch path of a packet from src host to dst host
  // given its trajectory header (DSCP + VLAN labels in push order).
  std::optional<Path> Decode(HostId src, HostId dst, LinkLabel dscp,
                             const std::vector<LinkLabel>& tags) const;

  const Topology& topo() const { return *topo_; }
  const LinkLabelMap& labels() const { return *labels_; }

 private:
  TagAction OnForwardFatTree(SwitchId sw, NodeId in_nbr, NodeId out_nbr, HostId dst,
                             int current_tags) const;
  TagAction OnForwardVl2(SwitchId sw, NodeId in_nbr, NodeId out_nbr, LinkLabel current_dscp) const;
  TagAction OnForwardGeneric(SwitchId sw, NodeId in_nbr) const;

  std::optional<Path> DecodeFatTree(HostId src, HostId dst,
                                    const std::vector<LinkLabel>& tags) const;
  std::optional<Path> DecodeVl2(HostId src, HostId dst, LinkLabel dscp,
                                const std::vector<LinkLabel>& tags) const;
  std::optional<Path> DecodeGeneric(HostId src, HostId dst,
                                    const std::vector<LinkLabel>& tags) const;

  const Topology* topo_;
  const LinkLabelMap* labels_;
  bool generic_push_all_ = true;
  std::set<SwitchId> generic_pushers_;
};

}  // namespace pathdump

#endif  // PATHDUMP_SRC_CHERRYPICK_CODEC_H_
