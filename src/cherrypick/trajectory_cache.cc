#include "src/cherrypick/trajectory_cache.h"

namespace pathdump {

std::optional<Path> TrajectoryCache::Lookup(IpAddr src_ip, LinkLabel dscp,
                                            const std::vector<LinkLabel>& tags) {
  uint64_t key = KeyOf(src_ip, dscp, tags);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->path;
}

void TrajectoryCache::Insert(IpAddr src_ip, LinkLabel dscp, const std::vector<LinkLabel>& tags,
                             Path path) {
  uint64_t key = KeyOf(src_ip, dscp, tags);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->path = std::move(path);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(path)});
  map_[key] = lru_.begin();
}

}  // namespace pathdump
