// PathDump quickstart.
//
// Builds a 4-ary fat-tree, attaches a PathDump agent to every host, runs a
// little TCP traffic through the per-packet simulator, and then asks the
// questions an operator would ask: which flows crossed this link?  which
// path did that flow take?  how many bytes?  who are the top talkers?
//
//   ./quickstart

#include <cstdio>

#include "src/apps/traffic_measure.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"

using namespace pathdump;

int main() {
  // 1. The network: topology + switches with static CherryPick tag rules.
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  std::printf("fat-tree k=4: %zu hosts, %zu switches, %zu links\n", topo.hosts().size(),
              topo.switches().size(), topo.link_count());

  // 2. The edge: one PathDump agent per host, receiving every delivered
  // packet, decoding trajectories, and filling its local TIB.
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);

  // 3. The controller: knows every agent, runs distributed queries.
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  // 4. Traffic: a handful of TCP flows between random host pairs.
  HostId alice = topo.hosts()[0];
  HostId bob = topo.hosts().back();
  HostId carol = topo.hosts()[5];
  struct Spec {
    HostId src, dst;
    uint64_t bytes;
    uint16_t port;
  };
  for (const Spec& s : {Spec{alice, bob, 2'000'000, 10001}, Spec{carol, bob, 500'000, 10002},
                        Spec{alice, carol, 50'000, 10003}, Spec{bob, alice, 9'000'000, 10004}}) {
    FiveTuple flow{topo.IpOfHost(s.src), topo.IpOfHost(s.dst), s.port, 80, kProtoTcp};
    SimTime t = 0;
    for (Packet& p : SegmentFlow(flow, s.src, s.dst, s.bytes)) {
      net.InjectPacket(p, t);
      t += 10 * kNsPerUs;
    }
  }
  net.events().RunAll();
  fleet.FlushAll(net.events().now());
  std::printf("simulated: %llu packets injected, %llu delivered\n",
              (unsigned long long)net.stats().injected,
              (unsigned long long)net.stats().delivered);

  // 5. Ask questions (Table 1 host API).
  LinkId any{kInvalidNode, kInvalidNode};
  std::printf("\nflows that reached bob, with their decoded paths:\n");
  for (const Flow& f : fleet.agent(bob).GetFlows(any, TimeRange::All())) {
    CountSummary c = fleet.agent(bob).GetCount(f, TimeRange::All());
    std::printf("  %-36s via %-28s %8llu bytes %5llu pkts\n", FlowToString(f.id).c_str(),
                PathToString(f.path).c_str(), (unsigned long long)c.bytes,
                (unsigned long long)c.pkts);
  }

  // Which flows used bob's ToR uplink?  (wildcard link query)
  SwitchId bob_tor = topo.TorOfHost(bob);
  std::printf("\nflows entering ToR %s (link query <?, %s>):\n", topo.NameOf(bob_tor).c_str(),
              topo.NameOf(bob_tor).c_str());
  for (const Flow& f : fleet.agent(bob).GetFlows(LinkId{kInvalidNode, bob_tor},
                                                 TimeRange::All())) {
    std::printf("  %s\n", FlowToString(f.id).c_str());
  }

  // 6. Network-wide question via the controller (multi-level query).
  TopKFlows top =
      TopKAcrossHosts(controller, controller.registered_hosts(), 3, TimeRange::All());
  std::printf("\ntop-3 flows datacenter-wide (multi-level aggregation tree):\n");
  for (const auto& [bytes, flow] : top.items) {
    std::printf("  %8.2f MB  %s\n", double(bytes) / 1e6, FlowToString(flow).c_str());
  }
  std::printf("\ndone. next: see examples/loop_hunt.cpp and examples/silent_drop_hunt.cpp\n");
  return 0;
}
