// agent_worker: one EdgeAgent as its own process.
//
//   agent_worker <shm_name> <host_id> <tib_shards> [incarnation]
//
// Maps the shared-memory segment the controller created (AddShmPeer, or
// RestartPeer for incarnation > 0), says Hello carrying the incarnation
// number, and then serves the command ring until Shutdown:
//
//   Subscribe     -> register the standing query; deltas flow back over
//                    the data ring via the client's delta sink
//   Ingest        -> insert synthetic TIB records (tests/test_util.h) —
//                    both sides of the cross-process harness generate
//                    records from the same (seed, options), so the
//                    controller can poll an identical in-process twin and
//                    assert byte-identity without shipping records around
//   EpochTick     -> tick every standing query, then Ack with the token
//   ResyncRequest -> ship a full-baseline Snapshot for the subscription
//                    (crash recovery; see docs/ARCHITECTURE.md)
//   Shutdown      -> Bye, drain, exit 0
//
// The worker also watches the controller's pid (segment header): if the
// controller dies, the worker exits instead of lingering as an orphan
// holding the mapping.  tests/transport_multiproc_test.cc forks a fleet
// of these and SIGKILLs one mid-epoch to exercise crash semantics;
// tests/transport_chaos_test.cc restarts the victims and asserts full
// recovery.  PATHDUMP_FAULT_{SEED,DROP,CORRUPT,DELAY,DUP} install a
// seeded data-plane fault injector (rates per 10,000 frames);
// PATHDUMP_TIB_MAX_BYTES sets a TIB memory ceiling (epoch-windowed
// eviction — see docs/ARCHITECTURE.md).

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <signal.h>
#include <unistd.h>

#include "src/cherrypick/codec.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/edge/edge_agent.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/transport/transport.h"
#include "src/transport/wire.h"
#include "tests/test_util.h"

namespace {

bool ControllerAlive(pathdump::transport::ShmSegment& segment) {
  const uint32_t pid = segment.header()->controller_pid.load(std::memory_order_acquire);
  if (pid == 0) {
    return true;
  }
  return kill(pid_t(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pathdump;
  using namespace pathdump::transport;

  if (argc != 4 && argc != 5) {
    std::fprintf(stderr, "usage: %s <shm_name> <host_id> <tib_shards> [incarnation]\n",
                 argv[0]);
    return 1;
  }
  const std::string shm_name = argv[1];
  const HostId host = HostId(std::strtoul(argv[2], nullptr, 10));
  const size_t shards = std::strtoul(argv[3], nullptr, 10);
  const uint32_t incarnation = argc == 5 ? uint32_t(std::strtoul(argv[4], nullptr, 10)) : 0;

  // Tag every log line with this worker's identity.  The component
  // pointer must outlive the process, so the buffer is leaked on purpose.
  char* component = new char[32];
  std::snprintf(component, 32, "agent:%u", host);
  SetLogComponent(component);

  // Bounded connect: a restarted worker can race the hub's RestartPeer
  // segment creation, so retry with backoff instead of failing once.
  auto client = ShmAgentClient::OpenWithBackoff(shm_name, /*total_timeout_us=*/5'000'000);
  if (client == nullptr) {
    std::fprintf(stderr, "agent_worker: cannot map %s\n", shm_name.c_str());
    return 2;
  }
  const FaultInjectorConfig fault_cfg = FaultInjectorConfig::FromEnv();
  if (fault_cfg.any()) {
    // Per-host seed offset: a fleet sharing the env draws distinct but
    // reproducible fault sequences.
    FaultInjectorConfig cfg = fault_cfg;
    cfg.seed += host;
    client->SetFaultInjector(cfg);
  }

  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgentConfig cfg;
  cfg.tib_options.num_shards = shards;
  // Optional TIB memory ceiling (bytes); the chaos eviction-interplay
  // test sets this before forking so workers and their in-test twins
  // evict in lockstep (same inserts + same seal points + same ceiling =>
  // same retained window, in any process).
  if (const char* max_bytes = std::getenv("PATHDUMP_TIB_MAX_BYTES")) {
    cfg.tib_options.max_memory_bytes = std::strtoull(max_bytes, nullptr, 10);
  }
  EdgeAgent agent(host, &topo, &codec, cfg);
  agent.SetAlarmHandler(client->MakeAlarmSink());

  if (!client->SendHello(host, incarnation)) {
    return 3;
  }

  // Exit-time trace dump: set PATHDUMP_TRACE_OUT=<path> to capture this
  // worker's span ring as Chrome-trace JSON (path gets ".<host>" appended
  // so a fleet sharing the env var never clobbers itself).
  const char* trace_env = std::getenv("PATHDUMP_TRACE_OUT");
  auto dump_trace = [&] {
    if (trace_env == nullptr || trace_env[0] == '\0') {
      return;
    }
    const std::string path = std::string(trace_env) + "." + std::to_string(host);
    Tracer::Global().WriteChromeTraceFile(path.c_str());
  };

  // Periodic observability report: every ~5s of serving, log what moved
  // since the last report.  Diffing snapshots keeps the line small and
  // makes a quiet interval obvious (all zeros).
  MetricsSnapshot last_snap = MetricsRegistry::Global().Snapshot();
  auto last_report = std::chrono::steady_clock::now();
  auto report_if_due = [&] {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_report < std::chrono::seconds(5)) {
      return;
    }
    last_report = now;
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    MetricsSnapshot delta = snap.Diff(last_snap);
    last_snap = std::move(snap);
    Logf(LogLevel::kInfo,
         "interval: %llu tib inserts, %llu epoch ticks, %llu deltas (%llu B), %llu ring pushes",
         (unsigned long long)delta.counters["tib.inserts"],
         (unsigned long long)delta.counters["epoch.ticks"],
         (unsigned long long)delta.counters["standing.deltas_produced"],
         (unsigned long long)delta.counters["standing.delta_bytes_produced"],
         (unsigned long long)delta.counters["ring.delta_pushes"]);
  };

  for (;;) {
    DecodedFrame cmd;
    if (!client->PollCommand(&cmd, 200'000)) {
      if (!ControllerAlive(client->segment())) {
        dump_trace();
        return 0;  // controller died; don't linger as an orphan
      }
      report_if_due();
      continue;
    }
    switch (cmd.type) {
      case FrameType::kSubscribe:
        agent.RegisterStandingQuery(cmd.subscription_id, cmd.spec, client->MakeDeltaSink());
        break;
      case FrameType::kIngest: {
        testutil::SyntheticRecordOptions opt;
        opt.ip_space = cmd.ingest_ip_space;
        opt.switch_space = cmd.ingest_switch_space;
        // Convention shared with the controller-side twins: each agent
        // derives its stream as seed + host, so one broadcast Ingest
        // gives every host distinct-but-reproducible records.
        for (const TibRecord& rec : testutil::MakeSyntheticRecords(
                 int(cmd.ingest_count), cmd.ingest_seed + uint32_t(host), opt)) {
          agent.tib().Insert(rec);
        }
        break;
      }
      case FrameType::kEpochTick:
        agent.EpochTick();
        client->SendAck(host, cmd.token);
        break;
      case FrameType::kResyncRequest:
        // Full-baseline snapshot; the delta sink routes it to a
        // kSnapshot frame (never faulted) because QueryDelta::snapshot
        // is set.
        agent.ResyncStandingQuery(cmd.subscription_id);
        break;
      case FrameType::kShutdown:
        client->SendBye(host);
        dump_trace();
        return 0;
      default:
        break;  // data-plane frame types never arrive on the cmd ring
    }
    report_if_due();
  }
}
