// pathdump_cli — a batch command-line front end over a simulated
// datacenter, for poking at the system without writing code.
//
// Builds a FatTree(k), drives a web workload through the flow-level
// engine (plus an optional silent-drop fault), then executes the
// requested query/diagnosis:
//
//   pathdump_cli topk [k]           top-k flows via the aggregation tree
//   pathdump_cli flows <switch-id>  flows entering the given switch
//   pathdump_cli flowlist <switch>  distinct (flow, path) pairs entering
//                                   the switch, first-appearance order
//   pathdump_cli paths <host-id>    paths of flows received by a host
//   pathdump_cli matrix             ToR-to-ToR traffic matrix
//   pathdump_cli hunt               inject a silent dropper and localize it
//   pathdump_cli rules              static rule budget per switch role
//   pathdump_cli stats [k]          run a standing top-k workload, then dump
//                                   the process metrics registry (counters,
//                                   gauges, latency histograms)
//
// Options (before the command): --fat-tree <k>, --seed <n>,
// --seconds <s>, --workers <n> (controller query fan-out threads;
// results are byte-identical at any worker count), --standing (serve
// topk/flowlist from a standing subscription fed by epoch deltas during
// the run instead of a full-scan poll; the result is byte-identical —
// flowlist rides the per-record delta channel, topk the per-flow one),
// --trace-out <path> (write the span ring as Chrome-trace JSON on exit;
// open in chrome://tracing or Perfetto).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/silent_drop.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/apps/traffic_measure.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/switchsim/rule_budget.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

using namespace pathdump;

namespace {

struct Cli {
  int k = 4;
  uint64_t seed = 1;
  double seconds = 10;
  int workers = 1;
  bool standing = false;
  std::string command = "topk";
  std::string arg;
  std::string trace_out;
};

void Usage() {
  std::printf(
      "usage: pathdump_cli [--fat-tree k] [--seed n] [--seconds s] [--workers n] [--standing] "
      "[--trace-out path] "
      "<topk [k] | flows <switch> | flowlist <switch> | paths <host> | matrix | hunt | rules | "
      "stats [k]>\n");
}

// Writes the span ring on every exit path (the command handlers return
// from main directly).
struct TraceDumpOnExit {
  std::string path;
  ~TraceDumpOnExit() {
    if (path.empty()) {
      return;
    }
    if (Tracer::Global().WriteChromeTraceFile(path.c_str())) {
      std::printf("wrote %zu spans to %s\n", Tracer::Global().Snapshot().size(), path.c_str());
    } else {
      std::printf("failed to write trace to %s\n", path.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fat-tree") == 0 && i + 1 < argc) {
      cli.k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cli.seed = uint64_t(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      cli.seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cli.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--standing") == 0) {
      cli.standing = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      cli.trace_out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      cli.trace_out = argv[i] + 12;
    } else {
      break;
    }
  }
  if (i < argc) {
    cli.command = argv[i++];
  }
  if (i < argc) {
    cli.arg = argv[i];
  }
  if (cli.k < 2 || cli.k % 2 != 0 || cli.seconds <= 0 || cli.workers < 1) {
    Usage();
    return 2;
  }
  TraceDumpOnExit trace_dump{cli.trace_out};

  Topology topo = BuildFatTree(cli.k);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  controller.SetWorkerThreads(size_t(cli.workers));
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  if (cli.command == "rules") {
    std::printf("static rule budget, FatTree(%d):\n", cli.k);
    const FatTreeMeta& m = *topo.fat_tree();
    for (SwitchId sw : {m.tor[0][0], m.agg[0][0], m.core[0]}) {
      RuleBudget b = ComputeRuleBudget(topo, sw);
      std::printf("  %-6s forwarding=%-4d tagging=%-4d total=%d\n", topo.NameOf(sw).c_str(),
                  b.forwarding, b.tagging, b.total());
    }
    RuleBudget total = TotalRuleBudget(topo);
    std::printf("  network total: %d rules (one-time installation)\n", total.total());
    return 0;
  }

  // Drive the workload.
  SilentDropDebugger debugger(&controller, &fleet);
  FluidConfig fcfg;
  fcfg.seed = cli.seed;
  FluidSimulation fluid(&topo, &router, fcfg);
  LinkId fault{kInvalidNode, kInvalidNode};
  if (cli.command == "hunt") {
    debugger.Start();
    const FatTreeMeta& m = *topo.fat_tree();
    fault = LinkId{m.agg[0][0], m.core[1]};
    fluid.AddSilentDrop(fault.src, fault.dst, 0.02);
    std::printf("injected fault: %s -> %s drops 2%% silently\n",
                topo.NameOf(fault.src).c_str(), topo.NameOf(fault.dst).c_str());
  }

  // A standing subscription must watch the TIBs while they fill, so it
  // installs before the workload runs.
  SubscriptionManager subscriptions(&controller);
  size_t topk_k = cli.arg.empty() ? 10 : size_t(std::atoll(cli.arg.c_str()));
  uint64_t standing_sub = 0;
  LinkId flowlist_link{kInvalidNode, kInvalidNode};
  if (cli.command == "flowlist") {
    if (cli.arg.empty()) {
      Usage();
      return 2;
    }
    SwitchId sw = SwitchId(std::atoll(cli.arg.c_str()));
    if (sw >= topo.node_count() || topo.IsHost(sw)) {
      std::printf("node %s is not a switch\n", cli.arg.c_str());
      return 2;
    }
    flowlist_link = LinkId{kInvalidNode, sw};
  }
  if ((cli.standing && cli.command == "topk") || cli.command == "stats") {
    standing_sub = SubscribeTopK(subscriptions, controller.registered_hosts(), topk_k);
  }
  if (cli.standing && cli.command == "flowlist") {
    standing_sub = SubscribeFlowList(subscriptions, controller.registered_hosts(), flowlist_link);
  }

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 30;
  params.duration = SimTime(cli.seconds * double(kNsPerSec));
  params.seed = cli.seed;
  auto flows = gen.Generate(params);
  fluid.Run(flows, &fleet, controller.MakeAlarmSink());
  std::printf("simulated %zu flows over %.0fs on FatTree(%d)\n\n", flows.size(), cli.seconds,
              cli.k);

  if (cli.command == "stats") {
    // Exercise the full epoch pipeline once (tick → fold → materialize)
    // and a poll execute, then dump everything the registry saw.
    subscriptions.TickEpoch();
    TopKFlows standing_top = TopKStanding(subscriptions, standing_sub);
    TopKFlows poll = TopKAcrossHosts(controller, controller.registered_hosts(), topk_k,
                                     TimeRange::All(), /*multi_level=*/false);
    std::printf("standing top-%zu poll-identical: %s\n\n", topk_k,
                standing_top == poll ? "yes" : "NO");
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    std::printf("%s", snap.ToText().c_str());
    return standing_top == poll ? 0 : 1;
  }
  if (cli.command == "topk") {
    TopKFlows top;
    if (cli.standing) {
      // Epoch boundary: agents ship their per-flow increments; the
      // materialized result must equal a full-scan poll byte for byte.
      subscriptions.TickEpoch();
      top = TopKStanding(subscriptions, standing_sub);
      TopKFlows poll = TopKAcrossHosts(controller, controller.registered_hosts(), topk_k,
                                       TimeRange::All(), /*multi_level=*/false);
      SubscriptionInfo info = subscriptions.info(standing_sub);
      std::printf("standing top-%zu: %llu deltas folded, %.1f KB on the wire, "
                  "poll-identical: %s\n",
                  topk_k, (unsigned long long)info.deltas_folded,
                  double(info.delta_bytes) / 1e3, top == poll ? "yes" : "NO");
    } else {
      top = TopKAcrossHosts(controller, controller.registered_hosts(), topk_k, TimeRange::All());
    }
    std::printf("top-%zu flows:\n", topk_k);
    for (const auto& [bytes, flow] : top.items) {
      std::printf("  %10.3f MB  %s\n", double(bytes) / 1e6, FlowToString(flow).c_str());
    }
    return 0;
  }
  if (cli.command == "flowlist") {
    FlowList list;
    if (cli.standing) {
      // Epoch boundary: agents ship the filtered records (with their TIB
      // insertion ids); the materialized first-appearance list must equal
      // a full-scan poll byte for byte.
      subscriptions.TickEpoch();
      list = FlowListStanding(subscriptions, standing_sub);
      FlowList poll = FlowsOnLinkAcrossHosts(controller, controller.registered_hosts(),
                                             flowlist_link, TimeRange::All());
      SubscriptionInfo info = subscriptions.info(standing_sub);
      std::printf("standing flowlist: %llu deltas folded, %.1f KB on the wire, "
                  "poll-identical: %s\n",
                  (unsigned long long)info.deltas_folded, double(info.delta_bytes) / 1e3,
                  list == poll ? "yes" : "NO");
    } else {
      list = FlowsOnLinkAcrossHosts(controller, controller.registered_hosts(), flowlist_link,
                                    TimeRange::All());
    }
    std::printf("%zu distinct (flow, path) pairs entering %s; first 10:\n", list.flows.size(),
                topo.NameOf(flowlist_link.dst).c_str());
    for (size_t j = 0; j < list.flows.size() && j < 10; ++j) {
      std::printf("  %-36s %s\n", FlowToString(list.flows[j].id).c_str(),
                  PathToString(list.flows[j].path).c_str());
    }
    return 0;
  }
  if (cli.command == "flows") {
    if (cli.arg.empty()) {
      Usage();
      return 2;
    }
    SwitchId sw = SwitchId(std::atoll(cli.arg.c_str()));
    if (sw >= topo.node_count() || topo.IsHost(sw)) {
      std::printf("node %u is not a switch\n", sw);
      return 2;
    }
    size_t count = 0;
    for (EdgeAgent* agent : fleet.all()) {
      count += agent->GetFlows(LinkId{kInvalidNode, sw}, TimeRange::All()).size();
    }
    std::printf("flows entering %s during the run: %zu\n", topo.NameOf(sw).c_str(), count);
    return 0;
  }
  if (cli.command == "paths") {
    if (cli.arg.empty()) {
      Usage();
      return 2;
    }
    HostId h = HostId(std::atoll(cli.arg.c_str()));
    if (h >= topo.node_count() || !topo.IsHost(h)) {
      std::printf("node %s is not a host\n", cli.arg.c_str());
      return 2;
    }
    LinkId any{kInvalidNode, kInvalidNode};
    auto received = fleet.agent(h).GetFlows(any, TimeRange::All());
    std::printf("%s received %zu flows; first 10 paths:\n", topo.NameOf(h).c_str(),
                received.size());
    for (size_t j = 0; j < received.size() && j < 10; ++j) {
      std::printf("  %-36s %s\n", FlowToString(received[j].id).c_str(),
                  PathToString(received[j].path).c_str());
    }
    return 0;
  }
  if (cli.command == "matrix") {
    auto matrix = TrafficMatrix(fleet, TimeRange::All());
    std::printf("traffic matrix (%zu ToR pairs), top 10 by volume:\n", matrix.size());
    std::vector<std::pair<uint64_t, std::pair<SwitchId, SwitchId>>> rows;
    for (auto& [pair, bytes] : matrix) {
      rows.emplace_back(bytes, pair);
    }
    std::sort(rows.rbegin(), rows.rend());
    for (size_t j = 0; j < rows.size() && j < 10; ++j) {
      std::printf("  %-8s -> %-8s %10.2f MB\n", topo.NameOf(rows[j].second.first).c_str(),
                  topo.NameOf(rows[j].second.second).c_str(), double(rows[j].first) / 1e6);
    }
    return 0;
  }
  if (cli.command == "hunt") {
    std::printf("alarms: %zu, signatures: %zu\n", debugger.alarms_seen(),
                debugger.signature_count());
    for (const LinkId& l : debugger.Hypothesis()) {
      std::printf("  suspect: %s -> %s\n", topo.NameOf(l.src).c_str(),
                  topo.NameOf(l.dst).c_str());
    }
    auto acc = debugger.Accuracy({fault});
    std::printf("recall=%.2f precision=%.2f\n", acc.recall, acc.precision);
    return acc.Perfect() ? 0 : 1;
  }
  Usage();
  return 2;
}
