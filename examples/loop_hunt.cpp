// Routing-loop hunting (§4.5, Fig. 9).
//
// A misconfigured switch bounces packets into a forwarding loop.  Watch the
// trajectory tags accumulate, the third tag punt the packet to the
// controller, and the controller prove the loop from the repeated link ID —
// then un-break the network and watch traffic flow again.
//
//   ./loop_hunt

#include <cstdio>

#include "src/common/logging.h"
#include "src/controller/loop_detector.h"
#include "src/netsim/network.h"
#include "src/topology/link_labels.h"
#include "src/topology/topology.h"

using namespace pathdump;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // The paper's Fig. 9 topology: A - S1 - S2 - S3 - S4 - S6 - B with S5
  // wired S4-S5-S2, ready to close a loop.
  Topology topo;
  SwitchId s1 = topo.AddSwitch(NodeRole::kTor, -1, 1, "S1");
  SwitchId s2 = topo.AddSwitch(NodeRole::kAgg, -1, 2, "S2");
  SwitchId s3 = topo.AddSwitch(NodeRole::kAgg, -1, 3, "S3");
  SwitchId s4 = topo.AddSwitch(NodeRole::kAgg, -1, 4, "S4");
  SwitchId s5 = topo.AddSwitch(NodeRole::kAgg, -1, 5, "S5");
  SwitchId s6 = topo.AddSwitch(NodeRole::kTor, -1, 6, "S6");
  topo.AddLink(s1, s2);
  topo.AddLink(s2, s3);
  topo.AddLink(s3, s4);
  topo.AddLink(s4, s5);
  topo.AddLink(s5, s2);
  topo.AddLink(s4, s6);
  HostId a = topo.AddHost(-1, 0, "A");
  topo.AddLink(a, s1);
  HostId b = topo.AddHost(-1, 1, "B");
  topo.AddLink(b, s6);

  Network net(&topo, NetworkConfig{});
  net.codec().SetGenericPushers({s3, s5});  // alternate-switch sampling
  LoopDetector detector(&net);
  detector.Attach();

  // Misconfiguration: S4 forwards B-bound traffic to S5 instead of S6.
  Router& r = net.router();
  r.SetStaticNextHops(s1, b, {s2});
  r.SetStaticNextHops(s2, b, {s3});
  r.SetStaticNextHops(s3, b, {s4});
  r.SetStaticNextHops(s4, b, {s5});  // <- the bug
  r.SetStaticNextHops(s5, b, {s2});

  int delivered = 0;
  net.SetHostSink(b, [&](const Packet&, SimTime) { ++delivered; });

  Packet p;
  p.flow = FiveTuple{topo.IpOfHost(a), topo.IpOfHost(b), 4242, 80, kProtoTcp};
  p.src_host = a;
  p.dst_host = b;
  std::printf("injecting a packet from A toward B into the looped network...\n");
  net.InjectPacket(p, 0);
  net.events().RunAll(100000);

  if (detector.detections().empty()) {
    std::printf("no loop detected (unexpected)\n");
    return 1;
  }
  const LoopDetector::Detection& d = detector.detections().front();
  LinkLabelMap labels(&topo);
  auto endpoints = labels.GenericEndpoints(d.repeated_label);
  std::printf("LOOP DETECTED at t=%.1f ms (punt round %d)\n",
              double(d.detected_at) / double(kNsPerMs), d.punt_rounds);
  if (endpoints) {
    std::printf("repeated link ID %u = %s-%s: the loop closes through this link\n",
                unsigned(d.repeated_label), topo.NameOf(endpoints->first).c_str(),
                topo.NameOf(endpoints->second).c_str());
  }

  // Operator fixes S4 and retries.
  std::printf("\nfixing S4's next hop and re-sending...\n");
  r.SetStaticNextHops(s4, b, {s6});
  Packet p2 = p;
  p2.flow.src_port = 4243;
  net.InjectPacket(p2, net.events().now() + kNsPerMs);
  net.events().RunAll(100000);
  std::printf("delivered to B: %d packet(s) — network healthy again\n", delivered);
  return delivered == 1 ? 0 : 1;
}
