// TCP performance clinic (§4.6): diagnosing TCP outcast.
//
// Fifteen senders hammer one receiver.  The closest sender's throughput
// collapses — is it the app?  the NIC?  No: the controller correlates the
// alarm storm with per-sender (bytes, path) statistics from the receiver's
// TIB and recognizes the outcast pattern: the victim is the sender with
// the shortest path, starved by port blackout at the shared ToR queue.
//
//   ./outcast_clinic

#include <cstdio>

#include "src/apps/outcast_diagnosis.h"
#include "src/edge/fleet.h"
#include "src/tcp/outcast.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"

using namespace pathdump;

int main() {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);

  HostId receiver = topo.hosts()[0];
  std::vector<HostId> senders;
  for (HostId h : topo.hosts()) {
    if (h != receiver) {
      senders.push_back(h);
    }
  }
  std::printf("15 senders -> receiver %s for 10 seconds...\n", topo.NameOf(receiver).c_str());

  OutcastConfig cfg;
  cfg.flows_per_port = {1, 7, 7};  // f1 alone on its input port at the ToR
  cfg.rounds = 2500;
  cfg.seed = 7;
  OutcastSimulator sim(cfg);
  auto stats = sim.Run();

  // Feed the receiver's TIB and the alarm stream, as the live system would.
  EdgeAgent& agent = fleet.agent(receiver);
  double duration_s = double(cfg.rounds) * cfg.rtt_seconds;
  std::vector<FiveTuple> flows;
  for (size_t i = 0; i < senders.size(); ++i) {
    FiveTuple f{topo.IpOfHost(senders[i]), topo.IpOfHost(receiver), uint16_t(20000 + i), 5001,
                kProtoTcp};
    flows.push_back(f);
    TibRecord rec;
    rec.flow = f;
    rec.path = CompactPath::FromPath(router.EcmpPaths(senders[i], receiver)[0]);
    rec.stime = 0;
    rec.etime = SimTime(duration_s * double(kNsPerSec));
    rec.bytes = stats[i].delivered_pkts * cfg.mss_bytes;
    rec.pkts = uint32_t(stats[i].delivered_pkts);
    agent.IngestRecord(rec, rec.etime);
  }
  OutcastDiagnoser diagnoser(10);
  for (const RetxEvent& e : sim.retx_events()) {
    Alarm a;
    a.reason = AlarmReason::kPoorPerf;
    a.flow = flows[size_t(e.flow_index)];
    a.at = e.at;
    diagnoser.OnAlarm(a);
  }

  OutcastVerdict v = diagnoser.Diagnose(agent, TimeRange::All(), duration_s);
  std::printf("\nper-sender throughput (Mbps):");
  for (size_t i = 0; i < stats.size(); ++i) {
    if (i % 5 == 0) {
      std::printf("\n  ");
    }
    std::printf("f%-2zu %6.1f   ", i + 1, stats[i].throughput_mbps);
  }
  std::printf("\n\npath tree at the receiver:\n");
  for (auto& [len, count] : v.path_tree) {
    std::printf("  %d-switch paths: %d flows\n", len, count);
  }
  std::printf("\nverdict: %s\n",
              v.is_outcast ? "TCP OUTCAST — victim is the closest sender; consider "
                             "equal-length routing or better AQM at the ToR"
                           : "no outcast pattern");
  std::printf("victim %s at %.1f Mbps vs %.1f Mbps mean for the rest (%.1fx unfair)\n",
              FlowToString(v.victim.flow).c_str(), v.victim_mbps, v.mean_other_mbps,
              v.unfairness);
  return v.is_outcast ? 0 : 1;
}
