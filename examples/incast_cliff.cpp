// Incast vs outcast: telling two TCP pathologies apart (§4.6).
//
// Both start the same way at the controller: a storm of POOR_PERF alarms
// naming one receiver.  The difference lives in the receiver's TIB:
//  * outcast — one asymmetric victim, the sender closest to the receiver;
//  * incast  — symmetric collapse of ALL senders in a barrier-synchronized
//    fetch, with aggregate goodput far below the access link.
// This example sweeps sender counts over the incast cliff, then runs both
// diagnosers on the collapsed case and shows only the right one fires.
//
//   ./incast_cliff

#include <cstdio>

#include "src/apps/incast_diagnosis.h"
#include "src/apps/outcast_diagnosis.h"
#include "src/edge/fleet.h"
#include "src/tcp/incast.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"

using namespace pathdump;

int main() {
  std::printf("the incast cliff (barrier-synchronized reads, shallow ToR buffer):\n");
  std::printf("%-10s %-14s %-12s %s\n", "senders", "goodput(Mbps)", "link util", "RTOs/flow");
  for (int n : {2, 4, 8, 16, 32, 48}) {
    IncastConfig cfg;
    cfg.num_senders = n;
    cfg.seed = 3;
    IncastResult r = IncastSimulator(cfg).Run();
    double timeouts = 0;
    for (const auto& f : r.flows) {
      timeouts += f.timeouts;
    }
    std::printf("%-10d %-14.1f %-12.2f %.1f\n", n, r.aggregate_goodput_mbps,
                r.aggregate_goodput_mbps / r.link_capacity_mbps, timeouts / n);
  }

  // Diagnose the collapsed case through PathDump.
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  HostId receiver = topo.hosts()[0];
  EdgeAgent agent(receiver, &topo, &codec);

  IncastConfig cfg;
  cfg.num_senders = 15;
  cfg.seed = 5;
  IncastResult r = IncastSimulator(cfg).Run();

  std::vector<HostId> senders;
  for (HostId h : topo.hosts()) {
    if (h != receiver && int(senders.size()) < cfg.num_senders) {
      senders.push_back(h);
    }
  }
  std::vector<SimTime> alarm_times;
  for (size_t i = 0; i < senders.size(); ++i) {
    TibRecord rec;
    rec.flow = FiveTuple{topo.IpOfHost(senders[i]), topo.IpOfHost(receiver),
                         uint16_t(23000 + i), 5001, kProtoTcp};
    rec.path = CompactPath::FromPath(router.EcmpPaths(senders[i], receiver)[0]);
    rec.stime = 0;
    rec.etime = SimTime(r.duration_seconds * double(kNsPerSec));
    rec.bytes = r.flows[i].delivered_pkts * cfg.mss_bytes;
    rec.pkts = uint32_t(r.flows[i].delivered_pkts);
    agent.IngestRecord(rec, rec.etime);
  }
  for (const RetxEvent& e : r.retx_events) {
    alarm_times.push_back(e.at);
  }

  IncastDiagnoser incast(r.link_capacity_mbps);
  IncastVerdict iv = incast.Diagnose(agent, TimeRange::All(), r.duration_seconds, alarm_times);
  OutcastDiagnoser outcast(1, 2.0);
  OutcastVerdict ov = outcast.Diagnose(agent, TimeRange::All(), r.duration_seconds);

  std::printf("\ncontroller diagnosis of the 15-sender storm at %s:\n",
              topo.NameOf(receiver).c_str());
  std::printf("  senders: %d, aggregate %.1f Mbps of %.1f Mbps (util %.2f)\n", iv.senders,
              iv.aggregate_mbps, iv.capacity_mbps, iv.utilization);
  std::printf("  sender symmetry: %.2f, alarm burstiness: %.2f\n", iv.symmetric_fraction,
              iv.alarm_burstiness);
  std::printf("  incast verdict:  %s\n", iv.is_incast ? "INCAST (symmetric collapse)" : "no");
  std::printf("  outcast verdict: %s\n",
              ov.is_outcast ? "outcast (unexpected!)" : "no (no asymmetric victim)");
  return (iv.is_incast && !ov.is_outcast) ? 0 : 1;
}
