// Silent packet-drop hunting (§4.3).
//
// A faulty interface drops 2% of packets without touching any counter.
// End-host monitors raise POOR_PERF alarms for flows with consecutive
// retransmissions; the controller collects each suffering flow's paths
// from the destination TIBs (failure signatures) and MAX-COVERAGE names
// the guilty link.
//
//   ./silent_drop_hunt

#include <cstdio>

#include "src/apps/silent_drop.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

using namespace pathdump;

int main() {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  SilentDropDebugger debugger(&controller, &fleet);
  debugger.Start();

  // The culprit: agg A0.0's uplink to core C1 drops 2% silently.  (Agg
  // index 0 serves core group 0, i.e. cores 0 and 1.)
  const FatTreeMeta& m = *topo.fat_tree();
  NodeId bad_src = m.agg[0][0];
  NodeId bad_dst = m.core[1];
  std::printf("injected fault: %s -> %s silently drops 2%% of packets\n",
              topo.NameOf(bad_src).c_str(), topo.NameOf(bad_dst).c_str());

  FluidConfig fcfg;
  fcfg.seed = 1;
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.AddSilentDrop(bad_src, bad_dst, 0.02);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 30;
  params.duration = 30 * kNsPerSec;
  params.seed = 2;
  auto flows = gen.Generate(params);
  std::printf("running %zu web-workload flows for 30s (flow-level engine)...\n", flows.size());

  auto stats = fluid.Run(flows, &fleet, controller.MakeAlarmSink());
  std::printf("alarms raised: %llu, signatures collected: %zu\n",
              (unsigned long long)stats.alarms, debugger.signature_count());
  AlarmPipelineStats ps = controller.alarm_stats();
  std::printf("alarm pipeline: %llu submitted, %llu delivered in %llu batches "
              "(max batch %llu), %llu dropped\n",
              (unsigned long long)ps.submitted, (unsigned long long)ps.delivered,
              (unsigned long long)ps.batches, (unsigned long long)ps.max_batch,
              (unsigned long long)ps.dropped);

  std::printf("\nMAX-COVERAGE hypothesis:\n");
  for (const LinkId& l : debugger.Hypothesis()) {
    std::printf("  suspect link %s -> %s\n", topo.NameOf(l.src).c_str(),
                topo.NameOf(l.dst).c_str());
  }
  auto acc = debugger.Accuracy({{bad_src, bad_dst}});
  std::printf("\nrecall=%.2f precision=%.2f — faulty interface %s\n", acc.recall, acc.precision,
              acc.Perfect() ? "EXACTLY LOCALIZED" : "partially localized");
  return acc.recall >= 1.0 ? 0 : 1;
}
