// Path-conformance watchdog (§2.3, §4.1, Fig. 4).
//
// The operator's policy: no path longer than 6 switches, and traffic must
// avoid switch C0 (say it is being drained for maintenance).  The
// controller installs the predicate on every host; a link failure then
// pushes packets onto a 7-switch failover detour — and the destination
// agent alarms the moment the first detoured flow record lands in its TIB.
//
//   ./conformance_watchdog

#include <cstdio>

#include "src/apps/path_conformance.h"
#include "src/common/logging.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"

using namespace pathdump;

int main() {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  // Two alarm-pipeline subscribers: the auditor tallies PC_FAIL per host
  // (its accessors flush the pipeline), a narrator prints each alarm.
  ConformanceAuditor auditor(&controller);
  auditor.Start();
  controller.SubscribeAlarms([&](const Alarm& a) {
    if (a.reason != AlarmReason::kPathConformance) {
      return;
    }
    std::printf("  PC_FAIL alarm #%llu from host %s: flow %s took %s\n",
                (unsigned long long)a.seq, topo.NameOf(a.host).c_str(),
                FlowToString(a.flow).c_str(),
                a.paths.empty() ? "?" : PathToString(a.paths[0]).c_str());
  });

  // Install the policy on every end host (controller install() API).
  ConformancePolicy policy;
  policy.max_path_switches = 6;
  for (EdgeAgent* agent : fleet.all()) {
    InstallPathConformance(*agent, policy);
  }
  std::printf("policy installed on %zu hosts: path < 6 switches\n", fleet.size());

  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];

  auto send = [&](uint16_t port) {
    FiveTuple flow{topo.IpOfHost(src), topo.IpOfHost(dst), port, 80, kProtoTcp};
    SimTime t = net.events().now() + kNsPerMs;
    for (Packet& p : SegmentFlow(flow, src, dst, 30000)) {
      net.InjectPacket(p, t);
      t += 10 * kNsPerUs;
    }
    net.events().RunAll();
    fleet.FlushAll(net.events().now());
    return flow;
  };

  std::printf("\nhealthy network: sending a flow...\n");
  FiveTuple probe = send(20000);
  auto paths = fleet.agent(dst).GetPaths(probe, LinkId{kInvalidNode, kInvalidNode},
                                         TimeRange::All());
  std::printf("  took %s (%d switches) — conformant, no alarms (%zu)\n",
              PathToString(paths[0]).c_str(), int(paths[0].size()), auditor.total());

  // Break the down-link the flow used; failover produces a 7-switch path.
  std::printf("\nfailing link %s - %s; resending until a flow takes the detour...\n",
              topo.NameOf(paths[0][3]).c_str(), topo.NameOf(paths[0][4]).c_str());
  net.router().link_state().SetDown(paths[0][3], paths[0][4]);
  for (uint16_t port = 20001; port < 20040 && auditor.total() == 0; ++port) {
    send(port);
  }
  size_t pc_alarms = auditor.total();
  std::printf("\nconformance alarms raised: %zu from host %s (detour detected in real time)\n",
              pc_alarms, topo.NameOf(dst).c_str());
  std::printf("  auditor count for %s: %zu\n", topo.NameOf(dst).c_str(),
              auditor.count_for(dst));
  return pc_alarms > 0 ? 0 : 1;
}
