// Traffic measurement tour (§2.3 "Traffic measurement", Table 2).
//
// Populates a datacenter's TIBs with a heavy-tailed workload via the
// flow-level engine, then runs the measurement applications: top-k flows
// (direct vs multi-level queries), traffic matrix, heavy hitters, and a
// DDoS source breakdown for one victim.
//
//   ./top_talkers

#include <cstdio>

#include "src/apps/traffic_measure.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"

using namespace pathdump;

int main() {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);

  // Background workload plus a deliberate "attack": everyone also sends to
  // one victim host.
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 40;
  params.duration = 20 * kNsPerSec;
  params.seed = 11;
  auto flows = gen.Generate(params);

  HostId victim = topo.hosts().back();
  TrafficParams attack;
  attack.flows_per_sec_per_host = 10;
  attack.duration = 20 * kNsPerSec;
  attack.dst_policy = DstPolicy::kFixed;
  attack.fixed_dst = victim;
  attack.seed = 13;
  auto attack_flows = gen.Generate(attack);
  flows.insert(flows.end(), attack_flows.begin(), attack_flows.end());
  std::sort(flows.begin(), flows.end(),
            [](const FlowDesc& a, const FlowDesc& b) { return a.start < b.start; });

  FluidConfig fcfg;
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.Run(flows, &fleet, nullptr);
  std::printf("ingested %zu flows into %zu TIBs\n", flows.size(), fleet.size());

  // Top-k, both query mechanisms, with their cost profile.
  std::vector<HostId> hosts = controller.registered_hosts();
  Controller::QueryFn topk = [](EdgeAgent& a) -> QueryResult {
    return a.TopK(5, TimeRange::All());
  };
  auto [dres, dstats] = controller.Execute(hosts, topk);
  auto [mres, mstats] = controller.ExecuteMultiLevel(hosts, topk);
  auto& winners = std::get<TopKFlows>(mres);
  winners.k = 5;
  winners.Finalize();
  std::printf("\ntop-5 flows (multi-level %.3fs/%zuB vs direct %.3fs/%zuB):\n",
              mstats.response_time_seconds, mstats.response_bytes,
              dstats.response_time_seconds, dstats.response_bytes);
  for (const auto& [bytes, flow] : winners.items) {
    std::printf("  %9.2f MB  %s\n", double(bytes) / 1e6, FlowToString(flow).c_str());
  }

  // Traffic matrix between ToR pairs.
  auto matrix = TrafficMatrix(fleet, TimeRange::All());
  std::printf("\ntraffic matrix: %zu active ToR pairs; busiest:\n", matrix.size());
  std::pair<SwitchId, SwitchId> busiest{};
  uint64_t most = 0;
  for (auto& [pair, bytes] : matrix) {
    if (bytes > most) {
      most = bytes;
      busiest = pair;
    }
  }
  std::printf("  %s -> %s: %.1f MB\n", topo.NameOf(busiest.first).c_str(),
              topo.NameOf(busiest.second).c_str(), double(most) / 1e6);

  // Heavy hitters over 5 MB.
  auto hh = HeavyHitters(controller, hosts, 5'000'000, TimeRange::All());
  std::printf("\nheavy hitters (>5MB): %zu flows\n", hh.size());

  // DDoS view at the victim.
  auto sources = DdosSources(fleet.agent(victim), TimeRange::All());
  std::printf("\nDDoS check at %s: %zu distinct sources; top 3:\n",
              topo.NameOf(victim).c_str(), sources.size());
  for (size_t i = 0; i < sources.size() && i < 3; ++i) {
    std::printf("  %s: %.2f MB\n", IpToString(sources[i].second).c_str(),
                double(sources[i].first) / 1e6);
  }
  return 0;
}
