// Tests for the per-packet trajectory log (the paper's future-work
// extension) standalone and wired into the EdgeAgent data path.

#include <gtest/gtest.h>

#include "src/edge/edge_agent.h"
#include "src/edge/fleet.h"
#include "src/edge/packet_log.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

PacketLogEntry Entry(uint16_t port, SimTime at, Path path = {1, 2, 3}, bool retx = false) {
  PacketLogEntry e;
  e.flow = FiveTuple{10, 20, port, 80, kProtoTcp};
  e.path = CompactPath::FromPath(path);
  e.at = at;
  e.bytes = 100;
  e.retx = retx;
  return e;
}

TEST(PacketLogTest, AppendAndSize) {
  PacketLog log(4);
  EXPECT_EQ(log.size(), 0u);
  log.Append(Entry(1, 10));
  log.Append(Entry(2, 20));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_appended(), 2u);
  EXPECT_EQ(log.capacity(), 4u);
}

TEST(PacketLogTest, RingOverwritesOldest) {
  PacketLog log(3);
  for (uint16_t i = 0; i < 5; ++i) {
    log.Append(Entry(i, SimTime(i)));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5u);
  std::vector<SimTime> order;
  log.ForEach([&](const PacketLogEntry& e) { order.push_back(e.at); });
  EXPECT_EQ(order, (std::vector<SimTime>{2, 3, 4})) << "oldest-to-newest, oldest evicted";
}

TEST(PacketLogTest, QueriesByFlowLinkTimeAndRetx) {
  PacketLog log(16);
  log.Append(Entry(1, 10, {1, 2, 3}));
  log.Append(Entry(1, 20, {1, 4, 3}));
  log.Append(Entry(2, 30, {1, 2, 3}, /*retx=*/true));

  FiveTuple f1{10, 20, 1, 80, kProtoTcp};
  EXPECT_EQ(log.PacketsOfFlow(f1, TimeRange::All()).size(), 2u);
  EXPECT_EQ(log.PacketsOfFlow(f1, TimeRange{15, 100}).size(), 1u);
  EXPECT_EQ(log.PacketsOnLink(LinkId{1, 2}, TimeRange::All()).size(), 2u);
  EXPECT_EQ(log.PacketsOnLink(LinkId{1, 4}, TimeRange::All()).size(), 1u);
  EXPECT_EQ(log.PacketsOnLink(LinkId{kInvalidNode, 3}, TimeRange::All()).size(), 3u);
  auto retx = log.Retransmissions(TimeRange::All());
  ASSERT_EQ(retx.size(), 1u);
  EXPECT_EQ(retx[0].flow.src_port, 2);
}

TEST(PacketLogTest, BoundedMemoryAndClear) {
  PacketLog log(1000);
  size_t bound = log.ApproxBytes();
  for (int i = 0; i < 100000; ++i) {
    log.Append(Entry(uint16_t(i), SimTime(i)));
  }
  EXPECT_EQ(log.ApproxBytes(), bound) << "ring must not grow";
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(PacketLogTest, ZeroCapacityClampsToOne) {
  PacketLog log(0);
  log.Append(Entry(1, 1));
  EXPECT_EQ(log.size(), 1u);
}

class AgentPacketLog : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    net_ = std::make_unique<Network>(&topo_, NetworkConfig{});
    EdgeAgentConfig cfg;
    cfg.packet_log_capacity = 1024;
    fleet_ = std::make_unique<AgentFleet>(&topo_, &net_->codec(), cfg);
    fleet_->AttachTo(*net_);
  }
  Topology topo_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<AgentFleet> fleet_;
};

TEST_F(AgentPacketLog, EveryDeliveredPacketIsLoggedWithItsPath) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  FiveTuple flow = testutil::MakeFlow(topo_, src, dst);
  auto pkts = SegmentFlow(flow, src, dst, 10000);
  SimTime t = 0;
  for (Packet& p : pkts) {
    net_->InjectPacket(p, t);
    t += 10 * kNsPerUs;
  }
  net_->events().RunAll();

  EdgeAgent& agent = fleet_->agent(dst);
  ASSERT_NE(agent.packet_log(), nullptr);
  auto logged = agent.packet_log()->PacketsOfFlow(flow, TimeRange::All());
  ASSERT_EQ(logged.size(), pkts.size());
  for (const PacketLogEntry& e : logged) {
    EXPECT_EQ(e.path.len, 5) << "per-packet decoded trajectory";
    EXPECT_EQ(e.path.sw[0], topo_.TorOfHost(src));
  }
  // Per-packet detail the TIB cannot answer: which packet was the FIN.
  EXPECT_TRUE(logged.back().fin);
  EXPECT_FALSE(logged.front().fin);
}

TEST_F(AgentPacketLog, DisabledByDefault) {
  EdgeAgentConfig cfg;  // default: no packet log
  LinkLabelMap labels(&topo_);
  CherryPickCodec codec(&topo_, &labels);
  EdgeAgent agent(topo_.hosts()[1], &topo_, &codec, cfg);
  EXPECT_EQ(agent.packet_log(), nullptr);
}

TEST_F(AgentPacketLog, UndecodablePacketLoggedWithRawTagCount) {
  EdgeAgent& agent = fleet_->agent(topo_.hosts().back());
  Packet p;
  p.flow = testutil::MakeFlow(topo_, topo_.hosts().front(), topo_.hosts().back());
  p.tags = {kMaxVlanLabel, kMaxVlanLabel};
  agent.OnPacket(p, 0);
  auto logged = agent.packet_log()->PacketsOfFlow(p.flow, TimeRange::All());
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_EQ(logged[0].path.len, 0);
  EXPECT_EQ(logged[0].raw_tag_count, 2);
}

}  // namespace
}  // namespace pathdump
