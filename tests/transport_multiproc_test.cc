// Cross-process transport harness: real forked agent processes
// (examples/agent_worker.cpp) speaking real frames over real POSIX
// shared memory to the in-test controller.
//
//  1. Poll identity — N forked agents ingest synthetic records (derived
//     from the broadcast seed + host), ship standing deltas over their
//     rings, and at every epoch boundary the materialized standing
//     result equals a fresh poll over an in-test twin fleet fed the
//     identical records.  All four standing kinds.
//  2. Crash semantics — SIGKILL one agent after it acked an epoch; the
//     controller detects the death (TransportStats::peers_dead, no Bye),
//     excuses it from acks, and keeps folding the survivors; the
//     materialized result equals a poll where the victim's twin is
//     frozen at its last acked epoch.  No deadlock, no corruption.
//
// Labeled `multiproc` in CTest: CI runs it in its own step, and the
// main test step excludes the label (forking under a parallel ctest run
// of every other suite would only add noise).  A global environment
// sweeps /dev/shm on teardown so no segment outlives a failed run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "src/common/thread_pool.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/transport/shm_ring.h"
#include "src/transport/transport.h"
#include "tests/test_util.h"

#ifndef AGENT_WORKER_PATH
#error "AGENT_WORKER_PATH must point at the agent_worker example binary"
#endif

namespace pathdump {
namespace {

using transport::ShmSegment;
using transport::TransportHub;
using transport::TransportOptions;
using transport::TransportStats;

std::string TestShmPrefix() { return "/pathdump.mp." + std::to_string(getpid()) + "."; }

class ShmCleanupEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { transport::CleanupShmByPrefix(TestShmPrefix()); }
};
const auto* const kCleanupEnv =
    ::testing::AddGlobalTestEnvironment(new ShmCleanupEnvironment());

constexpr uint32_t kIpSpace = 2048;
constexpr uint32_t kSwitchSpace = 24;
constexpr size_t kShards = 4;
constexpr size_t kTopK = 300;
constexpr int64_t kBinWidth = 10000;
const LinkId kProbeLink{3, 7};

std::vector<StandingQuerySpec> AllSpecs() {
  std::vector<StandingQuerySpec> specs(4);
  specs[0].kind = StandingQuerySpec::Kind::kTopK;
  specs[0].k = kTopK;
  specs[1].kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  specs[1].bin_width = kBinWidth;
  specs[1].link = kProbeLink;
  specs[2].kind = StandingQuerySpec::Kind::kFlowList;
  specs[2].link = kProbeLink;
  specs[3].kind = StandingQuerySpec::Kind::kCountSummary;
  specs[3].link = kProbeLink;
  return specs;
}

Controller::QueryFn PollFor(const StandingQuerySpec& spec) {
  switch (spec.kind) {
    case StandingQuerySpec::Kind::kTopK:
      return [](EdgeAgent& a) -> QueryResult { return a.TopK(kTopK, TimeRange::All()); };
    case StandingQuerySpec::Kind::kFlowSizeHistogram:
      return [](EdgeAgent& a) -> QueryResult {
        return a.FlowSizeDistribution(kProbeLink, TimeRange::All(), kBinWidth);
      };
    case StandingQuerySpec::Kind::kFlowList:
      return [](EdgeAgent& a) -> QueryResult {
        return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
      };
    case StandingQuerySpec::Kind::kCountSummary:
    default:
      return [](EdgeAgent& a) -> QueryResult {
        return a.CountOnLink(kProbeLink, TimeRange::All());
      };
  }
}

pid_t ForkWorker(const std::string& shm_name, HostId host) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(AGENT_WORKER_PATH, "agent_worker", shm_name.c_str(),
          std::to_string(host).c_str(), std::to_string(kShards).c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

// Reaps `pid`, SIGKILLing it if it has not exited within `timeout_us`.
// Returns the waitpid status (or -1 on reap failure).
int ReapWithDeadline(pid_t pid, int64_t timeout_us) {
  const int64_t step_us = 20'000;
  int status = -1;
  for (int64_t waited = 0; waited <= timeout_us; waited += step_us) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return status;
    }
    if (r < 0) {
      return -1;
    }
    timespec ts{0, step_us * 1000};
    nanosleep(&ts, nullptr);
  }
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
  return status;
}

// Forked fleet + in-test twins.  The twins are the poll reference: both
// sides generate records from (seed + host), so byte-identity across the
// process boundary is checkable without shipping any records in-test.
struct MultiprocTestbed {
  Topology topo;
  LinkLabelMap labels;
  CherryPickCodec codec;
  Controller controller;
  std::vector<std::unique_ptr<EdgeAgent>> twins;
  SubscriptionManager manager;
  TransportHub hub;
  std::vector<HostId> hosts;
  std::vector<pid_t> pids;

  static TransportOptions MakeOptions() {
    TransportOptions o;
    o.backend = TransportOptions::Backend::kSharedMemory;
    o.shm_prefix = TestShmPrefix();
    return o;
  }

  explicit MultiprocTestbed(size_t num_agents)
      : topo(BuildFatTree(4)),
        labels(&topo),
        codec(&topo, &labels),
        manager(&controller),
        hub(&controller, &manager, MakeOptions()) {
    for (size_t a = 0; a < num_agents; ++a) {
      HostId h = topo.hosts()[a];
      hosts.push_back(h);
      EdgeAgentConfig cfg;
      cfg.tib_options.num_shards = kShards;
      twins.push_back(std::make_unique<EdgeAgent>(h, &topo, &codec, cfg));
      controller.RegisterAgent(twins.back().get());
      const std::string name = hub.AddShmPeer(h);
      EXPECT_FALSE(name.empty());
      pids.push_back(ForkWorker(name, h));
      EXPECT_GT(pids.back(), 0);
    }
  }

  ~MultiprocTestbed() {
    hub.SendShutdown();
    for (pid_t pid : pids) {
      if (pid > 0) {
        ReapWithDeadline(pid, 10'000'000);
      }
    }
  }

  // Ingests one epoch of records into the twins listed in `into` and
  // broadcasts the matching Ingest frame to the forked fleet.
  void Ingest(uint32_t count, uint32_t seed, const std::vector<size_t>& into) {
    testutil::SyntheticRecordOptions opt;
    opt.ip_space = kIpSpace;
    opt.switch_space = kSwitchSpace;
    for (size_t a : into) {
      for (const TibRecord& rec : testutil::MakeSyntheticRecords(
               int(count), seed + uint32_t(twins[a]->host()), opt)) {
        twins[a]->tib().Insert(rec);
      }
    }
    hub.SendIngest(count, seed, kIpSpace, kSwitchSpace);
  }

  void Epoch() {
    const uint64_t token = hub.SendEpochTick();
    ASSERT_TRUE(hub.WaitForAcks(token, 60'000'000));
    hub.Flush();
  }

  void ExpectPollIdentity(const std::vector<StandingQuerySpec>& specs,
                          const std::vector<uint64_t>& subs, const std::string& context) {
    for (size_t s = 0; s < specs.size(); ++s) {
      auto [poll, stats] = controller.Execute(hosts, PollFor(specs[s]));
      QueryResult standing = manager.Materialize(subs[s]);
      EXPECT_EQ(standing, poll) << context << ", kind " << s;
    }
  }
};

std::vector<size_t> AllOf(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = i;
  }
  return out;
}

TEST(TransportMultiproc, ForkedAgentsMatchPollByteForByte) {
  const size_t kAgents = 3;
  const uint32_t kPerEpoch = 800;
  const int kEpochs = 3;

  MultiprocTestbed tb(kAgents);
  ASSERT_TRUE(tb.hub.WaitForHellos(30'000'000)) << "agents never mapped their segments";

  const std::vector<StandingQuerySpec> specs = AllSpecs();
  std::vector<uint64_t> subs;
  for (const StandingQuerySpec& spec : specs) {
    subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
  }

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    tb.Ingest(kPerEpoch, 0xC0DE0000u + uint32_t(epoch), AllOf(kAgents));
    tb.Epoch();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    tb.ExpectPollIdentity(specs, subs, "epoch " + std::to_string(epoch));
  }

  // Graceful teardown: every worker says Bye and exits 0.
  tb.hub.SendShutdown();
  for (pid_t& pid : tb.pids) {
    const int status = ReapWithDeadline(pid, 10'000'000);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << pid << " status " << status;
    pid = -1;  // already reaped
  }

  const TransportStats st = tb.hub.stats();
  EXPECT_EQ(st.peers, kAgents);
  EXPECT_EQ(st.peers_hello, kAgents);
  EXPECT_EQ(st.peers_dead, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_EQ(st.seq_gaps, 0u);
  EXPECT_GT(st.deltas, 0u);
  EXPECT_EQ(st.acks, uint64_t(kEpochs) * kAgents);

  // No segment outlives its hub... but the hub is still alive here;
  // the names exist exactly until it dies (checked by the cleanup
  // sweep + the leak assertion in the kill test below).
}

TEST(TransportMultiproc, SigkilledAgentSurfacesInStatsAndSurvivorsKeepFolding) {
  const size_t kAgents = 3;
  const size_t kVictim = 1;  // index into tb.hosts/tb.pids
  const uint32_t kPerEpoch = 600;

  MultiprocTestbed tb(kAgents);
  ASSERT_TRUE(tb.hub.WaitForHellos(30'000'000));

  const std::vector<StandingQuerySpec> specs = AllSpecs();
  std::vector<uint64_t> subs;
  for (const StandingQuerySpec& spec : specs) {
    subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
  }

  // Epochs 1-2: the full fleet participates.
  for (int epoch = 1; epoch <= 2; ++epoch) {
    tb.Ingest(kPerEpoch, 0xDEAD0000u + uint32_t(epoch), AllOf(kAgents));
    tb.Epoch();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  tb.ExpectPollIdentity(specs, subs, "pre-kill boundary");

  // SIGKILL the victim.  It acked epoch 2, so everything through epoch
  // 2 is already folded — its twin simply stops ingesting, making the
  // expected post-kill result deterministic.
  ASSERT_EQ(kill(tb.pids[kVictim], SIGKILL), 0);
  {
    int status = 0;
    ASSERT_EQ(waitpid(tb.pids[kVictim], &status, 0), tb.pids[kVictim]);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    tb.pids[kVictim] = -1;
  }

  // Epochs 3-4: survivors only.  The broadcast tick must not wedge on
  // the corpse — WaitForAcks excuses it once the reactor detects the
  // dead pid.
  std::vector<size_t> survivors;
  for (size_t a = 0; a < kAgents; ++a) {
    if (a != kVictim) {
      survivors.push_back(a);
    }
  }
  for (int epoch = 3; epoch <= 4; ++epoch) {
    tb.Ingest(kPerEpoch, 0xDEAD0000u + uint32_t(epoch), survivors);
    tb.Epoch();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    tb.ExpectPollIdentity(specs, subs, "post-kill epoch " + std::to_string(epoch));
  }

  // The death is surfaced, counted, and attributed; the fold saw no
  // corruption and no sequence gap (SIGKILL can truncate a stream, not
  // tear a message).
  const TransportStats st = tb.hub.stats();
  EXPECT_EQ(st.peers_dead, 1u);
  EXPECT_EQ(st.peers_bye, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
  ASSERT_EQ(tb.hub.dead_hosts().size(), 1u);
  EXPECT_EQ(tb.hub.dead_hosts()[0], tb.hosts[kVictim]);
  SubscriptionManagerStats mstats = tb.manager.stats();
  EXPECT_EQ(mstats.deltas_folded, mstats.deltas_submitted);

  // Survivors exit gracefully.
  tb.hub.SendShutdown();
  for (size_t a : survivors) {
    const int status = ReapWithDeadline(tb.pids[a], 10'000'000);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    tb.pids[a] = -1;
  }
}

TEST(TransportMultiproc, SegmentsDoNotOutliveTheHub) {
  // Segment names are created by the hub and unlinked by its
  // destructor; after it dies, none of this suite's names resolve.
  std::vector<std::string> names;
  {
    MultiprocTestbed tb(2);
    ASSERT_TRUE(tb.hub.WaitForHellos(30'000'000));
    for (HostId h : tb.hosts) {
      names.push_back(TestShmPrefix() + std::to_string(h));
      EXPECT_NE(ShmSegment::Open(names.back()), nullptr);
    }
  }
  for (const std::string& name : names) {
    EXPECT_EQ(ShmSegment::Open(name), nullptr) << name << " leaked";
  }
}

}  // namespace
}  // namespace pathdump
