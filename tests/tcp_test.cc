#include <gtest/gtest.h>

#include "src/tcp/outcast.h"
#include "src/tcp/retx_monitor.h"

namespace pathdump {
namespace {

TEST(RetxMonitorTest, ConsecutiveCountingAndReset) {
  RetxMonitor m;
  FiveTuple f{1, 2, 3, 4, 6};
  m.OnRetransmission(f, 10);
  m.OnRetransmission(f, 20);
  EXPECT_EQ(m.ConsecutiveRetx(f), 2);
  EXPECT_EQ(m.TotalRetx(f), 2u);
  EXPECT_EQ(m.LastRetxAt(f), 20);
  m.OnProgress(f);
  EXPECT_EQ(m.ConsecutiveRetx(f), 0);
  EXPECT_EQ(m.TotalRetx(f), 2u) << "total survives progress";
}

TEST(RetxMonitorTest, PoorFlowThreshold) {
  RetxMonitor m;
  FiveTuple poor{1, 2, 3, 4, 6};
  FiveTuple fine{1, 2, 5, 4, 6};
  for (int i = 0; i < 3; ++i) {
    m.OnRetransmission(poor, i);
  }
  m.OnRetransmission(fine, 0);
  auto flows = m.PoorTcpFlows(3);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0], poor);
  EXPECT_EQ(m.PoorTcpFlows(4).size(), 0u);
}

TEST(RetxMonitorTest, ForgetDropsState) {
  RetxMonitor m;
  FiveTuple f{1, 2, 3, 4, 6};
  m.OnRetransmission(f, 1);
  EXPECT_EQ(m.TrackedFlows(), 1u);
  m.Forget(f);
  EXPECT_EQ(m.TrackedFlows(), 0u);
  EXPECT_EQ(m.ConsecutiveRetx(f), 0);
}

TEST(RetxMonitorTest, ProgressOnUnknownFlowIsSafe) {
  RetxMonitor m;
  m.OnProgress(FiveTuple{9, 9, 9, 9, 9});
  EXPECT_EQ(m.TrackedFlows(), 0u);
}

TEST(OutcastTest, CloseSenderIsStarved) {
  OutcastConfig cfg;
  cfg.rounds = 2000;
  cfg.seed = 7;
  OutcastSimulator sim(cfg);
  auto stats = sim.Run();
  ASSERT_EQ(stats.size(), 15u);

  // Flow 0 (alone on its input port) must be the worst performer, by a
  // wide margin versus the mean of the others — the outcast profile.
  double victim = stats[0].throughput_mbps;
  double sum_others = 0;
  double min_other = 1e18;
  for (size_t i = 1; i < stats.size(); ++i) {
    sum_others += stats[i].throughput_mbps;
    min_other = std::min(min_other, stats[i].throughput_mbps);
  }
  double mean_others = sum_others / double(stats.size() - 1);
  EXPECT_LT(victim, mean_others / 2.0)
      << "victim " << victim << " vs mean others " << mean_others;
  EXPECT_GT(stats[0].timeouts, 0) << "whole-window losses must cause RTOs";
}

TEST(OutcastTest, RetxEventsTimeOrdered) {
  OutcastConfig cfg;
  cfg.rounds = 500;
  OutcastSimulator sim(cfg);
  sim.Run();
  const auto& events = sim.retx_events();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
  // Some whole-window losses occur, and they involve flow 0.
  bool victim_window_loss = false;
  for (const RetxEvent& e : events) {
    if (e.flow_index == 0 && e.window_lost) {
      victim_window_loss = true;
    }
  }
  EXPECT_TRUE(victim_window_loss);
}

TEST(OutcastTest, BalancedPortsAreFair) {
  // Control experiment: equal flow counts per port -> no outcast victim.
  OutcastConfig cfg;
  cfg.flows_per_port = {5, 5, 5};
  cfg.rounds = 2000;
  cfg.seed = 11;
  OutcastSimulator sim(cfg);
  auto stats = sim.Run();
  double mn = 1e18;
  double mx = 0;
  for (const auto& s : stats) {
    mn = std::min(mn, s.throughput_mbps);
    mx = std::max(mx, s.throughput_mbps);
  }
  EXPECT_LT(mx / std::max(mn, 1e-9), 3.0) << "no flow should be starved";
}

TEST(OutcastTest, DeterministicUnderSeed) {
  OutcastConfig cfg;
  cfg.rounds = 300;
  cfg.seed = 5;
  auto a = OutcastSimulator(cfg).Run();
  auto b = OutcastSimulator(cfg).Run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].delivered_pkts, b[i].delivered_pkts);
  }
}

}  // namespace
}  // namespace pathdump
