// Metrics registry + tracer contract tests (the PR 7 tentpole):
//
//  1. Concurrency — many threads hammering one counter/histogram lose
//     nothing (runs under ThreadSanitizer in CI via the tsan label).
//  2. Snapshot algebra — Diff/Merge are exact inverses on counters and
//     histogram buckets, and identical state serializes identically.
//  3. Trace ring — overflow keeps exactly the newest spans, in order.
//  4. Chrome-trace export — structurally well-formed JSON with one event
//     per retained span.
//  5. Acceptance — one in-process standing-query epoch leaves (a) a
//     snapshot diff whose pipeline counters are internally consistent
//     (produced == folded) and (b) the full tick -> take_delta -> fold ->
//     materialize span chain carrying matching (sub, host, epoch) keys.
//
// Registry values are process-wide totals shared by every test in this
// binary, so every assertion diffs two snapshots instead of reading
// absolutes.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/apps/traffic_measure.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/edge_agent.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

uint64_t CounterIn(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// --- 1. Concurrent recording ---

TEST(MetricsConcurrency, CountersAndHistogramsLoseNothingAcrossThreads) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  LatencyHistogram* hist = MetricsRegistry::Global().GetHistogram("test.concurrent_hist_us");
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        hist->Record(uint64_t(t * kPerThread + i) % 5000);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const MetricsSnapshot diff = MetricsRegistry::Global().Snapshot().Diff(before);
  EXPECT_EQ(CounterIn(diff, "test.concurrent_counter"), uint64_t(kThreads) * kPerThread);
  const HistogramSnapshot& h = diff.histograms.at("test.concurrent_hist_us");
  EXPECT_EQ(h.count, uint64_t(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, h.count);
}

TEST(MetricsConcurrency, SameNameReturnsSameHandle) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.shared_handle");
  Counter* b = MetricsRegistry::Global().GetCounter("test.shared_handle");
  EXPECT_EQ(a, b);
}

TEST(MetricsRuntime, DisabledRecordingIsDropped) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.disable_check");
  const uint64_t before = counter->value();
  MetricsRegistry::SetEnabled(false);
  counter->Add(100);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(counter->value(), before);
  counter->Add(1);
  EXPECT_EQ(counter->value(), before + 1);
}

// --- 2. Snapshot algebra ---

TEST(MetricsSnapshots, DiffIsExactAndDeterministic) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.diff_counter");
  LatencyHistogram* hist = MetricsRegistry::Global().GetHistogram("test.diff_hist_us");
  const MetricsSnapshot s0 = MetricsRegistry::Global().Snapshot();
  counter->Add(7);
  hist->Record(100);
  hist->Record(3000);
  const MetricsSnapshot s1 = MetricsRegistry::Global().Snapshot();

  const MetricsSnapshot diff = s1.Diff(s0);
  EXPECT_EQ(CounterIn(diff, "test.diff_counter"), 7u);
  const HistogramSnapshot& h = diff.histograms.at("test.diff_hist_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 3100u);
  EXPECT_EQ(h.buckets[LatencyHistogram::BucketOf(100)], 1u);
  EXPECT_EQ(h.buckets[LatencyHistogram::BucketOf(3000)], 1u);

  // Merge(diff) onto the earlier snapshot reproduces the later one for
  // counters and histograms (gauges keep levels, not deltas).
  MetricsSnapshot rebuilt = s0;
  rebuilt.Merge(diff);
  EXPECT_EQ(rebuilt.counters, s1.counters);
  EXPECT_EQ(rebuilt.histograms, s1.histograms);

  // Determinism: recomputing the same diff serializes identically, both
  // machine- and human-readable.
  const MetricsSnapshot diff2 = s1.Diff(s0);
  EXPECT_EQ(diff, diff2);
  EXPECT_EQ(diff.ToJson(), diff2.ToJson());
  EXPECT_EQ(diff.ToText(), diff2.ToText());
  EXPECT_NE(diff.ToJson().find("\"counters\""), std::string::npos);
}

// --- 3 + 4. Trace ring + Chrome export ---

TEST(TraceRing, OverflowKeepsNewestSpansInOrder) {
  Tracer tracer(/*capacity=*/16);
  for (uint64_t i = 0; i < 40; ++i) {
    tracer.Record("span", i * 10, 5, TraceKeys{i, 0, 0});
  }
  const std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 16u);
  // The newest 16 of 40 records survive: seq 24..39, oldest first.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 24 + i);
    EXPECT_EQ(spans[i].keys.sub, 24 + i);
  }
  EXPECT_EQ(tracer.recorded(), 40u);
}

TEST(TraceRing, ChromeTraceJsonIsWellFormed) {
  Tracer tracer(/*capacity=*/8);
  tracer.Record("alpha", 10, 5, TraceKeys{1, 2, 3});
  tracer.Record("beta", 20, 1, TraceKeys{4, 5, 6});
  std::string json;
  tracer.WriteChromeTrace(&json);

  // Structural checks: balanced braces/brackets, the two event names,
  // and the correlation keys present in args.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"sub\":4"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":6"), std::string::npos);
}

TEST(TraceRing, ScopeRecordsWithLateKeys) {
  Tracer& tracer = Tracer::Global();
  const uint64_t before = tracer.recorded();
  {
    TraceScope span("test.scope", TraceKeys{});
    span.set_keys(TraceKeys{42, 7, 9});
  }
  ASSERT_EQ(tracer.recorded(), before + 1);
  const std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_FALSE(spans.empty());
  const TraceSpan& last = spans.back();
  EXPECT_STREQ(last.name, "test.scope");
  EXPECT_EQ(last.keys.sub, 42u);
  EXPECT_EQ(last.keys.host, 7u);
  EXPECT_EQ(last.keys.epoch, 9u);
}

// --- 5. Acceptance: one epoch through the real pipeline ---

TEST(EpochPipeline, SnapshotConsistentAndSpanChainComplete) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Controller controller;
  std::vector<std::unique_ptr<EdgeAgent>> agents;
  std::vector<HostId> hosts;
  for (size_t a = 0; a < 2; ++a) {
    HostId h = topo.hosts()[a];
    EdgeAgentConfig cfg;
    cfg.tib_options.num_shards = 4;
    agents.push_back(std::make_unique<EdgeAgent>(h, &topo, &codec, cfg));
    controller.RegisterAgent(agents.back().get());
    hosts.push_back(h);
  }

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Tracer::Global().Clear();

  SubscriptionManager manager(&controller);
  const uint64_t sub = SubscribeTopK(manager, hosts, 100);
  for (auto& agent : agents) {
    for (const TibRecord& rec : testutil::MakeSyntheticRecords(
             500, 0x7A + uint32_t(agent->host()), {.ip_space = 512, .switch_space = 24})) {
      agent->tib().Insert(rec);
    }
  }
  manager.TickEpoch();
  manager.Flush();
  (void)manager.Materialize(sub);

  // (a) Counter consistency across the snapshot diff: every produced
  // delta was folded (in-process delivery: no duplicates, no orphans,
  // no decode path), and both sides saw one delta per host.
  const MetricsSnapshot diff = MetricsRegistry::Global().Snapshot().Diff(before);
  const uint64_t produced = CounterIn(diff, "standing.deltas_produced");
  EXPECT_EQ(produced, hosts.size());
  EXPECT_EQ(produced,
            CounterIn(diff, "sub.deltas_folded") + CounterIn(diff, "sub.deltas_orphaned"));
  EXPECT_EQ(CounterIn(diff, "sub.deltas_reordered"), 0u);
  EXPECT_EQ(CounterIn(diff, "epoch.ticks"), hosts.size());
  EXPECT_GT(CounterIn(diff, "tib.inserts"), 0u);
  EXPECT_GT(CounterIn(diff, "sub.channel.submitted"), 0u);
  EXPECT_EQ(CounterIn(diff, "sub.channel.submitted"), CounterIn(diff, "sub.channel.processed"));

  // (b) Span chain: for each host's epoch-1 delta the stages all appear
  // with the same correlation keys.
  const std::vector<TraceSpan> spans = Tracer::Global().Snapshot();
  for (HostId h : hosts) {
    for (const char* stage : {"epoch.tick", "standing.take_delta", "fold"}) {
      bool found = false;
      for (const TraceSpan& s : spans) {
        if (std::string(s.name) == stage && s.keys.sub == sub && s.keys.host == h &&
            s.keys.epoch == 1) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing span " << stage << " for host " << h;
    }
  }
  bool materialized = false;
  for (const TraceSpan& s : spans) {
    if (std::string(s.name) == "materialize" && s.keys.sub == sub) {
      materialized = true;
    }
  }
  EXPECT_TRUE(materialized);
}

}  // namespace
}  // namespace pathdump
