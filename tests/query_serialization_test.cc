// Wire-format accounting and merge-algebra tests for QueryResult, plus
// assorted edge-case semantics (CompactPath truncation, RPC cost model,
// degenerate aggregation trees, VL2 fluid paths).

#include <gtest/gtest.h>

#include "src/controller/aggregation_tree.h"
#include "src/controller/rpc_model.h"
#include "src/edge/fleet.h"
#include "src/edge/query.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/vl2.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Golden serialized sizes (the constants Figs. 11/12 traffic rests on) ---

TEST(SerializationGolden, FixedFraming) {
  // Header-only payloads.
  EXPECT_EQ(SerializedBytes(QueryResult{std::monostate{}}), 16u);
  EXPECT_EQ(SerializedBytes(QueryResult{CountSummary{1, 2}}), 32u);

  // Histogram: 16 header + 8 binwidth + 12/bin.
  FlowSizeHistogram h;
  h.bins[0] = 5;
  h.bins[7] = 1;
  EXPECT_EQ(SerializedBytes(QueryResult{h}), 16u + 8u + 2u * 12u);

  // Top-k: 16 + 21/item.
  TopKFlows t;
  t.items = {{100, FiveTuple{}}, {50, FiveTuple{}}, {10, FiveTuple{}}};
  EXPECT_EQ(SerializedBytes(QueryResult{t}), 16u + 3u * 21u);

  // FlowList: 16 + (13 + 1 + 4*len)/flow.
  FlowList fl;
  fl.flows.push_back(Flow{FiveTuple{}, {1, 2, 3}});
  EXPECT_EQ(SerializedBytes(QueryResult{fl}), 16u + 13u + 1u + 12u);

  // PathList: 16 + (1 + 4*len)/path.
  PathList pl;
  pl.paths.push_back({1, 2, 3, 4, 5});
  pl.paths.push_back({9});
  EXPECT_EQ(SerializedBytes(QueryResult{pl}), 16u + (1u + 20u) + (1u + 4u));
}

// --- Merge algebra: order independence where the semantics demand it ---

TEST(MergeAlgebra, HistogramMergeIsCommutative) {
  FlowSizeHistogram a;
  a.bins[0] = 3;
  a.bins[2] = 1;
  FlowSizeHistogram b;
  b.bins[2] = 4;
  b.bins[5] = 2;

  QueryResult ab = a;
  MergeQueryResult(ab, QueryResult{b});
  QueryResult ba = b;
  MergeQueryResult(ba, QueryResult{a});
  EXPECT_EQ(std::get<FlowSizeHistogram>(ab).bins, std::get<FlowSizeHistogram>(ba).bins);
}

TEST(MergeAlgebra, TopKMergeIsOrderIndependentOnKeys) {
  auto item = [](uint64_t bytes, uint16_t port) {
    return std::pair<uint64_t, FiveTuple>{bytes, FiveTuple{1, 2, port, 80, 6}};
  };
  TopKFlows a;
  a.k = 3;
  a.items = {item(50, 1), item(40, 2), item(30, 3)};
  TopKFlows b;
  b.k = 3;
  b.items = {item(45, 4), item(35, 5)};

  QueryResult ab = a;
  MergeQueryResult(ab, QueryResult{b});
  QueryResult ba = b;
  MergeQueryResult(ba, QueryResult{a});
  auto ka = std::get<TopKFlows>(ab);
  auto kb = std::get<TopKFlows>(ba);
  ka.Finalize();
  kb.Finalize();
  ASSERT_EQ(ka.items.size(), kb.items.size());
  for (size_t i = 0; i < ka.items.size(); ++i) {
    EXPECT_EQ(ka.items[i].first, kb.items[i].first);
  }
  // Trimmed to k with the right survivors: 50, 45, 40.
  EXPECT_EQ(ka.items[0].first, 50u);
  EXPECT_EQ(ka.items[2].first, 40u);
}

TEST(MergeAlgebra, TopKMergeIsAssociativeOnKeys) {
  auto item = [](uint64_t bytes, uint16_t port) {
    return std::pair<uint64_t, FiveTuple>{bytes, FiveTuple{1, 2, port, 80, 6}};
  };
  TopKFlows parts[3];
  for (int i = 0; i < 3; ++i) {
    parts[i].k = 2;
    parts[i].items = {item(uint64_t(10 * (i + 1)), uint16_t(i * 2)),
                      item(uint64_t(10 * (i + 1) + 5), uint16_t(i * 2 + 1))};
  }
  // (a+b)+c
  QueryResult left = parts[0];
  MergeQueryResult(left, QueryResult{parts[1]});
  MergeQueryResult(left, QueryResult{parts[2]});
  // a+(b+c)
  QueryResult right_inner = parts[1];
  MergeQueryResult(right_inner, QueryResult{parts[2]});
  QueryResult right = parts[0];
  MergeQueryResult(right, right_inner);

  auto lk = std::get<TopKFlows>(left);
  auto rk = std::get<TopKFlows>(right);
  lk.Finalize();
  rk.Finalize();
  ASSERT_EQ(lk.items.size(), rk.items.size());
  for (size_t i = 0; i < lk.items.size(); ++i) {
    EXPECT_EQ(lk.items[i].first, rk.items[i].first);
  }
}

TEST(MergeAlgebra, ListMergesConcatenate) {
  FlowList a;
  a.flows.push_back(Flow{FiveTuple{1, 2, 3, 4, 6}, {1}});
  FlowList b;
  b.flows.push_back(Flow{FiveTuple{1, 2, 5, 4, 6}, {2}});
  QueryResult acc = a;
  MergeQueryResult(acc, QueryResult{b});
  EXPECT_EQ(std::get<FlowList>(acc).flows.size(), 2u);

  PathList pa;
  pa.paths.push_back({1});
  QueryResult pacc = pa;
  MergeQueryResult(pacc, QueryResult{PathList{{{2, 3}}}});
  EXPECT_EQ(std::get<PathList>(pacc).paths.size(), 2u);
}

// --- CompactPath truncation semantics ---

TEST(CompactPathLimits, OverlongPathsTruncateDeterministically) {
  Path longer{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  CompactPath c = CompactPath::FromPath(longer);
  EXPECT_EQ(c.len, CompactPath::kMaxSwitches);
  Path back = c.ToPath();
  EXPECT_EQ(back.size(), size_t(CompactPath::kMaxSwitches));
  for (int i = 0; i < CompactPath::kMaxSwitches; ++i) {
    EXPECT_EQ(back[size_t(i)], longer[size_t(i)]);
  }
}

// --- RPC cost model arithmetic ---

TEST(RpcModelTest, TransferMath) {
  RpcModel rpc;
  rpc.per_message_overhead_seconds = 0.001;
  rpc.bandwidth_bytes_per_sec = 1000.0;
  EXPECT_DOUBLE_EQ(rpc.TransferSeconds(0), 0.001);
  EXPECT_DOUBLE_EQ(rpc.TransferSeconds(500), 0.001 + 0.5);
  // Bigger payloads strictly cost more.
  EXPECT_LT(rpc.TransferSeconds(10), rpc.TransferSeconds(1000));
}

// --- Degenerate aggregation trees ---

TEST(AggregationDegenerate, ChainTree) {
  std::vector<HostId> hosts{1, 2, 3, 4, 5};
  AggregationTree chain = BuildAggregationTree(hosts, 1, 1);
  EXPECT_EQ(chain.roots.size(), 1u);
  EXPECT_EQ(chain.depth(), 5);
  for (const AggregationNode& n : chain.nodes) {
    EXPECT_LE(n.children.size(), 1u);
  }
}

TEST(AggregationDegenerate, FlatTree) {
  std::vector<HostId> hosts{1, 2, 3, 4, 5};
  AggregationTree flat = BuildAggregationTree(hosts, 100, 4);
  EXPECT_EQ(flat.roots.size(), 5u);
  EXPECT_EQ(flat.depth(), 1);
}

// --- Fluid on VL2 ---

TEST(Vl2Fluid, PathsAreLegalAndBytesConserved) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  FluidConfig cfg;
  FluidSimulation fluid(&topo, &router, cfg);

  std::vector<FlowDesc> flows;
  uint16_t port = 10000;
  for (HostId src : topo.hosts()) {
    for (HostId dst : topo.hosts()) {
      if (src == dst) {
        continue;
      }
      FlowDesc f;
      f.src = src;
      f.dst = dst;
      f.bytes = 5000;
      f.tuple = testutil::MakeFlow(topo, src, dst, port++);
      flows.push_back(f);
    }
  }
  auto stats = fluid.Run(flows, &fleet, nullptr);
  EXPECT_EQ(stats.flows, flows.size());

  uint64_t total_bytes = 0;
  size_t records = 0;
  for (EdgeAgent* agent : fleet.all()) {
    for (const TibRecord& rec : agent->tib().records()) {
      ++records;
      total_bytes += rec.bytes;
      // Legal VL2 path shapes: 1 (intra-rack), 3 (shared agg), 5 switches.
      EXPECT_TRUE(rec.path.len == 1 || rec.path.len == 3 || rec.path.len == 5)
          << int(rec.path.len);
    }
  }
  EXPECT_EQ(records, flows.size());
  EXPECT_EQ(total_bytes, uint64_t(flows.size()) * 5000u);
}

// --- GetFlows dedup + GetDuration multi-record semantics ---

TEST(AgentSemantics, GetFlowsDedupsAndDurationSpans) {
  Topology topo = BuildVl2(4, 4, 2, 2);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgent agent(topo.hosts().back(), &topo, &codec);

  FiveTuple flow = testutil::MakeFlow(topo, topo.hosts().front(), topo.hosts().back());
  Router router(&topo);
  Path path = router.EcmpPaths(topo.hosts().front(), topo.hosts().back())[0];
  // Two time-disjoint records of the same (flow, path).
  for (int i = 0; i < 2; ++i) {
    TibRecord rec;
    rec.flow = flow;
    rec.path = CompactPath::FromPath(path);
    rec.stime = SimTime(i) * 10 * kNsPerSec;
    rec.etime = rec.stime + kNsPerSec;
    rec.bytes = 1000;
    rec.pkts = 1;
    agent.IngestRecord(rec, rec.etime);
  }
  LinkId any{kInvalidNode, kInvalidNode};
  EXPECT_EQ(agent.GetFlows(any, TimeRange::All()).size(), 1u)
      << "same (flow, path) must appear once";
  EXPECT_EQ(agent.GetPaths(flow, any, TimeRange::All()).size(), 1u);
  // Duration spans from first stime to last etime: 11 seconds.
  EXPECT_EQ(agent.GetDuration(Flow{flow, path}, TimeRange::All()), 11 * kNsPerSec);
  // Range restricted to the first record: 1 second.
  EXPECT_EQ(agent.GetDuration(Flow{flow, path}, TimeRange{0, 5 * kNsPerSec}), kNsPerSec);
}

}  // namespace
}  // namespace pathdump
