// Wire-format accounting and merge-algebra tests for QueryResult, plus
// assorted edge-case semantics (CompactPath truncation, RPC cost model,
// degenerate aggregation trees, VL2 fluid paths).

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/flow_delta.h"
#include "src/common/rng.h"
#include "src/controller/aggregation_tree.h"
#include "src/controller/rpc_model.h"
#include "src/edge/fleet.h"
#include "src/edge/query.h"
#include "src/edge/standing_query.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/vl2.h"
#include "src/transport/wire.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Golden serialized sizes (the constants Figs. 11/12 traffic rests on) ---

TEST(SerializationGolden, FixedFraming) {
  // Header-only payloads.
  EXPECT_EQ(SerializedBytes(QueryResult{std::monostate{}}), 16u);
  EXPECT_EQ(SerializedBytes(QueryResult{CountSummary{1, 2}}), 32u);

  // Histogram: 16 header + 8 binwidth + 12/bin.
  FlowSizeHistogram h;
  h.bins[0] = 5;
  h.bins[7] = 1;
  EXPECT_EQ(SerializedBytes(QueryResult{h}), 16u + 8u + 2u * 12u);

  // Top-k: 16 + 21/item.
  TopKFlows t;
  t.items = {{100, FiveTuple{}}, {50, FiveTuple{}}, {10, FiveTuple{}}};
  EXPECT_EQ(SerializedBytes(QueryResult{t}), 16u + 3u * 21u);

  // FlowList: 16 + (13 + 1 + 4*len)/flow.
  FlowList fl;
  fl.flows.push_back(Flow{FiveTuple{}, {1, 2, 3}});
  EXPECT_EQ(SerializedBytes(QueryResult{fl}), 16u + 13u + 1u + 12u);

  // PathList: 16 + (1 + 4*len)/path.
  PathList pl;
  pl.paths.push_back({1, 2, 3, 4, 5});
  pl.paths.push_back({9});
  EXPECT_EQ(SerializedBytes(QueryResult{pl}), 16u + (1u + 20u) + (1u + 4u));
}

// --- Serialize / merge / size-accounting consistency ---
//
// For every payload with a wire size, the three views must agree: the
// size is a pure function of the content, merging re-derives the size
// from the merged content (never by adding the inputs' sizes), and the
// per-item constants match the golden framing above.

TEST(SerializationConsistency, FlowBytesDeltaGoldenAndMergeAgree) {
  auto item = [](uint16_t port, uint64_t bytes) {
    return std::pair<FiveTuple, uint64_t>{FiveTuple{1, 2, port, 80, kProtoTcp}, bytes};
  };
  // Golden framing: 16-byte header + 21 per item (same per-flow item
  // size as TopKFlows).
  FlowBytesDelta empty;
  EXPECT_EQ(empty.SerializedSize(), 16u);
  FlowBytesDelta a;
  a.items = {item(10, 100), item(20, 200)};
  EXPECT_EQ(a.SerializedSize(), 16u + 2u * 21u);

  // Merge with one shared flow: 2 + 2 items collapse to 3, and the size
  // tracks the merged item count — not the sum of the input sizes.
  FlowBytesDelta b;
  b.items = {item(20, 50), item(30, 300)};
  FlowBytesDelta ab = a;
  ab.Merge(b);
  ASSERT_EQ(ab.items.size(), 3u);
  EXPECT_EQ(ab.SerializedSize(), 16u + 3u * 21u);
  EXPECT_EQ(ab.items[1].second, 250u);  // shared flow summed
  // Canonical order survives the merge.
  for (size_t i = 1; i < ab.items.size(); ++i) {
    EXPECT_LT(ab.items[i - 1].first, ab.items[i].first);
  }
  // Merge is commutative on content, hence on bytes.
  FlowBytesDelta ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.SerializedSize(), ba.SerializedSize());

  // ApplyTo agrees with Merge: folding a then b into a map equals the
  // merged delta's contents.
  FlowBytesMap folded;
  a.ApplyTo(folded);
  b.ApplyTo(folded);
  ASSERT_EQ(folded.size(), ab.items.size());
  for (const auto& [flow, bytes] : ab.items) {
    EXPECT_EQ(folded.at(flow), bytes);
  }
}

TEST(SerializationConsistency, QueryDeltaFramingAndMaterialization) {
  QueryDelta d;
  d.subscription_id = 7;
  d.host = 3;
  d.epoch = 1;
  // Empty delta: 24-byte sub/host/epoch framing + payload header.
  EXPECT_EQ(d.SerializedSize(), 24u + 16u);
  d.payload.items = {{FiveTuple{1, 2, 10, 80, kProtoTcp}, 500},
                     {FiveTuple{1, 2, 20, 80, kProtoTcp}, 900}};
  EXPECT_EQ(d.SerializedSize(), 24u + 16u + 2u * 21u);

  // Materializing the folded payload yields a result whose size obeys
  // the golden framing for its own type.
  FlowBytesMap folded;
  d.payload.ApplyTo(folded);
  StandingQuerySpec topk;
  topk.kind = StandingQuerySpec::Kind::kTopK;
  topk.k = 10;
  QueryResult r = MaterializeStandingResult(topk, folded);
  EXPECT_EQ(SerializedBytes(r), 16u + 2u * 21u);
  StandingQuerySpec hist;
  hist.kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  hist.bin_width = 1000;
  QueryResult h = MaterializeStandingResult(hist, folded);
  // Two flows in bins 0 and... 500/1000 = 0 and 900/1000 = 0: one bin.
  EXPECT_EQ(std::get<FlowSizeHistogram>(h).bins.size(), 1u);
  EXPECT_EQ(SerializedBytes(h), 16u + 8u + 1u * 12u);
}

TEST(SerializationConsistency, RecordDeltaFramingFoldAndMaterialization) {
  // Per-record framing: 16 header + (8 id + 13 tuple + 8 bytes + 4 pkts
  // + 1 + 4*path_len)/item.
  RecordDelta rd;
  rd.items.push_back(RecordDeltaItem{5, FiveTuple{1, 2, 10, 80, kProtoTcp}, {1, 2}, 500, 3});
  rd.items.push_back(RecordDeltaItem{9, FiveTuple{1, 2, 20, 80, kProtoTcp}, {1, 2, 3}, 900, 4});
  EXPECT_EQ(rd.SerializedSize(), 16u + (33u + 1u + 8u) + (33u + 1u + 12u));

  // A QueryDelta carries the record payload's size under the same 24-byte
  // framing as the per-flow shape.
  QueryDelta d;
  d.records = rd;
  EXPECT_EQ(d.SerializedSize(), 24u + rd.SerializedSize());

  // Folding dedups (flow, path) by minimum id and materializes in
  // first-appearance (ascending id) order; CountSummary sums every item.
  StandingQuerySpec list_spec;
  list_spec.kind = StandingQuerySpec::Kind::kFlowList;
  RecordFoldState state;
  state.Fold(list_spec, rd);
  RecordDelta dup;  // same (flow, path) as item 1 but a later id
  dup.items.push_back(RecordDeltaItem{12, FiveTuple{1, 2, 10, 80, kProtoTcp}, {1, 2}, 100, 1});
  state.Fold(list_spec, dup);
  QueryResult list = MaterializeStandingRecords(list_spec, state);
  const auto& fl = std::get<FlowList>(list);
  ASSERT_EQ(fl.flows.size(), 2u);
  EXPECT_EQ(fl.flows[0].id.src_port, 10);  // id 5 before id 9
  EXPECT_EQ(fl.flows[1].id.src_port, 20);

  StandingQuerySpec count_spec;
  count_spec.kind = StandingQuerySpec::Kind::kCountSummary;
  RecordFoldState cstate;
  cstate.Fold(count_spec, rd);
  cstate.Fold(count_spec, dup);
  QueryResult count = MaterializeStandingRecords(count_spec, cstate);
  EXPECT_EQ(std::get<CountSummary>(count), (CountSummary{1500, 8}));
}

TEST(SerializationConsistency, MergedResultSizesTrackContent) {
  // Audit of the existing result types: after a merge, SerializedBytes
  // must equal the golden framing recomputed from the merged content.
  FlowSizeHistogram ha;
  ha.bins[0] = 1;
  ha.bins[3] = 2;
  FlowSizeHistogram hb;
  hb.bins[3] = 1;
  hb.bins[9] = 4;
  QueryResult hacc = ha;
  MergeQueryResult(hacc, QueryResult{hb});
  const auto& hm = std::get<FlowSizeHistogram>(hacc);
  EXPECT_EQ(SerializedBytes(hacc), 16u + 8u + hm.bins.size() * 12u);
  EXPECT_EQ(hm.bins.size(), 3u);  // shared bin merged, not duplicated

  TopKFlows ta;
  ta.k = 2;
  ta.items = {{100, FiveTuple{1, 2, 1, 80, kProtoTcp}}, {90, FiveTuple{1, 2, 2, 80, kProtoTcp}}};
  TopKFlows tb;
  tb.k = 2;
  tb.items = {{95, FiveTuple{1, 2, 3, 80, kProtoTcp}}};
  QueryResult tacc = ta;
  MergeQueryResult(tacc, QueryResult{tb});
  const auto& tm = std::get<TopKFlows>(tacc);
  // Truncated to k by the merge — size reflects the survivors only.
  EXPECT_EQ(tm.items.size(), 2u);
  EXPECT_EQ(SerializedBytes(tacc), 16u + tm.items.size() * 21u);

  FlowList fa;
  fa.flows.push_back(Flow{FiveTuple{1, 2, 3, 4, 6}, {1, 2}});
  FlowList fb;
  fb.flows.push_back(Flow{FiveTuple{1, 2, 5, 4, 6}, {3}});
  QueryResult facc = fa;
  MergeQueryResult(facc, QueryResult{fb});
  // Concatenating lists: merged size = sum of parts minus one header.
  EXPECT_EQ(SerializedBytes(facc),
            SerializedBytes(QueryResult{fa}) + SerializedBytes(QueryResult{fb}) - 16u);

  CountSummary ca{10, 2};
  CountSummary cb{5, 1};
  QueryResult cacc = ca;
  MergeQueryResult(cacc, QueryResult{cb});
  // Fixed-size payloads merge without growing.
  EXPECT_EQ(SerializedBytes(cacc), 32u);
}

// --- Merge algebra: order independence where the semantics demand it ---

TEST(MergeAlgebra, HistogramMergeIsCommutative) {
  FlowSizeHistogram a;
  a.bins[0] = 3;
  a.bins[2] = 1;
  FlowSizeHistogram b;
  b.bins[2] = 4;
  b.bins[5] = 2;

  QueryResult ab = a;
  MergeQueryResult(ab, QueryResult{b});
  QueryResult ba = b;
  MergeQueryResult(ba, QueryResult{a});
  EXPECT_EQ(std::get<FlowSizeHistogram>(ab).bins, std::get<FlowSizeHistogram>(ba).bins);
}

TEST(MergeAlgebra, TopKMergeIsOrderIndependentOnKeys) {
  auto item = [](uint64_t bytes, uint16_t port) {
    return std::pair<uint64_t, FiveTuple>{bytes, FiveTuple{1, 2, port, 80, 6}};
  };
  TopKFlows a;
  a.k = 3;
  a.items = {item(50, 1), item(40, 2), item(30, 3)};
  TopKFlows b;
  b.k = 3;
  b.items = {item(45, 4), item(35, 5)};

  QueryResult ab = a;
  MergeQueryResult(ab, QueryResult{b});
  QueryResult ba = b;
  MergeQueryResult(ba, QueryResult{a});
  auto ka = std::get<TopKFlows>(ab);
  auto kb = std::get<TopKFlows>(ba);
  ka.Finalize();
  kb.Finalize();
  ASSERT_EQ(ka.items.size(), kb.items.size());
  for (size_t i = 0; i < ka.items.size(); ++i) {
    EXPECT_EQ(ka.items[i].first, kb.items[i].first);
  }
  // Trimmed to k with the right survivors: 50, 45, 40.
  EXPECT_EQ(ka.items[0].first, 50u);
  EXPECT_EQ(ka.items[2].first, 40u);
}

TEST(MergeAlgebra, TopKMergeIsAssociativeOnKeys) {
  auto item = [](uint64_t bytes, uint16_t port) {
    return std::pair<uint64_t, FiveTuple>{bytes, FiveTuple{1, 2, port, 80, 6}};
  };
  TopKFlows parts[3];
  for (int i = 0; i < 3; ++i) {
    parts[i].k = 2;
    parts[i].items = {item(uint64_t(10 * (i + 1)), uint16_t(i * 2)),
                      item(uint64_t(10 * (i + 1) + 5), uint16_t(i * 2 + 1))};
  }
  // (a+b)+c
  QueryResult left = parts[0];
  MergeQueryResult(left, QueryResult{parts[1]});
  MergeQueryResult(left, QueryResult{parts[2]});
  // a+(b+c)
  QueryResult right_inner = parts[1];
  MergeQueryResult(right_inner, QueryResult{parts[2]});
  QueryResult right = parts[0];
  MergeQueryResult(right, right_inner);

  auto lk = std::get<TopKFlows>(left);
  auto rk = std::get<TopKFlows>(right);
  lk.Finalize();
  rk.Finalize();
  ASSERT_EQ(lk.items.size(), rk.items.size());
  for (size_t i = 0; i < lk.items.size(); ++i) {
    EXPECT_EQ(lk.items[i].first, rk.items[i].first);
  }
}

TEST(MergeAlgebra, ListMergesConcatenate) {
  FlowList a;
  a.flows.push_back(Flow{FiveTuple{1, 2, 3, 4, 6}, {1}});
  FlowList b;
  b.flows.push_back(Flow{FiveTuple{1, 2, 5, 4, 6}, {2}});
  QueryResult acc = a;
  MergeQueryResult(acc, QueryResult{b});
  EXPECT_EQ(std::get<FlowList>(acc).flows.size(), 2u);

  PathList pa;
  pa.paths.push_back({1});
  QueryResult pacc = pa;
  MergeQueryResult(pacc, QueryResult{PathList{{{2, 3}}}});
  EXPECT_EQ(std::get<PathList>(pacc).paths.size(), 2u);
}

// --- CompactPath truncation semantics ---

TEST(CompactPathLimits, OverlongPathsTruncateDeterministically) {
  Path longer{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  CompactPath c = CompactPath::FromPath(longer);
  EXPECT_EQ(c.len, CompactPath::kMaxSwitches);
  Path back = c.ToPath();
  EXPECT_EQ(back.size(), size_t(CompactPath::kMaxSwitches));
  for (int i = 0; i < CompactPath::kMaxSwitches; ++i) {
    EXPECT_EQ(back[size_t(i)], longer[size_t(i)]);
  }
}

// --- RPC cost model arithmetic ---

TEST(RpcModelTest, TransferMath) {
  RpcModel rpc;
  rpc.per_message_overhead_seconds = 0.001;
  rpc.bandwidth_bytes_per_sec = 1000.0;
  EXPECT_DOUBLE_EQ(rpc.TransferSeconds(0), 0.001);
  EXPECT_DOUBLE_EQ(rpc.TransferSeconds(500), 0.001 + 0.5);
  // Bigger payloads strictly cost more.
  EXPECT_LT(rpc.TransferSeconds(10), rpc.TransferSeconds(1000));
}

// --- Degenerate aggregation trees ---

TEST(AggregationDegenerate, ChainTree) {
  std::vector<HostId> hosts{1, 2, 3, 4, 5};
  AggregationTree chain = BuildAggregationTree(hosts, 1, 1);
  EXPECT_EQ(chain.roots.size(), 1u);
  EXPECT_EQ(chain.depth(), 5);
  for (const AggregationNode& n : chain.nodes) {
    EXPECT_LE(n.children.size(), 1u);
  }
}

TEST(AggregationDegenerate, FlatTree) {
  std::vector<HostId> hosts{1, 2, 3, 4, 5};
  AggregationTree flat = BuildAggregationTree(hosts, 100, 4);
  EXPECT_EQ(flat.roots.size(), 5u);
  EXPECT_EQ(flat.depth(), 1);
}

// --- Fluid on VL2 ---

TEST(Vl2Fluid, PathsAreLegalAndBytesConserved) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  FluidConfig cfg;
  FluidSimulation fluid(&topo, &router, cfg);

  std::vector<FlowDesc> flows;
  uint16_t port = 10000;
  for (HostId src : topo.hosts()) {
    for (HostId dst : topo.hosts()) {
      if (src == dst) {
        continue;
      }
      FlowDesc f;
      f.src = src;
      f.dst = dst;
      f.bytes = 5000;
      f.tuple = testutil::MakeFlow(topo, src, dst, port++);
      flows.push_back(f);
    }
  }
  auto stats = fluid.Run(flows, &fleet, nullptr);
  EXPECT_EQ(stats.flows, flows.size());

  uint64_t total_bytes = 0;
  size_t records = 0;
  for (EdgeAgent* agent : fleet.all()) {
    for (const TibRecord& rec : agent->tib().records()) {
      ++records;
      total_bytes += rec.bytes;
      // Legal VL2 path shapes: 1 (intra-rack), 3 (shared agg), 5 switches.
      EXPECT_TRUE(rec.path.len == 1 || rec.path.len == 3 || rec.path.len == 5)
          << int(rec.path.len);
    }
  }
  EXPECT_EQ(records, flows.size());
  EXPECT_EQ(total_bytes, uint64_t(flows.size()) * 5000u);
}

// --- GetFlows dedup + GetDuration multi-record semantics ---

TEST(AgentSemantics, GetFlowsDedupsAndDurationSpans) {
  Topology topo = BuildVl2(4, 4, 2, 2);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgent agent(topo.hosts().back(), &topo, &codec);

  FiveTuple flow = testutil::MakeFlow(topo, topo.hosts().front(), topo.hosts().back());
  Router router(&topo);
  Path path = router.EcmpPaths(topo.hosts().front(), topo.hosts().back())[0];
  // Two time-disjoint records of the same (flow, path).
  for (int i = 0; i < 2; ++i) {
    TibRecord rec;
    rec.flow = flow;
    rec.path = CompactPath::FromPath(path);
    rec.stime = SimTime(i) * 10 * kNsPerSec;
    rec.etime = rec.stime + kNsPerSec;
    rec.bytes = 1000;
    rec.pkts = 1;
    agent.IngestRecord(rec, rec.etime);
  }
  LinkId any{kInvalidNode, kInvalidNode};
  EXPECT_EQ(agent.GetFlows(any, TimeRange::All()).size(), 1u)
      << "same (flow, path) must appear once";
  EXPECT_EQ(agent.GetPaths(flow, any, TimeRange::All()).size(), 1u);
  // Duration spans from first stime to last etime: 11 seconds.
  EXPECT_EQ(agent.GetDuration(Flow{flow, path}, TimeRange::All()), 11 * kNsPerSec);
  // Range restricted to the first record: 1 second.
  EXPECT_EQ(agent.GetDuration(Flow{flow, path}, TimeRange{0, 5 * kNsPerSec}), kNsPerSec);
}

// --- Adversarial frame decoding (src/transport/wire.h) ---
//
// The transport decoder is total: every truncated, oversized, or
// bit-flipped frame must come back as a specific WireError — never a
// crash, never a silently wrong object.  The CRC covers the whole
// header (crc field zeroed) plus the payload, so single-bit detection
// is deterministic, not probabilistic.

using transport::DecodedFrame;
using transport::DecodeFrame;
using transport::FrameType;
using transport::kFrameHeaderBytes;
using transport::kMaxFramePayload;
using transport::WireError;

QueryDelta MakeWireDelta(StandingQuerySpec::Kind kind) {
  QueryDelta d;
  d.subscription_id = 42;
  d.host = 7;
  d.kind = kind;
  d.epoch = 3;
  if (kind == StandingQuerySpec::Kind::kTopK ||
      kind == StandingQuerySpec::Kind::kFlowSizeHistogram) {
    d.payload.items = {{FiveTuple{1, 2, 10, 80, kProtoTcp}, 500},
                       {FiveTuple{3, 4, 20, 443, kProtoUdp}, 900}};
  } else {
    d.records.items.push_back(
        RecordDeltaItem{5, FiveTuple{1, 2, 10, 80, kProtoTcp}, {1, 2}, 500, 3});
    d.records.items.push_back(
        RecordDeltaItem{9, FiveTuple{3, 4, 20, 443, kProtoUdp}, {1, 2, 3}, 900, 4});
  }
  return d;
}

// Fixes up the frame CRC after a deliberate header/payload tamper, so a
// test can reach the checks that run *after* the checksum.
void RestampCrc(std::vector<uint8_t>& frame) {
  uint8_t hdr[kFrameHeaderBytes];
  std::memcpy(hdr, frame.data(), kFrameHeaderBytes);
  hdr[12] = hdr[13] = hdr[14] = hdr[15] = 0;
  uint32_t crc = transport::Crc32(hdr, kFrameHeaderBytes);
  crc = transport::Crc32(frame.data() + kFrameHeaderBytes, frame.size() - kFrameHeaderBytes, crc);
  std::memcpy(frame.data() + 12, &crc, 4);
}

TEST(WireAdversarial, QueryDeltaRoundTripsAllKindsAtModeledSize) {
  for (StandingQuerySpec::Kind kind :
       {StandingQuerySpec::Kind::kTopK, StandingQuerySpec::Kind::kFlowSizeHistogram,
        StandingQuerySpec::Kind::kFlowList, StandingQuerySpec::Kind::kCountSummary}) {
    const QueryDelta d = MakeWireDelta(kind);
    std::vector<uint8_t> frame;
    const size_t n = transport::EncodeQueryDeltaFrame(d, frame);
    // The invariant the repo's byte accounting rests on: real frame
    // bytes == the size the model has always charged.
    EXPECT_EQ(n, d.SerializedSize());
    EXPECT_EQ(frame.size(), n);
    DecodedFrame out;
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kOk);
    EXPECT_EQ(out.type, FrameType::kQueryDelta);
    EXPECT_EQ(out.delta, d) << "kind " << int(uint8_t(kind));
  }
}

TEST(WireAdversarial, AlarmRoundTripsWithPaths) {
  Alarm a;
  a.host = 11;
  a.flow = FiveTuple{1, 2, 10, 80, kProtoTcp};
  a.reason = AlarmReason::kPathConformance;
  a.paths = {{1, 2, 3}, {4, 5}};
  a.at = 123456789;
  std::vector<uint8_t> frame;
  const size_t n = transport::EncodeAlarmFrame(a, frame);
  EXPECT_EQ(n, transport::AlarmWireBytes(a));
  DecodedFrame out;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kOk);
  EXPECT_EQ(out.type, FrameType::kAlarm);
  EXPECT_EQ(out.alarm, a);
}

TEST(WireAdversarial, ControlFramesRoundTrip) {
  std::vector<uint8_t> f;
  DecodedFrame out;

  transport::EncodeHelloFrame(9, 4321, 7, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.type, FrameType::kHello);
  EXPECT_EQ(out.host, 9u);
  EXPECT_EQ(out.pid, 4321u);
  EXPECT_EQ(out.incarnation, 7u);

  f.clear();
  transport::EncodeResyncRequestFrame(0xBEEFu, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.type, FrameType::kResyncRequest);
  EXPECT_EQ(out.subscription_id, 0xBEEFu);

  StandingQuerySpec spec;
  spec.kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  spec.bin_width = 777;
  spec.link = LinkId{3, 7};
  spec.range = TimeRange{100, 900};
  f.clear();
  transport::EncodeSubscribeFrame(17, spec, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.subscription_id, 17u);
  EXPECT_EQ(out.spec, spec);

  f.clear();
  transport::EncodeEpochTickFrame(0xABCDEF, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.token, 0xABCDEFu);

  f.clear();
  transport::EncodeAckFrame(5, 99, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.host, 5u);
  EXPECT_EQ(out.token, 99u);

  f.clear();
  transport::EncodeIngestFrame(1000, 0xA1, 2048, 24, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.ingest_count, 1000u);
  EXPECT_EQ(out.ingest_seed, 0xA1u);
  EXPECT_EQ(out.ingest_ip_space, 2048u);
  EXPECT_EQ(out.ingest_switch_space, 24u);

  f.clear();
  transport::EncodeShutdownFrame(f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.type, FrameType::kShutdown);

  f.clear();
  transport::EncodeByeFrame(13, f);
  ASSERT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOk);
  EXPECT_EQ(out.type, FrameType::kBye);
  EXPECT_EQ(out.host, 13u);
}

TEST(WireAdversarial, SnapshotFramesRoundTripAndAllowEmpty) {
  // A snapshot is QueryDelta-shaped on the wire but its own frame type,
  // and — unlike a delta — an EMPTY snapshot is legal (a restarted
  // agent with an empty TIB still re-baselines the stream).
  for (auto kind :
       {StandingQuerySpec::Kind::kTopK, StandingQuerySpec::Kind::kFlowList}) {
    QueryDelta d = MakeWireDelta(kind);
    d.snapshot = true;
    std::vector<uint8_t> frame;
    const size_t n = transport::EncodeSnapshotFrame(d, frame);
    EXPECT_EQ(n, d.SerializedSize());
    DecodedFrame out;
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kOk);
    EXPECT_EQ(out.type, FrameType::kSnapshot);
    EXPECT_TRUE(out.delta.snapshot);
    EXPECT_EQ(out.delta, d) << "kind " << int(uint8_t(kind));

    QueryDelta empty = MakeWireDelta(kind);
    empty.snapshot = true;
    empty.payload.items.clear();
    empty.records.items.clear();
    frame.clear();
    transport::EncodeSnapshotFrame(empty, frame);
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kOk);
    EXPECT_TRUE(out.delta.snapshot);
    EXPECT_EQ(out.delta, empty);

    // The same empty payload as a plain QueryDelta frame stays illegal.
    frame.clear();
    transport::EncodeQueryDeltaFrame(empty, frame);
    EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kBadPayload);
  }
}

TEST(WireAdversarial, TruncationAtEveryPrefixIsRejected) {
  std::vector<uint8_t> frame;
  transport::EncodeQueryDeltaFrame(MakeWireDelta(StandingQuerySpec::Kind::kFlowList), frame);
  ASSERT_GT(frame.size(), kFrameHeaderBytes);
  for (size_t len = 0; len < frame.size(); ++len) {
    DecodedFrame out;
    const WireError err = DecodeFrame(frame.data(), len, &out);
    EXPECT_EQ(err, WireError::kTruncated) << "prefix " << len;
  }
}

TEST(WireAdversarial, TrailingBytesAreRejectedAsOversized) {
  std::vector<uint8_t> frame;
  transport::EncodeAckFrame(1, 2, frame);
  frame.push_back(0x00);  // ring messages carry exactly one frame
  DecodedFrame out;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &out), WireError::kOversized);
}

TEST(WireAdversarial, HeaderFieldTampersAreCategorized) {
  std::vector<uint8_t> base;
  transport::EncodeQueryDeltaFrame(MakeWireDelta(StandingQuerySpec::Kind::kTopK), base);
  DecodedFrame out;

  {  // Magic stomped: not a frame at all (checked before the CRC).
    std::vector<uint8_t> f = base;
    f[0] ^= 0xFF;
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kBadMagic);
  }
  {  // Future version, CRC restamped so the version check is what fires.
    std::vector<uint8_t> f = base;
    f[4] = transport::kWireVersion + 1;
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kBadVersion);
  }
  {  // Unknown frame type, CRC restamped.
    std::vector<uint8_t> f = base;
    f[5] = 0xEE;
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kBadType);
  }
  {  // Declared length beyond the cap: rejected before any allocation.
    std::vector<uint8_t> f = base;
    const uint32_t huge = uint32_t(kMaxFramePayload) + 1;
    std::memcpy(f.data() + 8, &huge, 4);
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOversized);
  }
  {  // Declared length grown within the cap: frame claims bytes the
    // buffer doesn't have.
    std::vector<uint8_t> f = base;
    uint32_t len;
    std::memcpy(&len, f.data() + 8, 4);
    len += 8;
    std::memcpy(f.data() + 8, &len, 4);
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kTruncated);
  }
  {  // Declared length shrunk: trailing bytes.
    std::vector<uint8_t> f = base;
    uint32_t len;
    std::memcpy(&len, f.data() + 8, 4);
    len -= 8;
    std::memcpy(f.data() + 8, &len, 4);
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kOversized);
  }
  {  // Unknown standing kind in the delta framing, CRC restamped: the
    // per-type payload decoder rejects it.
    std::vector<uint8_t> f = base;
    f[kFrameHeaderBytes + 12] = 0x09;  // kind byte, after 8 sub_id + 4 host
    RestampCrc(f);
    EXPECT_EQ(DecodeFrame(f.data(), f.size(), &out), WireError::kBadPayload);
  }
  {  // Record item declaring an impossible path length, CRC restamped.
    std::vector<uint8_t> rec;
    transport::EncodeQueryDeltaFrame(MakeWireDelta(StandingQuerySpec::Kind::kFlowList), rec);
    // Payload: 24B delta framing, then 8 id + 13 tuple + 8 bytes + 4
    // pkts put the first item's path-length byte at offset 57.
    rec[kFrameHeaderBytes + 57] = 0xFF;
    RestampCrc(rec);
    EXPECT_EQ(DecodeFrame(rec.data(), rec.size(), &out), WireError::kBadPayload);
  }
}

TEST(WireAdversarial, EverySingleBitFlipIsDetected) {
  // CRC-32 detects all single-bit errors deterministically, so this is
  // an exhaustive guarantee, not a sample: flip each bit of the frame
  // in turn and every mutant must be rejected with a counted category.
  std::vector<uint8_t> base;
  transport::EncodeQueryDeltaFrame(MakeWireDelta(StandingQuerySpec::Kind::kCountSummary), base);
  for (size_t bit = 0; bit < base.size() * 8; ++bit) {
    std::vector<uint8_t> f = base;
    f[bit / 8] ^= uint8_t(1u << (bit % 8));
    DecodedFrame out;
    const WireError err = DecodeFrame(f.data(), f.size(), &out);
    EXPECT_NE(err, WireError::kOk) << "bit " << bit << " slipped through";
  }
}

TEST(WireAdversarial, SeededFuzzRejectsRandomCorruption) {
  // Beyond single bits: seeded random burst corruption (offset, width,
  // value all drawn from the PCG stream) must always come back as an
  // error and never crash.  Deterministic seed -> reproducible failures.
  std::vector<uint8_t> base;
  transport::EncodeQueryDeltaFrame(MakeWireDelta(StandingQuerySpec::Kind::kFlowList), base);
  Rng rng(0xF00DFACE);
  int rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> f = base;
    const size_t burst = 1 + rng.UniformInt(8);
    for (size_t b = 0; b < burst; ++b) {
      const size_t at = rng.UniformInt(uint32_t(f.size()));
      f[at] ^= uint8_t(1 + rng.UniformInt(255));  // nonzero: guaranteed change
    }
    if (std::memcmp(f.data(), base.data(), base.size()) == 0) {
      continue;  // bursts cancelled each other out
    }
    DecodedFrame out;
    const WireError err = DecodeFrame(f.data(), f.size(), &out);
    EXPECT_NE(err, WireError::kOk) << "iter " << iter;
    rejected += (err != WireError::kOk);
  }
  EXPECT_GT(rejected, 3900);  // the loop really ran
}

}  // namespace
}  // namespace pathdump
