// Determinism tests for the controller's parallel query fan-out:
// Execute / ExecuteMultiLevel must return byte-identical QueryResults
// and identical QueryExecStats.network_bytes across 1, 4, and 16
// worker threads.  The ThreadPool itself is covered in
// tests/thread_pool_test.cc.

#include <gtest/gtest.h>

#include <vector>

#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Controller determinism across worker counts ---

// FatTree(8): 128 hosts, matching the "≥128 simulated hosts" bar of the
// Fig. 11/12 experiments (which use 112 of these hosts).
class ParallelControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(8);
    net_ = std::make_unique<Network>(&topo_, NetworkConfig{});
    fleet_ = std::make_unique<AgentFleet>(&topo_, &net_->codec());
    controller_ = std::make_unique<Controller>();
    controller_->RegisterFleet(*fleet_);

    // Deterministic per-host TIB contents: host h holds 8 flows from
    // distinct sources with byte counts that force real merge work.
    SimTime now = kNsPerSec;
    const std::vector<HostId>& hosts = topo_.hosts();
    for (size_t hi = 0; hi < hosts.size(); ++hi) {
      HostId h = hosts[hi];
      for (int f = 0; f < 8; ++f) {
        HostId src = hosts[(hi + size_t(f) + 1) % hosts.size()];
        TibRecord rec;
        rec.flow = testutil::MakeFlow(topo_, src, h, uint16_t(20000 + f));
        rec.path = CompactPath::FromPath({topo_.TorOfHost(h)});
        rec.stime = 0;
        rec.etime = now;
        rec.bytes = 1000 + uint64_t(hi) * 131 + uint64_t(f) * 17;
        rec.pkts = 10;
        fleet_->agent(h).IngestRecord(rec, now);
      }
    }
    hosts_ = controller_->registered_hosts();
    ASSERT_GE(hosts_.size(), 128u);
  }

  Topology topo_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<AgentFleet> fleet_;
  std::unique_ptr<Controller> controller_;
  std::vector<HostId> hosts_;
};

Controller::QueryFn TopKQuery() {
  return [](EdgeAgent& a) -> QueryResult { return a.TopK(50, TimeRange::All()); };
}

Controller::QueryFn HistogramQuery() {
  return [](EdgeAgent& a) -> QueryResult {
    // Wildcard link: every record matches.
    return a.FlowSizeDistribution(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All(), 500);
  };
}

TEST_F(ParallelControllerTest, ExecuteIsDeterministicAcrossWorkerCounts) {
  auto [base, base_stats] = controller_->Execute(hosts_, TopKQuery());
  const auto& base_top = std::get<TopKFlows>(base);
  for (size_t workers : {size_t(4), size_t(16)}) {
    controller_->SetWorkerThreads(workers);
    auto [res, stats] = controller_->Execute(hosts_, TopKQuery());
    const auto& top = std::get<TopKFlows>(res);
    // Byte-identical payload, element for element (merge order is fixed).
    EXPECT_EQ(top.items, base_top.items) << workers << " workers";
    EXPECT_EQ(SerializedBytes(res), SerializedBytes(base));
    EXPECT_EQ(stats.network_bytes, base_stats.network_bytes);
    EXPECT_EQ(stats.response_bytes, base_stats.response_bytes);
    EXPECT_EQ(stats.hosts, base_stats.hosts);
  }
  controller_->SetWorkerThreads(1);
}

TEST_F(ParallelControllerTest, ExecuteMultiLevelIsDeterministicAcrossWorkerCounts) {
  auto [base, base_stats] = controller_->ExecuteMultiLevel(hosts_, TopKQuery());
  const auto& base_top = std::get<TopKFlows>(base);
  for (size_t workers : {size_t(4), size_t(16)}) {
    controller_->SetWorkerThreads(workers);
    auto [res, stats] = controller_->ExecuteMultiLevel(hosts_, TopKQuery());
    const auto& top = std::get<TopKFlows>(res);
    EXPECT_EQ(top.items, base_top.items) << workers << " workers";
    EXPECT_EQ(SerializedBytes(res), SerializedBytes(base));
    EXPECT_EQ(stats.network_bytes, base_stats.network_bytes);
    EXPECT_EQ(stats.response_bytes, base_stats.response_bytes);
  }
  controller_->SetWorkerThreads(1);
}

TEST_F(ParallelControllerTest, HistogramIdenticalAcrossWorkersAndMechanisms) {
  controller_->SetWorkerThreads(1);
  auto [dbase, dstats] = controller_->Execute(hosts_, HistogramQuery());
  auto [mbase, mstats] = controller_->ExecuteMultiLevel(hosts_, HistogramQuery());
  const auto& dh = std::get<FlowSizeHistogram>(dbase);
  const auto& mh = std::get<FlowSizeHistogram>(mbase);
  EXPECT_EQ(dh.bins, mh.bins);  // mechanisms agree
  for (size_t workers : {size_t(4), size_t(16)}) {
    controller_->SetWorkerThreads(workers);
    auto [dres, ds] = controller_->Execute(hosts_, HistogramQuery());
    auto [mres, ms] = controller_->ExecuteMultiLevel(hosts_, HistogramQuery());
    EXPECT_EQ(std::get<FlowSizeHistogram>(dres).bins, dh.bins);
    EXPECT_EQ(std::get<FlowSizeHistogram>(mres).bins, mh.bins);
    EXPECT_EQ(ds.network_bytes, dstats.network_bytes);
    EXPECT_EQ(ms.network_bytes, mstats.network_bytes);
  }
  controller_->SetWorkerThreads(1);
}

TEST_F(ParallelControllerTest, UnregisteredHostsAreSkippedIdentically) {
  // An unregistered host early in the list lands on an *interior*
  // aggregation-tree node, whose empty (monostate) contribution must
  // merge as the identity (regression: MergeQueryResult used to throw
  // bad_variant_access here).
  std::vector<HostId> with_bogus = hosts_;
  with_bogus.insert(with_bogus.begin() + 2, kInvalidNode - 1);
  auto [base, base_stats] = controller_->Execute(with_bogus, TopKQuery());
  auto [mbase, mbase_stats] = controller_->ExecuteMultiLevel(with_bogus, TopKQuery());
  controller_->SetWorkerThreads(8);
  auto [res, stats] = controller_->Execute(with_bogus, TopKQuery());
  auto [mres, mstats] = controller_->ExecuteMultiLevel(with_bogus, TopKQuery());
  EXPECT_EQ(std::get<TopKFlows>(res).items, std::get<TopKFlows>(base).items);
  EXPECT_EQ(stats.network_bytes, base_stats.network_bytes);
  EXPECT_EQ(std::get<TopKFlows>(mres).items, std::get<TopKFlows>(mbase).items);
  EXPECT_EQ(mstats.network_bytes, mbase_stats.network_bytes);
  controller_->SetWorkerThreads(1);
}

TEST_F(ParallelControllerTest, PipelinedReduceHandlesDegenerateTreeShapes) {
  // The pipelined reduce climbs a dependency chain per tree edge; a
  // chain tree (fanout 1) makes every merge depend on the previous one
  // — the worst case for the per-node counters — while a flat tree has
  // no interior merges at all.  Both must stay byte-identical to the
  // sequential baseline at any worker count.
  struct Shape {
    int top_fanout;
    int fanout;
  };
  for (Shape shape : {Shape{1, 1}, Shape{100, 4}, Shape{7, 4}}) {
    controller_->SetWorkerThreads(1);
    // 24 hosts keeps the chain deep (depth 24) but the test fast.
    std::vector<HostId> subset(hosts_.begin(), hosts_.begin() + 24);
    auto [base, base_stats] =
        controller_->ExecuteMultiLevel(subset, TopKQuery(), shape.top_fanout, shape.fanout);
    for (size_t workers : {size_t(4), size_t(16)}) {
      controller_->SetWorkerThreads(workers);
      auto [res, stats] =
          controller_->ExecuteMultiLevel(subset, TopKQuery(), shape.top_fanout, shape.fanout);
      EXPECT_EQ(res, base) << shape.top_fanout << "/" << shape.fanout << ", " << workers
                           << " workers";
      EXPECT_EQ(stats.network_bytes, base_stats.network_bytes);
      EXPECT_EQ(stats.response_bytes, base_stats.response_bytes);
    }
  }
  controller_->SetWorkerThreads(1);
}

TEST(TopKFinalizeTest, TiesTruncateByTotalOrder) {
  // Three flows tie at 500 bytes across the k-boundary; the retained set
  // must be the same no matter the arrival order of the tied items.
  FiveTuple fa{1, 2, 10, 80, kProtoTcp};
  FiveTuple fb{1, 2, 20, 80, kProtoTcp};
  FiveTuple fc{1, 2, 30, 80, kProtoTcp};
  TopKFlows x;
  x.k = 2;
  x.items = {{500, fc}, {500, fa}, {500, fb}};
  x.Finalize();
  TopKFlows y;
  y.k = 2;
  y.items = {{500, fb}, {500, fc}, {500, fa}};
  y.Finalize();
  EXPECT_EQ(x.items, y.items);
  EXPECT_EQ(x.items.size(), 2u);
}

}  // namespace
}  // namespace pathdump
