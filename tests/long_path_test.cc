// The suspicious-long-path trap on a real fat-tree (§3.1): two concurrent
// failures force a double detour; the packet accumulates a third tag and
// the next switch punts it to the controller — exactly the "shortest + 4
// hops" threshold the paper configures by default.

#include <gtest/gtest.h>

#include "src/controller/loop_detector.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

TEST(SuspiciousPathTrap, DoubleDetourPuntsToController) {
  Topology topo = BuildFatTree(4);
  NetworkConfig cfg;
  cfg.max_hops = 64;
  Network net(&topo, cfg);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];

  LoopDetector detector(&net);
  detector.Attach();
  detector.set_reinject(false);

  int delivered_long = 0;
  net.SetHostSink(dst, [&](const Packet& pkt, SimTime) {
    if (pkt.trace.size() > 5) {
      ++delivered_long;
    }
  });

  // Failure 1: the source aggregate loses ALL core uplinks -> src-pod
  // bounce (+2 hops, tag 2).  Failure 2: the destination-pod down link
  // dies -> dst-pod ToR bounce (+2 hops, tag 3) -> punt en route.
  // Sweep flows until one crosses both failures.
  bool punted = false;
  for (uint16_t port = 40000; port < 40400 && !punted; ++port) {
    // Reset link state each attempt, then fail along this flow's own path.
    Network fresh(&topo, cfg);
    LoopDetector det(&fresh);
    det.Attach();
    det.set_reinject(false);

    FiveTuple flow = testutil::MakeFlow(topo, src, dst, port);
    Path base = fresh.router().WalkPath(src, dst, FiveTupleHash{}(flow));
    ASSERT_EQ(base.size(), 5u);
    // Kill all uplinks of the first aggregate.
    for (NodeId nbr : topo.NeighborsOf(base[1])) {
      if (topo.RoleOf(nbr) == NodeRole::kCore) {
        fresh.router().link_state().SetDown(base[1], nbr);
      }
    }
    // Kill every dst-pod agg->dstToR down link so the second bounce is
    // unavoidable no matter which core the detour exits from.
    SwitchId dst_tor = base[4];
    for (NodeId nbr : topo.NeighborsOf(dst_tor)) {
      if (topo.RoleOf(nbr) == NodeRole::kAgg) {
        // Leave one up so the packet can eventually arrive... actually the
        // trap should fire before delivery; fail all but the last.
      }
    }
    // Fail the down-link of the aggregate the detour actually uses: walk
    // the detoured path first.
    Path detour = fresh.router().WalkPath(src, dst, FiveTupleHash{}(flow), 16);
    if (detour.size() < 7) {
      continue;  // this flow dodged the first failure
    }
    // detour = [torS, aggA, torY, aggB, core, aggC, torD]; fail aggC->torD.
    fresh.router().link_state().SetDown(detour[5], detour[6]);

    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    fresh.InjectPacket(p, 0);
    fresh.events().RunAll(10000);
    if (!det.long_path_events().empty()) {
      punted = true;
      const auto& ev = det.long_path_events().front();
      EXPECT_EQ(ev.labels.size(), 3u) << "third tag is what trips the ASIC";
      EXPECT_TRUE(det.detections().empty()) << "a detour is not a loop";
    }
  }
  EXPECT_TRUE(punted) << "no flow experienced the double detour";
  (void)delivered_long;
}

}  // namespace
}  // namespace pathdump
