#include <gtest/gtest.h>

#include <set>

#include "src/cherrypick/codec.h"
#include "src/cherrypick/trajectory_cache.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/topology/routing.h"
#include "src/topology/vl2.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

using testutil::EncodeAlongPath;

// --- FatTree: shortest paths round-trip with exactly one label ---

class FatTreeCodec : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(GetParam());
    labels_ = std::make_unique<LinkLabelMap>(&topo_);
    codec_ = std::make_unique<CherryPickCodec>(&topo_, labels_.get());
    router_ = std::make_unique<Router>(&topo_);
  }

  Topology topo_;
  std::unique_ptr<LinkLabelMap> labels_;
  std::unique_ptr<CherryPickCodec> codec_;
  std::unique_ptr<Router> router_;
};

TEST_P(FatTreeCodec, EveryEcmpPathRoundTrips) {
  // Exhaustive over representative host pairs: same rack, same pod,
  // inter-pod — and for inter-pod, over EVERY equal-cost path.
  const FatTreeMeta& m = *topo_.fat_tree();
  std::vector<std::pair<HostId, HostId>> pairs;
  HostId h00 = topo_.HostsOfTor(m.tor[0][0])[0];
  pairs.push_back({h00, topo_.HostsOfTor(m.tor[0][0])[1]});   // intra-rack
  pairs.push_back({h00, topo_.HostsOfTor(m.tor[0][1])[0]});   // intra-pod
  pairs.push_back({h00, topo_.HostsOfTor(m.tor[1][0])[0]});   // inter-pod
  pairs.push_back({h00, topo_.HostsOfTor(m.tor.back()[0])[0]});
  pairs.push_back({topo_.hosts().back(), h00});  // reverse direction

  for (auto [src, dst] : pairs) {
    for (const Path& path : router_->EcmpPaths(src, dst)) {
      auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, path);
      // Shortest paths: 0 labels intra-rack, 1 otherwise.
      if (path.size() == 1) {
        EXPECT_TRUE(tags.empty());
      } else {
        EXPECT_EQ(tags.size(), 1u) << PathToString(path);
      }
      auto decoded = codec_->Decode(src, dst, dscp, tags);
      ASSERT_TRUE(decoded.has_value()) << PathToString(path);
      EXPECT_EQ(*decoded, path) << "decoded " << PathToString(*decoded);
    }
  }
}

TEST_P(FatTreeCodec, DecodeIsUniqueAcrossAllLabelValues) {
  // For a fixed host pair, distinct ECMP paths must yield distinct tag
  // sequences (otherwise decode could not be unique).
  const FatTreeMeta& m = *topo_.fat_tree();
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1][0])[0];
  std::set<std::vector<LinkLabel>> seen;
  for (const Path& path : router_->EcmpPaths(src, dst)) {
    auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, path);
    EXPECT_TRUE(seen.insert(tags).second) << "tag collision for " << PathToString(path);
  }
}

TEST_P(FatTreeCodec, DstPodTorBounceRoundTripsWithTwoLabels) {
  const FatTreeMeta& m = *topo_.fat_tree();
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1][0])[0];

  // Walk with entropy 0 to find the path actually taken, then break its
  // dst-pod agg -> ToR down-link to force the bounce on re-walk.
  Path base;
  {
    NodeId prev = src;
    NodeId cur = topo_.TorOfHost(src);
    for (int hop = 0; hop < 8; ++hop) {
      base.push_back(cur);
      NodeId next = router_->NextHop(cur, prev, dst, /*entropy=*/0);
      ASSERT_NE(next, kInvalidNode);
      if (next == dst) {
        break;
      }
      prev = cur;
      cur = next;
    }
  }
  ASSERT_EQ(base.size(), 5u);
  NodeId down_agg = base[3];
  SwitchId dst_tor = base[4];
  router_->link_state().SetDown(down_agg, dst_tor);

  // Walk with entropy matching path[0..2]; reconstruct via NextHop.
  Path detour;
  NodeId prev = src;
  NodeId cur = topo_.TorOfHost(src);
  for (int hop = 0; hop < 12; ++hop) {
    detour.push_back(cur);
    NodeId next = router_->NextHop(cur, prev, dst, /*entropy=*/0);
    ASSERT_NE(next, kInvalidNode);
    if (next == dst) {
      break;
    }
    prev = cur;
    cur = next;
  }
  ASSERT_EQ(detour.size(), 7u) << PathToString(detour);

  auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, detour);
  EXPECT_EQ(tags.size(), 2u) << "6-hop detour must fit in two VLAN tags";
  auto decoded = codec_->Decode(src, dst, dscp, tags);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, detour) << "decoded " << PathToString(*decoded);
}

TEST_P(FatTreeCodec, SrcPodBounceRoundTripsWithTwoLabels) {
  const FatTreeMeta& m = *topo_.fat_tree();
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1][0])[0];

  Path base = router_->EcmpPaths(src, dst)[0];
  NodeId first_agg = base[1];
  for (NodeId nbr : topo_.NeighborsOf(first_agg)) {
    if (topo_.RoleOf(nbr) == NodeRole::kCore) {
      router_->link_state().SetDown(first_agg, nbr);
    }
  }
  // Entropy 0 at the ToR picks aggs[HashCombine(0,tor) % alive]; sweep
  // entropies until the dead aggregate is chosen so the bounce happens.
  for (uint64_t entropy = 0; entropy < 64; ++entropy) {
    Path walk;
    NodeId prev = src;
    NodeId cur = topo_.TorOfHost(src);
    bool delivered = false;
    for (int hop = 0; hop < 12; ++hop) {
      walk.push_back(cur);
      NodeId next = router_->NextHop(cur, prev, dst, entropy);
      ASSERT_NE(next, kInvalidNode);
      if (next == dst) {
        delivered = true;
        break;
      }
      prev = cur;
      cur = next;
    }
    ASSERT_TRUE(delivered);
    if (walk[1] != first_agg) {
      continue;  // ECMP dodged the dead aggregate; try other entropy
    }
    ASSERT_EQ(walk.size(), 7u) << PathToString(walk);
    auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, walk);
    EXPECT_EQ(tags.size(), 2u);
    auto decoded = codec_->Decode(src, dst, dscp, tags);
    ASSERT_TRUE(decoded.has_value()) << PathToString(walk);
    EXPECT_EQ(*decoded, walk);
    return;
  }
  FAIL() << "no entropy routed through the dead aggregate";
}

TEST_P(FatTreeCodec, IntraPodBounceRoundTrips) {
  const FatTreeMeta& m = *topo_.fat_tree();
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[0][1])[0];

  // Break chosen agg -> dst_tor for the aggregate entropy 0 picks.
  Path base;
  {
    NodeId prev = src;
    NodeId cur = topo_.TorOfHost(src);
    for (int hop = 0; hop < 8; ++hop) {
      base.push_back(cur);
      NodeId next = router_->NextHop(cur, prev, dst, 0);
      if (next == dst) {
        break;
      }
      prev = cur;
      cur = next;
    }
  }
  ASSERT_EQ(base.size(), 3u);
  router_->link_state().SetDown(base[1], base[2]);

  Path detour;
  NodeId prev = src;
  NodeId cur = topo_.TorOfHost(src);
  for (int hop = 0; hop < 10; ++hop) {
    detour.push_back(cur);
    NodeId next = router_->NextHop(cur, prev, dst, 0);
    ASSERT_NE(next, kInvalidNode);
    if (next == dst) {
      break;
    }
    prev = cur;
    cur = next;
  }
  ASSERT_EQ(detour.size(), 5u) << PathToString(detour);
  auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, detour);
  EXPECT_EQ(tags.size(), 2u);
  auto decoded = codec_->Decode(src, dst, dscp, tags);
  ASSERT_TRUE(decoded.has_value()) << PathToString(detour);
  EXPECT_EQ(*decoded, detour);
}

TEST_P(FatTreeCodec, InfeasibleTagsRejected) {
  const FatTreeMeta& m = *topo_.fat_tree();
  int half = GetParam() / 2;
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId same_rack = topo_.HostsOfTor(m.tor[0][0])[1];
  HostId other_pod = topo_.HostsOfTor(m.tor[1][0])[0];

  // A core label for an intra-rack pair is infeasible.
  EXPECT_FALSE(codec_->Decode(src, same_rack, 0, {0}).has_value());
  // No label for an inter-pod pair is infeasible.
  EXPECT_FALSE(codec_->Decode(src, other_pod, 0, {}).has_value());
  // An out-of-range label is infeasible.
  EXPECT_FALSE(
      codec_->Decode(src, other_pod, 0, {LinkLabel(2 * half * half)}).has_value());
  // Three labels (suspiciously long) never reach the edge decoder.
  EXPECT_FALSE(codec_->Decode(src, other_pod, 0, {0, 1, 2}).has_value());
  // A tor-agg label whose ToR part is not the source ToR (wrong switchID
  // insertion, §2.4) is infeasible for the intra-pod case.
  HostId same_pod = topo_.HostsOfTor(m.tor[0][1])[0];
  LinkLabel bogus = labels_->LabelOf(m.tor[0][1], m.agg[0][0]);  // tor part = 1
  EXPECT_FALSE(codec_->Decode(src, same_pod, 0, {bogus}).has_value());
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeCodec, ::testing::Values(4, 6, 8));

// --- VL2 ---

class Vl2Codec : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildVl2(8, 4, 3, 2);
    labels_ = std::make_unique<LinkLabelMap>(&topo_);
    codec_ = std::make_unique<CherryPickCodec>(&topo_, labels_.get());
    router_ = std::make_unique<Router>(&topo_);
  }
  Topology topo_;
  std::unique_ptr<LinkLabelMap> labels_;
  std::unique_ptr<CherryPickCodec> codec_;
  std::unique_ptr<Router> router_;
};

TEST_F(Vl2Codec, FiveSwitchPathsCarryDscpPlusTwoTags) {
  const Vl2Meta& m = *topo_.vl2();
  HostId src = topo_.HostsOfTor(m.tor[0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1])[0];  // disjoint aggs
  for (const Path& path : router_->EcmpPaths(src, dst)) {
    ASSERT_EQ(path.size(), 5u);
    auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, path);
    EXPECT_NE(dscp, 0) << "first sampled link must ride in DSCP";
    EXPECT_EQ(tags.size(), 2u) << "§3.1: one DSCP value and two VLAN tags";
    auto decoded = codec_->Decode(src, dst, dscp, tags);
    ASSERT_TRUE(decoded.has_value()) << PathToString(path);
    EXPECT_EQ(*decoded, path);
  }
}

TEST_F(Vl2Codec, SharedAggPathRoundTrips) {
  const Vl2Meta& m = *topo_.vl2();
  HostId src = topo_.HostsOfTor(m.tor[0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[4])[0];  // shares aggs {0,1}
  for (const Path& path : router_->EcmpPaths(src, dst)) {
    ASSERT_EQ(path.size(), 3u);
    auto [dscp, tags] = EncodeAlongPath(*codec_, src, dst, path);
    EXPECT_NE(dscp, 0);
    EXPECT_TRUE(tags.empty());
    auto decoded = codec_->Decode(src, dst, dscp, tags);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, path);
  }
}

TEST_F(Vl2Codec, IntraRack) {
  const Vl2Meta& m = *topo_.vl2();
  HostId src = topo_.HostsOfTor(m.tor[0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[0])[1];
  auto decoded = codec_->Decode(src, dst, 0, {});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, Path{m.tor[0]});
}

TEST_F(Vl2Codec, InfeasibleRejected) {
  const Vl2Meta& m = *topo_.vl2();
  HostId src = topo_.HostsOfTor(m.tor[0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1])[0];
  // Missing DSCP with tags present.
  EXPECT_FALSE(codec_->Decode(src, dst, 0, {0, 1}).has_value());
  // One tag only (down-agg sample missing) is invalid.
  EXPECT_FALSE(codec_->Decode(src, dst, 1, {0}).has_value());
  // Mid mismatch between the two tags.
  const int ni = m.num_intermediates;
  LinkLabel up = LinkLabel(0 * ni + 0);    // agg0 - int0
  LinkLabel down = LinkLabel(2 * ni + 1);  // agg2 - int1 (different mid)
  EXPECT_FALSE(codec_->Decode(src, dst, 1, {up, down}).has_value());
}

// --- Generic topology (paper Figs. 4/9 style) ---

TEST(GenericCodec, ChainRoundTrip) {
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  LinkLabelMap labels(&sc.topo);
  CherryPickCodec codec(&sc.topo, &labels);
  // Default: every switch samples.
  Path path{sc.s1, sc.s2, sc.s3, sc.s4, sc.s6};
  auto [dscp, tags] = EncodeAlongPath(codec, sc.host_a, sc.host_b, path);
  EXPECT_EQ(dscp, 0);
  EXPECT_EQ(tags.size(), 4u);  // S2, S3, S4, S6 each push their ingress
  auto decoded = codec.Decode(sc.host_a, sc.host_b, dscp, tags);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, path);
}

TEST(GenericCodec, RestrictedPushersStillDecode) {
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  LinkLabelMap labels(&sc.topo);
  CherryPickCodec codec(&sc.topo, &labels);
  codec.SetGenericPushers({sc.s3, sc.s5});
  EXPECT_TRUE(codec.IsGenericPusher(sc.s3));
  EXPECT_FALSE(codec.IsGenericPusher(sc.s2));

  Path path{sc.s1, sc.s2, sc.s3, sc.s4, sc.s6};
  auto [dscp, tags] = EncodeAlongPath(codec, sc.host_a, sc.host_b, path);
  EXPECT_EQ(tags.size(), 1u);  // only S3 samples (ingress S2-S3)
  auto decoded = codec.Decode(sc.host_a, sc.host_b, dscp, tags);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, path);
}

TEST(GenericCodec, AmbiguousDecodeReturnsNullopt) {
  // Two parallel equal switches between s1 and s4 with NO pushers: the
  // decoder cannot distinguish the two paths and must refuse.
  Topology t;
  SwitchId s1 = t.AddSwitch(NodeRole::kTor);
  SwitchId mid_a = t.AddSwitch(NodeRole::kAgg);
  SwitchId mid_b = t.AddSwitch(NodeRole::kAgg);
  SwitchId s4 = t.AddSwitch(NodeRole::kTor);
  HostId ha = t.AddHost();
  HostId hb = t.AddHost();
  t.AddLink(ha, s1);
  t.AddLink(s1, mid_a);
  t.AddLink(s1, mid_b);
  t.AddLink(mid_a, s4);
  t.AddLink(mid_b, s4);
  t.AddLink(hb, s4);
  LinkLabelMap labels(&t);
  CherryPickCodec codec(&t, &labels);
  codec.SetGenericPushers({});  // nobody samples
  EXPECT_FALSE(codec.Decode(ha, hb, 0, {}).has_value());
}

// --- Trajectory cache ---

TEST(TrajectoryCacheTest, HitAfterInsert) {
  TrajectoryCache cache(8);
  Path p{1, 2, 3};
  EXPECT_FALSE(cache.Lookup(0x0A000001, 0, {5}).has_value());
  cache.Insert(0x0A000001, 0, {5}, p);
  auto got = cache.Lookup(0x0A000001, 0, {5});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, p);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(TrajectoryCacheTest, KeyComponentsMatter) {
  TrajectoryCache cache(8);
  cache.Insert(0x0A000001, 0, {5}, {1});
  EXPECT_FALSE(cache.Lookup(0x0A000002, 0, {5}).has_value());  // different src
  EXPECT_FALSE(cache.Lookup(0x0A000001, 1, {5}).has_value());  // different dscp
  EXPECT_FALSE(cache.Lookup(0x0A000001, 0, {6}).has_value());  // different tags
  EXPECT_FALSE(cache.Lookup(0x0A000001, 0, {5, 5}).has_value());
}

TEST(TrajectoryCacheTest, LruEviction) {
  TrajectoryCache cache(2);
  cache.Insert(1, 0, {1}, {1});
  cache.Insert(2, 0, {2}, {2});
  // Touch entry 1 so entry 2 becomes LRU.
  EXPECT_TRUE(cache.Lookup(1, 0, {1}).has_value());
  cache.Insert(3, 0, {3}, {3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1, 0, {1}).has_value());
  EXPECT_FALSE(cache.Lookup(2, 0, {2}).has_value());
  EXPECT_TRUE(cache.Lookup(3, 0, {3}).has_value());
}

TEST(TrajectoryCacheTest, ReinsertRefreshes) {
  TrajectoryCache cache(2);
  cache.Insert(1, 0, {1}, {1});
  cache.Insert(2, 0, {2}, {2});
  cache.Insert(1, 0, {1}, {9});  // refresh + new value
  cache.Insert(3, 0, {3}, {3});
  auto got = cache.Lookup(1, 0, {1});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Path{9});
}

}  // namespace
}  // namespace pathdump
