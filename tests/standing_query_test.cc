// Standing-query subsystem contract tests (the PR 4 tentpole):
//
//  1. Byte-identity — at every epoch boundary the materialized standing
//     result (TopK and FlowSizeHistogram) equals a fresh poll Execute
//     over the same TIB contents, across the {1, 4, 16} shards x
//     {1, 4, 16} workers matrix.
//  2. Concurrency — epoch ticks racing Tib::Insert are safe (run under
//     ThreadSanitizer in CI) and the post-race materialization matches
//     a fresh poll.
//  3. Lifecycle — unsubscribe mid-epoch detaches the insert hook and
//     discards late deltas without corrupting other subscriptions.
//  4. Ordering — deltas arriving out of epoch order (simulated network
//     reordering) still fold to a deterministic materialized state.
//  5. Property — randomized arrival interleavings (out-of-order,
//     duplicate, orphan, gapped) across all four standing kinds fold to
//     poll identity; the failing seed is logged on mismatch.
//  6. Recovery — a stream marked stale discards ordinary deltas until a
//     snapshot re-baselines it (in-process Resync restores byte
//     identity for all four kinds), and the gap threshold declares
//     presumed-lost epochs stale + fires the resync requester.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "src/apps/load_imbalance.h"
#include "src/apps/traffic_measure.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/edge_agent.h"
#include "src/edge/standing_query.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// The shared synthetic fixture (tests/test_util.h) at this file's
// historical distribution (2048-address IP space).
std::vector<TibRecord> MakeRecords(int n, uint32_t seed) {
  return testutil::MakeSyntheticRecords(n, seed, {.ip_space = 2048, .switch_space = 24});
}

constexpr size_t kTopK = 500;
constexpr int64_t kBinWidth = 10000;
const LinkId kProbeLink{3, 7};

Controller::QueryFn PollTopK() {
  return [](EdgeAgent& a) -> QueryResult { return a.TopK(kTopK, TimeRange::All()); };
}

Controller::QueryFn PollHistogram() {
  return [](EdgeAgent& a) -> QueryResult {
    return a.FlowSizeDistribution(kProbeLink, TimeRange::All(), kBinWidth);
  };
}

Controller::QueryFn PollFlowList() {
  return [](EdgeAgent& a) -> QueryResult {
    return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
  };
}

Controller::QueryFn PollCount() {
  return [](EdgeAgent& a) -> QueryResult { return a.CountOnLink(kProbeLink, TimeRange::All()); };
}

// A small fleet sharing one topology/codec, owned per test.
struct Testbed {
  Topology topo;
  LinkLabelMap labels;
  CherryPickCodec codec;
  Controller controller;
  std::vector<std::unique_ptr<EdgeAgent>> agents;
  std::vector<HostId> hosts;

  explicit Testbed(size_t num_agents, size_t shards)
      : topo(BuildFatTree(4)), labels(&topo), codec(&topo, &labels) {
    for (size_t a = 0; a < num_agents; ++a) {
      HostId h = topo.hosts()[a];
      EdgeAgentConfig cfg;
      cfg.tib_options.num_shards = shards;
      agents.push_back(std::make_unique<EdgeAgent>(h, &topo, &codec, cfg));
      controller.RegisterAgent(agents.back().get());
      hosts.push_back(h);
    }
  }
};

// --- 1. Poll-vs-standing byte-identity across the shard x worker matrix ---

TEST(StandingQueryDeterminism, MatchesPollAcrossShardWorkerMatrix) {
  const int kPerAgent = 12000;
  const int kEpochs = 4;
  const size_t kAgents = 4;
  std::vector<std::vector<TibRecord>> records;
  for (size_t a = 0; a < kAgents; ++a) {
    records.push_back(MakeRecords(kPerAgent, 0x5D00 + uint32_t(a)));
  }

  for (size_t shards : {size_t(1), size_t(4), size_t(16)}) {
    Testbed tb(kAgents, shards);
    SubscriptionManager manager(&tb.controller);
    uint64_t topk_sub = SubscribeTopK(manager, tb.hosts, kTopK);
    uint64_t hist_sub =
        SubscribeFlowSizeDistribution(manager, tb.hosts, kProbeLink, TimeRange::All(), kBinWidth);
    uint64_t list_sub = SubscribeFlowList(manager, tb.hosts, kProbeLink);
    uint64_t count_sub = SubscribeCountSummary(manager, tb.hosts, kProbeLink);

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      // One epoch's worth of inserts on every agent...
      for (size_t a = 0; a < kAgents; ++a) {
        for (int i = epoch * kPerAgent / kEpochs; i < (epoch + 1) * kPerAgent / kEpochs; ++i) {
          tb.agents[a]->tib().Insert(records[a][size_t(i)]);
        }
      }
      // ... then an epoch boundary.
      manager.TickEpoch();
      manager.Flush();

      // At the boundary, the materialized standing result must equal a
      // fresh poll over the same records — at every worker count, for
      // all four kinds (the per-flow pair and the per-record pair).
      for (size_t workers : {size_t(1), size_t(4), size_t(16)}) {
        tb.controller.SetWorkerThreads(workers);
        ThreadPool scan_pool(workers);
        for (auto& agent : tb.agents) {
          agent->SetQueryThreadPool(workers > 1 ? &scan_pool : nullptr);
        }
        auto [poll_topk, tstats] = tb.controller.Execute(tb.hosts, PollTopK());
        auto [poll_hist, hstats] = tb.controller.Execute(tb.hosts, PollHistogram());
        auto [poll_list, lstats] = tb.controller.Execute(tb.hosts, PollFlowList());
        auto [poll_count, cstats] = tb.controller.Execute(tb.hosts, PollCount());
        QueryResult standing_topk = manager.Materialize(topk_sub);
        QueryResult standing_hist = manager.Materialize(hist_sub);
        QueryResult standing_list = manager.Materialize(list_sub);
        QueryResult standing_count = manager.Materialize(count_sub);
        EXPECT_EQ(standing_topk, poll_topk)
            << shards << " shards, " << workers << " workers, epoch " << epoch;
        EXPECT_EQ(standing_hist, poll_hist)
            << shards << " shards, " << workers << " workers, epoch " << epoch;
        EXPECT_EQ(standing_list, poll_list)
            << shards << " shards, " << workers << " workers, epoch " << epoch;
        EXPECT_EQ(standing_count, poll_count)
            << shards << " shards, " << workers << " workers, epoch " << epoch;
        EXPECT_EQ(SerializedBytes(standing_topk), SerializedBytes(poll_topk));
        EXPECT_EQ(SerializedBytes(standing_list), SerializedBytes(poll_list));
        for (auto& agent : tb.agents) {
          agent->SetQueryThreadPool(nullptr);
        }
      }
      tb.controller.SetWorkerThreads(1);
    }
    // Delta accounting: every epoch shipped something, and the folded
    // wire bytes stayed O(delta), not O(TIB).
    SubscriptionInfo info = manager.info(topk_sub);
    EXPECT_EQ(info.hosts, kAgents);
    EXPECT_GE(info.deltas_folded, uint64_t(kEpochs));
    EXPECT_EQ(info.pending_gaps, 0u);
    EXPECT_GT(manager.info(list_sub).delta_bytes, 0u);
    EXPECT_GT(manager.info(count_sub).deltas_folded, 0u);
  }
}

TEST(StandingQueryDeterminism, EmptyEpochsShipNothingAndAppResultsMatch) {
  Testbed tb(2, 4);
  SubscriptionManager manager(&tb.controller);
  uint64_t topk_sub = SubscribeTopK(manager, tb.hosts, kTopK);
  uint64_t hist_sub =
      SubscribeFlowSizeDistribution(manager, tb.hosts, kProbeLink, TimeRange::All(), kBinWidth);

  std::vector<TibRecord> records = MakeRecords(5000, 0xE44);
  for (const TibRecord& rec : records) {
    tb.agents[0]->tib().Insert(rec);
  }
  // Drive this boundary from the agents' side (EpochTick ticks every
  // registration on the agent) — same channel, same semantics as the
  // manager-driven TickEpoch used below.
  for (auto& agent : tb.agents) {
    agent->EpochTick();
  }
  // No inserts since the last boundary: these epochs must ship nothing.
  manager.TickEpoch();
  manager.TickEpoch();
  manager.Flush();
  SubscriptionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.deltas_reordered, 0u);
  EXPECT_EQ(stats.deltas_folded, stats.deltas_submitted);
  // Only the first boundary produced deltas (one per matching host/sub).
  EXPECT_LE(stats.deltas_submitted, 2u * 2u);

  // The app-level accessors agree with their poll twins.
  TopKFlows standing_topk = TopKStanding(manager, topk_sub);
  TopKFlows poll_topk = TopKAcrossHosts(tb.controller, tb.hosts, kTopK, TimeRange::All(),
                                        /*multi_level=*/false);
  EXPECT_EQ(standing_topk, poll_topk);
  FlowSizeHistogram standing_hist = FlowSizeDistributionStanding(manager, hist_sub);
  FlowSizeHistogram poll_hist = FlowSizeDistributionForLink(
      tb.controller, tb.hosts, kProbeLink, TimeRange::All(), kBinWidth, /*multi_level=*/false);
  EXPECT_EQ(standing_hist, poll_hist);
}

// --- 2. Epoch ticks racing Tib::Insert (TSan) ---

TEST(StandingQueryConcurrency, EpochTicksRaceInserts) {
  const int kPreload = 20000;
  const int kPerWriter = 10000;
  std::vector<TibRecord> records = MakeRecords(kPreload + 2 * kPerWriter, 0xACE2);

  Testbed tb(1, 8);
  EdgeAgent& agent = *tb.agents[0];
  // Subscribe before any data: the standing state must account for
  // every record the poll sees.
  SubscriptionManager manager(&tb.controller);
  uint64_t sub = SubscribeTopK(manager, tb.hosts, kTopK);
  for (int i = 0; i < kPreload; ++i) {
    agent.tib().Insert(records[size_t(i)]);
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        agent.tib().Insert(records[size_t(kPreload + w * kPerWriter + i)]);
      }
    });
  }
  std::thread ticker([&] {
    uint64_t boundaries = 0;
    while (!done.load(std::memory_order_acquire)) {
      manager.TickEpoch();
      ++boundaries;
    }
    EXPECT_GE(boundaries, 1u);
  });
  for (auto& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  ticker.join();

  // Quiesce: one final boundary captures whatever the racing ticks
  // missed, then the materialized state must equal a fresh poll.
  manager.TickEpoch();
  manager.Flush();
  auto [poll, stats] = tb.controller.Execute(tb.hosts, PollTopK());
  EXPECT_EQ(manager.Materialize(sub), poll);
  EXPECT_EQ(manager.stats().deltas_folded, manager.stats().deltas_submitted);
}

// --- 3. Unsubscribe mid-epoch ---

TEST(StandingQueryLifecycle, UnsubscribeMidEpochDetachesCleanly) {
  Testbed tb(2, 4);
  SubscriptionManager manager(&tb.controller);
  uint64_t doomed = SubscribeTopK(manager, tb.hosts, kTopK);
  uint64_t kept =
      SubscribeFlowSizeDistribution(manager, tb.hosts, kProbeLink, TimeRange::All(), kBinWidth);
  EXPECT_EQ(manager.subscription_count(), 2u);
  EXPECT_EQ(tb.agents[0]->StandingQueryCount(), 2u);
  EXPECT_EQ(tb.agents[0]->tib().insert_hook_count(), 2u);

  std::vector<TibRecord> records = MakeRecords(6000, 0x0DD1);
  for (size_t i = 0; i < 3000; ++i) {
    tb.agents[0]->tib().Insert(records[i]);
  }
  manager.TickEpoch();
  // Mid-epoch: more data has accumulated but no boundary yet.
  for (size_t i = 3000; i < records.size(); ++i) {
    tb.agents[1]->tib().Insert(records[i]);
  }
  manager.Unsubscribe(doomed);
  EXPECT_EQ(manager.subscription_count(), 1u);
  EXPECT_EQ(tb.agents[0]->StandingQueryCount(), 1u);
  EXPECT_EQ(tb.agents[0]->tib().insert_hook_count(), 1u);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(manager.Materialize(doomed)));

  // Inserts keep flowing with the hook gone, and the surviving
  // subscription still matches its poll twin at the next boundary.
  for (const TibRecord& rec : MakeRecords(1000, 0x0DD2)) {
    tb.agents[0]->tib().Insert(rec);
  }
  manager.TickEpoch();
  manager.Flush();
  auto [poll_hist, stats] = tb.controller.Execute(tb.hosts, PollHistogram());
  EXPECT_EQ(manager.Materialize(kept), poll_hist);
}

TEST(StandingQueryLifecycle, UnsubscribeRacesInserts) {
  Testbed tb(1, 8);
  EdgeAgent& agent = *tb.agents[0];
  SubscriptionManager manager(&tb.controller);
  std::vector<TibRecord> records = MakeRecords(20000, 0x5AFE);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const TibRecord& rec : records) {
      agent.tib().Insert(rec);
    }
    done.store(true, std::memory_order_release);
  });
  // Subscribe/tick/unsubscribe churn while the writer runs: hook
  // install/remove synchronizes with in-flight inserts via the shard
  // locks (TSan-covered in CI).
  uint64_t churned = 0;
  while (!done.load(std::memory_order_acquire)) {
    uint64_t sub = SubscribeTopK(manager, tb.hosts, kTopK);
    manager.TickEpoch();
    manager.Unsubscribe(sub);
    ++churned;
  }
  writer.join();
  EXPECT_GE(churned, 1u);
  EXPECT_EQ(agent.tib().insert_hook_count(), 0u);
  EXPECT_EQ(agent.tib().size(), records.size());

  // A fresh subscription sees only post-subscription inserts — and
  // after inserting more, matches a poll restricted to those records?
  // No: standing state starts empty by design.  Assert exactly that.
  uint64_t fresh = SubscribeTopK(manager, tb.hosts, kTopK);
  manager.TickEpoch();
  manager.Flush();
  EXPECT_EQ(manager.info(fresh).deltas_folded, 0u);
  TopKFlows empty = TopKStanding(manager, fresh);
  EXPECT_TRUE(empty.items.empty());
}

// --- 4. Out-of-order delta arrival ---

TEST(StandingQueryOrdering, ReorderedDeltasFoldDeterministically) {
  Testbed tb(1, 4);
  SubscriptionManager manager(&tb.controller);
  uint64_t sub = SubscribeTopK(manager, tb.hosts, kTopK);
  HostId host = tb.hosts[0];

  auto delta_for = [&](uint64_t epoch, uint16_t port, uint64_t bytes) {
    QueryDelta d;
    d.subscription_id = sub;
    d.host = host;
    d.epoch = epoch;
    d.payload.items = {{FiveTuple{1, 2, port, 80, kProtoTcp}, bytes}};
    return d;
  };

  // Epochs arrive 2, 3, 1: the first two must be buffered (a gap), and
  // folding must happen in epoch order once 1 lands.
  ASSERT_TRUE(manager.SubmitDelta(delta_for(2, 20, 200)));
  ASSERT_TRUE(manager.SubmitDelta(delta_for(3, 30, 300)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_reordered, 2u);
  EXPECT_EQ(manager.stats().deltas_folded, 0u);
  EXPECT_EQ(manager.info(sub).pending_gaps, 2u);
  // A duplicate of a still-gapped epoch is a duplicate, not a reorder.
  ASSERT_TRUE(manager.SubmitDelta(delta_for(3, 30, 300)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_reordered, 2u);
  EXPECT_EQ(manager.stats().deltas_orphaned, 1u);
  // Materialization before the gap closes reflects no folded epoch.
  TopKFlows before = TopKStanding(manager, sub);
  EXPECT_TRUE(before.items.empty());

  ASSERT_TRUE(manager.SubmitDelta(delta_for(1, 10, 100)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_folded, 3u);
  EXPECT_EQ(manager.info(sub).pending_gaps, 0u);

  // A duplicate of an already-folded epoch is dropped, not re-applied.
  ASSERT_TRUE(manager.SubmitDelta(delta_for(2, 20, 200)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_orphaned, 2u);

  // The folded state equals the in-order fold.
  TopKFlows after = TopKStanding(manager, sub);
  ASSERT_EQ(after.items.size(), 3u);
  EXPECT_EQ(after.items[0].first, 300u);
  EXPECT_EQ(after.items[1].first, 200u);
  EXPECT_EQ(after.items[2].first, 100u);
}

TEST(StandingQueryOrdering, OrphanedDeltasAreCountedNotFolded) {
  Testbed tb(1, 4);
  SubscriptionManager manager(&tb.controller);
  QueryDelta d;
  d.subscription_id = 999;  // never subscribed
  d.host = tb.hosts[0];
  d.epoch = 1;
  d.payload.items = {{FiveTuple{1, 2, 3, 80, kProtoTcp}, 42}};
  ASSERT_TRUE(manager.SubmitDelta(std::move(d)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_orphaned, 1u);
  EXPECT_EQ(manager.stats().deltas_folded, 0u);
}

// --- Periodic-driven epochs via the agent's own Tick ---

TEST(StandingQueryPeriodic, AgentTickDrivesEpochs) {
  Testbed tb(1, 4);
  EdgeAgent& agent = *tb.agents[0];
  SubscriptionManager manager(&tb.controller);
  uint64_t sub =
      SubscribeTopK(manager, tb.hosts, kTopK, TimeRange::All(), /*epoch_period=*/kNsPerSec);
  EXPECT_EQ(agent.InstalledQueryCount(), 1u);

  std::vector<TibRecord> records = MakeRecords(4000, 0x71C);
  for (size_t i = 0; i < 2000; ++i) {
    agent.tib().Insert(records[i]);
  }
  agent.Tick(2 * kNsPerSec);  // periodic epoch boundary fires
  for (size_t i = 2000; i < records.size(); ++i) {
    agent.tib().Insert(records[i]);
  }
  agent.Tick(4 * kNsPerSec);
  manager.Flush();
  EXPECT_EQ(manager.info(sub).deltas_folded, 2u);

  auto [poll, stats] = tb.controller.Execute(tb.hosts, PollTopK());
  EXPECT_EQ(manager.Materialize(sub), poll);

  manager.Unsubscribe(sub);
  EXPECT_EQ(agent.InstalledQueryCount(), 0u);  // periodic tick uninstalled too
}

// --- 5. Property: randomized arrival interleavings fold to poll identity ---
//
// The channel contract says arrival order can never leak into results:
// the manager folds strictly in epoch order per (subscription, host),
// buffering gaps and dropping duplicates/orphans.  This fuzz-style case
// attacks that with seeded randomized schedules across ALL FOUR standing
// kinds at once: epoch deltas are captured at the agent (a second
// accumulator registered with the subscription's own id and a capturing
// sink — the manager's accumulators are never ticked), then replayed
// into SubmitDelta in a shuffled order with random duplicates and
// orphans injected.  After the full fold every kind must equal its poll
// twin.  On mismatch the failing seed is in the assertion message —
// rerun with it to reproduce.

TEST(StandingQueryProperty, RandomizedArrivalsFoldToPollIdentityAllKinds) {
  const int kEpochs = 6;
  const int kPerEpoch = 700;
  for (uint32_t seed : {0xF00Du, 0xBEEFu, 0x5EED1u, 0x5EED2u}) {
    Rng rng(seed);
    Testbed tb(1, 4);
    EdgeAgent& agent = *tb.agents[0];
    SubscriptionManager manager(&tb.controller);

    StandingQuerySpec topk_spec;
    topk_spec.kind = StandingQuerySpec::Kind::kTopK;
    topk_spec.k = kTopK;
    StandingQuerySpec hist_spec;
    hist_spec.kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
    hist_spec.bin_width = kBinWidth;
    hist_spec.link = kProbeLink;
    StandingQuerySpec list_spec;
    list_spec.kind = StandingQuerySpec::Kind::kFlowList;
    list_spec.link = kProbeLink;
    StandingQuerySpec count_spec;
    count_spec.kind = StandingQuerySpec::Kind::kCountSummary;
    count_spec.link = kProbeLink;

    struct KindUnderTest {
      uint64_t sub = 0;
      int capture_id = -1;
      Controller::QueryFn poll;
    };
    std::vector<QueryDelta> captured;
    std::vector<KindUnderTest> kinds;
    const std::vector<std::pair<StandingQuerySpec, Controller::QueryFn>> kind_specs = {
        {topk_spec, PollTopK()},
        {hist_spec, PollHistogram()},
        {list_spec, PollFlowList()},
        {count_spec, PollCount()}};
    for (const auto& [spec, poll] : kind_specs) {
      KindUnderTest k;
      k.sub = manager.Subscribe(tb.hosts, spec);
      k.capture_id = agent.RegisterStandingQuery(
          k.sub, spec, [&captured](QueryDelta&& d) { captured.push_back(std::move(d)); });
      k.poll = poll;
      kinds.push_back(std::move(k));
    }

    std::vector<TibRecord> records =
        MakeRecords(kEpochs * kPerEpoch, 0xAB00 + seed);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (int i = epoch * kPerEpoch; i < (epoch + 1) * kPerEpoch; ++i) {
        agent.tib().Insert(records[size_t(i)]);
      }
      for (const KindUnderTest& k : kinds) {
        agent.EpochTickOne(k.capture_id);
      }
    }
    for (const KindUnderTest& k : kinds) {
      agent.UnregisterStandingQuery(k.capture_id);
    }

    // Build the adversarial schedule: every captured delta exactly once,
    // plus random duplicates and orphans, in a seeded random order.
    // Shuffling alone yields gapped + out-of-order arrivals (a later
    // epoch drawn before an earlier one must buffer).
    std::vector<QueryDelta> schedule = captured;
    uint64_t injected_junk = 0;
    for (const QueryDelta& d : captured) {
      if (rng.Bernoulli(0.3)) {
        schedule.push_back(d);  // duplicate: must fold at most once
        ++injected_junk;
      }
    }
    for (int i = 0; i < 3; ++i) {
      QueryDelta orphan = captured[rng.UniformInt(uint32_t(captured.size()))];
      orphan.subscription_id = 424242 + uint64_t(i);  // never subscribed
      schedule.push_back(std::move(orphan));
      ++injected_junk;
    }
    {
      QueryDelta stray = captured[rng.UniformInt(uint32_t(captured.size()))];
      stray.host = HostId(9999);  // subscribed id, unknown host
      schedule.push_back(std::move(stray));
      ++injected_junk;
    }
    for (size_t i = schedule.size(); i > 1; --i) {  // Fisher-Yates
      std::swap(schedule[i - 1], schedule[rng.UniformInt(uint32_t(i))]);
    }

    for (QueryDelta& d : schedule) {
      ASSERT_TRUE(manager.SubmitDelta(std::move(d)));
    }
    manager.Flush();

    SubscriptionManagerStats stats = manager.stats();
    EXPECT_EQ(stats.deltas_folded, captured.size()) << "seed=" << seed;
    EXPECT_EQ(stats.deltas_orphaned, injected_junk) << "seed=" << seed;
    for (const KindUnderTest& k : kinds) {
      EXPECT_EQ(manager.info(k.sub).pending_gaps, 0u) << "seed=" << seed;
      auto [poll, pstats] = tb.controller.Execute(tb.hosts, k.poll);
      EXPECT_EQ(manager.Materialize(k.sub), poll)
          << "seed=" << seed << " kind="
          << int(manager.info(k.sub).spec.kind);
    }
  }
}

// --- 6. Crash recovery: stale streams and snapshot resync ---

TEST(StandingQueryRecovery, InProcessResyncRestoresByteIdentityAllKinds) {
  const int kPerEpoch = 3000;
  Testbed tb(2, 4);
  SubscriptionManager manager(&tb.controller);
  const std::vector<uint64_t> subs = {
      SubscribeTopK(manager, tb.hosts, kTopK),
      SubscribeFlowSizeDistribution(manager, tb.hosts, kProbeLink, TimeRange::All(),
                                    kBinWidth),
      SubscribeFlowList(manager, tb.hosts, kProbeLink),
      SubscribeCountSummary(manager, tb.hosts, kProbeLink)};
  const std::vector<Controller::QueryFn> polls = {PollTopK(), PollHistogram(),
                                                  PollFlowList(), PollCount()};
  auto expect_identity = [&](const char* ctx) {
    for (size_t s = 0; s < subs.size(); ++s) {
      auto [poll, stats] = tb.controller.Execute(tb.hosts, polls[s]);
      EXPECT_EQ(manager.Materialize(subs[s]), poll) << ctx << ", kind " << s;
    }
  };
  auto ingest = [&](uint32_t seed) {
    for (size_t a = 0; a < tb.agents.size(); ++a) {
      for (const TibRecord& rec : MakeRecords(kPerEpoch, seed + uint32_t(a))) {
        tb.agents[a]->tib().Insert(rec);
      }
    }
  };

  for (uint32_t epoch = 1; epoch <= 2; ++epoch) {
    ingest(0x9E00u * epoch);
    manager.TickEpoch();
    manager.Flush();
  }
  expect_identity("pre-loss");

  // Simulated loss on host 0: all four of its streams go stale — the
  // next epoch's deltas for them are discarded (their increments are
  // unusable without the lost prefix).
  const HostId victim = tb.hosts[0];
  for (uint64_t id : subs) {
    EXPECT_TRUE(manager.MarkStale(id, victim));
    EXPECT_FALSE(manager.MarkStale(id, victim));  // one mark per episode
  }
  EXPECT_EQ(manager.stale_streams(), subs.size());
  ingest(0x9E00u * 3);
  manager.TickEpoch();
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_stale_discarded, subs.size());

  // In-process resync: snapshot through the attachment, fold it as the
  // new baseline, and byte-identity is restored for every kind.
  for (uint64_t id : subs) {
    EXPECT_TRUE(manager.Resync(id, victim));
  }
  manager.Flush();
  EXPECT_EQ(manager.stale_streams(), 0u);
  EXPECT_EQ(manager.stats().snapshot_folds, subs.size());
  EXPECT_EQ(manager.stats().resyncs, subs.size());
  expect_identity("post-resync");

  // Strict-epoch delta folding resumes from the re-anchored epoch: the
  // next boundary folds cleanly, no gap, still byte-identical.
  ingest(0x9E00u * 4);
  manager.TickEpoch();
  manager.Flush();
  for (uint64_t id : subs) {
    EXPECT_EQ(manager.info(id).pending_gaps, 0u);
  }
  expect_identity("post-recovery epoch");

  EXPECT_FALSE(manager.Resync(9999, victim));  // unknown subscription
  const SubscriptionManagerStats ss = manager.stats();
  EXPECT_EQ(ss.deltas_submitted,
            ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);
}

TEST(StandingQueryRecovery, GapThresholdDeclaresStaleAndSnapshotRebaselines) {
  Testbed tb(1, 4);
  SubscriptionManagerOptions opts;
  opts.gap_resync_threshold = 2;
  SubscriptionManager manager(&tb.controller, opts);
  const uint64_t sub = SubscribeTopK(manager, tb.hosts, kTopK);
  const HostId host = tb.hosts[0];

  std::mutex fired_mu;
  std::vector<std::pair<uint64_t, HostId>> fired;
  manager.SetResyncRequester([&](uint64_t id, HostId h) {
    std::lock_guard<std::mutex> lock(fired_mu);
    fired.emplace_back(id, h);
  });
  auto fired_count = [&] {
    std::lock_guard<std::mutex> lock(fired_mu);
    return fired.size();
  };

  auto delta_for = [&](uint64_t epoch, uint16_t port, uint64_t bytes) {
    QueryDelta d;
    d.subscription_id = sub;
    d.host = host;
    d.epoch = epoch;
    d.payload.items = {{FiveTuple{1, 2, port, 80, kProtoTcp}, bytes}};
    return d;
  };

  ASSERT_TRUE(manager.SubmitDelta(delta_for(1, 10, 100)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_folded, 1u);

  // Epoch 2 lost upstream.  Epoch 3 buffers (below threshold, no fire);
  // epoch 4 reaches the threshold: the stream goes stale, the buffered
  // stragglers are discarded, and the requester fires exactly once.
  ASSERT_TRUE(manager.SubmitDelta(delta_for(3, 30, 300)));
  manager.Flush();
  EXPECT_EQ(fired_count(), 0u);
  ASSERT_TRUE(manager.SubmitDelta(delta_for(4, 40, 400)));
  manager.Flush();
  {
    std::lock_guard<std::mutex> lock(fired_mu);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].first, sub);
    EXPECT_EQ(fired[0].second, host);
  }
  EXPECT_EQ(manager.stale_streams(), 1u);
  EXPECT_EQ(manager.stats().resyncs, 1u);
  EXPECT_EQ(manager.stats().deltas_stale_discarded, 2u);  // the cleared buffer
  EXPECT_EQ(manager.info(sub).pending_gaps, 0u);

  // While stale, ordinary deltas are discarded and nothing re-fires —
  // one outstanding request per stale episode.
  ASSERT_TRUE(manager.SubmitDelta(delta_for(5, 50, 500)));
  manager.Flush();
  EXPECT_EQ(manager.stats().deltas_stale_discarded, 3u);
  EXPECT_EQ(fired_count(), 1u);

  // The snapshot replaces the stream's state wholesale and re-anchors
  // the epoch counter at snapshot + 1.
  QueryDelta snap;
  snap.subscription_id = sub;
  snap.host = host;
  snap.epoch = 6;
  snap.snapshot = true;
  snap.payload.items = {{FiveTuple{1, 2, 10, 80, kProtoTcp}, 100},
                        {FiveTuple{1, 2, 30, 80, kProtoTcp}, 300},
                        {FiveTuple{1, 2, 40, 80, kProtoTcp}, 400}};
  ASSERT_TRUE(manager.SubmitDelta(std::move(snap)));
  manager.Flush();
  EXPECT_EQ(manager.stale_streams(), 0u);
  EXPECT_EQ(manager.stats().snapshot_folds, 1u);

  ASSERT_TRUE(manager.SubmitDelta(delta_for(7, 70, 700)));
  manager.Flush();
  EXPECT_EQ(manager.info(sub).pending_gaps, 0u);
  TopKFlows top = TopKStanding(manager, sub);
  ASSERT_EQ(top.items.size(), 4u);
  EXPECT_EQ(top.items[0].first, 700u);
  EXPECT_EQ(top.items[1].first, 400u);
  EXPECT_EQ(top.items[2].first, 300u);
  EXPECT_EQ(top.items[3].first, 100u);

  const SubscriptionManagerStats ss = manager.stats();
  EXPECT_EQ(ss.deltas_submitted,
            ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);
  manager.SetResyncRequester(nullptr);
}

}  // namespace
}  // namespace pathdump
