#include <gtest/gtest.h>

#include "src/switchsim/rule_budget.h"
#include "src/topology/fat_tree.h"
#include "src/topology/vl2.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

class FatTreeRules : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeRules, PerSwitchBudgetIsLinearInPorts) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  // §3.1: rules grow linearly with port density — every switch's budget is
  // bounded by a small constant times k.
  for (SwitchId sw : topo.switches()) {
    RuleBudget b = ComputeRuleBudget(topo, sw);
    EXPECT_GT(b.total(), 0);
    EXPECT_LE(b.total(), 3 * k) << topo.NameOf(sw);
  }
  RuleBudget mx = MaxPerSwitchRuleBudget(topo);
  EXPECT_LE(mx.total(), 3 * k);
}

TEST_P(FatTreeRules, BudgetScalesLinearlyAcrossK) {
  int k = GetParam();
  if (k < 8) {
    GTEST_SKIP();
  }
  Topology big = BuildFatTree(k);
  Topology small = BuildFatTree(k / 2);
  // Max per-switch budget roughly doubles when k doubles (linear, not
  // quadratic like per-path rule schemes).
  double ratio = double(MaxPerSwitchRuleBudget(big).total()) /
                 double(MaxPerSwitchRuleBudget(small).total());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeRules, ::testing::Values(4, 8, 16, 32));

TEST(Vl2Rules, TwoTaggingRulesPerAggIngressPort) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  const Vl2Meta& m = *topo.vl2();
  for (NodeId agg : m.agg) {
    int ports = int(topo.NeighborsOf(agg).size());
    RuleBudget b = ComputeRuleBudget(topo, agg);
    EXPECT_EQ(b.tagging, 2 * ports) << "paper: two rules per ingress port";
  }
  for (NodeId mid : m.intermediate) {
    RuleBudget b = ComputeRuleBudget(topo, mid);
    EXPECT_EQ(b.tagging, int(topo.NeighborsOf(mid).size()));
  }
  // ToRs never sample on VL2 (the agg sets DSCP).
  for (NodeId tor : m.tor) {
    EXPECT_EQ(ComputeRuleBudget(topo, tor).tagging, 0);
  }
}

TEST(GenericRules, EverySwitchGetsABudget) {
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  RuleBudget total = TotalRuleBudget(sc.topo);
  EXPECT_GT(total.forwarding, 0);
  EXPECT_GT(total.tagging, 0);
}

TEST(RuleBudgetTotals, OneTimeInstallationIsSmall) {
  // A 27K-host fat-tree's entire static rule installation is well under
  // typical TCAM capacities per switch (thousands of entries).
  Topology topo = BuildFatTree(16);
  RuleBudget mx = MaxPerSwitchRuleBudget(topo);
  EXPECT_LT(mx.total(), 4096);
}

}  // namespace
}  // namespace pathdump
