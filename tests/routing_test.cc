#include <gtest/gtest.h>

#include <set>

#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"
#include "src/topology/vl2.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// Follows NextHop from src to dst; returns the switch path (empty on drop).
Path Walk(const Topology& topo, const Router& router, HostId src, HostId dst, uint64_t entropy,
          int max_hops = 32) {
  Path path;
  NodeId prev = src;
  NodeId cur = topo.TorOfHost(src);
  for (int i = 0; i < max_hops; ++i) {
    path.push_back(cur);
    NodeId next = router.NextHop(cur, prev, dst, entropy);
    if (next == kInvalidNode) {
      return {};
    }
    if (next == dst) {
      return path;
    }
    prev = cur;
    cur = next;
  }
  return {};
}

class FatTreeRouting : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeRouting, EcmpPathCounts) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  int half = k / 2;
  const FatTreeMeta& m = *topo.fat_tree();

  HostId h0 = topo.HostsOfTor(m.tor[0][0])[0];
  HostId same_rack = topo.HostsOfTor(m.tor[0][0])[1];
  HostId same_pod = topo.HostsOfTor(m.tor[0][1])[0];
  HostId other_pod = topo.HostsOfTor(m.tor[1][0])[0];

  EXPECT_EQ(router.EcmpPaths(h0, same_rack).size(), 1u);
  EXPECT_EQ(router.EcmpPaths(h0, same_pod).size(), size_t(half));
  EXPECT_EQ(router.EcmpPaths(h0, other_pod).size(), size_t(half * half));
  EXPECT_EQ(router.ShortestPathSwitchCount(h0, other_pod), 5);
  EXPECT_EQ(router.ShortestPathSwitchCount(h0, same_pod), 3);
  EXPECT_EQ(router.ShortestPathSwitchCount(h0, same_rack), 1);
}

TEST_P(FatTreeRouting, EcmpPathsAreValidAndDistinct) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  std::set<Path> seen;
  for (const Path& p : router.EcmpPaths(src, dst)) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate ECMP path";
    // Endpoints correct.
    EXPECT_EQ(p.front(), topo.TorOfHost(src));
    EXPECT_EQ(p.back(), topo.TorOfHost(dst));
    // Consecutive switches adjacent.
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(topo.Adjacent(p[i], p[i + 1]));
    }
  }
}

TEST_P(FatTreeRouting, WalkFollowsAnEcmpPath) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  std::vector<Path> expected = router.EcmpPaths(src, dst);
  std::set<Path> expected_set(expected.begin(), expected.end());
  for (uint64_t entropy = 0; entropy < 32; ++entropy) {
    Path got = Walk(topo, router, src, dst, entropy);
    ASSERT_FALSE(got.empty());
    EXPECT_TRUE(expected_set.count(got) > 0) << PathToString(got);
  }
}

TEST_P(FatTreeRouting, EntropyCoversAllPaths) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  size_t want = router.EcmpPaths(src, dst).size();
  std::set<Path> seen;
  for (uint64_t entropy = 0; entropy < 4096 && seen.size() < want; ++entropy) {
    seen.insert(Walk(topo, router, src, dst, entropy));
  }
  EXPECT_EQ(seen.size(), want) << "some equal-cost path unreachable by entropy";
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeRouting, ::testing::Values(4, 6, 8));

TEST(FatTreeFailover, DstPodTorBounceProducesSixHopPath) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];

  // Find the path entropy 0 uses, then break its dst-pod agg->tor link.
  Path base = Walk(topo, router, src, dst, 0);
  ASSERT_EQ(base.size(), 5u);
  NodeId down_agg = base[3];
  NodeId dst_tor = base[4];
  router.link_state().SetDown(down_agg, dst_tor);

  Path detour = Walk(topo, router, src, dst, 0);
  ASSERT_EQ(detour.size(), 7u) << PathToString(detour);
  // Prefix unchanged.
  EXPECT_EQ(detour[0], base[0]);
  EXPECT_EQ(detour[1], base[1]);
  EXPECT_EQ(detour[2], base[2]);
  EXPECT_EQ(detour[3], down_agg);
  // Valley ToR is in the dst pod and is not the dst ToR.
  EXPECT_EQ(topo.RoleOf(detour[4]), NodeRole::kTor);
  EXPECT_NE(detour[4], dst_tor);
  // Re-ascends to a different aggregate, then reaches the dst ToR.
  EXPECT_EQ(topo.RoleOf(detour[5]), NodeRole::kAgg);
  EXPECT_NE(detour[5], down_agg);
  EXPECT_EQ(detour[6], dst_tor);
}

TEST(FatTreeFailover, SrcPodBounceWhenAllUplinksDead) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];

  Path base = Walk(topo, router, src, dst, 7);
  ASSERT_EQ(base.size(), 5u);
  NodeId first_agg = base[1];
  // Kill ALL core uplinks of the chosen aggregate.
  for (NodeId nbr : topo.NeighborsOf(first_agg)) {
    if (topo.RoleOf(nbr) == NodeRole::kCore) {
      router.link_state().SetDown(first_agg, nbr);
    }
  }
  Path detour = Walk(topo, router, src, dst, 7);
  ASSERT_EQ(detour.size(), 7u) << PathToString(detour);
  EXPECT_EQ(detour[1], first_agg);
  EXPECT_EQ(topo.RoleOf(detour[2]), NodeRole::kTor);  // bounce ToR
  EXPECT_EQ(topo.RoleOf(detour[3]), NodeRole::kAgg);  // second aggregate
  EXPECT_NE(detour[3], first_agg);
  EXPECT_EQ(topo.RoleOf(detour[4]), NodeRole::kCore);
}

TEST(FatTreeFailover, TorUplinkFailureStaysShortest) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];
  // Break ToR -> agg0; ECMP must use agg1, path stays 5 switches.
  router.link_state().SetDown(m.tor[0][0], m.agg[0][0]);
  for (uint64_t e = 0; e < 16; ++e) {
    Path p = Walk(topo, router, src, dst, e);
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p[1], m.agg[0][1]);
  }
}

TEST(LinkStateTest, UndirectedSemantics) {
  LinkStateSet ls;
  EXPECT_TRUE(ls.empty());
  ls.SetDown(3, 7);
  EXPECT_TRUE(ls.IsDown(3, 7));
  EXPECT_TRUE(ls.IsDown(7, 3));
  ls.SetUp(7, 3);
  EXPECT_FALSE(ls.IsDown(3, 7));
}

TEST(Vl2Routing, PathShapes) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  Router router(&topo);
  const Vl2Meta& m = *topo.vl2();
  HostId h0 = topo.HostsOfTor(m.tor[0])[0];
  HostId same_rack = topo.HostsOfTor(m.tor[0])[1];
  // ToR 0 uplinks to aggs {0,1}; ToR 4 uplinks to aggs {(8)%4, (9)%4} = {0,1}:
  // shared aggregates -> 3-switch paths.  ToR 1 uses {2,3}: disjoint.
  HostId shared = topo.HostsOfTor(m.tor[4])[0];
  HostId disjoint = topo.HostsOfTor(m.tor[1])[0];

  EXPECT_EQ(router.EcmpPaths(h0, same_rack).size(), 1u);
  auto shared_paths = router.EcmpPaths(h0, shared);
  ASSERT_FALSE(shared_paths.empty());
  EXPECT_EQ(shared_paths.front().size(), 3u);
  auto disjoint_paths = router.EcmpPaths(h0, disjoint);
  ASSERT_FALSE(disjoint_paths.empty());
  EXPECT_EQ(disjoint_paths.front().size(), 5u);
  // 2 up-aggs x 3 intermediates x 2 down-aggs.
  EXPECT_EQ(disjoint_paths.size(), 12u);

  for (uint64_t e = 0; e < 8; ++e) {
    Path p = Walk(topo, router, h0, disjoint, e);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.size(), 5u);
  }
}

TEST(GenericRouting, StaticNextHopsAndBfs) {
  using testutil::BuildLoopScenario;
  testutil::LoopScenario sc = BuildLoopScenario();
  Router router(&sc.topo);

  // BFS shortest: A->B goes S1 S2 S3 S4 S6.
  Path p = Walk(sc.topo, router, sc.host_a, sc.host_b, 0);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p[0], sc.s1);
  EXPECT_EQ(p[4], sc.s6);

  // Static override: pin S4 to forward via S5 (a misconfiguration), S5 to
  // S2 — the Fig. 9 loop.
  router.SetStaticNextHops(sc.s4, sc.host_b, {sc.s5});
  router.SetStaticNextHops(sc.s5, sc.host_b, {sc.s2});
  Path looped = Walk(sc.topo, router, sc.host_a, sc.host_b, 0, /*max_hops=*/12);
  EXPECT_TRUE(looped.empty());  // never reaches B within the hop budget
}

}  // namespace
}  // namespace pathdump
