// End-to-end integration: per-packet network -> switches tag -> agents
// decode, store, and serve queries -> controller apps diagnose.  These
// tests exercise the exact composition the examples and benches use.

#include <gtest/gtest.h>

#include <set>

#include "src/apps/load_imbalance.h"
#include "src/apps/path_conformance.h"
#include "src/controller/controller.h"
#include "src/controller/loop_detector.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "src/topology/vl2.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

class FullPipeline : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(GetParam());
    NetworkConfig cfg;
    cfg.lb_mode = LoadBalanceMode::kEcmpHash;
    net_ = std::make_unique<Network>(&topo_, cfg);
    fleet_ = std::make_unique<AgentFleet>(&topo_, &net_->codec());
    fleet_->AttachTo(*net_);
    controller_ = std::make_unique<Controller>();
    controller_->RegisterFleet(*fleet_);
    fleet_->SetAlarmHandler(controller_->MakeAlarmSink());
  }

  void InjectFlows(const std::vector<FlowDesc>& flows) {
    for (const FlowDesc& f : flows) {
      auto pkts = SegmentFlow(f.tuple, f.src, f.dst, f.bytes);
      SimTime t = f.start;
      for (Packet& p : pkts) {
        net_->InjectPacket(p, t);
        t += 5 * kNsPerUs;
      }
    }
    net_->events().RunAll();
    fleet_->FlushAll(net_->events().now());
  }

  Topology topo_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<AgentFleet> fleet_;
  std::unique_ptr<Controller> controller_;
};

TEST_P(FullPipeline, TibPathsMatchGroundTruthForRealWorkload) {
  // Run a real workload and verify that every TIB record's decoded path is
  // a legal ECMP path between the record's endpoints, and that byte counts
  // are conserved end to end.
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo_, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 5;
  params.duration = kNsPerSec / 2;
  params.seed = 77;
  auto flows = gen.Generate(params);
  ASSERT_GT(flows.size(), 10u);
  InjectFlows(flows);

  Router ground_truth(&topo_);
  uint64_t tib_flows = 0;
  for (EdgeAgent* agent : fleet_->all()) {
    EXPECT_EQ(agent->decode_failures(), 0u);
    for (const TibRecord& rec : agent->tib().records()) {
      ++tib_flows;
      HostId src = topo_.HostOfIp(rec.flow.src_ip);
      HostId dst = topo_.HostOfIp(rec.flow.dst_ip);
      ASSERT_NE(src, kInvalidNode);
      ASSERT_EQ(dst, agent->host());
      auto legal = ground_truth.EcmpPaths(src, dst);
      Path got = rec.path.ToPath();
      EXPECT_NE(std::find(legal.begin(), legal.end(), got), legal.end())
          << PathToString(got);
    }
  }
  EXPECT_EQ(tib_flows, flows.size()) << "every flow must land in exactly one TIB record";
}

TEST_P(FullPipeline, DistributedQueriesSeeTheWholeNetwork) {
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo_, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 4;
  params.duration = kNsPerSec / 2;
  params.seed = 5;
  auto flows = gen.Generate(params);
  InjectFlows(flows);

  // Top-k across all hosts == top-k over the generated flow set (flows may
  // repeat 5-tuples only via distinct ports, so compare byte multisets).
  TopKFlows top = [&] {
    Controller::QueryFn q = [](EdgeAgent& a) -> QueryResult {
      return a.TopK(10, TimeRange::All());
    };
    auto [res, stats] = controller_->ExecuteMultiLevel(controller_->registered_hosts(), q);
    auto t = std::get<TopKFlows>(res);
    t.k = 10;
    t.Finalize();
    return t;
  }();
  ASSERT_FALSE(top.items.empty());

  std::vector<uint64_t> truth;
  for (const FlowDesc& f : flows) {
    truth.push_back(f.bytes);
  }
  std::sort(truth.rbegin(), truth.rend());
  for (size_t i = 0; i < top.items.size() && i < truth.size(); ++i) {
    // TIB bytes include padding of sub-64B segments; allow tiny slack.
    EXPECT_NEAR(double(top.items[i].first), double(truth[i]),
                double(truth[i]) * 0.01 + 128);
  }
}

TEST_P(FullPipeline, ConformanceDetectsFailoverDetour) {
  // Fig. 4: break a dst-pod agg->tor link; the 7-switch detour path must
  // trigger PC_FAIL at the destination agent in real time.
  const FatTreeMeta& m = *topo_.fat_tree();
  HostId src = topo_.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo_.HostsOfTor(m.tor[1][0])[0];

  for (EdgeAgent* agent : fleet_->all()) {
    ConformancePolicy policy;
    policy.max_path_switches = 6;  // >= 6 switches is a violation
    InstallPathConformance(*agent, policy);
  }

  // Find the flow's path with a probe, then fail its dst-pod down-link.
  FiveTuple probe_flow = testutil::MakeFlow(topo_, src, dst, 50000);
  Path probed;
  net_->SetDropHandler(nullptr);
  {
    auto pkts = SegmentFlow(probe_flow, src, dst, 100);
    for (Packet& p : pkts) {
      net_->InjectPacket(p, 0);
    }
    net_->events().RunAll();
    fleet_->FlushAll(net_->events().now());
    auto paths = fleet_->agent(dst).GetPaths(probe_flow, LinkId{kInvalidNode, kInvalidNode},
                                             TimeRange::All());
    ASSERT_EQ(paths.size(), 1u);
    probed = paths[0];
  }
  ASSERT_EQ(probed.size(), 5u);
  net_->router().link_state().SetDown(probed[3], probed[4]);

  size_t alarms_before = controller_->alarm_log().size();
  FiveTuple flow2 = testutil::MakeFlow(topo_, src, dst, 50001);
  // Same src/dst: entropy is per-flow; sweep ports until a flow re-uses the
  // broken aggregate (its prefix matches the probed path).
  bool detour_seen = false;
  for (uint16_t port = 50001; port < 50060 && !detour_seen; ++port) {
    flow2.src_port = port;
    auto pkts = SegmentFlow(flow2, src, dst, 100);
    SimTime t = net_->events().now() + kNsPerMs;
    for (Packet& p : pkts) {
      net_->InjectPacket(p, t);
    }
    net_->events().RunAll();
    fleet_->FlushAll(net_->events().now());
    auto paths = fleet_->agent(dst).GetPaths(flow2, LinkId{kInvalidNode, kInvalidNode},
                                             TimeRange::All());
    ASSERT_EQ(paths.size(), 1u);
    if (paths[0].size() == 7u) {
      detour_seen = true;
    }
  }
  ASSERT_TRUE(detour_seen) << "no flow hit the broken link";
  ASSERT_GT(controller_->alarm_log().size(), alarms_before);
  const Alarm& alarm = controller_->alarm_log().back();
  EXPECT_EQ(alarm.reason, AlarmReason::kPathConformance);
  ASSERT_EQ(alarm.paths.size(), 1u);
  EXPECT_EQ(alarm.paths[0].size(), 7u);
}

INSTANTIATE_TEST_SUITE_P(Ks, FullPipeline, ::testing::Values(4, 6));

TEST(Vl2Pipeline, EndToEndDecode) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  Network net(&topo, NetworkConfig{});
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);

  int flows = 0;
  for (HostId src : topo.hosts()) {
    for (HostId dst : topo.hosts()) {
      if (src == dst) {
        continue;
      }
      FiveTuple f = testutil::MakeFlow(topo, src, dst, uint16_t(10000 + flows));
      auto pkts = SegmentFlow(f, src, dst, 3000);
      for (Packet& p : pkts) {
        net.InjectPacket(p, SimTime(flows) * kNsPerUs);
      }
      ++flows;
    }
  }
  net.events().RunAll();
  fleet.FlushAll(net.events().now());

  size_t records = 0;
  for (EdgeAgent* agent : fleet.all()) {
    EXPECT_EQ(agent->decode_failures(), 0u);
    records += agent->tib().size();
  }
  EXPECT_EQ(records, size_t(flows));
}

TEST(SprayPipeline, PerPathUsageIsBalanced) {
  Topology topo = BuildFatTree(4);
  NetworkConfig cfg;
  cfg.lb_mode = LoadBalanceMode::kPacketSpray;
  Network net(&topo, cfg);
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);

  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  FiveTuple flow = testutil::MakeFlow(topo, src, dst);
  auto pkts = SegmentFlow(flow, src, dst, 2 * 1000 * 1000);  // ~1370 pkts
  SimTime t = 0;
  for (Packet& p : pkts) {
    net.InjectPacket(p, t);
    t += kNsPerUs;
  }
  net.events().RunAll();
  fleet.FlushAll(net.events().now());

  SprayBalanceReport rep =
      CheckSprayBalance(fleet.agent(dst), flow, TimeRange::All(), /*tolerance=*/1.5);
  ASSERT_EQ(rep.subflows.size(), 4u);
  EXPECT_TRUE(rep.balanced) << "uniform spraying must look balanced, ratio "
                            << rep.max_min_ratio;
}

}  // namespace
}  // namespace pathdump
