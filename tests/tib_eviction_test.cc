// Epoch-windowed TIB eviction contract tests (the bounded-memory
// tentpole):
//
//  1. Identity — with the ceiling high enough that nothing evicts,
//     sealing epochs is invisible: every poll query and all four
//     standing kinds stay byte-identical to an unbounded TIB across the
//     {1, 4, 16} shards x {1, 4, 16} workers matrix.
//  2. Window — with eviction active, every window-scoped query (and the
//     persisted file) equals a fresh TIB holding only the retained
//     records, and a save/load round trip of the evicting TIB stays
//     loadable by the seed format.
//  3. Ceiling — a sustained insert storm never drives bytes_resident
//     above the configured ceiling (once a sealed epoch exists to
//     retire), and retained == inserted − evicted holds exactly, on the
//     instance stats and on the registry metrics alike.
//  4. Typed miss — record(id) and ForEachRecordOfFlow report evicted
//     ids/flows as misses, not stale or default-constructed hits,
//     including lookups straddling a retirement.
//  5. Adversarial (TSan) — seeded fuzz where ceiling-driven eviction
//     races shard-parallel scans, inserts, and standing TakeDelta;
//     standing results must still equal an unbounded shadow's poll
//     (accumulators folded every record before its segment retired).
//  6. Resync semantics — after eviction, standing state is exact (full
//     history) until a resync re-baselines it to the retained window;
//     both sides of that contract are asserted.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/load_imbalance.h"
#include "src/apps/traffic_measure.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/edge_agent.h"
#include "src/edge/standing_query.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

std::vector<TibRecord> MakeRecords(int n, uint32_t seed) {
  return testutil::MakeSyntheticRecords(n, seed, {.ip_space = 2048, .switch_space = 24});
}

constexpr size_t kTopK = 500;
constexpr int64_t kBinWidth = 10000;
const LinkId kProbeLink{3, 7};

Controller::QueryFn PollTopK() {
  return [](EdgeAgent& a) -> QueryResult { return a.TopK(kTopK, TimeRange::All()); };
}

Controller::QueryFn PollHistogram() {
  return [](EdgeAgent& a) -> QueryResult {
    return a.FlowSizeDistribution(kProbeLink, TimeRange::All(), kBinWidth);
  };
}

Controller::QueryFn PollFlowList() {
  return [](EdgeAgent& a) -> QueryResult {
    return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
  };
}

Controller::QueryFn PollCount() {
  return [](EdgeAgent& a) -> QueryResult { return a.CountOnLink(kProbeLink, TimeRange::All()); };
}

// A small fleet sharing one topology/codec, with a per-testbed TIB
// memory ceiling (0 = unbounded, the seed default).
struct Testbed {
  Topology topo;
  LinkLabelMap labels;
  CherryPickCodec codec;
  Controller controller;
  std::vector<std::unique_ptr<EdgeAgent>> agents;
  std::vector<HostId> hosts;

  Testbed(size_t num_agents, size_t shards, size_t max_memory_bytes)
      : topo(BuildFatTree(4)), labels(&topo), codec(&topo, &labels) {
    for (size_t a = 0; a < num_agents; ++a) {
      HostId h = topo.hosts()[a];
      EdgeAgentConfig cfg;
      cfg.tib_options.num_shards = shards;
      cfg.tib_options.max_memory_bytes = max_memory_bytes;
      agents.push_back(std::make_unique<EdgeAgent>(h, &topo, &codec, cfg));
      controller.RegisterAgent(agents.back().get());
      hosts.push_back(h);
    }
  }
};

// Accounted cost of one record under `opt`, measured on a probe instance
// (PerRecordBytes is private and an implementation detail; the tests
// derive it observationally so ceiling arithmetic tracks the model).
size_t MeasuredPerRecordBytes(TibOptions opt) {
  opt.max_memory_bytes = 0;
  Tib probe(opt);
  probe.Insert(TibRecord{});
  return probe.bytes_resident();
}

// --- 1. High ceiling: sealing must be invisible across the matrix ---

TEST(TibEvictionIdentity, HighCeilingMatchesUnboundedAcrossShardWorkerMatrix) {
  const int kPerAgent = 8000;
  const int kEpochs = 4;
  const size_t kAgents = 2;
  std::vector<std::vector<TibRecord>> records;
  for (size_t a = 0; a < kAgents; ++a) {
    records.push_back(MakeRecords(kPerAgent, 0xE701 + uint32_t(a)));
  }

  for (size_t shards : {size_t(1), size_t(4), size_t(16)}) {
    // Bounded-but-roomy: epoch sealing and ceiling checks run, nothing
    // ever qualifies for retirement.
    Testbed bounded(kAgents, shards, size_t(1) << 30);
    // The unbounded reference never seals — flat columns, seed behavior.
    Testbed shadow(kAgents, shards, 0);
    SubscriptionManager manager(&bounded.controller);
    uint64_t topk_sub = SubscribeTopK(manager, bounded.hosts, kTopK);
    uint64_t hist_sub = SubscribeFlowSizeDistribution(manager, bounded.hosts, kProbeLink,
                                                      TimeRange::All(), kBinWidth);
    uint64_t list_sub = SubscribeFlowList(manager, bounded.hosts, kProbeLink);
    uint64_t count_sub = SubscribeCountSummary(manager, bounded.hosts, kProbeLink);

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (size_t a = 0; a < kAgents; ++a) {
        for (int i = epoch * kPerAgent / kEpochs; i < (epoch + 1) * kPerAgent / kEpochs; ++i) {
          bounded.agents[a]->tib().Insert(records[a][size_t(i)]);
          shadow.agents[a]->tib().Insert(records[a][size_t(i)]);
        }
      }
      // Agent-driven boundary: ticks every registration, then seals the
      // TIB's open segments (the eviction unit under a real ceiling).
      for (auto& agent : bounded.agents) {
        agent->EpochTick();
      }
      manager.Flush();

      for (size_t workers : {size_t(1), size_t(4), size_t(16)}) {
        ThreadPool scan_pool(workers);
        for (size_t a = 0; a < kAgents; ++a) {
          bounded.agents[a]->SetQueryThreadPool(workers > 1 ? &scan_pool : nullptr);
          shadow.agents[a]->SetQueryThreadPool(workers > 1 ? &scan_pool : nullptr);
        }
        for (const auto& poll : {PollTopK(), PollHistogram(), PollFlowList(), PollCount()}) {
          auto [seg, sstats] = bounded.controller.Execute(bounded.hosts, poll);
          auto [flat, fstats] = shadow.controller.Execute(shadow.hosts, poll);
          EXPECT_EQ(seg, flat) << shards << " shards, " << workers << " workers, epoch "
                               << epoch;
          EXPECT_EQ(SerializedBytes(seg), SerializedBytes(flat));
        }
        QueryResult standing_topk = manager.Materialize(topk_sub);
        QueryResult standing_hist = manager.Materialize(hist_sub);
        QueryResult standing_list = manager.Materialize(list_sub);
        QueryResult standing_count = manager.Materialize(count_sub);
        EXPECT_EQ(standing_topk, shadow.controller.Execute(shadow.hosts, PollTopK()).first)
            << shards << " shards, " << workers << " workers, epoch " << epoch;
        EXPECT_EQ(standing_hist, shadow.controller.Execute(shadow.hosts, PollHistogram()).first);
        EXPECT_EQ(standing_list, shadow.controller.Execute(shadow.hosts, PollFlowList()).first);
        EXPECT_EQ(standing_count, shadow.controller.Execute(shadow.hosts, PollCount()).first);
        for (size_t a = 0; a < kAgents; ++a) {
          bounded.agents[a]->SetQueryThreadPool(nullptr);
          shadow.agents[a]->SetQueryThreadPool(nullptr);
        }
      }
      // Id-addressed reads and raw snapshots agree too: ids are global
      // and preserved, segmentation must not leak.
      for (size_t a = 0; a < kAgents; ++a) {
        const Tib& seg_tib = bounded.agents[a]->tib();
        const Tib& flat_tib = shadow.agents[a]->tib();
        ASSERT_EQ(seg_tib.size(), flat_tib.size());
        EXPECT_EQ(seg_tib.records(), flat_tib.records());
        for (size_t id = 0; id < seg_tib.size(); id += 611) {
          EXPECT_EQ(seg_tib.record(id).value(), flat_tib.record(id).value());
        }
      }
    }
    // Epochs were sealed but nothing retired.
    for (auto& agent : bounded.agents) {
      TibMemoryStats st = agent->tib().MemoryStats();
      EXPECT_EQ(st.epochs_sealed, uint64_t(kEpochs));
      EXPECT_EQ(st.evicted_records, 0u);
      EXPECT_EQ(st.segments_retired, 0u);
      EXPECT_EQ(st.retained_records, st.inserted_records);
    }
  }
}

// --- 2. Active eviction: window == fresh TIB of the retained records ---

TEST(TibEvictionWindow, WindowedQueriesEqualFreshTibLoadedWithRetainedRecords) {
  const int kPerEpoch = 1500;
  const int kEpochs = 8;
  TibOptions opt;
  opt.num_shards = 4;
  // Room for ~3 epochs of records: the window slides all test long.
  opt.max_memory_bytes = MeasuredPerRecordBytes(opt) * size_t(kPerEpoch) * 3;
  Tib tib(opt);

  std::vector<TibRecord> all = MakeRecords(kPerEpoch * kEpochs, 0xD07E);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (int i = epoch * kPerEpoch; i < (epoch + 1) * kPerEpoch; ++i) {
      tib.Insert(all[size_t(i)]);
    }
    tib.SealEpoch();

    // A fresh single-shard TIB holding exactly the retained records must
    // answer every value query identically (ids differ — the fresh TIB
    // re-densifies them — so the comparison is over values and order).
    std::vector<TibRecord> retained = tib.records();
    TibOptions fresh_opt;
    fresh_opt.num_shards = 1;
    Tib fresh(fresh_opt);
    for (const TibRecord& rec : retained) {
      fresh.Insert(rec);
    }
    EXPECT_EQ(tib.AggregateFlowBytes(kProbeLink, TimeRange::All()),
              fresh.AggregateFlowBytes(kProbeLink, TimeRange::All()))
        << "epoch " << epoch;
    EXPECT_EQ(tib.AggregateFlowBytes(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All()),
              fresh.AggregateFlowBytes(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All()));
    CountSummary a = tib.CountOnLink(kProbeLink, TimeRange::All());
    CountSummary b = fresh.CountOnLink(kProbeLink, TimeRange::All());
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.pkts, b.pkts);
    std::vector<Flow> flows_seg = tib.FlowsOnLink(kProbeLink, TimeRange::All());
    std::vector<Flow> flows_fresh = fresh.FlowsOnLink(kProbeLink, TimeRange::All());
    ASSERT_EQ(flows_seg.size(), flows_fresh.size()) << "epoch " << epoch;
    for (size_t i = 0; i < flows_seg.size(); ++i) {
      EXPECT_EQ(flows_seg[i].id, flows_fresh[i].id);
      EXPECT_EQ(flows_seg[i].path, flows_fresh[i].path);
    }
    // Persistence writes only the retained window, byte-for-byte what the
    // fresh TIB writes, and the seed format loads it back unchanged.
    const std::string seg_path = "/tmp/pathdump_evict_seg.bin";
    const std::string fresh_path = "/tmp/pathdump_evict_fresh.bin";
    ASSERT_GT(tib.SaveTo(seg_path), 0u);
    ASSERT_GT(fresh.SaveTo(fresh_path), 0u);
    auto slurp = [](const std::string& p) {
      std::string out;
      std::FILE* f = std::fopen(p.c_str(), "rb");
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        out.append(buf, n);
      }
      std::fclose(f);
      return out;
    };
    EXPECT_EQ(slurp(seg_path), slurp(fresh_path)) << "epoch " << epoch;
    Tib loaded;  // default options: unbounded, seed behavior
    ASSERT_EQ(loaded.LoadFrom(seg_path), int64_t(retained.size()));
    EXPECT_EQ(loaded.records(), retained);
    std::remove(seg_path.c_str());
    std::remove(fresh_path.c_str());
  }

  TibMemoryStats st = tib.MemoryStats();
  EXPECT_GT(st.evicted_records, 0u);
  EXPECT_GT(st.segments_retired, 0u);
  EXPECT_GT(st.oldest_retained_epoch, 1u);  // the window actually slid
  EXPECT_EQ(st.inserted_records, uint64_t(kPerEpoch * kEpochs));
  EXPECT_EQ(st.retained_records, st.inserted_records - st.evicted_records);
}

// --- 3. Ceiling enforcement under a storm ---

TEST(TibEvictionCeiling, StormNeverExceedsCeilingAndAccountingIsExact) {
  const int kPerEpoch = 400;
  const int kEpochs = 60;
  TibOptions opt;
  opt.num_shards = 8;
  const size_t per_record = MeasuredPerRecordBytes(opt);
  // Ceiling ~6 epochs; each epoch's batch is well under it, so with the
  // insert-side overflow check the level must stay under the ceiling at
  // EVERY sample point, not just at boundaries.
  opt.max_memory_bytes = per_record * size_t(kPerEpoch) * 6;
  const int64_t gauge_before =
      MetricsRegistry::Global().GetGauge("tib.bytes_resident")->value();
  const uint64_t retired_before =
      MetricsRegistry::Global().GetCounter("tib.segments_retired")->value();
  const uint64_t evicted_before =
      MetricsRegistry::Global().GetCounter("tib.evicted_records")->value();
  {
    Tib tib(opt);
    std::vector<TibRecord> all = MakeRecords(kPerEpoch * kEpochs, 0x570F);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (int i = epoch * kPerEpoch; i < (epoch + 1) * kPerEpoch; ++i) {
        tib.Insert(all[size_t(i)]);
        ASSERT_LE(tib.bytes_resident(), opt.max_memory_bytes)
            << "mid-epoch sample, insert " << i;
      }
      tib.SealEpoch();
      ASSERT_LE(tib.bytes_resident(), opt.max_memory_bytes) << "boundary, epoch " << epoch;
      TibMemoryStats st = tib.MemoryStats();
      ASSERT_EQ(st.retained_records, st.inserted_records - st.evicted_records)
          << "epoch " << epoch;
      ASSERT_EQ(st.resident_bytes, st.retained_records * per_record);
      ASSERT_EQ(st.retained_records, tib.size());
      // The registry gauge tracks this instance's level exactly (diffed
      // against the pre-test level — other tests' TIBs come and go).
      EXPECT_EQ(MetricsRegistry::Global().GetGauge("tib.bytes_resident")->value() -
                    gauge_before,
                int64_t(tib.bytes_resident()));
    }
    TibMemoryStats st = tib.MemoryStats();
    EXPECT_GT(st.evicted_records, uint64_t(kPerEpoch) * 40);  // the storm really churned
    EXPECT_EQ(st.inserted_records, uint64_t(kPerEpoch * kEpochs));
    EXPECT_EQ(MetricsRegistry::Global().GetCounter("tib.segments_retired")->value() -
                  retired_before,
              st.segments_retired);
    EXPECT_EQ(MetricsRegistry::Global().GetCounter("tib.evicted_records")->value() -
                  evicted_before,
              st.evicted_records);
  }
  // Destruction returns the instance's contribution to the gauge.
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("tib.bytes_resident")->value(), gauge_before);
}

// --- 4. Typed misses for evicted ids/flows ---

TEST(TibEvictionTypedMiss, LookupsStraddlingARetirementMissCleanly) {
  TibOptions opt;
  opt.num_shards = 4;
  const size_t per_record = MeasuredPerRecordBytes(opt);

  // Three hand-built flows: one entirely in epoch 1 (will evict), one
  // entirely in epoch 2 (will survive), one straddling both.
  FiveTuple old_flow{0x0A000001, 0x0A000002, 1111, 80, kProtoTcp};
  FiveTuple new_flow{0x0A000003, 0x0A000004, 2222, 80, kProtoTcp};
  FiveTuple straddle_flow{0x0A000005, 0x0A000006, 3333, 80, kProtoTcp};
  auto rec_for = [](const FiveTuple& flow, uint64_t bytes) {
    TibRecord rec;
    rec.flow = flow;
    rec.path = CompactPath::FromPath({1, 2, 3});
    rec.stime = 0;
    rec.etime = kNsPerSec;
    rec.bytes = bytes;
    rec.pkts = 1;
    return rec;
  };

  // Epoch 1: 40 records (old_flow, straddle_flow, filler).  Epoch 2: 10
  // records (new_flow, straddle_flow).  Ceiling fits epoch 2 only.
  opt.max_memory_bytes = per_record * 20;
  Tib tib(opt);
  tib.Insert(rec_for(old_flow, 100));
  tib.Insert(rec_for(straddle_flow, 200));
  for (const TibRecord& rec : MakeRecords(38, 0x0E01)) {
    tib.Insert(rec);
  }
  tib.SealEpoch();  // epoch 1 sealed; over ceiling -> nothing older to keep it from
  const uint64_t last_epoch1_id = 39;
  tib.Insert(rec_for(new_flow, 300));  // id 40
  tib.Insert(rec_for(straddle_flow, 400));  // id 41
  tib.SealEpoch();  // epoch 2 sealed; epoch 1 must be retired by now

  TibMemoryStats st = tib.MemoryStats();
  ASSERT_EQ(st.evicted_records, 40u);
  ASSERT_EQ(st.retained_records, 2u);
  ASSERT_EQ(st.oldest_retained_epoch, 2u);

  // record(id): typed miss for every evicted id, real hit for retained.
  for (uint64_t id = 0; id <= last_epoch1_id; ++id) {
    EXPECT_FALSE(tib.record(size_t(id)).has_value()) << "evicted id " << id;
  }
  ASSERT_TRUE(tib.record(40).has_value());
  EXPECT_EQ(tib.record(40)->bytes, 300u);
  ASSERT_TRUE(tib.record(41).has_value());
  EXPECT_EQ(tib.record(41)->bytes, 400u);
  EXPECT_FALSE(tib.record(42).has_value());  // never inserted

  // ForEachRecordOfFlow: false for the fully-evicted flow, true (with
  // only retained visits) for the straddler and the new flow.
  size_t visits = 0;
  EXPECT_FALSE(tib.ForEachRecordOfFlow(old_flow, TimeRange::All(),
                                       [&](size_t, const TibRecord&) { ++visits; }));
  EXPECT_EQ(visits, 0u);
  EXPECT_TRUE(tib.RecordsOfFlow(old_flow, TimeRange::All()).empty());

  std::vector<size_t> straddle_ids;
  EXPECT_TRUE(tib.ForEachRecordOfFlow(straddle_flow, TimeRange::All(),
                                      [&](size_t id, const TibRecord& rec) {
                                        straddle_ids.push_back(id);
                                        EXPECT_EQ(rec.bytes, 400u);
                                      }));
  EXPECT_EQ(straddle_ids, (std::vector<size_t>{41}));
  EXPECT_EQ(tib.RecordsOfFlow(new_flow, TimeRange::All()), (std::vector<size_t>{40}));

  // Same miss contract without the by-flow index (scan path).  Unindexed
  // records cost less, so re-derive the ceiling: room for one record.
  TibOptions noidx = opt;
  noidx.index_by_flow = false;
  noidx.max_memory_bytes = MeasuredPerRecordBytes(noidx);
  Tib scan_tib(noidx);
  scan_tib.Insert(rec_for(old_flow, 100));
  scan_tib.SealEpoch();
  scan_tib.Insert(rec_for(new_flow, 300));
  scan_tib.SealEpoch();
  EXPECT_FALSE(scan_tib.ForEachRecordOfFlow(old_flow, TimeRange::All(),
                                            [](size_t, const TibRecord&) {}));
  EXPECT_TRUE(scan_tib.ForEachRecordOfFlow(new_flow, TimeRange::All(),
                                           [](size_t, const TibRecord&) {}));
}

// --- 5. Seeded fuzz: eviction vs scans vs inserts vs TakeDelta (TSan) ---

TEST(TibEvictionConcurrency, EvictionRacesScansInsertsAndTakeDelta) {
  const int kPreload = 4000;
  const int kPerWriter = 8000;
  for (uint32_t seed : {0xEA51u, 0xEA52u}) {
    std::vector<TibRecord> records = MakeRecords(kPreload + 2 * kPerWriter, seed);

    TibOptions opt;
    opt.num_shards = 8;
    const size_t per_record = MeasuredPerRecordBytes(opt);
    opt.max_memory_bytes = per_record * 3000;  // far below the total: constant churn

    Testbed bounded(1, 8, opt.max_memory_bytes);
    Testbed shadow(1, 8, 0);
    EdgeAgent& agent = *bounded.agents[0];
    SubscriptionManager manager(&bounded.controller);
    uint64_t topk_sub = SubscribeTopK(manager, bounded.hosts, kTopK);
    uint64_t count_sub = SubscribeCountSummary(manager, bounded.hosts, kProbeLink);
    for (int i = 0; i < kPreload; ++i) {
      agent.tib().Insert(records[size_t(i)]);
      shadow.agents[0]->tib().Insert(records[size_t(i)]);
    }

    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 2; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          agent.tib().Insert(records[size_t(kPreload + w * kPerWriter + i)]);
        }
      });
    }
    // Ticker: agent-level boundaries — TakeDelta for both kinds, then
    // SealEpoch, which retires segments while everyone else is running.
    std::thread ticker([&] {
      uint64_t boundaries = 0;
      while (!done.load(std::memory_order_acquire)) {
        agent.EpochTick();
        ++boundaries;
      }
      EXPECT_GE(boundaries, 1u) << "seed=" << seed;
    });
    // Scanner: windowed reads racing retirement — shard-parallel scans,
    // id lookups (hits AND typed misses), per-flow walks.
    std::thread scanner([&] {
      Rng rng(seed ^ 0x5CA11);
      while (!done.load(std::memory_order_acquire)) {
        (void)agent.tib().AggregateFlowBytes(kProbeLink, TimeRange::All());
        (void)agent.tib().RecordsOnLink(kProbeLink, TimeRange::All());
        (void)agent.tib().record(rng.UniformInt(uint32_t(kPreload + 2 * kPerWriter)));
        const TibRecord& probe = records[rng.UniformInt(uint32_t(records.size()))];
        (void)agent.tib().RecordsOfFlow(probe.flow, TimeRange::All());
        (void)agent.tib().MemoryStats();
      }
    });
    for (auto& t : writers) {
      t.join();
    }
    done.store(true, std::memory_order_release);
    ticker.join();
    scanner.join();
    for (const TibRecord& rec :
         std::vector<TibRecord>(records.begin() + kPreload, records.end())) {
      shadow.agents[0]->tib().Insert(rec);
    }

    // Quiesce, then the standing results must equal the UNBOUNDED
    // shadow's poll: every record was folded before its segment retired,
    // so racing eviction must not have cost the standing state a byte.
    agent.EpochTick();
    manager.Flush();
    EXPECT_EQ(manager.Materialize(topk_sub),
              shadow.controller.Execute(shadow.hosts, PollTopK()).first)
        << "seed=" << seed;
    EXPECT_EQ(manager.Materialize(count_sub),
              shadow.controller.Execute(shadow.hosts, PollCount()).first)
        << "seed=" << seed;

    TibMemoryStats st = agent.tib().MemoryStats();
    EXPECT_GT(st.evicted_records, 0u) << "seed=" << seed;
    EXPECT_EQ(st.inserted_records, uint64_t(kPreload + 2 * kPerWriter)) << "seed=" << seed;
    EXPECT_EQ(st.retained_records, st.inserted_records - st.evicted_records)
        << "seed=" << seed;
    EXPECT_LE(st.resident_bytes, opt.max_memory_bytes) << "seed=" << seed;
  }
}

// --- 6. Resync re-baselines standing state to the retained window ---

TEST(TibEvictionResync, SnapshotAfterEvictionAdoptsWindowScope) {
  const int kPerEpoch = 1200;
  TibOptions probe_opt;
  probe_opt.num_shards = 4;
  const size_t ceiling = MeasuredPerRecordBytes(probe_opt) * size_t(kPerEpoch) * 2;

  Testbed bounded(1, 4, ceiling);
  Testbed shadow(1, 4, 0);
  EdgeAgent& agent = *bounded.agents[0];
  SubscriptionManager manager(&bounded.controller);
  const std::vector<uint64_t> subs = {
      SubscribeTopK(manager, bounded.hosts, kTopK),
      SubscribeFlowSizeDistribution(manager, bounded.hosts, kProbeLink, TimeRange::All(),
                                    kBinWidth),
      SubscribeFlowList(manager, bounded.hosts, kProbeLink),
      SubscribeCountSummary(manager, bounded.hosts, kProbeLink)};
  const std::vector<Controller::QueryFn> polls = {PollTopK(), PollHistogram(), PollFlowList(),
                                                  PollCount()};

  for (int epoch = 0; epoch < 6; ++epoch) {
    for (const TibRecord& rec : MakeRecords(kPerEpoch, 0x2E00 + uint32_t(epoch))) {
      agent.tib().Insert(rec);
      shadow.agents[0]->tib().Insert(rec);
    }
    agent.EpochTick();
    manager.Flush();
  }
  ASSERT_GT(agent.tib().MemoryStats().evicted_records, 0u);

  // Before any resync: standing folds are EXACT — full history, equal to
  // the unbounded shadow, even though the local TIB evicted most of it.
  for (size_t s = 0; s < subs.size(); ++s) {
    EXPECT_EQ(manager.Materialize(subs[s]),
              shadow.controller.Execute(shadow.hosts, polls[s]).first)
        << "pre-resync kind " << s;
  }

  // Resync each stream: TakeSnapshot re-scans the retained window only,
  // so the standing state re-baselines to what the bounded agent's own
  // window-scoped poll sees — and now DIFFERS from the unbounded shadow.
  const HostId host = bounded.hosts[0];
  for (uint64_t id : subs) {
    ASSERT_TRUE(manager.MarkStale(id, host));
    ASSERT_TRUE(manager.Resync(id, host));
  }
  manager.Flush();
  EXPECT_EQ(manager.stale_streams(), 0u);
  for (size_t s = 0; s < subs.size(); ++s) {
    EXPECT_EQ(manager.Materialize(subs[s]),
              bounded.controller.Execute(bounded.hosts, polls[s]).first)
        << "post-resync kind " << s;
  }
  // The window really is narrower than history: the re-baselined TopK
  // total must not match the shadow's.
  EXPECT_NE(manager.Materialize(subs[0]),
            shadow.controller.Execute(shadow.hosts, PollTopK()).first);

  // Folding resumes: the next epoch's deltas land on the re-anchored
  // counter and window-scoped identity holds at the new boundary too.
  for (const TibRecord& rec : MakeRecords(kPerEpoch, 0x2E99)) {
    agent.tib().Insert(rec);
  }
  agent.EpochTick();
  manager.Flush();
  for (uint64_t id : subs) {
    EXPECT_EQ(manager.info(id).pending_gaps, 0u);
  }
  const SubscriptionManagerStats ss = manager.stats();
  EXPECT_EQ(ss.deltas_submitted,
            ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);
}

}  // namespace
}  // namespace pathdump
